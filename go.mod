module github.com/cnfet/yieldlab

go 1.24
