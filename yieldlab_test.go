package yieldlab_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/cnfet/yieldlab"
)

// TestFacadeQuerySession exercises the declarative QuerySpec/Session API
// end to end through the public facade: parse a JSON sweep spec, evaluate
// it, and check the numbers agree with the direct model constructors.
func TestFacadeQuerySession(t *testing.T) {
	params := yieldlab.DefaultParams()
	params.GridStepNM = 0.1
	params.MaxWidthNM = 200
	session, err := yieldlab.NewSession(yieldlab.SessionOptions{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := yieldlab.ParseQuerySpec([]byte(
		`{"kind": "pf", "width_nm": 155, "sweep": {"corners": ["worst", "best"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	results, err := session.EvaluateAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	model, err := yieldlab.NewSharedDeviceModelWithRange(session.Cache(),
		yieldlab.WorstCorner(), params.GridStepNM, params.MaxWidthNM)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.FailureProb(155)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].PF.PF != want {
		t.Fatalf("session pF %g != model pF %g", results[0].PF.PF, want)
	}
	if results[0].Fingerprint == results[1].Fingerprint {
		t.Fatal("distinct corners share a fingerprint")
	}
}

func TestFacadeDeviceModel(t *testing.T) {
	m, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.FailureProb(155)
	if err != nil {
		t.Fatal(err)
	}
	if p < 2e-9 || p > 5e-9 {
		t.Fatalf("pF(155) = %v, want ≈ 3e-9", p)
	}
	if got := m.PerCNTFailure(); math.Abs(got-0.531) > 1e-12 {
		t.Fatalf("pf = %v", got)
	}
	if len(yieldlab.PaperCorners()) != 3 {
		t.Fatal("corners")
	}
}

func TestFacadeDeviceModelWithRange(t *testing.T) {
	m, err := yieldlab.NewDeviceModelWithRange(yieldlab.WorstCorner(), 0.2, 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FailureProb(50); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FailureProb(100); err == nil {
		t.Fatal("beyond custom range should error")
	}
}

func TestFacadeSizing(t *testing.T) {
	m, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		t.Fatal(err)
	}
	problem := &yieldlab.SizingProblem{
		Model:        m,
		Widths:       yieldlab.OpenRISCWidths(),
		M:            1e8,
		DesiredYield: 0.9,
		RelaxFactor:  1,
	}
	base, err := yieldlab.SimplifiedWmin(problem)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := yieldlab.MRmin(200_000, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	problem.RelaxFactor = mr
	opt, err := yieldlab.SimplifiedWmin(problem)
	if err != nil {
		t.Fatal(err)
	}
	if base.Wmin-opt.Wmin < 40 {
		t.Fatalf("correlation benefit too small: %v -> %v", base.Wmin, opt.Wmin)
	}
	budget, err := yieldlab.RequiredDevicePF(3.3e7, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if budget < 3e-9 || budget > 3.3e-9 {
		t.Fatalf("budget: %v", budget)
	}
	y, err := yieldlab.CorrelatedYield(1e5, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if y < 0.9 || y > 0.91 {
		t.Fatalf("correlated yield: %v", y)
	}
}

func TestFacadeLibrariesAndAlignment(t *testing.T) {
	lib, err := yieldlab.NangateLike45()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := yieldlab.AlignLibrary(lib, yieldlab.AlignOptions{WminNM: 109, Bands: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsWithPenalty != 4 {
		t.Fatalf("impacted: %d", rep.CellsWithPenalty)
	}
	cell, err := lib.Cell("AOI222_X1")
	if err != nil {
		t.Fatal(err)
	}
	_, change, err := yieldlab.AlignCell(cell, yieldlab.AlignOptions{WminNM: 109, Bands: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(change.Penalty-0.0909) > 0.01 {
		t.Fatalf("AOI222_X1 penalty: %v", change.Penalty)
	}
}

func TestFacadeOffsets(t *testing.T) {
	od, err := yieldlab.NewOffsetDist([]float64{0, 20}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if od.DistinctCount() != 2 {
		t.Fatal("distinct")
	}
	if yieldlab.AlignedOffsets().Span() != 0 {
		t.Fatal("aligned span")
	}
}

func TestFacadeNoiseMargin(t *testing.T) {
	m, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		t.Fatal(err)
	}
	pmf, err := m.CountModel().CountPMF(155)
	if err != nil {
		t.Fatal(err)
	}
	p := yieldlab.NoiseParams{
		PMetallic: 0.33, PRemoveMetallic: 0.9999, PRemoveSemi: 0.3, RatioThreshold: 0.15,
	}
	v, err := yieldlab.NoiseViolationProb(pmf, p)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v > 1e-4 {
		t.Fatalf("violation prob: %v", v)
	}
	y, err := yieldlab.ChipNoiseYield(v, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if y <= 0 || y >= 1 {
		t.Fatalf("noise yield: %v", y)
	}
	req, err := yieldlab.RequiredPRm(pmf, p, 1e8, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if req < 0.999 {
		t.Fatalf("required pRm: %v", req)
	}
}

func TestFacadeExperimentNames(t *testing.T) {
	names := yieldlab.ExperimentNames()
	if len(names) != 8 || names[0] != "fig2.1" || names[7] != "table2" {
		t.Fatalf("names: %v", names)
	}
	runner := yieldlab.NewRunner(yieldlab.DefaultParams())
	if runner.Params().M != 1e8 {
		t.Fatal("default M")
	}
}

// ExampleNewDeviceModel reproduces the Fig. 2.1 anchor point.
func ExampleNewDeviceModel() {
	model, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		panic(err)
	}
	pf, _ := model.FailureProb(155)
	fmt.Printf("pf per CNT: %.3f\n", model.PerCNTFailure())
	fmt.Printf("pF(155 nm) within paper band: %v\n", pf > 2e-9 && pf < 5e-9)
	// Output:
	// pf per CNT: 0.531
	// pF(155 nm) within paper band: true
}

// ExampleMRmin shows the Eq. 3.2 headline factor.
func ExampleMRmin() {
	mr, _ := yieldlab.MRmin(200_000, 1.8) // 200 µm CNTs, 1.8 FETs/µm
	fmt.Printf("MRmin = %.0f devices share one CNT span\n", mr)
	// Output:
	// MRmin = 360 devices share one CNT span
}

// ExampleSession_Evaluate estimates a deep-tail row failure probability
// with the rare-event estimator layer: mc_method selects the importance
// sampler and rel_err_target the adaptive stopping rule (DESIGN.md §8).
func ExampleSession_Evaluate() {
	session, err := yieldlab.NewSession(yieldlab.SessionOptions{})
	if err != nil {
		panic(err)
	}
	res, err := session.Evaluate(context.Background(), yieldlab.QuerySpec{
		Kind:         "rowyield",
		Scenario:     "unaligned",
		WidthNM:      155,
		MCMethod:     "tilted",
		RelErrTarget: 0.1,
		// An explicit offset distribution; omit it to use the synthetic
		// 45 nm library's placed offsets.
		Offsets:     []float64{0, 190, 380},
		OffsetProbs: []float64{0.5, 0.25, 0.25},
	})
	if err != nil {
		panic(err)
	}
	ry := res.RowYield
	fmt.Printf("method: %s\n", ry.MCMethod)
	fmt.Printf("rel err within target: %v\n", ry.RelErr > 0 && ry.RelErr <= 0.1)
	fmt.Printf("pRF above aligned floor: %v\n", ry.PRF >= ry.DevicePF)
	// Output:
	// method: tilted
	// rel err within target: true
	// pRF above aligned floor: true
}

// ExampleRowModel_Round runs one zero-allocation Monte Carlo round by
// hand: the estimator APIs (RowModel.EstimateRowFailureParallel, the
// rareevent layer behind QuerySpec.MCMethod) loop exactly this call.
func ExampleRowModel_Round() {
	pitch, err := yieldlab.CalibratedPitch()
	if err != nil {
		panic(err)
	}
	offsets, err := yieldlab.NewOffsetDist([]float64{0, 190, 380}, []float64{0.5, 0.25, 0.25})
	if err != nil {
		panic(err)
	}
	m := &yieldlab.RowModel{
		Pitch:         pitch,
		PerCNTFailure: 0.531,   // worst corner pf
		WidthNM:       142.7,   // minimum device width
		LCNTNM:        200_000, // 200 µm correlated rows
		DensityPerUM:  1.8,
		Offsets:       offsets,
	}
	if err := m.Prepare(); err != nil {
		panic(err)
	}
	st := m.NewRoundState()
	r := rand.New(rand.NewSource(7))
	var sum float64
	for i := 0; i < 1000; i++ {
		p, err := m.Round(r, yieldlab.DirectionalUnaligned, st)
		if err != nil {
			panic(err)
		}
		sum += p
	}
	// Each round returns the exact conditional row failure probability of
	// one sampled track realization; their mean estimates pRF ≈ 2e-7.
	fmt.Printf("1000-round mean is a probability: %v\n", sum/1000 > 0 && sum/1000 < 1)
	// Output:
	// 1000-round mean is a probability: true
}
