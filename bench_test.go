// Benchmarks: one per paper table/figure (regenerating the artifact with
// reduced Monte Carlo budgets) plus ablations for the design choices called
// out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package yieldlab_test

import (
	"math"
	"sync"
	"testing"

	"github.com/cnfet/yieldlab"
	"github.com/cnfet/yieldlab/internal/alignactive"
	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/cntgrowth"
	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/rowyield"
)

// benchRunner shares one experiment runner (and its cached renewal sweeps)
// across benchmarks, mirroring how the CLI runs `all`.
var (
	benchOnce   sync.Once
	benchShared *yieldlab.Runner
)

func benchParams() yieldlab.Params {
	p := yieldlab.DefaultParams()
	p.MCRounds = 20_000
	p.CorrelationRounds = 150
	p.NetlistInstances = 5_000
	return p
}

func runner(b *testing.B) *yieldlab.Runner {
	benchOnce.Do(func() { benchShared = yieldlab.NewRunner(benchParams()) })
	return benchShared
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	r := runner(b)
	// Warm the shared caches outside the timed region.
	if _, err := r.Run(name); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if res.Table == nil {
			b.Fatal("missing table")
		}
	}
}

// BenchmarkFig21 regenerates the pF-vs-width curves of Fig. 2.1.
func BenchmarkFig21(b *testing.B) { benchExperiment(b, "fig2.1") }

// BenchmarkFig22a regenerates the width histogram of Fig. 2.2a.
func BenchmarkFig22a(b *testing.B) { benchExperiment(b, "fig2.2a") }

// BenchmarkFig22b regenerates the penalty-vs-node sweep of Fig. 2.2b.
func BenchmarkFig22b(b *testing.B) { benchExperiment(b, "fig2.2b") }

// BenchmarkTable1 regenerates the three-scenario row-failure Monte Carlo.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig31 regenerates the growth-correlation measurement.
func BenchmarkFig31(b *testing.B) { benchExperiment(b, "fig3.1") }

// BenchmarkFig32 regenerates the AOI222_X1 alignment.
func BenchmarkFig32(b *testing.B) { benchExperiment(b, "fig3.2") }

// BenchmarkFig33 regenerates the before/after penalty sweep of Fig. 3.3.
func BenchmarkFig33(b *testing.B) { benchExperiment(b, "fig3.3") }

// BenchmarkTable2 regenerates the library-wide alignment cost table.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkAblationPitchDistributions compares the device failure model
// under different pitch laws with the same 4 nm mean: the calibrated
// truncated normal, the memoryless exponential (Poisson counting), and the
// idealized deterministic pitch. The reported pF(155 nm) metric shows how
// strongly the density-variation tail drives yield.
func BenchmarkAblationPitchDistributions(b *testing.B) {
	calibrated, err := yieldlab.CalibratedPitch()
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		pitch dist.Continuous
	}{
		{"TruncNormal", calibrated},
		{"Exponential", dist.Exponential{Rate: 0.25}},
		{"Deterministic", dist.Deterministic{V: 4}},
	}
	pf := yieldlab.WorstCorner().PerCNTFailure()
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				m, err := renewal.New(tc.pitch, renewal.WithStep(0.1), renewal.WithMaxWidth(170))
				if err != nil {
					b.Fatal(err)
				}
				pmf, err := m.CountPMF(155)
				if err != nil {
					b.Fatal(err)
				}
				last = pmf.PGF(pf)
			}
			if last > 0 {
				b.ReportMetric(-math.Log10(last), "-log10(pF155)")
			}
		})
	}
}

// BenchmarkAblationRowDP compares the exact run-length DP row-failure
// evaluation against naive Bernoulli Monte Carlo on identical geometry.
// The DP delivers an exact conditional probability in the time the naive
// estimator needs for a handful of coin-flip rounds — and the naive
// estimator cannot resolve 1e-8-scale probabilities at all.
func BenchmarkAblationRowDP(b *testing.B) {
	intervals := make([]rowyield.Interval, 12)
	for i := range intervals {
		lo := i * 5
		intervals[i] = rowyield.Interval{Lo: lo, Hi: lo + 24}
	}
	const nTracks = 90
	const pf = 0.531
	b.Run("ExactDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rowyield.ExactRowFailure(intervals, nTracks, pf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveMC1k", func(b *testing.B) {
		r := rng.New(1)
		fails := 0
		for i := 0; i < b.N; i++ {
			for round := 0; round < 1000; round++ {
				var tracks [nTracks]bool
				for t := range tracks {
					tracks[t] = r.Float64() < pf
				}
				for _, iv := range intervals {
					all := true
					for t := iv.Lo; t <= iv.Hi; t++ {
						if !tracks[t] {
							all = false
							break
						}
					}
					if all {
						fails++
						break
					}
				}
			}
		}
		_ = fails
	})
}

// BenchmarkAblationOrdinaryVsEquilibrium compares the renewal initial
// conditions: the equilibrium (stationary window placement) counting the
// paper's model implies, and the ordinary process (CNT pinned at the window
// edge).
func BenchmarkAblationOrdinaryVsEquilibrium(b *testing.B) {
	pitch, err := yieldlab.CalibratedPitch()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts []renewal.Option
	}{
		{"Equilibrium", []renewal.Option{renewal.WithStep(0.1), renewal.WithMaxWidth(170)}},
		{"Ordinary", []renewal.Option{renewal.WithStep(0.1), renewal.WithMaxWidth(170), renewal.Ordinary()}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := renewal.New(pitch, tc.opts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.CountPMF(155); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBands compares the one-band (full correlation benefit,
// some area) and two-band (half benefit, zero area) library transforms.
func BenchmarkAblationBands(b *testing.B) {
	lib, err := celllib.NangateLike45()
	if err != nil {
		b.Fatal(err)
	}
	for _, bands := range []int{1, 2} {
		name := "OneBand"
		if bands == 2 {
			name = "TwoBands"
		}
		b.Run(name, func(b *testing.B) {
			var impacted int
			for i := 0; i < b.N; i++ {
				rep, err := alignactive.AlignLibrary(lib, alignactive.Options{WminNM: 109, Bands: bands})
				if err != nil {
					b.Fatal(err)
				}
				impacted = rep.CellsWithPenalty
			}
			b.ReportMetric(float64(impacted), "cells-penalized")
		})
	}
}

// BenchmarkAblationLengthJitter exercises the paper's deferred extension
// (CNT length variation): correlation between aligned devices 2 µm apart
// under fixed-length vs ±30 % jittered segments.
func BenchmarkAblationLengthJitter(b *testing.B) {
	pitch, err := yieldlab.CalibratedPitch()
	if err != nil {
		b.Fatal(err)
	}
	fet1 := cntgrowth.Rect{X0: 100, Y0: 200, X1: 160, Y1: 260}
	fet2 := cntgrowth.Rect{X0: 2100, Y0: 200, X1: 2160, Y1: 260}
	rm := cntgrowth.Removal{PRemoveMetallic: 1, PRemoveSemi: 0.3}
	for _, tc := range []struct {
		name   string
		jitter float64
	}{
		{"FixedLength", 0},
		{"Jitter30pct", 0.3},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g := cntgrowth.Directional{
				Pitch: pitch, PMetallic: 0.33,
				LengthNM: 20_000, LengthJitterFrac: tc.jitter,
			}
			var corr float64
			for i := 0; i < b.N; i++ {
				r := rng.Derive(7, uint64(i))
				s, err := cntgrowth.MeasurePairCorrelation(r, g, rm, fet1, fet2, 120)
				if err != nil {
					b.Fatal(err)
				}
				corr = s.CountCorr
			}
			b.ReportMetric(corr, "count-corr")
		})
	}
}

// BenchmarkRenewalSweepCold measures a full cold arrival sweep at the
// paper's default 0.05 nm grid up to 320 nm — the Fig. 2.1-class cost every
// fresh device model pays once before its width cache takes over. This is
// the headline number of the blocked/FFT convolution engine and part of the
// CI bench gate.
func BenchmarkRenewalSweepCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := yieldlab.NewDeviceModelWithRange(yieldlab.WorstCorner(), 0.05, 320)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.FailureProb(320); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceFailureProb measures a single cached pF evaluation — the
// inner-loop cost every chip-level optimization pays.
func BenchmarkDeviceFailureProb(b *testing.B) {
	m, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.FailureProb(155); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FailureProb(155); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerParallel measures the concurrent experiment runner on the
// deterministic (non-Monte-Carlo) artifact subset with a warm sweep cache —
// the fixed coordination-plus-compute cost `cnfetyield all` and server jobs
// pay per batch. Part of the CI bench gate.
func BenchmarkRunnerParallel(b *testing.B) {
	r := runner(b)
	names := []string{"fig2.1", "fig2.2a", "fig2.2b", "fig3.2"}
	// Warm shared caches (sweeps, libraries, Wmin solves) outside the timer.
	if _, err := r.RunMany(names, 4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.RunMany(names, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(names) {
			b.Fatal("missing results")
		}
	}
}

// BenchmarkRowScenarioRound measures one Monte Carlo round of the
// unaligned row scenario (the dominant Table 1 cost).
func BenchmarkRowScenarioRound(b *testing.B) {
	pitch, err := yieldlab.CalibratedPitch()
	if err != nil {
		b.Fatal(err)
	}
	offs := make([]float64, 14)
	probs := make([]float64, 14)
	for i := range offs {
		offs[i], probs[i] = float64(i)*20, 1
	}
	od, err := rowyield.NewOffsetDist(offs, probs)
	if err != nil {
		b.Fatal(err)
	}
	m := &rowyield.RowModel{
		Pitch:         pitch,
		PerCNTFailure: 0.531,
		WidthNM:       142.7,
		LCNTNM:        200_000,
		DensityPerUM:  1.8,
		Offsets:       od,
	}
	if err := m.Prepare(); err != nil {
		b.Fatal(err)
	}
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.EstimateRowFailure(r, rowyield.DirectionalUnaligned, 2); err != nil {
			b.Fatal(err)
		}
	}
}
