// growth_correlation simulates the two growth processes physically and
// measures the CNT count/type correlation between neighbouring CNFETs —
// the premise of the paper's Section 3.1 and its Fig. 3.1 — then writes the
// three panels as SVG files into ./fig3_1/.
//
//	go run ./examples/growth_correlation
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/cnfet/yieldlab"
)

func main() {
	runner := yieldlab.NewRunner(func() yieldlab.Params {
		p := yieldlab.DefaultParams()
		p.CorrelationRounds = 400
		return p
	}())
	res, err := runner.Run("fig3.1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Text())

	dir := "fig3_1"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, svg := range res.SVGs {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}

	fmt.Println("\nthe panels show one growth realization each:")
	fmt.Println("  (a) dispersed sticks — the two devices share nothing;")
	fmt.Println("  (b) directional tracks, misaligned actives — partial sharing;")
	fmt.Println("  (c) directional tracks, aligned actives — identical CNTs.")
}
