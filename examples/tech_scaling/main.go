// tech_scaling sweeps the upsizing penalty across technology nodes with and
// without the correlation co-optimization — the paper's Figs. 2.2b and 3.3
// side by side, and the argument for why CNT correlation matters more the
// further CMOS-style scaling proceeds.
//
//	go run ./examples/tech_scaling
package main

import (
	"fmt"
	"log"

	"github.com/cnfet/yieldlab"
)

func main() {
	runner := yieldlab.NewRunner(yieldlab.DefaultParams())

	before, err := runner.Run("fig2.2b")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(before.Text())

	both, err := runner.Run("fig3.3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(both.Text())

	fmt.Println("reading: transistor widths scale with the node while the inter-CNT")
	fmt.Println("pitch stays at 4 nm, so a fixed Wmin swallows ever more of the design;")
	fmt.Println("the 350× failure-budget relaxation halves the penalty at every node")
	fmt.Println("and nearly erases it at 45 nm.")
}
