// openrisc_yield walks the paper's Section 2 case study end to end: an
// OpenRISC-class design on a 45 nm CNFET library, its transistor width
// distribution, the yield-driven sizing threshold, and what the upsizing
// costs in gate capacitance across technology nodes.
//
// The row-level cross-check at the end uses the rare-event engine
// (DESIGN.md §8): instead of hard-coding a Monte Carlo round count, it asks
// for the non-aligned row failure at the sized width to a 5 % relative
// error (MCMethod "auto" + RelErrTarget) and prints the estimator the
// engine selected. Expect the width histogram summary, the Eq. 2.5 budget,
// the two Wmin solutions, a "row failure at Wmin … pRF ≈ 4e-8 (rel err
// ≤5%)" line, and the Fig. 2.2b penalty table.
//
//	go run ./examples/openrisc_yield
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/cnfet/yieldlab"
)

func main() {
	widths := yieldlab.OpenRISCWidths()
	fmt.Println("OpenRISC case study (paper Section 2.2)")
	fmt.Printf("  mean transistor width: %.0f nm\n", widths.Mean())
	fmt.Printf("  share below 155 nm (Mmin/M): %.0f%%\n\n", widths.ShareBelow(155)*100)

	model, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		log.Fatal(err)
	}
	problem := &yieldlab.SizingProblem{
		Model:        model,
		Widths:       widths,
		M:            1e8,
		DesiredYield: 0.90,
		RelaxFactor:  1,
	}

	// The failure budget construction of Eq. 2.5.
	budget, err := yieldlab.RequiredDevicePF(0.33*problem.M, problem.DesiredYield)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device failure budget (1-Yd)/Mmin = %.2e\n", budget)

	simplified, err := yieldlab.SimplifiedWmin(problem)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := yieldlab.ExactWmin(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wmin, simplified Eq. 2.5: %.1f nm (chip yield %.4f)\n", simplified.Wmin, simplified.Yield)
	fmt.Printf("Wmin, exact Eq. 2.4:      %.1f nm (chip yield %.4f)\n\n", exact.Wmin, exact.Yield)

	// Row-level cross-check with the rare-event engine: the non-aligned
	// correlated row failure at the sized width, resolved to a requested
	// relative error instead of a fixed round budget. "auto" picks the
	// estimator (tilted importance sampling in this regime) and reports it.
	session, err := yieldlab.NewSession(yieldlab.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	row, err := session.Evaluate(context.Background(), yieldlab.QuerySpec{
		Kind: "rowyield", Scenario: "unaligned", WidthNM: simplified.Wmin,
		MCMethod: "auto", RelErrTarget: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	ry := row.RowYield
	fmt.Printf("row failure at Wmin (non-aligned, method %q): pRF = %.2e (rel err %.1f%%, %d rounds)\n\n",
		ry.MCMethod, ry.PRF, ry.RelErr*100, ry.Rounds)

	// Upsizing cost vs technology node: widths scale, the 4 nm CNT pitch
	// does not — the paper's Fig. 2.2b blow-up.
	fmt.Println("gate-capacitance penalty of upsizing to Wmin (Fig. 2.2b):")
	for _, node := range []struct {
		name  string
		scale float64
	}{
		{"45nm", 1}, {"32nm", 32.0 / 45}, {"22nm", 22.0 / 45}, {"16nm", 16.0 / 45},
	} {
		// Penalty = upsized mean / mean - 1 on the node-scaled widths.
		mean := widths.Mean() * node.scale
		upsized := 0.0
		ws := widths.Widths()
		ps := widths.Probs()
		for i := range ws {
			w := ws[i] * node.scale
			if w < simplified.Wmin {
				w = simplified.Wmin
			}
			upsized += w * ps[i]
		}
		fmt.Printf("  %-5s %6.1f%%\n", node.name, (upsized/mean-1)*100)
	}
	fmt.Println("\nthe correlated version of this sweep is examples/tech_scaling")
}
