// noise_margin explores the failure mode the paper sets aside from
// count-limited yield: metallic CNTs that survive removal short the channel
// and erode static noise margins [Zhang 09b]. It reproduces the requirement
// the paper quotes — practical VLSI needs a metallic-removal efficiency pRm
// beyond 99.99% — and shows how the requirement moves with device width.
//
//	go run ./examples/noise_margin
package main

import (
	"fmt"
	"log"

	"github.com/cnfet/yieldlab"
)

func main() {
	model, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		log.Fatal(err)
	}
	params := yieldlab.NoiseParams{
		PMetallic:       0.33,
		PRemoveMetallic: 0.9999,
		PRemoveSemi:     0.30,
		RatioThreshold:  0.15,
	}
	const gates = 1e8
	const target = 0.90

	fmt.Println("noise-limited yield at pRm = 99.99%:")
	for _, w := range []float64{103, 155, 250} {
		pmf, err := model.CountModel().CountPMF(w)
		if err != nil {
			log.Fatal(err)
		}
		v, err := yieldlab.NoiseViolationProb(pmf, params)
		if err != nil {
			log.Fatal(err)
		}
		y, err := yieldlab.ChipNoiseYield(v, gates)
		if err != nil {
			log.Fatal(err)
		}
		req, err := yieldlab.RequiredPRm(pmf, params, gates, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  W = %3.0f nm: violation %.2e, chip yield %.4f, required pRm 1-%.1e\n",
			w, v, y, 1-req)
	}
	fmt.Println("\nthe paper's quoted requirement ([Zhang 09b]): pRm > 99.99%.")
	fmt.Println("the binding population is the small-width devices: their few")
	fmt.Println("semiconducting tubes tolerate almost no metallic shunt, which is")
	fmt.Println("why the removal step, not upsizing, owns this failure mode.")
}
