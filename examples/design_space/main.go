// design_space explores the paper's implicit study space as ONE declarative
// query: processing corner × technology node × chip yield target, evaluated
// through the shared QuerySpec/Session API (the same spec could be POSTed
// verbatim to a yieldserver's /v2/query endpoint or fed to
// `cnfetyield -spec`).
//
// It answers the question behind Figs. 2.1/2.2b in a single sweep: how far
// must minimum devices be upsized (Wmin) at each corner, node and yield
// target — and therefore where the uncorrelated-growth yield strategy
// collapses and the paper's correlation co-optimization becomes mandatory.
//
// The final query steps past the sweep into the deep tail: a non-aligned
// 270 nm row failure probability around 10⁻¹⁴, requested by relative-error
// target (MCMethod "auto" + RelErrTarget, DESIGN.md §8) rather than by a
// hard-coded round count. Expect a Wmin table over the 12 sweep points, the
// MRmin = 360 relax-factor comparison, one "deep tail … pRF = 1.7e-14
// (rel err ≤10%)" line, and the sweep-cache stats.
//
//	go run ./examples/design_space
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/cnfet/yieldlab"
)

func main() {
	// One spec, three axes: 3 corners × 2 nodes × 2 yield targets = 12
	// concrete queries. Expansion order is deterministic (corners vary
	// slowest), results come back in that order regardless of parallelism.
	sweep := yieldlab.QuerySpec{
		Kind: "wmin",
		Sweep: &yieldlab.QuerySweep{
			Corners: []string{"worst", "mid", "best"},
			Nodes:   []string{"45nm", "22nm"},
			Yields:  []float64{0.90, 0.99},
		},
	}

	session, err := yieldlab.NewSession(yieldlab.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	results, err := session.EvaluateAllFunc(context.Background(), sweep,
		func(done, total int, r yieldlab.QueryResult) {
			fmt.Fprintf(os.Stderr, "  [%2d/%d] %s\n", done, total, r.Fingerprint)
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Wmin across the design space (all corners share one swept CNT-count table):")
	fmt.Printf("%-8s %-6s %-7s %10s %12s %12s\n",
		"corner", "node", "yield", "Wmin (nm)", "device pF", "Mmin share")
	for _, r := range results {
		w := r.Wmin
		node := w.Node
		if node == "" {
			node = "45nm"
		}
		fmt.Printf("%-8s %-6s %-7.2f %10.1f %12.2e %12.3f\n",
			w.Corner, node, w.DesiredYield, w.WminNM, w.DevicePF, w.MminShare)
	}

	// The punchline of Fig. 2.2b, read straight off the sweep: at scaled
	// nodes the threshold refuses to scale (the CNT pitch stays at 4 nm),
	// so the upsizing penalty explodes — unless row correlation relaxes
	// the failure budget by MRmin ≈ 360×.
	base, relaxed := results[0].Wmin, mustEval(session, yieldlab.QuerySpec{
		Kind: "wmin", RelaxFactor: 360,
	})
	fmt.Printf("\nworst corner, 90%% yield: Wmin %.1f nm uncorrelated → %.1f nm with\n",
		base.WminNM, relaxed.Wmin.WminNM)
	fmt.Println("row correlation + aligned actives (relax factor MRmin = 360, Eq. 3.1/3.2)")

	// Where the design space leaves plain Monte Carlo behind: the relax
	// factor rests on correlated row-failure probabilities that live in the
	// deep tail. Instead of hard-coding a round budget and hoping it
	// converges, ask for a relative error — the rare-event engine
	// (DESIGN.md §8) picks the estimator and runs until it gets there.
	deep := mustEval(session, yieldlab.QuerySpec{
		Kind: "rowyield", Scenario: "unaligned", WidthNM: 270,
		MCMethod: "auto", RelErrTarget: 0.1,
	})
	ry := deep.RowYield
	fmt.Printf("\ndeep tail, non-aligned 270 nm row (method %q): pRF = %.2e (rel err %.0f%%, %d rounds)\n",
		ry.MCMethod, ry.PRF, ry.RelErr*100, ry.Rounds)

	st := session.Cache().Stats()
	fmt.Printf("\nsweep cache: %d model(s), %d sweep(s), %d hit(s) for 14 queries\n",
		st.Entries, st.Sweeps, st.Hits)
}

func mustEval(s *yieldlab.Session, spec yieldlab.QuerySpec) yieldlab.QueryResult {
	res, err := s.Evaluate(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
