// Quickstart: the paper's headline numbers in a few calls.
//
//	go run ./examples/quickstart
//
// It builds the calibrated CNFET failure model, derives the chip-level
// sizing threshold Wmin with and without CNT correlation, and prints the
// failure-budget relaxation the aligned-active layout buys.
package main

import (
	"fmt"
	"log"

	"github.com/cnfet/yieldlab"
)

func main() {
	// Device level: the worst processing corner of Fig. 2.1
	// (33% metallic CNTs, 30% collateral removal of good CNTs).
	model, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		log.Fatal(err)
	}
	pf155, err := model.FailureProb(155)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-CNT failure probability pf = %.3f\n", model.PerCNTFailure())
	fmt.Printf("device failure probability pF(155 nm) = %.2e  (paper anchor: 3e-9)\n\n", pf155)

	// Chip level: 100M transistors, 90% yield target, the OpenRISC width
	// distribution of Fig. 2.2a.
	problem := &yieldlab.SizingProblem{
		Model:        model,
		Widths:       yieldlab.OpenRISCWidths(),
		M:            1e8,
		DesiredYield: 0.90,
		RelaxFactor:  1,
	}
	base, err := yieldlab.SimplifiedWmin(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncorrelated Wmin = %.1f nm (paper: 155 nm)\n", base.Wmin)

	// The contribution: directional growth + aligned-active layout makes a
	// whole row of MRmin devices fail like one device.
	mrmin, err := yieldlab.MRmin(200_000 /* LCNT nm */, 1.8 /* FETs/µm */)
	if err != nil {
		log.Fatal(err)
	}
	problem.RelaxFactor = mrmin
	opt, err := yieldlab.SimplifiedWmin(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlated  Wmin = %.1f nm at %.0f× relaxation (paper: 103 nm at ≈350×)\n",
		opt.Wmin, mrmin)
	fmt.Printf("upsizing threshold reduced by %.1f nm\n", base.Wmin-opt.Wmin)
}
