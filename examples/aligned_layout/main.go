// aligned_layout demonstrates the paper's Section 3: enforcing the
// aligned-active restriction on the synthetic Nangate-like library, the
// area it costs (Table 2 / Fig. 3.2), and the row-failure-probability
// benefit it buys (Table 1), estimated by Monte Carlo on the correlated
// row model.
//
//	go run ./examples/aligned_layout [-rounds N]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/cnfet/yieldlab"
)

func main() {
	rounds := flag.Int("rounds", 40_000, "Monte Carlo rounds per scenario")
	flag.Parse()
	lib, err := yieldlab.NangateLike45()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Transform the library (one aligned band).
	const wmin = 108.3 // the correlated Wmin the experiments derive
	rep, err := yieldlab.AlignLibrary(lib, yieldlab.AlignOptions{WminNM: wmin, Bands: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned-active transform at Wmin = %.1f nm:\n", wmin)
	fmt.Printf("  %d of %d cells pay area (%.1f%% – %.1f%%)\n",
		rep.CellsWithPenalty, len(rep.Changes), rep.MinPenalty*100, rep.MaxPenalty*100)
	for _, ch := range rep.Changes {
		if ch.Penalty > 0 {
			fmt.Printf("    %-12s +%.1f%%\n", ch.Name, ch.Penalty*100)
		}
	}

	// 2. Row-level benefit: Monte Carlo over shared CNT tracks.
	pitch, err := yieldlab.CalibratedPitch()
	if err != nil {
		log.Fatal(err)
	}
	model, err := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
	if err != nil {
		log.Fatal(err)
	}
	devicePF, err := model.FailureProb(142.7) // Table 1 operating point
	if err != nil {
		log.Fatal(err)
	}
	row := &yieldlab.RowModel{
		Pitch:         pitch,
		PerCNTFailure: yieldlab.WorstCorner().PerCNTFailure(),
		WidthNM:       142.7,
		LCNTNM:        200_000,
		DensityPerUM:  1.8,
		// A compact stand-in for the library's lateral offsets; the full
		// experiment extracts them from the placed netlist.
		Offsets: mustOffsets(),
	}
	fmt.Printf("\nrow failure probability (MRmin = 360 devices per CNT span):\n")
	for _, s := range []yieldlab.RowScenario{
		yieldlab.UncorrelatedGrowth,
		yieldlab.DirectionalUnaligned,
		yieldlab.DirectionalAligned,
	} {
		est, err := row.EstimateRowFailureParallel(1, s, *rounds, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-38s pRF = %.2e (± %.0e)\n", s, est.Mean, est.StdErr)
	}
	fmt.Printf("  device-level pF at this width:        %.2e\n", devicePF)
	fmt.Println("\naligned rows fail like single devices: pRF ≈ pF — the 350× of the paper")
}

// mustOffsets builds 14 equally likely offsets on the library's 20 nm grid.
func mustOffsets() yieldlab.OffsetDist {
	offs := make([]float64, 14)
	probs := make([]float64, 14)
	for i := range offs {
		offs[i] = float64(i) * 20
		probs[i] = 1
	}
	od, err := yieldlab.NewOffsetDist(offs, probs)
	if err != nil {
		log.Fatal(err)
	}
	return od
}
