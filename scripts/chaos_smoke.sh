#!/usr/bin/env bash
# Chaos smoke: the crash-recovery contract, end to end, on a race-enabled
# build of the real binary.
#
# Phase 1 evaluates a sweep synchronously — the uninterrupted baseline.
# Phase 2 runs the same sweep as an async job with a panic failpoint armed
# on the job.result site (YIELD_FAILPOINTS): the panic fires on the sweep's
# collector goroutine after the second checkpointed result and kills the
# whole process — the fault framework's stand-in for power loss, leaving
# the journaled prefix as the only survivor. Phase 3 restarts clean on the
# same -store: the server must re-adopt the journal, resume the job from
# its checkpoint, and finish with results byte-identical to the baseline.
#
# Run from the repository root: ./scripts/chaos_smoke.sh
set -euo pipefail

ADDR=127.0.0.1:8111
BASE="http://$ADDR"
STORE="$(mktemp -d)"
WORK="$(mktemp -d)"
BIN="$WORK/yieldserver"

go build -race -o "$BIN" ./cmd/yieldserver

SERVER_PID=
start_server() { # $1 = YIELD_FAILPOINTS spec (empty = no faults)
  YIELD_FAILPOINTS="${1:-}" "$BIN" -addr "$ADDR" -store "$STORE" -calibrate=false &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "chaos smoke: server did not come up" >&2
  exit 1
}
stop_server() {
  kill -TERM "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
}

SPEC='{"kind":"pf","width_nm":155,"sweep":{"widths_nm":[100,150,200]}}'

# --- Phase 1: uninterrupted baseline -------------------------------------
start_server ""
curl -sf -X POST "$BASE/v2/query" -d "$SPEC" \
  | jq -c '[.results[].pf]' > "$WORK/baseline.json"
stop_server

# --- Phase 2: submit the job, then die mid-sweep --------------------------
start_server "job.result=panic@nth=2"
JOB="$(curl -sf -X POST "$BASE/v2/query?async=1" -d "$SPEC" | jq -r '.id')"
test -n "$JOB"
# No kill from here: the armed panic must take the process down on its own.
if wait "$SERVER_PID" 2>/dev/null; then
  echo "chaos smoke: server survived an armed job.result panic" >&2
  exit 1
fi
# The atomically-renamed journal record survived the crash.
test -f "$STORE/jobs/$JOB.job"

# --- Phase 3: clean restart adopts, resumes, matches byte for byte --------
start_server ""
STATE=""
for _ in $(seq 1 300); do
  STATE="$(curl -sf "$BASE/v1/jobs/$JOB" | jq -r '.state' || echo '')"
  case "$STATE" in
    done) break ;;
    failed)
      echo "chaos smoke: resumed job failed" >&2
      curl -s "$BASE/v1/jobs/$JOB" >&2
      exit 1
      ;;
  esac
  sleep 0.2
done
test "$STATE" = done
curl -sf "$BASE/v1/jobs/$JOB" \
  | jq -c '[.query_results[].pf]' > "$WORK/resumed.json"
cmp "$WORK/baseline.json" "$WORK/resumed.json"
# The record was adopted from the journal, not quarantined.
curl -sf "$BASE/v1/stats" \
  | jq -e '.job_journal.loads >= 1 and .job_journal.quarantined == 0' >/dev/null
stop_server

echo "chaos smoke: OK (job $JOB resumed byte-identically after crash)"
