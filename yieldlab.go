// Package yieldlab is a laboratory for carbon-nanotube FET (CNFET) circuit
// yield under CNT count failures, reproducing "Carbon Nanotube Correlation:
// Promising Opportunity for CNFET Circuit Yield Enhancement" (Zhang, Bobba,
// Patil, Lin, Wong, De Micheli, Mitra — DAC 2010).
//
// The library covers the full stack the paper builds on:
//
//   - a stochastic CNT growth substrate (directional tracks and dispersed
//     sticks) with metallic-CNT removal;
//   - the device-level count-failure model pF(W) = Σ P{N(W)=k}·pf^k over an
//     exact renewal CNT-count distribution;
//   - chip-level yield and the Wmin upsizing optimization;
//   - the paper's contribution: row-level CNT correlation under directional
//     growth and the aligned-active standard-cell layout restriction,
//     including the library transformation and its area cost;
//   - experiment runners regenerating every table and figure of the paper.
//
// Quick start — the declarative QuerySpec/Session API, shared verbatim by
// the cnfetyield CLI (-spec) and the yieldserver /v2/query endpoint:
//
//	session, _ := yieldlab.NewSession(yieldlab.SessionOptions{})
//	res, _ := session.Evaluate(ctx, yieldlab.QuerySpec{Kind: "pf", WidthNM: 155})
//	fmt.Println(res.PF.PF)                         // ≈ 3e-9, Fig. 2.1 anchor
//
// A single spec with sweep axes expands into a whole design-space study:
//
//	sweep := yieldlab.QuerySpec{
//		Kind:  "wmin",
//		Sweep: &yieldlab.QuerySweep{
//			Corners: []string{"worst", "mid"},
//			Nodes:   []string{"45nm", "22nm"},
//			Yields:  []float64{0.90, 0.99},
//		},
//	}
//	results, _ := session.EvaluateAll(ctx, sweep)  // 8 concrete specs
//
// The lower-level constructors below remain for direct model access:
//
//	model, _ := yieldlab.NewDeviceModel(yieldlab.WorstCorner())
//	pf155, _ := model.FailureProb(155)
//	runner := yieldlab.NewRunner(yieldlab.DefaultParams())
//	res, _ := runner.Run("table1")                 // regenerate Table 1
//
// The sub-experiments, calibration constants and deviations from the paper
// are documented in DESIGN.md and EXPERIMENTS.md.
package yieldlab

import (
	"io"

	"github.com/cnfet/yieldlab/internal/alignactive"
	"github.com/cnfet/yieldlab/internal/buildinfo"
	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/cntgrowth"
	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/jobstore"
	"github.com/cnfet/yieldlab/internal/noisemargin"
	"github.com/cnfet/yieldlab/internal/query"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rowyield"
	"github.com/cnfet/yieldlab/internal/server"
	"github.com/cnfet/yieldlab/internal/sweepstore"
	"github.com/cnfet/yieldlab/internal/widthdist"
	"github.com/cnfet/yieldlab/internal/yield"
)

// Declarative query API: one serializable spec language and one stateful
// session shared by this facade, the cnfetyield CLI and the yieldserver
// HTTP service. New code should prefer these over the loose constructors
// below — a QuerySpec round-trips through JSON, canonicalizes to a stable
// fingerprint (the cache/ETag identity), and expands sweep axes into a
// deterministic cartesian product of concrete queries.
type (
	// QuerySpec is a declarative yield query: kind pf | wmin | rowyield |
	// noise | experiment, plus coordinates and optional sweep axes.
	QuerySpec = query.Spec
	// QuerySweep declares the cartesian sweep axes of a QuerySpec.
	QuerySweep = query.Sweep
	// QueryResult is one evaluated spec with its kind-specific payload.
	QueryResult = query.Result
	// Session owns the shared sweep cache, the optional persistent sweep
	// store and a bounded worker pool, and evaluates QuerySpecs.
	Session = query.Session
	// SessionOptions configures NewSession; the zero value is usable.
	SessionOptions = query.Options
)

// NewSession builds the stateful evaluator behind the query API, warming
// its sweep cache from SessionOptions.Store when one is given.
func NewSession(opts SessionOptions) (*Session, error) { return query.NewSession(opts) }

// Version returns the running binary's one-line version string: the module
// version refined with the VCS revision and dirty marker when the build
// metadata carries them. It backs `cnfetyield -version`, /healthz and the
// /metrics build_info gauge.
func Version() string { return buildinfo.Version() }

// BuildInfo describes the running binary (version, VCS revision, toolchain).
type BuildInfo = buildinfo.Info

// GetBuildInfo returns the binary's build metadata, read once and cached.
func GetBuildInfo() BuildInfo { return buildinfo.Get() }

// ParseQuerySpec strictly decodes and validates a JSON QuerySpec — the
// format accepted by `cnfetyield -spec` and POST /v2/query.
func ParseQuerySpec(data []byte) (QuerySpec, error) { return query.Parse(data) }

// QueryKinds lists the spec kinds.
func QueryKinds() []string { return query.Kinds() }

// Device-level modeling (paper Section 2.1).
type (
	// FailureParams carries the processing probabilities pm, pRs, pRm of
	// Eq. 2.1.
	FailureParams = device.FailureParams
	// DeviceModel evaluates the count-failure probability pF(W) of Eq. 2.2.
	DeviceModel = device.FailureModel
	// Corner is a named processing condition of Fig. 2.1.
	Corner = device.Corner
	// CurrentModel demonstrates the 1/√N drive-current averaging law.
	CurrentModel = device.CurrentModel
)

// WorstCorner returns the pm=33%, pRs=30% corner behind every headline
// number in the paper.
func WorstCorner() FailureParams { return device.WorstCorner() }

// PaperCorners returns the three processing corners of Fig. 2.1.
func PaperCorners() []Corner { return device.PaperCorners() }

// NewDeviceModel builds the calibrated device failure model (truncated-
// normal pitch, mean 4 nm) for the given processing corner.
//
// Prefer Session.Evaluate with a "pf"-kind QuerySpec for one-off pF
// queries: it shares swept tables across corners automatically.
func NewDeviceModel(p FailureParams) (*DeviceModel, error) {
	return device.NewCalibratedModel(p)
}

// NewDeviceModelWithRange builds the calibrated model with a custom grid
// step and maximum width (nm) for fine-resolution or wide-device studies.
func NewDeviceModelWithRange(p FailureParams, stepNM, maxWidthNM float64) (*DeviceModel, error) {
	return device.NewCalibratedModel(p, renewal.WithStep(stepNM), renewal.WithMaxWidth(maxWidthNM))
}

// SweepCache shares swept renewal count tables between device models whose
// pitch law and grid coincide. Process corners differ only in pf, which
// enters after the count distribution, so models for all corners of one
// technology share a single table. The runner returned by NewRunner carries
// its own cache; construct one explicitly to pool custom corner studies.
type SweepCache = renewal.SweepCache

// NewSweepCache returns an empty sweep cache.
func NewSweepCache() *SweepCache { return renewal.NewSweepCache() }

// NewSharedDeviceModel is NewDeviceModel drawing the count model from the
// given sweep cache (nil behaves like NewDeviceModel).
func NewSharedDeviceModel(cache *SweepCache, p FailureParams) (*DeviceModel, error) {
	return device.NewCalibratedModelWith(cache, p)
}

// NewSharedDeviceModelWithRange is NewDeviceModelWithRange drawing the
// count model from the given sweep cache (nil behaves like
// NewDeviceModelWithRange).
func NewSharedDeviceModelWithRange(cache *SweepCache, p FailureParams, stepNM, maxWidthNM float64) (*DeviceModel, error) {
	return device.NewCalibratedModelWith(cache, p, renewal.WithStep(stepNM), renewal.WithMaxWidth(maxWidthNM))
}

// NewSweepCacheSized returns a sweep cache bounded to n models (LRU
// eviction beyond that) — the right construction for long-lived services.
func NewSweepCacheSized(n int) *SweepCache {
	c := renewal.NewSweepCache()
	c.SetMaxEntries(n)
	return c
}

// Persistent sweep store and HTTP service surface.
type (
	// SweepStore persists swept renewal tables on disk, so a restarted
	// process warms its sweep cache without recomputing convolutions.
	SweepStore = sweepstore.Store
	// JobStore journals the server's async jobs on disk, so a restarted
	// server re-adopts them and resumes interrupted sweeps from their last
	// checkpointed results.
	JobStore = jobstore.Store
	// ServerConfig configures the HTTP yield service.
	ServerConfig = server.Config
	// Server is the long-lived HTTP/JSON yield service.
	Server = server.Server
)

// OpenSweepStore opens (creating if needed) a sweep-table store directory.
func OpenSweepStore(dir string) (*SweepStore, error) { return sweepstore.Open(dir) }

// OpenJobStore opens (creating if needed) a job-journal directory.
func OpenJobStore(dir string) (*JobStore, error) { return jobstore.Open(dir) }

// WarmSweepCache loads every intact stored record into the cache, returning
// how many were restored.
func WarmSweepCache(store *SweepStore, cache *SweepCache) (int, error) {
	return sweepstore.WarmCache(store, cache)
}

// PersistSweepCache saves every fingerprinted swept model to the store,
// returning how many records were written.
func PersistSweepCache(store *SweepStore, cache *SweepCache) (int, error) {
	return sweepstore.PersistCache(store, cache)
}

// NewServer builds the HTTP yield service (serve its Handler; Close on
// shutdown to drain jobs and persist the sweep store).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// WriteResultsJSON renders experiment results as the service's JSON schema —
// the encoding behind both the job API and `cnfetyield -json`.
func WriteResultsJSON(w io.Writer, results []*Result) error {
	return server.WriteResults(w, results)
}

// KnownExperiment reports whether name is a paper or extension experiment.
func KnownExperiment(name string) bool { return experiments.Known(name) }

// SuggestExperiment returns the known experiment name closest to a typo,
// when one is close enough to be a plausible intent.
func SuggestExperiment(name string) (string, bool) { return experiments.Suggest(name) }

// ExperimentExtensionNames lists the non-paper extension experiments.
func ExperimentExtensionNames() []string { return experiments.ExtensionNames() }

// CalibratedPitch returns the frozen inter-CNT pitch law (see DESIGN.md §5).
func CalibratedPitch() (dist.TruncNormal, error) { return device.CalibratedPitch() }

// DefaultCurrentModel returns the representative drive-current parameters.
func DefaultCurrentModel() CurrentModel { return device.DefaultCurrentModel() }

// Chip-level yield and sizing (paper Section 2.2).
type (
	// SizingProblem is one chip-level Wmin optimization instance.
	SizingProblem = yield.Problem
	// SizingResult is a Wmin solution.
	SizingResult = yield.Result
	// WidthDistribution is a discrete transistor-width distribution.
	WidthDistribution = widthdist.Distribution
)

// OpenRISCWidths returns the frozen Fig. 2.2a width distribution.
func OpenRISCWidths() *WidthDistribution { return widthdist.OpenRISC45() }

// SimplifiedWmin solves Eq. 2.5 (charge all yield loss to minimum devices).
//
// Prefer Session.Evaluate with a "wmin"-kind QuerySpec unless the sizing
// problem needs a custom width distribution.
func SimplifiedWmin(p *SizingProblem) (SizingResult, error) { return yield.SimplifiedWmin(p) }

// ExactWmin solves Eq. 2.4 by bisection over the threshold.
func ExactWmin(p *SizingProblem) (SizingResult, error) { return yield.ExactWmin(p) }

// RequiredDevicePF returns the per-device failure budget (1-Yd)/Mmin.
func RequiredDevicePF(mMin, desiredYield float64) (float64, error) {
	return yield.RequiredDevicePF(mMin, desiredYield)
}

// Row correlation (paper Section 3.1): the core contribution.
type (
	// RowModel is the correlated-row Monte Carlo of Table 1.
	RowModel = rowyield.RowModel
	// RowScenario selects a growth/layout combination.
	RowScenario = rowyield.Scenario
	// OffsetDist is a lateral active-offset distribution.
	OffsetDist = rowyield.OffsetDist
	// RowEstimate is a Monte Carlo estimate with standard error.
	RowEstimate = rowyield.Estimate
	// RowRoundState is the reusable per-goroutine scratch of the row Monte
	// Carlo: RowModel.Round over one RowRoundState performs zero
	// steady-state heap allocations.
	RowRoundState = rowyield.RoundState
)

// The three scenarios of Table 1.
const (
	UncorrelatedGrowth   = rowyield.UncorrelatedGrowth
	DirectionalUnaligned = rowyield.DirectionalUnaligned
	DirectionalAligned   = rowyield.DirectionalAligned
)

// MRmin returns Eq. 3.2: LCNT (nm) × density (FETs/µm).
func MRmin(lcntNM, densityPerUM float64) (float64, error) {
	return rowyield.MRmin(lcntNM, densityPerUM)
}

// NewOffsetDist validates and normalizes a lateral offset distribution.
func NewOffsetDist(offsets, probs []float64) (OffsetDist, error) {
	return rowyield.NewOffsetDist(offsets, probs)
}

// AlignedOffsets returns the degenerate offset distribution of the
// aligned-active layout.
func AlignedOffsets() OffsetDist { return rowyield.Aligned() }

// CorrelatedYield returns Eq. 3.1: (1-pRF)^KR.
func CorrelatedYield(kRows, pRF float64) (float64, error) {
	return rowyield.CorrelatedYield(kRows, pRF)
}

// Aligned-active layout restriction (paper Section 3.2).
type (
	// AlignOptions configures the transform (Wmin, 1 or 2 bands).
	AlignOptions = alignactive.Options
	// CellChange records the transform's effect on one cell.
	CellChange = alignactive.CellChange
	// LibraryReport aggregates a whole-library transform (Table 2).
	LibraryReport = alignactive.LibraryReport
	// Library is a standard-cell library.
	Library = celllib.Library
	// Cell is one standard cell.
	Cell = celllib.Cell
)

// NangateLike45 generates the synthetic 134-cell 45 nm library.
func NangateLike45() (*Library, error) { return celllib.NangateLike45() }

// Commercial65 generates the synthetic 775-cell 65 nm library.
func Commercial65() (*Library, error) { return celllib.Commercial65() }

// AlignCell applies the aligned-active restriction to one cell.
func AlignCell(c *Cell, opt AlignOptions) (Cell, CellChange, error) {
	return alignactive.AlignCell(c, opt)
}

// AlignLibrary applies the restriction to a whole library.
func AlignLibrary(lib *Library, opt AlignOptions) (*LibraryReport, error) {
	return alignactive.AlignLibrary(lib, opt)
}

// Growth substrate (paper Section 3.1 premise, Fig. 3.1).
type (
	// DirectionalGrowth grows aligned CNT tracks with LCNT segmentation.
	DirectionalGrowth = cntgrowth.Directional
	// UncorrelatedStickGrowth grows dispersed sticks.
	UncorrelatedStickGrowth = cntgrowth.Uncorrelated
	// Removal models the m-CNT removal step.
	Removal = cntgrowth.Removal
	// GrowthArray is a grown CNT population.
	GrowthArray = cntgrowth.Array
	// Region is an axis-aligned substrate rectangle (nm).
	Region = cntgrowth.Rect
)

// Noise-margin extension (paper Section 2.1's cited side constraint: the
// [Zhang 09b] requirement that metallic removal exceed 99.99%).
type (
	// NoiseParams configures the surviving-metallic-CNT noise model.
	NoiseParams = noisemargin.Params
)

// NoiseViolationProb returns the probability a device's surviving metallic
// tubes violate its noise margin.
func NoiseViolationProb(countPMF dist.PMF, p NoiseParams) (float64, error) {
	return noisemargin.ViolationProb(countPMF, p)
}

// ChipNoiseYield returns the chip-level noise-limited yield (1-p)^gates.
func ChipNoiseYield(pViolation, gates float64) (float64, error) {
	return noisemargin.ChipNoiseYield(pViolation, gates)
}

// RequiredPRm returns the smallest metallic-removal efficiency meeting a
// chip-level noise-limited yield target.
func RequiredPRm(countPMF dist.PMF, p NoiseParams, gates, desiredYield float64) (float64, error) {
	return noisemargin.RequiredPRm(countPMF, p, gates, desiredYield)
}

// Experiments: the paper's tables and figures.
type (
	// Params configures the reproduction (DefaultParams freezes the paper's
	// values).
	Params = experiments.Params
	// Runner executes experiments over shared state.
	Runner = experiments.Runner
	// Result is one regenerated artifact.
	Result = experiments.Result
)

// DefaultParams returns the frozen paper configuration.
func DefaultParams() Params { return experiments.DefaultParams() }

// NewRunner creates an experiment runner.
func NewRunner(p Params) *Runner { return experiments.New(p) }

// ExperimentNames lists the artifact identifiers in paper order.
func ExperimentNames() []string { return experiments.Names() }
