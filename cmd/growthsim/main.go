// Command growthsim simulates CNT growth and measures how strongly two
// CNFETs share CNT statistics as a function of their separation — the
// physical premise of the paper's Section 3 (Fig. 3.1).
//
// Usage:
//
//	growthsim [-mode directional|sticks] [-width 60] [-rounds 500] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cnfet/yieldlab"
	"github.com/cnfet/yieldlab/internal/cntgrowth"
	"github.com/cnfet/yieldlab/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "growthsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode   = flag.String("mode", "directional", "growth mode: directional or sticks")
		width  = flag.Float64("width", 60, "CNFET width in nm")
		rounds = flag.Int("rounds", 500, "Monte Carlo growth realizations per separation")
		seed   = flag.Uint64("seed", rng.DefaultSeed, "root seed")
	)
	flag.Parse()

	pitch, err := yieldlab.CalibratedPitch()
	if err != nil {
		return err
	}
	var grower cntgrowth.Grower
	switch *mode {
	case "directional":
		grower = cntgrowth.Directional{Pitch: pitch, PMetallic: 0.33, LengthNM: 200_000}
	case "sticks":
		grower = cntgrowth.Uncorrelated{DensityPerUM2: 2200, PMetallic: 0.33, LengthNM: 450, AngleSpreadRad: 0.15}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	removal := cntgrowth.Removal{PRemoveMetallic: 1, PRemoveSemi: 0.30}

	fmt.Printf("mode=%s width=%.0fnm rounds=%d\n", *mode, *width, *rounds)
	fmt.Printf("%-14s %-12s %-12s %-12s %-10s\n", "separation", "count corr", "usable corr", "shared frac", "mean N")
	fet1 := cntgrowth.Rect{X0: 100, Y0: 300, X1: 160, Y1: 300 + *width}
	for i, sepUM := range []float64{0.2, 0.5, 1, 2, 5} {
		sep := sepUM * 1000
		fet2 := cntgrowth.Rect{X0: 100 + sep, Y0: 300, X1: 160 + sep, Y1: 300 + *width}
		r := rng.Derive(*seed, uint64(i))
		s, err := cntgrowth.MeasurePairCorrelation(r, grower, removal, fet1, fet2, *rounds)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-12.3f %-12.3f %-12.3f %-10.1f\n",
			fmt.Sprintf("%.1f µm", sepUM), s.CountCorr, s.UsableCorr, s.SharedFrac, s.MeanCount)
	}
	fmt.Println("\naligned FETs under directional growth share CNTs until the separation")
	fmt.Println("approaches LCNT (200 µm); dispersed sticks never share.")
	return nil
}
