// Command yieldserver serves the CNFET yield models over HTTP/JSON.
//
// Usage:
//
//	yieldserver [flags]
//
// Endpoints: /healthz, /metrics (Prometheus text), /v1/corners, /v1/pf,
// /v1/pf/batch, /v1/wmin, /v1/rowyield, /v2/query (declarative QuerySpec,
// single or sweep, sync or ?async=1 job-backed), /v1/experiments (jobs),
// /v1/jobs/{id}, /v1/stats.
//
// With -store DIR the server persists swept renewal tables: a restart (or a
// second process on the same directory) answers its first pF query from the
// stored tables without recomputing any sweep. Async jobs are journaled
// under DIR/jobs, so a restarted server re-adopts them: finished jobs stay
// queryable at /v1/jobs/{id} and interrupted ones resume from their last
// checkpointed results.
//
// Overload protection: -request-timeout bounds each request's handling
// time and -max-inflight bounds synchronous /v2/query sweeps computing at
// once; excess sweeps are shed with a retryable 503 and Retry-After while
// ETag revalidations keep answering 304. On SIGTERM the server stops
// accepting requests, waits -drain-timeout for running jobs, then persists
// its caches; jobs still running at the deadline resume on the next start.
//
// Chaos testing: -failpoints (or YIELD_FAILPOINTS) arms named fault
// sites — see internal/fault — with error/delay/panic actions, e.g.
// "store.save=error(disk full)@p=0.1,seed=7;query.evaluate=delay(50ms)".
//
// With -pprof the net/http/pprof endpoints are mounted at /debug/pprof on
// the service port, so hot paths can be profiled in situ.
//
// Every request gets an X-Request-ID and a structured (slog) log line;
// requests slower than -slowlog-threshold are retained in a fixed-size ring
// served at /debug/slowlog with their per-stage cost breakdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/cnfet/yieldlab"
	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/renewal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "yieldserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		storeDir  = flag.String("store", "", "sweep-store directory (empty = no persistence)")
		cacheCap  = flag.Int("cache-entries", 0, "sweep cache entry bound (0 = default)")
		maxJobs   = flag.Int("max-jobs", 0, "retained job records (0 = default)")
		jobs      = flag.Int("concurrent-jobs", 0, "jobs computing at once (0 = default)")
		seed      = flag.Uint64("seed", 0, "Monte Carlo root seed (0 = frozen default)")
		rounds    = flag.Int("rounds", 0, "Monte Carlo rounds for jobs (0 = default 200000)")
		instances = flag.Int("instances", 0, "synthetic netlist instances (0 = default 20000)")
		workers   = flag.Int("workers", 0, "worker goroutines for jobs and Monte Carlo (0 = NumCPU)")
		calibrate = flag.Bool("calibrate", true, "measure the FFT/direct convolution crossover at startup")
		pprofOn   = flag.Bool("pprof", false, "expose /debug/pprof profiling endpoints")
		reqTO     = flag.Duration("request-timeout", 0, "per-request handling deadline (0 = none)")
		inflight  = flag.Int("max-inflight", 0, "concurrent synchronous /v2/query sweeps before shedding (0 = default, negative = unbounded)")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM grace for running jobs before they are left to resume on next start (0 = wait forever)")
		failpoint = flag.String("failpoints", "", "arm fault-injection sites, e.g. \"store.save=error@p=0.1,seed=7\" (also via "+fault.EnvVar+")")
		slowCap   = flag.Int("slowlog-entries", 0, "slow-query ring capacity for /debug/slowlog (0 = default 64)")
		slowThr   = flag.Duration("slowlog-threshold", 25*time.Millisecond, "record requests at least this slow in /debug/slowlog (0 = record every request)")
		version   = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()
	if *version {
		info := yieldlab.GetBuildInfo()
		fmt.Printf("yieldserver %s", yieldlab.Version())
		if info.BuildTime != "" {
			fmt.Printf(" (built %s)", info.BuildTime)
		}
		fmt.Printf(" %s\n", info.GoVersion)
		return nil
	}
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	params := yieldlab.DefaultParams()
	if *seed != 0 {
		params.Seed = *seed
	}
	if *rounds != 0 {
		params.MCRounds = *rounds
	}
	if *instances != 0 {
		params.NetlistInstances = *instances
	}
	params.Workers = *workers

	// Failpoints arm before the server is built, so even adoption-time
	// store reads run under the configured faults.
	if err := fault.EnableFromEnv(); err != nil {
		return err
	}
	if *failpoint != "" {
		if err := fault.EnableSpecs(*failpoint); err != nil {
			return err
		}
	}
	if fault.Enabled() {
		log.Printf("fault injection armed: %s", *failpoint+os.Getenv(fault.EnvVar))
	}

	cfg := yieldlab.ServerConfig{
		Params:            params,
		CacheEntries:      *cacheCap,
		MaxJobs:           *maxJobs,
		ConcurrentJobs:    *jobs,
		Logger:            slog.New(slog.NewTextHandler(os.Stderr, nil)),
		SlowLogEntries:    *slowCap,
		SlowLogThreshold:  *slowThr,
		RequestTimeout:    *reqTO,
		MaxInFlightSweeps: *inflight,
	}
	if *slowThr == 0 {
		// An explicit zero means "record everything": the Config field treats
		// zero as "use the default threshold", so map it to negative here.
		cfg.SlowLogThreshold = -1
	}
	if *storeDir != "" {
		store, err := yieldlab.OpenSweepStore(*storeDir)
		if err != nil {
			return err
		}
		cfg.Store = store
		log.Printf("sweep store at %s", store.Dir())
		journal, err := yieldlab.OpenJobStore(filepath.Join(*storeDir, "jobs"))
		if err != nil {
			return err
		}
		cfg.Jobs = journal
		log.Printf("job journal at %s", journal.Dir())
	}
	if *calibrate {
		log.Printf("convolution crossover ratio: %.2f", renewal.Calibrate())
	}

	srv, err := yieldlab.NewServer(cfg)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if *pprofOn {
		// Profiling rides on the service port so a single deployment knob
		// makes the Monte Carlo and sweep hot paths measurable in situ
		// (go tool pprof http://host/debug/pprof/profile). Off by default:
		// profiles expose internals, so production opts in deliberately.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof endpoints enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// WriteTimeout backstops the per-request deadline so a wedged
		// handler cannot hold a connection forever; generous because cold
		// sweeps legitimately take a while.
		WriteTimeout: 5 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on http://%s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case sig := <-stop:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	// Drain jobs (bounded by -drain-timeout) and persist the sweep cache
	// before exiting; journaled jobs missing the deadline resume on the
	// next start from their checkpointed results.
	if err := srv.Shutdown(*drainTO); err != nil {
		return fmt.Errorf("persisting sweep cache: %w", err)
	}
	return nil
}
