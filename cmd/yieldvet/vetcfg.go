package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/load"
)

// vetConfig is the compilation-unit description `go vet` hands a vettool,
// one JSON file per package — the schema of cmd/go's vet.cfg (mirrored
// from x/tools' unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetConfig checks the single compilation unit described by cfgFile and
// returns the process exit code: 0 clean, 1 findings, 2 operational error.
func runVetConfig(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: decoding %s: %v\n", cfgFile, err)
		return 2
	}

	// The go command schedules fact-only (VetxOnly) runs over dependencies
	// for analyzers that exchange facts across packages. The yieldvet
	// analyzers are package-local, so a dependency visit only needs the
	// (empty) fact file the protocol expects.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		return 0
	}

	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	target, err := load.Files(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the same problem with a better
			// message; stay quiet.
			writeVetx(cfg.VetxOutput)
			return 0
		}
		fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := analysis.Check(target, suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	writeVetx(cfg.VetxOutput)
	if printDiagnostics(target, diags) {
		return 1
	}
	return 0
}

// writeVetx writes the (empty) fact file the vet protocol expects; best
// effort, since no analyzer here consumes facts.
func writeVetx(path string) {
	if path != "" {
		_ = os.WriteFile(path, nil, 0o666)
	}
}
