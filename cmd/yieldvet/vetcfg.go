package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/load"
)

// modulePrefix gates fact computation: only this module's packages carry
// yieldvet facts. Dependency visits outside the module (the standard
// library, under -vettool) get the empty vetx the protocol expects.
const modulePrefix = "github.com/cnfet/yieldlab"

// vetConfig is the compilation-unit description `go vet` hands a vettool,
// one JSON file per package — the schema of cmd/go's vet.cfg (mirrored
// from x/tools' unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// inModule reports whether an import path belongs to this module (test
// variants like "pkg [pkg.test]" included).
func inModule(importPath string) bool {
	return importPath == modulePrefix || strings.HasPrefix(importPath, modulePrefix+"/") ||
		strings.HasPrefix(importPath, modulePrefix+" ")
}

// importDepFacts merges the dependencies' vetx payloads into fs. Absent
// or empty files mean "no facts" by protocol.
func importDepFacts(fs *analysis.FactSet, cfg *vetConfig) error {
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		if err := fs.ImportPackage(path, data); err != nil {
			return err
		}
	}
	return nil
}

// loadUnit type-checks the compilation unit described by cfg.
func loadUnit(cfg *vetConfig) (*analysis.Target, error) {
	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	return load.Files(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
}

// runVetConfig checks the single compilation unit described by cfgFile and
// returns the process exit code: 0 clean, 1 findings, 2 operational error.
func runVetConfig(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: decoding %s: %v\n", cfgFile, err)
		return 2
	}

	fs := analysis.NewFactSet()
	if err := importDepFacts(fs, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	// The go command schedules fact-only (VetxOnly) runs over dependencies
	// so importing packages can consult their facts. Module packages get
	// their facts computed here; everything else (the standard library)
	// gets the empty payload the protocol expects.
	if cfg.VetxOnly {
		if !inModule(cfg.ImportPath) {
			writeVetx(cfg.VetxOutput, nil)
			return 0
		}
		target, err := loadUnit(&cfg)
		if err != nil {
			// The compiler will report the same problem with a better
			// message; stay quiet either way — a fact-only visit must not
			// fail the build on its own.
			writeVetx(cfg.VetxOutput, nil)
			return 0
		}
		if err := analysis.ComputeFacts(target, suite(), fs); err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", cfg.ImportPath, err)
			return 2
		}
		writeVetxFacts(cfg.VetxOutput, fs, cfg.ImportPath)
		return 0
	}

	target, err := loadUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the same problem with a better
			// message; stay quiet.
			writeVetx(cfg.VetxOutput, nil)
			return 0
		}
		fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	// CheckFacts computes the target's own facts into fs, so the vetx
	// written below carries them for dependents.
	diags, err := analysis.CheckFacts(target, suite(), fs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	writeVetxFacts(cfg.VetxOutput, fs, cfg.ImportPath)
	if printDiagnostics(target, diags) {
		return 1
	}
	return 0
}

// writeVetx writes a vetx payload; best effort — a missing fact file
// degrades cross-package checks, it does not break the build.
func writeVetx(path string, data []byte) {
	if path != "" {
		_ = os.WriteFile(path, data, 0o666)
	}
}

// writeVetxFacts serializes one package's facts as its vetx payload.
func writeVetxFacts(path string, fs *analysis.FactSet, pkgPath string) {
	if path == "" {
		return
	}
	data, err := fs.ExportPackage(pkgPath)
	if err != nil {
		data = nil
	}
	writeVetx(path, data)
}
