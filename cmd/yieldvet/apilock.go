package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/apilock"
	"github.com/cnfet/yieldlab/internal/query"
)

// runApilock is the apilock subcommand: it checks the pinned QuerySpec
// fingerprint corpus against the live canonicalizer and the pinned API
// surfaces against the live packages, and with -update regenerates both
// sets of goldens in internal/analysis/apilock/golden.
//
// The analyzer package deliberately does not import internal/query (the
// dependency points the other way: a query test imports the corpus), so
// the fingerprint recomputation lives here, where both sides are visible.
func runApilock(args []string) int {
	update := false
	for _, arg := range args {
		switch arg {
		case "-update", "--update":
			update = true
		default:
			fmt.Fprintf(os.Stderr, "yieldvet apilock: unknown argument %q (only -update is accepted)\n", arg)
			return 2
		}
	}

	entries, err := apilock.Corpus()
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet apilock: %v\n", err)
		return 2
	}
	exit := 0
	for i := range entries {
		entry := &entries[i]
		spec, err := query.Parse(entry.Spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet apilock: corpus entry %q: parsing spec: %v\n", entry.Name, err)
			return 2
		}
		_, fp, err := spec.Canonical()
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet apilock: corpus entry %q: canonicalizing: %v\n", entry.Name, err)
			return 2
		}
		if update {
			entry.Fingerprint = fp
			continue
		}
		if fp != entry.Fingerprint {
			fmt.Fprintf(os.Stderr,
				"yieldvet apilock: corpus entry %q: fingerprint %s, pinned %s — the canonical encoding changed, silently re-keying every cached result and ETag; if intended, bump the qs prefix and run 'yieldvet apilock -update'\n",
				entry.Name, fp, entry.Fingerprint)
			exit = 1
		}
	}

	// API surfaces: load the pinned packages and render their live
	// surfaces through the same code path the analyzer uses.
	pinned := apilock.PinnedPackages()
	targets, _, packageFile, goVersion, err := loadModulePackages(pinned)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet apilock: %v\n", err)
		return 2
	}
	loader := &packageLoader{
		packageFile: packageFile,
		goVersion:   goVersion,
		loaded:      make(map[string]*analysis.Target),
	}
	surfaces := make(map[string]string, len(targets))
	for _, p := range targets {
		target, err := loader.load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet apilock: %s: %v\n", p.ImportPath, err)
			return 2
		}
		surfaces[p.ImportPath] = apilock.Surface(target.Pkg)
	}
	for _, path := range pinned {
		live, ok := surfaces[path]
		if !ok {
			fmt.Fprintf(os.Stderr, "yieldvet apilock: pinned package %s did not resolve\n", path)
			return 2
		}
		if update {
			continue
		}
		want, _ := apilock.PinnedSurface(path)
		if live != want {
			fmt.Fprintf(os.Stderr, "yieldvet apilock: %s: exported API surface drifted from the pin — run the analyzer for line-level drift, or 'yieldvet apilock -update' after review\n", path)
			exit = 1
		}
	}

	if !update {
		return exit
	}

	// -update: rewrite the golden files inside the apilock package dir.
	dirPkgs, err := goList([]string{"-json"}, []string{"github.com/cnfet/yieldlab/internal/analysis/apilock"})
	if err != nil || len(dirPkgs) == 0 {
		fmt.Fprintf(os.Stderr, "yieldvet apilock: locating golden dir: %v\n", err)
		return 2
	}
	goldenDir := dirPkgs[0].Dir
	for _, path := range pinned {
		file, _ := apilock.GoldenPath(path)
		out := filepath.Join(goldenDir, filepath.FromSlash(file))
		if err := os.WriteFile(out, apilock.FormatGolden(path, surfaces[path]), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet apilock: writing %s: %v\n", out, err)
			return 2
		}
		fmt.Printf("yieldvet apilock: wrote %s\n", out)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet apilock: encoding corpus: %v\n", err)
		return 2
	}
	corpusFile := filepath.Join(goldenDir, "golden", "fingerprints.json")
	if err := os.WriteFile(corpusFile, append(data, '\n'), 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet apilock: writing %s: %v\n", corpusFile, err)
		return 2
	}
	fmt.Printf("yieldvet apilock: wrote %s\n", corpusFile)
	return 0
}
