package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/load"
)

// listedPackage is the slice of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// goList runs `go list` with the given flags and patterns and decodes the
// JSON stream.
func goList(flags []string, patterns []string) ([]*listedPackage, error) {
	args := append(append([]string{"list"}, flags...), patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loadModulePackages resolves patterns to the module's packages plus an
// export-data index covering every dependency, ready for type-checking
// targets from source. moduleDeps is every non-standard package the
// targets (transitively) import, targets included — the fact-computation
// frontier.
func loadModulePackages(patterns []string) (targets, moduleDeps []*listedPackage, packageFile map[string]string, goVersion string, err error) {
	// One -deps -export walk yields both the target set (non-standard
	// packages matching the patterns are flagged DepOnly=false, but the
	// cheap and robust selector is a second plain list) and export data
	// for everything the targets import.
	all, err := goList([]string{"-deps", "-export", "-json"}, patterns)
	if err != nil {
		return nil, nil, nil, "", err
	}
	packageFile = make(map[string]string, len(all))
	for _, p := range all {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if !p.Standard {
			moduleDeps = append(moduleDeps, p)
		}
	}

	named, err := goList([]string{"-json"}, patterns)
	if err != nil {
		return nil, nil, nil, "", err
	}
	want := make(map[string]bool, len(named))
	for _, p := range named {
		want[p.ImportPath] = true
	}
	for _, p := range all {
		if !want[p.ImportPath] || p.Standard {
			continue
		}
		targets = append(targets, p)
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
	}
	return targets, moduleDeps, packageFile, goVersion, nil
}

// packageLoader memoizes source loads so the fact pre-pass and the
// checking pass type-check each package once. Safe for the concurrent
// fact scheduler.
type packageLoader struct {
	packageFile map[string]string
	goVersion   string

	mu     sync.Mutex
	loaded map[string]*analysis.Target
}

func (l *packageLoader) load(p *listedPackage) (*analysis.Target, error) {
	l.mu.Lock()
	if t, ok := l.loaded[p.ImportPath]; ok {
		l.mu.Unlock()
		return t, nil
	}
	l.mu.Unlock()

	filenames := make([]string, len(p.GoFiles))
	for i, name := range p.GoFiles {
		filenames[i] = filepath.Join(p.Dir, name)
	}
	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, nil, l.packageFile)
	target, err := load.Files(fset, p.ImportPath, filenames, imp, l.goVersion)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.loaded[p.ImportPath] = target
	l.mu.Unlock()
	return target, nil
}

// runStandalone checks every module package matching the patterns and
// returns the process exit code.
func runStandalone(patterns []string) int {
	targets, moduleDeps, packageFile, goVersion, err := loadModulePackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %v\n", err)
		return 2
	}
	loader := &packageLoader{
		packageFile: packageFile,
		goVersion:   goVersion,
		loaded:      make(map[string]*analysis.Target),
	}

	// Fact pre-pass over the whole module dependency frontier, in import
	// order, bounded concurrency. Deps outside the job set (the standard
	// library) are scheduling no-ops.
	fs := analysis.NewFactSet()
	jobs := make([]analysis.FactJob, 0, len(moduleDeps))
	for _, p := range moduleDeps {
		jobs = append(jobs, analysis.FactJob{
			Path: p.ImportPath,
			Deps: p.Imports,
			Load: func() (*analysis.Target, error) { return loader.load(p) },
		})
	}
	if err := analysis.ComputeFactsGraph(jobs, suite(), fs, runtime.GOMAXPROCS(0)); err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: computing facts: %v\n", err)
		return 2
	}

	exit := 0
	for _, p := range targets {
		target, err := loader.load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", p.ImportPath, err)
			return 2
		}
		diags, err := analysis.CheckFacts(target, suite(), fs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", p.ImportPath, err)
			return 2
		}
		if printDiagnostics(target, diags) {
			exit = 1
		}
	}
	return exit
}
