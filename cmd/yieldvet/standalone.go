package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/load"
)

// listedPackage is the slice of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// goList runs `go list` with the given flags and patterns and decodes the
// JSON stream.
func goList(flags []string, patterns []string) ([]*listedPackage, error) {
	args := append(append([]string{"list"}, flags...), patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loadModulePackages resolves patterns to the module's packages plus an
// export-data index covering every dependency, ready for type-checking
// targets from source.
func loadModulePackages(patterns []string) (targets []*listedPackage, packageFile map[string]string, goVersion string, err error) {
	// One -deps -export walk yields both the target set (non-standard
	// packages matching the patterns are flagged DepOnly=false, but the
	// cheap and robust selector is a second plain list) and export data
	// for everything the targets import.
	all, err := goList([]string{"-deps", "-export", "-json"}, patterns)
	if err != nil {
		return nil, nil, "", err
	}
	packageFile = make(map[string]string, len(all))
	for _, p := range all {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
	}

	named, err := goList([]string{"-json"}, patterns)
	if err != nil {
		return nil, nil, "", err
	}
	want := make(map[string]bool, len(named))
	for _, p := range named {
		want[p.ImportPath] = true
	}
	for _, p := range all {
		if !want[p.ImportPath] || p.Standard {
			continue
		}
		targets = append(targets, p)
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
	}
	return targets, packageFile, goVersion, nil
}

// runStandalone checks every module package matching the patterns and
// returns the process exit code.
func runStandalone(patterns []string) int {
	targets, packageFile, goVersion, err := loadModulePackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %v\n", err)
		return 2
	}
	exit := 0
	for _, p := range targets {
		filenames := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, name)
		}
		fset := token.NewFileSet()
		imp := load.ExportImporter(fset, nil, packageFile)
		target, err := load.Files(fset, p.ImportPath, filenames, imp, goVersion)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", p.ImportPath, err)
			return 2
		}
		diags, err := analysis.Check(target, suite())
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", p.ImportPath, err)
			return 2
		}
		if printDiagnostics(target, diags) {
			exit = 1
		}
	}
	return exit
}
