package main

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/load"
	"github.com/cnfet/yieldlab/internal/analysis/noalloc"
)

// Escape mode is the compiler-backed half of the noalloc contract. The
// noalloc analyzer AST-checks //yield:noalloc bodies for allocation
// constructs, but only the gc escape analysis knows what actually reaches
// the heap, so `yieldvet escape`:
//
//  1. recompiles the module's packages with -gcflags=<module>/...=-m and
//     collects the "escapes to heap" / "moved to heap" diagnostics (the
//     build cache replays compiler output on cache hits, so repeat runs
//     stay cheap and still see every line);
//  2. fails on any such diagnostic inside a //yield:noalloc function that
//     is not excused by a //yield:allow(noalloc) on that line;
//  3. rules on allow(noalloc) staleness, which the AST pass alone cannot:
//     a suppression is live if either the AST check or the escape analysis
//     still flags its line, and an error otherwise.

// escapeLine matches one compiler diagnostic: file:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

// noallocSpan is the file/line extent of one //yield:noalloc function.
type noallocSpan struct {
	file       string // absolute path
	start, end int
	name       string
}

func runEscape(patterns []string) int {
	targets, _, packageFile, goVersion, err := loadModulePackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %v\n", err)
		return 2
	}
	if len(targets) == 0 {
		return 0
	}
	modPath := ""
	if targets[0].Module != nil {
		modPath = targets[0].Module.Path
	}
	if modPath == "" {
		fmt.Fprintf(os.Stderr, "yieldvet: escape mode needs a module context\n")
		return 2
	}

	// Per-file annotation state across all targets, keyed by absolute path.
	var spans []noallocSpan
	type allowKey struct {
		file string
		line int
	}
	allAllows := make(map[allowKey]*analysis.Allow)
	covered := make(map[allowKey]bool)

	for _, p := range targets {
		filenames := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, name)
		}
		fset := token.NewFileSet()
		imp := load.ExportImporter(fset, nil, packageFile)
		target, err := load.Files(fset, p.ImportPath, filenames, imp, goVersion)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", p.ImportPath, err)
			return 2
		}
		dirs := analysis.ParseDirectives(fset, target.Files)
		for _, fn := range dirs.Noalloc {
			start := fset.Position(fn.Pos())
			end := fset.Position(fn.End())
			spans = append(spans, noallocSpan{
				file:  mustAbs(start.Filename),
				start: start.Line,
				end:   end.Line,
				name:  fn.Name.Name,
			})
		}
		for file, byLine := range dirs.Allows {
			abs := mustAbs(file)
			for line, allows := range byLine {
				for _, a := range allows {
					if a.Rule == analysis.DirNoalloc {
						allAllows[allowKey{abs, line}] = a
					}
				}
			}
		}
		// The AST pass's raw findings keep allow(noalloc) suppressions of
		// AST-level constructs (append, make fallbacks, boxing) live even
		// when the compiler proves the construct never reaches the heap.
		pass := &analysis.Pass{
			Analyzer:  noalloc.Analyzer,
			Fset:      fset,
			Files:     target.Files,
			Pkg:       target.Pkg,
			TypesInfo: target.Info,
			Report: func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				covered[allowKey{mustAbs(pos.Filename), pos.Line}] = true
			},
		}
		if err := noalloc.Analyzer.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "yieldvet: %s: %v\n", p.ImportPath, err)
			return 2
		}
	}

	escapes, err := compileEscapes(modPath, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yieldvet: %v\n", err)
		return 2
	}

	exit := 0
	for _, e := range escapes {
		span, ok := findSpan(spans, e.file, e.line)
		if !ok {
			continue
		}
		key := allowKey{e.file, e.line}
		if _, allowed := allAllows[key]; allowed {
			covered[key] = true
			continue
		}
		fmt.Fprintf(os.Stderr, "%s:%d: //yield:noalloc %s: %s [noalloc]\n",
			e.file, e.line, span.name, e.message)
		exit = 1
	}
	for key, a := range allAllows {
		if covered[key] {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s:%d: stale //yield:allow(noalloc): neither the AST check nor the escape analysis flags this line any more [directive]\n",
			a.File, key.line)
		exit = 1
	}
	return exit
}

// escapeFinding is one heap-allocation diagnostic from the compiler.
type escapeFinding struct {
	file    string // absolute path
	line    int
	message string
}

// compileEscapes builds the matched packages with the escape-analysis debug
// flag and extracts the heap-allocation diagnostics.
func compileEscapes(modPath string, patterns []string) ([]escapeFinding, error) {
	args := append([]string{"build", "-gcflags=" + modPath + "/...=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			return nil, fmt.Errorf("go build -gcflags=-m: %v", err)
		}
		// With -m the compiler exits nonzero only for real compile errors;
		// surface them instead of silently passing.
		if !strings.Contains(out.String(), "escapes to heap") &&
			!strings.Contains(out.String(), "moved to heap") {
			return nil, fmt.Errorf("go build -gcflags=-m failed:\n%s", out.String())
		}
	}
	var findings []escapeFinding
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		findings = append(findings, escapeFinding{file: mustAbs(m[1]), line: n, message: m[3]})
	}
	return findings, sc.Err()
}

func findSpan(spans []noallocSpan, file string, line int) (noallocSpan, bool) {
	for _, s := range spans {
		if s.file == file && s.start <= line && line <= s.end {
			return s, true
		}
	}
	return noallocSpan{}, false
}

// mustAbs resolves a (possibly cwd-relative) compiler or FileSet path.
func mustAbs(path string) string {
	abs, err := filepath.Abs(path)
	if err != nil {
		return path
	}
	return abs
}
