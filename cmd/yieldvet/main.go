// Command yieldvet is the repo's static-analysis suite: a vet-style
// multichecker proving the invariants the yield stack's correctness story
// leans on — determinism of the compute packages, zero-allocation Monte
// Carlo hot paths, exhaustive canonical fingerprints and the server's JSON
// error envelope. See DESIGN.md §7 for what each analyzer enforces and how
// //yield:allow suppressions work.
//
// Three ways to run it:
//
//	go vet -vettool=$(go env GOPATH)/bin/yieldvet ./...
//	    the go command drives one yieldvet process per package through
//	    vet's config-file protocol (build-cached, test files included);
//
//	go run ./cmd/yieldvet ./...
//	    standalone mode: yieldvet resolves the patterns itself via
//	    go list -export and checks every module package;
//
//	go run ./cmd/yieldvet escape ./...
//	    escape mode: recompiles the module with -gcflags=-m and fails if
//	    the compiler reports a heap allocation inside any function
//	    annotated //yield:noalloc — the ground truth the noalloc
//	    analyzer's AST view approximates. Also rules on the staleness of
//	    //yield:allow(noalloc) suppressions, which the AST pass alone
//	    cannot decide.
//
// The tool is stdlib-only: the analyzers run on a miniature analysis
// framework (internal/analysis) mirroring golang.org/x/tools/go/analysis,
// which the sandboxed build environment cannot fetch.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/canonical"
	"github.com/cnfet/yieldlab/internal/analysis/determinism"
	"github.com/cnfet/yieldlab/internal/analysis/errenvelope"
	"github.com/cnfet/yieldlab/internal/analysis/noalloc"
)

// suite is the yieldvet analyzer set. Order is presentation only;
// diagnostics are sorted by position.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		noalloc.Analyzer,
		canonical.Analyzer,
		errenvelope.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// The go vet -vettool protocol: -V=full identifies the tool for build
	// caching, -flags describes tool flags (yieldvet has none), and a
	// single *.cfg argument asks for one compilation unit to be checked.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Printf("yieldvet version devel buildID=%[1]s/%[1]s/%[1]s/%[1]s\n", selfID())
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetConfig(args[0]))
	}

	if len(args) > 0 && args[0] == "escape" {
		os.Exit(runEscape(defaultPatterns(args[1:])))
	}
	os.Exit(runStandalone(defaultPatterns(args)))
}

// defaultPatterns applies the ./... default.
func defaultPatterns(args []string) []string {
	if len(args) == 0 {
		return []string{"./..."}
	}
	return args
}

// selfID derives the tool's build-cache identity from its own executable
// bytes, so editing an analyzer invalidates go vet's cached verdicts.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			return hex.EncodeToString(sum[:12])
		}
	}
	// Without a readable executable there is nothing stable to key on;
	// an always-changing ID just disables caching, which is safe.
	return "unknown"
}

// printDiagnostics renders findings the way vet tools do and reports
// whether there were any.
func printDiagnostics(target *analysis.Target, diags []analysis.Diagnostic) bool {
	for _, d := range diags {
		pos := target.Fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pos, d.Message, d.Rule)
	}
	return len(diags) > 0
}
