// Command yieldvet is the repo's static-analysis suite: a vet-style
// multichecker proving the invariants the yield stack's correctness story
// leans on — determinism of the compute packages, zero-allocation Monte
// Carlo hot paths, exhaustive canonical fingerprints, the server's JSON
// error envelope, context flow into sweep/MC work (ctxflow), span
// begin/end balance (spanbalance), atomic/lock discipline (atomicsafe)
// and a pinned exported-API surface (apilock). Cross-package analyzers
// exchange per-package facts: serialized into the vetx files of the
// -vettool protocol, or computed in import order by the standalone
// driver. See DESIGN.md §7 for what each analyzer enforces and how
// //yield:allow suppressions work.
//
// Ways to run it:
//
//	go vet -vettool=$(go env GOPATH)/bin/yieldvet ./...
//	    the go command drives one yieldvet process per package through
//	    vet's config-file protocol (build-cached, test files included);
//
//	go run ./cmd/yieldvet ./...
//	    standalone mode: yieldvet resolves the patterns itself via
//	    go list -export and checks every module package;
//
//	go run ./cmd/yieldvet escape ./...
//	    escape mode: recompiles the module with -gcflags=-m and fails if
//	    the compiler reports a heap allocation inside any function
//	    annotated //yield:noalloc — the ground truth the noalloc
//	    analyzer's AST view approximates. Also rules on the staleness of
//	    //yield:allow(noalloc) suppressions, which the AST pass alone
//	    cannot decide.
//
//	go run ./cmd/yieldvet apilock [-update]
//	    apilock mode: verifies the pinned QuerySpec fingerprint corpus
//	    against the live canonicalizer and the pinned API surfaces
//	    against the live packages; -update regenerates the goldens in
//	    internal/analysis/apilock/golden after a reviewed API change.
//
// The tool is stdlib-only: the analyzers run on a miniature analysis
// framework (internal/analysis) mirroring golang.org/x/tools/go/analysis,
// which the sandboxed build environment cannot fetch.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/apilock"
	"github.com/cnfet/yieldlab/internal/analysis/atomicsafe"
	"github.com/cnfet/yieldlab/internal/analysis/canonical"
	"github.com/cnfet/yieldlab/internal/analysis/ctxflow"
	"github.com/cnfet/yieldlab/internal/analysis/determinism"
	"github.com/cnfet/yieldlab/internal/analysis/errenvelope"
	"github.com/cnfet/yieldlab/internal/analysis/noalloc"
	"github.com/cnfet/yieldlab/internal/analysis/spanbalance"
)

// suite is the yieldvet analyzer set. Order is presentation only;
// diagnostics are sorted by position.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		noalloc.Analyzer,
		canonical.Analyzer,
		errenvelope.Analyzer,
		ctxflow.Analyzer,
		spanbalance.Analyzer,
		atomicsafe.Analyzer,
		apilock.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// The go vet -vettool protocol: -V=full identifies the tool for build
	// caching, -flags describes tool flags (yieldvet has none), and a
	// single *.cfg argument asks for one compilation unit to be checked.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Printf("yieldvet version devel buildID=%[1]s/%[1]s/%[1]s/%[1]s\n", selfID())
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetConfig(args[0]))
	}

	if len(args) > 0 && args[0] == "escape" {
		os.Exit(runEscape(defaultPatterns(args[1:])))
	}
	if len(args) > 0 && args[0] == "apilock" {
		os.Exit(runApilock(args[1:]))
	}
	os.Exit(runStandalone(defaultPatterns(args)))
}

// defaultPatterns applies the ./... default.
func defaultPatterns(args []string) []string {
	if len(args) == 0 {
		return []string{"./..."}
	}
	return args
}

// selfID derives the tool's build-cache identity from its own executable
// bytes, so editing an analyzer invalidates go vet's cached verdicts.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			return hex.EncodeToString(sum[:12])
		}
	}
	// Without a readable executable there is nothing stable to key on;
	// an always-changing ID just disables caching, which is safe.
	return "unknown"
}

// printDiagnostics renders findings the way vet tools do and reports
// whether there were any.
func printDiagnostics(target *analysis.Target, diags []analysis.Diagnostic) bool {
	for _, d := range diags {
		pos := target.Fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pos, d.Message, d.Rule)
	}
	return len(diags) > 0
}
