// Command cellalign applies the aligned-active layout restriction to one of
// the synthetic standard-cell libraries and reports the per-cell area cost
// (the machinery behind Table 2 and Fig. 3.2).
//
// Usage:
//
//	cellalign -library 45|65 -wmin 109 -bands 1 [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/cnfet/yieldlab"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cellalign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		libName = flag.String("library", "45", "library to transform: 45 (Nangate-like) or 65 (commercial-like)")
		wmin    = flag.Float64("wmin", 109, "criticality/upsizing threshold in nm")
		bands   = flag.Int("bands", 1, "number of aligned bands (1 = full benefit, 2 = zero-area variant)")
		verbose = flag.Bool("verbose", false, "list every modified cell")
	)
	flag.Parse()

	var (
		lib *yieldlab.Library
		err error
	)
	switch *libName {
	case "45":
		lib, err = yieldlab.NangateLike45()
	case "65":
		lib, err = yieldlab.Commercial65()
	default:
		return fmt.Errorf("unknown library %q (want 45 or 65)", *libName)
	}
	if err != nil {
		return err
	}
	rep, err := yieldlab.AlignLibrary(lib, yieldlab.AlignOptions{WminNM: *wmin, Bands: *bands})
	if err != nil {
		return err
	}
	fmt.Printf("library %s: %d cells, Wmin %.1f nm, %d band(s)\n",
		lib.Name, len(rep.Changes), *wmin, *bands)
	fmt.Printf("cells with area penalty: %d (%.1f%%)\n",
		rep.CellsWithPenalty, rep.PenaltyShare()*100)
	if rep.CellsWithPenalty > 0 {
		fmt.Printf("penalty range: %.1f%% – %.1f%% (mean %.1f%%)\n",
			rep.MinPenalty*100, rep.MaxPenalty*100, rep.MeanPenalty*100)
	}
	changes := append([]yieldlab.CellChange(nil), rep.Changes...)
	sort.Slice(changes, func(i, j int) bool { return changes[i].Penalty > changes[j].Penalty })
	shown := 0
	for _, ch := range changes {
		if ch.Penalty <= 0 {
			break
		}
		if !*verbose && shown >= 10 {
			fmt.Printf("  ... and %d more (use -verbose)\n", rep.CellsWithPenalty-shown)
			break
		}
		fmt.Printf("  %-16s %6.0f -> %6.0f nm  (+%.1f%%, %d new columns)\n",
			ch.Name, ch.WidthBeforeNM, ch.WidthAfterNM, ch.Penalty*100, ch.RelocatedColumns)
		shown++
	}
	upsized, alignedDevs := 0, 0
	for _, ch := range rep.Changes {
		upsized += ch.UpsizedDevices
		alignedDevs += ch.AlignedDevices
	}
	fmt.Printf("devices upsized to Wmin: %d; devices placed on the grid: %d\n", upsized, alignedDevs)
	return nil
}
