// Command cnfetyield regenerates the paper's tables and figures.
//
// Usage:
//
//	cnfetyield [flags] <experiment|all>
//
// Experiments: fig2.1 fig2.2a fig2.2b table1 fig3.1 fig3.2 fig3.3 table2
//
// Output goes to stdout; -out writes the CSV and SVG artifacts of each
// experiment into a directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/cnfet/yieldlab"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cnfetyield:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir    = flag.String("out", "", "directory for CSV/SVG artifacts (created if missing)")
		jsonOut   = flag.Bool("json", false, "emit results as JSON (the yieldserver schema) instead of text")
		seed      = flag.Uint64("seed", 0, "Monte Carlo root seed (0 = frozen default)")
		rounds    = flag.Int("rounds", 0, "Table 1 Monte Carlo rounds (0 = default 200000)")
		instances = flag.Int("instances", 0, "synthetic netlist instances (0 = default 20000)")
		workers   = flag.Int("workers", 0, "Monte Carlo workers (0 = NumCPU)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cnfetyield [flags] <experiment|all>\nexperiments: %s\nextensions: %s\nflags:\n",
			strings.Join(yieldlab.ExperimentNames(), " "),
			strings.Join(yieldlab.ExperimentExtensionNames(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected one experiment name, got %d args", flag.NArg())
	}
	target := flag.Arg(0)

	names := []string{target}
	if target == "all" {
		names = yieldlab.ExperimentNames()
	} else if !yieldlab.KnownExperiment(target) {
		// Fail fast with a hint instead of paying for runner setup: a typoed
		// name in a script must exit non-zero and say what was likely meant.
		msg := fmt.Sprintf("unknown experiment %q", target)
		if hint, ok := yieldlab.SuggestExperiment(target); ok {
			msg += fmt.Sprintf(" (did you mean %q?)", hint)
		}
		return fmt.Errorf("%s\nexperiments: %s\nextensions: %s", msg,
			strings.Join(yieldlab.ExperimentNames(), " "),
			strings.Join(yieldlab.ExperimentExtensionNames(), " "))
	}

	params := yieldlab.DefaultParams()
	if *seed != 0 {
		params.Seed = *seed
	}
	if *rounds != 0 {
		params.MCRounds = *rounds
	}
	if *instances != 0 {
		params.NetlistInstances = *instances
	}
	params.Workers = *workers
	runner := yieldlab.NewRunner(params)

	results, err := runner.RunMany(names, params.Workers)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := yieldlab.WriteResultsJSON(os.Stdout, results); err != nil {
			return err
		}
	}
	for _, res := range results {
		if !*jsonOut {
			fmt.Printf("=== %s ===\n%s\n", res.Name, res.Text())
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeArtifacts(dir string, res *yieldlab.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := make(map[string]string, len(res.CSVs)+len(res.SVGs))
	for name, content := range res.CSVs {
		files[name] = content
	}
	for name, content := range res.SVGs {
		files[name] = content
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
