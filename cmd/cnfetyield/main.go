// Command cnfetyield regenerates the paper's tables and figures, and
// evaluates declarative QuerySpecs (single points or design-space sweeps).
//
// Usage:
//
//	cnfetyield [flags] <experiment|all>
//	cnfetyield [flags] -spec file.json
//
// Experiments: fig2.1 fig2.2a fig2.2b table1 fig3.1 fig3.2 fig3.3 table2
//
// With -spec the positional experiment argument is replaced by a JSON
// QuerySpec file ("-" reads stdin) — the same format POST /v2/query
// accepts — and the evaluated results are written to stdout as JSON, one
// entry per concrete spec of the sweep expansion.
//
// Output goes to stdout; -out writes the CSV and SVG artifacts of each
// experiment into a directory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"github.com/cnfet/yieldlab"
	"github.com/cnfet/yieldlab/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cnfetyield:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir    = flag.String("out", "", "directory for CSV/SVG artifacts (created if missing)")
		jsonOut   = flag.Bool("json", false, "emit results as JSON (the yieldserver schema) instead of text")
		specFile  = flag.String("spec", "", "evaluate a JSON QuerySpec file instead of a named experiment (\"-\" = stdin)")
		storeDir  = flag.String("store", "", "sweep-store directory for -spec runs (warm start + checkpointing)")
		seed      = flag.Uint64("seed", 0, "Monte Carlo root seed (0 = frozen default)")
		rounds    = flag.Int("rounds", 0, "Table 1 Monte Carlo rounds (0 = default 200000)")
		instances = flag.Int("instances", 0, "synthetic netlist instances (0 = default 20000)")
		workers   = flag.Int("workers", 0, "Monte Carlo workers (0 = NumCPU)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut  = flag.String("trace", "", "for -spec runs: write the evaluation span tree to this file (Chrome trace_event JSON, loadable in about:tracing / Perfetto)")
		slowN     = flag.Int("slowlog", 0, "for -spec runs: print the N slowest specs with their stage breakdown to stderr")
		version   = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cnfetyield [flags] <experiment|all>\n       cnfetyield [flags] -spec file.json\nexperiments: %s\nextensions: %s\nflags:\n",
			strings.Join(yieldlab.ExperimentNames(), " "),
			strings.Join(yieldlab.ExperimentExtensionNames(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *version {
		info := yieldlab.GetBuildInfo()
		fmt.Printf("cnfetyield %s", yieldlab.Version())
		if info.BuildTime != "" {
			fmt.Printf(" (built %s)", info.BuildTime)
		}
		fmt.Printf(" %s\n", info.GoVersion)
		return nil
	}

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProfiles()

	params := yieldlab.DefaultParams()
	if *seed != 0 {
		params.Seed = *seed
	}
	if *rounds != 0 {
		params.MCRounds = *rounds
	}
	if *instances != 0 {
		params.NetlistInstances = *instances
	}
	params.Workers = *workers

	if *specFile != "" {
		if flag.NArg() != 0 {
			return fmt.Errorf("-spec takes no experiment argument, got %v", flag.Args())
		}
		return runSpec(*specFile, *storeDir, params, *traceOut, *slowN)
	}
	if *traceOut != "" || *slowN > 0 {
		return fmt.Errorf("-trace and -slowlog require -spec")
	}
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected one experiment name, got %d args", flag.NArg())
	}
	target := flag.Arg(0)

	names := []string{target}
	if target == "all" {
		names = yieldlab.ExperimentNames()
	} else if !yieldlab.KnownExperiment(target) {
		// Fail fast with a hint instead of paying for runner setup: a typoed
		// name in a script must exit non-zero and say what was likely meant.
		msg := fmt.Sprintf("unknown experiment %q", target)
		if hint, ok := yieldlab.SuggestExperiment(target); ok {
			msg += fmt.Sprintf(" (did you mean %q?)", hint)
		}
		return fmt.Errorf("%s\nexperiments: %s\nextensions: %s", msg,
			strings.Join(yieldlab.ExperimentNames(), " "),
			strings.Join(yieldlab.ExperimentExtensionNames(), " "))
	}

	runner := yieldlab.NewRunner(params)
	results, err := runner.RunMany(names, params.Workers)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := yieldlab.WriteResultsJSON(os.Stdout, results); err != nil {
			return err
		}
	}
	for _, res := range results {
		if !*jsonOut {
			fmt.Printf("=== %s ===\n%s\n", res.Name, res.Text())
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// runSpec evaluates a QuerySpec file through the same Session the server
// uses, streaming sweep progress to stderr and the result JSON to stdout.
// With -trace or -slowlog the evaluation runs under an obs.Tracer: results
// then carry their CostBreakdown, the span tree can be written as Chrome
// trace_event JSON, and the slowest specs can be summarized on stderr.
// Tracing never changes the computed numbers.
func runSpec(path, storeDir string, params yieldlab.Params, traceOut string, slowN int) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	spec, err := yieldlab.ParseQuerySpec(data)
	if err != nil {
		return err
	}
	opts := yieldlab.SessionOptions{Params: params}
	if storeDir != "" {
		store, err := yieldlab.OpenSweepStore(storeDir)
		if err != nil {
			return err
		}
		opts.Store = store
	}
	session, err := yieldlab.NewSession(opts)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var tracer *obs.Tracer
	if traceOut != "" || slowN > 0 {
		tracer = obs.New()
		tracer.EnableCost()
		ctx = obs.WithTracer(ctx, tracer)
	}
	results, err := session.EvaluateAllFunc(ctx, spec,
		func(done, total int, r yieldlab.QueryResult) {
			if total > 1 {
				fmt.Fprintf(os.Stderr, "spec %d/%d done (%s)\n", done, total, r.Fingerprint)
			}
		})
	if err != nil {
		return err
	}
	if cerr := session.Close(); cerr != nil {
		return cerr
	}
	if traceOut != "" {
		if err := writeTrace(traceOut, tracer); err != nil {
			return err
		}
	}
	if slowN > 0 {
		printSlowest(os.Stderr, tracer, slowN)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// writeTrace saves the tracer's span tree as Chrome trace_event JSON.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteTraceEvents(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote trace to %s\n", path)
	return nil
}

// printSlowest summarizes the n slowest evaluations (tracer root spans)
// with their per-stage breakdown — the CLI's answer to /debug/slowlog.
func printSlowest(w io.Writer, tracer *obs.Tracer, n int) {
	roots := tracer.Roots()
	sort.Slice(roots, func(i, j int) bool { return roots[i].Duration() > roots[j].Duration() })
	if n > len(roots) {
		n = len(roots)
	}
	fmt.Fprintf(w, "slowest %d of %d specs:\n", n, len(roots))
	for _, root := range roots[:n] {
		fp := ""
		if v, ok := root.AttrValue("fingerprint"); ok {
			fp, _ = v.(string)
		}
		fmt.Fprintf(w, "  %8.2fms  %s\n", float64(root.Duration().Microseconds())/1e3, fp)
		for _, st := range obs.Stages(root)[1:] {
			fmt.Fprintf(w, "    %8.2fms  %s\n", st.MS, st.Name)
		}
	}
}

// startProfiles begins CPU profiling and/or arms a heap snapshot, so the
// Monte Carlo and sweep hot paths can be measured in situ:
//
//	cnfetyield -cpuprofile cpu.out -memprofile mem.out table1
//	go tool pprof cpu.out
//
// The returned stop function flushes both profiles; failures to write them
// are reported on stderr rather than masking the experiment's own error.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cnfetyield: closing CPU profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cnfetyield: heap profile:", err)
				return
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cnfetyield: writing heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cnfetyield: closing heap profile:", err)
			}
		}
	}, nil
}

func writeArtifacts(dir string, res *yieldlab.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := make(map[string]string, len(res.CSVs)+len(res.SVGs))
	for name, content := range res.CSVs {
		files[name] = content
	}
	for name, content := range res.SVGs {
		files[name] = content
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
