package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/cnfet/yieldlab/internal/renewal
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweep/auto-8         	       3	  98343357 ns/op
BenchmarkSweep/auto-8         	       3	  95168922 ns/op
BenchmarkSweep/auto-8         	       3	 101310858 ns/op
BenchmarkConvolve/fft-8       	    1342	    177273 ns/op
BenchmarkConvolve/fft-8       	    1342	    180001 ns/op
BenchmarkTable1-8             	       1	1943412345 ns/op
PASS
ok  	github.com/cnfet/yieldlab/internal/renewal	3.095s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkSweep/auto"]) != 3 {
		t.Fatalf("auto samples: %v", got["BenchmarkSweep/auto"])
	}
	if len(got["BenchmarkConvolve/fft"]) != 2 {
		t.Fatalf("fft samples: %v", got["BenchmarkConvolve/fft"])
	}
	if _, ok := got["BenchmarkSweep/auto-8"]; ok {
		t.Fatal("GOMAXPROCS suffix should be stripped")
	}
	if len(got["BenchmarkTable1"]) != 1 {
		t.Fatal("single-sample benchmarks should parse too")
	}
	if _, err := parseBench(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSweep/auto-8":   "BenchmarkSweep/auto",
		"BenchmarkSweep/auto":     "BenchmarkSweep/auto",
		"BenchmarkFig21-16":       "BenchmarkFig21",
		"BenchmarkRealForward/4k": "BenchmarkRealForward/4k", // 4k is not an int
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	xs := []float64{5, 1, 3}
	median(xs)
	if xs[0] != 5 {
		t.Error("median must not reorder its input")
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{
		"BenchmarkSweep/auto":   100,
		"BenchmarkConvolve/fft": 200,
		"BenchmarkGone":         50,
	}
	cur := map[string]float64{
		"BenchmarkSweep/auto":   110, // +10%: within a 15% budget
		"BenchmarkConvolve/fft": 260, // +30%: regression
		"BenchmarkNew":          1,   // informational only
	}
	report, failures := compare(base, cur, 0.15)
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want fft regression + missing Gone", failures)
	}
	for _, frag := range []string{"BenchmarkConvolve/fft (+30.0%)", "BenchmarkGone (missing)"} {
		found := false
		for _, f := range failures {
			if f == frag {
				found = true
			}
		}
		if !found {
			t.Errorf("failures %v missing %q", failures, frag)
		}
	}
	if !strings.Contains(report, "BenchmarkNew") {
		t.Error("report should mention benchmarks absent from the baseline")
	}
	if _, failures := compare(base, map[string]float64{
		"BenchmarkSweep/auto":   100,
		"BenchmarkConvolve/fft": 200,
		"BenchmarkGone":         50,
	}, 0.15); len(failures) != 0 {
		t.Errorf("unchanged medians should pass, got %v", failures)
	}
}

func TestRunUpdateThenGate(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(input, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "base.json")
	var sb strings.Builder
	err := run([]string{"-input", input, "-baseline", basePath, "-update", "-note", "test"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Gating the same input against the fresh baseline must pass.
	sb.Reset()
	if err := run([]string{"-input", input, "-baseline", basePath}, &sb); err != nil {
		t.Fatalf("self-gate failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "BenchmarkSweep/auto") {
		t.Errorf("report missing gated benchmark:\n%s", sb.String())
	}
	// A 2x slower run must fail the gate.
	slow := strings.ReplaceAll(sampleOutput, " 98343357 ns/op", " 298343357 ns/op")
	slow = strings.ReplaceAll(slow, " 95168922 ns/op", " 295168922 ns/op")
	slow = strings.ReplaceAll(slow, "101310858 ns/op", "301310858 ns/op")
	slowPath := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err = run([]string{"-input", slowPath, "-baseline", basePath}, &sb)
	if err == nil {
		t.Fatalf("3x regression should fail the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkSweep/auto") {
		t.Errorf("error should name the regressed benchmark: %v", err)
	}
	// The Monte Carlo benchmark is outside the default filter: corrupting
	// it must not fail the gate.
	noisy := strings.ReplaceAll(sampleOutput, "1943412345 ns/op", "9943412345 ns/op")
	noisyPath := filepath.Join(dir, "noisy.txt")
	if err := os.WriteFile(noisyPath, []byte(noisy), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-input", noisyPath, "-baseline", basePath}, &sb); err != nil {
		t.Fatalf("unfiltered benchmark noise should not gate: %v", err)
	}
}

func TestCheckRatios(t *testing.T) {
	cur := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 1000}
	report, failures := checkRatios([]ratioGate{
		{Num: "BenchmarkA", Den: "BenchmarkB", Max: 0.2},
	}, cur)
	if len(failures) != 0 {
		t.Fatalf("0.1 <= 0.2 should pass: %v\n%s", failures, report)
	}
	_, failures = checkRatios([]ratioGate{
		{Num: "BenchmarkA", Den: "BenchmarkB", Max: 0.05},
	}, cur)
	if len(failures) != 1 {
		t.Fatalf("0.1 > 0.05 should fail: %v", failures)
	}
	_, failures = checkRatios([]ratioGate{
		{Num: "BenchmarkA", Den: "BenchmarkMissing", Max: 0.5},
	}, cur)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("missing operand should fail: %v", failures)
	}
	if report, failures := checkRatios(nil, cur); report != "" || failures != nil {
		t.Fatal("no gates should produce no output")
	}
}

func TestRunRatioGatePreservedAndEnforced(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(input, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "base.json")
	var sb strings.Builder
	if err := run([]string{"-input", input, "-baseline", basePath, "-update"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Hand-add a ratio gate that the sample run violates (auto is ~550x the
	// fft convolution median, far above 2x).
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(data), "\"benchmarks\"",
		`"ratios": [{"num": "BenchmarkSweep/auto", "den": "BenchmarkConvolve/fft", "max": 2.0}],
  "benchmarks"`, 1)
	if err := os.WriteFile(basePath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err = run([]string{"-input", input, "-baseline", basePath}, &sb)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkSweep/auto / BenchmarkConvolve/fft") {
		t.Fatalf("violated ratio gate should fail with the gate named, got %v\n%s", err, sb.String())
	}
	// -update must carry the hand-curated ratio gates over.
	sb.Reset()
	if err := run([]string{"-input", input, "-baseline", basePath, "-update"}, &sb); err != nil {
		t.Fatal(err)
	}
	refreshed, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(refreshed), "BenchmarkConvolve/fft") ||
		!strings.Contains(string(refreshed), "\"ratios\"") {
		t.Fatalf("refresh dropped ratio gates:\n%s", refreshed)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(input, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-input", input, "-baseline", filepath.Join(dir, "absent.json")}, &sb); err == nil {
		t.Error("missing baseline should error")
	}
	if err := run([]string{"-input", input, "-filter", "("}, &sb); err == nil {
		t.Error("bad filter should error")
	}
	if err := run([]string{"-input", input, "-threshold", "-1"}, &sb); err == nil {
		t.Error("negative threshold should error")
	}
	if err := run([]string{"-input", input, "-filter", "NoSuchBenchmark"}, &sb); err == nil {
		t.Error("filter matching nothing should error")
	}
	if err := run([]string{"-input", filepath.Join(dir, "nope.txt")}, &sb); err == nil {
		t.Error("missing input should error")
	}
}
