// Command benchgate compares `go test -bench` output against a committed
// baseline and fails on regressions, in the spirit of benchstat: run each
// benchmark several times (-count=5 or more), gate on the median so
// scheduler noise in individual runs cannot fail the build, and report the
// per-benchmark deltas either way.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 200ms -count 5 ./... | tee bench.txt
//	go run ./cmd/benchgate -input bench.txt                  # gate
//	go run ./cmd/benchgate -input bench.txt -update          # refresh baseline
//
// The baseline (BENCH_BASELINE.json by default) stores median ns/op per
// benchmark for the names matching -filter, plus a note describing the
// machine it was recorded on. The gate fails (exit 1) when any baselined
// benchmark regresses by more than -threshold (default 15%) or disappears
// from the input; new benchmarks are ignored until -update records them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultFilter selects the benchmarks the CI gate holds to the baseline:
// the renewal/sweep set plus the Monte Carlo round and sampler benchmarks,
// which run a fixed, seeded workload per op and so are as stable as the
// analytic set. Benchmarks whose medians depend on scheduling rather than
// the code under test — parallel estimators (BenchmarkRowYieldMCParallel)
// and lock-contention probes (BenchmarkSweepDedupContention) — are
// deliberately excluded; gating them would need a far looser threshold to
// be meaningful.
const defaultFilter = `^Benchmark(Sweep/|Convolve|RenewalSweepCold|Fig21$|DeviceFailureProb|RealForward|ServerPF|RunnerParallel|RowYieldMC/|RowYieldRareEvent/|RowYieldObsOverhead/|TruncNormalSample/)`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

type baseline struct {
	// Note records where/how the baseline was measured.
	Note string `json:"note,omitempty"`
	// ThresholdPct is the regression budget the gate applies (informational
	// here; the -threshold flag is authoritative).
	ThresholdPct float64 `json:"threshold_pct,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to the
	// median ns/op recorded at baseline time.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Ratios are machine-independent gates between two benchmarks measured
	// in the same run: cur[Num]/cur[Den] must stay ≤ Max. Hosted CI runners
	// are heterogeneous, so absolute ns/op gates drift with the machine; a
	// ratio (e.g. the FFT sweep vs the direct reference sweep) does not.
	// -update preserves these from the existing baseline file.
	Ratios []ratioGate `json:"ratios,omitempty"`
}

type ratioGate struct {
	Num  string  `json:"num"`
	Den  string  `json:"den"`
	Max  float64 `json:"max"`
	Note string  `json:"note,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
		inputPath    = fs.String("input", "-", "bench output file (- = stdin)")
		threshold    = fs.Float64("threshold", 0.15, "median regression budget (0.15 = +15% ns/op)")
		filterExpr   = fs.String("filter", defaultFilter, "regexp of benchmark names to gate")
		update       = fs.Bool("update", false, "rewrite the baseline from the input instead of gating")
		note         = fs.String("note", "", "note to store with -update (e.g. runner model)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	filter, err := regexp.Compile(*filterExpr)
	if err != nil {
		return fmt.Errorf("bad -filter: %w", err)
	}
	if !(*threshold > 0) {
		return fmt.Errorf("threshold %g must be positive", *threshold)
	}

	in := os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	samples, err := parseBench(in)
	if err != nil {
		return err
	}
	medians := make(map[string]float64, len(samples))
	for name, ns := range samples {
		if filter.MatchString(name) {
			medians[name] = median(ns)
		}
	}
	if len(medians) == 0 {
		return fmt.Errorf("no benchmarks matching %q in input", *filterExpr)
	}

	if *update {
		b := baseline{Note: *note, ThresholdPct: *threshold * 100, Benchmarks: medians}
		// Ratio gates are hand-curated; carry them over from the previous
		// baseline rather than dropping them on refresh.
		if data, err := os.ReadFile(*baselinePath); err == nil {
			var old baseline
			if err := json.Unmarshal(data, &old); err == nil {
				b.Ratios = old.Ratios
				if b.Note == "" {
					b.Note = old.Note
				}
			}
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s with %d benchmarks and %d ratio gates\n",
			*baselinePath, len(medians), len(b.Ratios))
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *baselinePath, err)
	}
	report, failures := compare(base.Benchmarks, medians, *threshold)
	fmt.Fprint(out, report)
	ratioReport, ratioFailures := checkRatios(base.Ratios, medians)
	fmt.Fprint(out, ratioReport)
	failures = append(failures, ratioFailures...)
	if len(failures) > 0 {
		return fmt.Errorf("%d gate(s) failed (threshold %.0f%%): %s",
			len(failures), *threshold*100, strings.Join(failures, ", "))
	}
	return nil
}

// checkRatios evaluates the machine-independent same-run ratio gates. A
// gate whose operands are missing from the run fails: losing the
// measurement must not silently relax the gate.
func checkRatios(gates []ratioGate, cur map[string]float64) (string, []string) {
	if len(gates) == 0 {
		return "", nil
	}
	var sb strings.Builder
	var failures []string
	fmt.Fprintf(&sb, "%-60s %8s %8s\n", "ratio gate (same-run medians)", "max", "now")
	for _, g := range gates {
		name := g.Num + " / " + g.Den
		num, okN := cur[g.Num]
		den, okD := cur[g.Den]
		if !okN || !okD || den == 0 {
			fmt.Fprintf(&sb, "%-60s %8.3f %8s\n", name, g.Max, "missing")
			failures = append(failures, name+" (operand missing)")
			continue
		}
		r := num / den
		status := fmt.Sprintf("%8.3f", r)
		if r > g.Max {
			status += " FAIL"
			failures = append(failures, fmt.Sprintf("%s (%.3f > %.3f)", name, r, g.Max))
		}
		fmt.Fprintf(&sb, "%-60s %8.3f %s\n", name, g.Max, status)
	}
	return sb.String(), failures
}

// benchLine matches e.g.
//
//	BenchmarkSweep/auto-8   	       3	  98343357 ns/op
//
// capturing the name (with the -GOMAXPROCS suffix still attached) and the
// ns/op figure.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parseBench collects ns/op samples per benchmark name from `go test
// -bench` output, stripping the -GOMAXPROCS suffix so baselines transfer
// between machines with different core counts.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		out[name] = append(out[name], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return out, nil
}

// stripProcs removes the trailing -N GOMAXPROCS suffix from a benchmark
// name, leaving sub-benchmark paths intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// median returns the middle sample (mean of the middle two for even
// counts). The input is not modified.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare renders a benchstat-style delta table and returns the names that
// regressed beyond the threshold. Baselined benchmarks missing from the
// current run count as failures: losing a benchmark must not silently relax
// the gate.
func compare(base, cur map[string]float64, threshold float64) (string, []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	var failures []string
	fmt.Fprintf(&sb, "%-45s %14s %14s %8s\n", "benchmark", "base ns/op", "now ns/op", "delta")
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(&sb, "%-45s %14.0f %14s %8s\n", name, b, "missing", "FAIL")
			failures = append(failures, name+" (missing)")
			continue
		}
		delta := c/b - 1
		status := fmt.Sprintf("%+.1f%%", delta*100)
		if delta > threshold {
			status += " FAIL"
			failures = append(failures, fmt.Sprintf("%s (%+.1f%%)", name, delta*100))
		}
		fmt.Fprintf(&sb, "%-45s %14.0f %14.0f %8s\n", name, b, c, status)
	}
	// Benchmarks present now but not in the baseline are informational: the
	// gate learns about them on the next -update.
	extra := make([]string, 0)
	for name := range cur {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	if len(extra) > 0 {
		sort.Strings(extra)
		fmt.Fprintf(&sb, "not in baseline (run -update to record): %s\n", strings.Join(extra, ", "))
	}
	return sb.String(), failures
}
