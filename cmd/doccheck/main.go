// doccheck fails the build when an exported identifier in the audited
// packages lacks a doc comment. The public estimator surface (internal/query,
// internal/rareevent) and the observability layer (internal/obs) carry a
// documented contract — DESIGN.md §8 and §9 lean on the godoc of those
// packages — so an undocumented export there is a docs regression, not a
// style nit. CI runs it from the docs job.
//
// Usage:
//
//	go run ./cmd/doccheck [package-dir ...]
//
// With no arguments it audits the default set. A directory ending in
// "/..." is walked recursively, skipping testdata and golden trees (their
// fixtures are deliberately undocumented). Test files are skipped; an
// exported method counts like any other export. A grouped declaration
// (`const (...)`, `var (...)`) passes if either the group or the specific
// spec is documented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs is the audited surface: the packages whose godoc the design
// documents point at. The analysis tree is audited recursively — DESIGN.md
// §7 leans on the godoc of every analyzer package.
var defaultDirs = []string{
	"internal/query",
	"internal/rareevent",
	"internal/obs",
	"internal/analysis/...",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var missing []string
	for _, dir := range dirs {
		expanded := []string{dir}
		if root, ok := strings.CutSuffix(dir, "/..."); ok {
			var err error
			expanded, err = walkDirs(root)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
				os.Exit(2)
			}
		}
		for _, d := range expanded {
			m, err := auditDir(d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
				os.Exit(2)
			}
			missing = append(missing, m...)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", len(missing))
		os.Exit(1)
	}
}

// walkDirs expands a recursive pattern root into the directories under it
// that contain .go files, skipping testdata and golden trees: analysis
// fixtures flag on purpose and golden files are generated, so neither is
// part of the documented surface.
func walkDirs(root string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "golden":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		// A directory's files interleave lexically with its subdirectories,
		// so consecutive-dedup is not enough.
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// auditDir parses every non-test .go file in dir and returns one
// "file:line: name" entry per undocumented export.
func auditDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var missing []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		missing = append(missing, auditFile(fset, f)...)
	}
	return missing, nil
}

func auditFile(fset *token.FileSet, f *ast.File) []string {
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), declKind(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// exportedReceiver reports whether d is a plain function or a method on an
// exported receiver type; methods on unexported types are not part of the
// public godoc surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return "declaration"
	}
}
