package query

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"unknown kind", Spec{Kind: "pff"}, "unknown kind"},
		{"missing width", Spec{Kind: KindPF}, "width"},
		{"negative width", Spec{Kind: KindPF, WidthNM: -3}, "width"},
		{"unknown corner", Spec{Kind: KindPF, WidthNM: 100, Corner: "oops"}, "unknown corner"},
		{"corner and pm", Spec{Kind: KindPF, WidthNM: 100, Corner: "worst", PM: f64(0.3), PRS: f64(0.1)}, "not both"},
		{"pm without prs", Spec{Kind: KindPF, WidthNM: 100, PM: f64(0.3)}, "both pm and prs"},
		{"pm out of range", Spec{Kind: KindPF, WidthNM: 100, PM: f64(2), PRS: f64(0)}, "out of [0,1]"},
		{"unknown node", Spec{Kind: KindPF, WidthNM: 100, Node: "7nm"}, "unknown node"},
		{"bad yield", Spec{Kind: KindWmin, DesiredYield: 1.5}, "yield"},
		{"bad relax", Spec{Kind: KindWmin, RelaxFactor: 0.5}, "relax"},
		{"missing scenario", Spec{Kind: KindRowYield, WidthNM: 100}, "scenario"},
		{"unknown scenario", Spec{Kind: KindRowYield, WidthNM: 100, Scenario: "sideways"}, "unknown scenario"},
		{"tiny rounds", Spec{Kind: KindRowYield, WidthNM: 100, Scenario: "aligned", Rounds: 1}, "rounds"},
		{"scenario on pf", Spec{Kind: KindPF, WidthNM: 100, Scenario: "aligned"}, "only to rowyield"},
		{"prm on pf", Spec{Kind: KindPF, WidthNM: 100, PRM: f64(0.9)}, "only to noise"},
		{"experiments on pf", Spec{Kind: KindPF, WidthNM: 100, Experiments: []string{"table1"}}, "only to experiment"},
		{"no experiments", Spec{Kind: KindExperiment}, "no experiments"},
		{"unknown experiment", Spec{Kind: KindExperiment, Experiments: []string{"tabel1"}}, "did you mean"},
		{"corner on experiment", Spec{Kind: KindExperiment, Corner: "worst", Experiments: []string{"table1"}}, "no corner"},
		{"sweep on experiment", Spec{Kind: KindExperiment, Experiments: []string{"table1"},
			Sweep: &Sweep{Corners: []string{"worst"}}}, "do not sweep"},
		{"bad sweep corner", Spec{Kind: KindPF, WidthNM: 100, Sweep: &Sweep{Corners: []string{"oops"}}}, "unknown corner"},
		{"sweep corners with pm", Spec{Kind: KindPF, WidthNM: 100, PM: f64(0.3), PRS: f64(0.1),
			Sweep: &Sweep{Corners: []string{"worst"}}}, "explicit pm/prs"},
		{"widths axis on wmin", Spec{Kind: KindWmin, Sweep: &Sweep{WidthsNM: []float64{100}}}, "solves for the width"},
		{"yields axis on pf", Spec{Kind: KindPF, WidthNM: 100, Sweep: &Sweep{Yields: []float64{0.9}}}, "apply to wmin"},
		{"scenarios axis on pf", Spec{Kind: KindPF, WidthNM: 100, Sweep: &Sweep{Scenarios: []string{"aligned"}}}, "apply to rowyield"},
		{"relax axis on pf", Spec{Kind: KindPF, WidthNM: 100, Sweep: &Sweep{RelaxFactors: []float64{2}}}, "apply to wmin"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate() accepted %+v", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindPF, WidthNM: 155},
		{Kind: KindPF, WidthNM: 155, Corner: "best", Node: "22nm"},
		{Kind: KindPF, WidthNM: 155, PM: f64(0.2), PRS: f64(0.1)},
		{Kind: KindWmin},
		{Kind: KindWmin, DesiredYield: 0.99, RelaxFactor: 360, Node: "16nm"},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "aligned", KRows: 1000},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", Rounds: 100,
			Offsets: []float64{0, 50}, OffsetProbs: []float64{0.5, 0.5}},
		{Kind: KindNoise, WidthNM: 155, PRM: f64(0.999), RatioThreshold: 0.2},
		{Kind: KindExperiment, Experiments: []string{"all", "ext-noise"}},
		{Kind: KindPF, WidthNM: 155, Sweep: &Sweep{Corners: []string{"worst", "best"},
			Nodes: []string{"45nm", "22nm"}, WidthsNM: []float64{103, 155}}},
		{Kind: KindWmin, Sweep: &Sweep{Yields: []float64{0.9, 0.99}, RelaxFactors: []float64{1, 360}}},
	} {
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", spec, err)
		}
	}
}

// Equivalent spellings of the same computation must share one fingerprint.
func TestCanonicalEquivalence(t *testing.T) {
	groups := [][]Spec{
		{
			{Kind: KindPF, WidthNM: 155},
			{Kind: KindPF, WidthNM: 155, Corner: "worst"},
			{Kind: KindPF, WidthNM: 155, Corner: "pm=33%, pRs=30%"},
			{Kind: KindPF, WidthNM: 155, Node: "45nm"},
			// Stray fields a pf query never reads must not split the cache.
			{Kind: KindPF, WidthNM: 155, KRows: 7, Seed: 99},
		},
		{
			{Kind: KindWmin, Corner: "mid"},
			{Kind: KindWmin, Corner: "pm=33%, pRs=0%", WidthNM: 155},
			// Relax factor 1 is the uncorrelated default.
			{Kind: KindWmin, Corner: "mid", RelaxFactor: 1},
		},
		{
			// The default Monte Carlo budget spelled out is the default, and
			// spelling out the calibrated pitch law is the calibrated law.
			{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned"},
			{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", Rounds: DefaultRowRounds},
			{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", PitchMeanNM: 4, PitchSigmaRatio: 2.3},
		},
		{
			{Kind: KindExperiment, Experiments: []string{"all"}},
			{Kind: KindExperiment, Experiments: []string{"fig2.1", "fig2.2a", "fig2.2b", "table1", "fig3.1", "fig3.2", "fig3.3", "table2"}},
		},
	}
	for gi, group := range groups {
		var first string
		for i, spec := range group {
			_, fp, err := spec.Canonical()
			if err != nil {
				t.Fatalf("group %d spec %d: %v", gi, i, err)
			}
			if i == 0 {
				first = fp
			} else if fp != first {
				t.Errorf("group %d spec %d: fingerprint %s != %s", gi, i, fp, first)
			}
		}
	}

	// Distinct computations must not collide.
	distinct := []Spec{
		{Kind: KindPF, WidthNM: 155},
		{Kind: KindPF, WidthNM: 156},
		{Kind: KindPF, WidthNM: 155, Corner: "mid"},
		{Kind: KindPF, WidthNM: 155, Node: "22nm"},
		{Kind: KindPF, WidthNM: 155, GridStepNM: 0.1},
		{Kind: KindWmin},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "aligned"},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "aligned", KRows: 10},
		{Kind: KindNoise, WidthNM: 155},
	}
	seen := map[string]int{}
	for i, spec := range distinct {
		_, fp, err := spec.Canonical()
		if err != nil {
			t.Fatalf("distinct %d: %v", i, err)
		}
		if j, dup := seen[fp]; dup {
			t.Errorf("specs %d and %d collide on %s", i, j, fp)
		}
		seen[fp] = i
	}
}

// The fingerprint must be stable across processes: pin one value so an
// accidental format change (which would invalidate every stored ETag)
// fails loudly.
func TestFingerprintPinned(t *testing.T) {
	_, fp, err := Spec{Kind: KindPF, WidthNM: 155}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	const pinned = "qs1-3acc3599c7f25d47813f4e0e"
	if fp != pinned {
		t.Fatalf("fingerprint = %s, want %s (format change? bump the qs prefix and this pin)", fp, pinned)
	}
}

func TestExpandCartesianProduct(t *testing.T) {
	spec := Spec{
		Kind:    KindPF,
		WidthNM: 155,
		Sweep: &Sweep{
			Corners:  []string{"worst", "mid", "best"},
			Nodes:    []string{"45nm", "22nm"},
			WidthsNM: []float64{103, 155},
		},
	}
	if n := spec.ExpandCount(); n != 12 {
		t.Fatalf("ExpandCount = %d, want 12", n)
	}
	specs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 12 {
		t.Fatalf("len = %d, want 12", len(specs))
	}
	// Every combination appears exactly once, no spec keeps sweep axes, and
	// every fingerprint is distinct.
	type combo struct {
		corner, node string
		width        float64
	}
	seen := map[combo]bool{}
	fps := map[string]bool{}
	for i, c := range specs {
		if c.Sweep != nil {
			t.Fatalf("spec %d kept sweep axes", i)
		}
		_, fp, err := c.Canonical()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if fps[fp] {
			t.Fatalf("duplicate fingerprint %s", fp)
		}
		fps[fp] = true
		k := combo{c.Corner, c.Node, c.WidthNM}
		if seen[k] {
			t.Fatalf("duplicate combination %+v", k)
		}
		seen[k] = true
	}
	for _, corner := range []string{"worst", "mid", "best"} {
		for _, node := range []string{"", "22nm"} { // canonical 45nm = ""
			for _, width := range []float64{103, 155} {
				if !seen[combo{corner, node, width}] {
					t.Errorf("missing combination corner=%s node=%q width=%g", corner, node, width)
				}
			}
		}
	}

	// Deterministic order: corners vary slowest, widths fastest.
	if specs[0].Corner != "worst" || specs[0].Node != "" || specs[0].WidthNM != 103 {
		t.Errorf("specs[0] = %+v", specs[0])
	}
	if specs[1].WidthNM != 155 || specs[1].Corner != "worst" {
		t.Errorf("specs[1] = %+v", specs[1])
	}
	if specs[11].Corner != "best" || specs[11].Node != "22nm" || specs[11].WidthNM != 155 {
		t.Errorf("specs[11] = %+v", specs[11])
	}

	// Expansion is reproducible.
	again, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, again) {
		t.Fatal("Expand not deterministic")
	}
}

func TestExpandWithoutSweep(t *testing.T) {
	specs, err := Spec{Kind: KindPF, WidthNM: 155}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Kind != KindPF || specs[0].WidthNM != 155 {
		t.Fatalf("specs = %+v", specs)
	}
}

// Property check over many random axis sizes: count is the product, order
// is deterministic and every expanded spec validates.
func TestExpandCountProperty(t *testing.T) {
	corners := []string{"worst", "mid", "best"}
	nodes := []string{"45nm", "32nm", "22nm", "16nm"}
	for nc := 0; nc <= 3; nc++ {
		for nn := 0; nn <= 4; nn++ {
			for nw := 0; nw <= 3; nw++ {
				spec := Spec{Kind: KindPF, WidthNM: 200, Sweep: &Sweep{}}
				spec.Sweep.Corners = corners[:nc]
				spec.Sweep.Nodes = nodes[:nn]
				for i := 0; i < nw; i++ {
					spec.Sweep.WidthsNM = append(spec.Sweep.WidthsNM, 100+10*float64(i))
				}
				want := max(nc, 1) * max(nn, 1) * max(nw, 1)
				if n := spec.ExpandCount(); n != want {
					t.Fatalf("nc=%d nn=%d nw=%d: ExpandCount=%d want %d", nc, nn, nw, n, want)
				}
				specs, err := spec.Expand()
				if err != nil {
					t.Fatalf("nc=%d nn=%d nw=%d: %v", nc, nn, nw, err)
				}
				if len(specs) != want {
					t.Fatalf("nc=%d nn=%d nw=%d: len=%d want %d", nc, nn, nw, len(specs), want)
				}
				for _, c := range specs {
					if err := c.Validate(); err != nil {
						t.Fatalf("expanded spec invalid: %v", err)
					}
				}
			}
		}
	}
}

func TestParseStrict(t *testing.T) {
	spec, err := Parse([]byte(`{"kind": "pf", "width_nm": 155, "corner": "best"}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != KindPF || spec.WidthNM != 155 || spec.Corner != "best" {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := Parse([]byte(`{"kind": "pf", "width_nm": 155, "widthnm": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"kind": "pf"}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// Round-trip: a marshaled spec decodes back to a deeply equal value.
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: KindPF, WidthNM: 155},
		{Kind: KindPF, WidthNM: 155, PM: f64(0.25), PRS: f64(0.125), GridStepNM: 0.1, MaxWidthNM: 200},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", Rounds: 500, KRows: 1e6,
			Offsets: []float64{0, 190, 380}, OffsetProbs: []float64{0.5, 0.25, 0.25}, Seed: 42},
		{Kind: KindNoise, WidthNM: 103, PRM: f64(0.99995), RatioThreshold: 0.15, M: 1e8, DesiredYield: 0.9},
		{Kind: KindExperiment, Experiments: []string{"table1", "ext-pitch"}},
		{Kind: KindWmin, Node: "22nm", Sweep: &Sweep{
			Corners: []string{"worst", "best"}, Yields: []float64{0.9, 0.99}, RelaxFactors: []float64{1, 360}}},
	}
	for i, spec := range specs {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("spec %d: round trip %+v != %+v", i, back, spec)
		}
		// And the canonical fingerprint survives the trip.
		_, fp1, err1 := spec.Canonical()
		_, fp2, err2 := back.Canonical()
		if (err1 == nil) != (err2 == nil) || (err1 == nil && fp1 != fp2) {
			t.Fatalf("spec %d: fingerprint drifted across round trip", i)
		}
	}
}

func TestResolveCorner(t *testing.T) {
	for i, short := range CornerNames() {
		p, name, err := ResolveCorner(short)
		if err != nil || name != short {
			t.Fatalf("ResolveCorner(%q) = %v, %v", short, name, err)
		}
		if p.PerCNTFailure() < 0 || p.PerCNTFailure() > 1 {
			t.Fatalf("corner %d: pf out of range", i)
		}
	}
	if _, name, err := ResolveCorner(""); err != nil || name != "worst" {
		t.Fatalf(`ResolveCorner("") = %v, %v`, name, err)
	}
	if _, _, err := ResolveCorner("oops"); err == nil {
		t.Fatal("unknown corner accepted")
	}
}

func TestExpandSanityBound(t *testing.T) {
	// 101^3 > 1<<20: the sweep must be rejected before materialization.
	var widths []float64
	for i := 0; i < 101; i++ {
		widths = append(widths, 100+float64(i))
	}
	var yields, relax []float64
	for i := 0; i < 101; i++ {
		yields = append(yields, 0.5+float64(i)*0.004)
		relax = append(relax, 1+float64(i))
	}
	spec := Spec{Kind: KindWmin, Sweep: &Sweep{Yields: yields, RelaxFactors: relax}}
	// 101×101 is fine...
	if err := spec.Validate(); err != nil {
		t.Fatalf("10201-spec sweep rejected: %v", err)
	}
	// ...but 1025×1025 > 1<<20 is not.
	yields, relax = nil, nil
	for i := 0; i < 1025; i++ {
		yields = append(yields, float64(i+1)/1100)
		relax = append(relax, 1+float64(i))
	}
	big := Spec{Kind: KindWmin, Sweep: &Sweep{Yields: yields, RelaxFactors: relax}}
	err := big.Validate()
	if err == nil || !strings.Contains(err.Error(), "sanity bound") {
		t.Fatalf("oversized sweep: err = %v", err)
	}
}

// Axis products that overflow int must saturate, not wrap: a wrapped count
// of 0 would sail past every size bound and then OOM in Expand.
func TestExpandCountOverflowSaturates(t *testing.T) {
	axis := make([]float64, 65536)
	for i := range axis {
		axis[i] = 100 + float64(i)/1000
	}
	corners := make([]string, 65536)
	nodes := make([]string, 65536)
	scenarios := make([]string, 65536)
	for i := range corners {
		corners[i] = "worst"
		nodes[i] = "45nm"
		scenarios[i] = "aligned"
	}
	// 65536^4 = 2^64 wraps to exactly 0 under naive multiplication.
	spec := Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "aligned", Sweep: &Sweep{
		Corners: corners, Nodes: nodes, WidthsNM: axis, Scenarios: scenarios,
	}}
	if n := spec.ExpandCount(); n <= maxExpansion {
		t.Fatalf("ExpandCount = %d, want saturation above %d", n, maxExpansion)
	}
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "sanity bound") {
		t.Fatalf("overflowing sweep: err = %v", err)
	}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("Expand accepted an overflowing sweep")
	}
}

// Caller mistakes are marked RequestError; transports map them to 4xx.
func TestRequestErrorClassification(t *testing.T) {
	if _, err := Parse([]byte(`{"kind": "pff"}`)); !IsRequestError(err) {
		t.Fatalf("validation error not a request error: %v", err)
	}
	if _, _, err := (Spec{Kind: "pff"}).Canonical(); !IsRequestError(err) {
		t.Fatalf("canonical error not a request error: %v", err)
	}
	if IsRequestError(nil) || IsRequestError(errors.New("sweep failed")) {
		t.Fatal("non-request errors misclassified")
	}
}
