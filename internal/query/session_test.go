package query

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/sweepstore"
	"github.com/cnfet/yieldlab/internal/tech"
)

// testParams keeps sweeps and Monte Carlo cheap for the session suite.
func testParams() experiments.Params {
	p := experiments.DefaultParams()
	p.GridStepNM = 0.1
	p.MaxWidthNM = 200
	p.MCRounds = 500
	p.CorrelationRounds = 20
	p.NetlistInstances = 500
	p.Workers = 2
	return p
}

func newTestSession(t *testing.T, opts Options) *Session {
	t.Helper()
	if (opts.Params == experiments.Params{}) {
		opts.Params = testParams()
	}
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvaluatePFMatchesDeviceModel(t *testing.T) {
	s := newTestSession(t, Options{})
	res, err := s.Evaluate(context.Background(), Spec{Kind: KindPF, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	if res.PF == nil || res.Fingerprint == "" {
		t.Fatalf("result = %+v", res)
	}
	// The session must agree exactly with a directly built model on the
	// same grid (shared cache ⇒ literally the same swept table).
	m, err := device.NewCalibratedModelWith(s.Cache(), device.WorstCorner(),
		renewal.WithStep(0.1), renewal.WithMaxWidth(200))
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FailureProb(155)
	if err != nil {
		t.Fatal(err)
	}
	if res.PF.PF != want {
		t.Fatalf("session pF %g != model pF %g", res.PF.PF, want)
	}
	if res.PF.Corner != "worst" || res.PF.WidthNM != 155 || res.PF.Node != "" {
		t.Fatalf("payload = %+v", res.PF)
	}
}

func TestEvaluateNodeScalesWidth(t *testing.T) {
	s := newTestSession(t, Options{})
	ref, err := s.Evaluate(context.Background(), Spec{Kind: KindPF, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := s.Evaluate(context.Background(), Spec{Kind: KindPF, WidthNM: 155, Node: "22nm"})
	if err != nil {
		t.Fatal(err)
	}
	node, err := tech.ByName("22nm")
	if err != nil {
		t.Fatal(err)
	}
	if scaled.PF.WidthNM != node.ScaleWidth(155) {
		t.Fatalf("scaled width %g, want %g", scaled.PF.WidthNM, node.ScaleWidth(155))
	}
	if scaled.PF.Node != "22nm" {
		t.Fatalf("node echo %q", scaled.PF.Node)
	}
	// Narrower device, same pitch: failure probability must grow sharply.
	if !(scaled.PF.PF > 10*ref.PF.PF) {
		t.Fatalf("pF(22nm:%g) = %g should dwarf pF(45nm:155) = %g",
			scaled.PF.WidthNM, scaled.PF.PF, ref.PF.PF)
	}
}

func TestEvaluateWminAcrossNodesAndYields(t *testing.T) {
	s := newTestSession(t, Options{})
	base, err := s.Evaluate(context.Background(), Spec{Kind: KindWmin})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Wmin ≈ 155 nm at the worst corner, 90% yield.
	if base.Wmin.WminNM < 140 || base.Wmin.WminNM > 170 {
		t.Fatalf("Wmin = %g, want ≈ 155", base.Wmin.WminNM)
	}
	stricter, err := s.Evaluate(context.Background(), Spec{Kind: KindWmin, DesiredYield: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if !(stricter.Wmin.WminNM > base.Wmin.WminNM) {
		t.Fatalf("99%% yield Wmin %g should exceed 90%% Wmin %g",
			stricter.Wmin.WminNM, base.Wmin.WminNM)
	}
	scaled, err := s.Evaluate(context.Background(), Spec{Kind: KindWmin, Node: "22nm"})
	if err != nil {
		t.Fatal(err)
	}
	// The width distribution shrinks with the node but the pitch does not:
	// the threshold cannot scale below the 45 nm solution's node-scaled
	// value — that is exactly the paper's Fig. 2.2b blow-up.
	if !(scaled.Wmin.WminNM > base.Wmin.WminNM*22.0/45.0) {
		t.Fatalf("22nm Wmin %g vs scaled 45nm threshold %g: penalty vanished",
			scaled.Wmin.WminNM, base.Wmin.WminNM*22.0/45.0)
	}
	relaxed, err := s.Evaluate(context.Background(), Spec{Kind: KindWmin, RelaxFactor: 360})
	if err != nil {
		t.Fatal(err)
	}
	if !(relaxed.Wmin.WminNM < base.Wmin.WminNM) {
		t.Fatalf("relaxed Wmin %g should beat base %g", relaxed.Wmin.WminNM, base.Wmin.WminNM)
	}
}

func TestEvaluateRowYieldScenarios(t *testing.T) {
	s := newTestSession(t, Options{})
	ctx := context.Background()
	al, err := s.Evaluate(ctx, Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "aligned"})
	if err != nil {
		t.Fatal(err)
	}
	if al.RowYield.PRF != al.RowYield.DevicePF {
		t.Fatalf("aligned pRF %g != pF %g", al.RowYield.PRF, al.RowYield.DevicePF)
	}
	unc, err := s.Evaluate(ctx, Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "uncorrelated", KRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !(unc.RowYield.PRF > 100*al.RowYield.PRF) {
		t.Fatalf("uncorrelated pRF %g should dwarf aligned %g", unc.RowYield.PRF, al.RowYield.PRF)
	}
	if unc.RowYield.ChipYield <= 0 || unc.RowYield.ChipYield >= 1 || unc.RowYield.KRows != 1000 {
		t.Fatalf("chip yield payload = %+v", unc.RowYield)
	}
	// Unaligned Monte Carlo with an explicit offset distribution: same seed
	// twice must reproduce bit-identically (the ETag soundness property).
	spec := Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", Rounds: 200,
		Offsets: []float64{0, 190, 380}, OffsetProbs: []float64{0.5, 0.25, 0.25}}
	a, err := s.Evaluate(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Evaluate(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.RowYield.PRF != b.RowYield.PRF || a.RowYield.StdErr != b.RowYield.StdErr {
		t.Fatalf("seeded Monte Carlo not reproducible: %+v vs %+v", a.RowYield, b.RowYield)
	}
	if a.RowYield.Rounds != 200 {
		t.Fatalf("rounds echo = %d", a.RowYield.Rounds)
	}
}

func TestEvaluateRowYieldRoundsBound(t *testing.T) {
	s := newTestSession(t, Options{MaxRowRounds: 100})
	_, err := s.Evaluate(context.Background(),
		Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", Rounds: 500,
			Offsets: []float64{0}, OffsetProbs: []float64{1}})
	if err == nil {
		t.Fatal("rounds beyond the bound accepted")
	}
}

func TestEvaluateNoise(t *testing.T) {
	s := newTestSession(t, Options{})
	res, err := s.Evaluate(context.Background(), Spec{Kind: KindNoise, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	n := res.Noise
	if n.PRM != DefaultPRM || n.Gates != s.Params().M || n.DesiredYield != s.Params().DesiredYield {
		t.Fatalf("defaults = %+v", n)
	}
	if !(n.ViolationProb > 0) || !(n.ViolationProb < 1) {
		t.Fatalf("violation prob = %g", n.ViolationProb)
	}
	if !(n.ChipYield >= 0) || n.ChipYield >= 1 {
		t.Fatalf("chip yield = %g", n.ChipYield)
	}
	// The paper's cited requirement: ≥ 99.99% removal for practical VLSI.
	if !(n.RequiredPRM > 0.999) {
		t.Fatalf("required pRm = %g, want > 0.999", n.RequiredPRM)
	}
}

func TestEvaluatePitchOverrides(t *testing.T) {
	s := newTestSession(t, Options{})
	ctx := context.Background()
	base, err := s.Evaluate(ctx, Spec{Kind: KindPF, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	// Spelling out the calibrated law is the same computation (and the
	// same fingerprint — no duplicate sweep).
	explicit, err := s.Evaluate(ctx, Spec{Kind: KindPF, WidthNM: 155, PitchMeanNM: 4, PitchSigmaRatio: 2.3})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Fingerprint != base.Fingerprint || explicit.PF.PF != base.PF.PF {
		t.Fatalf("explicit calibrated pitch diverged: %+v vs %+v", explicit, base)
	}
	// Sparser growth (larger mean pitch) means fewer CNTs per device:
	// failure probability must rise.
	sparse, err := s.Evaluate(ctx, Spec{Kind: KindPF, WidthNM: 155, PitchMeanNM: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !(sparse.PF.PF > 10*base.PF.PF) {
		t.Fatalf("8 nm-pitch pF %g should dwarf 4 nm-pitch pF %g", sparse.PF.PF, base.PF.PF)
	}
	// Density variation, not mean density, sets the yield floor (the
	// ext-pitch ablation): a nearly deterministic pitch at the same mean
	// must do far better than the calibrated σ/µ = 2.3.
	tight, err := s.Evaluate(ctx, Spec{Kind: KindPF, WidthNM: 155, PitchSigmaRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !(tight.PF.PF < base.PF.PF/10) {
		t.Fatalf("low-variance pitch pF %g should beat calibrated %g", tight.PF.PF, base.PF.PF)
	}
	// And the pitch mean works as a sweep axis next to the circuit knobs.
	sweep := Spec{Kind: KindPF, WidthNM: 155, Sweep: &Sweep{
		Corners: []string{"worst", "mid"}, PitchMeansNM: []float64{4, 6},
	}}
	results, err := s.EvaluateAll(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	if results[0].Spec.PitchMeanNM != 0 || results[1].Spec.PitchMeanNM != 6 {
		t.Fatalf("pitch axis order: %+v, %+v", results[0].Spec, results[1].Spec)
	}
}

func TestEvaluateRejectsSweep(t *testing.T) {
	s := newTestSession(t, Options{})
	_, err := s.Evaluate(context.Background(),
		Spec{Kind: KindPF, WidthNM: 155, Sweep: &Sweep{Corners: []string{"worst", "best"}}})
	if err == nil {
		t.Fatal("sweep spec accepted by Evaluate")
	}
}

func TestEvaluateAllDeterministicOrder(t *testing.T) {
	spec := Spec{Kind: KindPF, WidthNM: 155, Sweep: &Sweep{
		Corners:  []string{"worst", "mid", "best"},
		WidthsNM: []float64{103, 155, 200},
	}}
	// Two sessions with different worker counts must produce identical
	// result slices (same order, same numbers).
	s1 := newTestSession(t, Options{Workers: 1})
	s4 := newTestSession(t, Options{Workers: 4})
	r1, err := s1.EvaluateAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := s4.EvaluateAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 9 || len(r4) != 9 {
		t.Fatalf("lengths %d, %d", len(r1), len(r4))
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("worker count changed sweep results")
	}
	// Order: corners slowest, widths fastest.
	if r1[0].PF.Corner != "worst" || r1[0].PF.WidthNM != 103 {
		t.Fatalf("r1[0] = %+v", r1[0].PF)
	}
	if r1[8].PF.Corner != "best" || r1[8].PF.WidthNM != 200 {
		t.Fatalf("r1[8] = %+v", r1[8].PF)
	}
	// One pitch law, one grid: all 9 specs share a single swept model. The
	// model extends its table incrementally per width horizon, so up to one
	// sweep per distinct width — never one per (corner, width) pair.
	if st := s4.Cache().Stats(); st.Entries != 1 || st.Sweeps == 0 || st.Sweeps > 3 {
		t.Fatalf("cache stats = %+v, want one shared model with ≤ 3 sweeps", st)
	}
}

func TestEvaluateAllProgressPrefixOrder(t *testing.T) {
	spec := Spec{Kind: KindPF, WidthNM: 155, Sweep: &Sweep{WidthsNM: []float64{50, 100, 150, 200}}}
	s := newTestSession(t, Options{Workers: 4})
	var mu sync.Mutex
	var dones []int
	var widths []float64
	results, err := s.EvaluateAllFunc(context.Background(), spec, func(done, total int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		if total != 4 {
			t.Errorf("total = %d", total)
		}
		dones = append(dones, done)
		widths = append(widths, r.PF.WidthNM)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if !reflect.DeepEqual(dones, []int{1, 2, 3, 4}) {
		t.Fatalf("progress dones = %v, want consecutive prefix", dones)
	}
	if !reflect.DeepEqual(widths, []float64{50, 100, 150, 200}) {
		t.Fatalf("progress widths = %v, want expansion order", widths)
	}
}

func TestEvaluateAllFirstErrorWins(t *testing.T) {
	// Width 300 exceeds the 200 nm test grid: specs 2 and 4 fail; the
	// error must name the earliest (index 2, 1-based).
	spec := Spec{Kind: KindPF, WidthNM: 155, Sweep: &Sweep{WidthsNM: []float64{100, 300, 150, 300}}}
	s := newTestSession(t, Options{Workers: 4})
	_, err := s.EvaluateAll(context.Background(), spec)
	if err == nil {
		t.Fatal("invalid sweep succeeded")
	}
	var want = "spec 2/4"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("error %q should name %s", got, want)
	}
}

func TestEvaluateAllContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := newTestSession(t, Options{})
	_, err := s.EvaluateAll(ctx, Spec{Kind: KindPF, WidthNM: 155, Sweep: &Sweep{WidthsNM: []float64{100, 150}}})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvaluateAllMaxSweep(t *testing.T) {
	s := newTestSession(t, Options{MaxSweep: 3})
	_, err := s.EvaluateAll(context.Background(),
		Spec{Kind: KindPF, WidthNM: 155, Sweep: &Sweep{WidthsNM: []float64{100, 120, 140, 160}}})
	if err == nil || !strings.Contains(err.Error(), "exceeds limit 3") {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionCheckpointPersists(t *testing.T) {
	dir := t.TempDir()
	store, err := sweepstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestSession(t, Options{Store: store})
	if _, err := s1.Evaluate(context.Background(), Spec{Kind: KindPF, WidthNM: 155}); err != nil {
		t.Fatal(err)
	}
	s1.Checkpoint()
	if s1.LastPersistError() != "" {
		t.Fatalf("persist error: %s", s1.LastPersistError())
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh session over the same store answers without sweeping.
	store2, err := sweepstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestSession(t, Options{Store: store2})
	res, err := s2.Evaluate(context.Background(), Spec{Kind: KindPF, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Cache().Stats(); st.Sweeps != 0 {
		t.Fatalf("warm session ran %d sweeps, want 0", st.Sweeps)
	}
	first, err := s1.Evaluate(context.Background(), Spec{Kind: KindPF, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	if res.PF.PF != first.PF.PF {
		t.Fatalf("warm pF %g != cold pF %g", res.PF.PF, first.PF.PF)
	}
}

func TestEvaluateExperiment(t *testing.T) {
	s := newTestSession(t, Options{})
	res, err := s.Evaluate(context.Background(),
		Spec{Kind: KindExperiment, Experiments: []string{"fig2.2a", "ext-pitch"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Experiments) != 2 || res.Experiments[0].Name != "fig2.2a" || res.Experiments[1].Name != "ext-pitch" {
		t.Fatalf("experiments = %+v", res.Experiments)
	}
	if res.Experiments[0].Table == nil || len(res.Experiments[0].Table.Rows) == 0 {
		t.Fatal("missing table")
	}
}
