package query

import (
	"encoding/json"
	"io"
	"math"

	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/report"
)

// JSON encodings of experiment artifacts, shared by the server's job and
// /v2/query responses, the CLI's -json and -spec modes and the library's
// WriteResultsJSON, so scripted consumers see one schema.
//
// Floating-point paper references may be NaN ("the paper gives no number");
// encoding/json rejects NaN, so those fields are pointers encoded as null.

// TableJSON mirrors report.Table.
type TableJSON struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// ComparisonJSON mirrors report.Comparison plus the derived verdict.
type ComparisonJSON struct {
	Artifact string   `json:"artifact"`
	Quantity string   `json:"quantity"`
	Paper    *float64 `json:"paper"` // null when the paper gives no number
	Measured float64  `json:"measured"`
	Unit     string   `json:"unit,omitempty"`
	// TolFactor is the acceptance band (2 = within 2× either way; 0 = none).
	TolFactor float64 `json:"tol_factor,omitempty"`
	Within    bool    `json:"within_tolerance"`
}

// ResultJSON is one experiment's output.
type ResultJSON struct {
	Name        string            `json:"name"`
	Table       *TableJSON        `json:"table,omitempty"`
	Charts      []string          `json:"charts,omitempty"`
	Comparisons []ComparisonJSON  `json:"comparisons,omitempty"`
	CSVs        map[string]string `json:"csvs,omitempty"`
	SVGs        map[string]string `json:"svgs,omitempty"`
}

// EncodeTable converts a report table (nil in, nil out).
func EncodeTable(t *report.Table) *TableJSON {
	if t == nil {
		return nil
	}
	return &TableJSON{Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes}
}

// EncodeComparisons converts a comparison set (nil in, nil out).
func EncodeComparisons(s *report.ComparisonSet) []ComparisonJSON {
	if s == nil {
		return nil
	}
	out := make([]ComparisonJSON, 0, len(s.Records))
	for _, c := range s.Records {
		cj := ComparisonJSON{
			Artifact:  c.Artifact,
			Quantity:  c.Quantity,
			Measured:  c.Measured,
			Unit:      c.Unit,
			TolFactor: c.TolFactor,
			Within:    c.WithinTolerance(),
		}
		if !math.IsNaN(c.Paper) {
			paper := c.Paper
			cj.Paper = &paper
		}
		out = append(out, cj)
	}
	return out
}

// EncodeResult converts one experiment result.
func EncodeResult(res *experiments.Result) ResultJSON {
	return ResultJSON{
		Name:        res.Name,
		Table:       EncodeTable(res.Table),
		Charts:      res.Charts,
		Comparisons: EncodeComparisons(res.Comparisons),
		CSVs:        res.CSVs,
		SVGs:        res.SVGs,
	}
}

// EncodeResults converts a result list, preserving order.
func EncodeResults(results []*experiments.Result) []ResultJSON {
	out := make([]ResultJSON, 0, len(results))
	for _, res := range results {
		out = append(out, EncodeResult(res))
	}
	return out
}

// WriteResults renders results as an indented JSON array — the payload
// behind both `cnfetyield -json` and the job-result API.
func WriteResults(w io.Writer, results []*experiments.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(EncodeResults(results))
}
