package query

import (
	"context"
	"strings"
	"testing"
)

func TestValidateRareEventFields(t *testing.T) {
	base := Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned",
		Offsets: []float64{0, 50}, OffsetProbs: []float64{0.5, 0.5}}

	accept := []func(*Spec){
		func(q *Spec) { q.MCMethod = "tilted" },
		func(q *Spec) { q.MCMethod = "auto"; q.RelErrTarget = 0.1 },
		func(q *Spec) { q.RelErrTarget = 0.01 },
		func(q *Spec) { q.MCMethod = "splitting" },
	}
	for i, mod := range accept {
		q := base
		mod(&q)
		if err := q.Validate(); err != nil {
			t.Errorf("accept case %d: Validate(%+v) = %v", i, q, err)
		}
	}

	reject := []struct {
		mod  func(*Spec)
		want string
	}{
		{func(q *Spec) { q.MCMethod = "importance" }, "unknown method"},
		{func(q *Spec) { q.RelErrTarget = -0.1 }, "rel err target"},
		{func(q *Spec) { q.RelErrTarget = 0.9 }, "rel err target"},
		{func(q *Spec) {
			q.Kind = KindPF
			q.Scenario = ""
			q.Offsets = nil
			q.OffsetProbs = nil
			q.MCMethod = "tilted"
		},
			"only to rowyield"},
		{func(q *Spec) {
			q.Kind = KindPF
			q.Scenario = ""
			q.Offsets = nil
			q.OffsetProbs = nil
			q.RelErrTarget = 0.1
		},
			"only to rowyield"},
	}
	for i, tc := range reject {
		q := base
		tc.mod(&q)
		err := q.Validate()
		if err == nil {
			t.Errorf("reject case %d: Validate accepted %+v", i, q)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("reject case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

// TestCanonicalRareEventEquivalence: equivalent spellings of the same
// adaptive computation share a fingerprint, and the new fields never
// perturb fingerprints of specs that cannot reach the adaptive path.
func TestCanonicalRareEventEquivalence(t *testing.T) {
	groups := [][]Spec{
		{
			// "plain" is the implicit default method.
			{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", RelErrTarget: 0.1},
			{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "plain", RelErrTarget: 0.1},
		},
		{
			// Spelling out the default target and the default adaptive
			// round cap is the same computation as omitting them.
			{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "tilted"},
			{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "tilted",
				RelErrTarget: DefaultRelErrTarget},
			{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "tilted",
				Rounds: DefaultAdaptiveRounds},
		},
		{
			// Aligned rows never run Monte Carlo: estimator knobs are inert.
			{Kind: KindRowYield, WidthNM: 155, Scenario: "aligned"},
			{Kind: KindRowYield, WidthNM: 155, Scenario: "aligned", MCMethod: "tilted", RelErrTarget: 0.1},
		},
	}
	for gi, group := range groups {
		var first string
		for i, spec := range group {
			_, fp, err := spec.Canonical()
			if err != nil {
				t.Fatalf("group %d spec %d: %v", gi, i, err)
			}
			if i == 0 {
				first = fp
			} else if fp != first {
				t.Errorf("group %d spec %d: fingerprint %s != %s", gi, i, fp, first)
			}
		}
	}

	// Distinct estimator configurations are distinct computations.
	distinct := []Spec{
		{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned"},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "tilted"},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "splitting"},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "auto"},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", RelErrTarget: 0.1},
		{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "tilted", RelErrTarget: 0.1},
	}
	seen := map[string]int{}
	for i, spec := range distinct {
		_, fp, err := spec.Canonical()
		if err != nil {
			t.Fatalf("distinct %d: %v", i, err)
		}
		if j, dup := seen[fp]; dup {
			t.Errorf("specs %d and %d collide on %s", i, j, fp)
		}
		seen[fp] = i
	}
}

// TestEvaluateRowYieldAdaptive drives the full adaptive path through
// the Session API: an explicit method plus relative-error target must
// surface the method, achieved error, and estimator diagnostics in the
// result, deterministically.
func TestEvaluateRowYieldAdaptive(t *testing.T) {
	s := newTestSession(t, Options{})
	ctx := context.Background()
	spec := Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned",
		MCMethod: "tilted", RelErrTarget: 0.1,
		Offsets: []float64{0, 190, 380}, OffsetProbs: []float64{0.5, 0.25, 0.25}}
	a, err := s.Evaluate(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	ry := a.RowYield
	if ry.MCMethod != "tilted" {
		t.Fatalf("method echo = %q", ry.MCMethod)
	}
	if !(ry.PRF > 0) || !(ry.RelErr > 0) || ry.RelErr > 0.1 {
		t.Fatalf("adaptive estimate = %+v", ry)
	}
	if ry.TiltTheta == 0 {
		t.Fatalf("tilted run reported no tilt parameter: %+v", ry)
	}
	if ry.Rounds <= 0 || ry.StdErr <= 0 {
		t.Fatalf("diagnostics missing: %+v", ry)
	}
	b, err := s.Evaluate(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if *a.RowYield != *b.RowYield {
		t.Fatalf("adaptive evaluation not reproducible: %+v vs %+v", a.RowYield, b.RowYield)
	}

	// A plain adaptive run reports its method but no tilt diagnostics.
	plain, err := s.Evaluate(ctx, Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned",
		RelErrTarget: 0.1, Offsets: []float64{0, 190, 380}, OffsetProbs: []float64{0.5, 0.25, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.RowYield.MCMethod != "plain" || plain.RowYield.TiltTheta != 0 || plain.RowYield.SplitLevels != 0 {
		t.Fatalf("plain adaptive diagnostics = %+v", plain.RowYield)
	}
}

// TestEvaluateAdaptiveRoundsBound: MaxRowRounds rejects (never clamps)
// the resolved adaptive cap, preserving ETag soundness.
func TestEvaluateAdaptiveRoundsBound(t *testing.T) {
	s := newTestSession(t, Options{MaxRowRounds: 100})
	_, err := s.Evaluate(context.Background(),
		Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "tilted",
			Offsets: []float64{0}, OffsetProbs: []float64{1}})
	if err == nil {
		t.Fatal("default adaptive cap beyond MaxRowRounds accepted")
	}
	// An explicit budget inside the bound passes.
	res, err := s.Evaluate(context.Background(),
		Spec{Kind: KindRowYield, WidthNM: 155, Scenario: "unaligned", MCMethod: "plain",
			RelErrTarget: 0.5, Rounds: 96,
			Offsets: []float64{0}, OffsetProbs: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowYield.Rounds > 96 {
		t.Fatalf("adaptive run exceeded its budget: %+v", res.RowYield)
	}
}
