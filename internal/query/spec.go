// Package query defines the one declarative request language shared by the
// yieldlab library facade, the cnfetyield CLI and the yieldserver HTTP
// service: a JSON-(de)serializable QuerySpec describing a point — or, with
// sweep axes, a whole cartesian design space — of the paper's implicit
// study space (processing corner × tech node × device width × yield target
// × row scenario), and a stateful Session that evaluates specs over a
// shared renewal sweep cache, an optional persistent sweep store and a
// bounded worker pool.
//
// The spec kinds map onto the paper's questions:
//
//	pf          device failure probability pF(W) (Eq. 2.2, Fig. 2.1)
//	wmin        chip-level minimum width (Eq. 2.5, Fig. 2.2b)
//	rowyield    row failure probability per growth/layout scenario (Table 1)
//	noise       noise-limited yield from surviving metallic CNTs ([Zhang 09b])
//	experiment  whole paper artifacts by name ("table1", "fig2.1", ...)
//
// A Spec is canonicalized by Canonical(): named corners, tech nodes and
// scenarios are normalized and fields irrelevant to the kind are zeroed, so
// equivalent requests share one stable fingerprint — the identity used for
// response caching and HTTP ETags. Expand() turns sweep axes into the
// deterministic cartesian product of concrete specs, opening the ROADMAP's
// pitch × corner × node × yield-target exploration as a single request.
//
//yield:compute
package query

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/rareevent"
	"github.com/cnfet/yieldlab/internal/rowyield"
	"github.com/cnfet/yieldlab/internal/tech"
)

// The spec kinds.
const (
	KindPF         = "pf"
	KindWmin       = "wmin"
	KindRowYield   = "rowyield"
	KindNoise      = "noise"
	KindExperiment = "experiment"
)

// Kinds lists the spec kinds in documentation order.
func Kinds() []string {
	return []string{KindPF, KindWmin, KindRowYield, KindNoise, KindExperiment}
}

// Spec is one declarative yield query. The zero value of every optional
// field means "use the session default"; Validate reports which fields a
// kind requires. Specs marshal to stable JSON and round-trip losslessly.
type Spec struct {
	// Kind selects the computation: pf, wmin, rowyield, noise or experiment.
	Kind string `json:"kind"`

	// Corner names a Fig. 2.1 processing corner ("worst", "mid", "best" or
	// a full label like "pm=33%, pRs=30%"). Alternatively PM/PRS give the
	// explicit failure probabilities of Eq. 2.1; giving both is an error.
	Corner string   `json:"corner,omitempty"`
	PM     *float64 `json:"pm,omitempty"`
	PRS    *float64 `json:"prs,omitempty"`

	// Node names a technology node ("45nm", "32nm", "22nm", "16nm"). Widths
	// are interpreted at the 45 nm reference and scaled linearly to the node
	// while the CNT pitch stays at 4 nm — the paper's Section 2.2 rule.
	// Empty (or the reference node itself) means no scaling.
	Node string `json:"node,omitempty"`

	// WidthNM is the device width at the 45 nm reference, required by the
	// pf, rowyield and noise kinds.
	WidthNM float64 `json:"width_nm,omitempty"`

	// GridStepNM and MaxWidthNM override the renewal grid (0 = session
	// default). Changing them changes the cache identity, never a result.
	GridStepNM float64 `json:"grid_step_nm,omitempty"` //yield:allow(canonical) numerics knob, not query identity: the grid changes cost, never a result, so Canonical passes it through untouched
	MaxWidthNM float64 `json:"max_width_nm,omitempty"` //yield:allow(canonical) numerics knob, not query identity: the grid changes cost, never a result, so Canonical passes it through untouched

	// PitchMeanNM overrides the mean inter-CNT pitch (0 = the calibrated
	// 4 nm of [Deng 07]); PitchSigmaRatio the parent-normal σ/µ of the
	// truncated-normal pitch law (0 = the calibrated 2.3). Together they
	// open processing itself — CNT density and its variability — as sweep
	// coordinates next to the circuit-side knobs.
	PitchMeanNM     float64 `json:"pitch_mean_nm,omitempty"`
	PitchSigmaRatio float64 `json:"pitch_sigma_ratio,omitempty"`

	// M is the chip transistor count (wmin) or gate count (noise);
	// DesiredYield the chip yield target; RelaxFactor the failure-budget
	// relaxation of Eq. 3.1 (1 = uncorrelated baseline, MRmin ≈ 360 after
	// the aligned-active co-optimization). Zero = session defaults.
	M            float64 `json:"m,omitempty"`
	DesiredYield float64 `json:"desired_yield,omitempty"`
	RelaxFactor  float64 `json:"relax_factor,omitempty"`

	// Scenario selects the Table 1 growth/layout combination for rowyield:
	// "uncorrelated", "unaligned" or "aligned".
	Scenario string `json:"scenario,omitempty"`
	// Rounds is the Monte Carlo budget of the unaligned scenario
	// (0 = DefaultRowRounds). Under adaptive stopping — a positive
	// RelErrTarget or a non-plain MCMethod — it is the hard round cap
	// instead (0 = DefaultAdaptiveRounds).
	Rounds int `json:"rounds,omitempty"`
	// MCMethod selects the unaligned scenario's Monte Carlo estimator:
	// "plain" (the default exact-DP rounds), "tilted" (importance sampling
	// by exponential tilting of the pitch law), "splitting" (multilevel
	// splitting) or "auto" (pilot-measured best). Any non-plain method
	// implies adaptive stopping.
	MCMethod string `json:"mc_method,omitempty"`
	// RelErrTarget, when positive, switches the unaligned scenario to
	// relative-error-targeted adaptive stopping: simulation proceeds in
	// deterministic doubling blocks until the estimate's relative standard
	// error reaches the target or the Rounds cap is spent. Zero with a
	// non-plain MCMethod means DefaultRelErrTarget.
	RelErrTarget float64 `json:"rel_err_target,omitempty"`
	// KRows, when positive, additionally reports the Eq. 3.1 chip yield
	// (1-pRF)^KRows.
	KRows float64 `json:"krows,omitempty"`
	// Offsets/OffsetProbs optionally replace the library-measured lateral
	// offset distribution of the unaligned scenario.
	Offsets     []float64 `json:"offsets,omitempty"`
	OffsetProbs []float64 `json:"offset_probs,omitempty"`

	// PRM is the metallic-removal efficiency pRm of the noise kind
	// (nil = 0.9999, the paper's quoted requirement); RatioThreshold the
	// tolerable metallic-to-semiconducting current ratio (0 = default).
	PRM            *float64 `json:"prm,omitempty"`
	RatioThreshold float64  `json:"ratio_threshold,omitempty"`

	// Experiments lists artifact names for the experiment kind; "all"
	// expands to the paper set.
	Experiments []string `json:"experiments,omitempty"`

	// Seed overrides the Monte Carlo root seed (0 = session default).
	Seed uint64 `json:"seed,omitempty"`

	// Sweep, when non-nil, expands this spec into the cartesian product of
	// its axes; the scalar fields above provide the fixed coordinates.
	Sweep *Sweep `json:"sweep,omitempty"`
}

// Sweep declares the axes of a design-space sweep. Every non-empty axis
// multiplies the expansion; axis order below is the deterministic expansion
// order (corners vary slowest, scenarios fastest).
type Sweep struct {
	Corners      []string  `json:"corners,omitempty"`
	PitchMeansNM []float64 `json:"pitch_means_nm,omitempty"`
	Nodes        []string  `json:"nodes,omitempty"`
	WidthsNM     []float64 `json:"widths_nm,omitempty"`
	Yields       []float64 `json:"yields,omitempty"`
	RelaxFactors []float64 `json:"relax_factors,omitempty"`
	Scenarios    []string  `json:"scenarios,omitempty"`
}

// empty reports whether no axis has entries.
func (s *Sweep) empty() bool {
	return s == nil || len(s.Corners)+len(s.PitchMeansNM)+len(s.Nodes)+len(s.WidthsNM)+
		len(s.Yields)+len(s.RelaxFactors)+len(s.Scenarios) == 0
}

// DefaultRowRounds is the Monte Carlo budget of an unaligned rowyield spec
// that does not name one.
const DefaultRowRounds = 2_000

// DefaultAdaptiveRounds is the hard round cap of an adaptive unaligned
// rowyield spec (one with a RelErrTarget or a non-plain MCMethod) that does
// not name its own: large enough to reach deep-tail targets, finite so a
// non-converging request cannot run forever.
const DefaultAdaptiveRounds = 1 << 22

// DefaultRelErrTarget is the relative-standard-error target assumed when a
// spec selects a non-plain MCMethod without naming a target.
const DefaultRelErrTarget = 0.05

// DefaultPRM is the metallic-removal efficiency assumed by a noise spec
// that does not name one: the paper's quoted "beyond 99.99%" requirement.
const DefaultPRM = 0.9999

// maxExpansion is an absolute sanity bound on Expand; services should
// enforce their own (smaller) budget via ExpandCount.
const maxExpansion = 1 << 20

// cornerShortNames maps the API names onto device.PaperCorners(), worst
// first — the one naming shared by the CLI, the server and specs.
var cornerShortNames = []string{"worst", "mid", "best"}

// CornerNames returns the short corner names in Fig. 2.1 order, worst first.
func CornerNames() []string { return append([]string(nil), cornerShortNames...) }

// ResolveCorner maps a short name ("worst"), a full Fig. 2.1 label
// ("pm=33%, pRs=30%") or the empty string (= worst) to failure parameters
// and the canonical short name.
func ResolveCorner(name string) (device.FailureParams, string, error) {
	if name == "" {
		name = cornerShortNames[0]
	}
	for i, c := range device.PaperCorners() {
		if name == cornerShortNames[i] || name == c.Name {
			return c.Params, cornerShortNames[i], nil
		}
	}
	return device.FailureParams{}, "", fmt.Errorf("unknown corner %q (have %s, or give pm and prs)",
		name, strings.Join(cornerShortNames, ", "))
}

// scenarioNames maps spec scenario names onto rowyield scenarios.
var scenarioNames = map[string]rowyield.Scenario{
	"uncorrelated": rowyield.UncorrelatedGrowth,
	"unaligned":    rowyield.DirectionalUnaligned,
	"aligned":      rowyield.DirectionalAligned,
}

// ResolveScenario maps a spec scenario name to the rowyield scenario.
func ResolveScenario(name string) (rowyield.Scenario, error) {
	s, ok := scenarioNames[name]
	if !ok {
		return 0, fmt.Errorf("unknown scenario %q (have uncorrelated, unaligned, aligned)", name)
	}
	return s, nil
}

// resolveNode maps a node name (or "" = reference) to a tech node.
func resolveNode(name string) (tech.Node, error) {
	if name == "" {
		return tech.Reference, nil
	}
	return tech.ByName(name)
}

// FailureParams resolves the spec's corner/pm/prs triple to failure
// parameters and the canonical corner name.
func (q Spec) FailureParams() (device.FailureParams, string, error) {
	if q.PM != nil || q.PRS != nil {
		if q.Corner != "" {
			return device.FailureParams{}, "", fmt.Errorf("give either corner or pm/prs, not both")
		}
		if q.PM == nil || q.PRS == nil {
			return device.FailureParams{}, "", fmt.Errorf("explicit corners need both pm and prs")
		}
		p := device.FailureParams{PMetallic: *q.PM, PRemoveSemi: *q.PRS, PRemoveMetallic: 1}
		if err := p.Validate(); err != nil {
			return device.FailureParams{}, "", err
		}
		return p, fmt.Sprintf("pm=%g,prs=%g", *q.PM, *q.PRS), nil
	}
	return ResolveCorner(q.Corner)
}

// Validate checks the spec describes one well-posed query (or sweep).
func (q Spec) Validate() error {
	wrap := func(err error) error {
		if err == nil {
			return nil
		}
		return fmt.Errorf("query: %s spec: %w", q.Kind, err)
	}
	switch q.Kind {
	case KindPF, KindWmin, KindRowYield, KindNoise, KindExperiment:
	default:
		return fmt.Errorf("query: unknown kind %q (have %s)", q.Kind, strings.Join(Kinds(), ", "))
	}

	if q.Kind == KindExperiment {
		if q.Corner != "" || q.PM != nil || q.PRS != nil {
			return wrap(fmt.Errorf("experiment specs take no corner (experiments fix their own)"))
		}
		if len(q.Experiments) == 0 {
			return wrap(fmt.Errorf("no experiments named"))
		}
		for _, n := range q.Experiments {
			if n != "all" && !experiments.Known(n) {
				msg := fmt.Sprintf("unknown experiment %q", n)
				if hint, ok := experiments.Suggest(n); ok {
					msg += fmt.Sprintf(" (did you mean %q?)", hint)
				}
				return wrap(fmt.Errorf("%s", msg))
			}
		}
	} else if _, _, err := q.FailureParams(); err != nil {
		return wrap(err)
	}

	if _, err := resolveNode(q.Node); err != nil {
		return wrap(err)
	}
	if q.GridStepNM < 0 || math.IsNaN(q.GridStepNM) {
		return wrap(fmt.Errorf("grid step %g must be ≥ 0", q.GridStepNM))
	}
	if q.MaxWidthNM < 0 || math.IsNaN(q.MaxWidthNM) {
		return wrap(fmt.Errorf("max width %g must be ≥ 0", q.MaxWidthNM))
	}
	if q.PitchMeanNM < 0 || math.IsNaN(q.PitchMeanNM) {
		return wrap(fmt.Errorf("pitch mean %g must be ≥ 0", q.PitchMeanNM))
	}
	if q.PitchSigmaRatio < 0 || math.IsNaN(q.PitchSigmaRatio) {
		return wrap(fmt.Errorf("pitch sigma ratio %g must be ≥ 0", q.PitchSigmaRatio))
	}
	if q.Kind == KindExperiment && (q.PitchMeanNM != 0 || q.PitchSigmaRatio != 0) {
		return wrap(fmt.Errorf("experiments fix their own pitch law"))
	}

	needsWidth := q.Kind == KindPF || q.Kind == KindRowYield || q.Kind == KindNoise
	widthSwept := q.Sweep != nil && len(q.Sweep.WidthsNM) > 0
	if needsWidth && !widthSwept {
		if !(q.WidthNM > 0) || math.IsNaN(q.WidthNM) {
			return wrap(fmt.Errorf("width %g must be positive", q.WidthNM))
		}
	}
	if q.M < 0 || math.IsNaN(q.M) {
		return wrap(fmt.Errorf("m %g must be ≥ 0", q.M))
	}
	if q.DesiredYield != 0 && (!(q.DesiredYield > 0) || q.DesiredYield >= 1 || math.IsNaN(q.DesiredYield)) {
		return wrap(fmt.Errorf("desired yield %g out of (0,1)", q.DesiredYield))
	}
	if q.RelaxFactor != 0 && (q.RelaxFactor < 1 || math.IsNaN(q.RelaxFactor)) {
		return wrap(fmt.Errorf("relax factor %g must be ≥ 1", q.RelaxFactor))
	}

	if q.Kind == KindRowYield {
		scenarioSwept := q.Sweep != nil && len(q.Sweep.Scenarios) > 0
		if !scenarioSwept {
			if _, err := ResolveScenario(q.Scenario); err != nil {
				return wrap(err)
			}
		}
		if q.Rounds != 0 && q.Rounds < 2 {
			return wrap(fmt.Errorf("rounds %d must be ≥ 2", q.Rounds))
		}
		if q.MCMethod != "" {
			if _, err := rareevent.ParseMethod(q.MCMethod); err != nil {
				return wrap(err)
			}
		}
		if q.RelErrTarget != 0 &&
			(!(q.RelErrTarget > 0) || q.RelErrTarget > 0.5 || math.IsNaN(q.RelErrTarget)) {
			return wrap(fmt.Errorf("rel err target %g out of (0, 0.5]", q.RelErrTarget))
		}
		if q.KRows < 0 || math.IsNaN(q.KRows) {
			return wrap(fmt.Errorf("krows %g must be ≥ 0", q.KRows))
		}
		if len(q.Offsets) > 0 || len(q.OffsetProbs) > 0 {
			if _, err := rowyield.NewOffsetDist(q.Offsets, q.OffsetProbs); err != nil {
				return wrap(err)
			}
		}
	} else if q.Scenario != "" || len(q.Offsets) > 0 || len(q.OffsetProbs) > 0 ||
		q.MCMethod != "" || q.RelErrTarget != 0 {
		return wrap(fmt.Errorf("scenario fields apply only to rowyield specs"))
	}

	if q.Kind == KindNoise {
		if q.PRM != nil && (*q.PRM < 0 || *q.PRM > 1 || math.IsNaN(*q.PRM)) {
			return wrap(fmt.Errorf("prm %g out of [0,1]", *q.PRM))
		}
		if q.RatioThreshold < 0 || math.IsNaN(q.RatioThreshold) {
			return wrap(fmt.Errorf("ratio threshold %g must be ≥ 0", q.RatioThreshold))
		}
	} else if q.PRM != nil || q.RatioThreshold != 0 {
		return wrap(fmt.Errorf("noise fields apply only to noise specs"))
	}

	if q.Kind != KindExperiment && len(q.Experiments) > 0 {
		return wrap(fmt.Errorf("experiments list applies only to experiment specs"))
	}

	return q.validateSweep()
}

// validateSweep checks axis values and their applicability to the kind.
func (q Spec) validateSweep() error {
	if q.Sweep.empty() {
		return nil
	}
	s := q.Sweep
	wrap := func(axis string, err error) error {
		return fmt.Errorf("query: %s sweep axis %s: %w", q.Kind, axis, err)
	}
	if q.Kind == KindExperiment {
		return fmt.Errorf("query: experiment specs do not sweep (list experiments instead)")
	}
	if len(s.Corners) > 0 && (q.PM != nil || q.PRS != nil) {
		return wrap("corners", fmt.Errorf("cannot combine with explicit pm/prs"))
	}
	for _, c := range s.Corners {
		if _, _, err := ResolveCorner(c); err != nil {
			return wrap("corners", err)
		}
	}
	for _, p := range s.PitchMeansNM {
		if !(p > 0) || math.IsNaN(p) {
			return wrap("pitch_means_nm", fmt.Errorf("pitch mean %g must be positive", p))
		}
	}
	for _, n := range s.Nodes {
		if _, err := resolveNode(n); err != nil {
			return wrap("nodes", err)
		}
	}
	for _, w := range s.WidthsNM {
		if !(w > 0) || math.IsNaN(w) {
			return wrap("widths_nm", fmt.Errorf("width %g must be positive", w))
		}
	}
	if len(s.WidthsNM) > 0 && q.Kind == KindWmin {
		return wrap("widths_nm", fmt.Errorf("wmin solves for the width; sweep yields or relax factors instead"))
	}
	for _, y := range s.Yields {
		if !(y > 0) || y >= 1 || math.IsNaN(y) {
			return wrap("yields", fmt.Errorf("yield %g out of (0,1)", y))
		}
	}
	if len(s.Yields) > 0 && !(q.Kind == KindWmin || q.Kind == KindNoise) {
		return wrap("yields", fmt.Errorf("yield targets apply to wmin and noise specs"))
	}
	for _, r := range s.RelaxFactors {
		if r < 1 || math.IsNaN(r) {
			return wrap("relax_factors", fmt.Errorf("relax factor %g must be ≥ 1", r))
		}
	}
	if len(s.RelaxFactors) > 0 && q.Kind != KindWmin {
		return wrap("relax_factors", fmt.Errorf("relax factors apply to wmin specs"))
	}
	for _, sc := range s.Scenarios {
		if _, err := ResolveScenario(sc); err != nil {
			return wrap("scenarios", err)
		}
	}
	if len(s.Scenarios) > 0 && q.Kind != KindRowYield {
		return wrap("scenarios", fmt.Errorf("scenarios apply to rowyield specs"))
	}
	if n := q.ExpandCount(); n > maxExpansion {
		return fmt.Errorf("query: sweep expands to %d specs, beyond the %d sanity bound", n, maxExpansion)
	}
	return nil
}

// Canonical returns the normalized spec and its stable fingerprint. Two
// specs describing the same computation — e.g. corner "" vs "worst" vs the
// full Fig. 2.1 label, or the reference node named explicitly — normalize
// to identical canonical forms and share one fingerprint, which is the
// identity used for response caching and HTTP ETags. The canonical form
// also zeroes every field the kind does not read, so stray defaults can
// never split the cache.
func (q Spec) Canonical() (Spec, string, error) {
	if err := q.Validate(); err != nil {
		return Spec{}, "", badRequest(err)
	}
	c := q
	if c.Kind != KindExperiment && c.PM == nil {
		_, name, err := ResolveCorner(c.Corner)
		if err != nil {
			return Spec{}, "", err
		}
		c.Corner = name
	}
	node, err := resolveNode(c.Node)
	if err != nil {
		return Spec{}, "", err
	}
	if node.Name == tech.Reference.Name {
		c.Node = "" // the reference node is the no-scaling default
	} else {
		c.Node = node.Name
	}
	// Explicitly spelling out the calibrated pitch law is the default law.
	if c.PitchMeanNM == device.MeanPitchNM {
		c.PitchMeanNM = 0
	}
	if c.PitchSigmaRatio == device.PitchSigmaRatio {
		c.PitchSigmaRatio = 0
	}
	// Spec-level defaults spelled out explicitly are the default: relax
	// factor 1 is the uncorrelated baseline, DefaultRowRounds the Monte
	// Carlo budget a spec gets anyway. (Session-level defaults like M and
	// DesiredYield cannot be normalized here — the spec does not know
	// them.)
	if c.RelaxFactor == 1 {
		c.RelaxFactor = 0
	}
	// "plain" is the default estimator spelled out. The Rounds default
	// depends on the stopping mode: under adaptive stopping (a rel-err
	// target, or a non-plain method which implies the default target)
	// Rounds is the cap and defaults to DefaultAdaptiveRounds; otherwise it
	// is the fixed budget and defaults to DefaultRowRounds. A non-plain
	// method carrying the default target spelled out is the same query as
	// one carrying none.
	if c.MCMethod == "plain" {
		c.MCMethod = ""
	}
	if c.MCMethod != "" && c.RelErrTarget == DefaultRelErrTarget {
		c.RelErrTarget = 0
	}
	if c.RelErrTarget > 0 || c.MCMethod != "" {
		if c.Rounds == DefaultAdaptiveRounds {
			c.Rounds = 0
		}
	} else if c.Rounds == DefaultRowRounds {
		c.Rounds = 0
	}

	// Zero what the kind does not read.
	if c.Kind != KindRowYield {
		c.Scenario, c.Rounds, c.KRows = "", 0, 0
		c.Offsets, c.OffsetProbs = nil, nil
		c.MCMethod, c.RelErrTarget = "", 0
	}
	if c.Kind == KindRowYield && c.Scenario != "" && c.Scenario != "unaligned" {
		// The uncorrelated and aligned scenarios are closed forms: no Monte
		// Carlo runs, so the estimator selection cannot influence the result.
		// (Rounds and Seed keep their historical pass-through for these
		// scenarios — zeroing them now would re-fingerprint old specs.)
		c.MCMethod, c.RelErrTarget = "", 0
	}
	if c.Kind != KindNoise {
		c.PRM, c.RatioThreshold = nil, 0
	}
	if c.Kind != KindWmin {
		c.RelaxFactor = 0
	}
	if c.Kind != KindWmin && c.Kind != KindNoise {
		c.M, c.DesiredYield = 0, 0
	}
	if c.Kind == KindPF || c.Kind == KindWmin || c.Kind == KindNoise {
		c.Seed = 0 // fully analytic kinds ignore the seed
	}
	if c.Kind != KindExperiment {
		c.Experiments = nil
	} else {
		// "all" expands here so the fingerprint names the actual work.
		var names []string
		for _, n := range c.Experiments {
			if n == "all" {
				names = append(names, experiments.Names()...)
			} else {
				names = append(names, n)
			}
		}
		c.Experiments = names
		c.Corner, c.PM, c.PRS = "", nil, nil
		c.Node, c.WidthNM = "", 0
	}
	if c.Kind == KindWmin {
		c.WidthNM = 0
	}
	if c.Sweep.empty() {
		c.Sweep = nil
	} else {
		s := *c.Sweep
		s.Corners = append([]string(nil), s.Corners...)
		for i, name := range s.Corners {
			if _, short, err := ResolveCorner(name); err == nil {
				s.Corners[i] = short
			}
		}
		s.Nodes = append([]string(nil), s.Nodes...)
		for i, name := range s.Nodes {
			if node, err := resolveNode(name); err == nil {
				s.Nodes[i] = node.Name
			}
		}
		c.Sweep = &s
	}
	return c, fingerprint(c), nil
}

// fingerprint hashes the canonical JSON encoding. Struct-order JSON keys
// make the encoding deterministic, so the hash is stable across processes.
func fingerprint(c Spec) string {
	data, err := json.Marshal(c)
	if err != nil {
		// Spec fields are plain data; marshal cannot fail for a validated spec.
		panic(fmt.Sprintf("query: marshaling canonical spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return "qs1-" + hex.EncodeToString(sum[:12])
}

// ExpandCount returns how many concrete specs Expand would produce,
// without materializing them. Products beyond the maxExpansion sanity
// bound saturate at maxExpansion+1 instead of multiplying on: unchecked
// int multiplication could wrap past every size check and let a small
// request demand an astronomic expansion.
func (q Spec) ExpandCount() int {
	if q.Sweep.empty() {
		return 1
	}
	n := 1
	for _, axis := range []int{
		len(q.Sweep.Corners), len(q.Sweep.PitchMeansNM), len(q.Sweep.Nodes),
		len(q.Sweep.WidthsNM), len(q.Sweep.Yields), len(q.Sweep.RelaxFactors),
		len(q.Sweep.Scenarios),
	} {
		if axis > 0 {
			if n > maxExpansion/axis {
				return maxExpansion + 1
			}
			n *= axis
		}
	}
	return n
}

// Expand validates the spec and turns its sweep axes into the cartesian
// product of concrete (sweep-free, canonical) specs, in deterministic
// order: corners vary slowest, then pitch means, nodes, widths, yields,
// relax factors, scenarios. A spec without sweep axes expands to its
// canonical self.
func (q Spec) Expand() ([]Spec, error) {
	base, _, err := q.Canonical()
	if err != nil {
		return nil, err
	}
	if base.Sweep.empty() {
		base.Sweep = nil
		return []Spec{base}, nil
	}
	s := *base.Sweep
	base.Sweep = nil

	out := []Spec{base}
	// Each axis multiplies the current expansion, preserving order: the
	// earlier axes stay the slow-varying ones.
	if len(s.Corners) > 0 {
		out = expandAxis(out, s.Corners, func(q *Spec, v string) { q.Corner = v })
	}
	if len(s.PitchMeansNM) > 0 {
		out = expandAxis(out, s.PitchMeansNM, func(q *Spec, v float64) { q.PitchMeanNM = v })
	}
	if len(s.Nodes) > 0 {
		out = expandAxis(out, s.Nodes, func(q *Spec, v string) { q.Node = v })
	}
	if len(s.WidthsNM) > 0 {
		out = expandAxis(out, s.WidthsNM, func(q *Spec, v float64) { q.WidthNM = v })
	}
	if len(s.Yields) > 0 {
		out = expandAxis(out, s.Yields, func(q *Spec, v float64) { q.DesiredYield = v })
	}
	if len(s.RelaxFactors) > 0 {
		out = expandAxis(out, s.RelaxFactors, func(q *Spec, v float64) { q.RelaxFactor = v })
	}
	if len(s.Scenarios) > 0 {
		out = expandAxis(out, s.Scenarios, func(q *Spec, v string) { q.Scenario = v })
	}
	// Re-canonicalize: axis values were validated, but node names still
	// need the reference-node normalization and kind-irrelevant zeroing.
	for i := range out {
		c, _, err := out[i].Canonical()
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// expandAxis replaces each spec with len(values) copies, one per value.
func expandAxis[T any](specs []Spec, values []T, set func(*Spec, T)) []Spec {
	out := make([]Spec, 0, len(specs)*len(values))
	for _, q := range specs {
		for _, v := range values {
			c := q
			set(&c, v)
			out = append(out, c)
		}
	}
	return out
}

// Parse strictly decodes a spec from JSON, rejecting unknown fields, and
// validates it.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var q Spec
	if err := dec.Decode(&q); err != nil {
		return Spec{}, badRequest(fmt.Errorf("query: decoding spec: %w", err))
	}
	if err := q.Validate(); err != nil {
		return Spec{}, badRequest(err)
	}
	return q, nil
}

// RequestError marks an error as the caller's fault — an invalid or
// out-of-bounds spec rather than an evaluation failure — so transports can
// map it to a 4xx instead of a 5xx.
type RequestError struct{ err error }

// Error returns the wrapped message unchanged: the marker adds routing
// semantics (4xx vs 5xx), not text.
func (e *RequestError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RequestError) Unwrap() error { return e.err }

// badRequest wraps a non-nil error as a RequestError (idempotently).
func badRequest(err error) error {
	if err == nil {
		return nil
	}
	var re *RequestError
	if errors.As(err, &re) {
		return err
	}
	return &RequestError{err}
}

// IsRequestError reports whether err (anywhere in its chain) marks a
// caller mistake rather than an internal evaluation failure.
func IsRequestError(err error) bool {
	var re *RequestError
	return errors.As(err, &re)
}
