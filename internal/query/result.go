package query

// Result is one evaluated spec: the canonical spec that produced it, its
// fingerprint, and exactly one kind-specific payload. The payload structs
// are also the wire forms of the server's /v1 endpoints, which is what
// keeps /v1 responses and /v2 query results byte-identical.
type Result struct {
	Spec        Spec   `json:"spec"`
	Fingerprint string `json:"fingerprint"`

	PF          *PFResult       `json:"pf,omitempty"`
	Wmin        *WminResult     `json:"wmin,omitempty"`
	RowYield    *RowYieldResult `json:"rowyield,omitempty"`
	Noise       *NoiseResult    `json:"noise,omitempty"`
	Experiments []ResultJSON    `json:"experiments,omitempty"`

	// Cost is the evaluation's stage timing, present only when the request
	// opted into cost reporting (?debug=cost, -trace); it never enters
	// cacheable payloads, so fingerprint-identical responses stay
	// byte-identical.
	Cost *CostBreakdown `json:"cost,omitempty"`
}

// PFResult is one device failure probability evaluation (kind pf).
type PFResult struct {
	Corner string `json:"corner"`
	// Node is set when the spec scaled the width to a non-reference node.
	Node string `json:"node,omitempty"`
	// WidthNM is the evaluated physical width (node-scaled when Node is set).
	WidthNM float64 `json:"width_nm"`
	// PFCNT is the per-CNT failure probability pf (Eq. 2.1).
	PFCNT float64 `json:"pf_cnt"`
	// PF is the device failure probability pF(W) (Eq. 2.2).
	PF float64 `json:"pf"`
}

// WminResult is one chip-level sizing solution (kind wmin).
type WminResult struct {
	Corner       string  `json:"corner"`
	Node         string  `json:"node,omitempty"`
	M            float64 `json:"m"`
	DesiredYield float64 `json:"desired_yield"`
	RelaxFactor  float64 `json:"relax_factor"`
	WminNM       float64 `json:"wmin_nm"`
	DevicePF     float64 `json:"device_pf"`
	MminShare    float64 `json:"mmin_share"`
}

// RowYieldResult is one row-correlation scenario evaluation (kind rowyield).
type RowYieldResult struct {
	Corner   string  `json:"corner"`
	Node     string  `json:"node,omitempty"`
	Scenario string  `json:"scenario"`
	WidthNM  float64 `json:"width_nm"`
	// MRmin is Eq. 3.2: devices sharing one CNT span.
	MRmin float64 `json:"mrmin"`
	// DevicePF is the analytic pF(W) feeding the closed forms.
	DevicePF float64 `json:"device_pf"`
	// PRF is the row failure probability (analytic for the uncorrelated and
	// aligned scenarios, Monte Carlo for unaligned).
	PRF float64 `json:"prf"`
	// StdErr and Rounds describe the Monte Carlo estimate (unaligned only).
	StdErr float64 `json:"stderr,omitempty"`
	Rounds int     `json:"rounds,omitempty"`
	// MCMethod names the estimator that actually ran (adaptive runs only;
	// an "auto" spec reports the method auto selected).
	MCMethod string `json:"mc_method,omitempty"`
	// RelErr is the achieved relative standard error StdErr/PRF (adaptive
	// runs with a positive estimate only).
	RelErr float64 `json:"rel_err,omitempty"`
	// TiltTheta is the tilt parameter the importance sampler used (tilted
	// runs only).
	TiltTheta float64 `json:"tilt_theta,omitempty"`
	// SplitLevels is the deepest severity-threshold ladder any splitting
	// replica built (splitting runs only).
	SplitLevels int `json:"split_levels,omitempty"`
	// KRows and ChipYield report Eq. 3.1 when krows was requested.
	KRows     float64 `json:"krows,omitempty"`
	ChipYield float64 `json:"chip_yield,omitempty"`
}

// NoiseResult is one noise-margin evaluation (kind noise): the failure
// mode of metallic CNTs surviving removal, which the paper cites
// ([Zhang 09b]) and excludes from count-limited yield.
type NoiseResult struct {
	Corner  string  `json:"corner"`
	Node    string  `json:"node,omitempty"`
	WidthNM float64 `json:"width_nm"`
	// PRM is the metallic-removal efficiency pRm assumed.
	PRM float64 `json:"prm"`
	// RatioThreshold is the tolerable metallic/semiconducting current ratio.
	RatioThreshold float64 `json:"ratio_threshold"`
	// ViolationProb is the per-device noise-margin violation probability.
	ViolationProb float64 `json:"violation_prob"`
	// Gates and ChipYield report the chip-level noise-limited yield.
	Gates     float64 `json:"gates"`
	ChipYield float64 `json:"chip_yield"`
	// RequiredPRM is the smallest pRm meeting the desired chip yield.
	RequiredPRM float64 `json:"required_prm"`
	// DesiredYield is the chip yield target RequiredPRM was solved for.
	DesiredYield float64 `json:"desired_yield"`
}
