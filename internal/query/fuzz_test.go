package query

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzSpecRoundTrip feeds arbitrary JSON to the strict spec parser. For
// every input the parser accepts, encoding and re-parsing must reproduce
// the same spec and the same canonical fingerprint — the lossless
// round-trip the /v2/query and -spec surfaces depend on. Run the seed
// corpus with `go test`, or explore with `go test -fuzz FuzzSpecRoundTrip`.
func FuzzSpecRoundTrip(f *testing.F) {
	seeds := []string{
		`{"kind": "pf", "width_nm": 155}`,
		`{"kind": "pf", "width_nm": 155, "corner": "best", "node": "22nm"}`,
		`{"kind": "pf", "width_nm": 103, "pm": 0.25, "prs": 0.125, "grid_step_nm": 0.1}`,
		`{"kind": "wmin", "desired_yield": 0.99, "relax_factor": 360}`,
		`{"kind": "rowyield", "width_nm": 155, "scenario": "unaligned", "rounds": 100, "krows": 1e6}`,
		`{"kind": "rowyield", "width_nm": 155, "scenario": "aligned", "offsets": [0, 190], "offset_probs": [0.5, 0.5]}`,
		`{"kind": "noise", "width_nm": 155, "prm": 0.9999, "ratio_threshold": 0.15}`,
		`{"kind": "experiment", "experiments": ["all"], "seed": 7}`,
		`{"kind": "wmin", "sweep": {"corners": ["worst", "mid"], "nodes": ["45nm", "22nm"], "yields": [0.9, 0.99]}}`,
		`{"kind": "pf", "width_nm": 155, "sweep": {"widths_nm": [103, 155, 200]}}`,
		`{"kind": "pf"}`,
		`{"kind": "nope", "width_nm": 1}`,
		`{"kind": "pf", "width_nm": -1}`,
		`not json at all`,
		`{"kind": "pf", "width_nm": 1e999}`,
		`{"kind": "pf", "width_nm": 155, "unknown_field": 1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return // rejected inputs need no round-trip guarantee
		}
		encoded, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v\nspec: %+v", err, spec)
		}
		back, err := Parse(encoded)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nencoded: %s", err, encoded)
		}
		// One round trip must reach a fixed point. (The first trip may
		// normalize JSON spellings Go accepts loosely — case-insensitive
		// keys, empty-vs-absent arrays — but never the semantics, which
		// the fingerprint comparison below pins.)
		encoded2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back2, err := Parse(encoded2)
		if err != nil {
			t.Fatalf("second re-parse failed: %v\nencoded: %s", err, encoded2)
		}
		if !reflect.DeepEqual(back, back2) {
			t.Fatalf("round trip is not a fixed point:\n  1st: %+v\n  2nd: %+v", back, back2)
		}
		_, fp1, err1 := spec.Canonical()
		_, fp2, err2 := back.Canonical()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("canonicalization disagreement: %v vs %v", err1, err2)
		}
		if err1 == nil && fp1 != fp2 {
			t.Fatalf("fingerprint drifted: %s vs %s", fp1, fp2)
		}
		// Expansion must stay in bounds and deterministic for valid specs.
		n := spec.ExpandCount()
		if n < 1 || n > maxExpansion {
			t.Fatalf("ExpandCount = %d out of [1, %d] for a validated spec", n, maxExpansion)
		}
	})
}
