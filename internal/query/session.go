package query

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/montecarlo"
	"github.com/cnfet/yieldlab/internal/noisemargin"
	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/rareevent"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rowyield"
	"github.com/cnfet/yieldlab/internal/sweepstore"
	"github.com/cnfet/yieldlab/internal/tech"
	"github.com/cnfet/yieldlab/internal/widthdist"
	"github.com/cnfet/yieldlab/internal/yield"
)

// Options configures a Session. The zero value is usable: paper-default
// parameters, a fresh unbounded sweep cache, no persistence, NumCPU
// workers, and no sweep-size or Monte Carlo bounds.
type Options struct {
	// Params is the experiment configuration: the source of the device grid,
	// seeds, chip size and yield-target defaults. Zero value = DefaultParams.
	Params experiments.Params
	// Cache, when non-nil, is the renewal sweep cache to share; nil builds a
	// fresh one owned by the session.
	Cache *renewal.SweepCache
	// Store, when non-nil, persists swept renewal tables: the session warms
	// its cache from it at construction and writes back on Checkpoint/Close.
	Store *sweepstore.Store
	// Workers bounds EvaluateAll's concurrent spec evaluations
	// (0 = NumCPU).
	Workers int
	// MaxRowRounds caps the Monte Carlo rounds a rowyield spec may request
	// (0 = unbounded).
	MaxRowRounds int
	// MaxSweep caps how many concrete specs one sweep may expand to
	// (0 = unbounded).
	MaxSweep int
}

// Session evaluates QuerySpecs over shared state: one renewal sweep cache
// (so every corner of one technology shares a swept table), one lazily
// built experiment runner (libraries, placement), an optional persistent
// sweep store, and a bounded worker pool for sweeps. It is the single
// evaluation path behind the yieldlab facade, the cnfetyield -spec mode and
// every yieldserver endpoint, and is safe for concurrent use.
type Session struct {
	params  experiments.Params
	runner  *experiments.Runner
	cache   *renewal.SweepCache
	store   *sweepstore.Store
	workers int
	opts    Options

	persistMu       sync.Mutex
	persistedSweeps uint64
	persistErr      string
}

// NewSession builds a session, warming the sweep cache from opts.Store when
// present.
func NewSession(opts Options) (*Session, error) {
	if (opts.Params == experiments.Params{}) {
		opts.Params = experiments.DefaultParams()
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	cache := opts.Cache
	if cache == nil {
		cache = renewal.NewSweepCache()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	s := &Session{
		params:  opts.Params,
		runner:  experiments.NewWithCache(opts.Params, cache),
		cache:   cache,
		store:   opts.Store,
		workers: workers,
		opts:    opts,
	}
	if opts.Store != nil {
		if _, err := sweepstore.WarmCache(opts.Store, cache); err != nil {
			return nil, fmt.Errorf("query: warming sweep cache: %w", err)
		}
	}
	return s, nil
}

// Params returns the session's experiment configuration.
func (s *Session) Params() experiments.Params { return s.params }

// Cache returns the session's shared renewal sweep cache.
func (s *Session) Cache() *renewal.SweepCache { return s.cache }

// Store returns the session's persistent sweep store (nil when none).
func (s *Session) Store() *sweepstore.Store { return s.store }

// Runner returns the session's shared experiment runner.
func (s *Session) Runner() *experiments.Runner { return s.runner }

// Checkpoint persists the sweep cache to the store when new sweeps have
// been computed since the last persist. It runs synchronously but is cheap
// when nothing changed; sessions without a store no-op.
func (s *Session) Checkpoint() {
	if s.store == nil {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	sweeps := s.cache.Stats().Sweeps
	if sweeps == s.persistedSweeps {
		return
	}
	// A failure (disk full, permissions) must not fail the evaluation that
	// triggered it, but it must not vanish either: the last error stays
	// readable until a later persist succeeds.
	if _, err := sweepstore.PersistCache(s.store, s.cache); err != nil {
		s.persistErr = err.Error()
		return
	}
	s.persistErr = ""
	s.persistedSweeps = sweeps
}

// LastPersistError returns the most recent cache-persistence failure,
// empty once a later persist succeeds.
func (s *Session) LastPersistError() string {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.persistErr
}

// Close persists the sweep cache to the store and releases nothing else:
// sessions hold no goroutines.
func (s *Session) Close() error {
	if s.store == nil {
		return nil
	}
	_, err := sweepstore.PersistCache(s.store, s.cache)
	return err
}

// grid returns the spec's renewal grid, falling back to session params.
func (s *Session) grid(q Spec) (step, maxWidth float64) {
	step, maxWidth = q.GridStepNM, q.MaxWidthNM
	if step == 0 {
		step = s.params.GridStepNM
	}
	if maxWidth == 0 {
		maxWidth = s.params.MaxWidthNM
	}
	return step, maxWidth
}

// pitchLaw returns the spec's inter-CNT pitch law: the frozen calibrated
// law by default, or a truncated normal re-parameterized by the spec's
// pitch overrides — processing density and variability as query
// coordinates.
func (s *Session) pitchLaw(q Spec) (dist.TruncNormal, error) {
	if q.PitchMeanNM == 0 && q.PitchSigmaRatio == 0 {
		return device.CalibratedPitch()
	}
	mean := q.PitchMeanNM
	if mean == 0 {
		mean = device.MeanPitchNM
	}
	ratio := q.PitchSigmaRatio
	if ratio == 0 {
		ratio = device.PitchSigmaRatio
	}
	return dist.TruncNormalWithMean(mean, ratio*mean, device.PitchMinNM)
}

// model builds (or fetches from the shared cache) the failure model for the
// spec's corner, pitch law and grid; hit reports whether the count model
// came from the cache (the sweep spans classify evaluations with it).
func (s *Session) model(params device.FailureParams, q Spec) (m *device.FailureModel, hit bool, err error) {
	pitch, err := s.pitchLaw(q)
	if err != nil {
		return nil, false, err
	}
	step, maxWidth := s.grid(q)
	count, hit, err := s.cache.ModelTracked(pitch, renewal.WithStep(step), renewal.WithMaxWidth(maxWidth))
	if err != nil {
		return nil, false, err
	}
	m, err = device.NewFailureModel(count, params)
	return m, hit, err
}

// scaledWidth returns the physical width of the spec: the 45 nm-reference
// WidthNM scaled to the spec's node, checked against the grid range.
func (s *Session) scaledWidth(q Spec) (float64, error) {
	node, err := resolveNode(q.Node)
	if err != nil {
		return 0, err
	}
	w := node.ScaleWidth(q.WidthNM)
	_, maxWidth := s.grid(q)
	if !(w > 0) || w > maxWidth {
		return 0, badRequest(fmt.Errorf("width %g nm out of (0, %g]", w, maxWidth))
	}
	return w, nil
}

// Evaluate computes one concrete spec. Specs carrying sweep axes are
// rejected — expand them through EvaluateAll. The returned Result embeds
// the canonical spec and its fingerprint, so sweep outputs self-describe.
//
// When the context carries an obs.Tracer, the evaluation runs under a
// "query.evaluate" span with sweep and Monte Carlo child stages; a tracer
// with cost reporting enabled additionally attaches the CostBreakdown to
// the Result. Tracing never changes the computed numbers.
func (s *Session) Evaluate(ctx context.Context, q Spec) (Result, error) {
	canon, fp, err := q.Canonical()
	if err != nil {
		return Result{}, err
	}
	if !canon.Sweep.empty() {
		return Result{}, badRequest(fmt.Errorf("query: spec has sweep axes; use EvaluateAll"))
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Chaos-testing hook: one atomic load in production, an injected
	// error/delay/panic when the query.evaluate site is armed.
	if err := fault.InjectContext(ctx, fault.SiteQueryEvaluate); err != nil {
		return Result{}, err
	}
	ctx, sp := obs.Start(ctx, "query.evaluate")
	sp.SetAttr("kind", canon.Kind)
	sp.SetAttr("fingerprint", fp)
	res := Result{Spec: canon, Fingerprint: fp}
	switch canon.Kind {
	case KindPF:
		res.PF, err = s.evalPF(ctx, canon)
	case KindWmin:
		res.Wmin, err = s.evalWmin(ctx, canon)
	case KindRowYield:
		res.RowYield, err = s.evalRowYield(ctx, canon)
	case KindNoise:
		res.Noise, err = s.evalNoise(ctx, canon)
	case KindExperiment:
		res.Experiments, err = s.evalExperiment(canon)
	default:
		err = fmt.Errorf("query: unknown kind %q", canon.Kind)
	}
	sp.End()
	if err != nil {
		return Result{}, err
	}
	if obs.TracerFrom(ctx).CostEnabled() {
		res.Cost = costFromSpan(sp)
	}
	return res, nil
}

func (s *Session) evalPF(ctx context.Context, q Spec) (*PFResult, error) {
	params, cornerName, err := q.FailureParams()
	if err != nil {
		return nil, err
	}
	w, err := s.scaledWidth(q)
	if err != nil {
		return nil, err
	}
	// The sweep span covers model acquisition and the probability lookup:
	// swept tables grow lazily, so a cached model can still sweep here when
	// asked for a width it has not seen.
	sp := obs.StartLeaf(ctx, "sweep")
	m, hit, err := s.model(params, q)
	if err != nil {
		sp.End()
		return nil, err
	}
	before := m.CountModel().Sweeps()
	pf, err := m.FailureProb(w)
	finishSweepSpan(sp, hit, m.CountModel().Sweeps()-before)
	if err != nil {
		return nil, err
	}
	return &PFResult{Corner: cornerName, Node: q.Node, WidthNM: w, PFCNT: m.PerCNTFailure(), PF: pf}, nil
}

func (s *Session) evalWmin(ctx context.Context, q Spec) (*WminResult, error) {
	params, cornerName, err := q.FailureParams()
	if err != nil {
		return nil, err
	}
	m := q.M
	if m == 0 {
		m = s.params.M
	}
	desired := q.DesiredYield
	if desired == 0 {
		desired = s.params.DesiredYield
	}
	relax := q.RelaxFactor
	if relax == 0 {
		relax = 1
	}
	widths := widthdist.OpenRISC45()
	node, err := resolveNode(q.Node)
	if err != nil {
		return nil, err
	}
	if node.Name != tech.Reference.Name {
		if widths, err = widths.Scale(node); err != nil {
			return nil, err
		}
	}
	// The Wmin search is sweep-dominated: every probed width evaluates the
	// swept count table, so the whole solve sits under the sweep span.
	sp := obs.StartLeaf(ctx, "sweep")
	model, hit, err := s.model(params, q)
	if err != nil {
		sp.End()
		return nil, err
	}
	before := model.CountModel().Sweeps()
	res, err := yield.SimplifiedWmin(&yield.Problem{
		Model:        model,
		Widths:       widths,
		M:            m,
		DesiredYield: desired,
		RelaxFactor:  relax,
	})
	finishSweepSpan(sp, hit, model.CountModel().Sweeps()-before)
	if err != nil {
		return nil, err
	}
	return &WminResult{
		Corner: cornerName, Node: q.Node, M: m, DesiredYield: desired, RelaxFactor: relax,
		WminNM: res.Wmin, DevicePF: res.DevicePF, MminShare: res.MminShare,
	}, nil
}

func (s *Session) evalRowYield(ctx context.Context, q Spec) (*RowYieldResult, error) {
	params, cornerName, err := q.FailureParams()
	if err != nil {
		return nil, err
	}
	scenario, err := ResolveScenario(q.Scenario)
	if err != nil {
		return nil, err
	}
	w, err := s.scaledWidth(q)
	if err != nil {
		return nil, err
	}
	// A positive rel-err target or a non-plain estimator switches the
	// unaligned scenario to adaptive stopping; Rounds then caps the run
	// instead of fixing it. The cap is checked against MaxRowRounds on the
	// resolved value and rejected — never clamped — because a clamped run
	// would make the result depend on session limits the canonical spec
	// (and hence the fingerprint/ETag identity) knows nothing about.
	adaptive := q.RelErrTarget > 0 || (q.MCMethod != "" && q.MCMethod != "plain")
	rounds := q.Rounds
	if rounds == 0 {
		if adaptive {
			rounds = DefaultAdaptiveRounds
		} else {
			rounds = DefaultRowRounds
		}
	}
	if s.opts.MaxRowRounds > 0 && rounds > s.opts.MaxRowRounds {
		return nil, badRequest(fmt.Errorf("rounds %d exceeds limit %d", rounds, s.opts.MaxRowRounds))
	}
	sp := obs.StartLeaf(ctx, "sweep")
	model, hit, err := s.model(params, q)
	if err != nil {
		sp.End()
		return nil, err
	}
	before := model.CountModel().Sweeps()
	devicePF, err := model.FailureProb(w)
	finishSweepSpan(sp, hit, model.CountModel().Sweeps()-before)
	if err != nil {
		return nil, err
	}
	mrmin, err := rowyield.MRmin(s.params.LCNTUM*1000, s.params.PminPerUM)
	if err != nil {
		return nil, err
	}
	out := &RowYieldResult{
		Corner: cornerName, Node: q.Node, Scenario: q.Scenario, WidthNM: w,
		MRmin: mrmin, DevicePF: devicePF,
	}
	switch scenario {
	case rowyield.UncorrelatedGrowth:
		if out.PRF, err = rowyield.IndependentRowFailure(devicePF, mrmin); err != nil {
			return nil, err
		}
	case rowyield.DirectionalAligned:
		// Every CNFET in the row sees the same CNTs: pRF = pF exactly.
		out.PRF = devicePF
	case rowyield.DirectionalUnaligned:
		rm, err := s.rowModel(w, params, q)
		if err != nil {
			return nil, err
		}
		seed := q.Seed
		if seed == 0 {
			seed = s.params.Seed
		}
		if adaptive {
			method := rareevent.Plain
			if q.MCMethod != "" {
				if method, err = rareevent.ParseMethod(q.MCMethod); err != nil {
					return nil, badRequest(err)
				}
			}
			target := q.RelErrTarget
			if target == 0 {
				target = DefaultRelErrTarget
			}
			est, err := rareevent.EstimateRowFailureContext(ctx, rm, scenario, rareevent.Options{
				Method:       method,
				RelErrTarget: target,
				MaxRounds:    rounds,
				Seed:         seed,
				Workers:      s.params.Workers,
			})
			if err != nil {
				return nil, err
			}
			out.PRF, out.StdErr, out.Rounds = est.Mean, est.StdErr, est.Rounds
			out.MCMethod = est.Method.String()
			out.TiltTheta = est.Theta
			out.SplitLevels = est.Levels
			if est.Mean > 0 {
				// JSON has no Inf; a zero estimate simply omits rel_err.
				out.RelErr = est.RelErr()
			}
			break
		}
		msp := obs.StartLeaf(ctx, "mc.run")
		est, err := rm.EstimateRowFailureWith(scenario, rounds,
			montecarlo.Options{Seed: seed, Workers: s.params.Workers, Counters: msp.MC()})
		if err != nil {
			msp.End()
			return nil, err
		}
		msp.SetAttr("method", "plain")
		msp.SetAttr("rounds", est.Rounds)
		if est.Mean > 0 {
			msp.SetAttr("rel_err", est.StdErr/est.Mean)
		}
		msp.End()
		out.PRF, out.StdErr, out.Rounds = est.Mean, est.StdErr, est.Rounds
	}
	if q.KRows > 0 {
		out.KRows = q.KRows
		if out.ChipYield, err = rowyield.CorrelatedYield(q.KRows, out.PRF); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rowModel builds the Monte Carlo row model: from the spec's explicit
// offset distribution when given, otherwise from the shared synthetic
// library via the runner.
func (s *Session) rowModel(width float64, params device.FailureParams, q Spec) (*rowyield.RowModel, error) {
	pitch, err := s.pitchLaw(q)
	if err != nil {
		return nil, err
	}
	if len(q.Offsets) == 0 {
		return s.runner.RowModelAtPitch(width, params, pitch)
	}
	offsets, err := rowyield.NewOffsetDist(q.Offsets, q.OffsetProbs)
	if err != nil {
		return nil, err
	}
	rm := &rowyield.RowModel{
		Pitch:         pitch,
		PerCNTFailure: params.PerCNTFailure(),
		WidthNM:       width,
		LCNTNM:        s.params.LCNTUM * 1000,
		DensityPerUM:  s.params.PminPerUM,
		Offsets:       offsets,
	}
	if err := rm.Prepare(); err != nil {
		return nil, err
	}
	return rm, nil
}

func (s *Session) evalNoise(ctx context.Context, q Spec) (*NoiseResult, error) {
	params, cornerName, err := q.FailureParams()
	if err != nil {
		return nil, err
	}
	w, err := s.scaledWidth(q)
	if err != nil {
		return nil, err
	}
	prm := DefaultPRM
	if q.PRM != nil {
		prm = *q.PRM
	}
	ratio := q.RatioThreshold
	if ratio == 0 {
		ratio = noisemargin.DefaultRatioThreshold
	}
	gates := q.M
	if gates == 0 {
		gates = s.params.M
	}
	desired := q.DesiredYield
	if desired == 0 {
		desired = s.params.DesiredYield
	}
	sp := obs.StartLeaf(ctx, "sweep")
	model, hit, err := s.model(params, q)
	if err != nil {
		sp.End()
		return nil, err
	}
	before := model.CountModel().Sweeps()
	pmf, err := model.CountModel().CountPMF(w)
	finishSweepSpan(sp, hit, model.CountModel().Sweeps()-before)
	if err != nil {
		return nil, err
	}
	np := noisemargin.Params{
		PMetallic:       params.PMetallic,
		PRemoveMetallic: prm,
		PRemoveSemi:     params.PRemoveSemi,
		RatioThreshold:  ratio,
	}
	v, err := noisemargin.ViolationProb(pmf, np)
	if err != nil {
		return nil, err
	}
	y, err := noisemargin.ChipNoiseYield(v, gates)
	if err != nil {
		return nil, err
	}
	req, err := noisemargin.RequiredPRm(pmf, np, gates, desired)
	if err != nil {
		return nil, err
	}
	return &NoiseResult{
		Corner: cornerName, Node: q.Node, WidthNM: w,
		PRM: prm, RatioThreshold: ratio,
		ViolationProb: v, Gates: gates, ChipYield: y,
		RequiredPRM: req, DesiredYield: desired,
	}, nil
}

func (s *Session) evalExperiment(q Spec) ([]ResultJSON, error) {
	runner := s.runner
	if q.Seed != 0 && q.Seed != s.params.Seed {
		// Seed overrides get their own runner but share the sweep cache, so
		// even reseeded runs reuse swept tables.
		p := s.params
		p.Seed = q.Seed
		runner = experiments.NewWithCache(p, s.cache)
	}
	results, err := runner.RunMany(q.Experiments, s.params.Workers)
	if err != nil {
		return nil, err
	}
	return EncodeResults(results), nil
}

// SweepProgress observes EvaluateAllFunc's checkpointing: it is called once
// per completed spec, in expansion order (done counts the completed prefix,
// total the full expansion).
type SweepProgress func(done, total int, r Result)

// EvaluateAll expands the spec's sweep axes and evaluates every concrete
// spec on the session's bounded worker pool. Results come back in
// deterministic expansion order regardless of worker count; the first
// error (in expansion order, matching a serial run) aborts dispatch and is
// returned. Context cancellation stops dispatch between specs.
func (s *Session) EvaluateAll(ctx context.Context, q Spec) ([]Result, error) {
	return s.EvaluateAllFunc(ctx, q, nil)
}

// EvaluateAllFunc is EvaluateAll with a checkpoint callback: progress is
// reported as the completed prefix grows, in order, and — when the session
// has a persistent store — newly swept renewal tables are checkpointed to
// disk as the sweep proceeds, so an interrupted design-space exploration
// restarts warm.
func (s *Session) EvaluateAllFunc(ctx context.Context, q Spec, progress SweepProgress) ([]Result, error) {
	specs, err := q.Expand()
	if err != nil {
		return nil, err
	}
	if s.opts.MaxSweep > 0 && len(specs) > s.opts.MaxSweep {
		return nil, badRequest(fmt.Errorf("query: sweep of %d specs exceeds limit %d", len(specs), s.opts.MaxSweep))
	}
	workers := s.workers
	if workers > len(specs) {
		workers = len(specs)
	}

	type outcome struct {
		idx int
		res Result
		err error
	}
	jobs := make(chan int)
	outcomes := make(chan outcome, len(specs))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				res, err := s.Evaluate(ctx, specs[idx])
				if err != nil {
					failed.Store(true)
				}
				outcomes <- outcome{idx: idx, res: res, err: err}
			}
		}()
	}

	// The collector drains outcomes as they land and checkpoints the
	// growing completed prefix in expansion order: progress callbacks fire
	// while later specs are still computing, and newly swept tables are
	// persisted mid-sweep, not just at the end.
	out := make([]Result, len(specs))
	completed := make([]bool, len(specs))
	firstErrIdx := -1
	var firstErr error
	var collectWg sync.WaitGroup
	collectWg.Add(1)
	go func() {
		defer collectWg.Done()
		next := 0
		for oc := range outcomes {
			if oc.err != nil {
				if firstErrIdx == -1 || oc.idx < firstErrIdx {
					firstErrIdx = oc.idx
					firstErr = oc.err
				}
				continue
			}
			out[oc.idx] = oc.res
			completed[oc.idx] = true
			for next < len(specs) && completed[next] {
				if progress != nil {
					progress(next+1, len(specs), out[next])
				}
				s.Checkpoint()
				next++
			}
		}
	}()

	// Dispatch in expansion order and stop handing out work on the first
	// failure or cancellation; specs already in flight drain normally.
	// Because dispatch is ordered, every spec preceding a failure has been
	// dispatched, so the earliest failing index is always observed.
	for idx := range specs {
		if failed.Load() || ctx.Err() != nil {
			break
		}
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	close(outcomes)
	collectWg.Wait()
	s.Checkpoint()

	if firstErr != nil {
		return nil, fmt.Errorf("query: spec %d/%d: %w", firstErrIdx+1, len(specs), firstErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
