package query

import (
	"strings"
	"time"

	"github.com/cnfet/yieldlab/internal/obs"
)

// CostBreakdown attributes one evaluation's wall time to its stages. It is
// opt-in: Evaluate attaches it to the Result only when the request context
// carries an obs.Tracer with cost reporting enabled (the server's
// ?debug=cost, the CLI's -spec mode with -trace). Timings never enter the
// default response body, so cacheable payloads and their ETags stay
// byte-identical run to run.
type CostBreakdown struct {
	// TotalMS is the evaluation's wall time; SweepMS and MCMS are the
	// portions spent in renewal sweeps (count-model acquisition plus swept
	// table evaluation) and Monte Carlo stages (pilots plus main runs).
	TotalMS float64 `json:"total_ms"`
	SweepMS float64 `json:"sweep_ms"`
	MCMS    float64 `json:"mc_ms"`
	// SweepCacheHit reports that every sweep stage was answered from the
	// shared cache without computing a single new arrival sweep.
	SweepCacheHit bool `json:"sweep_cache_hit"`
	// Sweeps counts arrival sweeps actually computed (cold evaluations).
	Sweeps uint64 `json:"sweeps,omitempty"`
	// MCRounds, MCBatches and ScratchAllocs echo the Monte Carlo engine
	// counters: simulation rounds, batch claims, and scratch-growth events
	// (a non-zero steady-state value flags a pre-sizing regression).
	MCRounds      uint64 `json:"mc_rounds,omitempty"`
	MCBatches     uint64 `json:"mc_batches,omitempty"`
	ScratchAllocs uint64 `json:"scratch_allocs,omitempty"`
	// Stages is the full span tree flattened depth-first, for consumers
	// that want more than the sweep/MC split.
	Stages []obs.StageDur `json:"stages,omitempty"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// attrUint reads a numeric span attribute, tolerating the integer types the
// engine layers use (int for explicit counts, uint64 for folded counters).
func attrUint(sp *obs.Span, key string) uint64 {
	v, ok := sp.AttrValue(key)
	if !ok {
		return 0
	}
	switch n := v.(type) {
	case uint64:
		return n
	case int:
		if n > 0 {
			return uint64(n)
		}
	case int64:
		if n > 0 {
			return uint64(n)
		}
	}
	return 0
}

// costFromSpan folds an ended query.evaluate span into the wire breakdown.
func costFromSpan(sp *obs.Span) *CostBreakdown {
	if sp == nil {
		return nil
	}
	cb := &CostBreakdown{TotalMS: durMS(sp.Duration())}
	sawHit, sawCold := false, false
	for _, c := range sp.Children() {
		name := c.Name()
		switch {
		case strings.HasPrefix(name, "sweep"):
			cb.SweepMS += durMS(c.Duration())
			cb.Sweeps += attrUint(c, "sweeps")
			if name == "sweep.cache_hit" {
				sawHit = true
			} else {
				sawCold = true
			}
		case strings.HasPrefix(name, "mc."):
			cb.MCMS += durMS(c.Duration())
			cb.MCRounds += attrUint(c, "rounds")
			cb.MCBatches += attrUint(c, "mc_batches")
			cb.ScratchAllocs += attrUint(c, "scratch_allocs")
		}
	}
	cb.SweepCacheHit = sawHit && !sawCold
	cb.Stages = obs.Stages(sp)
	return cb
}

// finishSweepSpan classifies and ends a sweep span: cache_hit when the count
// model came from the shared cache and the evaluation computed no new
// arrival sweeps, cold otherwise (fresh model, or a cached model asked for a
// width its table had not swept yet).
func finishSweepSpan(sp *obs.Span, hit bool, sweeps uint64) {
	if sp == nil {
		return
	}
	if hit && sweeps == 0 {
		sp.SetName("sweep.cache_hit")
	} else {
		sp.SetName("sweep.cold")
	}
	sp.SetAttr("model_cached", hit)
	if sweeps > 0 {
		sp.SetAttr("sweeps", sweeps)
	}
	sp.End()
}
