package query

import (
	"context"
	"reflect"
	"testing"

	"github.com/cnfet/yieldlab/internal/obs"
)

// costCtx returns a context whose tracer has cost reporting enabled — the
// query-layer equivalent of the server's ?debug=cost.
func costCtx() (context.Context, *obs.Tracer) {
	tr := obs.New()
	tr.EnableCost()
	return obs.WithTracer(context.Background(), tr), tr
}

// Cost is strictly opt-in: without a tracer, and even with a tracer that has
// not enabled cost, results must not carry a breakdown — default bodies stay
// byte-identical and ETag-sound.
func TestCostOptIn(t *testing.T) {
	s := newTestSession(t, Options{})
	res, err := s.Evaluate(context.Background(), Spec{Kind: KindPF, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != nil {
		t.Fatalf("untraced result has Cost %+v", res.Cost)
	}
	ctx := obs.WithTracer(context.Background(), obs.New())
	res, err = s.Evaluate(ctx, Spec{Kind: KindPF, WidthNM: 156})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != nil {
		t.Fatalf("traced-without-cost result has Cost %+v", res.Cost)
	}
}

func TestCostColdThenCacheHit(t *testing.T) {
	s := newTestSession(t, Options{})
	ctx, _ := costCtx()
	cold, err := s.Evaluate(ctx, Spec{Kind: KindPF, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cost == nil {
		t.Fatal("cost-enabled evaluation returned no breakdown")
	}
	if cold.Cost.SweepCacheHit {
		t.Fatalf("cold evaluation reported a cache hit: %+v", cold.Cost)
	}
	if cold.Cost.Sweeps == 0 {
		t.Fatalf("cold evaluation computed no sweeps: %+v", cold.Cost)
	}
	if cold.Cost.TotalMS <= 0 || cold.Cost.SweepMS <= 0 {
		t.Fatalf("cold timings not positive: %+v", cold.Cost)
	}
	if len(cold.Cost.Stages) == 0 || cold.Cost.Stages[0].Name != "query.evaluate" {
		t.Fatalf("stages = %+v", cold.Cost.Stages)
	}

	ctx2, _ := costCtx()
	warm, err := s.Evaluate(ctx2, Spec{Kind: KindPF, WidthNM: 155})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cost == nil || !warm.Cost.SweepCacheHit {
		t.Fatalf("repeat evaluation not a cache hit: %+v", warm.Cost)
	}
	if warm.Cost.Sweeps != 0 {
		t.Fatalf("repeat evaluation swept again: %+v", warm.Cost)
	}
	if warm.PF.PF != cold.PF.PF {
		t.Fatalf("cache hit changed the answer: %g != %g", warm.PF.PF, cold.PF.PF)
	}
}

// The ISSUE acceptance criterion at the query layer: a cold Monte Carlo
// rowyield evaluation must attribute ≥ 90% of its wall time to the sweep and
// MC stages — the instrumentation itself cannot be a visible cost.
func TestCostRowYieldAttribution(t *testing.T) {
	s := newTestSession(t, Options{})
	ctx, _ := costCtx()
	res, err := s.Evaluate(ctx, Spec{Kind: KindRowYield, Scenario: "unaligned",
		WidthNM: 155, Rounds: 20000})
	if err != nil {
		t.Fatal(err)
	}
	cb := res.Cost
	if cb == nil {
		t.Fatal("no cost breakdown")
	}
	if cb.MCRounds == 0 || cb.MCMS <= 0 {
		t.Fatalf("MC stage not attributed: %+v", cb)
	}
	if cb.MCRounds < 20000 {
		t.Fatalf("MCRounds = %d, want ≥ 20000", cb.MCRounds)
	}
	if attributed := cb.SweepMS + cb.MCMS; attributed < 0.9*cb.TotalMS {
		t.Errorf("sweep+MC = %.3fms of %.3fms total (%.0f%%), want ≥ 90%%",
			attributed, cb.TotalMS, 100*attributed/cb.TotalMS)
	}
	names := make(map[string]bool)
	for _, st := range cb.Stages {
		names[st.Name] = true
	}
	if !names["mc.run"] || !(names["sweep.cold"] || names["sweep.cache_hit"]) {
		t.Fatalf("stage names = %v", names)
	}
}

// The zero-perturbation guarantee (DESIGN.md §9): enabling tracing must not
// change a single computed number. Fresh sessions, identical specs, one
// traced and one not — every payload must be deeply equal.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	specs := []Spec{
		{Kind: KindPF, WidthNM: 155},
		{Kind: KindRowYield, Scenario: "unaligned", WidthNM: 155, Rounds: 500},
		{Kind: KindRowYield, Scenario: "unaligned", WidthNM: 155,
			MCMethod: "auto", RelErrTarget: 0.5},
		{Kind: KindWmin},
	}
	for _, spec := range specs {
		plain := newTestSession(t, Options{})
		base, err := plain.Evaluate(context.Background(), spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		traced := newTestSession(t, Options{})
		ctx, _ := costCtx()
		got, err := traced.Evaluate(ctx, spec)
		if err != nil {
			t.Fatalf("%+v traced: %v", spec, err)
		}
		if got.Cost == nil {
			t.Fatalf("%+v traced: no cost", spec)
		}
		got.Cost = nil // timings legitimately differ; everything else must not
		if !reflect.DeepEqual(base, got) {
			t.Errorf("tracing perturbed %+v:\nplain:  %+v\ntraced: %+v", spec, base, got)
		}
	}
}
