package query

import (
	"strings"
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/apilock"
)

// TestFingerprintCorpus replays the apilock-pinned QuerySpec corpus through
// the live parser and canonicalizer. A mismatch here means the canonical
// encoding changed, which silently re-keys every cached result and ETag —
// exactly the drift class `yieldvet apilock` gates in CI; this test makes
// `go test ./...` catch it too, with no yieldvet invocation needed.
//
// The dependency points this way on purpose: apilock (an analyzer) must not
// import the package it pins, so the corpus lives there as data and the
// recomputation happens here, where Spec is in scope.
func TestFingerprintCorpus(t *testing.T) {
	entries, err := apilock.Corpus()
	if err != nil {
		t.Fatalf("loading pinned corpus: %v", err)
	}
	if len(entries) < 8 {
		t.Fatalf("corpus has %d entries; the pinned set should cover every Kind (want >= 8)", len(entries))
	}
	seen := make(map[string]bool)
	for _, entry := range entries {
		if entry.Name == "" {
			t.Fatal("corpus entry with empty name")
		}
		if seen[entry.Name] {
			t.Fatalf("duplicate corpus entry %q", entry.Name)
		}
		seen[entry.Name] = true
		if !strings.HasPrefix(entry.Fingerprint, "qs1-") {
			t.Fatalf("corpus entry %q: fingerprint %q lacks the qs1- version prefix", entry.Name, entry.Fingerprint)
		}
		spec, err := Parse(entry.Spec)
		if err != nil {
			t.Fatalf("corpus entry %q: parsing spec: %v", entry.Name, err)
		}
		_, fp, err := spec.Canonical()
		if err != nil {
			t.Fatalf("corpus entry %q: canonicalizing: %v", entry.Name, err)
		}
		if fp != entry.Fingerprint {
			t.Errorf("corpus entry %q: fingerprint = %s, pinned %s — canonical encoding changed; if intended, bump the qs prefix and run 'yieldvet apilock -update'",
				entry.Name, fp, entry.Fingerprint)
		}
	}
}
