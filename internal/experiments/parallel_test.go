package experiments

import (
	"strings"
	"testing"
)

func parallelTestParams() Params {
	p := DefaultParams()
	p.MCRounds = 4_000
	p.CorrelationRounds = 60
	p.NetlistInstances = 2_000
	return p
}

// The acceptance bar for the concurrent runner: `all` with Workers > 1 must
// produce byte-identical output to the serial run. Two fresh runners keep
// the comparison honest (no shared caches between the two executions).
func TestRunManyParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	names := Names()

	serialParams := parallelTestParams()
	serialParams.Workers = 1
	serial := New(serialParams)
	serialRes, err := serial.RunMany(names, 1)
	if err != nil {
		t.Fatal(err)
	}

	parallelParams := parallelTestParams()
	parallelParams.Workers = 4
	parallel := New(parallelParams)
	parallelRes, err := parallel.All()
	if err != nil {
		t.Fatal(err)
	}

	if len(serialRes) != len(parallelRes) {
		t.Fatalf("result count %d vs %d", len(parallelRes), len(serialRes))
	}
	for i, want := range serialRes {
		got := parallelRes[i]
		if got == nil {
			t.Fatalf("parallel result %d missing", i)
		}
		if got.Name != want.Name {
			t.Fatalf("result %d order: %q vs %q", i, got.Name, want.Name)
		}
		if got.Text() != want.Text() {
			t.Errorf("%s: parallel text output differs from serial", want.Name)
		}
		for name, csv := range want.CSVs {
			if got.CSVs[name] != csv {
				t.Errorf("%s: CSV %s differs", want.Name, name)
			}
		}
		for name, svg := range want.SVGs {
			if got.SVGs[name] != svg {
				t.Errorf("%s: SVG %s differs", want.Name, name)
			}
		}
	}
}

// First-error propagation: the earliest failing experiment's error comes
// back, exactly as a serial run would report it.
func TestRunManyFirstErrorPropagation(t *testing.T) {
	r := New(parallelTestParams())
	_, err := r.RunMany([]string{"fig2.2a", "no-such-thing", "also-wrong"}, 4)
	if err == nil {
		t.Fatal("want error for unknown experiment")
	}
	if !strings.Contains(err.Error(), `"no-such-thing"`) {
		t.Fatalf("error should name the earliest failing experiment, got: %v", err)
	}
}

func TestRunManyEmpty(t *testing.T) {
	r := New(parallelTestParams())
	res, err := r.RunMany(nil, 4)
	if err != nil || res != nil {
		t.Fatalf("empty RunMany = (%v, %v), want (nil, nil)", res, err)
	}
}

func TestSuggest(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"fig21", "fig2.1", true},
		{"fig2.2b ", "fig2.2b", true},
		{"tabel1", "table1", true},
		{"table", "table1", true},
		{"ext-nois", "ext-noise", true},
		{"fig3.3", "fig3.3", true},
		{"zzzzzzzz", "", false},
	}
	for _, tc := range cases {
		got, ok := Suggest(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Suggest(%q) = (%q, %t), want (%q, %t)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}
