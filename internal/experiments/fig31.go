package experiments

import (
	"fmt"
	"math"

	"github.com/cnfet/yieldlab/internal/cntgrowth"
	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/plot"
	"github.com/cnfet/yieldlab/internal/report"
	"github.com/cnfet/yieldlab/internal/rng"
)

// Fig31 regenerates Fig. 3.1: two CNFETs on a 1 µm-class patch under
// (a) uncorrelated growth, (b) directional growth with misaligned actives,
// and (c) directional growth with aligned actives. The paper shows the
// layouts; the quantitative content is the CNT count/type correlation the
// three combinations produce, which this experiment measures by Monte
// Carlo, alongside SVG renderings of one realization per panel.
func (r *Runner) Fig31() (*Result, error) {
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	pitch, err := device.CalibratedPitch()
	if err != nil {
		return nil, err
	}
	const w = 60.0 // small-width CNFET: the vulnerable population
	fet1 := cntgrowth.Rect{X0: 100, Y0: 300, X1: 160, Y1: 300 + w}
	fet2 := cntgrowth.Rect{X0: 700, Y0: 300, X1: 760, Y1: 300 + w}
	fet2Mis := cntgrowth.Rect{X0: 700, Y0: 300 + 0.7*w, X1: 760, Y1: 300 + 1.7*w}

	dir := cntgrowth.Directional{Pitch: pitch, PMetallic: 0.33, LengthNM: r.params.LCNTUM * 1000}
	// Dispersed sticks shorter than the FET separation: no tube can span
	// both devices, the defining property of uncorrelated growth.
	unc := cntgrowth.Uncorrelated{
		DensityPerUM2: 2200, PMetallic: 0.33, LengthNM: 450, AngleSpreadRad: 0.15,
	}
	removal := cntgrowth.Removal{PRemoveMetallic: 1, PRemoveSemi: 0.30}

	type panel struct {
		name    string
		grower  cntgrowth.Grower
		fetB    cntgrowth.Rect
		paperTo string
	}
	panels := []panel{
		{"(a) uncorrelated growth, non-aligned", unc, fet2Mis, "≈0"},
		{"(b) directional growth, non-aligned", dir, fet2Mis, "partial"},
		{"(c) directional growth, aligned-active", dir, fet2, "≈1"},
	}

	table := &report.Table{
		Title:   "Fig. 3.1 — CNT statistics shared by two CNFETs (Monte Carlo)",
		Columns: []string{"panel", "count corr", "usable corr", "shared CNT frac", "mean count"},
	}
	cmp := &report.ComparisonSet{Name: "fig3.1"}
	svgs := make(map[string]string, len(panels))
	stats := make([]cntgrowth.PairStats, len(panels))
	for i, p := range panels {
		// Derived stream per panel keeps panels independent and the whole
		// experiment reproducible.
		rr := rng.Derive(r.params.Seed, uint64(0xF31+i))
		s, err := cntgrowth.MeasurePairCorrelation(rr, p.grower, removal, fet1, p.fetB, r.params.CorrelationRounds)
		if err != nil {
			return nil, err
		}
		stats[i] = s
		if err := table.AddRow(p.name,
			fmt.Sprintf("%.3f", s.CountCorr),
			fmt.Sprintf("%.3f", s.UsableCorr),
			fmt.Sprintf("%.3f", s.SharedFrac),
			fmt.Sprintf("%.1f", s.MeanCount)); err != nil {
			return nil, err
		}
		svg, err := renderGrowthPanel(p.grower, removal, fet1, p.fetB, r.params.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		svgs[fmt.Sprintf("fig3_1_panel_%c.svg", 'a'+i)] = svg
	}
	table.AddNote("the paper's qualitative claim: correlation 0 → partial → ≈1 across panels")

	cmp.Add(report.Comparison{Artifact: "Fig. 3.1", Quantity: "count corr, uncorrelated growth",
		Paper: math.NaN(), Measured: stats[0].CountCorr})
	cmp.Add(report.Comparison{Artifact: "Fig. 3.1", Quantity: "count corr, directional non-aligned",
		Paper: math.NaN(), Measured: stats[1].CountCorr})
	cmp.Add(report.Comparison{Artifact: "Fig. 3.1", Quantity: "count corr, directional aligned",
		Paper: 1.0, Measured: stats[2].CountCorr, TolFactor: 1.1})
	cmp.Add(report.Comparison{Artifact: "Fig. 3.1", Quantity: "shared CNT fraction, aligned",
		Paper: 1.0, Measured: stats[2].SharedFrac, TolFactor: 1.05})

	return &Result{Name: "fig3.1", Table: table, Comparisons: cmp, SVGs: svgs}, nil
}

// renderGrowthPanel draws one growth realization with the two device
// active regions, Fig. 3.1 style: 1 µm² patch, CNTs as horizontal lines
// (metallic dashed-red, semiconducting black), devices as outlined boxes.
func renderGrowthPanel(g cntgrowth.Grower, rm cntgrowth.Removal, fetA, fetB cntgrowth.Rect, seed uint64) (string, error) {
	region := cntgrowth.Rect{X0: 0, Y0: 250, X1: 900, Y1: 480}
	rr := rng.Derive(seed, 0x5F6)
	arr, err := g.Grow(rr, region)
	if err != nil {
		return "", err
	}
	if err := rm.Apply(rr, arr); err != nil {
		return "", err
	}
	const scale = 1.0
	svg := plot.NewSVG((region.X1-region.X0)*scale, (region.Y1-region.Y0)*scale)
	toX := func(x float64) float64 { return (x - region.X0) * scale }
	toY := func(y float64) float64 { return (region.Y1 - y) * scale }
	drawn := 0
	for _, c := range arr.CNTs {
		if c.Removed {
			continue
		}
		color := "black"
		width := 0.6
		if c.Type == cntgrowth.Metallic {
			color = "red"
			width = 0.8
		}
		svg.Line(toX(clamp(c.X0, region.X0, region.X1)), toY(clamp(c.Y0, region.Y0, region.Y1)),
			toX(clamp(c.X1, region.X0, region.X1)), toY(clamp(c.Y1, region.Y0, region.Y1)), color, width)
		drawn++
		if drawn > 4000 {
			break // keep documents small for dense growth
		}
	}
	for i, f := range []cntgrowth.Rect{fetA, fetB} {
		svg.DashedRect(toX(f.X0), toY(f.Y1), f.X1-f.X0, f.Y1-f.Y0, "goldenrod", 2)
		svg.Text(toX(f.X0), toY(f.Y1)-4, 12, fmt.Sprintf("FET %d", i+1))
	}
	return svg.String(), nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
