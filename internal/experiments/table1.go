package experiments

import (
	"fmt"
	"math"

	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/report"
	"github.com/cnfet/yieldlab/internal/rowyield"
)

// table1ImpliedDevicePF is the device-level failure probability implied by
// Table 1's published numbers: the uncorrelated column is
// pRF = 1-(1-pF)^360 = 5.3e-6, and the aligned column equals pF directly
// (1.5e-8); both give pF ≈ 1.47e-8.
const table1ImpliedDevicePF = 5.3e-6 / 360

// Table1 regenerates Table 1: the row failure probability pRF under
// (1) uncorrelated growth, (2) directional growth with the stock cell
// library, and (3) directional growth with aligned-active cells.
//
// The row is parameterized per the paper: LCNT = 200 µm, Pmin-CNFET =
// 1.8 FETs/µm (so MRmin ≈ 360 devices share one CNT span), worst process
// corner (pf = 0.531), and a device width chosen so the analytic device
// failure probability matches the value implied by the published table.
// The non-aligned column uses the lateral-offset distribution measured on
// the synthetic 45 nm library weighted by the OpenRISC cell mix.
func (r *Runner) Table1() (*Result, error) {
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	model, err := r.failureModel()
	if err != nil {
		return nil, err
	}
	width, err := model.WidthForFailureProb(table1ImpliedDevicePF)
	if err != nil {
		return nil, fmt.Errorf("experiments: solving Table 1 device width: %w", err)
	}
	devicePF, err := model.FailureProb(width)
	if err != nil {
		return nil, err
	}
	lib45, _, err := r.libraries()
	if err != nil {
		return nil, err
	}
	if r.netlist45 == nil {
		if _, _, err := r.placedDesign(width); err != nil {
			return nil, err
		}
	}
	offsets, err := celllib.CriticalNFETOffsets(lib45, r.netlist45.Usage(), width)
	if err != nil {
		return nil, err
	}
	pitch, err := device.CalibratedPitch()
	if err != nil {
		return nil, err
	}
	rm := &rowyield.RowModel{
		Pitch:         pitch,
		PerCNTFailure: device.WorstCorner().PerCNTFailure(),
		WidthNM:       width,
		LCNTNM:        r.params.LCNTUM * 1000,
		DensityPerUM:  r.params.PminPerUM,
		Offsets:       offsets,
	}
	if err := rm.Prepare(); err != nil {
		return nil, err
	}
	mrmin, err := rowyield.MRmin(rm.LCNTNM, rm.DensityPerUM)
	if err != nil {
		return nil, err
	}

	paperPRF := map[rowyield.Scenario]float64{
		rowyield.UncorrelatedGrowth:   5.3e-6,
		rowyield.DirectionalUnaligned: 2.0e-7,
		rowyield.DirectionalAligned:   1.5e-8,
	}
	table := &report.Table{
		Title: fmt.Sprintf("Table 1 — row failure probability pRF (W=%.1f nm, MRmin=%.0f, %d MC rounds)",
			width, mrmin, r.params.MCRounds),
		Columns: []string{"scenario", "pRF (MC)", "± stderr", "pRF (analytic)", "paper"},
	}
	rows, err := rm.Table1Parallel(r.params.Seed, devicePF, r.params.MCRounds, r.params.Workers)
	if err != nil {
		return nil, err
	}
	cmp := &report.ComparisonSet{Name: "table1"}
	est := make(map[rowyield.Scenario]rowyield.Estimate, 3)
	for _, row := range rows {
		analytic := "—"
		if !math.IsNaN(row.Analytic) {
			analytic = fmt.Sprintf("%.2e", row.Analytic)
		}
		if err := table.AddRow(
			row.Scenario.String(),
			fmt.Sprintf("%.2e", row.PRF.Mean),
			fmt.Sprintf("%.1e", row.PRF.StdErr),
			analytic,
			fmt.Sprintf("%.1e", paperPRF[row.Scenario]),
		); err != nil {
			return nil, err
		}
		est[row.Scenario] = row.PRF
		best := row.PRF.Mean
		if !math.IsNaN(row.Analytic) {
			best = row.Analytic
		}
		cmp.Add(report.Comparison{
			Artifact:  "Table 1",
			Quantity:  "pRF, " + row.Scenario.String(),
			Paper:     paperPRF[row.Scenario],
			Measured:  best,
			TolFactor: 2.5,
		})
	}
	unc := est[rowyield.UncorrelatedGrowth].Mean
	unal := est[rowyield.DirectionalUnaligned].Mean
	al := est[rowyield.DirectionalAligned].Mean
	table.AddNote("benefit of directional growth alone: %.1f× (paper: 26.5×)", unc/unal)
	table.AddNote("additional benefit of aligned-active: %.1f× (paper: 13×)", unal/al)
	table.AddNote("total: %.0f× (paper: ≈350×); closed-form total is MRmin = %.0f×", unc/al, mrmin)
	table.AddNote("library offsets: %d distinct lateral positions over %.0f nm", offsets.DistinctCount(), offsets.Span())

	cmp.Add(report.Comparison{Artifact: "Table 1", Quantity: "directional-growth benefit",
		Paper: 26.5, Measured: unc / unal, TolFactor: 1.8})
	cmp.Add(report.Comparison{Artifact: "Table 1", Quantity: "aligned-active extra benefit",
		Paper: 13, Measured: unal / al, TolFactor: 1.8})
	cmp.Add(report.Comparison{Artifact: "Table 1", Quantity: "total benefit",
		Paper: 353, Measured: unc / al, TolFactor: 1.6})

	return &Result{Name: "table1", Table: table, Comparisons: cmp}, nil
}
