package experiments

import (
	"fmt"

	"github.com/cnfet/yieldlab/internal/alignactive"
	"github.com/cnfet/yieldlab/internal/report"
)

// Table2 regenerates Table 2: the area cost of enforcing the aligned-active
// restriction on the 45 nm (134-cell) and 65 nm (775-cell) libraries, with
// one or two aligned bands, plus the Wmin each configuration achieves.
//
// The 65 nm design's critical-device density scales the paper's measured
// 1.8 FETs/µm by 45/65 (cells grow linearly with the node, so the same
// logic holds fewer devices per µm of row); the two-band variant halves the
// correlation benefit (two independent device groups per row), exactly the
// trade the paper describes in Section 3.3.
func (r *Runner) Table2() (*Result, error) {
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	lib45, lib65, err := r.libraries()
	if err != nil {
		return nil, err
	}
	mrmin45, err := r.mrminPaper()
	if err != nil {
		return nil, err
	}
	density65 := r.params.PminPerUM * 45.0 / 65.0
	mrmin65 := r.params.LCNTUM * density65

	type config struct {
		name      string
		lib       string
		bands     int
		relax     float64
		paperWmin float64
	}
	configs := []config{
		{"65 nm, one aligned region", "65", 1, mrmin65, 107},
		{"65 nm, two aligned regions", "65", 2, mrmin65 / 2, 112},
		{"45 nm Nangate-like, one region", "45", 1, mrmin45, 103},
	}

	table := &report.Table{
		Title:   "Table 2 — area penalty of the aligned-active restriction",
		Columns: []string{"configuration", "# cells", "cells w/ penalty", "min penalty", "max penalty", "Wmin (nm)"},
	}
	cmp := &report.ComparisonSet{Name: "table2"}
	for _, cfg := range configs {
		res, err := r.wminAt(cfg.relax)
		if err != nil {
			return nil, err
		}
		lib := lib45
		if cfg.lib == "65" {
			lib = lib65
		}
		rep, err := alignactive.AlignLibrary(lib, alignactive.Options{WminNM: res.Wmin, Bands: cfg.bands})
		if err != nil {
			return nil, err
		}
		if err := table.AddRow(
			cfg.name,
			fmt.Sprintf("%d", len(rep.Changes)),
			fmt.Sprintf("%d (%.0f%%)", rep.CellsWithPenalty, rep.PenaltyShare()*100),
			fmt.Sprintf("%.0f%%", rep.MinPenalty*100),
			fmt.Sprintf("%.0f%%", rep.MaxPenalty*100),
			fmt.Sprintf("%.1f", res.Wmin),
		); err != nil {
			return nil, err
		}
		cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "Wmin, " + cfg.name,
			Paper: cfg.paperWmin, Measured: res.Wmin, Unit: "nm", TolFactor: 1.15})
		switch {
		case cfg.lib == "45" && cfg.bands == 1:
			cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "45 nm cells with penalty",
				Paper: 4, Measured: float64(rep.CellsWithPenalty), TolFactor: 1.01})
			cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "45 nm min penalty",
				Paper: 0.04, Measured: rep.MinPenalty, TolFactor: 1.3})
			cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "45 nm max penalty",
				Paper: 0.14, Measured: rep.MaxPenalty, TolFactor: 1.3})
		case cfg.lib == "65" && cfg.bands == 1:
			cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "65 nm penalized share",
				Paper: 0.20, Measured: rep.PenaltyShare(), TolFactor: 1.4})
			cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "65 nm min penalty",
				Paper: 0.10, Measured: rep.MinPenalty, TolFactor: 1.4})
			cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "65 nm max penalty",
				Paper: 0.70, Measured: rep.MaxPenalty, TolFactor: 2})
		case cfg.lib == "65" && cfg.bands == 2:
			cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "65 nm two-band cells with penalty",
				Paper: 0, Measured: float64(rep.CellsWithPenalty)})
		}
	}
	// The paper's closing note: two bands cost < 5 % extra Wmin.
	one, err := r.wminAt(mrmin65)
	if err != nil {
		return nil, err
	}
	two, err := r.wminAt(mrmin65 / 2)
	if err != nil {
		return nil, err
	}
	table.AddNote("two-band Wmin increase: %.1f%% (paper: <5%%)", (two.Wmin/one.Wmin-1)*100)
	table.AddNote("MRmin: 45 nm %.0f, 65 nm %.0f (density scaled by 45/65)", mrmin45, mrmin65)
	cmp.Add(report.Comparison{Artifact: "Table 2", Quantity: "two-band Wmin increase",
		Paper: 0.047, Measured: two.Wmin/one.Wmin - 1, TolFactor: 2})

	return &Result{Name: "table2", Table: table, Comparisons: cmp}, nil
}
