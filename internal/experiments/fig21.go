package experiments

import (
	"fmt"
	"strings"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/numeric"
	"github.com/cnfet/yieldlab/internal/plot"
	"github.com/cnfet/yieldlab/internal/report"
	"github.com/cnfet/yieldlab/internal/yield"
)

// Fig21 regenerates Fig. 2.1: CNFET failure probability vs width for the
// three processing corners, with the two failure-budget anchor lines
// (3e-9 uncorrelated, ≈1.1e-6 after the 350× correlation relaxation) and
// the Wmin values they imply.
func (r *Runner) Fig21() (*Result, error) {
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	shared, err := r.failureModel()
	if err != nil {
		return nil, err
	}
	ws := numeric.Linspace(20, 320, 76)
	var series []plot.Series
	for _, corner := range device.PaperCorners() {
		var m *device.FailureModel
		if corner.Params == device.WorstCorner() {
			m = shared
		} else {
			m, err = device.NewFailureModel(shared.CountModel(), corner.Params)
			if err != nil {
				return nil, err
			}
		}
		ps, err := m.FailureProbs(ws)
		if err != nil {
			return nil, err
		}
		series = append(series, plot.Series{Name: corner.Name, Xs: ws, Ys: ps})
	}

	// Anchors: the uncorrelated requirement and its 350×-relaxed version.
	mrmin, err := r.mrminPaper()
	if err != nil {
		return nil, err
	}
	base, err := r.wminAt(1)
	if err != nil {
		return nil, err
	}
	opt, err := r.wminAt(mrmin)
	if err != nil {
		return nil, err
	}
	p155, err := shared.FailureProb(155)
	if err != nil {
		return nil, err
	}
	req, err := yield.RequiredDevicePF(0.33*r.params.M, r.params.DesiredYield)
	if err != nil {
		return nil, err
	}

	table := &report.Table{
		Title:   "Fig. 2.1 — CNFET failure probability vs width (pRm = 1)",
		Columns: append([]string{"W (nm)"}, cornerNames()...),
	}
	for i, w := range ws {
		if i%5 != 0 {
			continue
		}
		row := []string{fmt.Sprintf("%.0f", w)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.3e", s.Ys[i]))
		}
		if err := table.AddRow(row...); err != nil {
			return nil, err
		}
	}
	table.AddNote("failure budget (1-Yd)/Mmin = %.2e at Mmin = %.2g", req, 0.33*r.params.M)
	table.AddNote("Wmin (uncorrelated) = %.1f nm; Wmin (correlated, %.0f×) = %.1f nm",
		base.Wmin, mrmin, opt.Wmin)

	chart := &plot.LineChart{
		Title:  "Fig. 2.1  pF vs W (log scale)",
		XLabel: "W (nm)",
		YLabel: "pF",
		LogY:   true,
		Series: series,
	}
	rendered, err := chart.Render()
	if err != nil {
		return nil, err
	}
	var csv strings.Builder
	if err := plot.SeriesCSV(&csv, series); err != nil {
		return nil, err
	}

	cmp := &report.ComparisonSet{Name: "fig2.1"}
	cmp.Add(report.Comparison{Artifact: "Fig. 2.1", Quantity: "pF at 155 nm (worst corner)",
		Paper: 3.0e-9, Measured: p155, TolFactor: 2})
	cmp.Add(report.Comparison{Artifact: "Fig. 2.1", Quantity: "Wmin, uncorrelated",
		Paper: 155, Measured: base.Wmin, Unit: "nm", TolFactor: 1.1})
	cmp.Add(report.Comparison{Artifact: "Fig. 2.1", Quantity: "Wmin after 350× relaxation",
		Paper: 103, Measured: opt.Wmin, Unit: "nm", TolFactor: 1.15})
	cmp.Add(report.Comparison{Artifact: "Fig. 2.1", Quantity: "Wmin reduction",
		Paper: 52, Measured: base.Wmin - opt.Wmin, Unit: "nm", TolFactor: 1.3})

	return &Result{
		Name:        "fig2.1",
		Table:       table,
		Comparisons: cmp,
		Charts:      []string{rendered},
		CSVs:        map[string]string{"fig2_1_pf_vs_width.csv": csv.String()},
	}, nil
}

func cornerNames() []string {
	var out []string
	for _, c := range device.PaperCorners() {
		out = append(out, "pF ("+c.Name+")")
	}
	return out
}
