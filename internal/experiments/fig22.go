package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/cnfet/yieldlab/internal/plot"
	"github.com/cnfet/yieldlab/internal/power"
	"github.com/cnfet/yieldlab/internal/report"
	"github.com/cnfet/yieldlab/internal/tech"
	"github.com/cnfet/yieldlab/internal/widthdist"
)

// Fig22a regenerates Fig. 2.2a: the transistor-width histogram of the
// OpenRISC core on the 45 nm library (40 nm bins). Both the frozen
// distribution (used by the yield math) and the synthetic-netlist empirical
// share are reported.
func (r *Runner) Fig22a() (*Result, error) {
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	d := widthdist.OpenRISC45()
	h, err := d.Histogram(40)
	if err != nil {
		return nil, err
	}
	table := &report.Table{
		Title:   "Fig. 2.2a — OpenRISC transistor width distribution (40 nm bins)",
		Columns: []string{"bin (nm)", "share (%)"},
	}
	shares := h.Shares()
	centers := h.BinCenters()
	xs := make([]float64, len(shares))
	ys := make([]float64, len(shares))
	for i := range shares {
		if err := table.AddRow(
			fmt.Sprintf("[%.0f, %.0f)", h.Edges[i], h.Edges[i+1]),
			fmt.Sprintf("%.1f", shares[i]*100),
		); err != nil {
			return nil, err
		}
		xs[i], ys[i] = centers[i], shares[i]*100
	}
	twoLeft := d.ShareBelow(120)
	below155 := d.ShareBelow(155)
	table.AddNote("two left-most bins: %.0f%% of M (the paper's Mmin estimate)", twoLeft*100)
	table.AddNote("mean width %.0f nm; share below Wmin=155 nm: %.0f%%", d.Mean(), below155*100)

	// Cross-check against the synthetic netlist on the synthetic library.
	lib45, _, err := r.libraries()
	if err != nil {
		return nil, err
	}
	nlShare := 0.0
	if r.netlist45 == nil {
		if _, _, err := r.placedDesign(155); err != nil {
			return nil, err
		}
	}
	nlShare, err = r.netlist45.ShareBelow(lib45, 155)
	if err != nil {
		return nil, err
	}

	bars := &plot.BarChart{
		Title:  "Fig. 2.2a  width histogram",
		YLabel: "share of transistors (%)",
		Labels: binLabels(h.Edges),
		Groups: []plot.Series{{Name: "share %", Ys: ys}},
	}
	rendered, err := bars.Render()
	if err != nil {
		return nil, err
	}
	var csv strings.Builder
	if err := plot.SeriesCSV(&csv, []plot.Series{{Name: "share", Xs: xs, Ys: ys}}); err != nil {
		return nil, err
	}

	cmp := &report.ComparisonSet{Name: "fig2.2a"}
	cmp.Add(report.Comparison{Artifact: "Fig. 2.2a", Quantity: "two left bins share",
		Paper: 0.33, Measured: twoLeft, TolFactor: 1.05})
	cmp.Add(report.Comparison{Artifact: "Fig. 2.2a", Quantity: "share below Wmin=155",
		Paper: 0.33, Measured: below155, TolFactor: 1.05})
	cmp.Add(report.Comparison{Artifact: "Fig. 2.2a", Quantity: "synthetic netlist share below 155",
		Paper: 0.33, Measured: nlShare, TolFactor: 1.35})

	return &Result{
		Name:        "fig2.2a",
		Table:       table,
		Comparisons: cmp,
		Charts:      []string{rendered},
		CSVs:        map[string]string{"fig2_2a_width_hist.csv": csv.String()},
	}, nil
}

func binLabels(edges []float64) []string {
	out := make([]string, len(edges)-1)
	for i := range out {
		out[i] = fmt.Sprintf("%.0f", edges[i+1])
	}
	return out
}

// Fig22b regenerates Fig. 2.2b: the gate-capacitance penalty of upsizing to
// the uncorrelated Wmin, swept across technology nodes with the CNT pitch
// held at 4 nm.
func (r *Runner) Fig22b() (*Result, error) {
	base, err := r.wminAt(1)
	if err != nil {
		return nil, err
	}
	cap := power.DefaultCapModel()
	sweep, err := cap.ScalingSweep(widthdist.OpenRISC45(), base.Wmin, tech.PaperNodes())
	if err != nil {
		return nil, err
	}
	table := &report.Table{
		Title:   fmt.Sprintf("Fig. 2.2b — upsizing penalty vs node (Wt = %.1f nm, no correlation)", base.Wmin),
		Columns: []string{"node", "penalty (%)"},
	}
	labels := make([]string, len(sweep))
	ys := make([]float64, len(sweep))
	xs := make([]float64, len(sweep))
	for i, np := range sweep {
		if err := table.AddRow(np.Node.Name, fmt.Sprintf("%.1f", np.Penalty*100)); err != nil {
			return nil, err
		}
		labels[i] = np.Node.Name
		ys[i] = np.Penalty * 100
		xs[i] = np.Node.DrawnNM
	}
	bars := &plot.BarChart{
		Title:  "Fig. 2.2b  penalty vs technology node",
		YLabel: "gate capacitance increase (%)",
		Labels: labels,
		Groups: []plot.Series{{Name: "without correlation", Ys: ys}},
	}
	rendered, err := bars.Render()
	if err != nil {
		return nil, err
	}
	var csv strings.Builder
	if err := plot.SeriesCSV(&csv, []plot.Series{{Name: "penalty_pct", Xs: xs, Ys: ys}}); err != nil {
		return nil, err
	}

	// The paper reports Fig. 2.2b as a chart; reference values are read off
	// it (EXPERIMENTS.md documents the read-off uncertainty).
	cmp := &report.ComparisonSet{Name: "fig2.2b"}
	cmp.Add(report.Comparison{Artifact: "Fig. 2.2b", Quantity: "45 nm penalty",
		Paper: 0.12, Measured: sweep[0].Penalty, TolFactor: 2})
	cmp.Add(report.Comparison{Artifact: "Fig. 2.2b", Quantity: "16 nm penalty",
		Paper: 1.05, Measured: sweep[3].Penalty, TolFactor: 1.4})
	cmp.Add(report.Comparison{Artifact: "Fig. 2.2b", Quantity: "16 nm / 45 nm penalty growth",
		Paper: 1.05 / 0.12, Measured: sweep[3].Penalty / sweep[0].Penalty, TolFactor: 1.8})

	return &Result{
		Name:        "fig2.2b",
		Table:       table,
		Comparisons: cmp,
		Charts:      []string{rendered},
		CSVs:        map[string]string{"fig2_2b_penalty_vs_node.csv": csv.String()},
	}, nil
}

// Fig33 regenerates Fig. 3.3: the same penalty sweep before and after the
// directional-growth + aligned-active co-optimization.
func (r *Runner) Fig33() (*Result, error) {
	mrmin, err := r.mrminPaper()
	if err != nil {
		return nil, err
	}
	base, err := r.wminAt(1)
	if err != nil {
		return nil, err
	}
	opt, err := r.wminAt(mrmin)
	if err != nil {
		return nil, err
	}
	cap := power.DefaultCapModel()
	d := widthdist.OpenRISC45()
	nodes := tech.PaperNodes()
	before, err := cap.ScalingSweep(d, base.Wmin, nodes)
	if err != nil {
		return nil, err
	}
	after, err := cap.ScalingSweep(d, opt.Wmin, nodes)
	if err != nil {
		return nil, err
	}
	table := &report.Table{
		Title: fmt.Sprintf("Fig. 3.3 — penalty vs node, before (Wt=%.1f nm) and after (Wt=%.1f nm) co-optimization",
			base.Wmin, opt.Wmin),
		Columns: []string{"node", "without correlation (%)", "with correlation + aligned-active (%)"},
	}
	labels := make([]string, len(nodes))
	b := make([]float64, len(nodes))
	a := make([]float64, len(nodes))
	xs := make([]float64, len(nodes))
	for i := range nodes {
		if err := table.AddRow(nodes[i].Name,
			fmt.Sprintf("%.1f", before[i].Penalty*100),
			fmt.Sprintf("%.1f", after[i].Penalty*100)); err != nil {
			return nil, err
		}
		labels[i] = nodes[i].Name
		b[i] = before[i].Penalty * 100
		a[i] = after[i].Penalty * 100
		xs[i] = nodes[i].DrawnNM
	}
	bars := &plot.BarChart{
		Title:  "Fig. 3.3  penalty vs node, before/after",
		YLabel: "gate capacitance increase (%)",
		Labels: labels,
		Groups: []plot.Series{
			{Name: "without correlation", Ys: b},
			{Name: "with correlation + aligned", Ys: a},
		},
	}
	rendered, err := bars.Render()
	if err != nil {
		return nil, err
	}
	var csv strings.Builder
	if err := plot.SeriesCSV(&csv, []plot.Series{
		{Name: "before_pct", Xs: xs, Ys: b},
		{Name: "after_pct", Xs: xs, Ys: a},
	}); err != nil {
		return nil, err
	}

	cmp := &report.ComparisonSet{Name: "fig3.3"}
	cmp.Add(report.Comparison{Artifact: "Fig. 3.3", Quantity: "45 nm optimized penalty",
		Paper: 0.02, Measured: after[0].Penalty, TolFactor: 3})
	for i := range nodes {
		cmp.Add(report.Comparison{
			Artifact: "Fig. 3.3",
			Quantity: fmt.Sprintf("%s penalty reduction factor", nodes[i].Name),
			Paper:    math.NaN(), Measured: before[i].Penalty / after[i].Penalty,
		})
	}

	return &Result{
		Name:        "fig3.3",
		Table:       table,
		Comparisons: cmp,
		Charts:      []string{rendered},
		CSVs:        map[string]string{"fig3_3_penalty_before_after.csv": csv.String()},
	}, nil
}
