package experiments

import (
	"fmt"
	"math"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/noisemargin"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/report"
	"github.com/cnfet/yieldlab/internal/yield"
)

// ExtensionNames lists the non-paper extension experiments.
func ExtensionNames() []string { return []string{"ext-noise", "ext-pitch"} }

// ExtNoiseMargin evaluates the failure mode the paper cites but excludes
// from count-limited yield: noise-margin violations from metallic CNTs that
// survive removal ([Zhang 09b]). It reproduces the quoted requirement that
// practical VLSI needs pRm beyond 99.99%.
func (r *Runner) ExtNoiseMargin() (*Result, error) {
	model, err := r.failureModel()
	if err != nil {
		return nil, err
	}
	params := noisemargin.Params{
		PMetallic:       device.WorstCorner().PMetallic,
		PRemoveMetallic: 0.9999,
		PRemoveSemi:     device.WorstCorner().PRemoveSemi,
		RatioThreshold:  noisemargin.DefaultRatioThreshold,
	}
	table := &report.Table{
		Title: fmt.Sprintf("Extension — noise-limited yield from surviving m-CNTs (pRm=%.4f, ρ=%.2f)",
			params.PRemoveMetallic, params.RatioThreshold),
		Columns: []string{"W (nm)", "violation prob", "chip yield (1e8 gates)", "required pRm for 90%"},
	}
	cmp := &report.ComparisonSet{Name: "ext-noise"}
	var req155 float64
	for _, w := range []float64{103, 155, 250} {
		pmf, err := model.CountModel().CountPMF(w)
		if err != nil {
			return nil, err
		}
		v, err := noisemargin.ViolationProb(pmf, params)
		if err != nil {
			return nil, err
		}
		y, err := noisemargin.ChipNoiseYield(v, r.params.M)
		if err != nil {
			return nil, err
		}
		req, err := noisemargin.RequiredPRm(pmf, params, r.params.M, r.params.DesiredYield)
		if err != nil {
			return nil, err
		}
		if w == 155 {
			req155 = req
		}
		if err := table.AddRow(
			fmt.Sprintf("%.0f", w),
			fmt.Sprintf("%.2e", v),
			fmt.Sprintf("%.4f", y),
			fmt.Sprintf("1-%.1e", 1-req),
		); err != nil {
			return nil, err
		}
	}
	table.AddNote("the paper (citing [Zhang 09b]): pRm > 99.99%% is required for practical VLSI")
	cmp.Add(report.Comparison{Artifact: "Sec. 2.1 (cited)", Quantity: "required pRm at 155 nm",
		Paper: 0.9999, Measured: req155, TolFactor: 1.001})
	return &Result{Name: "ext-noise", Table: table, Comparisons: cmp}, nil
}

// ExtPitchAblation compares the device failure model across pitch laws
// with the same 4 nm mean: the calibrated truncated normal, the memoryless
// exponential (Poisson counting) and the deterministic pitch — quantifying
// how much of the yield problem is density variation rather than mean
// density.
func (r *Runner) ExtPitchAblation() (*Result, error) {
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	calibrated, err := device.CalibratedPitch()
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name  string
		pitch dist.Continuous
	}{
		{"calibrated truncated normal", calibrated},
		{"exponential (Poisson counting)", dist.Exponential{Rate: 1 / device.MeanPitchNM}},
		{"deterministic 4 nm pitch", dist.Deterministic{V: device.MeanPitchNM}},
	}
	table := &report.Table{
		Title:   "Extension — pitch-law ablation (worst corner, mean pitch 4 nm)",
		Columns: []string{"pitch law", "σ/μ", "pF(103)", "pF(155)", "Wmin (nm)"},
	}
	cmp := &report.ComparisonSet{Name: "ext-pitch"}
	req, err := yield.RequiredDevicePF(0.33*r.params.M, r.params.DesiredYield)
	if err != nil {
		return nil, err
	}
	for _, tc := range cases {
		count, err := r.sweeps.Model(tc.pitch, renewal.WithStep(r.params.GridStepNM),
			renewal.WithMaxWidth(r.params.MaxWidthNM))
		if err != nil {
			return nil, err
		}
		m, err := device.NewFailureModel(count, device.WorstCorner())
		if err != nil {
			return nil, err
		}
		ps, err := m.FailureProbs([]float64{103, 155})
		if err != nil {
			return nil, err
		}
		wmin, err := m.WidthForFailureProb(req)
		if err != nil {
			return nil, err
		}
		ratio := tc.pitch.StdDev() / tc.pitch.Mean()
		if err := table.AddRow(
			tc.name,
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.2e", ps[0]),
			fmt.Sprintf("%.2e", ps[1]),
			fmt.Sprintf("%.1f", wmin),
		); err != nil {
			return nil, err
		}
		cmp.Add(report.Comparison{Artifact: "ablation", Quantity: "Wmin under " + tc.name,
			Paper: math.NaN(), Measured: wmin, Unit: "nm"})
	}
	table.AddNote("density variation, not mean density, sets the yield floor: the")
	table.AddNote("deterministic pitch would need far narrower devices for the same budget")
	return &Result{Name: "ext-pitch", Table: table, Comparisons: cmp}, nil
}
