package experiments

import (
	"fmt"

	"github.com/cnfet/yieldlab/internal/alignactive"
	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/plot"
	"github.com/cnfet/yieldlab/internal/report"
)

// Fig32 regenerates Fig. 3.2: the AOI222_X1 cell before and after the
// aligned-active restriction is enforced — the paper's illustrative case of
// a cell that must widen (≈ 9 %) to put every critical n-type active region
// on the global grid.
func (r *Runner) Fig32() (*Result, error) {
	mrmin, err := r.mrminPaper()
	if err != nil {
		return nil, err
	}
	opt, err := r.wminAt(mrmin)
	if err != nil {
		return nil, err
	}
	lib45, _, err := r.libraries()
	if err != nil {
		return nil, err
	}
	cell, err := lib45.Cell("AOI222_X1")
	if err != nil {
		return nil, err
	}
	aligned, change, err := alignactive.AlignCell(cell, alignactive.Options{WminNM: opt.Wmin, Bands: 1})
	if err != nil {
		return nil, err
	}
	table := &report.Table{
		Title:   fmt.Sprintf("Fig. 3.2 — AOI222_X1 under aligned-active restriction (Wmin = %.1f nm)", opt.Wmin),
		Columns: []string{"quantity", "before", "after"},
	}
	rows := [][3]string{
		{"cell width (nm)", fmt.Sprintf("%.0f", change.WidthBeforeNM), fmt.Sprintf("%.0f", change.WidthAfterNM)},
		{"n-active regions", fmt.Sprintf("%d", countRegions(cell, celllib.NFET)), fmt.Sprintf("%d", countRegions(&aligned, celllib.NFET))},
		{"distinct critical n offsets", fmt.Sprintf("%d", distinctCriticalOffsets(cell, opt.Wmin)), fmt.Sprintf("%d", distinctCriticalOffsets(&aligned, opt.Wmin))},
		{"devices upsized", "—", fmt.Sprintf("%d", change.UpsizedDevices)},
		{"columns added", "—", fmt.Sprintf("%d", change.RelocatedColumns)},
	}
	for _, row := range rows {
		if err := table.AddRow(row[0], row[1], row[2]); err != nil {
			return nil, err
		}
	}
	table.AddNote("cell width increase: %.1f%% (paper: ≈9%%)", change.Penalty*100)

	svgs := map[string]string{
		"fig3_2_aoi222_before.svg": renderCell(cell, opt.Wmin, "AOI222_X1 (original)"),
		"fig3_2_aoi222_after.svg":  renderCell(&aligned, opt.Wmin, "AOI222_X1 (aligned-active)"),
	}
	cmp := &report.ComparisonSet{Name: "fig3.2"}
	cmp.Add(report.Comparison{Artifact: "Fig. 3.2", Quantity: "AOI222_X1 width increase",
		Paper: 0.09, Measured: change.Penalty, TolFactor: 1.3})
	cmp.Add(report.Comparison{Artifact: "Fig. 3.2", Quantity: "critical offsets after alignment",
		Paper: 1, Measured: float64(distinctCriticalOffsets(&aligned, opt.Wmin)), TolFactor: 1.01})

	return &Result{Name: "fig3.2", Table: table, Comparisons: cmp, SVGs: svgs}, nil
}

func countRegions(c *celllib.Cell, typ celllib.DeviceType) int {
	n := 0
	for _, reg := range c.ActiveRegions() {
		if reg.Type == typ {
			n++
		}
	}
	return n
}

func distinctCriticalOffsets(c *celllib.Cell, wmin float64) int {
	seen := map[float64]bool{}
	for _, t := range c.Transistors {
		if t.Type == celllib.NFET && t.WidthNM <= wmin {
			seen[t.YOffsetNM] = true
		}
	}
	return len(seen)
}

// renderCell draws a cell's active regions Fig. 3.2 style: n regions below,
// p regions above, poly columns as vertical lines, critical regions
// highlighted with the paper's dashed outline.
func renderCell(c *celllib.Cell, wmin float64, title string) string {
	const margin = 30.0
	scale := 0.35
	w := c.WidthNM*scale + 2*margin
	h := c.HeightNM*scale + 2*margin
	svg := plot.NewSVG(w, h)
	toX := func(x float64) float64 { return margin + x*scale }
	// n row occupies the lower half, p row the upper half (offsets are per
	// device-row origin).
	rowBase := map[celllib.DeviceType]float64{
		celllib.NFET: margin + c.HeightNM*scale*0.95,
		celllib.PFET: margin + c.HeightNM*scale*0.45,
	}
	svg.Rect(margin, margin, c.WidthNM*scale, c.HeightNM*scale, "", "black", 1.5)
	svg.Text(margin, margin-8, 13, title)
	cols := int(c.WidthNM/c.PolyPitchNM + 0.5)
	for col := 0; col < cols; col++ {
		x := toX((float64(col) + 0.625) * c.PolyPitchNM)
		svg.Line(x, margin, x, margin+c.HeightNM*scale, "#cc4444", 1)
	}
	for _, reg := range c.ActiveRegions() {
		base := rowBase[reg.Type]
		y := base - (reg.YOffsetNM+reg.WidthNM)*scale
		fill := "#88aa88"
		if reg.Type == celllib.PFET {
			fill = "#8888cc"
		}
		svg.Rect(toX(reg.X0NM), y, (reg.X1NM-reg.X0NM)*scale, reg.WidthNM*scale, fill, "black", 0.5)
		critical := true
		for _, ti := range reg.Transistors {
			if c.Transistors[ti].WidthNM > wmin {
				critical = false
			}
		}
		if critical && reg.Type == celllib.NFET {
			svg.DashedRect(toX(reg.X0NM)-2, y-2, (reg.X1NM-reg.X0NM)*scale+4, reg.WidthNM*scale+4, "goldenrod", 1.5)
		}
	}
	return svg.String()
}
