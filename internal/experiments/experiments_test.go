package experiments

import (
	"strings"
	"sync"
	"testing"
)

// fastParams shrinks the Monte Carlo budgets so the full integration suite
// stays test-friendly; the tolerance bands in the runners still apply.
func fastParams() Params {
	p := DefaultParams()
	p.MCRounds = 25_000
	p.CorrelationRounds = 250
	p.NetlistInstances = 8_000
	return p
}

var (
	runnerOnce sync.Once
	sharedRun  *Runner
)

func testRunner() *Runner {
	runnerOnce.Do(func() { sharedRun = New(fastParams()) })
	return sharedRun
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.DesiredYield = 1 },
		func(p *Params) { p.LCNTUM = 0 },
		func(p *Params) { p.PminPerUM = 0 },
		func(p *Params) { p.GridStepNM = 0 },
		func(p *Params) { p.MCRounds = 1 },
		func(p *Params) { p.CorrelationRounds = 0 },
		func(p *Params) { p.NetlistInstances = 1 },
		func(p *Params) { p.RowWidthUM = 0 },
	}
	for i, m := range mutations {
		p := DefaultParams()
		m(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d should invalidate params", i)
		}
	}
}

func TestNamesAndDispatch(t *testing.T) {
	if len(Names()) != 8 {
		t.Fatalf("names: %v", Names())
	}
	r := testRunner()
	if _, err := r.Run("nonsense"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// The integration regression: every experiment runs and every
// paper-vs-measured record lands inside its tolerance band.
func TestAllExperimentsWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment suite")
	}
	r := testRunner()
	results, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Names()) {
		t.Fatalf("results: %d", len(results))
	}
	for _, res := range results {
		if res.Table == nil {
			t.Errorf("%s: missing table", res.Name)
			continue
		}
		if res.Comparisons == nil {
			t.Errorf("%s: missing comparisons", res.Name)
			continue
		}
		for _, f := range res.Comparisons.Failures() {
			t.Errorf("%s: %s out of tolerance: paper %.4g, measured %.4g",
				res.Name, f.Quantity, f.Paper, f.Measured)
		}
		if res.Text() == "" {
			t.Errorf("%s: empty text rendering", res.Name)
		}
	}
}

func TestFig21Anchors(t *testing.T) {
	res, err := testRunner().Fig21()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Charts) == 0 || !strings.Contains(res.Charts[0], "pF") {
		t.Fatal("chart missing")
	}
	if len(res.CSVs) != 1 {
		t.Fatal("CSV missing")
	}
	for _, c := range res.Comparisons.Records {
		if !c.WithinTolerance() {
			t.Errorf("%s out of tolerance (%v vs %v)", c.Quantity, c.Measured, c.Paper)
		}
	}
}

func TestFig32SVGsPresent(t *testing.T) {
	res, err := testRunner().Fig32()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SVGs) != 2 {
		t.Fatalf("SVGs: %d", len(res.SVGs))
	}
	for name, svg := range res.SVGs {
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Errorf("%s: malformed SVG", name)
		}
	}
}

func TestTable2RowsAndNotes(t *testing.T) {
	res, err := testRunner().Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Table.Rows))
	}
	if len(res.Table.Notes) == 0 {
		t.Fatal("notes missing")
	}
}

func TestExtensionExperiments(t *testing.T) {
	r := testRunner()
	for _, name := range ExtensionNames() {
		res, err := r.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Table == nil || len(res.Table.Rows) != 3 {
			t.Fatalf("%s: unexpected table shape", name)
		}
		for _, f := range res.Comparisons.Failures() {
			t.Errorf("%s: %s out of tolerance", name, f.Quantity)
		}
	}
	// The noise extension must reproduce the quoted pRm regime: required
	// removal beyond 99.99% at the small-device end.
	res, err := r.ExtNoiseMargin()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table.Rows[0][3], "1-") {
		t.Fatalf("required pRm formatting: %v", res.Table.Rows[0])
	}
}

func TestRunnerSharesModelAcrossExperiments(t *testing.T) {
	r := testRunner()
	m1, err := r.failureModel()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.failureModel()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("failure model should be shared")
	}
}

// The runner's sweep cache must dedupe count-model construction: the
// pitch-law ablation re-requests the calibrated law the failure model was
// already built on (a hit), while its exponential and deterministic laws
// are genuinely new (misses).
func TestRunnerSweepCacheSharesAcrossModels(t *testing.T) {
	r := New(fastParams())
	if _, err := r.failureModel(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExtPitchAblation(); err != nil {
		t.Fatal(err)
	}
	st := r.SweepCache().Stats()
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("sweep cache stats = (%d hits, %d misses), want (1, 3)", st.Hits, st.Misses)
	}
}

// Reproducibility: two independent runners with the same seed produce
// byte-identical Table 1 outputs regardless of worker scheduling.
func TestTable1Deterministic(t *testing.T) {
	p := fastParams()
	p.MCRounds = 5_000
	a, err := New(p).Table1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(p).Table1()
	if err != nil {
		t.Fatal(err)
	}
	at, bt := a.Table.Render(), b.Table.Render()
	if at != bt {
		t.Fatalf("Table 1 not reproducible:\n%s\nvs\n%s", at, bt)
	}
	// A different seed moves the Monte Carlo columns.
	p.Seed++
	c, err := New(p).Table1()
	if err != nil {
		t.Fatal(err)
	}
	if c.Table.Render() == at {
		t.Fatal("seed change should alter MC estimates")
	}
}
