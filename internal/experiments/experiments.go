// Package experiments reproduces every table and figure of the paper's
// evaluation. Each runner returns a Result holding the regenerated table,
// rendered charts, optional SVG artwork and CSV data, and a set of
// paper-vs-measured comparison records (collected into EXPERIMENTS.md).
//
// The experiment index lives in DESIGN.md §4; the short version:
//
//	fig2.1  — device failure probability vs width, three process corners
//	fig2.2a — OpenRISC transistor width histogram
//	fig2.2b — upsizing penalty vs technology node (uncorrelated baseline)
//	table1  — row failure probability for three growth/layout scenarios
//	fig3.1  — CNT count/type correlation between device pairs
//	fig3.2  — aligned-active transform of AOI222_X1
//	fig3.3  — penalty vs node, before/after the co-optimization
//	table2  — library-wide area penalty and Wmin for three configurations
package experiments

import (
	"fmt"
	"sync"

	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/netlist"
	"github.com/cnfet/yieldlab/internal/place"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/report"
	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/widthdist"
	"github.com/cnfet/yieldlab/internal/yield"
)

// Params collects every knob of the reproduction; DefaultParams freezes the
// paper's values.
type Params struct {
	// Seed is the root seed for all Monte Carlo work.
	Seed uint64
	// M is the chip transistor count (paper: 1e8).
	M float64
	// DesiredYield is the chip yield target (paper: 0.90).
	DesiredYield float64
	// LCNTUM is the CNT length in µm (paper: 200).
	LCNTUM float64
	// PminPerUM is Pmin-CNFET, the critical-device density the paper
	// measured on its placed OpenRISC design (1.8 FETs/µm). Table 1 uses
	// this published value; the placement experiments also report our own
	// measured density.
	PminPerUM float64
	// GridStepNM and MaxWidthNM configure the renewal engine.
	GridStepNM float64
	MaxWidthNM float64
	// MCRounds is the Monte Carlo round count for Table 1.
	MCRounds int
	// Workers caps Monte Carlo parallelism (0 = NumCPU).
	Workers int
	// CorrelationRounds is the growth-simulation round count for Fig. 3.1.
	CorrelationRounds int
	// NetlistInstances sizes the synthetic OpenRISC netlist used for
	// placement statistics.
	NetlistInstances int
	// RowWidthUM is the placement row capacity.
	RowWidthUM float64
}

// DefaultParams returns the frozen paper configuration.
func DefaultParams() Params {
	return Params{
		Seed:              rng.DefaultSeed,
		M:                 1e8,
		DesiredYield:      0.90,
		LCNTUM:            200,
		PminPerUM:         1.8,
		GridStepNM:        0.05,
		MaxWidthNM:        440,
		MCRounds:          200_000,
		Workers:           0,
		CorrelationRounds: 600,
		NetlistInstances:  20_000,
		RowWidthUM:        50,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case !(p.M > 0):
		return fmt.Errorf("experiments: M = %g must be positive", p.M)
	case !(p.DesiredYield > 0) || p.DesiredYield >= 1:
		return fmt.Errorf("experiments: desired yield %g out of (0,1)", p.DesiredYield)
	case !(p.LCNTUM > 0):
		return fmt.Errorf("experiments: LCNT %g must be positive", p.LCNTUM)
	case !(p.PminPerUM > 0):
		return fmt.Errorf("experiments: Pmin %g must be positive", p.PminPerUM)
	case !(p.GridStepNM > 0) || !(p.MaxWidthNM > p.GridStepNM):
		return fmt.Errorf("experiments: bad grid (%g, %g)", p.GridStepNM, p.MaxWidthNM)
	case p.MCRounds < 2:
		return fmt.Errorf("experiments: MCRounds %d too small", p.MCRounds)
	case p.CorrelationRounds < 2:
		return fmt.Errorf("experiments: CorrelationRounds %d too small", p.CorrelationRounds)
	case p.NetlistInstances < 100:
		return fmt.Errorf("experiments: NetlistInstances %d too small", p.NetlistInstances)
	case !(p.RowWidthUM > 0):
		return fmt.Errorf("experiments: row width %g must be positive", p.RowWidthUM)
	}
	return nil
}

// Result is one experiment's output.
type Result struct {
	// Name is the experiment id ("fig2.1", "table1", ...).
	Name string
	// Table is the regenerated paper artifact.
	Table *report.Table
	// Comparisons holds the paper-vs-measured records.
	Comparisons *report.ComparisonSet
	// Charts holds rendered ASCII charts.
	Charts []string
	// SVGs maps suggested file names to SVG documents.
	SVGs map[string]string
	// CSVs maps suggested file names to CSV payloads.
	CSVs map[string]string
}

// Text renders the result for terminal consumption.
func (r *Result) Text() string {
	out := ""
	if r.Table != nil {
		out += r.Table.Render() + "\n"
	}
	for _, c := range r.Charts {
		out += c + "\n"
	}
	if r.Comparisons != nil {
		if t, err := r.Comparisons.Table(); err == nil {
			out += t.Render()
		}
	}
	return out
}

// Runner executes experiments over shared, lazily built state (device
// model, libraries, placement), so running `all` does not repeat the
// expensive renewal sweeps.
type Runner struct {
	params Params
	// sweeps shares swept renewal count tables between every model the
	// runner builds: the three Fig. 2.1 corners, the pitch-law ablation and
	// repeated experiment runs all hit one table per distinct law+grid.
	sweeps *renewal.SweepCache

	mu         sync.Mutex
	model      *device.FailureModel
	lib45      *celllib.Library
	lib65      *celllib.Library
	netlist45  *netlist.Netlist
	placement  *place.Placement
	density45  float64
	solveCache map[float64]float64
}

// New creates a runner; the parameters are validated on first use.
func New(p Params) *Runner {
	return &Runner{
		params:     p,
		sweeps:     renewal.NewSweepCache(),
		solveCache: make(map[float64]float64),
	}
}

// SweepCache exposes the runner's shared renewal sweep cache, so callers
// embedding the runner in a longer-lived service can pool further model
// construction on it.
func (r *Runner) SweepCache() *renewal.SweepCache { return r.sweeps }

// Params returns the runner's configuration.
func (r *Runner) Params() Params { return r.params }

// Names lists the experiment identifiers in paper order.
func Names() []string {
	return []string{"fig2.1", "fig2.2a", "fig2.2b", "table1", "fig3.1", "fig3.2", "fig3.3", "table2"}
}

// Run dispatches one experiment by name.
func (r *Runner) Run(name string) (*Result, error) {
	switch name {
	case "fig2.1":
		return r.Fig21()
	case "fig2.2a":
		return r.Fig22a()
	case "fig2.2b":
		return r.Fig22b()
	case "table1":
		return r.Table1()
	case "fig3.1":
		return r.Fig31()
	case "fig3.2":
		return r.Fig32()
	case "fig3.3":
		return r.Fig33()
	case "table2":
		return r.Table2()
	case "ext-noise":
		return r.ExtNoiseMargin()
	case "ext-pitch":
		return r.ExtPitchAblation()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v and extensions %v)",
			name, Names(), ExtensionNames())
	}
}

// All runs every experiment in order.
func (r *Runner) All() ([]*Result, error) {
	var out []*Result
	for _, name := range Names() {
		res, err := r.Run(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// failureModel lazily builds the shared worst-corner device model.
func (r *Runner) failureModel() (*device.FailureModel, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.model != nil {
		return r.model, nil
	}
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	m, err := device.NewCalibratedModelWith(r.sweeps, device.WorstCorner(),
		renewal.WithStep(r.params.GridStepNM), renewal.WithMaxWidth(r.params.MaxWidthNM))
	if err != nil {
		return nil, err
	}
	r.model = m
	return m, nil
}

// baseProblem returns the Section 2 sizing problem at a relax factor.
func (r *Runner) baseProblem(relax float64) (*yield.Problem, error) {
	m, err := r.failureModel()
	if err != nil {
		return nil, err
	}
	return &yield.Problem{
		Model:        m,
		Widths:       widthdist.OpenRISC45(),
		M:            r.params.M,
		DesiredYield: r.params.DesiredYield,
		RelaxFactor:  relax,
	}, nil
}

// wminAt solves (and caches) the simplified Wmin at a relax factor.
func (r *Runner) wminAt(relax float64) (yield.Result, error) {
	p, err := r.baseProblem(relax)
	if err != nil {
		return yield.Result{}, err
	}
	r.mu.Lock()
	if w, ok := r.solveCache[relax]; ok {
		r.mu.Unlock()
		pf, err := p.Model.FailureProb(w)
		if err != nil {
			return yield.Result{}, err
		}
		return yield.Result{Wmin: w, DevicePF: pf, MminShare: p.Widths.ShareBelow(w)}, nil
	}
	r.mu.Unlock()
	res, err := yield.SimplifiedWmin(p)
	if err != nil {
		return yield.Result{}, err
	}
	r.mu.Lock()
	r.solveCache[relax] = res.Wmin
	r.mu.Unlock()
	return res, nil
}

// libraries lazily builds the synthetic libraries.
func (r *Runner) libraries() (*celllib.Library, *celllib.Library, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lib45 == nil {
		lib, err := celllib.NangateLike45()
		if err != nil {
			return nil, nil, err
		}
		r.lib45 = lib
	}
	if r.lib65 == nil {
		lib, err := celllib.Commercial65()
		if err != nil {
			return nil, nil, err
		}
		r.lib65 = lib
	}
	return r.lib45, r.lib65, nil
}

// placedDesign lazily builds the synthetic OpenRISC placement on the 45 nm
// library and measures its critical-device density.
func (r *Runner) placedDesign(wmin float64) (*place.Placement, float64, error) {
	lib45, _, err := r.libraries()
	if err != nil {
		return nil, 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.placement == nil {
		nl, err := netlist.OpenRISCLike(lib45, r.params.NetlistInstances)
		if err != nil {
			return nil, 0, err
		}
		r.netlist45 = nl
		p, err := place.PlaceRows(lib45, nl, r.params.RowWidthUM*1000, r.params.Seed)
		if err != nil {
			return nil, 0, err
		}
		r.placement = p
	}
	d, err := r.placement.CriticalDensityPerUM(wmin)
	if err != nil {
		return nil, 0, err
	}
	r.density45 = d
	return r.placement, d, nil
}

// mrminPaper returns the paper-parameter MRmin = LCNT × Pmin (≈ 360).
func (r *Runner) mrminPaper() (float64, error) {
	if err := r.params.Validate(); err != nil {
		return 0, err
	}
	return r.params.LCNTUM * r.params.PminPerUM, nil
}
