// Package experiments reproduces every table and figure of the paper's
// evaluation. Each runner returns a Result holding the regenerated table,
// rendered charts, optional SVG artwork and CSV data, and a set of
// paper-vs-measured comparison records (collected into EXPERIMENTS.md).
//
// The experiment index lives in DESIGN.md §4; the short version:
//
//	fig2.1  — device failure probability vs width, three process corners
//	fig2.2a — OpenRISC transistor width histogram
//	fig2.2b — upsizing penalty vs technology node (uncorrelated baseline)
//	table1  — row failure probability for three growth/layout scenarios
//	fig3.1  — CNT count/type correlation between device pairs
//	fig3.2  — aligned-active transform of AOI222_X1
//	fig3.3  — penalty vs node, before/after the co-optimization
//	table2  — library-wide area penalty and Wmin for three configurations
//
//yield:compute
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/netlist"
	"github.com/cnfet/yieldlab/internal/place"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/report"
	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/rowyield"
	"github.com/cnfet/yieldlab/internal/widthdist"
	"github.com/cnfet/yieldlab/internal/yield"
)

// Params collects every knob of the reproduction; DefaultParams freezes the
// paper's values.
type Params struct {
	// Seed is the root seed for all Monte Carlo work.
	Seed uint64
	// M is the chip transistor count (paper: 1e8).
	M float64
	// DesiredYield is the chip yield target (paper: 0.90).
	DesiredYield float64
	// LCNTUM is the CNT length in µm (paper: 200).
	LCNTUM float64
	// PminPerUM is Pmin-CNFET, the critical-device density the paper
	// measured on its placed OpenRISC design (1.8 FETs/µm). Table 1 uses
	// this published value; the placement experiments also report our own
	// measured density.
	PminPerUM float64
	// GridStepNM and MaxWidthNM configure the renewal engine.
	GridStepNM float64
	MaxWidthNM float64
	// MCRounds is the Monte Carlo round count for Table 1.
	MCRounds int
	// Workers caps Monte Carlo parallelism (0 = NumCPU).
	Workers int
	// CorrelationRounds is the growth-simulation round count for Fig. 3.1.
	CorrelationRounds int
	// NetlistInstances sizes the synthetic OpenRISC netlist used for
	// placement statistics.
	NetlistInstances int
	// RowWidthUM is the placement row capacity.
	RowWidthUM float64
}

// DefaultParams returns the frozen paper configuration.
func DefaultParams() Params {
	return Params{
		Seed:              rng.DefaultSeed,
		M:                 1e8,
		DesiredYield:      0.90,
		LCNTUM:            200,
		PminPerUM:         1.8,
		GridStepNM:        0.05,
		MaxWidthNM:        440,
		MCRounds:          200_000,
		Workers:           0,
		CorrelationRounds: 600,
		NetlistInstances:  20_000,
		RowWidthUM:        50,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case !(p.M > 0):
		return fmt.Errorf("experiments: M = %g must be positive", p.M)
	case !(p.DesiredYield > 0) || p.DesiredYield >= 1:
		return fmt.Errorf("experiments: desired yield %g out of (0,1)", p.DesiredYield)
	case !(p.LCNTUM > 0):
		return fmt.Errorf("experiments: LCNT %g must be positive", p.LCNTUM)
	case !(p.PminPerUM > 0):
		return fmt.Errorf("experiments: Pmin %g must be positive", p.PminPerUM)
	case !(p.GridStepNM > 0) || !(p.MaxWidthNM > p.GridStepNM):
		return fmt.Errorf("experiments: bad grid (%g, %g)", p.GridStepNM, p.MaxWidthNM)
	case p.MCRounds < 2:
		return fmt.Errorf("experiments: MCRounds %d too small", p.MCRounds)
	case p.CorrelationRounds < 2:
		return fmt.Errorf("experiments: CorrelationRounds %d too small", p.CorrelationRounds)
	case p.NetlistInstances < 100:
		return fmt.Errorf("experiments: NetlistInstances %d too small", p.NetlistInstances)
	case !(p.RowWidthUM > 0):
		return fmt.Errorf("experiments: row width %g must be positive", p.RowWidthUM)
	}
	return nil
}

// Result is one experiment's output.
type Result struct {
	// Name is the experiment id ("fig2.1", "table1", ...).
	Name string
	// Table is the regenerated paper artifact.
	Table *report.Table
	// Comparisons holds the paper-vs-measured records.
	Comparisons *report.ComparisonSet
	// Charts holds rendered ASCII charts.
	Charts []string
	// SVGs maps suggested file names to SVG documents.
	SVGs map[string]string
	// CSVs maps suggested file names to CSV payloads.
	CSVs map[string]string
}

// Text renders the result for terminal consumption.
func (r *Result) Text() string {
	out := ""
	if r.Table != nil {
		out += r.Table.Render() + "\n"
	}
	for _, c := range r.Charts {
		out += c + "\n"
	}
	if r.Comparisons != nil {
		if t, err := r.Comparisons.Table(); err == nil {
			out += t.Render()
		}
	}
	return out
}

// Runner executes experiments over shared, lazily built state (device
// model, libraries, placement), so running `all` does not repeat the
// expensive renewal sweeps.
type Runner struct {
	params Params
	// sweeps shares swept renewal count tables between every model the
	// runner builds: the three Fig. 2.1 corners, the pitch-law ablation and
	// repeated experiment runs all hit one table per distinct law+grid.
	sweeps *renewal.SweepCache

	mu         sync.Mutex
	model      *device.FailureModel
	lib45      *celllib.Library
	lib65      *celllib.Library
	netlist45  *netlist.Netlist
	placement  *place.Placement
	density45  float64
	solveCache map[float64]float64
	// rowModels caches prepared Monte Carlo row models by (width, corner,
	// pitch law). Preparation builds sampler and pf-power tables and
	// re-measures the library offset distribution; a scenario sweep asks
	// for the same model once per scenario and a server asks once per
	// request, so sharing the immutable prepared model pays everywhere.
	rowModels map[string]*rowyield.RowModel
}

// New creates a runner; the parameters are validated on first use.
func New(p Params) *Runner {
	return NewWithCache(p, renewal.NewSweepCache())
}

// NewWithCache creates a runner whose device models draw from a shared
// sweep cache, so several runners — e.g. per-job runners inside a long-lived
// server — pool their renewal sweeps. A nil cache behaves like New.
func NewWithCache(p Params, sweeps *renewal.SweepCache) *Runner {
	if sweeps == nil {
		sweeps = renewal.NewSweepCache()
	}
	return &Runner{
		params:     p,
		sweeps:     sweeps,
		solveCache: make(map[float64]float64),
		rowModels:  make(map[string]*rowyield.RowModel),
	}
}

// SweepCache exposes the runner's shared renewal sweep cache, so callers
// embedding the runner in a longer-lived service can pool further model
// construction on it.
func (r *Runner) SweepCache() *renewal.SweepCache { return r.sweeps }

// Params returns the runner's configuration.
func (r *Runner) Params() Params { return r.params }

// Names lists the experiment identifiers in paper order.
func Names() []string {
	return []string{"fig2.1", "fig2.2a", "fig2.2b", "table1", "fig3.1", "fig3.2", "fig3.3", "table2"}
}

// Run dispatches one experiment by name.
func (r *Runner) Run(name string) (*Result, error) {
	switch name {
	case "fig2.1":
		return r.Fig21()
	case "fig2.2a":
		return r.Fig22a()
	case "fig2.2b":
		return r.Fig22b()
	case "table1":
		return r.Table1()
	case "fig3.1":
		return r.Fig31()
	case "fig3.2":
		return r.Fig32()
	case "fig3.3":
		return r.Fig33()
	case "table2":
		return r.Table2()
	case "ext-noise":
		return r.ExtNoiseMargin()
	case "ext-pitch":
		return r.ExtPitchAblation()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v and extensions %v)",
			name, Names(), ExtensionNames())
	}
}

// All runs every experiment, in paper order, on the runner's worker pool
// (Params.Workers; 0 = NumCPU).
func (r *Runner) All() ([]*Result, error) {
	return r.RunMany(Names(), r.params.Workers)
}

// RunMany executes the named experiments on a bounded pool of `workers`
// goroutines (≤ 0 means NumCPU). Every experiment is deterministic given the
// runner's parameters — Monte Carlo streams derive from Params.Seed per
// experiment, and the shared lazily-built state (device model, libraries,
// placement) is built once under the runner's lock — so the results are
// identical to a serial run, in input order. On failure the error of the
// earliest-ordered failing experiment is returned (matching what a serial
// run would report) and no further experiments are started.
func (r *Runner) RunMany(names []string, workers int) ([]*Result, error) {
	if len(names) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(names) {
		workers = len(names)
	}
	if workers == 1 {
		out := make([]*Result, len(names))
		for i, name := range names {
			res, err := r.Run(name)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", name, err)
			}
			out[i] = res
		}
		return out, nil
	}

	type outcome struct {
		idx int
		res *Result
		err error
	}
	jobs := make(chan int)
	outcomes := make(chan outcome, len(names))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				res, err := r.Run(names[idx])
				if err != nil {
					failed.Store(true)
				}
				outcomes <- outcome{idx: idx, res: res, err: err}
			}
		}()
	}
	// Dispatch in input order and stop handing out work after the first
	// failure; experiments already in flight drain normally. Because
	// dispatch is ordered, every experiment preceding a failure has been
	// dispatched, so the earliest failing index is always observed.
	for idx := range names {
		if failed.Load() {
			break
		}
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	close(outcomes)

	out := make([]*Result, len(names))
	firstErrIdx := -1
	var firstErr error
	for oc := range outcomes {
		if oc.err != nil {
			if firstErrIdx == -1 || oc.idx < firstErrIdx {
				firstErrIdx = oc.idx
				firstErr = oc.err
			}
			continue
		}
		out[oc.idx] = oc.res
	}
	if firstErr != nil {
		return nil, fmt.Errorf("experiments: %s: %w", names[firstErrIdx], firstErr)
	}
	return out, nil
}

// Known reports whether name is a paper or extension experiment — the one
// validation both the CLI and the server's job API build their
// unknown-experiment errors on.
func Known(name string) bool {
	for _, n := range append(Names(), ExtensionNames()...) {
		if n == name {
			return true
		}
	}
	return false
}

// Suggest returns the known experiment name closest to `name` by edit
// distance, when one is close enough to be a plausible typo — the "did you
// mean" hint behind the CLI's unknown-experiment error.
func Suggest(name string) (string, bool) {
	known := append(Names(), ExtensionNames()...)
	best, bestDist := "", int(^uint(0)>>1)
	for _, k := range known {
		if d := editDistance(name, k); d < bestDist {
			best, bestDist = k, d
		}
	}
	// A hint further than ~half the typed name away is noise, not help.
	limit := (len(name) + 1) / 2
	if limit < 2 {
		limit = 2
	}
	if best == "" || bestDist > limit {
		return "", false
	}
	return best, true
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// failureModel lazily builds the shared worst-corner device model.
func (r *Runner) failureModel() (*device.FailureModel, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.model != nil {
		return r.model, nil
	}
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	m, err := device.NewCalibratedModelWith(r.sweeps, device.WorstCorner(),
		renewal.WithStep(r.params.GridStepNM), renewal.WithMaxWidth(r.params.MaxWidthNM))
	if err != nil {
		return nil, err
	}
	r.model = m
	return m, nil
}

// baseProblem returns the Section 2 sizing problem at a relax factor.
func (r *Runner) baseProblem(relax float64) (*yield.Problem, error) {
	m, err := r.failureModel()
	if err != nil {
		return nil, err
	}
	return &yield.Problem{
		Model:        m,
		Widths:       widthdist.OpenRISC45(),
		M:            r.params.M,
		DesiredYield: r.params.DesiredYield,
		RelaxFactor:  relax,
	}, nil
}

// wminAt solves (and caches) the simplified Wmin at a relax factor.
func (r *Runner) wminAt(relax float64) (yield.Result, error) {
	p, err := r.baseProblem(relax)
	if err != nil {
		return yield.Result{}, err
	}
	r.mu.Lock()
	if w, ok := r.solveCache[relax]; ok {
		r.mu.Unlock()
		pf, err := p.Model.FailureProb(w)
		if err != nil {
			return yield.Result{}, err
		}
		return yield.Result{Wmin: w, DevicePF: pf, MminShare: p.Widths.ShareBelow(w)}, nil
	}
	r.mu.Unlock()
	res, err := yield.SimplifiedWmin(p)
	if err != nil {
		return yield.Result{}, err
	}
	r.mu.Lock()
	r.solveCache[relax] = res.Wmin
	r.mu.Unlock()
	return res, nil
}

// libraries lazily builds the synthetic libraries.
func (r *Runner) libraries() (*celllib.Library, *celllib.Library, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lib45 == nil {
		lib, err := celllib.NangateLike45()
		if err != nil {
			return nil, nil, err
		}
		r.lib45 = lib
	}
	if r.lib65 == nil {
		lib, err := celllib.Commercial65()
		if err != nil {
			return nil, nil, err
		}
		r.lib65 = lib
	}
	return r.lib45, r.lib65, nil
}

// placedDesign lazily builds the synthetic OpenRISC placement on the 45 nm
// library and measures its critical-device density.
func (r *Runner) placedDesign(wmin float64) (*place.Placement, float64, error) {
	lib45, _, err := r.libraries()
	if err != nil {
		return nil, 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.placement == nil {
		nl, err := netlist.OpenRISCLike(lib45, r.params.NetlistInstances)
		if err != nil {
			return nil, 0, err
		}
		r.netlist45 = nl
		p, err := place.PlaceRows(lib45, nl, r.params.RowWidthUM*1000, r.params.Seed)
		if err != nil {
			return nil, 0, err
		}
		r.placement = p
	}
	d, err := r.placement.CriticalDensityPerUM(wmin)
	if err != nil {
		return nil, 0, err
	}
	r.density45 = d
	return r.placement, d, nil
}

// RowModelAt builds a Table 1-style correlated row model at device width
// w (nm) for an arbitrary processing corner: calibrated pitch, the runner's
// LCNT/density parameters, and the lateral offset distribution measured on
// the shared synthetic 45 nm library (built lazily on first use). The
// returned model is prepared and ready for Monte Carlo estimation; the
// query Session behind the server's rowyield endpoints is the main caller.
func (r *Runner) RowModelAt(width float64, corner device.FailureParams) (*rowyield.RowModel, error) {
	return r.RowModelAtPitch(width, corner, nil)
}

// RowModelAtPitch is RowModelAt over an explicit inter-CNT pitch law (nil =
// the calibrated truncated normal), so pitch-axis design-space sweeps reach
// the row Monte Carlo too.
//
// Prepared models are cached by (width, corner, pitch law): a prepared
// RowModel is immutable and safe to share, so a Table 1 scenario sweep, the
// server's repeated /v1/rowyield answers and /v2 design-space sweeps all
// reuse one set of sampler, alias and pf-power tables per distinct
// operating point. Laws without a fingerprint bypass the cache.
func (r *Runner) RowModelAtPitch(width float64, corner device.FailureParams, pitch dist.Continuous) (*rowyield.RowModel, error) {
	if err := r.params.Validate(); err != nil {
		return nil, err
	}
	if err := corner.Validate(); err != nil {
		return nil, err
	}
	if pitch == nil {
		calibrated, err := device.CalibratedPitch()
		if err != nil {
			return nil, err
		}
		pitch = calibrated
	}
	key := ""
	if fp, ok := dist.Fingerprint(pitch); ok {
		key = fmt.Sprintf("%x|%x|%x|%x|%s", width, corner.PMetallic, corner.PRemoveSemi, corner.PRemoveMetallic, fp)
		r.mu.Lock()
		rm, hit := r.rowModels[key]
		r.mu.Unlock()
		if hit {
			return rm, nil
		}
	}
	lib45, _, err := r.libraries()
	if err != nil {
		return nil, err
	}
	if _, _, err := r.placedDesign(width); err != nil {
		return nil, err
	}
	r.mu.Lock()
	nl := r.netlist45
	r.mu.Unlock()
	offsets, err := celllib.CriticalNFETOffsets(lib45, nl.Usage(), width)
	if err != nil {
		return nil, err
	}
	rm := &rowyield.RowModel{
		Pitch:         pitch,
		PerCNTFailure: corner.PerCNTFailure(),
		WidthNM:       width,
		LCNTNM:        r.params.LCNTUM * 1000,
		DensityPerUM:  r.params.PminPerUM,
		Offsets:       offsets,
	}
	if err := rm.Prepare(); err != nil {
		return nil, err
	}
	if key != "" {
		r.mu.Lock()
		if prior, raced := r.rowModels[key]; raced {
			rm = prior
		} else {
			if len(r.rowModels) >= rowModelCacheMax {
				// Width sweeps produce unbounded distinct keys; dropping
				// the whole small map is cheaper than LRU bookkeeping.
				clear(r.rowModels)
			}
			r.rowModels[key] = rm
		}
		r.mu.Unlock()
	}
	return rm, nil
}

// rowModelCacheMax bounds the prepared row-model cache; past it the cache
// resets (each entry holds a few small tables, so the bound is generous).
const rowModelCacheMax = 256

// mrminPaper returns the paper-parameter MRmin = LCNT × Pmin (≈ 360).
func (r *Runner) mrminPaper() (float64, error) {
	if err := r.params.Validate(); err != nil {
		return 0, err
	}
	return r.params.LCNTUM * r.params.PminPerUM, nil
}
