// Package fault is the repository's failpoint registry: named injection
// sites compiled into production code paths (sweep-store I/O, job
// execution, query evaluation, HTTP handlers) that normally do nothing and
// cost one atomic load, but can be armed — via the YIELD_FAILPOINTS
// environment variable, a server flag, or the Enable API — to return
// errors, inject latency, or panic on deterministic schedules.
//
// The point is the fault-tolerance literature's oldest lesson: redundancy
// and recovery code are worthless until the failure paths can be exercised
// on demand. A failpoint spec reads
//
//	<site>=<action>[@<trigger>{,<trigger>}]
//
// with actions
//
//	error            return ErrInjected
//	error(msg)       return an ErrInjected-wrapped error carrying msg
//	delay(duration)  sleep for duration (context-aware via InjectContext)
//	panic            panic with a fault.PanicValue
//
// and triggers (default: fire on every call)
//
//	nth=N     fire exactly on the Nth call to the site (1-based)
//	from=N    fire on the Nth call and every call after it
//	p=F       fire with probability F per call, from a seeded deterministic
//	          stream (seed=S sets the stream seed; default 1)
//	times=N   fire at most N times, then disarm
//
// Multiple sites are separated by ';'. Example:
//
//	YIELD_FAILPOINTS='store.save=error(disk full)@p=0.5,seed=7;job.run=delay(200ms)@nth=2'
//
// Disabled cost: when no failpoint has ever been armed, Inject is a single
// atomic bool load and a branch — no map lookup, no lock, no allocation —
// so hot paths and the obs ≤1.05× overhead gate are untouched. Arming any
// site flips the global flag; per-site resolution then takes a read lock.
package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cnfet/yieldlab/internal/rng"
)

// EnvVar is the environment variable EnableFromEnv reads failpoint specs
// from.
const EnvVar = "YIELD_FAILPOINTS"

// ErrInjected is the sentinel every injected error wraps; callers and
// tests classify injected failures with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("injected fault")

// PanicValue is the value a panic-action failpoint panics with, so
// recovery code (and tests) can tell an injected crash from a genuine bug.
type PanicValue struct {
	// Site names the failpoint that fired.
	Site string
}

func (p PanicValue) String() string { return "injected panic at failpoint " + p.Site }

// armed is the global fast-path flag: false until the first Enable, and
// false again after Reset. Inject returns immediately while it is false.
var armed atomic.Bool

var (
	mu    sync.RWMutex
	sites map[string]*failpoint
)

// failpoint is one armed site.
type failpoint struct {
	site   string
	action action
	msg    string
	delay  time.Duration

	trigger trigger

	calls atomic.Uint64 // calls observed while armed
	fired atomic.Uint64 // calls that fired

	// probability stream state (seeded SplitMix64 walk, one step per call).
	probMu    sync.Mutex
	probState uint64
}

type action int

const (
	actError action = iota
	actDelay
	actPanic
)

// trigger decides which observed calls fire.
type trigger struct {
	nth   uint64  // fire exactly on this call (0 = unset)
	from  uint64  // fire on this call and after (0 = unset)
	prob  float64 // fire with this probability (0 = unset)
	seed  uint64
	times uint64 // at most this many firings (0 = unlimited)
}

// Enable arms one failpoint from its spec string (see the package comment
// for the grammar), replacing any previous arming of the same site.
func Enable(site, spec string) error {
	if site == "" {
		return errors.New("fault: empty site name")
	}
	fp, err := parseSpec(site, spec)
	if err != nil {
		return err
	}
	mu.Lock()
	if sites == nil {
		sites = make(map[string]*failpoint)
	}
	sites[site] = fp
	mu.Unlock()
	armed.Store(true)
	return nil
}

// Disable disarms one site. Other armed sites stay active.
func Disable(site string) {
	mu.Lock()
	delete(sites, site)
	empty := len(sites) == 0
	mu.Unlock()
	if empty {
		armed.Store(false)
	}
}

// Reset disarms every site and restores the zero-cost disabled state.
func Reset() {
	mu.Lock()
	sites = nil
	mu.Unlock()
	armed.Store(false)
}

// EnableSpecs arms failpoints from a ';'-separated "site=spec" list, the
// format of the YIELD_FAILPOINTS environment variable and the yieldserver
// -failpoints flag.
func EnableSpecs(specs string) error {
	for _, part := range strings.Split(specs, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, spec, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("fault: %q is not site=spec", part)
		}
		if err := Enable(strings.TrimSpace(site), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// EnableFromEnv arms failpoints from the YIELD_FAILPOINTS environment
// variable; an unset or empty variable is a no-op. Call it once at process
// start (cmd/yieldserver does) — never from compute paths, which must not
// read the environment.
func EnableFromEnv() error {
	specs := os.Getenv(EnvVar)
	if specs == "" {
		return nil
	}
	return EnableSpecs(specs)
}

// Inject evaluates the named site: nil when the site is disarmed or its
// trigger does not fire; an ErrInjected-wrapped error for error actions; a
// completed sleep and nil for delay actions. Panic actions panic with a
// PanicValue. The disarmed fast path is one atomic load.
func Inject(site string) error {
	if !armed.Load() {
		return nil
	}
	return injectSlow(site, nil)
}

// InjectContext is Inject with a context-aware delay: an armed delay
// action sleeps until the duration elapses or ctx is done, returning an
// injected error in the latter case. Error and panic actions behave as
// Inject.
func InjectContext(ctx context.Context, site string) error {
	if !armed.Load() {
		return nil
	}
	return injectSlow(site, ctx)
}

func injectSlow(site string, ctx context.Context) error {
	mu.RLock()
	fp := sites[site]
	mu.RUnlock()
	if fp == nil {
		return nil
	}
	if !fp.shouldFire() {
		return nil
	}
	fp.fired.Add(1)
	switch fp.action {
	case actDelay:
		if ctx == nil {
			time.Sleep(fp.delay)
			return nil
		}
		t := time.NewTimer(fp.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			// Wrap both sentinels: chaos tests classify by ErrInjected,
			// while error mapping upstream still sees the deadline or
			// cancellation cause.
			return fmt.Errorf("fault %s: delay interrupted: %w (%w)", site, ErrInjected, ctx.Err())
		}
	case actPanic:
		panic(PanicValue{Site: site})
	default:
		if fp.msg != "" {
			return fmt.Errorf("fault %s: %s: %w", site, fp.msg, ErrInjected)
		}
		return fmt.Errorf("fault %s: %w", site, ErrInjected)
	}
}

// shouldFire advances the site's call count and evaluates the trigger.
func (fp *failpoint) shouldFire() bool {
	n := fp.calls.Add(1)
	tr := fp.trigger
	if tr.times > 0 && fp.fired.Load() >= tr.times {
		return false
	}
	switch {
	case tr.nth > 0:
		return n == tr.nth
	case tr.from > 0:
		return n >= tr.from
	case tr.prob > 0:
		// One SplitMix64 step per call: the firing pattern is a pure
		// function of (seed, call index), so chaos runs replay exactly.
		fp.probMu.Lock()
		fp.probState = rng.SplitMix64(fp.probState)
		u := float64(fp.probState>>11) / float64(1<<53)
		fp.probMu.Unlock()
		return u < tr.prob
	default:
		return true
	}
}

// parseSpec parses "<action>[@trigger{,trigger}]".
func parseSpec(site, spec string) (*failpoint, error) {
	actPart, trigPart, hasTrig := strings.Cut(spec, "@")
	fp := &failpoint{site: site}

	name, arg := actPart, ""
	if i := strings.IndexByte(actPart, '('); i >= 0 {
		if !strings.HasSuffix(actPart, ")") {
			return nil, fmt.Errorf("fault: %s: unclosed action argument in %q", site, spec)
		}
		name, arg = actPart[:i], actPart[i+1:len(actPart)-1]
	}
	switch name {
	case "error":
		fp.action = actError
		fp.msg = arg
	case "delay":
		if arg == "" {
			return nil, fmt.Errorf("fault: %s: delay needs a duration", site)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("fault: %s: bad delay %q", site, arg)
		}
		fp.action = actDelay
		fp.delay = d
	case "panic":
		fp.action = actPanic
	default:
		return nil, fmt.Errorf("fault: %s: unknown action %q (have error, delay, panic)", site, name)
	}

	fp.trigger.seed = 1
	if hasTrig {
		for _, kv := range strings.Split(trigPart, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: %s: trigger %q is not key=value", site, kv)
			}
			switch k {
			case "nth", "from", "times":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("fault: %s: %s=%q must be a positive integer", site, k, v)
				}
				switch k {
				case "nth":
					fp.trigger.nth = n
				case "from":
					fp.trigger.from = n
				case "times":
					fp.trigger.times = n
				}
			case "p":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || !(p > 0) || p > 1 {
					return nil, fmt.Errorf("fault: %s: p=%q must be in (0, 1]", site, v)
				}
				fp.trigger.prob = p
			case "seed":
				s, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: %s: seed=%q must be an integer", site, v)
				}
				fp.trigger.seed = s
			default:
				return nil, fmt.Errorf("fault: %s: unknown trigger %q", site, k)
			}
		}
	}
	if fp.trigger.nth > 0 && fp.trigger.from > 0 {
		return nil, fmt.Errorf("fault: %s: nth and from are mutually exclusive", site)
	}
	fp.probState = rng.SplitMix64(fp.trigger.seed)
	return fp, nil
}

// SiteStats reports one armed site's traffic.
type SiteStats struct {
	// Site names the failpoint; Calls counts evaluations while armed and
	// Fired how many of them triggered the action.
	Site  string `json:"site"`
	Calls uint64 `json:"calls"`
	Fired uint64 `json:"fired"`
}

// Stats lists every armed site's counters, sorted by site name. Empty when
// nothing is armed.
func Stats() []SiteStats {
	if !armed.Load() {
		return nil
	}
	mu.RLock()
	out := make([]SiteStats, 0, len(sites))
	for name, fp := range sites {
		out = append(out, SiteStats{Site: name, Calls: fp.calls.Load(), Fired: fp.fired.Load()})
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Enabled reports whether any failpoint is armed.
func Enabled() bool { return armed.Load() }
