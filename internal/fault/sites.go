package fault

// The failpoint catalog: every injection site compiled into the tree, so
// chaos configurations can be written against stable names. DESIGN.md §10
// documents what each site interrupts and which recovery behavior it
// exercises.
const (
	// SiteStoreSave fires inside sweepstore.Store.Save before the record
	// is written: an error action simulates a transient disk-write failure
	// (exercising the save retry loop and Session.LastPersistError).
	SiteStoreSave = "store.save"
	// SiteStoreLoad fires inside sweepstore loads before decoding: an
	// error action simulates unreadable files at warm start (the record is
	// skipped, not quarantined — quarantine is reserved for integrity
	// failures).
	SiteStoreLoad = "store.load"
	// SiteJournalPut fires inside jobstore.Store.Put: an error action
	// simulates a job-journal write failure (the job still runs; the
	// journal degrades, counted in /v1/stats).
	SiteJournalPut = "journal.put"
	// SiteJobRun fires at the start of every job execution: delay
	// simulates slow jobs, error fails them, panic simulates a job crash
	// (recovered by the engine into a failed state — the process stays up).
	SiteJobRun = "job.run"
	// SiteJobResult fires after each checkpointed query-job result: panic
	// here crashes a job mid-sweep with a partial-result prefix already
	// journaled, the exact state a SIGKILL leaves behind.
	SiteJobResult = "job.result"
	// SiteQueryEvaluate fires at the top of Session.Evaluate: delay makes
	// sweeps slow (exercising request deadlines and load shedding), error
	// fails evaluations with a non-request error (exercising the 500
	// envelope path).
	SiteQueryEvaluate = "query.evaluate"
	// SiteHTTPRequest fires in the HTTP observability middleware before
	// the handler runs: error rejects the request at the edge with a 503
	// envelope, delay holds the request open (exercising client timeouts
	// and WriteTimeout).
	SiteHTTPRequest = "http.request"
)
