package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// reset restores the disarmed state around every test.
func reset(t *testing.T) {
	t.Helper()
	Reset()
	t.Cleanup(Reset)
}

func TestDisarmedIsNil(t *testing.T) {
	reset(t)
	if Enabled() {
		t.Fatal("fresh registry reports enabled")
	}
	if err := Inject("store.save"); err != nil {
		t.Fatalf("disarmed Inject = %v", err)
	}
	if got := Stats(); got != nil {
		t.Fatalf("disarmed Stats = %v", got)
	}
}

func TestDisarmedInjectDoesNotAllocate(t *testing.T) {
	reset(t)
	if allocs := testing.AllocsPerRun(100, func() {
		_ = Inject("store.save")
	}); allocs != 0 {
		t.Fatalf("disarmed Inject allocates %g per call", allocs)
	}
}

func TestErrorAction(t *testing.T) {
	reset(t)
	if err := Enable("a", "error(disk full)"); err != nil {
		t.Fatal(err)
	}
	err := Inject("a")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want message", err)
	}
	// Other sites stay dark.
	if err := Inject("b"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestNthTrigger(t *testing.T) {
	reset(t)
	if err := Enable("a", "error@nth=3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Inject("a")
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	st := Stats()
	if len(st) != 1 || st[0].Calls != 5 || st[0].Fired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFromAndTimesTriggers(t *testing.T) {
	reset(t)
	if err := Enable("a", "error@from=2,times=2"); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 6; i++ {
		if Inject("a") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (from=2 capped by times=2)", fired)
	}
}

func TestProbabilityIsDeterministic(t *testing.T) {
	reset(t)
	run := func() []bool {
		if err := Enable("a", "error@p=0.5,seed=42"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("a") != nil
		}
		return out
	}
	first, second := run(), run()
	var fired int
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("call %d differs across re-arms with one seed", i)
		}
		if first[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(first) {
		t.Fatalf("p=0.5 fired %d/%d", fired, len(first))
	}
	// A different seed gives a different pattern.
	if err := Enable("a", "error@p=0.5,seed=43"); err != nil {
		t.Fatal(err)
	}
	other := make([]bool, 64)
	for i := range other {
		other[i] = Inject("a") != nil
	}
	same := true
	for i := range other {
		if other[i] != first[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed=42 and seed=43 produced identical firing patterns")
	}
}

func TestDelayAction(t *testing.T) {
	reset(t)
	if err := Enable("a", "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("a"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 30ms", d)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	reset(t)
	if err := Enable("a", "delay(10s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := InjectContext(ctx, "a")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("interrupted delay err = %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted delay err should carry the context cause, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored the context")
	}
}

func TestPanicAction(t *testing.T) {
	reset(t)
	if err := Enable("a", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		pv, ok := v.(PanicValue)
		if !ok || pv.Site != "a" {
			t.Fatalf("recovered %v, want PanicValue{a}", v)
		}
	}()
	_ = Inject("a")
	t.Fatal("panic action did not panic")
}

func TestEnableSpecsAndDisable(t *testing.T) {
	reset(t)
	if err := EnableSpecs("a=error; b=delay(1ms)@nth=1 ;; c=panic@times=1"); err != nil {
		t.Fatal(err)
	}
	if len(Stats()) != 3 {
		t.Fatalf("stats = %+v, want 3 sites", Stats())
	}
	Disable("a")
	if Inject("a") != nil {
		t.Fatal("disabled site still fires")
	}
	Disable("b")
	Disable("c")
	if Enabled() {
		t.Fatal("registry armed with no sites")
	}
}

func TestEnableFromEnv(t *testing.T) {
	reset(t)
	t.Setenv(EnvVar, "a=error@nth=1")
	if err := EnableFromEnv(); err != nil {
		t.Fatal(err)
	}
	if Inject("a") == nil {
		t.Fatal("env-armed site did not fire")
	}
	t.Setenv(EnvVar, "")
	Reset()
	if err := EnableFromEnv(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty env armed the registry")
	}
}

func TestSpecErrors(t *testing.T) {
	reset(t)
	for _, spec := range []string{
		"",
		"explode",
		"delay",
		"delay(xyz)",
		"error(unclosed",
		"error@nth=0",
		"error@p=2",
		"error@p=0",
		"error@nth=1,from=2",
		"error@bogus=1",
		"error@nth",
	} {
		if err := Enable("a", spec); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
		}
	}
	if err := EnableSpecs("no-equals-sign"); err == nil {
		t.Error("EnableSpecs without '=' accepted")
	}
	if err := Enable("", "error"); err == nil {
		t.Error("empty site accepted")
	}
}
