package renewal

import (
	"fmt"
	"math"

	"github.com/cnfet/yieldlab/internal/dist"
)

// Snapshot is a portable copy of a Model's swept count tables plus the grid
// configuration they were computed under. It is the unit the persistent
// sweep store (internal/sweepstore) serializes: restoring a snapshot into a
// freshly built model skips the arrival sweeps entirely, which is what lets
// a restarted server answer its first pF query without recomputing.
//
// PMFs[i] holds the count PMF at grid index i+1 (index 0 is always the
// zero-count point mass and is not stored). A snapshot only ever transfers
// between models whose grid parameters match bit-exactly, so a restore can
// never change a result.
type Snapshot struct {
	Step     float64
	MaxWidth float64
	TailEps  float64
	Ordinary bool
	ConvMode ConvMode
	SweptTo  int
	PMFs     []dist.PMF
}

// Snapshot captures the model's current swept tables. The returned PMFs
// share mass slices with the model's cache; both sides treat them as
// read-only, so no copy is needed.
func (m *Model) Snapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Snapshot{
		Step:     m.step,
		MaxWidth: m.maxWidth,
		TailEps:  m.tailEps,
		Ordinary: m.ordinary,
		ConvMode: m.convMode,
		SweptTo:  m.sweptTo,
		PMFs:     make([]dist.PMF, m.sweptTo),
	}
	for idx := 1; idx <= m.sweptTo; idx++ {
		pmf, ok := m.cache[idx]
		if !ok {
			// Cannot happen: sweep fills every index up to sweptTo. Guard so
			// a future regression surfaces as a short snapshot, not a panic.
			s.SweptTo = idx - 1
			s.PMFs = s.PMFs[:idx-1]
			break
		}
		s.PMFs[idx-1] = pmf
	}
	return s
}

// Restore installs a snapshot's swept tables into the model. The snapshot's
// grid configuration must match the model's bit-exactly — a snapshot from a
// different grid would silently shift every width, so mismatch is an error,
// not a no-op. Restoring less than the model has already swept is a no-op;
// restoring more extends the swept horizon without any convolution work.
func (m *Model) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("renewal: nil snapshot")
	}
	if err := m.matches(s); err != nil {
		return err
	}
	if s.SweptTo < 0 || s.SweptTo != len(s.PMFs) {
		return fmt.Errorf("renewal: snapshot holds %d PMFs for horizon %d", len(s.PMFs), s.SweptTo)
	}
	if maxIdx := int(math.Round(m.maxWidth / m.step)); s.SweptTo > maxIdx {
		return fmt.Errorf("renewal: snapshot horizon %d beyond grid max %d", s.SweptTo, maxIdx)
	}
	for i, pmf := range s.PMFs {
		if pmf.Len() == 0 {
			return fmt.Errorf("renewal: snapshot PMF at index %d empty", i+1)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.SweptTo <= m.sweptTo {
		return nil
	}
	// Install only indexes beyond the model's own horizon: entries the model
	// already swept are bit-identical (same law, same grid, same kernels), and
	// keeping them avoids churn for callers holding references.
	for idx := m.sweptTo + 1; idx <= s.SweptTo; idx++ {
		m.cache[idx] = s.PMFs[idx-1]
	}
	m.sweptTo = s.SweptTo
	return nil
}

// matches checks the snapshot's grid configuration against the model's,
// comparing floats by exact bits (the same discipline as the sweep-cache
// key).
func (m *Model) matches(s *Snapshot) error {
	switch {
	case math.Float64bits(s.Step) != math.Float64bits(m.step):
		return fmt.Errorf("renewal: snapshot step %g != model step %g", s.Step, m.step)
	case math.Float64bits(s.MaxWidth) != math.Float64bits(m.maxWidth):
		return fmt.Errorf("renewal: snapshot max width %g != model max width %g", s.MaxWidth, m.maxWidth)
	case math.Float64bits(s.TailEps) != math.Float64bits(m.tailEps):
		return fmt.Errorf("renewal: snapshot tail eps %g != model tail eps %g", s.TailEps, m.tailEps)
	case s.Ordinary != m.ordinary:
		return fmt.Errorf("renewal: snapshot initial condition (ordinary=%t) != model (ordinary=%t)", s.Ordinary, m.ordinary)
	case s.ConvMode != m.convMode:
		return fmt.Errorf("renewal: snapshot conv mode %d != model conv mode %d", s.ConvMode, m.convMode)
	}
	return nil
}

// Key returns the law+grid identity string the snapshot's tables belong
// under — the exact key the SweepCache files its model by, so persistent
// stores naming records after it stay collision-consistent with the cache.
func (s *Snapshot) Key(fingerprint string) string {
	return identityKey(fingerprint, s.Step, s.MaxWidth, s.TailEps, s.Ordinary, s.ConvMode)
}

// Options returns the option list that reconstructs a model with this
// snapshot's grid configuration — the bridge the sweep store uses to rebuild
// a cache entry from its serialized form.
func (s *Snapshot) Options() []Option {
	opts := []Option{WithStep(s.Step), WithMaxWidth(s.MaxWidth), WithTailEps(s.TailEps), WithConvMode(s.ConvMode)}
	if s.Ordinary {
		opts = append(opts, Ordinary())
	}
	return opts
}
