package renewal

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cnfet/yieldlab/internal/fft"
)

// ConvMode selects the convolution kernel used by the arrival sweep.
type ConvMode int

const (
	// AutoConv picks per convolution between the blocked direct kernel and
	// FFT convolution based on the calibrated crossover (the default).
	AutoConv ConvMode = iota
	// DirectConv forces the naive direct kernel (the reference path).
	DirectConv
	// BlockedConv forces the register-blocked direct kernel.
	BlockedConv
	// FFTConv forces FFT convolution regardless of support size.
	FFTConv
)

// WithConvMode overrides the sweep's convolution kernel selection. The
// default AutoConv is right for everything except correctness tests and
// calibration benchmarks.
func WithConvMode(mode ConvMode) Option { return func(m *Model) { m.convMode = mode } }

// Crossover model: one direct convolution costs (support cells)·(kernel
// taps) multiply-adds; one FFT convolution of padded size N costs roughly
// N·log2(N) "butterfly units", each fftCostRatio times more expensive than a
// direct multiply-add. The ratio ships with a conservative default measured
// on commodity x86 and can be re-measured on the host with Calibrate.
const defaultFFTCostRatio = 4.0

// blockedMinTaps is the smallest kernel length worth the blocked kernel's
// edge handling; below it the plain direct loop wins.
const blockedMinTaps = 8

var fftCostRatioBits atomic.Uint64

func init() { fftCostRatioBits.Store(math.Float64bits(defaultFFTCostRatio)) }

// fftCostRatio returns the current crossover constant.
func fftCostRatio() float64 { return math.Float64frombits(fftCostRatioBits.Load()) }

// SetFFTCostRatio overrides the crossover constant (cost of one FFT
// butterfly unit in direct multiply-adds). Exposed for tests; most callers
// want Calibrate.
func SetFFTCostRatio(r float64) {
	if r > 0 && !math.IsInf(r, 0) && !math.IsNaN(r) {
		fftCostRatioBits.Store(math.Float64bits(r))
	}
}

// Calibrate times the blocked direct kernel against FFT convolution on a
// sweep-shaped workload and installs the measured crossover ratio, returning
// it. It runs in a few tens of milliseconds and is safe to call
// concurrently with sweeps; benchmarks and long-lived servers can call it
// once at startup for machine-accurate kernel selection.
func Calibrate() float64 {
	const (
		supp = 6144 // d-support cells, mid-sweep shaped
		taps = 1024 // kernel cells
		reps = 3
	)
	d := make([]float64, supp)
	f := make([]float64, taps)
	for i := range d {
		d[i] = 1 / float64(supp)
	}
	for i := range f {
		f[i] = 1 / float64(taps)
	}
	dst := make([]float64, supp+taps)

	directNS := math.MaxFloat64
	for r := 0; r < reps; r++ {
		t0 := time.Now() //yield:allow(determinism) Calibrate measures wall-clock kernel cost by design; it only tunes the FFT/direct crossover, never a result
		for i := range dst {
			dst[i] = 0
		}
		convolveBlocked(dst, d, f, 0, supp)
		if ns := float64(time.Since(t0).Nanoseconds()); ns < directNS { //yield:allow(determinism) timing readback of the calibration stopwatch
			directNS = ns
		}
	}
	directUnit := directNS / (supp * taps)

	n := fft.NextPow2(supp + taps - 1)
	plan := planFor(n)
	spec := make([]complex128, plan.SpectrumLen())
	fs := make([]complex128, plan.SpectrumLen())
	work := make([]complex128, n/2)
	out := make([]float64, n)
	fftNS := math.MaxFloat64
	for r := 0; r < reps; r++ {
		t0 := time.Now() //yield:allow(determinism) Calibrate measures wall-clock kernel cost by design; it only tunes the FFT/direct crossover, never a result
		plan.RealForward(fs, f)
		plan.RealForward(spec, d)
		fft.MulSpectra(spec, spec, fs)
		plan.RealInverse(out, spec, work)
		if ns := float64(time.Since(t0).Nanoseconds()); ns < fftNS { //yield:allow(determinism) timing readback of the calibration stopwatch
			fftNS = ns
		}
	}
	// The sweep transforms d and inverts once per step; the kernel spectrum
	// is cached, so charge 2/3 of the measured three-transform cost.
	fftUnit := fftNS * 2 / 3 / (float64(n) * math.Log2(float64(n)))

	ratio := fftUnit / directUnit
	SetFFTCostRatio(ratio)
	return ratio
}

// planCache shares FFT plans (immutable twiddle tables) across all models.
var planCache sync.Map // int → *fft.Plan

func planFor(n int) *fft.Plan {
	if p, ok := planCache.Load(n); ok {
		return p.(*fft.Plan)
	}
	p, err := fft.NewPlan(n)
	if err != nil {
		panic(err) // n comes from NextPow2: unreachable
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*fft.Plan)
}

// convState carries the per-sweep scratch for kernel dispatch: FFT buffers
// and the kernel spectra cached per padded size. It is created per sweep
// call, so concurrent sweeps never share mutable state.
type convState struct {
	mode  ConvMode
	f     []float64            // pitch kernel
	fSpec map[int][]complex128 // padded size → cached spectrum of f
	spec  []complex128         // d spectrum scratch
	work  []complex128         // inverse-transform scratch
	out   []float64            // full conv output scratch
}

func newConvState(mode ConvMode, f []float64) *convState {
	return &convState{mode: mode, f: f, fSpec: make(map[int][]complex128)}
}

// convolve computes dst = d ⊛ f truncated to len(dst), given that d is zero
// outside [lo, hi). dst is fully overwritten; entries outside the reachable
// output range [lo, min(len(dst), hi+len(f)-1)) are exact zeros.
func (cs *convState) convolve(dst, d []float64, lo, hi int) {
	for i := range dst {
		dst[i] = 0
	}
	n := len(dst)
	if lo >= hi {
		return
	}
	outEnd := hi + len(cs.f) - 1
	if outEnd > n {
		outEnd = n
	}
	mode := cs.mode
	if mode == AutoConv {
		mode = BlockedConv
		taps := len(cs.f)
		if reach := outEnd - lo; reach < taps {
			taps = reach
		}
		directCost := float64(hi-lo) * float64(taps)
		padded := fft.NextPow2(hi - lo + len(cs.f) - 1)
		fftCost := fftCostRatio() * float64(padded) * math.Log2(float64(padded))
		if directCost > fftCost {
			mode = FFTConv
		}
	}
	switch mode {
	case DirectConv:
		convolveFrom(dst, d, cs.f, lo)
	case BlockedConv:
		convolveBlocked(dst, d, cs.f, lo, hi)
	case FFTConv:
		cs.convolveFFT(dst, d, lo, hi, outEnd)
	}
}

// convolveFFT multiplies in the spectral domain. Roundoff can leave tiny
// negative values where the true convolution is ~0; they are clamped so the
// sweep's probability invariants survive.
func (cs *convState) convolveFFT(dst, d []float64, lo, hi, outEnd int) {
	padded := fft.NextPow2(hi - lo + len(cs.f) - 1)
	plan := planFor(padded)
	fs, ok := cs.fSpec[padded]
	if !ok {
		fs = make([]complex128, plan.SpectrumLen())
		plan.RealForward(fs, cs.f)
		cs.fSpec[padded] = fs
	}
	if cap(cs.spec) < plan.SpectrumLen() {
		cs.spec = make([]complex128, plan.SpectrumLen())
	}
	spec := cs.spec[:plan.SpectrumLen()]
	if cap(cs.work) < padded/2 {
		cs.work = make([]complex128, padded/2)
	}
	if cap(cs.out) < padded {
		cs.out = make([]float64, padded)
	}
	out := cs.out[:padded]
	plan.RealForward(spec, d[lo:hi])
	fft.MulSpectra(spec, spec, fs)
	plan.RealInverse(out, spec, cs.work[:padded/2])
	total := 0.0
	for i, v := range out[:outEnd-lo] {
		if v > 0 {
			dst[lo+i] = v
			total += v
		}
	}
	// Denoise the tails: spectral roundoff leaves ~1e-16·mass of positive
	// noise smeared across the true-zero tail cells, which would otherwise
	// defeat the sweep's support trimming (and with it the shrinking FFT
	// sizes). Tail mass below 1e-18 of the result's total is
	// indistinguishable from that noise — the kernel's intrinsic error is
	// ~1e-15 of the mass — so zero it from both ends.
	floor := 1e-18 * total
	var acc float64
	i := lo
	for ; i < outEnd; i++ {
		acc += dst[i]
		if acc > floor {
			break
		}
		dst[i] = 0
	}
	acc = 0
	for j := outEnd - 1; j > i; j-- {
		acc += dst[j]
		if acc > floor {
			break
		}
		dst[j] = 0
	}
}

// convolveBlocked is the register-blocked direct kernel: four source cells
// per pass share each loaded output cell, quartering the dst load/store
// traffic of convolveFrom. Results match convolveFrom up to float addition
// order. d must be zero outside [lo, hi); dst must be pre-zeroed.
func convolveBlocked(dst, d, f []float64, lo, hi int) {
	n := len(dst)
	nf := len(f)
	if hi > n {
		hi = n
	}
	if nf < blockedMinTaps {
		convolveFrom(dst, d, f, lo)
		return
	}
	j := lo
	for ; j+4 <= hi; j += 4 {
		d0, d1, d2, d3 := d[j], d[j+1], d[j+2], d[j+3]
		if d0 == 0 && d1 == 0 && d2 == 0 && d3 == 0 {
			continue
		}
		end := j + nf + 3 // exclusive bound of the quad's reachable outputs
		if end > n {
			end = n
		}
		// Head cells where the younger taps are still out of range.
		if j < end {
			dst[j] += d0 * f[0]
		}
		if j+1 < end {
			dst[j+1] += d0*f[1] + d1*f[0]
		}
		if j+2 < end {
			dst[j+2] += d0*f[2] + d1*f[1] + d2*f[0]
		}
		// Main run: all four taps in range. The four kernel windows are
		// pre-sliced to the output length so the loop carries no bounds
		// checks.
		mEnd := j + nf
		if mEnd > end {
			mEnd = end
		}
		if mEnd > j+3 {
			out := dst[j+3 : mEnd]
			f0 := f[3 : 3+len(out)]
			f1 := f[2 : 2+len(out)]
			f2 := f[1 : 1+len(out)]
			f3 := f[0:len(out)]
			for i := range out {
				out[i] += d0*f0[i] + d1*f1[i] + d2*f2[i] + d3*f3[i]
			}
		}
		// Tail cells where the older taps have run off the kernel.
		if x := j + nf; x < end {
			dst[x] += d1*f[nf-1] + d2*f[nf-2] + d3*f[nf-3]
		}
		if x := j + nf + 1; x < end {
			dst[x] += d2*f[nf-1] + d3*f[nf-2]
		}
		if x := j + nf + 2; x < end {
			dst[x] += d3 * f[nf-1]
		}
	}
	// Scalar remainder.
	for ; j < hi; j++ {
		dv := d[j]
		if dv == 0 {
			continue
		}
		lim := n - j
		if lim > nf {
			lim = nf
		}
		df := dst[j : j+lim]
		ff := f[:lim]
		for i := range ff {
			df[i] += dv * ff[i]
		}
	}
}
