package renewal

import (
	"sync"
	"testing"

	"github.com/cnfet/yieldlab/internal/dist"
)

func TestSweepCacheSharesByLawAndGrid(t *testing.T) {
	c := NewSweepCache()
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Model(tn, WithStep(0.1), WithMaxWidth(60))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Model(tn, WithStep(0.1), WithMaxWidth(60))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same law+grid should share one model")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = (%d, %d), want (1, 1)", st.Hits, st.Misses)
	}
	// Any differing knob must miss.
	diff := []struct {
		name string
		opts []Option
	}{
		{"step", []Option{WithStep(0.05), WithMaxWidth(60)}},
		{"maxWidth", []Option{WithStep(0.1), WithMaxWidth(80)}},
		{"tailEps", []Option{WithStep(0.1), WithMaxWidth(60), WithTailEps(1e-12)}},
		{"ordinary", []Option{WithStep(0.1), WithMaxWidth(60), Ordinary()}},
		{"convMode", []Option{WithStep(0.1), WithMaxWidth(60), WithConvMode(DirectConv)}},
	}
	for _, tc := range diff {
		m, err := c.Model(tn, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if m == a {
			t.Errorf("%s: differing option must not share a model", tc.name)
		}
	}
	if c.Len() != 1+len(diff) {
		t.Errorf("Len = %d, want %d", c.Len(), 1+len(diff))
	}
	// A different law must miss even on the same grid.
	other, err := c.Model(dist.Exponential{Rate: 0.25}, WithStep(0.1), WithMaxWidth(60))
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Error("different law must not share a model")
	}
}

func TestSweepCacheNilAndUnfingerprinted(t *testing.T) {
	var nilCache *SweepCache
	m, err := nilCache.Model(dist.Exponential{Rate: 0.25}, WithStep(0.1), WithMaxWidth(40))
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil cache should degrade to New")
	}
	if nilCache.Len() != 0 {
		t.Error("nil cache Len should be 0")
	}
	if st := nilCache.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Error("nil cache stats should be zero")
	}

	c := NewSweepCache()
	u1, err := c.Model(unkeyedLaw{dist.Exponential{Rate: 0.25}}, WithStep(0.1), WithMaxWidth(40))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := c.Model(unkeyedLaw{dist.Exponential{Rate: 0.25}}, WithStep(0.1), WithMaxWidth(40))
	if err != nil {
		t.Fatal(err)
	}
	if u1 == u2 {
		t.Error("unfingerprinted laws must get private models")
	}
	if c.Len() != 0 {
		t.Error("unfingerprinted models must not be retained")
	}
	if _, err := c.Model(nil); err == nil {
		t.Error("nil law should error")
	}
	if _, err := c.Model(dist.Exponential{Rate: 0.25}, WithStep(-1)); err == nil {
		t.Error("invalid option should error")
	}
}

// unkeyedLaw hides the Fingerprint method of the embedded law.
type unkeyedLaw struct{ dist.Exponential }

func (unkeyedLaw) Fingerprint() {} // wrong signature: does not satisfy Fingerprinter

// Regression required by the PR acceptance: for all three paper corners the
// cached sweep returns PMFs identical to a fresh uncached sweep. The corners
// share one pitch law, so the cache serves all three from a single table;
// identical here means bitwise equal, since a hit returns the same table.
func TestSweepCacheMatchesUncachedForPaperCorners(t *testing.T) {
	// The calibrated pitch law (see device.CalibratedPitch): post-truncation
	// mean 4 nm, parent sigma 9.2, truncated at 0.
	tn, err := dist.TruncNormalWithMean(4, 2.3*4, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSweepCache()
	// pf per corner: pm + (1-pm)·pRs.
	corners := []float64{0.33 + 0.67*0.30, 0.33, 0}
	widths := []float64{55, 103, 155}
	fresh, err := New(tn, WithStep(0.05), WithMaxWidth(200))
	if err != nil {
		t.Fatal(err)
	}
	for ci, pf := range corners {
		shared, err := c.Model(tn, WithStep(0.05), WithMaxWidth(200))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range widths {
			a, err := shared.CountPMF(w)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.CountPMF(w)
			if err != nil {
				t.Fatal(err)
			}
			if a.Len() != b.Len() {
				t.Fatalf("corner %d w=%g: support %d vs %d", ci, w, a.Len(), b.Len())
			}
			for k := 0; k < a.Len(); k++ {
				if a.Prob(k) != b.Prob(k) {
					t.Fatalf("corner %d w=%g: P(N=%d) cached %g uncached %g",
						ci, w, k, a.Prob(k), b.Prob(k))
				}
			}
			if got, want := a.PGF(pf), b.PGF(pf); got != want {
				t.Fatalf("corner %d w=%g: pF cached %g uncached %g", ci, w, got, want)
			}
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != uint64(len(corners)-1) {
		t.Errorf("stats = (%d, %d): the three corners should share one sweep", st.Hits, st.Misses)
	}
}

func TestSweepCacheConcurrent(t *testing.T) {
	c := NewSweepCache()
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	models := make([]*Model, 16)
	for g := range models {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := c.Model(tn, WithStep(0.1), WithMaxWidth(80))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := m.CountPMF(40 + float64(g)); err != nil {
				t.Error(err)
				return
			}
			models[g] = m
		}(g)
	}
	wg.Wait()
	for _, m := range models[1:] {
		if m != models[0] {
			t.Fatal("concurrent callers should share one model")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}
