// Package renewal computes the probability distribution of the number of
// CNTs falling inside a CNFET channel of width W, when CNT positions along
// the width axis form a renewal process with a given inter-CNT pitch
// distribution. This is the CNT density-variation model the paper inherits
// from [Zhang 09a]: the count PMF Prob{N(W)} feeds Eq. 2.2,
//
//	pF(W) = Σ_k Prob{N(W)=k} · pf^k ,
//
// which is the probability generating function of N(W) evaluated at the
// per-CNT failure probability pf.
//
// The engine discretizes the pitch distribution onto a uniform grid and
// propagates the k-th arrival-position distribution by exact discrete
// convolution, so a single sweep yields P{N(W) ≥ k} for every width on the
// grid simultaneously. Two initial conditions are supported:
//
//   - Equilibrium (default): the window is dropped at a position independent
//     of the CNT process, so the first CNT follows the stationary forward
//     recurrence distribution (1-F(x))/μ. In equilibrium E[N(W)] = W/μ holds
//     exactly, which the tests assert.
//   - Ordinary: a CNT sits just before the window and the first in-window
//     CNT is a full pitch away. Used as an ablation.
//
//yield:compute
package renewal

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/numeric"
)

// Defaults for Model construction.
const (
	DefaultStep     = 0.05 // nm grid resolution
	DefaultMaxWidth = 400  // nm largest supported window
	DefaultTailEps  = 1e-15
)

// Model computes CNT count distributions for one pitch distribution.
// It is safe for concurrent use.
type Model struct {
	spacing  dist.Continuous
	step     float64
	maxWidth float64
	tailEps  float64
	ordinary bool

	convMode ConvMode

	fMass []float64 // pitch mass at grid points j·h
	gMass []float64 // first-arrival mass at grid points j·h

	mu        sync.Mutex
	sweepDone *sync.Cond // signalled when an in-flight sweep finishes
	sweeping  bool       // an arrival sweep is running outside the lock
	sweeps    uint64     // arrival sweeps actually computed (not deduplicated)
	cache     map[int]dist.PMF
	sweptTo   int // every grid index ≤ sweptTo is cached
}

// Option configures a Model.
type Option func(*Model)

// WithStep sets the grid resolution in nm (default 0.05).
func WithStep(h float64) Option { return func(m *Model) { m.step = h } }

// WithMaxWidth sets the largest queryable window width in nm (default 400).
func WithMaxWidth(w float64) Option { return func(m *Model) { m.maxWidth = w } }

// WithTailEps sets the truncation threshold for the arrival sweep.
func WithTailEps(eps float64) Option { return func(m *Model) { m.tailEps = eps } }

// Ordinary switches to the ordinary renewal initial condition (a CNT at the
// window edge, first in-window CNT one full pitch away).
func Ordinary() Option { return func(m *Model) { m.ordinary = true } }

// New builds a count model for the given pitch distribution.
func New(spacing dist.Continuous, opts ...Option) (*Model, error) {
	m, err := newConfigured(spacing, opts...)
	if err != nil {
		return nil, err
	}
	m.finish()
	return m, nil
}

// newConfigured validates the configuration without paying for the grid
// discretization, so SweepCache can compute a cache key first.
func newConfigured(spacing dist.Continuous, opts ...Option) (*Model, error) {
	if spacing == nil {
		return nil, errors.New("renewal: nil spacing distribution")
	}
	m := &Model{
		spacing:  spacing,
		step:     DefaultStep,
		maxWidth: DefaultMaxWidth,
		tailEps:  DefaultTailEps,
		cache:    make(map[int]dist.PMF),
	}
	m.sweepDone = sync.NewCond(&m.mu)
	for _, o := range opts {
		o(m)
	}
	if !(m.step > 0) {
		return nil, fmt.Errorf("renewal: step must be positive, got %g", m.step)
	}
	if !(m.maxWidth > m.step) {
		return nil, fmt.Errorf("renewal: max width %g too small for step %g", m.maxWidth, m.step)
	}
	mean := spacing.Mean()
	if !(mean > 0) || math.IsInf(mean, 0) || math.IsNaN(mean) {
		return nil, fmt.Errorf("renewal: pitch mean must be positive and finite, got %g", mean)
	}
	if mean < 4*m.step {
		return nil, fmt.Errorf("renewal: grid step %g too coarse for mean pitch %g", m.step, mean)
	}
	return m, nil
}

// finish bins the distributions onto the grid and seeds the width cache.
func (m *Model) finish() {
	m.discretize()
	// Index 0 (sub-grid window) always holds zero CNTs.
	m.cache[0] = mustPoint(0)
}

// Spacing returns the pitch distribution the model was built with.
func (m *Model) Spacing() dist.Continuous { return m.spacing }

// Step returns the grid resolution.
func (m *Model) Step() float64 { return m.step }

// MaxWidth returns the largest queryable width.
func (m *Model) MaxWidth() float64 { return m.maxWidth }

// discretize bins the pitch distribution and the first-arrival distribution
// onto the grid. Mass for grid point j represents values in
// [(j-1/2)h, (j+1/2)h), so convolution of grid masses is drift-free.
func (m *Model) discretize() {
	h := m.step
	mean := m.spacing.Mean()
	sd := m.spacing.StdDev()
	// Support cap: beyond mean + 12σ (plus a floor for near-deterministic
	// distributions) the pitch mass is negligible.
	hi := mean + 12*sd + 4*h
	if q := quantileOrNaN(m.spacing, 1-1e-13); !math.IsNaN(q) && q > hi {
		hi = q + 4*h
	}
	// Pitches beyond the largest queryable window terminate every count, so
	// the support can be capped there with the residual tail lumped into the
	// final bin. This also bounds memory for heavy-tailed pitch laws.
	cap := m.maxWidth + 4*h
	if hi > cap {
		hi = cap
	}
	nf := int(math.Ceil(hi/h)) + 1
	m.fMass = make([]float64, nf)
	prev := m.spacing.CDF(-0.5 * h)
	for j := 0; j < nf; j++ {
		cur := m.spacing.CDF((float64(j) + 0.5) * h)
		m.fMass[j] = math.Max(cur-prev, 0)
		prev = cur
	}
	// Lump the (usually negligible) truncated upper tail into the last bin;
	// those pitches land beyond every window, which the convolution
	// truncation already treats correctly.
	m.fMass[nf-1] += math.Max(1-prev, 0)

	if m.ordinary {
		m.gMass = m.fMass
		return
	}
	// Equilibrium first-arrival mass per cell:
	// gMass[j] = (G((j+1/2)h) - G((j-1/2)h)) with G(x) = (1/μ)∫₀ˣ(1-F).
	// Use the exact closed form when the distribution provides one; fall
	// back to per-cell Simpson with a monotone clamp so the total never
	// exceeds 1.
	ng := nf
	m.gMass = make([]float64, ng)
	si, exact := m.spacing.(dist.SurvivalIntegrator)
	surv := func(x float64) float64 {
		if x < 0 {
			return 1
		}
		return 1 - m.spacing.CDF(x)
	}
	prevG := 0.0
	total := 0.0
	for j := 0; j < ng; j++ {
		b := (float64(j) + 0.5) * h
		var mass float64
		if exact {
			g := si.IntegratedSurvival(b) / mean
			mass = g - prevG
			prevG = g
		} else {
			a := math.Max(b-h, 0)
			mass = numeric.Simpson(surv, a, b, 8) / mean
		}
		if mass < 0 {
			mass = 0
		}
		if total+mass > 1 {
			mass = 1 - total
		}
		m.gMass[j] = mass
		total += mass
	}
	// Deliberately not renormalized: first-arrival mass beyond the support
	// cap corresponds to windows containing zero CNTs, which the truncated
	// convolution already accounts for.
}

func quantileOrNaN(d dist.Continuous, p float64) (q float64) {
	defer func() {
		if recover() != nil {
			q = math.NaN()
		}
	}()
	return d.Quantile(p)
}

// gridIndex quantizes a width onto the grid.
func (m *Model) gridIndex(w float64) (int, error) {
	if !(w > 0) {
		return 0, fmt.Errorf("renewal: width must be positive, got %g", w)
	}
	if w > m.maxWidth {
		return 0, fmt.Errorf("renewal: width %g exceeds model max %g", w, m.maxWidth)
	}
	return int(math.Round(w / m.step)), nil
}

// CountPMF returns the PMF of the CNT count in a window of width w (nm).
// Results are cached per grid-quantized width.
func (m *Model) CountPMF(w float64) (dist.PMF, error) {
	idx, err := m.gridIndex(w)
	if err != nil {
		return dist.PMF{}, err
	}
	m.mu.Lock()
	if pmf, ok := m.cache[idx]; ok {
		m.mu.Unlock()
		return pmf, nil
	}
	m.mu.Unlock()
	pmfs, err := m.CountPMFs([]float64{w})
	if err != nil {
		return dist.PMF{}, err
	}
	return pmfs[0], nil
}

// CountPMFs computes count PMFs for several widths in a single arrival
// sweep, which is far cheaper than separate CountPMF calls for curve
// generation. The result order matches ws.
func (m *Model) CountPMFs(ws []float64) ([]dist.PMF, error) {
	idxs := make([]int, len(ws))
	maxIdx := 0
	m.mu.Lock()
	swept := m.sweptTo
	m.mu.Unlock()
	for i, w := range ws {
		idx, err := m.gridIndex(w)
		if err != nil {
			return nil, err
		}
		idxs[i] = idx
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	if maxIdx > swept {
		if err := m.sweep(maxIdx); err != nil {
			return nil, err
		}
	}
	out := make([]dist.PMF, len(ws))
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, idx := range idxs {
		pmf, ok := m.cache[idx]
		if !ok {
			return nil, fmt.Errorf("renewal: internal: missing cache for index %d", idx)
		}
		out[i] = pmf
	}
	return out, nil
}

// sweep runs the arrival-position convolution once and caches the count PMF
// for every index of the full grid, so every later query on this model is
// free. A sweep costs one discrete convolution per arrival order k —
// dispatched per step between the direct, blocked and FFT kernels (see
// conv.go) — and the per-k prefix sum that serves all indexes at once is
// what makes whole-curve generation cheap.
//
// The horizon is deliberately canonical — always the whole grid, never just
// the requested index. Kernel dispatch and FFT roundoff depend on the sweep
// length, so lazily grown tables would make a cached PMF depend on which
// query happened to be swept first (and, under concurrent requests, on
// goroutine scheduling). One fixed horizon makes every PMF a pure function
// of the model configuration — the property behind the sweep cache's "a hit
// can never change a result" contract, the persistent store's snapshots,
// and the job journal's byte-identical crash resumption.
//
// Concurrent sweeps of one model are deduplicated singleflight-style: while
// one goroutine computes, every other request waits on its result instead
// of redoing the convolution. Sweeps() counts the sweeps actually computed,
// which is what lets tests and the server's /v1/stats prove that a warmed
// cache answered without recomputation.
func (m *Model) sweep(maxIdx int) error {
	if maxIdx == 0 {
		return nil
	}
	m.mu.Lock()
	for {
		if m.sweptTo >= maxIdx {
			m.mu.Unlock()
			return nil
		}
		if !m.sweeping {
			break
		}
		m.sweepDone.Wait()
	}
	m.sweeping = true
	m.sweeps++
	m.mu.Unlock()

	err := m.runSweep(m.fullHorizon())

	m.mu.Lock()
	m.sweeping = false
	m.sweepDone.Broadcast()
	m.mu.Unlock()
	return err
}

// fullHorizon is the grid index of the model's maximum width — the one
// canonical sweep length.
func (m *Model) fullHorizon() int {
	return int(math.Round(m.maxWidth / m.step))
}

// Sweeps returns how many arrival sweeps this model has actually computed.
// Deduplicated concurrent requests and cache-served queries do not count.
func (m *Model) Sweeps() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweeps
}

// runSweep performs the convolution work for one claimed sweep.
func (m *Model) runSweep(maxIdx int) error {
	n := maxIdx
	// rows[k-1][j] = P(T_k < (j+1)·h) = P(N((j+1)·h) ≥ k): one prefix-sum
	// row per arrival order. Row-major writes keep the hot loop streaming;
	// the per-width assembly below reads columns once at the end.
	rows := make([][]float64, 0, 64)

	// d = distribution of the k-th CNT position, on grid cells [0, n).
	// Positions ≥ the largest window edge never contribute, so the vector is
	// truncated at n. The support window [lo, hi) tracks where d is nonzero:
	// lo advances as the numerically dead low tail builds up with k, hi grows
	// by one kernel length per convolution until it hits the truncation.
	d := make([]float64, n)
	copy(d, m.gMass[:min(len(m.gMass), n)])
	next := make([]float64, n)
	lo := 0
	hi := min(len(m.gMass), n)
	// scale is the exact power-of-two factor taken out of d: true mass =
	// scale·Σd. Rescaling keeps d's entries O(1) however deep the tail
	// decays, so the FFT kernel's roundoff — relative to the vector norm,
	// not to individual entries — shrinks along with the remaining mass and
	// the tail convergence check below stays trustworthy.
	scale := 1.0
	cs := newConvState(m.convMode, m.fMass)
	const trimEps = 1e-25
	const rescaleBelow = 0x1p-30

	const hardCap = 1 << 14
	for k := 1; k <= hardCap; k++ {
		// One prefix-sum pass serves every index:
		// P(T_k < idx·h) = Σ_{j<idx} d[j].
		row := make([]float64, n)
		var running float64
		for j := lo; j < n; j++ {
			running += d[j]
			row[j] = scale * running
		}
		rows = append(rows, row)
		// row[j] stores P(T_k < (j+1)·h); window index idx reads slot idx-1.
		// The final running value is the widest window's tail, which bounds
		// every other window's, so it alone decides convergence.
		if scale*running < m.tailEps {
			break
		}
		if k == hardCap {
			return fmt.Errorf("renewal: arrival sweep did not converge within %d terms", hardCap)
		}
		cs.convolve(next, d, lo, hi)
		d, next = next, d
		hi = min(n, hi+len(m.fMass)-1)
		// Trim the numerically dead tails on both sides: mass below lo (or
		// above hi) is negligible and cannot affect any window by more than
		// trimEps·k. The high trim matters early, when the structural
		// support growth of one kernel length per step far outruns the true
		// ~10σ√k upper tail, and it is what keeps the FFT padding small.
		var acc float64
		for lo < n-1 {
			acc += d[lo]
			if scale*acc > trimEps {
				break
			}
			d[lo] = 0
			lo++
		}
		acc = 0
		for hi > lo+1 {
			acc += d[hi-1]
			if scale*acc > trimEps {
				break
			}
			d[hi-1] = 0
			hi--
		}
		if running > 0 && running < rescaleBelow {
			// Pull the decayed mass back to O(1) by an exact power of two.
			exp := math.Ilogb(running)
			factor := math.Ldexp(1, -exp)
			for j := lo; j < hi; j++ {
				d[j] *= factor
			}
			scale = math.Ldexp(scale, exp)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	ge := make([]float64, len(rows))
	for j := 0; j < maxIdx; j++ {
		idx := j + 1
		if _, ok := m.cache[idx]; ok && idx <= m.sweptTo {
			continue
		}
		for k := range rows {
			ge[k] = rows[k][j]
		}
		pmf, err := assemblePMF(ge, m.tailEps)
		if err != nil {
			return fmt.Errorf("renewal: width index %d: %w", idx, err)
		}
		m.cache[idx] = pmf
	}
	if maxIdx > m.sweptTo {
		m.sweptTo = maxIdx
	}
	return nil
}

// assemblePMF converts the tail sequence ge[k-1] = P(N ≥ k), k = 1.., into a
// PMF over counts 0..len(ge). Trailing counts whose tail probability is
// below tailEps are trimmed so the support does not depend on how long the
// sweep ran for other (wider) query widths in the same batch.
func assemblePMF(ge []float64, tailEps float64) (dist.PMF, error) {
	cut := len(ge)
	for cut > 0 && ge[cut-1] < tailEps {
		cut--
	}
	ge = ge[:cut]
	p := make([]float64, len(ge)+1)
	prev := 1.0
	for k, g := range ge {
		v := prev - g
		if v < 0 {
			if v < -1e-9 {
				return dist.PMF{}, fmt.Errorf("negative mass %g at count %d", v, k)
			}
			v = 0
		}
		p[k] = v
		prev = g
	}
	p[len(ge)] = math.Max(prev, 0)
	return dist.NewPMF(p)
}

// convolveFrom computes dst = (d ⊛ f) truncated to len(dst) = len(d),
// skipping source entries below lo (known-zero trimmed region).
func convolveFrom(dst, d, f []float64, lo int) {
	for i := range dst {
		dst[i] = 0
	}
	n := len(dst)
	for j := lo; j < n; j++ {
		dv := d[j]
		if dv == 0 {
			continue
		}
		lim := n - j
		if lim > len(f) {
			lim = len(f)
		}
		df := dst[j : j+lim]
		ff := f[:lim]
		for i := range ff {
			df[i] += dv * ff[i]
		}
	}
}

func mustPoint(k int) dist.PMF {
	p, err := dist.PointPMF(k)
	if err != nil {
		panic(err)
	}
	return p
}
