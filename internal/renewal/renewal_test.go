package renewal

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/stat"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil spacing")
	}
	if _, err := New(dist.Exponential{Rate: 1}, WithStep(-1)); err == nil {
		t.Error("negative step")
	}
	if _, err := New(dist.Exponential{Rate: 1}, WithStep(10), WithMaxWidth(5)); err == nil {
		t.Error("max width below step")
	}
	if _, err := New(dist.Exponential{Rate: 1}, WithStep(0.5)); err == nil {
		t.Error("step too coarse for mean 1")
	}
}

func TestWidthValidation(t *testing.T) {
	m, err := New(dist.Exponential{Rate: 0.25}, WithStep(0.1), WithMaxWidth(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CountPMF(-1); err == nil {
		t.Error("negative width")
	}
	if _, err := m.CountPMF(0); err == nil {
		t.Error("zero width")
	}
	if _, err := m.CountPMF(51); err == nil {
		t.Error("width above max")
	}
}

// Exponential spacing + equilibrium start = Poisson process: the count in a
// window of width W is exactly Poisson(W/μ).
func TestExponentialGivesPoisson(t *testing.T) {
	mu := 4.0
	m, err := New(dist.Exponential{Rate: 1 / mu}, WithStep(0.02), WithMaxWidth(80))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{8, 20, 60} {
		pmf, err := m.CountPMF(w)
		if err != nil {
			t.Fatal(err)
		}
		lambda := w / mu
		poi, _ := dist.PoissonPMF(lambda, 1e-16)
		for k := 0; k < 3*int(lambda)+10; k++ {
			want := poi.Prob(k)
			got := pmf.Prob(k)
			if math.Abs(got-want) > 2e-3*math.Max(want, 1e-3) && math.Abs(got-want) > 5e-4 {
				t.Errorf("W=%v: P(N=%d) = %.6g want %.6g", w, k, got, want)
			}
		}
		// PGF cross-check: Poisson PGF is exp(λ(z-1)).
		for _, z := range []float64{0.2, 0.531, 0.9} {
			want := math.Exp(lambda * (z - 1))
			if got := pmf.PGF(z); math.Abs(got-want)/want > 0.02 {
				t.Errorf("W=%v PGF(%v) = %.6g want %.6g", w, z, got, want)
			}
		}
	}
}

// Deterministic pitch S: in equilibrium the count is ⌊W/S⌋ or ⌊W/S⌋+1 with
// P(+1) = frac(W/S), and E[N] = W/S exactly.
func TestDeterministicPitch(t *testing.T) {
	s := 4.0
	m, err := New(dist.Deterministic{V: s}, WithStep(0.05), WithMaxWidth(200))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		w    float64
		base int
		pUp  float64
	}{
		{10, 2, 0.5},
		{12, 3, 0.0},
		{13, 3, 0.25},
		{155, 38, 0.75},
	} {
		pmf, err := m.CountPMF(tc.w)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(pmf.Mean(), tc.w/s, 0.02) {
			t.Errorf("W=%v mean %v want %v", tc.w, pmf.Mean(), tc.w/s)
		}
		pBase := pmf.Prob(tc.base)
		pUp := pmf.Prob(tc.base + 1)
		if !almost(pBase, 1-tc.pUp, 0.03) || !almost(pUp, tc.pUp, 0.03) {
			t.Errorf("W=%v: P(%d)=%v P(%d)=%v want %v/%v",
				tc.w, tc.base, pBase, tc.base+1, pUp, 1-tc.pUp, tc.pUp)
		}
	}
}

// Equilibrium renewal theory: E[N(W)] = W/μ exactly, for any pitch law.
func TestEquilibriumMeanExact(t *testing.T) {
	tn, err := dist.TruncNormalWithMean(4, 3.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tn, WithStep(0.05), WithMaxWidth(200))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{10, 40, 103, 155} {
		pmf, err := m.CountPMF(w)
		if err != nil {
			t.Fatal(err)
		}
		if got := pmf.Mean(); !almost(got, w/4, 0.02*w/4+0.02) {
			t.Errorf("W=%v: E[N] = %v want %v", w, got, w/4)
		}
		if !almost(pmf.TotalMass(), 1, 1e-9) {
			t.Errorf("W=%v: mass %v", w, pmf.TotalMass())
		}
	}
}

// The ordinary process undercounts relative to equilibrium for DHR-ish laws;
// at minimum it must differ and still normalize.
func TestOrdinaryVsEquilibrium(t *testing.T) {
	tn, _ := dist.TruncNormalWithMean(4, 3.0, 1)
	eq, err := New(tn, WithStep(0.05), WithMaxWidth(60))
	if err != nil {
		t.Fatal(err)
	}
	or, err := New(tn, WithStep(0.05), WithMaxWidth(60), Ordinary())
	if err != nil {
		t.Fatal(err)
	}
	pe, _ := eq.CountPMF(40)
	po, _ := or.CountPMF(40)
	if !almost(po.TotalMass(), 1, 1e-9) {
		t.Fatalf("ordinary mass: %v", po.TotalMass())
	}
	if almost(pe.Prob(0), po.Prob(0), 1e-12) && almost(pe.Mean(), po.Mean(), 1e-12) {
		t.Error("ordinary and equilibrium should differ for non-exponential pitch")
	}
	// For the exponential law they must coincide (memorylessness).
	ee, _ := New(dist.Exponential{Rate: 0.25}, WithStep(0.05), WithMaxWidth(60))
	eo, _ := New(dist.Exponential{Rate: 0.25}, WithStep(0.05), WithMaxWidth(60), Ordinary())
	a, _ := ee.CountPMF(40)
	b, _ := eo.CountPMF(40)
	for k := 0; k < 25; k++ {
		if !almost(a.Prob(k), b.Prob(k), 1e-3) {
			t.Errorf("memoryless mismatch at %d: %v vs %v", k, a.Prob(k), b.Prob(k))
		}
	}
}

// Monte Carlo cross-check: simulate the renewal process directly and compare
// the empirical count distribution with the analytic PMF.
func TestCountPMFMatchesSimulation(t *testing.T) {
	tn, err := dist.TruncNormalWithMean(4, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tn, WithStep(0.05), WithMaxWidth(80))
	if err != nil {
		t.Fatal(err)
	}
	const w = 30.0
	pmf, err := m.CountPMF(w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	const trials = 60_000
	counts := map[int]int{}
	var welford stat.Welford
	for i := 0; i < trials; i++ {
		// Equilibrium start: drop the window far from the origin of a long
		// simulated track (burn-in of 100 pitches ≈ stationarity).
		x := 0.0
		for j := 0; j < 100; j++ {
			x += tn.Sample(r)
		}
		// Window starts uniformly inside the current pitch interval: walk to
		// the first point beyond a uniformly chosen origin.
		origin := x + r.Float64()*20
		for x < origin {
			x += tn.Sample(r)
		}
		n := 0
		for x < origin+w {
			n++
			x += tn.Sample(r)
		}
		counts[n]++
		welford.Add(float64(n))
	}
	if !almost(welford.Mean(), pmf.Mean(), 0.05) {
		t.Errorf("MC mean %v vs analytic %v", welford.Mean(), pmf.Mean())
	}
	for k := 0; k < 16; k++ {
		got := float64(counts[k]) / trials
		want := pmf.Prob(k)
		if math.Abs(got-want) > 0.012 {
			t.Errorf("P(N=%d): MC %.4f vs analytic %.4f", k, got, want)
		}
	}
}

func TestCountPMFsBatchedMatchesSingle(t *testing.T) {
	tn, _ := dist.TruncNormalWithMean(4, 3, 1)
	a, _ := New(tn, WithStep(0.1), WithMaxWidth(120))
	b, _ := New(tn, WithStep(0.1), WithMaxWidth(120))
	ws := []float64{10, 55, 110}
	batch, err := a.CountPMFs(ws)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		single, err := b.CountPMF(w)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Len() != single.Len() {
			t.Fatalf("W=%v: support %d vs %d", w, batch[i].Len(), single.Len())
		}
		for k := 0; k < single.Len(); k++ {
			if !almost(batch[i].Prob(k), single.Prob(k), 1e-12) {
				t.Fatalf("W=%v: P(N=%d) batch %v single %v", w, k, batch[i].Prob(k), single.Prob(k))
			}
		}
	}
}

func TestCacheStability(t *testing.T) {
	tn, _ := dist.TruncNormalWithMean(4, 3, 1)
	m, _ := New(tn, WithStep(0.1), WithMaxWidth(60))
	p1, err := m.CountPMF(30)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.CountPMF(30)
	if err != nil {
		t.Fatal(err)
	}
	if &p1.P[0] != &p2.P[0] {
		t.Error("expected cached PMF to be reused")
	}
	// Nearby widths quantize to different grid points.
	p3, err := m.CountPMF(30.3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Mean() <= p1.Mean() {
		t.Error("wider window should hold more CNTs on average")
	}
}

func TestSubGridWidth(t *testing.T) {
	tn, _ := dist.TruncNormalWithMean(4, 3, 1)
	m, _ := New(tn, WithStep(0.1), WithMaxWidth(60))
	pmf, err := m.CountPMF(0.04) // rounds to grid index 0
	if err != nil {
		t.Fatal(err)
	}
	if pmf.Prob(0) != 1 {
		t.Fatalf("sub-grid window should be empty w.p. 1, got %v", pmf.P)
	}
}

// Property: count PMFs normalize, means grow with width, and P(N=0) shrinks
// with width.
func TestQuickCountMonotonicity(t *testing.T) {
	tn, _ := dist.TruncNormalWithMean(4, 3.0, 1)
	m, err := New(tn, WithStep(0.1), WithMaxWidth(150))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		w1 := 5 + float64(raw%120)
		w2 := w1 + 10
		p1, err1 := m.CountPMF(w1)
		p2, err2 := m.CountPMF(w2)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(p1.TotalMass(), 1, 1e-9) &&
			p2.Mean() > p1.Mean() &&
			p2.Prob(0) <= p1.Prob(0)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
