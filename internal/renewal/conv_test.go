package renewal

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cnfet/yieldlab/internal/dist"
)

// refConvolve is the plain truncated convolution both fast kernels must
// reproduce: dst = (d ⊛ f)[0:len(d)].
func refConvolve(d, f []float64) []float64 {
	dst := make([]float64, len(d))
	for j, dv := range d {
		if dv == 0 {
			continue
		}
		for i, fv := range f {
			if j+i >= len(dst) {
				break
			}
			dst[j+i] += dv * fv
		}
	}
	return dst
}

// randomSupport builds a non-negative vector of length n that is zero
// outside [lo, hi).
func randomSupport(r *rand.Rand, n, lo, hi int) []float64 {
	v := make([]float64, n)
	for j := lo; j < hi; j++ {
		v[j] = r.Float64() / float64(hi-lo)
	}
	return v
}

// Property test: the blocked and FFT kernels match the direct kernel across
// random supports, including odd lengths and near-power-of-2 sizes.
func TestConvolveKernelsMatchDirect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	type shape struct{ n, lo, hi, nf int }
	shapes := []shape{
		{16, 0, 16, 4},    // below blockedMinTaps: blocked falls back
		{33, 0, 33, 9},    // odd lengths
		{127, 3, 77, 31},  // offset support, odd kernel
		{128, 0, 128, 64}, // exact powers of two
		{129, 1, 100, 65}, // near powers of two
		{1000, 250, 600, 255},
		{1024, 1023, 1024, 17}, // single-cell support at the edge
		{500, 10, 11, 490},     // kernel longer than support
	}
	for trial := 0; trial < 40; trial++ {
		s := shapes[trial%len(shapes)]
		d := randomSupport(r, s.n, s.lo, s.hi)
		f := make([]float64, s.nf)
		for i := range f {
			f[i] = r.Float64() / float64(s.nf)
		}
		want := refConvolve(d, f)

		blocked := make([]float64, s.n)
		convolveBlocked(blocked, d, f, s.lo, s.hi)

		cs := newConvState(FFTConv, f)
		viaFFT := make([]float64, s.n)
		cs.convolve(viaFFT, d, s.lo, s.hi)

		auto := newConvState(AutoConv, f)
		viaAuto := make([]float64, s.n)
		auto.convolve(viaAuto, d, s.lo, s.hi)

		scale := 0.0
		for _, v := range want {
			if v > scale {
				scale = v
			}
		}
		if scale == 0 {
			scale = 1
		}
		for i := range want {
			if math.Abs(blocked[i]-want[i]) > 1e-13*scale {
				t.Fatalf("shape %+v: blocked[%d] = %g want %g", s, i, blocked[i], want[i])
			}
			if math.Abs(viaFFT[i]-want[i]) > 1e-12*scale {
				t.Fatalf("shape %+v: fft[%d] = %g want %g", s, i, viaFFT[i], want[i])
			}
			if math.Abs(viaAuto[i]-want[i]) > 1e-12*scale {
				t.Fatalf("shape %+v: auto[%d] = %g want %g", s, i, viaAuto[i], want[i])
			}
		}
	}
}

// The FFT kernel must never leave negative mass behind.
func TestConvolveFFTNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	d := randomSupport(r, 2000, 0, 1200)
	f := make([]float64, 700)
	for i := range f {
		f[i] = r.Float64() / 700
	}
	cs := newConvState(FFTConv, f)
	dst := make([]float64, 2000)
	cs.convolve(dst, d, 0, 1200)
	for i, v := range dst {
		if v < 0 {
			t.Fatalf("negative mass %g at %d", v, i)
		}
	}
}

// sweepLaws are the three spacing laws the acceptance criteria name.
func sweepLaws(t *testing.T) []struct {
	name string
	law  dist.Continuous
} {
	t.Helper()
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		law  dist.Continuous
	}{
		{"truncnormal", tn},
		{"exponential", dist.Exponential{Rate: 0.25}},
		{"deterministic", dist.Deterministic{V: 4}},
	}
}

// The FFT/auto sweeps must match the direct sweep to ≤ 1e-12 normwise
// relative error (the PMFs have unit mass, so normwise relative and absolute
// coincide). Individual probabilities below the sweep's own truncation floor
// (tailEps = 1e-15) carry no meaning in either path and are not compared in
// relative terms; the paper-anchor pF values — sums weighted toward the
// meaningful part of the distribution — must agree much tighter.
func TestSweepKernelEquivalence(t *testing.T) {
	const pf = 0.531
	for _, tc := range sweepLaws(t) {
		t.Run(tc.name, func(t *testing.T) {
			direct, err := New(tc.law, WithStep(0.05), WithMaxWidth(200), WithConvMode(DirectConv))
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []struct {
				name string
				mode ConvMode
			}{{"fft", FFTConv}, {"auto", AutoConv}, {"blocked", BlockedConv}} {
				m, err := New(tc.law, WithStep(0.05), WithMaxWidth(200), WithConvMode(mode.mode))
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []float64{10, 55.5, 103, 155, 200} {
					a, err := direct.CountPMF(w)
					if err != nil {
						t.Fatal(err)
					}
					b, err := m.CountPMF(w)
					if err != nil {
						t.Fatal(err)
					}
					n := a.Len()
					if b.Len() > n {
						n = b.Len()
					}
					for k := 0; k < n; k++ {
						if d := math.Abs(a.Prob(k) - b.Prob(k)); d > 1e-12 {
							t.Errorf("%s w=%g: |Δ P(N=%d)| = %.3g exceeds 1e-12 (direct %g, %s %g)",
								mode.name, w, k, d, a.Prob(k), mode.name, b.Prob(k))
						}
					}
					// pF values at or above the paper-anchor scale must agree
					// tightly in relative terms; deeper values sit at the
					// direct path's own roundoff floor (ulp-level reordering
					// moves them by ~1e-5 relative), so compare absolutely.
					pfa, pfb := a.PGF(pf), b.PGF(pf)
					if pfa >= 1e-9 {
						if rel := math.Abs(pfa-pfb) / pfa; rel > 1e-6 {
							t.Errorf("%s w=%g: pF %g vs %g (rel %.3g)", mode.name, w, pfa, pfb, rel)
						}
					} else if d := math.Abs(pfa - pfb); d > 1e-14 {
						t.Errorf("%s w=%g: pF %g vs %g (|Δ| %.3g)", mode.name, w, pfa, pfb, d)
					}
				}
			}
		})
	}
}

// The paper's pF(155 nm) ≈ 3.11e-9 anchor must hold on the fast path to
// float-noise precision of the direct path's value.
func TestAnchorPF155AcrossKernels(t *testing.T) {
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ref float64
	for _, mode := range []ConvMode{DirectConv, BlockedConv, FFTConv, AutoConv} {
		m, err := New(tn, WithStep(0.05), WithMaxWidth(440), WithConvMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		pmf, err := m.CountPMF(155)
		if err != nil {
			t.Fatal(err)
		}
		pf := pmf.PGF(0.531)
		if pf < 2.8e-9 || pf > 3.4e-9 {
			t.Fatalf("mode %d: pF(155) = %g outside the paper anchor band", mode, pf)
		}
		if mode == DirectConv {
			ref = pf
			continue
		}
		if rel := math.Abs(pf-ref) / ref; rel > 1e-6 {
			t.Errorf("mode %d: pF(155) = %.15g vs direct %.15g (rel %.3g)", mode, pf, ref, rel)
		}
	}
}

func TestCalibrateSetsSaneRatio(t *testing.T) {
	old := fftCostRatio()
	defer SetFFTCostRatio(old)
	ratio := Calibrate()
	if !(ratio > 0.01 && ratio < 1000) {
		t.Fatalf("implausible calibrated ratio %g", ratio)
	}
	if got := fftCostRatio(); got != ratio {
		t.Fatalf("ratio not installed: %g vs %g", got, ratio)
	}
	// Invalid overrides must be ignored.
	SetFFTCostRatio(math.NaN())
	if got := fftCostRatio(); got != ratio {
		t.Fatalf("NaN override should be ignored, got %g", got)
	}
}

func TestWithConvModeOption(t *testing.T) {
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tn, WithStep(0.1), WithMaxWidth(60), WithConvMode(FFTConv))
	if err != nil {
		t.Fatal(err)
	}
	if m.convMode != FFTConv {
		t.Fatalf("convMode = %d, want %d", m.convMode, FFTConv)
	}
}
