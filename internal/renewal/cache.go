package renewal

import (
	"fmt"
	"math"
	"sync"

	"github.com/cnfet/yieldlab/internal/dist"
)

// SweepCache shares renewal Models — and therefore their swept count
// tables — between callers whose spacing law and grid coincide. The paper's
// three Fig. 2.1 process corners, the Table 1/Table 2 scenarios and every
// Wmin search differ only in the per-CNT failure probability pf, which
// enters after the count distribution (Eq. 2.2 evaluates the PGF at pf), so
// one swept table serves them all; the cache makes that sharing automatic
// wherever models are built, not just where one happens to be threaded
// through by hand.
//
// Keys combine the law's dist.Fingerprint with every Model option that
// affects the numbers (grid step, max width, tail epsilon, initial
// condition, convolution mode), so a cache hit can never change a result.
// Laws without a fingerprint get a fresh model each call.
//
// A SweepCache is safe for concurrent use. Models grow their internal width
// cache monotonically and are themselves concurrency-safe, so handing one
// model to many goroutines is the intended use.
type SweepCache struct {
	mu     sync.Mutex
	models map[string]*Model
	hits   uint64
	misses uint64
}

// NewSweepCache returns an empty cache.
func NewSweepCache() *SweepCache {
	return &SweepCache{models: make(map[string]*Model)}
}

// Model returns the shared count model for the law and options, building it
// on first use. Passing a nil *SweepCache is allowed and degrades to
// renewal.New.
func (c *SweepCache) Model(spacing dist.Continuous, opts ...Option) (*Model, error) {
	if c == nil {
		return New(spacing, opts...)
	}
	m, err := newConfigured(spacing, opts...)
	if err != nil {
		return nil, err
	}
	fp, ok := dist.Fingerprint(spacing)
	if !ok {
		m.finish()
		return m, nil
	}
	key := fmt.Sprintf("%s|step=%016x|max=%016x|eps=%016x|ord=%t|conv=%d",
		fp, math.Float64bits(m.step), math.Float64bits(m.maxWidth),
		math.Float64bits(m.tailEps), m.ordinary, m.convMode)
	c.mu.Lock()
	defer c.mu.Unlock()
	if shared, hit := c.models[key]; hit {
		c.hits++
		return shared, nil
	}
	c.misses++
	// Discretization runs under the lock: it is far cheaper than the sweeps
	// the cache exists to share, and holding the lock keeps concurrent
	// first-callers from building duplicate models.
	m.finish()
	c.models[key] = m
	return m, nil
}

// Len returns the number of distinct models built so far.
func (c *SweepCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.models)
}

// Stats returns how many Model calls were served from the cache (hits) and
// how many built a model (misses). Unfingerprinted laws count as neither.
func (c *SweepCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
