package renewal

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/cnfet/yieldlab/internal/dist"
)

// SweepCache shares renewal Models — and therefore their swept count
// tables — between callers whose spacing law and grid coincide. The paper's
// three Fig. 2.1 process corners, the Table 1/Table 2 scenarios and every
// Wmin search differ only in the per-CNT failure probability pf, which
// enters after the count distribution (Eq. 2.2 evaluates the PGF at pf), so
// one swept table serves them all; the cache makes that sharing automatic
// wherever models are built, not just where one happens to be threaded
// through by hand.
//
// Keys combine the law's dist.Fingerprint with every Model option that
// affects the numbers (grid step, max width, tail epsilon, initial
// condition, convolution mode), so a cache hit can never change a result.
// Laws without a fingerprint get a fresh model each call.
//
// A SweepCache is safe for concurrent use. Models fill their internal width
// table with one canonical full-grid sweep and are themselves
// concurrency-safe, so handing one model to many goroutines is the intended
// use. Long-lived servers should
// bound the cache with SetMaxEntries: eviction drops the least-recently-used
// model from the cache (callers holding it keep a valid model; only the
// sharing is forgotten).
type SweepCache struct {
	mu         sync.Mutex
	entries    map[string]*cacheEntry
	maxEntries int
	clock      uint64
	hits       uint64
	misses     uint64
	evictions  uint64
}

type cacheEntry struct {
	model *Model
	fp    string // the law's dist.Fingerprint (without grid options)
	use   uint64 // logical last-use time for LRU eviction
}

// NewSweepCache returns an empty, unbounded cache.
func NewSweepCache() *SweepCache {
	return &SweepCache{entries: make(map[string]*cacheEntry)}
}

// SetMaxEntries bounds the cache to at most n models, evicting the least
// recently used beyond that. n ≤ 0 removes the bound. Shrinking below the
// current size evicts immediately.
func (c *SweepCache) SetMaxEntries(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxEntries = n
	c.evictOverLimit()
}

// evictOverLimit drops least-recently-used entries until the bound holds.
// Caller holds c.mu.
func (c *SweepCache) evictOverLimit() {
	if c.maxEntries <= 0 {
		return
	}
	for len(c.entries) > c.maxEntries {
		var oldestKey string
		oldestUse := uint64(math.MaxUint64)
		for key, e := range c.entries {
			if e.use < oldestUse {
				oldestUse = e.use
				oldestKey = key
			}
		}
		delete(c.entries, oldestKey)
		c.evictions++
	}
}

// Model returns the shared count model for the law and options, building it
// on first use. Passing a nil *SweepCache is allowed and degrades to
// renewal.New.
func (c *SweepCache) Model(spacing dist.Continuous, opts ...Option) (*Model, error) {
	m, _, err := c.ModelTracked(spacing, opts...)
	return m, err
}

// ModelTracked is Model with the cache outcome made visible: hit reports
// whether the model came from the cache. A fresh build, an unfingerprinted
// law and the nil-cache degradation all report false. The query layer's
// sweep spans use this to classify evaluations cold vs cache-hit without
// diffing global cache stats (which would race under concurrent requests).
func (c *SweepCache) ModelTracked(spacing dist.Continuous, opts ...Option) (m *Model, hit bool, err error) {
	if c == nil {
		m, err = New(spacing, opts...)
		return m, false, err
	}
	m, err = newConfigured(spacing, opts...)
	if err != nil {
		return nil, false, err
	}
	fp, ok := dist.Fingerprint(spacing)
	if !ok {
		m.finish()
		return m, false, nil
	}
	key := cacheKey(fp, m)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		c.hits++
		e.use = c.clock
		return e.model, true, nil
	}
	c.misses++
	// Discretization runs under the lock: it is far cheaper than the sweeps
	// the cache exists to share, and holding the lock keeps concurrent
	// first-callers from building duplicate models.
	m.finish()
	c.entries[key] = &cacheEntry{model: m, fp: fp, use: c.clock}
	c.evictOverLimit()
	return m, false, nil
}

// identityKey formats the full identity of a law+grid combination: the law
// fingerprint plus every numerically relevant option, floats compared by
// exact bits. Both the cache key and Snapshot.Key (hence the sweep store's
// file naming) derive from this one format, so they cannot drift apart.
func identityKey(fp string, step, maxWidth, tailEps float64, ordinary bool, conv ConvMode) string {
	return fmt.Sprintf("%s|step=%016x|max=%016x|eps=%016x|ord=%t|conv=%d",
		fp, math.Float64bits(step), math.Float64bits(maxWidth),
		math.Float64bits(tailEps), ordinary, conv)
}

// cacheKey derives the cache identity of a configured (not necessarily
// discretized) model.
func cacheKey(fp string, m *Model) string {
	return identityKey(fp, m.step, m.maxWidth, m.tailEps, m.ordinary, m.convMode)
}

// Len returns the number of distinct models currently cached.
func (c *SweepCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats describes a SweepCache's traffic and contents.
type CacheStats struct {
	// Hits and Misses count Model calls served from the cache vs built
	// fresh. Unfingerprinted laws count as neither.
	Hits, Misses uint64
	// Evictions counts models dropped by the entry bound.
	Evictions uint64
	// Entries is the current model count (== Len()).
	Entries int
	// Sweeps sums the arrival sweeps actually computed across cached
	// models — zero after a warm start that answered only from restored
	// tables, which is how tests and /v1/stats verify the persistent store
	// did its job.
	Sweeps uint64
}

// snapshotLocked returns the cached entries in ascending cache-key order —
// law fingerprint first, then the grid options — so every traversal of the
// cache is deterministic regardless of map iteration order. Caller holds
// c.mu.
func (c *SweepCache) snapshotLocked() []*cacheEntry {
	keys := make([]string, 0, len(c.entries))
	for key := range c.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	snapshot := make([]*cacheEntry, len(keys))
	for i, key := range keys {
		snapshot[i] = c.entries[key]
	}
	return snapshot
}

// Stats returns a snapshot of the cache's counters.
func (c *SweepCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	entries := c.snapshotLocked()
	s := CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
	c.mu.Unlock()
	// Model counters take the per-model lock; read them outside the cache
	// lock so a long sweep cannot stall unrelated cache traffic.
	for _, e := range entries {
		s.Sweeps += e.model.Sweeps()
	}
	return s
}

// ForEach calls fn for every cached model with its law fingerprint, in
// ascending cache-key order (law fingerprint, then grid options), so that
// persistence and /v1/stats traffic do not depend on map iteration order.
// The callback runs outside the cache lock, so it may sweep, snapshot, or
// call back into the cache.
func (c *SweepCache) ForEach(fn func(fingerprint string, m *Model)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	snapshot := c.snapshotLocked()
	c.mu.Unlock()
	for _, e := range snapshot {
		fn(e.fp, e.model)
	}
}
