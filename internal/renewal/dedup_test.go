package renewal

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"testing"

	"github.com/cnfet/yieldlab/internal/dist"
)

// Hammer one shared cache from many goroutines asking for the same law and
// grid: every caller must get the same model, the arrival sweep must run
// exactly once (model-level singleflight), and the run must be race-clean.
func TestSweepCacheSingleflightHammer(t *testing.T) {
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSweepCache()
	const goroutines = 32
	models := make([]*Model, goroutines)
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := c.Model(tn, WithStep(0.1), WithMaxWidth(120))
			if err != nil {
				errs <- err
				return
			}
			models[g] = m
			// Everyone asks for the full horizon at once: exactly one sweep
			// may run; the rest must wait on it, not redo it.
			if _, err := m.CountPMF(120); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := 1; g < goroutines; g++ {
		if models[g] != models[0] {
			t.Fatal("cache handed out distinct models for one law+grid")
		}
	}
	if n := models[0].Sweeps(); n != 1 {
		t.Fatalf("sweeps = %d, want 1 (concurrent identical requests must dedupe)", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss, %d hits", st, goroutines-1)
	}
	if st.Sweeps != 1 {
		t.Fatalf("aggregated sweeps = %d, want 1", st.Sweeps)
	}
}

// Every sweep covers the full grid, so concurrent queries dedupe onto at
// most one sweep and any later width — wider or narrower — is free. The
// canonical horizon is what keeps cached PMFs independent of query order.
func TestSweepWideningDedup(t *testing.T) {
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tn, WithStep(0.1), WithMaxWidth(150))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, w := range []float64{30, 60, 90} {
		wg.Add(1)
		go func(w float64) {
			defer wg.Done()
			if _, err := m.CountPMF(w); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	first := m.Sweeps()
	if first != 1 {
		t.Fatalf("sweeps = %d, want 1 (concurrent requests share one full-grid sweep)", first)
	}
	// The canonical sweep covered the whole grid: every width is now free,
	// including ones wider than any of the original requests.
	for _, w := range []float64{10, 45, 89.9, 150} {
		if _, err := m.CountPMF(w); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Sweeps(); n != first {
		t.Fatalf("cached widths swept again: %d -> %d", first, n)
	}
}

// The eviction bound holds under concurrent churn over many distinct laws,
// and evicted models keep working for callers that hold them.
func TestSweepCacheEvictionBound(t *testing.T) {
	c := NewSweepCache()
	c.SetMaxEntries(4)
	var wg sync.WaitGroup
	models := make([]*Model, 16)
	for i := 0; i < len(models); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			law := dist.Exponential{Rate: 0.1 + 0.01*float64(i)}
			m, err := c.Model(law, WithStep(0.1), WithMaxWidth(40))
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = m
			if _, err := m.CountPMF(20); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if n := c.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
	st := c.Stats()
	if st.Entries != 4 || st.Evictions != 12 {
		t.Fatalf("stats = %+v, want 4 entries, 12 evictions", st)
	}
	// Evicted models still answer.
	for _, m := range models {
		if _, err := m.CountPMF(30); err != nil {
			t.Fatal(err)
		}
	}
	// Shrinking evicts immediately; unbounding stops eviction.
	c.SetMaxEntries(1)
	if n := c.Len(); n != 1 {
		t.Fatalf("after shrink Len = %d, want 1", n)
	}
	c.SetMaxEntries(0)
	for i := 0; i < 8; i++ {
		if _, err := c.Model(dist.Deterministic{V: 4 + float64(i)}, WithStep(0.1), WithMaxWidth(40)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 9 {
		t.Fatalf("unbounded Len = %d, want 9", n)
	}
}

// LRU order: touching an entry protects it from the next eviction.
func TestSweepCacheLRUOrder(t *testing.T) {
	c := NewSweepCache()
	c.SetMaxEntries(2)
	lawA := dist.Deterministic{V: 4}
	lawB := dist.Deterministic{V: 5}
	lawC := dist.Deterministic{V: 6}
	a1, err := c.Model(lawA, WithStep(0.1), WithMaxWidth(40))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Model(lawB, WithStep(0.1), WithMaxWidth(40)); err != nil {
		t.Fatal(err)
	}
	// Touch A so B is now least recently used; C must evict B, not A.
	if _, err := c.Model(lawA, WithStep(0.1), WithMaxWidth(40)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Model(lawC, WithStep(0.1), WithMaxWidth(40)); err != nil {
		t.Fatal(err)
	}
	a2, err := c.Model(lawA, WithStep(0.1), WithMaxWidth(40))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("recently used entry was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// ForEach exposes each cached model once with its law fingerprint.
func TestSweepCacheForEach(t *testing.T) {
	c := NewSweepCache()
	laws := []dist.Continuous{dist.Deterministic{V: 4}, dist.Exponential{Rate: 0.25}}
	for _, law := range laws {
		if _, err := c.Model(law, WithStep(0.1), WithMaxWidth(40)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]int)
	c.ForEach(func(fp string, m *Model) {
		if m == nil {
			t.Error("nil model")
		}
		seen[fp]++
	})
	if len(seen) != 2 {
		t.Fatalf("saw %d fingerprints, want 2", len(seen))
	}
	for _, law := range laws {
		fp, _ := dist.Fingerprint(law)
		if seen[fp] != 1 {
			t.Fatalf("fingerprint %s seen %d times: %v", fp, seen[fp], seen)
		}
	}
}

// ForEach promises ascending cache-key order, and the cache key starts with
// the law fingerprint: distinct laws must come out fp-sorted, identically on
// every traversal, so sweep-store persistence and /v1/stats cannot flap with
// Go's randomized map iteration.
func TestSweepCacheForEachDeterministicOrder(t *testing.T) {
	c := NewSweepCache()
	laws := []dist.Continuous{
		dist.Deterministic{V: 4},
		dist.Deterministic{V: 7},
		dist.Exponential{Rate: 0.25},
		dist.Exponential{Rate: 0.5},
	}
	wantFPs := make([]string, 0, len(laws))
	for _, law := range laws {
		if _, err := c.Model(law, WithStep(0.1), WithMaxWidth(40)); err != nil {
			t.Fatal(err)
		}
		fp, ok := dist.Fingerprint(law)
		if !ok {
			t.Fatalf("law %v has no fingerprint", law)
		}
		wantFPs = append(wantFPs, fp)
	}
	sort.Strings(wantFPs)
	for run := 0; run < 20; run++ {
		var got []string
		c.ForEach(func(fp string, m *Model) { got = append(got, fp) })
		if !slices.Equal(got, wantFPs) {
			t.Fatalf("run %d: ForEach order %v, want sorted %v", run, got, wantFPs)
		}
	}
}

func BenchmarkSweepDedupContention(b *testing.B) {
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		b.Fatal(err)
	}
	c := NewSweepCache()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m, err := c.Model(tn, WithStep(0.1), WithMaxWidth(100))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.CountPMF(10 + float64(i%90)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	if err := func() error {
		if n := c.Len(); n != 1 {
			return fmt.Errorf("len %d", n)
		}
		return nil
	}(); err != nil {
		b.Fatal(err)
	}
}
