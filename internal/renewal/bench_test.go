package renewal

import (
	"math/rand"
	"testing"

	"github.com/cnfet/yieldlab/internal/dist"
)

// benchPitch is the calibrated-pitch-shaped law every sweep benchmark uses:
// post-truncation mean 4 nm, parent sigma 9.2 nm, truncated at 0.
func benchPitch(b *testing.B) dist.TruncNormal {
	b.Helper()
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		b.Fatal(err)
	}
	return tn
}

// BenchmarkSweep measures one full cold arrival sweep to 440 nm at the
// paper's default 0.05 nm grid, per kernel mode. The auto mode is the
// shipping default and the number the CI bench gate watches; direct is the
// pre-optimization reference.
func BenchmarkSweep(b *testing.B) {
	tn := benchPitch(b)
	for _, tc := range []struct {
		name string
		mode ConvMode
	}{
		{"direct", DirectConv},
		{"blocked", BlockedConv},
		{"fft", FFTConv},
		{"auto", AutoConv},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := New(tn, WithStep(0.05), WithMaxWidth(440), WithConvMode(tc.mode))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.CountPMF(440); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConvolve measures one mid-sweep-shaped convolution per kernel:
// 6144 source cells against a 1143-tap kernel (the calibrated pitch law's
// discretized support at the default grid).
func BenchmarkConvolve(b *testing.B) {
	const (
		n    = 8800
		lo   = 1200
		hi   = lo + 6144
		taps = 1143
	)
	r := rand.New(rand.NewSource(21))
	d := make([]float64, n)
	for j := lo; j < hi; j++ {
		d[j] = r.Float64() / float64(hi-lo)
	}
	f := make([]float64, taps)
	for i := range f {
		f[i] = r.Float64() / float64(taps)
	}
	dst := make([]float64, n)
	for _, tc := range []struct {
		name string
		mode ConvMode
	}{
		{"direct", DirectConv},
		{"blocked", BlockedConv},
		{"fft", FFTConv},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cs := newConvState(tc.mode, f)
			for i := 0; i < b.N; i++ {
				cs.convolve(dst, d, lo, hi)
			}
		})
	}
}

// BenchmarkCalibrate bounds the cost of the in-package crossover
// calibration a long-lived process pays once at startup.
func BenchmarkCalibrate(b *testing.B) {
	old := fftCostRatio()
	defer SetFFTCostRatio(old)
	for i := 0; i < b.N; i++ {
		Calibrate()
	}
}
