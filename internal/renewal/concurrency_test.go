package renewal

import (
	"sync"
	"testing"

	"github.com/cnfet/yieldlab/internal/dist"
)

// The model promises concurrent safety: hammer CountPMF from many
// goroutines with overlapping widths (run under -race in CI).
func TestConcurrentCountPMF(t *testing.T) {
	tn, err := dist.TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tn, WithStep(0.1), WithMaxWidth(150))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				w := 10 + float64((g*13+i*29)%130)
				pmf, err := m.CountPMF(w)
				if err != nil {
					errs <- err
					return
				}
				if pmf.TotalMass() < 0.999 {
					errs <- errTest{"mass lost"}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All goroutines agree with a fresh serial model.
	serial, err := New(tn, WithStep(0.1), WithMaxWidth(150))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{23, 87, 139} {
		a, err := m.CountPMF(w)
		if err != nil {
			t.Fatal(err)
		}
		b, err := serial.CountPMF(w)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("W=%v: support %d vs %d", w, a.Len(), b.Len())
		}
		for k := 0; k < a.Len(); k++ {
			if d := a.Prob(k) - b.Prob(k); d > 1e-12 || d < -1e-12 {
				t.Fatalf("W=%v: P(N=%d) differs", w, k)
			}
		}
	}
}

type errTest struct{ msg string }

func (e errTest) Error() string { return e.msg }
