// Package netlist synthesizes gate-level netlists with the statistical
// profile of the paper's case study — an OpenRISC processor core (caches
// excluded) mapped onto a standard-cell library. Only the aggregate cell
// mix matters for the yield models (transistor width distribution, critical
// device density, lateral offset usage), so a netlist is a deterministic
// multiset of cell instances.
//
//yield:compute
package netlist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/rng"
)

// Netlist is a multiset of cell instances.
type Netlist struct {
	// Design names the netlist.
	Design string
	// Counts maps cell name → instance count.
	Counts map[string]int
}

// mixEntry is one line of the OpenRISC-class cell mix (fractions of total
// instances; normalized at build time).
type mixEntry struct {
	cell string
	frac float64
}

// openRISCMix is the frozen cell mix of the synthetic OpenRISC core:
// NAND/NOR-dominated control logic, a healthy register count (~19 %
// sequential instances), and a sprinkle of wide arithmetic cells. The mix
// only references cells present in both synthetic libraries.
func openRISCMix() []mixEntry {
	return []mixEntry{
		{"INV_X1", 8.0}, {"INV_X2", 3.0}, {"INV_X4", 1.5},
		{"BUF_X1", 2.0}, {"BUF_X2", 1.0}, {"CLKBUF_X4", 0.8},
		{"NAND2_X1", 14.0}, {"NAND2_X2", 3.0}, {"NAND3_X1", 4.0}, {"NAND4_X1", 2.0},
		{"NOR2_X1", 8.0}, {"NOR2_X2", 2.0}, {"NOR3_X1", 2.5},
		{"AOI21_X1", 5.0}, {"AOI22_X1", 3.5}, {"OAI21_X1", 4.5}, {"OAI22_X1", 3.0},
		{"AOI221_X1", 1.0}, {"AOI221_X2", 0.4}, {"AOI222_X1", 0.7},
		{"OAI221_X1", 1.0}, {"OAI221_X2", 0.4}, {"OAI222_X1", 0.7},
		{"AOI211_X1", 0.8}, {"OAI211_X1", 0.8}, {"OAI33_X1", 0.4},
		{"AND2_X1", 2.0}, {"OR2_X1", 2.0},
		{"XOR2_X1", 2.0}, {"XOR2_X2", 0.6}, {"XNOR2_X1", 1.5}, {"XNOR2_X2", 0.5},
		{"MUX2_X1", 3.0}, {"MUX2_X2", 0.8},
		{"HA_X1", 0.8}, {"HA_X2", 0.3}, {"FA_X1", 1.5}, {"FA_X2", 0.4},
		{"DFF_X1", 12.0}, {"DFF_X2", 2.0}, {"DFFR_X1", 3.0}, {"DFFR_X2", 0.5},
		{"DFFS_X1", 0.8}, {"DFFRS_X1", 0.5}, {"SDFF_X1", 1.5}, {"SDFF_X2", 0.4},
		{"SDFFR_X1", 0.6}, {"SDFFS_X1", 0.4}, {"SDFFRS_X1", 0.3},
		{"DLH_X1", 0.5}, {"DLL_X1", 0.3}, {"TBUF_X1", 1.0},
	}
}

// OpenRISCLike builds the synthetic OpenRISC netlist with approximately the
// requested instance count, using only cells present in lib.
func OpenRISCLike(lib *celllib.Library, instances int) (*Netlist, error) {
	if lib == nil {
		return nil, errors.New("netlist: nil library")
	}
	if instances < 1 {
		return nil, fmt.Errorf("netlist: instance count %d must be positive", instances)
	}
	mix := openRISCMix()
	var total float64
	for _, m := range mix {
		if _, err := lib.Cell(m.cell); err != nil {
			return nil, fmt.Errorf("netlist: mix cell missing from library: %w", err)
		}
		total += m.frac
	}
	nl := &Netlist{
		Design: fmt.Sprintf("openrisc-like-%s", lib.Name),
		Counts: make(map[string]int, len(mix)),
	}
	for _, m := range mix {
		n := int(math.Round(m.frac / total * float64(instances)))
		if n > 0 {
			nl.Counts[m.cell] = n
		}
	}
	if nl.Instances() == 0 {
		return nil, errors.New("netlist: rounding produced an empty netlist; increase instances")
	}
	return nl, nil
}

// Instances returns the total instance count.
func (n *Netlist) Instances() int {
	t := 0
	for _, c := range n.Counts {
		t += c
	}
	return t
}

// Transistors returns the total device count against a library.
func (n *Netlist) Transistors(lib *celllib.Library) (int, error) {
	t := 0
	for name, cnt := range n.Counts {
		c, err := lib.Cell(name)
		if err != nil {
			return 0, err
		}
		t += cnt * len(c.Transistors)
	}
	return t, nil
}

// CellNames returns the used cell names, sorted.
func (n *Netlist) CellNames() []string {
	out := make([]string, 0, len(n.Counts))
	for name := range n.Counts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Usage returns instance counts as float weights (for offset statistics).
func (n *Netlist) Usage() map[string]float64 {
	out := make(map[string]float64, len(n.Counts))
	for name, c := range n.Counts {
		out[name] = float64(c)
	}
	return out
}

// ExpandShuffled returns every instance's cell name in a deterministic
// pseudo-random order (seeded shuffle), the order the row placer consumes
// so rows hold a realistic mixture of cell types.
func (n *Netlist) ExpandShuffled(seed uint64) []string {
	names := n.CellNames()
	out := make([]string, 0, n.Instances())
	for _, name := range names {
		for i := 0; i < n.Counts[name]; i++ {
			out = append(out, name)
		}
	}
	r := rng.New(seed)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ShareBelow returns the fraction of the design's transistors whose width
// is strictly below w — the empirical counterpart of the frozen Fig. 2.2a
// distribution's Mmin/M estimate.
func (n *Netlist) ShareBelow(lib *celllib.Library, w float64) (float64, error) {
	below, total := 0, 0
	for name, cnt := range n.Counts {
		c, err := lib.Cell(name)
		if err != nil {
			return 0, err
		}
		for _, t := range c.Transistors {
			total += cnt
			if t.WidthNM < w {
				below += cnt
			}
		}
	}
	if total == 0 {
		return 0, errors.New("netlist: no transistors")
	}
	return float64(below) / float64(total), nil
}
