package netlist

import (
	"math"
	"testing"

	"github.com/cnfet/yieldlab/internal/celllib"
)

func lib45(t *testing.T) *celllib.Library {
	t.Helper()
	lib, err := celllib.NangateLike45()
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestOpenRISCLikeBasics(t *testing.T) {
	lib := lib45(t)
	nl, err := OpenRISCLike(lib, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	n := nl.Instances()
	if math.Abs(float64(n)-50_000) > 100 {
		t.Fatalf("instances: %d", n)
	}
	tr, err := nl.Transistors(lib)
	if err != nil {
		t.Fatal(err)
	}
	if tr < 4*n {
		t.Fatalf("transistors: %d for %d instances", tr, n)
	}
	if len(nl.CellNames()) < 25 {
		t.Fatalf("cell variety: %d", len(nl.CellNames()))
	}
}

func TestOpenRISCLikeErrors(t *testing.T) {
	lib := lib45(t)
	if _, err := OpenRISCLike(nil, 100); err == nil {
		t.Error("nil library")
	}
	if _, err := OpenRISCLike(lib, 0); err == nil {
		t.Error("zero instances")
	}
	empty := &celllib.Library{Name: "empty"}
	if _, err := OpenRISCLike(empty, 100); err == nil {
		t.Error("missing mix cells")
	}
}

// The Fig. 2.2a narrative regression: roughly a third of the design's
// transistors sit below the (unoptimized) Wmin of 155 nm.
func TestShareBelowMatchesPaper(t *testing.T) {
	lib := lib45(t)
	nl, err := OpenRISCLike(lib, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	share, err := nl.ShareBelow(lib, 155)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.35-0.08 || share > 0.35+0.08 {
		t.Fatalf("share below 155 nm = %.3f, want ≈ 0.33", share)
	}
	all, _ := nl.ShareBelow(lib, 1e9)
	if all != 1 {
		t.Fatalf("share below ∞: %v", all)
	}
}

func TestExpandShuffledDeterministic(t *testing.T) {
	lib := lib45(t)
	nl, _ := OpenRISCLike(lib, 2000)
	a := nl.ExpandShuffled(7)
	b := nl.ExpandShuffled(7)
	if len(a) != nl.Instances() {
		t.Fatalf("expansion length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
	c := nl.ExpandShuffled(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds should shuffle differently")
	}
	// Multiset preserved.
	count := map[string]int{}
	for _, name := range a {
		count[name]++
	}
	for name, want := range nl.Counts {
		if count[name] != want {
			t.Fatalf("%s: %d vs %d", name, count[name], want)
		}
	}
}

func TestUsageMatchesCounts(t *testing.T) {
	lib := lib45(t)
	nl, _ := OpenRISCLike(lib, 10_000)
	u := nl.Usage()
	for name, c := range nl.Counts {
		if u[name] != float64(c) {
			t.Fatalf("usage mismatch for %s", name)
		}
	}
}

func TestWorksOn65nmLibrary(t *testing.T) {
	lib, err := celllib.Commercial65()
	if err != nil {
		t.Fatal(err)
	}
	nl, err := OpenRISCLike(lib, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Instances() < 19_000 {
		t.Fatalf("instances: %d", nl.Instances())
	}
}
