package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"name", "value"}}
	if err := tb.AddRow("alpha", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("b", "22222"); err != nil {
		t.Fatal(err)
	}
	tb.AddNote("a note %d", 7)
	out := tb.Render()
	for _, want := range []string{"demo", "name", "alpha", "22222", "note: a note 7", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableAddRowMismatch(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	if err := tb.AddRow("only-one"); err == nil {
		t.Fatal("row width mismatch should error")
	}
}

func TestComparisonRatioAndTolerance(t *testing.T) {
	c := Comparison{Paper: 100, Measured: 110, TolFactor: 1.2}
	if math.Abs(c.Ratio()-1.1) > 1e-12 {
		t.Fatalf("ratio: %v", c.Ratio())
	}
	if !c.WithinTolerance() {
		t.Fatal("1.1 within 1.2× band")
	}
	c.Measured = 130
	if c.WithinTolerance() {
		t.Fatal("1.3 outside 1.2× band")
	}
	c.Measured = 80 // 0.8 < 1/1.2
	if c.WithinTolerance() {
		t.Fatal("0.8 outside band")
	}
	c.Measured = 90
	if !c.WithinTolerance() {
		t.Fatal("0.9 within band")
	}
	// No tolerance or no paper value: always fine.
	free := Comparison{Paper: math.NaN(), Measured: 5, TolFactor: 2}
	if !free.WithinTolerance() {
		t.Fatal("NaN paper should pass")
	}
	if !math.IsNaN(free.Ratio()) {
		t.Fatal("NaN ratio")
	}
	zero := Comparison{Paper: 0, Measured: 5}
	if !math.IsNaN(zero.Ratio()) {
		t.Fatal("zero paper ratio")
	}
	neg := Comparison{Paper: 10, Measured: -1, TolFactor: 2}
	if neg.WithinTolerance() {
		t.Fatal("negative ratio out of band")
	}
}

func TestComparisonSet(t *testing.T) {
	s := &ComparisonSet{Name: "x"}
	s.Add(Comparison{Artifact: "T1", Quantity: "good", Paper: 1, Measured: 1.05, TolFactor: 1.2})
	s.Add(Comparison{Artifact: "T1", Quantity: "bad", Paper: 1, Measured: 3, TolFactor: 1.2})
	if len(s.Failures()) != 1 || s.Failures()[0].Quantity != "bad" {
		t.Fatalf("failures: %+v", s.Failures())
	}
	tb, err := s.Table()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	if !strings.Contains(out, "✓") || !strings.Contains(out, "✗") {
		t.Fatalf("marks missing:\n%s", out)
	}
	empty := &ComparisonSet{Name: "e"}
	if _, err := empty.Table(); err == nil {
		t.Fatal("empty set should error")
	}
}

func TestFormatValue(t *testing.T) {
	if got := formatValue(3.03e-9, ""); !strings.Contains(got, "e-09") {
		t.Fatalf("tiny value: %s", got)
	}
	if got := formatValue(155, "nm"); got != "155 nm" {
		t.Fatalf("unit: %s", got)
	}
	if got := formatValue(0, ""); got != "0" {
		t.Fatalf("zero: %s", got)
	}
}
