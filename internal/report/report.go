// Package report formats experiment results as aligned text tables and
// tracks paper-vs-measured comparison records — the machinery behind
// EXPERIMENTS.md and the cnfetyield CLI output.
//
//yield:compute
package report

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// AddNote attaches a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Comparison is one paper-vs-measured record.
type Comparison struct {
	// Artifact identifies the paper table/figure ("Table 1", "Fig. 2.1").
	Artifact string
	// Quantity names the measured value.
	Quantity string
	// Paper is the published value (NaN when the paper gives no number).
	Paper float64
	// Measured is our reproduction's value.
	Measured float64
	// Unit is for display only.
	Unit string
	// TolFactor is the acceptance band as a multiplicative factor
	// (2 = within 2× either way); 0 disables the check.
	TolFactor float64
}

// Ratio returns measured/paper (NaN when the paper value is absent or 0).
func (c Comparison) Ratio() float64 {
	if c.Paper == 0 || math.IsNaN(c.Paper) {
		return math.NaN()
	}
	return c.Measured / c.Paper
}

// WithinTolerance reports whether the measurement lands inside the band.
func (c Comparison) WithinTolerance() bool {
	if c.TolFactor <= 0 || math.IsNaN(c.Paper) {
		return true
	}
	r := c.Ratio()
	if math.IsNaN(r) || r <= 0 {
		return false
	}
	return r <= c.TolFactor && r >= 1/c.TolFactor
}

// ComparisonSet collects records for one experiment.
type ComparisonSet struct {
	Name    string
	Records []Comparison
}

// Add appends a record.
func (s *ComparisonSet) Add(c Comparison) { s.Records = append(s.Records, c) }

// Failures returns the out-of-tolerance records.
func (s *ComparisonSet) Failures() []Comparison {
	var out []Comparison
	for _, c := range s.Records {
		if !c.WithinTolerance() {
			out = append(out, c)
		}
	}
	return out
}

// Table renders the comparison set as a Table.
func (s *ComparisonSet) Table() (*Table, error) {
	if len(s.Records) == 0 {
		return nil, errors.New("report: empty comparison set")
	}
	t := &Table{
		Title:   fmt.Sprintf("%s — paper vs measured", s.Name),
		Columns: []string{"artifact", "quantity", "paper", "measured", "ratio", "ok"},
	}
	for _, c := range s.Records {
		paper := "—"
		ratio := "—"
		if !math.IsNaN(c.Paper) {
			paper = formatValue(c.Paper, c.Unit)
			ratio = fmt.Sprintf("%.2f", c.Ratio())
		}
		ok := "✓"
		if !c.WithinTolerance() {
			ok = "✗"
		}
		if err := t.AddRow(c.Artifact, c.Quantity, paper, formatValue(c.Measured, c.Unit), ratio, ok); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func formatValue(v float64, unit string) string {
	var s string
	switch {
	case v != 0 && (math.Abs(v) < 1e-3 || math.Abs(v) >= 1e5):
		s = fmt.Sprintf("%.3g", v)
	default:
		s = fmt.Sprintf("%.4g", v)
	}
	if unit != "" {
		s += " " + unit
	}
	return s
}
