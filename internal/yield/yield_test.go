package yield

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/widthdist"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCircuitYield(t *testing.T) {
	y, err := CircuitYield([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(y, 0.9*0.8, 1e-12) {
		t.Fatalf("yield: %v", y)
	}
	if y, _ := CircuitYield(nil); y != 1 {
		t.Fatal("empty chip yields 1")
	}
	if y, _ := CircuitYield([]float64{1}); y != 0 {
		t.Fatal("certain failure yields 0")
	}
	if _, err := CircuitYield([]float64{-0.1}); err == nil {
		t.Fatal("negative pF")
	}
	if _, err := CircuitYield([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN pF")
	}
}

func TestCircuitYieldManyTiny(t *testing.T) {
	// 1e8 devices at pF = 3.03e-9 must give ~ e^{-0.303}, not 1-ε rounding.
	pfs := make([]float64, 1000)
	for i := range pfs {
		pfs[i] = 3.03e-9
	}
	y, err := CircuitYield(pfs)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-3.03e-9 * 1000)
	if !almost(y, want, 1e-12) {
		t.Fatalf("tiny-p yield: %v want %v", y, want)
	}
}

func TestWeightedYield(t *testing.T) {
	y, err := WeightedYield([]float64{3.03e-9}, []float64{3.3e7})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(y, math.Exp(-3.03e-9*3.3e7), 1e-9) {
		t.Fatalf("weighted yield: %v", y)
	}
	if _, err := WeightedYield([]float64{0.1}, nil); err == nil {
		t.Fatal("length mismatch")
	}
	if _, err := WeightedYield([]float64{0.1}, []float64{-1}); err == nil {
		t.Fatal("negative count")
	}
	if y, _ := WeightedYield([]float64{1}, []float64{2}); y != 0 {
		t.Fatal("certain failure")
	}
	if y, _ := WeightedYield([]float64{1}, []float64{0}); y != 1 {
		t.Fatal("certain failure with zero count is harmless")
	}
}

func TestRequiredDevicePF(t *testing.T) {
	// Paper case study: Mmin = 33e6, Yd = 0.9 → ≈ 3.03e-9 (the paper's
	// first-order value 3.0e-9; the exact log form is ~5% larger).
	req, err := RequiredDevicePF(33e6, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if req < 3.0e-9 || req > 3.3e-9 {
		t.Fatalf("required pF: %v", req)
	}
	if _, err := RequiredDevicePF(0, 0.9); err == nil {
		t.Fatal("zero Mmin")
	}
	if _, err := RequiredDevicePF(10, 1.0); err == nil {
		t.Fatal("yield 1")
	}
	if _, err := RequiredDevicePF(10, 0); err == nil {
		t.Fatal("yield 0")
	}
}

var (
	sharedModelOnce sync.Once
	sharedModel     *device.FailureModel
	sharedModelErr  error
)

func paperProblem(t *testing.T, relax float64) *Problem {
	t.Helper()
	sharedModelOnce.Do(func() {
		sharedModel, sharedModelErr = device.NewCalibratedModel(device.WorstCorner(),
			renewal.WithStep(0.05), renewal.WithMaxWidth(250))
	})
	if sharedModelErr != nil {
		t.Fatal(sharedModelErr)
	}
	return &Problem{
		Model:        sharedModel,
		Widths:       widthdist.OpenRISC45(),
		M:            1e8,
		DesiredYield: 0.90,
		RelaxFactor:  relax,
	}
}

// The paper's Section 2 case study: Wmin ≈ 155 nm for the uncorrelated
// baseline, with Mmin the two left histogram bins (33%).
func TestSimplifiedWminPaperCaseStudy(t *testing.T) {
	p := paperProblem(t, 1)
	res, err := SimplifiedWmin(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wmin < 150 || res.Wmin > 160 {
		t.Fatalf("Wmin = %v, want ≈ 155", res.Wmin)
	}
	if !almost(res.MminShare, 0.33, 1e-9) {
		t.Fatalf("Mmin share = %v, want 0.33", res.MminShare)
	}
	if res.Yield < 0.89 {
		t.Fatalf("achieved yield %v below target", res.Yield)
	}
}

// The Section 3 result: relaxing by ~353× gives Wmin ≈ 103-110 nm.
func TestSimplifiedWminRelaxed(t *testing.T) {
	p := paperProblem(t, 353)
	res, err := SimplifiedWmin(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wmin < 100 || res.Wmin > 115 {
		t.Fatalf("relaxed Wmin = %v, want ≈ 103-110", res.Wmin)
	}
	base, err := SimplifiedWmin(paperProblem(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Wmin-res.Wmin < 40 {
		t.Fatalf("correlation should buy ≥40 nm of Wmin: %v -> %v", base.Wmin, res.Wmin)
	}
}

func TestExactWminAgreesWithSimplified(t *testing.T) {
	p := paperProblem(t, 1)
	simp, err := SimplifiedWmin(p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactWmin(p)
	if err != nil {
		t.Fatal(err)
	}
	// The simplified solution neglects non-minimum devices, so the exact
	// threshold can only be larger, and only slightly (the paper's
	// justification for Eq. 2.5).
	if exact.Wmin < simp.Wmin-1e-6 {
		t.Fatalf("exact Wmin %v below simplified %v", exact.Wmin, simp.Wmin)
	}
	if exact.Wmin-simp.Wmin > 10 {
		t.Fatalf("exact %v and simplified %v should agree within a few nm", exact.Wmin, simp.Wmin)
	}
	if exact.Yield < p.DesiredYield {
		t.Fatalf("exact solution misses the target: %v", exact.Yield)
	}
}

func TestExactWminNoUpsizingNeeded(t *testing.T) {
	p := paperProblem(t, 1)
	p.M = 10 // tiny chip: even minimum devices are fine
	res, err := ExactWmin(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wmin > p.Widths.MinWidth() {
		t.Fatalf("tiny chip should need no upsizing, got Wmin=%v", res.Wmin)
	}
	if res.Yield < p.DesiredYield {
		t.Fatalf("yield %v", res.Yield)
	}
}

func TestProblemValidation(t *testing.T) {
	good := paperProblem(t, 1)
	cases := []func(*Problem){
		func(p *Problem) { p.Model = nil },
		func(p *Problem) { p.Widths = nil },
		func(p *Problem) { p.M = 0 },
		func(p *Problem) { p.DesiredYield = 1 },
		func(p *Problem) { p.DesiredYield = 0 },
		func(p *Problem) { p.RelaxFactor = 0.5 },
	}
	for i, mutate := range cases {
		p := *good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

// Property: yield decreases as M grows and increases with the relax factor.
func TestQuickYieldMonotonicity(t *testing.T) {
	p := paperProblem(t, 1)
	res1, err := SimplifiedWmin(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(mRaw, relaxRaw uint16) bool {
		m := 1e6 * float64(1+mRaw%1000)
		relax := 1 + float64(relaxRaw%500)
		pa := *p
		pa.M = m
		ra, err := SimplifiedWmin(&pa)
		if err != nil {
			return false
		}
		pb := pa
		pb.RelaxFactor = relax
		rb, err := SimplifiedWmin(&pb)
		if err != nil {
			return false
		}
		// More devices need a wider Wmin than fewer; relaxation shrinks it.
		return rb.Wmin <= ra.Wmin+1e-9 && ra.Wmin <= res1.Wmin+30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
