// Package yield implements the chip-level CNT-count-limited yield models of
// Section 2.2 and the Wmin sizing optimization:
//
//   - Eq. 2.3: Yield = Π_i (1 - pF(W_i)) over M independent CNFETs;
//   - Eq. 2.4: Wmin = min Wt s.t. Yield(U_Wt(W_i)) ≥ Yield_desired, where
//     U_Wt(W) = max(W, Wt) upsizes every device below the threshold;
//   - Eq. 2.5: the simplified form that charges all yield loss to the Mmin
//     minimum-size devices: Wmin solves Mmin·pF(Wt) = 1 - Yield_desired.
//
// The correlated (row-based) refinement of Section 3 lives in package
// rowyield; this package covers the uncorrelated baseline that defines the
// paper's cost problem.
//
//yield:compute
package yield

import (
	"errors"
	"fmt"
	"math"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/numeric"
	"github.com/cnfet/yieldlab/internal/widthdist"
)

// CircuitYield returns Π (1-p) for per-device failure probabilities,
// computed in log space so a hundred million tiny probabilities do not
// vanish in rounding (Eq. 2.3).
func CircuitYield(pFs []float64) (float64, error) {
	var logAcc numeric.Kahan
	for i, p := range pFs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return 0, fmt.Errorf("yield: pF[%d] = %g out of [0,1]", i, p)
		}
		if p == 1 {
			return 0, nil
		}
		logAcc.Add(math.Log1p(-p))
	}
	return math.Exp(logAcc.Sum()), nil
}

// WeightedYield returns Π (1-pF_i)^count_i: the yield of a chip holding
// count_i devices at failure probability pF_i. Counts may be fractional
// (shares of a large M).
func WeightedYield(pFs, counts []float64) (float64, error) {
	if len(pFs) != len(counts) {
		return 0, errors.New("yield: pFs and counts length mismatch")
	}
	var logAcc numeric.Kahan
	for i, p := range pFs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return 0, fmt.Errorf("yield: pF[%d] = %g out of [0,1]", i, p)
		}
		if counts[i] < 0 {
			return 0, fmt.Errorf("yield: count[%d] = %g negative", i, counts[i])
		}
		if counts[i] == 0 {
			continue
		}
		if p == 1 {
			return 0, nil
		}
		logAcc.Add(counts[i] * math.Log1p(-p))
	}
	return math.Exp(logAcc.Sum()), nil
}

// RequiredDevicePF returns the per-device failure budget (1-Yd)/Mmin of
// Eq. 2.5: the horizontal line drawn on Fig. 2.1. It uses the exact
// log-form -log(Yd)/Mmin, which matches the paper's first-order form to
// within (1-Yd)²/2 and stays correct for aggressive yield targets.
func RequiredDevicePF(mMin float64, desiredYield float64) (float64, error) {
	if !(mMin > 0) {
		return 0, fmt.Errorf("yield: Mmin = %g must be positive", mMin)
	}
	if !(desiredYield > 0) || desiredYield >= 1 {
		return 0, fmt.Errorf("yield: desired yield %g out of (0,1)", desiredYield)
	}
	return -math.Log(desiredYield) / mMin, nil
}

// Problem describes one chip-level sizing problem: a width distribution, a
// transistor count, a failure model and a yield target.
type Problem struct {
	// Model evaluates device failure probability vs width.
	Model *device.FailureModel
	// Widths is the design's transistor width distribution.
	Widths *widthdist.Distribution
	// M is the total CNFET count on the chip (paper case study: 1e8).
	M float64
	// DesiredYield is the chip-level yield target (paper: 0.90).
	DesiredYield float64
	// RelaxFactor divides the failure budget requirement; 1 for the
	// uncorrelated baseline of Section 2, MRmin (≈350 at 45 nm) after the
	// correlation optimization of Section 3.
	RelaxFactor float64
}

// Validate checks the problem is well-posed.
func (p *Problem) Validate() error {
	if p.Model == nil {
		return errors.New("yield: nil failure model")
	}
	if p.Widths == nil {
		return errors.New("yield: nil width distribution")
	}
	if !(p.M > 0) {
		return fmt.Errorf("yield: M = %g must be positive", p.M)
	}
	if !(p.DesiredYield > 0) || p.DesiredYield >= 1 {
		return fmt.Errorf("yield: desired yield %g out of (0,1)", p.DesiredYield)
	}
	if p.RelaxFactor < 1 {
		return fmt.Errorf("yield: relax factor %g must be ≥ 1", p.RelaxFactor)
	}
	return nil
}

// Result reports one Wmin solution.
type Result struct {
	// Wmin is the sizing threshold in nm.
	Wmin float64
	// MminShare is the fraction of devices at or below the threshold
	// (upsized devices).
	MminShare float64
	// DevicePF is the failure probability of a threshold-width device.
	DevicePF float64
	// Yield is the resulting chip yield under Eq. 2.3 applied to the
	// upsized width distribution.
	Yield float64
}

// SimplifiedWmin solves Eq. 2.5: it estimates Mmin from the width
// distribution self-consistently (the paper's iterative note) and inverts
// the device curve at the relaxed failure budget.
func SimplifiedWmin(p *Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	// Self-consistent Mmin: start from the share below an initial guess and
	// iterate share→budget→Wmin. The share function is a step function of
	// Wmin, so this converges in a couple of rounds (the paper: "estimating
	// Mmin can be iterative in nature, but it is simple in practice").
	share := p.Widths.ShareBelow(p.Widths.MinWidth() + 1e-9)
	if share <= 0 {
		share = 1e-9
	}
	var wmin, budget float64
	for iter := 0; iter < 32; iter++ {
		mMin := share * p.M
		req, err := RequiredDevicePF(mMin, p.DesiredYield)
		if err != nil {
			return Result{}, err
		}
		budget = req * p.RelaxFactor
		w, err := p.Model.WidthForFailureProb(budget)
		if err != nil {
			return Result{}, fmt.Errorf("yield: inverting failure budget %g: %w", budget, err)
		}
		wmin = w
		newShare := p.Widths.ShareBelow(wmin)
		if newShare <= 0 {
			newShare = share // keep previous estimate: threshold below support
		}
		if newShare == share {
			break
		}
		share = newShare
	}
	pf, err := p.Model.FailureProb(wmin)
	if err != nil {
		return Result{}, err
	}
	y, err := p.yieldAt(wmin)
	if err != nil {
		return Result{}, err
	}
	return Result{Wmin: wmin, MminShare: share, DevicePF: pf, Yield: y}, nil
}

// ExactWmin solves Eq. 2.4 by bisection on the threshold: it accounts for
// the failure probability of every width bin (non-minimum devices included)
// when evaluating the chip yield, instead of charging only the minimum-size
// population. The relax factor divides the effective failure probabilities,
// mirroring how row correlation divides the chip failure rate in Eq. 3.1.
func ExactWmin(p *Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	f := func(wt float64) (float64, error) {
		y, err := p.yieldAt(wt)
		if err != nil {
			return 0, err
		}
		return y - p.DesiredYield, nil
	}
	lo := p.Widths.MinWidth() * 0.5
	hi := p.Model.CountModel().MaxWidth()
	fHi, err := f(hi)
	if err != nil {
		return Result{}, err
	}
	if fHi < 0 {
		return Result{}, fmt.Errorf("yield: target %g unreachable even at Wt=%g", p.DesiredYield, hi)
	}
	fLo, err := f(lo)
	if err != nil {
		return Result{}, err
	}
	var wmin float64
	if fLo >= 0 {
		// Even with no upsizing the chip meets the target.
		wmin = lo
	} else {
		var ferr error
		wmin, err = numeric.Bisect(func(w float64) float64 {
			v, e := f(w)
			if e != nil && ferr == nil {
				ferr = e
			}
			return v
		}, lo, hi, 1e-3, 200)
		if ferr != nil {
			return Result{}, ferr
		}
		if err != nil {
			return Result{}, err
		}
		// Bisection can land a hair below the target; nudge up to the safe
		// side.
		for i := 0; i < 50; i++ {
			y, err := p.yieldAt(wmin)
			if err != nil {
				return Result{}, err
			}
			if y >= p.DesiredYield {
				break
			}
			wmin += 1e-3 * hi
		}
	}
	pf, err := p.Model.FailureProb(wmin)
	if err != nil {
		return Result{}, err
	}
	y, err := p.yieldAt(wmin)
	if err != nil {
		return Result{}, err
	}
	return Result{Wmin: wmin, MminShare: p.Widths.ShareBelow(wmin), DevicePF: pf, Yield: y}, nil
}

// yieldAt evaluates the chip yield with every device upsized to at least wt,
// using the relax factor as a divisor on effective failure probabilities.
func (p *Problem) yieldAt(wt float64) (float64, error) {
	ws := p.Widths.Widths()
	probs := p.Widths.Probs()
	upsized := make([]float64, len(ws))
	// Widths beyond the count model's range are evaluated at the range cap:
	// pF is decreasing in width, so this only overestimates failure — the
	// resulting Wmin is conservative, never optimistic.
	cap := p.Model.CountModel().MaxWidth()
	for i, w := range ws {
		upsized[i] = math.Min(math.Max(w, wt), cap)
	}
	pfs, err := p.Model.FailureProbs(upsized)
	if err != nil {
		return 0, err
	}
	counts := make([]float64, len(ws))
	for i := range probs {
		counts[i] = probs[i] * p.M
		pfs[i] /= p.RelaxFactor
	}
	return WeightedYield(pfs, counts)
}
