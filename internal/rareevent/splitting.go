package rareevent

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/montecarlo"
	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/rowyield"
)

// The splitting engine Bernoulli-izes the row model: a state is one complete
// realization (track positions, an independent kill bit per track, per-offset
// CNFET counts) and the severity of a state is
//
//	S = max over occupied windows of (longest contiguously killed run inside
//	    the window) / (window track count),
//
// with an empty window scoring 1 directly. S = 1 exactly when the row fails,
// so multilevel splitting over S estimates the same pRF the exact-DP rounds
// estimate — from Bernoulli realizations instead of conditional
// probabilities, which is what gives the event a severity ladder to climb.
//
// One replica is one fixed-effort subset simulation: a population of
// Population states walks an adaptive threshold ladder (each level's
// threshold is the empirical (1-Rho) severity quantile), survivors are
// resampled and decorrelated with conditional-resampling MCMC moves (each
// move redraws a coordinate block — a kill-bit range, a track suffix with
// its kill bits, or the offset counts — from its unconditional law and
// accepts iff severity stays above the threshold, a valid Metropolis kernel
// for the conditioned law), and the replica's estimate is the product of the
// per-level survival fractions times the final level's failure fraction.
// Replicas are ordinary Monte Carlo rounds to the montecarlo engine: each
// draws from its own derived stream, so estimates are bit-identical across
// worker counts, and the replica scatter prices both the variance and the
// O(1/Population) ratio-estimator bias of one replica.

// splitEngine is the immutable per-model configuration shared by all
// replicas; the atomic counters aggregate order-independent run statistics
// (sums and maxima commute, so they stay deterministic across schedules).
type splitEngine struct {
	first, pitch dist.Sampler
	offsets      []float64
	probs        []float64
	lastOcc      int
	width, span  float64
	pf           float64
	nFETs        int
	pop          int
	rho          float64
	moves        int

	states    atomic.Int64
	maxLevels atomic.Int64
}

// sstate is one Bernoulli-ized realization.
type sstate struct {
	tracks []float64
	kills  []bool
	counts []int
	sev    float64
}

// splitScratch is the per-worker reusable population memory.
type splitScratch struct {
	cur, next []sstate
	prop      sstate
	sevs      []float64
	surv      []int32
}

// newSplitEngine builds the engine from the prepared model's public surface.
func newSplitEngine(m *rowyield.RowModel, scenario rowyield.Scenario, opt Options) (*splitEngine, error) {
	first, err := dist.ForwardRecurrenceFor(m.Pitch)
	if err != nil {
		return nil, err
	}
	pitch, err := dist.FastSamplerFor(m.Pitch)
	if err != nil {
		return nil, err
	}
	nFETs, err := m.FETsPerRow()
	if err != nil {
		return nil, err
	}
	e := &splitEngine{
		first: first.Sample, pitch: pitch,
		width: m.WidthNM, pf: m.PerCNTFailure, nFETs: nFETs,
		pop: opt.Population, rho: opt.Rho, moves: opt.Moves,
	}
	switch scenario {
	case rowyield.DirectionalAligned:
		e.offsets = []float64{0}
		e.probs = []float64{1}
		e.span = m.WidthNM
	case rowyield.DirectionalUnaligned:
		e.offsets = m.Offsets.Offsets
		e.probs = m.Offsets.Probs
		e.span = m.WidthNM + m.Offsets.Span()
	default:
		return nil, fmt.Errorf("rareevent: splitting supports directional scenarios, not %v", scenario)
	}
	for i, p := range e.probs {
		if p > 0 {
			e.lastOcc = i
		}
	}
	return e, nil
}

// estimateSplitting runs adaptive blocks of splitting replicas.
func estimateSplitting(ctx context.Context, m *rowyield.RowModel, scenario rowyield.Scenario, opt Options, extraRounds int) (Estimate, error) {
	e, err := newSplitEngine(m, scenario, opt)
	if err != nil {
		return Estimate{}, err
	}
	maxReplicas := opt.MaxRounds / (opt.Population * splitLevelGuess)
	if maxReplicas < 4 {
		maxReplicas = 4
	}
	minReplicas := 8
	if minReplicas > maxReplicas {
		minReplicas = maxReplicas
	}
	sp := obs.StartLeaf(ctx, "mc.run")
	est, err := montecarlo.RunStateAdaptive(e.newScratch,
		func(r *rand.Rand, sc *splitScratch) (float64, error) {
			return e.replica(r, sc), nil
		}, montecarlo.AdaptiveOptions{
			Options:      montecarlo.Options{Seed: opt.Seed, Workers: opt.Workers, BatchSize: 1, Counters: sp.MC()},
			RelErrTarget: opt.RelErrTarget,
			MaxRounds:    maxReplicas,
			MinRounds:    minReplicas,
		})
	if err != nil {
		endRunSpan(sp, Estimate{}, err)
		return Estimate{}, err
	}
	out := Estimate{
		Mean: est.Mean, StdErr: est.StdErr,
		Rounds:   int(e.states.Load()) + extraRounds,
		Method:   Splitting,
		Levels:   int(e.maxLevels.Load()),
		Replicas: est.Rounds,
	}
	endRunSpan(sp, out, nil)
	return out, nil
}

// newScratch allocates one worker's population memory.
func (e *splitEngine) newScratch() *splitScratch {
	sc := &splitScratch{
		cur:  make([]sstate, e.pop),
		next: make([]sstate, e.pop),
		sevs: make([]float64, 0, e.pop),
		surv: make([]int32, 0, e.pop),
	}
	init := func(st *sstate) {
		st.tracks = make([]float64, 0, 64)
		st.kills = make([]bool, 0, 64)
		st.counts = make([]int, len(e.offsets))
	}
	for i := range sc.cur {
		init(&sc.cur[i])
		init(&sc.next[i])
	}
	init(&sc.prop)
	return sc
}

// replica runs one fixed-effort subset simulation and returns its estimate.
func (e *splitEngine) replica(r *rand.Rand, sc *splitScratch) float64 {
	n := e.pop
	statesSimulated := 0
	for i := range sc.cur {
		e.sampleState(r, &sc.cur[i])
	}
	statesSimulated += n

	prod := 1.0
	prevT := math.Inf(-1)
	levels := 0
	finish := func(v float64) float64 {
		e.states.Add(int64(statesSimulated))
		atomicMax(&e.maxLevels, int64(levels))
		return v
	}
	nKeep := int(e.rho * float64(n))
	if nKeep < 1 {
		nKeep = 1
	}
	for levels = 1; levels <= maxSplitLevels; levels++ {
		sevs := sc.sevs[:0]
		for i := range sc.cur {
			sevs = append(sevs, sc.cur[i].sev)
		}
		sort.Float64s(sevs)
		t := sevs[n-nKeep] // the empirical (1-rho) quantile
		reached := 0
		for i := range sc.cur {
			if sc.cur[i].sev >= 1 {
				reached++
			}
		}
		if t >= 1 || t <= prevT {
			// Either the population has pushed the working quantile to the
			// failure set, or severity has stalled (no move can climb):
			// close with the direct failure fraction of the current level.
			return finish(prod * float64(reached) / float64(n))
		}
		count := 0
		surv := sc.surv[:0]
		for i := range sc.cur {
			if sc.cur[i].sev >= t {
				count++
				surv = append(surv, int32(i))
			}
		}
		sc.surv = surv
		prod *= float64(count) / float64(n)
		for i := range sc.next {
			src := surv[r.Intn(len(surv))]
			copyState(&sc.next[i], &sc.cur[src])
			for mv := 0; mv < e.moves; mv++ {
				e.mcmcMove(r, &sc.next[i], t, &sc.prop)
			}
		}
		statesSimulated += n * e.moves
		sc.cur, sc.next = sc.next, sc.cur
		prevT = t
	}
	levels = maxSplitLevels
	reached := 0
	for i := range sc.cur {
		if sc.cur[i].sev >= 1 {
			reached++
		}
	}
	return finish(prod * float64(reached) / float64(n))
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// sampleState draws a fresh realization from the unconditional law.
func (e *splitEngine) sampleState(r *rand.Rand, st *sstate) {
	st.tracks = st.tracks[:0]
	st.kills = st.kills[:0]
	y := e.first(r)
	for y < e.span {
		st.tracks = append(st.tracks, y)
		st.kills = append(st.kills, r.Float64() < e.pf)
		y += e.pitch(r)
	}
	e.sampleCounts(r, st.counts)
	st.sev = e.severity(st)
}

// sampleCounts draws the per-offset CNFET counts by the same sequential-
// binomial factorization of the multinomial the exact-DP rounds use.
func (e *splitEngine) sampleCounts(r *rand.Rand, counts []int) {
	n := e.nFETs
	rest := 1.0
	for i, p := range e.probs {
		counts[i] = 0
		if p <= 0 || n == 0 {
			continue
		}
		if i == e.lastOcc || rest <= p {
			counts[i] = n
			n = 0
			continue
		}
		ni := binomialSample(r, n, p/rest)
		counts[i] = ni
		n -= ni
		rest -= p
	}
}

// binomialSample draws Bin(n, p) by CDF inversion, falling back to Bernoulli
// counting when the zero term underflows (mirrors the rowyield sampler).
func binomialSample(r *rand.Rand, n int, p float64) int {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	pmf := math.Exp(float64(n) * math.Log1p(-p))
	if pmf < 1e-300 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	u := r.Float64()
	cdf := pmf
	ratio := p / (1 - p)
	k := 0
	for u > cdf && k < n {
		k++
		pmf *= ratio * float64(n-k+1) / float64(k)
		cdf += pmf
	}
	return k
}

// severity scores a state: the worst window's killed-run fraction.
func (e *splitEngine) severity(st *sstate) float64 {
	maxS := 0.0
	for i, c := range st.counts {
		if c == 0 {
			continue
		}
		off := e.offsets[i]
		lo := searchF(st.tracks, off)
		hi := searchF(st.tracks, off+e.width) - 1
		if hi < lo {
			return 1 // a window with zero tracks fails with certainty
		}
		run, best := 0, 0
		for j := lo; j <= hi; j++ {
			if st.kills[j] {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
		}
		width := hi - lo + 1
		if best == width {
			return 1
		}
		if s := float64(best) / float64(width); s > maxS {
			maxS = s
		}
	}
	return maxS
}

// searchF returns the smallest index with xs[i] >= x.
func searchF(xs []float64, x float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// copyState copies src into dst, reusing dst's buffers.
func copyState(dst, src *sstate) {
	dst.tracks = append(dst.tracks[:0], src.tracks...)
	dst.kills = append(dst.kills[:0], src.kills...)
	dst.counts = append(dst.counts[:0], src.counts...)
	dst.sev = src.sev
}

// mcmcMove applies one conditional-resampling Metropolis move at threshold
// t: propose by redrawing one coordinate block from its unconditional law,
// accept iff the proposal's severity stays ≥ t. Because the proposal law is
// exactly the block's unconditional conditional (the blocks are mutually
// independent), the acceptance indicator is the full Metropolis ratio and
// the conditioned law is invariant.
func (e *splitEngine) mcmcMove(r *rand.Rand, st *sstate, t float64, prop *sstate) {
	copyState(prop, st)
	u := r.Float64()
	switch {
	case u < 0.5 && len(prop.kills) > 0:
		// Kill-bit block redraw.
		n := len(prop.kills)
		j := r.Intn(n)
		l := n/4 + 1
		for k := j; k < n && k < j+l; k++ {
			prop.kills[k] = r.Float64() < e.pf
		}
	case u < 0.85:
		// Track-suffix redraw (with fresh kill bits for the new tracks).
		e.redrawTracksFrom(r, prop, r.Intn(len(prop.tracks)+1))
	default:
		// Offset-count redraw.
		e.sampleCounts(r, prop.counts)
	}
	prop.sev = e.severity(prop)
	if prop.sev >= t {
		*st, *prop = *prop, *st
	}
}

// redrawTracksFrom redraws the renewal suffix starting at track index j
// (j = 0 redraws the whole realization, first gap included) together with
// the kill bits of every redrawn track.
func (e *splitEngine) redrawTracksFrom(r *rand.Rand, st *sstate, j int) {
	var y float64
	if j == 0 {
		st.tracks = st.tracks[:0]
		st.kills = st.kills[:0]
		y = e.first(r)
	} else {
		st.tracks = st.tracks[:j]
		st.kills = st.kills[:j]
		y = st.tracks[j-1] + e.pitch(r)
	}
	for y < e.span {
		st.tracks = append(st.tracks, y)
		st.kills = append(st.kills, r.Float64() < e.pf)
		y += e.pitch(r)
	}
}
