// Package rareevent estimates deep-tail row failure probabilities — the
// regime below ~1e-10 where the paper's high-correlation scenarios live and
// plain Monte Carlo goes blind — as an estimator layer over the
// zero-allocation rowyield round engine.
//
// Two rare-event methods are provided, both unbiased-by-construction or with
// an explicitly documented bias (DESIGN.md §8 states the full estimator
// contract):
//
//   - Tilted: importance sampling by exponential tilting of the pitch law
//     (dist.TruncNormal.Tilt). Rounds draw sparser track realizations and
//     return the exact conditional failure probability times an unbiased
//     likelihood-ratio weight (rowyield.TiltedRowModel). The tilt parameter
//     is chosen by an analytic renewal-CLT heuristic refined by a short
//     deterministic pilot ladder.
//   - Splitting: fixed-effort multilevel splitting over a row-failure
//     severity function (the maximum per-window fraction of contiguously
//     killed tracks), for laws or regimes where no useful tilt exists. Each
//     replica is one full subset-simulation run; replicas parallelize like
//     ordinary Monte Carlo rounds. The per-replica estimate is a product of
//     ratio estimators and carries an O(1/population) bias, quantified by
//     the replica scatter.
//
// Every method runs under relative-error-targeted adaptive stopping
// (montecarlo.RunStateAdaptive): simulation proceeds in deterministic
// doubling blocks until the estimate's relative standard error reaches the
// target or a hard round cap is spent, and results stay bit-identical
// across worker counts. Auto selects between the methods from the pilot:
// the candidate with the lowest measured variance per round wins, falling
// back to splitting when neither plain nor tilted rounds see any mass.
//
//yield:compute
package rareevent

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/montecarlo"
	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/rowyield"
)

// Method selects the rare-event estimator.
type Method int

// The estimator methods. Plain is the zero value: the exact-DP Monte Carlo
// rounds of the base engine, unchanged except for adaptive stopping.
const (
	// Plain runs the base rowyield rounds under adaptive stopping.
	Plain Method = iota
	// Tilted runs importance-sampled rounds under the exponentially tilted
	// pitch law with unbiased likelihood-ratio weights.
	Tilted
	// Splitting runs fixed-effort multilevel splitting replicas over the
	// row-failure severity function.
	Splitting
	// Auto pilots plain rounds against a tilt ladder and picks the method
	// with the lowest measured variance per round, falling back to
	// splitting when no candidate sees any probability mass.
	Auto
)

// String returns the spec-level method name.
func (m Method) String() string {
	switch m {
	case Plain:
		return "plain"
	case Tilted:
		return "tilted"
	case Splitting:
		return "splitting"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod maps a spec-level method name ("plain", "tilted", "splitting",
// "auto") to its Method.
func ParseMethod(name string) (Method, error) {
	switch name {
	case "plain":
		return Plain, nil
	case "tilted":
		return Tilted, nil
	case "splitting":
		return Splitting, nil
	case "auto":
		return Auto, nil
	default:
		return 0, fmt.Errorf("rareevent: unknown method %q (have plain, tilted, splitting, auto)", name)
	}
}

// Defaults of the estimator knobs; all are overridable through Options.
const (
	// DefaultMaxRounds is the hard cap on simulation rounds (track
	// realizations, or splitting states) when Options.MaxRounds is zero.
	DefaultMaxRounds = 1 << 22
	// DefaultPilotRounds is the per-candidate budget of the tilt-selection
	// pilot.
	DefaultPilotRounds = 2048
	// DefaultPopulation is the per-replica splitting population.
	DefaultPopulation = 1024
	// DefaultRho is the splitting level fraction: each level's threshold is
	// the empirical (1-Rho) severity quantile of the population.
	DefaultRho = 0.1
	// DefaultMoves is the number of MCMC refreshment moves applied to each
	// resampled splitting state.
	DefaultMoves = 4
	// splitLevelGuess converts the round budget into a replica cap before
	// the actual level count is known.
	splitLevelGuess = 8
	// maxSplitLevels bounds one replica's level ladder; at DefaultRho each
	// level gains about one decade, so 64 levels reach far below any
	// representable probability.
	maxSplitLevels = 64
)

// Options configures an estimate. The zero value runs the plain method with
// no early stopping over the default round budget.
type Options struct {
	// Method selects the estimator (default Plain).
	Method Method
	// RelErrTarget, when positive, stops the run once the estimate's
	// relative standard error reaches it; zero spends the whole budget.
	RelErrTarget float64
	// MaxRounds caps total simulation rounds (0 = DefaultMaxRounds). For
	// splitting the cap is interpreted as a state budget: replicas stop
	// when Population·splitLevelGuess per replica would exceed it.
	MaxRounds int
	// MinRounds is the first adaptive block (0 = the montecarlo default;
	// splitting uses replica-sized blocks regardless).
	MinRounds int
	// Seed is the root seed (0 = rng.DefaultSeed).
	Seed uint64
	// Workers caps parallelism (0 = NumCPU).
	Workers int
	// PilotRounds is the per-candidate tilt-pilot budget
	// (0 = DefaultPilotRounds).
	PilotRounds int
	// Population, Rho and Moves tune the splitting replicas
	// (0 = the package defaults).
	Population int
	Rho        float64
	Moves      int
}

// withDefaults resolves zero options to the package defaults.
func (o Options) withDefaults() Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = DefaultMaxRounds
	}
	if o.Seed == 0 {
		o.Seed = rng.DefaultSeed
	}
	if o.PilotRounds < 2 {
		o.PilotRounds = DefaultPilotRounds
	}
	if o.Population <= 1 {
		o.Population = DefaultPopulation
	}
	if !(o.Rho > 0 && o.Rho < 1) {
		o.Rho = DefaultRho
	}
	if o.Moves <= 0 {
		o.Moves = DefaultMoves
	}
	return o
}

// Estimate is one rare-event estimate with its provenance: which method
// actually ran (Auto resolves to the winner), the tilt parameter or
// splitting shape used, and the rounds consumed (including any pilot).
type Estimate struct {
	// Mean and StdErr are the estimate and its standard error.
	Mean, StdErr float64
	// Rounds counts simulation rounds consumed: track realizations for the
	// plain and tilted methods (pilot included), simulated states for
	// splitting.
	Rounds int
	// Method is the estimator that produced the numbers; Auto reports the
	// method it selected.
	Method Method
	// Theta is the tilt parameter (Tilted only).
	Theta float64
	// Levels and Replicas describe the splitting run (Splitting only):
	// the deepest level ladder any replica built, and the replica count.
	Levels, Replicas int
}

// RelErr returns StdErr/Mean (infinite for a zero mean).
func (e Estimate) RelErr() float64 {
	if e.Mean == 0 {
		return math.Inf(1)
	}
	return e.StdErr / e.Mean
}

// EstimateRowFailure estimates pRF for a directional scenario of the
// prepared row model. The uncorrelated scenario is rejected for the
// rare-event methods — it has the closed form rowyield.IndependentRowFailure
// and needs no sampling. A model with per-CNT failure zero short-circuits to
// an exact zero.
//
// Deprecated: use EstimateRowFailureContext. This shim detaches from any
// caller context, so runs started through it can never carry the caller's
// tracer; it is kept only until the remaining context-less callers migrate.
func EstimateRowFailure(m *rowyield.RowModel, scenario rowyield.Scenario, opt Options) (Estimate, error) {
	//yield:allow(ctxflow) deprecated context-less shim: detachment is its documented contract until callers migrate to EstimateRowFailureContext
	return EstimateRowFailureContext(context.Background(), m, scenario, opt)
}

// EstimateRowFailureContext is EstimateRowFailure under a context: when the
// context carries an obs.Tracer, the estimator records "mc.pilot" spans for
// its tilt-selection pilots and an "mc.run" span (method, rounds, tilt θ,
// achieved rel-err, engine counters) for the main run. Tracing never
// changes the numbers — the context is observability-only, not
// cancellation: runs are deterministic in (seed, options) and always
// complete.
func EstimateRowFailureContext(ctx context.Context, m *rowyield.RowModel, scenario rowyield.Scenario, opt Options) (Estimate, error) {
	if err := m.Prepare(); err != nil {
		return Estimate{}, err
	}
	opt = opt.withDefaults()
	if scenario == rowyield.UncorrelatedGrowth && opt.Method != Plain {
		return Estimate{}, fmt.Errorf("rareevent: %v has a closed form (rowyield.IndependentRowFailure); rare-event methods apply to the directional scenarios", scenario)
	}
	if m.PerCNTFailure == 0 {
		// No track ever fails: pRF is exactly zero for every scenario.
		return Estimate{Method: Plain}, nil
	}
	switch opt.Method {
	case Plain:
		return estimatePlain(ctx, m, scenario, opt, 0)
	case Tilted:
		ladder, err := tiltLadder(m)
		if err != nil {
			return Estimate{}, err
		}
		psp := obs.StartLeaf(ctx, "mc.pilot")
		theta, pilotRounds, err := bestTilt(m, scenario, ladder, opt)
		psp.SetAttr("candidates", len(ladder))
		psp.SetAttr("rounds", pilotRounds)
		psp.SetAttr("tilt_theta", theta)
		psp.End()
		if err != nil {
			return Estimate{}, err
		}
		if theta == 0 {
			// No useful tilt exists (the event is not rare enough to move
			// the law for); the plain rounds are the optimal sampler.
			return estimatePlain(ctx, m, scenario, opt, pilotRounds)
		}
		return estimateTilted(ctx, m, scenario, theta, opt, pilotRounds)
	case Splitting:
		return estimateSplitting(ctx, m, scenario, opt, 0)
	case Auto:
		return estimateAuto(ctx, m, scenario, opt)
	default:
		return Estimate{}, fmt.Errorf("rareevent: unknown method %d", int(opt.Method))
	}
}

// endRunSpan finishes an "mc.run" span with the estimate's provenance.
// Nil-safe like all span operations.
func endRunSpan(sp *obs.Span, est Estimate, err error) {
	if sp == nil {
		return
	}
	if err == nil {
		sp.SetAttr("method", est.Method.String())
		sp.SetAttr("rounds", est.Rounds)
		if est.Theta != 0 {
			sp.SetAttr("tilt_theta", est.Theta)
		}
		if est.Levels > 0 {
			sp.SetAttr("split_levels", est.Levels)
		}
		if est.Replicas > 0 {
			sp.SetAttr("replicas", est.Replicas)
		}
		if est.Mean > 0 {
			sp.SetAttr("rel_err", est.RelErr())
		}
	}
	sp.End()
}

// estimatePlain runs the base rounds under adaptive stopping.
func estimatePlain(ctx context.Context, m *rowyield.RowModel, scenario rowyield.Scenario, opt Options, extraRounds int) (Estimate, error) {
	sp := obs.StartLeaf(ctx, "mc.run")
	est, err := montecarlo.RunStateAdaptive(m.NewRoundState,
		func(r *rand.Rand, st *rowyield.RoundState) (float64, error) {
			return m.Round(r, scenario, st)
		}, adaptiveOptions(opt, extraRounds, sp.MC()))
	if err != nil {
		endRunSpan(sp, Estimate{}, err)
		return Estimate{}, err
	}
	out := Estimate{Mean: est.Mean, StdErr: est.StdErr, Rounds: est.Rounds + extraRounds, Method: Plain}
	endRunSpan(sp, out, nil)
	return out, nil
}

// estimateTilted runs importance-sampled rounds at the given tilt.
func estimateTilted(ctx context.Context, m *rowyield.RowModel, scenario rowyield.Scenario, theta float64, opt Options, extraRounds int) (Estimate, error) {
	tm, err := m.Tilted(theta)
	if err != nil {
		return Estimate{}, err
	}
	sp := obs.StartLeaf(ctx, "mc.run")
	est, err := montecarlo.RunStateAdaptive(tm.NewRoundState,
		func(r *rand.Rand, st *rowyield.RoundState) (float64, error) {
			return tm.Round(r, scenario, st)
		}, adaptiveOptions(opt, extraRounds, sp.MC()))
	if err != nil {
		endRunSpan(sp, Estimate{}, err)
		return Estimate{}, err
	}
	out := Estimate{Mean: est.Mean, StdErr: est.StdErr, Rounds: est.Rounds + extraRounds, Method: Tilted, Theta: theta}
	endRunSpan(sp, out, nil)
	return out, nil
}

// adaptiveOptions maps Options onto the montecarlo adaptive runner,
// docking any rounds already spent (pilots) from the hard cap. counters
// (nil when untraced) ride into the engine for per-worker flushing.
func adaptiveOptions(opt Options, spent int, counters *obs.MCCounters) montecarlo.AdaptiveOptions {
	budget := opt.MaxRounds - spent
	if budget < 2 {
		budget = 2
	}
	return montecarlo.AdaptiveOptions{
		Options:      montecarlo.Options{Seed: opt.Seed, Workers: opt.Workers, Counters: counters},
		RelErrTarget: opt.RelErrTarget,
		MaxRounds:    budget,
		MinRounds:    opt.MinRounds,
	}
}

// estimateAuto pilots plain rounds against the tilt ladder and dispatches to
// the measured winner; when no candidate sees probability mass the event is
// too deep for direct sampling and splitting takes over.
//
// The plain candidate is not judged by its own pilot alone. The conditional
// estimator's p-distribution is heavy-tailed in the deep tail — the rare
// realizations that dominate E[p²] are the ones a short plain run never
// visits — so a plain pilot's Welford variance collapses spuriously and
// would win every comparison exactly where plain sampling is least
// trustworthy. Auto therefore prices the plain candidate at the larger of
// its self-measured relative variance and the tilt-measured one
// (E[p²]/E[p]² − 1 with E[p²] estimated under the best tilted candidate via
// rowyield.TiltedRowModel.Moments, which is unbiased for the base law's
// second moment).
func estimateAuto(ctx context.Context, m *rowyield.RowModel, scenario rowyield.Scenario, opt Options) (Estimate, error) {
	ladder, lerr := tiltLadder(m)
	if lerr != nil {
		ladder = nil // non-tiltable pitch law: auto degrades to plain vs splitting
	}
	psp := obs.StartLeaf(ctx, "mc.pilot")
	plain, err := runPilot(m, scenario, 0, 0, opt)
	if err != nil {
		psp.End()
		return Estimate{}, err
	}
	spent := plain.rounds
	best := pilotResult{relvar: math.Inf(1)}
	for i, theta := range ladder {
		p, err := runPilot(m, scenario, theta, i+1, opt)
		if err != nil {
			psp.End()
			return Estimate{}, err
		}
		spent += p.rounds
		if p.relvar < best.relvar {
			best = p
		}
	}
	plainRelvar := plain.relvar
	if !math.IsInf(best.relvar, 1) && best.mean > 0 {
		m2, rounds, err := runSecondMomentPilot(m, scenario, best.theta, len(ladder)+1, opt)
		if err != nil {
			psp.End()
			return Estimate{}, err
		}
		spent += rounds
		truePlain := math.Inf(1)
		if m2 > 0 {
			truePlain = m2/(best.mean*best.mean) - 1
		}
		if truePlain > plainRelvar {
			plainRelvar = truePlain
		}
	}
	psp.SetAttr("candidates", len(ladder)+1)
	psp.SetAttr("rounds", spent)
	psp.SetAttr("tilt_theta", best.theta)
	psp.End()
	switch {
	case best.relvar < plainRelvar:
		return estimateTilted(ctx, m, scenario, best.theta, opt, spent)
	case !math.IsInf(plainRelvar, 1):
		return estimatePlain(ctx, m, scenario, opt, spent)
	default:
		return estimateSplitting(ctx, m, scenario, opt, spent)
	}
}

// runSecondMomentPilot estimates the base law's second moment E[p²] of the
// conditional failure probability by averaging p²·W over tilted
// realizations at tilt theta. Returns the estimate and the rounds spent.
func runSecondMomentPilot(m *rowyield.RowModel, scenario rowyield.Scenario, theta float64, idx int, opt Options) (float64, int, error) {
	tm, err := m.Tilted(theta)
	if err != nil {
		return 0, 0, err
	}
	est, err := montecarlo.RunState(opt.PilotRounds, tm.NewRoundState,
		func(r *rand.Rand, st *rowyield.RoundState) (float64, error) {
			_, p2w, err := tm.Moments(r, scenario, st)
			return p2w, err
		}, montecarlo.Options{Seed: pilotSeed(opt.Seed, idx), Workers: opt.Workers})
	if err != nil {
		return 0, 0, err
	}
	return est.Mean, est.Rounds, nil
}

// bestTilt pilots the candidate ladder and returns the measured-best tilt
// parameter plus the pilot rounds spent. An empty ladder, or a ladder whose
// pilots all score +Inf while θ* itself is absent, yields theta 0 (plain
// rounds); when every pilot misses the event entirely the analytic θ*
// (the ladder's third rung) is trusted outright — it was chosen to center
// the sampler on the dominant failure point, and a deeper event only makes
// the un-tilted alternative worse.
func bestTilt(m *rowyield.RowModel, scenario rowyield.Scenario, ladder []float64, opt Options) (float64, int, error) {
	best := pilotResult{relvar: math.Inf(1)}
	spent := 0
	for i, theta := range ladder {
		p, err := runPilot(m, scenario, theta, i+1, opt)
		if err != nil {
			return 0, 0, err
		}
		spent += p.rounds
		if p.relvar < best.relvar {
			best = p
		}
	}
	if math.IsInf(best.relvar, 1) && len(ladder) >= 3 {
		return ladder[2], spent, nil
	}
	return best.theta, spent, nil
}

// pilotResult is one tilt-pilot measurement: the per-round relative variance
// Var/Mean² is the figure of merit (rounds-to-target scales linearly in it);
// candidates that saw no mass score +Inf.
type pilotResult struct {
	theta  float64
	mean   float64
	relvar float64
	rounds int
}

// runPilot measures one candidate tilt (theta 0 = plain rounds) over the
// pilot budget with its own derived stream, deterministically.
func runPilot(m *rowyield.RowModel, scenario rowyield.Scenario, theta float64, idx int, opt Options) (pilotResult, error) {
	round := m.Round
	newState := m.NewRoundState
	if theta != 0 {
		tm, err := m.Tilted(theta)
		if err != nil {
			return pilotResult{}, err
		}
		round = tm.Round
		newState = tm.NewRoundState
	}
	est, err := montecarlo.RunState(opt.PilotRounds, newState,
		func(r *rand.Rand, st *rowyield.RoundState) (float64, error) {
			return round(r, scenario, st)
		}, montecarlo.Options{Seed: pilotSeed(opt.Seed, idx), Workers: opt.Workers})
	if err != nil {
		return pilotResult{}, err
	}
	res := pilotResult{theta: theta, mean: est.Mean, relvar: math.Inf(1), rounds: est.Rounds}
	if est.Mean > 0 {
		n := float64(est.Rounds)
		res.relvar = est.StdErr * est.StdErr * n / (est.Mean * est.Mean)
	}
	return res, nil
}

// pilotSeed derives the pilot stream for candidate idx, decorrelated from
// the main run's adaptive block seeds by a distinct mixing constant.
func pilotSeed(seed uint64, idx int) uint64 {
	return rng.SplitMix64(seed ^ 0x9120_7EED ^ rng.SplitMix64(uint64(idx)*0x9E3779B97F4A7C15+0xBF58476D1CE4E5B9))
}

// tiltLadder returns the candidate tilt parameters around the analytic
// heuristic θ*, or nil when no useful positive tilt exists.
func tiltLadder(m *rowyield.RowModel) ([]float64, error) {
	thetaStar, err := analyticTheta(m)
	if err != nil {
		return nil, err
	}
	if thetaStar <= 0 {
		return nil, nil
	}
	return []float64{0.5 * thetaStar, 0.75 * thetaStar, thetaStar, 1.25 * thetaStar}, nil
}

// analyticTheta solves the renewal-CLT dominant-point heuristic for the tilt
// parameter: the per-window track count N(W) is approximately normal with
// mean n₀ = W/μ and variance v = Wσ²/μ³, so the integrand pf^n·P(N=n) of a
// window's failure probability peaks at n* ≈ n₀ + v·ln pf. The heuristic
// tilts the pitch law until its post-truncation mean is W/n* — centering the
// sampler on the dominant failure count — and the pilot ladder around θ*
// absorbs the heuristic's normal-approximation error.
func analyticTheta(m *rowyield.RowModel) (float64, error) {
	var tn dist.TruncNormal
	switch p := m.Pitch.(type) {
	case dist.TruncNormal:
		tn = p
	case *dist.TruncNormal:
		tn = *p
	default:
		return 0, fmt.Errorf("rareevent: tilting requires a truncated-normal pitch law, have %T", m.Pitch)
	}
	pf := m.PerCNTFailure
	if pf <= 0 || pf >= 1 {
		return 0, nil
	}
	mu, sd, w := tn.Mean(), tn.StdDev(), m.WidthNM
	if !(mu > 0) || !(sd > 0) || !(w > 0) {
		return 0, nil
	}
	n0 := w / mu
	v := w * sd * sd / (mu * mu * mu)
	nStar := n0 + v*math.Log(pf)
	if nStar < 1 {
		nStar = 1
	}
	if nStar >= 0.95*n0 {
		return 0, nil // the tilt would barely move the law; plain sampling is fine
	}
	muTarget := w / nStar

	// The tilted post-truncation mean is strictly increasing in θ; bracket
	// geometrically from the untruncated-normal slope dMean/dθ ≈ σ² and
	// bisect. Tilt errors past the bracket (θ beyond representable mass)
	// stop the expansion at the last good point.
	excess := func(theta float64) (float64, bool) {
		t, _, err := tn.Tilt(theta)
		if err != nil {
			return 0, false
		}
		return t.Mean() - muTarget, true
	}
	hi := (muTarget - mu) / (tn.Sigma * tn.Sigma)
	if !(hi > 0) {
		return 0, nil
	}
	for i := 0; ; i++ {
		e, ok := excess(hi)
		if ok && e >= 0 {
			break
		}
		if !ok || i > 60 {
			// Never bracketed: use the largest tiltable θ found.
			hi /= 2
			if !(hi > 0) {
				return 0, nil
			}
			if _, ok := excess(hi); ok {
				return hi, nil
			}
			continue
		}
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		e, ok := excess(mid)
		if !ok || e > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi), nil
}
