package rareevent

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/montecarlo"
	"github.com/cnfet/yieldlab/internal/rowyield"
)

// probeModel is the deep-tail reference fixture used throughout this
// package's statistical gates: the paper's worst process corner
// (pf = 0.531), fourteen equiprobable 20 nm gate offsets, and a 200 um
// correlated CNT span. Row-failure probability drops roughly a decade
// per 15.8 nm of width, so the fixture reaches ~1.9e-7 at W = 142.7 nm,
// ~1.3e-10 at W = 200 nm and ~1.9e-14 at W = 270 nm. All gates below
// run on fixed seeds, so they are deterministic, not flaky; tolerances
// still leave 3-sigma-style margin so reruns under a reseeded fixture
// would pass too.
func probeModel(t testing.TB, width float64) *rowyield.RowModel {
	t.Helper()
	pitch, err := device.CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]float64, 14)
	probs := make([]float64, 14)
	for i := range offs {
		offs[i], probs[i] = float64(i)*20, 1
	}
	od, err := rowyield.NewOffsetDist(offs, probs)
	if err != nil {
		t.Fatal(err)
	}
	m := &rowyield.RowModel{
		Pitch:         pitch,
		PerCNTFailure: 0.531,
		WidthNM:       width,
		LCNTNM:        200_000,
		DensityPerUM:  1.8,
		Offsets:       od,
	}
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseMethod(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Method
	}{
		{"plain", Plain}, {"tilted", Tilted},
		{"splitting", Splitting}, {"auto", Auto},
	} {
		got, err := ParseMethod(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMethod(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Fatalf("Method round-trip: %q -> %v -> %q", tc.in, got, got.String())
		}
	}
	for _, bad := range []string{"", "importance"} {
		if _, err := ParseMethod(bad); err == nil {
			t.Fatalf("ParseMethod(%q) accepted", bad)
		}
	}
}

func TestZeroPFShortCircuits(t *testing.T) {
	m := probeModel(t, 142.7)
	m.PerCNTFailure = 0
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{Plain, Tilted, Splitting, Auto} {
		est, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if est.Mean != 0 || est.StdErr != 0 || est.Rounds != 0 {
			t.Fatalf("%v: pf=0 should be an exact zero estimate, got %+v", method, est)
		}
	}
}

func TestUncorrelatedRejectsRareEventMethods(t *testing.T) {
	m := probeModel(t, 142.7)
	if _, err := EstimateRowFailure(m, rowyield.UncorrelatedGrowth, Options{Method: Tilted}); err == nil {
		t.Fatal("tilted estimator accepted the uncorrelated scenario")
	}
	if _, err := EstimateRowFailure(m, rowyield.UncorrelatedGrowth, Options{Method: Splitting}); err == nil {
		t.Fatal("splitting estimator accepted the uncorrelated scenario")
	}
}

// TestTiltedMatchesPlain cross-validates the importance sampler against
// plain Monte Carlo at a depth (~1.9e-7) where plain MC still converges
// honestly, requiring agreement within 3 combined standard errors.
func TestTiltedMatchesPlain(t *testing.T) {
	m := probeModel(t, 142.7)
	plain, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, Options{
		Method: Plain, RelErrTarget: 0.05, MaxRounds: 1 << 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	tilt, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, Options{
		Method: Tilted, RelErrTarget: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Hypot(plain.StdErr, tilt.StdErr)
	if diff := math.Abs(plain.Mean - tilt.Mean); diff > 3*sigma {
		t.Fatalf("tilted %.4g vs plain %.4g differ by %.4g > 3*sigma %.4g",
			tilt.Mean, plain.Mean, diff, 3*sigma)
	}
}

// TestDeepTailAcceptance is the headline acceptance gate: a ~1.9e-14
// row-failure probability estimated to <=10% relative standard error.
// Plain Monte Carlo would need ~5e15 indicator rounds for the same
// precision; the tilted estimator gets there in about a million.
func TestDeepTailAcceptance(t *testing.T) {
	m := probeModel(t, 270)
	est, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, Options{
		Method: Tilted, RelErrTarget: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean <= 0 {
		t.Fatalf("deep-tail estimate collapsed to %g", est.Mean)
	}
	if rel := est.RelErr(); rel > 0.1 {
		t.Fatalf("relative error %.3f missed the 0.1 target in %d rounds", rel, est.Rounds)
	}
	// Reference anchor 1.9e-14 (tilted, ~2% rel err, stable across
	// seeds 0, 12345, 999: 1.90/1.88/1.96e-14). Half a decade of slack
	// on either side is far beyond any plausible statistical excursion.
	if lg := math.Log10(est.Mean); lg < -14.5 || lg > -13.5 {
		t.Fatalf("deep-tail estimate %.4g outside [1e-14.5, 1e-13.5]", est.Mean)
	}
}

// TestSplittingAgreesWithTilted checks the multilevel-splitting fallback
// against the tilted reference at ~1.9e-7. Splitting replicas are
// heavy-tailed (the empirical relative error underestimates until the
// rare large replicas land), so the gate is a log-ratio band rather
// than a sigma test: the two estimators must agree within half a
// decade. Measured at this budget: ratio ~1.4.
func TestSplittingAgreesWithTilted(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second splitting run")
	}
	m := probeModel(t, 142.7)
	tilt, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, Options{
		Method: Tilted, RelErrTarget: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, Options{
		Method: Splitting, Population: 256, Moves: 8,
		MaxRounds: 256 * splitLevelGuess * 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if split.Mean <= 0 {
		t.Fatalf("splitting collapsed to %g (levels=%d replicas=%d)",
			split.Mean, split.Levels, split.Replicas)
	}
	if ratio := split.Mean / tilt.Mean; ratio < 1.0/3 || ratio > 3 {
		t.Fatalf("splitting %.4g vs tilted %.4g: ratio %.2f outside [1/3, 3]",
			split.Mean, tilt.Mean, ratio)
	}
	if split.Levels < 2 {
		t.Fatalf("splitting built only %d severity levels; the ladder never engaged", split.Levels)
	}
}

// TestDeterministicAcrossWorkers pins the batch-order-merge contract:
// every estimator returns a bit-identical Estimate regardless of the
// worker count, because block seeds and merge order are derived from
// the options, not the scheduler.
func TestDeterministicAcrossWorkers(t *testing.T) {
	runs := []struct {
		name  string
		width float64
		opt   Options
	}{
		{"tilted", 142.7, Options{Method: Tilted, RelErrTarget: 0.1}},
		{"splitting", 142.7, Options{Method: Splitting, Population: 128, Moves: 4,
			MaxRounds: 128 * splitLevelGuess * 16}},
		{"auto", 80, Options{Method: Auto, RelErrTarget: 0.1}},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			m := probeModel(t, tc.width)
			estimate := func(workers int) Estimate {
				opt := tc.opt
				opt.Workers = workers
				est, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, opt)
				if err != nil {
					t.Fatal(err)
				}
				return est
			}
			ref := estimate(1)
			for _, workers := range []int{4, 8} {
				if got := estimate(workers); got != ref {
					t.Fatalf("workers=%d: %+v differs from single-worker %+v", workers, got, ref)
				}
			}
		})
	}
}

// TestVarianceReductionGate quantifies the speedup at ~1.3e-10. Two
// gates, against two baselines:
//
// An indicator (hit-or-miss) estimator needs 1/(p*relerr^2) rounds to
// reach a target relative error, ~7.6e11 rounds here; the tilted
// sampler must beat that by far more than the issue's 50x bar.
//
// The repo's plain estimator is already conditional (it averages exact
// per-round failure probabilities, not indicators), so the honest
// like-for-like bar is its true relative variance E[p^2]/E[p]^2 - 1,
// measured under the tilted law where the second moment is actually
// reachable. The tilted sampler must cut that by >=5x. (The plain
// estimator's own Welford error bars cannot be trusted at this depth:
// the p-distribution is heavy-tailed and plain MC appears converged
// while biased low; see DESIGN.md section 8.)
func TestVarianceReductionGate(t *testing.T) {
	const target = 0.1
	m := probeModel(t, 200)
	tilt, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, Options{
		Method: Tilted, RelErrTarget: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := tilt.RelErr(); rel > target {
		t.Fatalf("tilted missed the %.2f target: %.3f", target, rel)
	}
	indicatorRounds := 1 / (tilt.Mean * target * target)
	if got := float64(tilt.Rounds); got > indicatorRounds/50 {
		t.Fatalf("tilted used %.3g rounds; indicator baseline %.3g gives ratio %.1f < 50",
			got, indicatorRounds, indicatorRounds/got)
	}

	// Like-for-like relative variances via the tilted second moment.
	tm, err := m.Tilted(tilt.Theta)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 1 << 16
	e2, err := montecarlo.RunState(rounds, tm.NewRoundState,
		func(r *rand.Rand, st *rowyield.RoundState) (float64, error) {
			_, p2w, err := tm.Moments(r, rowyield.DirectionalUnaligned, st)
			return p2w, err
		}, montecarlo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	relvarTilted := tilt.RelErr() * tilt.RelErr() * float64(tilt.Rounds)
	relvarPlain := e2.Mean/(tilt.Mean*tilt.Mean) - 1
	if ratio := relvarPlain / relvarTilted; ratio < 5 {
		t.Fatalf("tilted relvar %.3g vs plain relvar %.3g: reduction %.1fx < 5x",
			relvarTilted, relvarPlain, ratio)
	}
}

// TestAutoSelection checks that auto picks plain where the conditional
// estimator is genuinely efficient (shallow tail) and switches to
// tilting in the deep tail where plain MC only appears converged.
func TestAutoSelection(t *testing.T) {
	for _, tc := range []struct {
		width float64
		want  Method
	}{
		{80, Plain},
		{270, Tilted},
	} {
		m := probeModel(t, tc.width)
		est, err := EstimateRowFailure(m, rowyield.DirectionalUnaligned, Options{
			Method: Auto, RelErrTarget: 0.1,
		})
		if err != nil {
			t.Fatalf("w=%g: %v", tc.width, err)
		}
		if est.Method != tc.want {
			t.Fatalf("w=%g: auto selected %v, want %v", tc.width, est.Method, tc.want)
		}
		if est.Mean <= 0 {
			t.Fatalf("w=%g: auto estimate collapsed to %g", tc.width, est.Mean)
		}
	}
}
