package rareevent

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/rowyield"
)

// BenchmarkRowYieldRareEvent measures the steady-state unit of work of
// each rare-event estimator on the Table 1-class fixture (W = 142.7 nm,
// worst corner): one weighted importance-sampling round for the tilted
// path, one full fixed-effort splitting replica for the splitting path.
// Registered in BENCH_BASELINE.json and gated in CI; the ratio gate
// there holds the tilted round to a bounded overhead over the plain
// unaligned round it replaces.
func BenchmarkRowYieldRareEvent(b *testing.B) {
	m := probeModel(b, 142.7)

	b.Run("tilted", func(b *testing.B) {
		ladder, err := tiltLadder(m)
		if err != nil || len(ladder) < 3 {
			b.Fatalf("ladder: %v %v", ladder, err)
		}
		tm, err := m.Tilted(ladder[0])
		if err != nil {
			b.Fatal(err)
		}
		st := tm.NewRoundState()
		r := rng.New(3)
		if _, _, err := tm.Moments(r, rowyield.DirectionalUnaligned, st); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := tm.Moments(r, rowyield.DirectionalUnaligned, st); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("splitting", func(b *testing.B) {
		e, err := newSplitEngine(m, rowyield.DirectionalUnaligned, Options{
			Population: 64, Moves: 2,
		}.withDefaults())
		if err != nil {
			b.Fatal(err)
		}
		sc := e.newScratch()
		r := rng.New(3)
		e.replica(r, sc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.replica(r, sc)
		}
	})
}
