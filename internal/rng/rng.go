// Package rng provides deterministic, independently seeded random number
// streams for Monte Carlo experiments.
//
// Every stochastic component in the repository receives its randomness from
// an explicit *rand.Rand created here, never from the global source, so that
// each experiment is reproducible from a single root seed. Parallel workers
// derive their own streams with Derive, which uses SplitMix64 so that streams
// with nearby indices are statistically independent.
package rng

import "math/rand"

// DefaultSeed is the root seed used by all experiment runners unless
// overridden. Its value is arbitrary but frozen: changing it invalidates the
// regression baselines in EXPERIMENTS.md.
const DefaultSeed uint64 = 0x5EEDCAFE_2010DAC1

// SplitMix64 advances x by one SplitMix64 step and returns the mixed output.
// It is the standard seeding generator recommended for initializing other
// PRNGs; we use it to derive independent stream seeds from a root seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a fresh generator seeded from the given root seed.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(SplitMix64(seed))))
}

// Derive returns a generator for the stream-th independent substream of the
// given root seed. Substreams are decorrelated by double SplitMix64 mixing,
// so worker i and worker i+1 do not share low-bit structure.
func Derive(seed, stream uint64) *rand.Rand {
	mixed := SplitMix64(seed ^ SplitMix64(stream*0xA5A5A5A5_5A5A5A5B+1))
	return rand.New(rand.NewSource(int64(mixed)))
}

// Seeds returns n derived substream seeds, useful when the caller wants to
// construct its own generators (for example one per goroutine).
func Seeds(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = SplitMix64(seed ^ SplitMix64(uint64(i)*0xA5A5A5A5_5A5A5A5B+1))
	}
	return out
}
