package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical SplitMix64 implementation
	// (Vigna), seeded with 0 and stepped three times.
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	// The helper is stateless (it takes the pre-increment state), so the
	// canonical sequence from state 0 is SplitMix64(k * golden-gamma).
	const gamma = 0x9E3779B97F4A7C15
	for i, w := range want {
		if got := SplitMix64(uint64(i) * gamma); got != w {
			t.Fatalf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look identical: %d collisions", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Adjacent streams must be decorrelated: estimate correlation of
	// uniform draws across 2 adjacent streams.
	a := Derive(DefaultSeed, 1)
	b := Derive(DefaultSeed, 2)
	n := 100_000
	var sa, sb, sab float64
	for i := 0; i < n; i++ {
		x, y := a.Float64()-0.5, b.Float64()-0.5
		sa += x * x
		sb += y * y
		sab += x * y
	}
	corr := sab / math.Sqrt(sa*sb)
	if math.Abs(corr) > 0.02 {
		t.Fatalf("adjacent streams correlated: %v", corr)
	}
}

func TestSeedsMatchDerive(t *testing.T) {
	seeds := Seeds(DefaultSeed, 8)
	if len(seeds) != 8 {
		t.Fatalf("len: %d", len(seeds))
	}
	for i := 1; i < len(seeds); i++ {
		if seeds[i] == seeds[i-1] {
			t.Fatal("adjacent derived seeds equal")
		}
	}
}

// Property: Derive is a pure function of (seed, stream).
func TestQuickDeriveDeterministic(t *testing.T) {
	f := func(seed, stream uint64) bool {
		return Derive(seed, stream).Uint64() == Derive(seed, stream).Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitMix64 has no obvious fixed points among random inputs.
func TestQuickSplitMixNotIdentity(t *testing.T) {
	f := func(x uint64) bool { return SplitMix64(x) != x || x == 0x0 && false }
	// A fixed point is astronomically unlikely; any hit is suspicious.
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
