package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/query"
)

// Job states, in lifecycle order.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job kinds.
const (
	JobKindExperiments = "experiments"
	JobKindQuery       = "query"
)

// JobJSON is the wire form of one job: an experiment batch (POST
// /v1/experiments) or a query sweep (POST /v2/query?async=1).
type JobJSON struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Experiments lists the artifact names of an experiments job.
	Experiments []string `json:"experiments,omitempty"`
	State       string   `json:"state"`
	Error       string   `json:"error,omitempty"`
	// Results carries a finished experiments job's artifacts.
	Results []ResultJSON `json:"results,omitempty"`
	// Query echoes a query job's canonical spec and Fingerprint its stable
	// identity; QueryResults grows in expansion order while the sweep runs
	// (checkpointed partial results), and Done/Total report its progress.
	Query        *query.Spec    `json:"query,omitempty"`
	Fingerprint  string         `json:"fingerprint,omitempty"`
	QueryResults []query.Result `json:"query_results,omitempty"`
	Done         int            `json:"done,omitempty"`
	Total        int            `json:"total,omitempty"`
	CreatedAt    time.Time      `json:"created_at"`
	StartedAt    *time.Time     `json:"started_at,omitempty"`
	FinishedAt   *time.Time     `json:"finished_at,omitempty"`
}

type jobRecord struct {
	id    string
	state string
	err   string

	// ctx is the submitter's request context. The job deliberately
	// outlives the request: run detaches cancellation (and the request's
	// tracer) before evaluating, keeping only the request's values.
	ctx context.Context

	// Experiments jobs.
	names   []string
	runner  *experiments.Runner
	workers int
	results []ResultJSON

	// Query jobs.
	spec        *query.Spec
	fingerprint string
	session     *query.Session
	qresults    []query.Result
	qdone       int
	qtotal      int

	created  time.Time
	started  time.Time
	finished time.Time
}

// jobEngine runs jobs on a bounded pool and retains a bounded history.
// Each job parallelizes internally (the concurrent Runner for experiment
// batches, the session's worker pool for query sweeps); the engine's own
// bound limits how many jobs compute at once.
type jobEngine struct {
	mu      sync.Mutex
	jobs    map[string]*jobRecord
	order   []string // creation order, for eviction of finished jobs
	maxJobs int
	nextID  int

	sem    chan struct{} // bounds concurrently running jobs
	wg     sync.WaitGroup
	onDone func() // called after each job finishes (cache persistence hook)
}

func newJobEngine(maxJobs, concurrent int, onDone func()) *jobEngine {
	// Config defaults are applied in server.New; these floors only guard
	// direct construction in tests.
	if maxJobs <= 0 {
		maxJobs = 1
	}
	if concurrent <= 0 {
		concurrent = 1
	}
	return &jobEngine{
		jobs:    make(map[string]*jobRecord),
		maxJobs: maxJobs,
		sem:     make(chan struct{}, concurrent),
		onDone:  onDone,
	}
}

// errJobsFull rejects submissions while the open-job bound is reached.
var errJobsFull = fmt.Errorf("job queue full, retry later")

// enqueue admits a populated record under the open-job bound and starts it
// as soon as a pool slot frees up.
func (e *jobEngine) enqueue(j *jobRecord) (JobJSON, error) {
	e.mu.Lock()
	open := 0
	for _, rec := range e.jobs {
		if rec.state == JobQueued || rec.state == JobRunning {
			open++
		}
	}
	if open >= e.maxJobs {
		e.mu.Unlock()
		return JobJSON{}, errJobsFull
	}
	e.nextID++
	j.id = fmt.Sprintf("job-%d", e.nextID)
	if j.ctx == nil {
		// Direct construction in tests; handlers always pass a request
		// context through submit/submitQuery.
		j.ctx = context.Background()
	}
	j.state = JobQueued
	j.created = time.Now()
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.evictLocked()
	snap := j.snapshotLocked()
	e.mu.Unlock()

	e.wg.Add(1)
	go e.run(j)
	return snap, nil
}

// submit queues an experiments job over pre-validated experiment names.
// Open (queued or running) jobs are bounded by the same maxJobs knob as the
// retained history, so a submit flood is refused instead of growing records
// and goroutines without limit.
func (e *jobEngine) submit(ctx context.Context, runner *experiments.Runner, names []string, workers int) (JobJSON, error) {
	return e.enqueue(&jobRecord{
		ctx:     ctx,
		names:   append([]string(nil), names...),
		runner:  runner,
		workers: workers,
	})
}

// submitQuery queues a query-sweep job over a canonical spec.
func (e *jobEngine) submitQuery(ctx context.Context, session *query.Session, spec query.Spec, fingerprint string) (JobJSON, error) {
	specCopy := spec
	return e.enqueue(&jobRecord{
		ctx:         ctx,
		spec:        &specCopy,
		fingerprint: fingerprint,
		session:     session,
		qtotal:      spec.ExpandCount(),
	})
}

func (e *jobEngine) run(j *jobRecord) {
	defer e.wg.Done()
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	e.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	e.mu.Unlock()

	// The job outlives its submitting request by design: keep the request's
	// values but drop its cancellation (the client already got 202 and polls
	// by job ID) and its tracer (the request span tree is finished by now;
	// attributing sweep spans to it would race with the response path).
	jobCtx := obs.Detach(context.WithoutCancel(j.ctx)) //yield:allow(ctxflow) async job engine: detachment from the request lifecycle is the documented contract

	var err error
	if j.spec != nil {
		// Query sweeps checkpoint partial results as the completed prefix
		// grows, so a polling client watches the sweep fill in.
		_, err = j.session.EvaluateAllFunc(jobCtx, *j.spec,
			func(done, total int, r query.Result) {
				e.mu.Lock()
				j.qresults = append(j.qresults, r)
				j.qdone, j.qtotal = done, total
				e.mu.Unlock()
			})
	} else {
		var results []*experiments.Result
		results, err = j.runner.RunMany(j.names, j.workers)
		if err == nil {
			e.mu.Lock()
			j.results = EncodeResults(results)
			e.mu.Unlock()
		}
	}

	e.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
	}
	e.mu.Unlock()
	if e.onDone != nil {
		e.onDone()
	}
}

// get returns a snapshot of the job.
func (e *jobEngine) get(id string) (JobJSON, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobJSON{}, false
	}
	return j.snapshotLocked(), true
}

// counts returns how many jobs sit in each state.
func (e *jobEngine) counts() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := map[string]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	for _, j := range e.jobs {
		out[j.state]++
	}
	return out
}

// drain blocks until every submitted job has finished.
func (e *jobEngine) drain() { e.wg.Wait() }

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Queued and running jobs are never evicted: their records are the only
// handle a client has on in-flight work.
func (e *jobEngine) evictLocked() {
	excess := len(e.jobs) - e.maxJobs
	if excess <= 0 {
		return
	}
	kept := e.order[:0]
	for _, id := range e.order {
		j := e.jobs[id]
		if excess > 0 && (j.state == JobDone || j.state == JobFailed) {
			delete(e.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

func (j *jobRecord) snapshotLocked() JobJSON {
	out := JobJSON{
		ID:          j.id,
		Kind:        JobKindExperiments,
		Experiments: append([]string(nil), j.names...),
		State:       j.state,
		Error:       j.err,
		Results:     j.results,
		CreatedAt:   j.created,
	}
	if j.spec != nil {
		out.Kind = JobKindQuery
		specCopy := *j.spec
		out.Query = &specCopy
		out.Fingerprint = j.fingerprint
		out.QueryResults = append([]query.Result(nil), j.qresults...)
		out.Done, out.Total = j.qdone, j.qtotal
	}
	if !j.started.IsZero() {
		t := j.started
		out.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.FinishedAt = &t
	}
	return out
}
