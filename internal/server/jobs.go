package server

import (
	"fmt"
	"sync"
	"time"

	"github.com/cnfet/yieldlab/internal/experiments"
)

// Job states, in lifecycle order.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobJSON is the wire form of one experiment job.
type JobJSON struct {
	ID          string       `json:"id"`
	Experiments []string     `json:"experiments"`
	State       string       `json:"state"`
	Error       string       `json:"error,omitempty"`
	Results     []ResultJSON `json:"results,omitempty"`
	CreatedAt   time.Time    `json:"created_at"`
	StartedAt   *time.Time   `json:"started_at,omitempty"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
}

type jobRecord struct {
	id       string
	names    []string
	runner   *experiments.Runner
	workers  int
	state    string
	err      string
	results  []ResultJSON
	created  time.Time
	started  time.Time
	finished time.Time
}

// jobEngine runs experiment jobs on a bounded pool and retains a bounded
// history. Each job executes its experiments through the concurrent Runner
// (RunMany), so one job already parallelizes internally; the engine's own
// bound limits how many jobs compute at once.
type jobEngine struct {
	mu      sync.Mutex
	jobs    map[string]*jobRecord
	order   []string // creation order, for eviction of finished jobs
	maxJobs int
	nextID  int

	sem    chan struct{} // bounds concurrently running jobs
	wg     sync.WaitGroup
	onDone func() // called after each job finishes (cache persistence hook)
}

func newJobEngine(maxJobs, concurrent int, onDone func()) *jobEngine {
	// Config defaults are applied in server.New; these floors only guard
	// direct construction in tests.
	if maxJobs <= 0 {
		maxJobs = 1
	}
	if concurrent <= 0 {
		concurrent = 1
	}
	return &jobEngine{
		jobs:    make(map[string]*jobRecord),
		maxJobs: maxJobs,
		sem:     make(chan struct{}, concurrent),
		onDone:  onDone,
	}
}

// errJobsFull rejects submissions while the open-job bound is reached.
var errJobsFull = fmt.Errorf("job queue full, retry later")

// submit queues a job over pre-validated experiment names and starts it as
// soon as a pool slot frees up. Open (queued or running) jobs are bounded
// by the same maxJobs knob as the retained history, so a submit flood is
// refused instead of growing records and goroutines without limit.
func (e *jobEngine) submit(runner *experiments.Runner, names []string, workers int) (JobJSON, error) {
	e.mu.Lock()
	open := 0
	for _, j := range e.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			open++
		}
	}
	if open >= e.maxJobs {
		e.mu.Unlock()
		return JobJSON{}, errJobsFull
	}
	e.nextID++
	j := &jobRecord{
		id:      fmt.Sprintf("job-%d", e.nextID),
		names:   append([]string(nil), names...),
		runner:  runner,
		workers: workers,
		state:   JobQueued,
		created: time.Now(),
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.evictLocked()
	snap := j.snapshotLocked()
	e.mu.Unlock()

	e.wg.Add(1)
	go e.run(j)
	return snap, nil
}

func (e *jobEngine) run(j *jobRecord) {
	defer e.wg.Done()
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	e.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	e.mu.Unlock()

	results, err := j.runner.RunMany(j.names, j.workers)

	e.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
		j.results = EncodeResults(results)
	}
	e.mu.Unlock()
	if e.onDone != nil {
		e.onDone()
	}
}

// get returns a snapshot of the job.
func (e *jobEngine) get(id string) (JobJSON, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobJSON{}, false
	}
	return j.snapshotLocked(), true
}

// counts returns how many jobs sit in each state.
func (e *jobEngine) counts() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := map[string]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	for _, j := range e.jobs {
		out[j.state]++
	}
	return out
}

// drain blocks until every submitted job has finished.
func (e *jobEngine) drain() { e.wg.Wait() }

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Queued and running jobs are never evicted: their records are the only
// handle a client has on in-flight work.
func (e *jobEngine) evictLocked() {
	excess := len(e.jobs) - e.maxJobs
	if excess <= 0 {
		return
	}
	kept := e.order[:0]
	for _, id := range e.order {
		j := e.jobs[id]
		if excess > 0 && (j.state == JobDone || j.state == JobFailed) {
			delete(e.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

func (j *jobRecord) snapshotLocked() JobJSON {
	out := JobJSON{
		ID:          j.id,
		Experiments: append([]string(nil), j.names...),
		State:       j.state,
		Error:       j.err,
		Results:     j.results,
		CreatedAt:   j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		out.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.FinishedAt = &t
	}
	return out
}
