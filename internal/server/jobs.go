package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/jobstore"
	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/query"
)

// Job states, in lifecycle order.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job kinds.
const (
	JobKindExperiments = "experiments"
	JobKindQuery       = "query"
)

// JobJSON is the wire form of one job: an experiment batch (POST
// /v1/experiments) or a query sweep (POST /v2/query?async=1).
type JobJSON struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Experiments lists the artifact names of an experiments job.
	Experiments []string `json:"experiments,omitempty"`
	State       string   `json:"state"`
	Error       string   `json:"error,omitempty"`
	// Results carries a finished experiments job's artifacts.
	Results []ResultJSON `json:"results,omitempty"`
	// Query echoes a query job's canonical spec and Fingerprint its stable
	// identity; QueryResults grows in expansion order while the sweep runs
	// (checkpointed partial results), and Done/Total report its progress.
	Query        *query.Spec    `json:"query,omitempty"`
	Fingerprint  string         `json:"fingerprint,omitempty"`
	QueryResults []query.Result `json:"query_results,omitempty"`
	Done         int            `json:"done,omitempty"`
	Total        int            `json:"total,omitempty"`
	CreatedAt    time.Time      `json:"created_at"`
	StartedAt    *time.Time     `json:"started_at,omitempty"`
	FinishedAt   *time.Time     `json:"finished_at,omitempty"`
}

type jobRecord struct {
	id    string
	state string
	err   string

	// ctx is the submitter's request context. The job deliberately
	// outlives the request: run detaches cancellation (and the request's
	// tracer) before evaluating, keeping only the request's values.
	ctx context.Context

	// Experiments jobs.
	names   []string
	runner  *experiments.Runner
	workers int
	results []ResultJSON

	// Query jobs.
	spec        *query.Spec
	fingerprint string
	session     *query.Session
	qresults    []query.Result
	qdone       int
	qtotal      int

	created  time.Time
	started  time.Time
	finished time.Time
}

// jobEngine runs jobs on a bounded pool and retains a bounded history.
// Each job parallelizes internally (the concurrent Runner for experiment
// batches, the session's worker pool for query sweeps); the engine's own
// bound limits how many jobs compute at once.
//
// With a journal attached, every admitted job is durable: its spec,
// state transitions and a stride-throttled prefix of its results are
// persisted, so a process death loses at most the work since the last
// checkpoint, never the job itself. adopt restores the journal on the
// next start.
type jobEngine struct {
	mu      sync.Mutex
	jobs    map[string]*jobRecord
	order   []string // creation order, for eviction of finished jobs
	maxJobs int
	nextID  int

	sem    chan struct{} // bounds concurrently running jobs
	wg     sync.WaitGroup
	onDone func() // called after each job finishes (cache persistence hook)

	// journal, when non-nil, persists job records across restarts.
	// Journal writes are best-effort: a failed Put degrades durability
	// (counted, surfaced in stats) but never fails the job itself.
	journal        *jobstore.Store
	journalErrs    atomic.Uint64
	lastJournalErr atomic.Pointer[string]
}

func newJobEngine(maxJobs, concurrent int, onDone func(), journal *jobstore.Store) *jobEngine {
	// Config defaults are applied in server.New; these floors only guard
	// direct construction in tests.
	if maxJobs <= 0 {
		maxJobs = 1
	}
	if concurrent <= 0 {
		concurrent = 1
	}
	return &jobEngine{
		jobs:    make(map[string]*jobRecord),
		maxJobs: maxJobs,
		sem:     make(chan struct{}, concurrent),
		onDone:  onDone,
		journal: journal,
	}
}

// errJobsFull rejects submissions while the open-job bound is reached.
// The server maps it to 503 with a Retry-After header and a retryable
// error envelope: the condition clears as soon as a running job finishes.
var errJobsFull = fmt.Errorf("job queue full, retry later")

// enqueue admits a populated record under the open-job bound and starts it
// as soon as a pool slot frees up.
func (e *jobEngine) enqueue(j *jobRecord) (JobJSON, error) {
	e.mu.Lock()
	open := 0
	for _, rec := range e.jobs {
		if rec.state == JobQueued || rec.state == JobRunning {
			open++
		}
	}
	if open >= e.maxJobs {
		e.mu.Unlock()
		return JobJSON{}, errJobsFull
	}
	e.nextID++
	j.id = fmt.Sprintf("job-%d", e.nextID)
	if j.ctx == nil {
		// Direct construction in tests; handlers always pass a request
		// context through submit/submitQuery.
		j.ctx = context.Background()
	}
	j.state = JobQueued
	j.created = time.Now()
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	evicted := e.evictLocked()
	snap := j.snapshotLocked()
	e.mu.Unlock()

	e.forgetJournal(evicted)
	e.journalPut(j)
	e.wg.Add(1)
	go e.run(j)
	return snap, nil
}

// submit queues an experiments job over pre-validated experiment names.
// Open (queued or running) jobs are bounded by the same maxJobs knob as the
// retained history, so a submit flood is refused instead of growing records
// and goroutines without limit.
func (e *jobEngine) submit(ctx context.Context, runner *experiments.Runner, names []string, workers int) (JobJSON, error) {
	return e.enqueue(&jobRecord{
		ctx:     ctx,
		names:   append([]string(nil), names...),
		runner:  runner,
		workers: workers,
	})
}

// submitQuery queues a query-sweep job over a canonical spec.
func (e *jobEngine) submitQuery(ctx context.Context, session *query.Session, spec query.Spec, fingerprint string) (JobJSON, error) {
	specCopy := spec
	return e.enqueue(&jobRecord{
		ctx:         ctx,
		spec:        &specCopy,
		fingerprint: fingerprint,
		session:     session,
		qtotal:      spec.ExpandCount(),
	})
}

// adopt restores the journal into the engine: terminal records come back
// as served history, open (queued/running) records are re-enqueued and
// resumed from their checkpointed result prefix. It must run before the
// server accepts requests; the ID counter continues above every adopted
// ID so restarts never recycle a job identity. Corrupt journal files were
// already quarantined by LoadAll; records that fail semantic decode here
// (e.g. an unknown kind) are dropped from the journal and counted as
// journal errors.
func (e *jobEngine) adopt(session *query.Session, runner *experiments.Runner, workers int) (resumed int, err error) {
	if e.journal == nil {
		return 0, nil
	}
	recs, err := e.journal.LoadAll()
	if err != nil {
		return 0, err
	}
	// The journal sorts lexically; creation order is numeric ("job-10"
	// sorts before "job-2" lexically, but was created after it).
	sort.SliceStable(recs, func(i, j int) bool { return jobSeq(recs[i].ID) < jobSeq(recs[j].ID) })
	var drop []string
	for _, rec := range recs {
		j, ok := e.restore(rec, session, runner, workers)
		if !ok {
			drop = append(drop, rec.ID)
			continue
		}
		e.mu.Lock()
		if n := jobSeq(rec.ID); n > e.nextID {
			e.nextID = n
		}
		e.jobs[j.id] = j
		e.order = append(e.order, j.id)
		open := j.state == JobQueued || j.state == JobRunning
		if open {
			// The previous process died between journaling "running" and
			// journaling a terminal state; the job restarts from its
			// checkpointed prefix.
			j.state = JobQueued
			j.started = time.Time{}
		}
		e.mu.Unlock()
		if open {
			resumed++
			e.journalPut(j)
			e.wg.Add(1)
			go e.run(j)
		}
	}
	e.forgetJournal(drop)
	return resumed, nil
}

// restore rebuilds one in-memory record from its journaled form.
func (e *jobEngine) restore(rec jobstore.Record, session *query.Session, runner *experiments.Runner, workers int) (*jobRecord, bool) {
	j := &jobRecord{
		id:       rec.ID,
		state:    rec.State,
		err:      rec.Error,
		ctx:      context.Background(),
		created:  rec.Created,
		started:  rec.Started,
		finished: rec.Finished,
	}
	switch rec.State {
	case JobQueued, JobRunning, JobDone, JobFailed:
	default:
		e.noteJournalErr(fmt.Errorf("job %s: unknown state %q", rec.ID, rec.State))
		return nil, false
	}
	switch rec.Kind {
	case JobKindQuery:
		var spec query.Spec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			e.noteJournalErr(fmt.Errorf("job %s: spec: %w", rec.ID, err))
			return nil, false
		}
		j.spec = &spec
		j.fingerprint = rec.Fingerprint
		j.session = session
		j.qtotal = rec.Total
		if j.qtotal == 0 {
			j.qtotal = spec.ExpandCount()
		}
		if len(rec.Results) > 0 {
			if err := json.Unmarshal(rec.Results, &j.qresults); err != nil {
				e.noteJournalErr(fmt.Errorf("job %s: results: %w", rec.ID, err))
				return nil, false
			}
		}
		// The decoded prefix is the truth about progress, not the
		// journaled counter (a crash can land between the two).
		j.qdone = len(j.qresults)
	case JobKindExperiments:
		j.names = append([]string(nil), rec.Experiments...)
		j.runner = runner
		j.workers = rec.Workers
		if j.workers <= 0 {
			j.workers = workers
		}
		if len(rec.Results) > 0 {
			if err := json.Unmarshal(rec.Results, &j.results); err != nil {
				e.noteJournalErr(fmt.Errorf("job %s: results: %w", rec.ID, err))
				return nil, false
			}
		}
	default:
		e.noteJournalErr(fmt.Errorf("job %s: unknown kind %q", rec.ID, rec.Kind))
		return nil, false
	}
	return j, true
}

// jobSeq extracts the numeric suffix of a "job-N" ID (0 when malformed).
func jobSeq(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func (e *jobEngine) run(j *jobRecord) {
	defer e.wg.Done()
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	e.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	e.mu.Unlock()
	e.journalPut(j)

	// The job outlives its submitting request by design: keep the request's
	// values but drop its cancellation (the client already got 202 and polls
	// by job ID) and its tracer (the request span tree is finished by now;
	// attributing sweep spans to it would race with the response path).
	jobCtx := obs.Detach(context.WithoutCancel(j.ctx)) //yield:allow(ctxflow) async job engine: detachment from the request lifecycle is the documented contract

	err := e.execute(jobCtx, j)

	e.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
	}
	e.mu.Unlock()
	e.journalPut(j)
	if e.onDone != nil {
		e.onDone()
	}
}

// execute runs one job's work and converts panics — genuine bugs or an
// armed job.run failpoint — into a failed job, so a single bad job can
// never take down the server or wedge the engine.
func (e *jobEngine) execute(ctx context.Context, j *jobRecord) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	if err := fault.InjectContext(ctx, fault.SiteJobRun); err != nil {
		return err
	}
	if j.spec == nil {
		results, err := j.runner.RunMany(j.names, j.workers)
		if err != nil {
			return err
		}
		e.mu.Lock()
		j.results = EncodeResults(results)
		e.mu.Unlock()
		return nil
	}
	e.mu.Lock()
	resume := len(j.qresults) > 0
	e.mu.Unlock()
	if resume {
		return e.resumeQuery(ctx, j)
	}
	// Query sweeps checkpoint partial results as the completed prefix
	// grows, so a polling client watches the sweep fill in. The journal
	// write is throttled to a stride: re-marshaling the growing prefix on
	// every result would cost O(n²) over a large sweep.
	stride := journalStride(j.qtotal)
	_, err = j.session.EvaluateAllFunc(ctx, *j.spec,
		func(done, total int, r query.Result) {
			e.mu.Lock()
			j.qresults = append(j.qresults, r)
			j.qdone, j.qtotal = done, total
			e.mu.Unlock()
			if e.journal != nil && (done%stride == 0 || done == total) {
				e.journalPut(j)
			}
			// The job.result site fires on the sweep's collector goroutine,
			// which has no recover: an armed panic action dies with the
			// whole process, mid-sweep — the chaos harness's stand-in for
			// power loss, leaving the journaled prefix as the only
			// survivor. Error actions have nothing left to fail here (the
			// result is already recorded) and are ignored.
			_ = fault.Inject(fault.SiteJobResult)
		})
	return err
}

// resumeQuery continues an adopted sweep past its journaled prefix. The
// remaining specs run sequentially: resumption is rare, and the ordered
// loop keeps the progress contract (prefix in expansion order) trivially
// intact. Each result is journaled immediately — a resumed job has
// already demonstrated that crashes happen.
func (e *jobEngine) resumeQuery(ctx context.Context, j *jobRecord) error {
	specs, err := j.spec.Expand()
	if err != nil {
		return err
	}
	e.mu.Lock()
	if len(j.qresults) > len(specs) {
		// A journaled prefix longer than the expansion means the spec and
		// results disagree; distrust the prefix entirely.
		j.qresults = nil
		j.qdone = 0
	}
	j.qtotal = len(specs)
	start := len(j.qresults)
	e.mu.Unlock()
	for idx := start; idx < len(specs); idx++ {
		res, err := j.session.Evaluate(ctx, specs[idx])
		if err != nil {
			// Mirror EvaluateAllFunc's error shape so a resumed failure
			// reads identically to a fresh one.
			return fmt.Errorf("query: spec %d/%d: %w", idx+1, len(specs), err)
		}
		e.mu.Lock()
		j.qresults = append(j.qresults, res)
		j.qdone = idx + 1
		e.mu.Unlock()
		j.session.Checkpoint()
		e.journalPut(j)
		if ferr := fault.Inject(fault.SiteJobResult); ferr != nil {
			return ferr
		}
	}
	return nil
}

// journalStride spaces progress checkpoints so a sweep journals ~64 times
// regardless of size (plus always the final result).
func journalStride(total int) int {
	if s := total / 64; s > 1 {
		return s
	}
	return 1
}

// journalPut persists j's current state. Failures degrade durability, not
// availability: they are counted and surfaced, and the job runs on.
func (e *jobEngine) journalPut(j *jobRecord) {
	if e.journal == nil {
		return
	}
	e.mu.Lock()
	rec, err := j.journalRecordLocked()
	e.mu.Unlock()
	if err == nil {
		err = e.journal.Put(rec)
	}
	if err != nil {
		e.noteJournalErr(err)
	}
}

func (e *jobEngine) noteJournalErr(err error) {
	e.journalErrs.Add(1)
	msg := err.Error()
	e.lastJournalErr.Store(&msg)
}

// journalStats reports the engine's view of journal health (zero values
// when no journal is attached).
func (e *jobEngine) journalStats() (errs uint64, last string) {
	if p := e.lastJournalErr.Load(); p != nil {
		last = *p
	}
	return e.journalErrs.Load(), last
}

// journalRecordLocked builds j's durable form; e.mu must be held.
func (j *jobRecord) journalRecordLocked() (jobstore.Record, error) {
	rec := jobstore.Record{
		ID:       j.id,
		Kind:     JobKindExperiments,
		State:    j.state,
		Error:    j.err,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.spec != nil {
		rec.Kind = JobKindQuery
		rec.Fingerprint = j.fingerprint
		rec.Done, rec.Total = j.qdone, j.qtotal
		spec, err := json.Marshal(j.spec)
		if err != nil {
			return rec, fmt.Errorf("journal %s: spec: %w", j.id, err)
		}
		rec.Spec = spec
		if len(j.qresults) > 0 {
			results, err := json.Marshal(j.qresults)
			if err != nil {
				return rec, fmt.Errorf("journal %s: results: %w", j.id, err)
			}
			rec.Results = results
		}
		return rec, nil
	}
	rec.Experiments = append([]string(nil), j.names...)
	rec.Workers = j.workers
	if len(j.results) > 0 {
		results, err := json.Marshal(j.results)
		if err != nil {
			return rec, fmt.Errorf("journal %s: results: %w", j.id, err)
		}
		rec.Results = results
	}
	return rec, nil
}

// forgetJournal drops evicted jobs' records. Called without e.mu held:
// deletes are file I/O and must not extend the engine's critical section.
func (e *jobEngine) forgetJournal(ids []string) {
	if e.journal == nil {
		return
	}
	for _, id := range ids {
		if err := e.journal.Delete(id); err != nil {
			e.noteJournalErr(err)
		}
	}
}

// get returns a snapshot of the job.
func (e *jobEngine) get(id string) (JobJSON, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobJSON{}, false
	}
	return j.snapshotLocked(), true
}

// counts returns how many jobs sit in each state.
func (e *jobEngine) counts() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := map[string]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	for _, j := range e.jobs {
		out[j.state]++
	}
	return out
}

// drain blocks until every submitted job has finished.
func (e *jobEngine) drain() { e.wg.Wait() }

// drainTimeout waits up to d for submitted jobs to finish, reporting
// whether the drain completed. Jobs still running at the deadline keep
// their journal records and resume on the next start.
func (e *jobEngine) drainTimeout(d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// evictLocked drops the oldest finished jobs beyond the retention bound and
// returns their IDs so the caller can forget their journal records after
// releasing e.mu. Queued and running jobs are never evicted: their records
// are the only handle a client has on in-flight work.
func (e *jobEngine) evictLocked() []string {
	excess := len(e.jobs) - e.maxJobs
	if excess <= 0 {
		return nil
	}
	var evicted []string
	kept := e.order[:0]
	for _, id := range e.order {
		j := e.jobs[id]
		if excess > 0 && (j.state == JobDone || j.state == JobFailed) {
			delete(e.jobs, id)
			evicted = append(evicted, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
	return evicted
}

func (j *jobRecord) snapshotLocked() JobJSON {
	out := JobJSON{
		ID:          j.id,
		Kind:        JobKindExperiments,
		Experiments: append([]string(nil), j.names...),
		State:       j.state,
		Error:       j.err,
		Results:     j.results,
		CreatedAt:   j.created,
	}
	if j.spec != nil {
		out.Kind = JobKindQuery
		specCopy := *j.spec
		out.Query = &specCopy
		out.Fingerprint = j.fingerprint
		out.QueryResults = append([]query.Result(nil), j.qresults...)
		out.Done, out.Total = j.qdone, j.qtotal
	}
	if !j.started.IsZero() {
		t := j.started
		out.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.FinishedAt = &t
	}
	return out
}
