package server

// Robustness acceptance suite: crash recovery from the job journal,
// overload shedding, request deadlines, admission-bound contracts and an
// in-process chaos run with armed failpoints. The fault registry is global
// process state, so none of these tests run in parallel and every one that
// arms a site registers fault.Reset as cleanup first.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/jobstore"
	"github.com/cnfet/yieldlab/internal/query"
	"github.com/cnfet/yieldlab/internal/sweepstore"
)

// postRaw posts a JSON payload with extra headers and returns status, body
// and response headers (getBody's POST counterpart).
func postRaw(t *testing.T, url string, payload any, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// pollJob polls /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, base, id string) JobJSON {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	var job JobJSON
	for {
		if code := getJSON(t, base+"/v1/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if job.State == JobDone || job.State == JobFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// submitAsync submits an async query sweep and returns the accepted job.
func submitAsync(t *testing.T, base string, spec query.Spec) JobJSON {
	t.Helper()
	code, body, _ := postRaw(t, base+"/v2/query?async=1", spec, nil)
	if code != http.StatusAccepted {
		t.Fatalf("async submit status %d: %s", code, body)
	}
	var job JobJSON
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	return job
}

// TestJobRecoveryAcrossRestart is the crash-recovery acceptance test: a
// journal holding a terminal record and a mid-sweep "running" record (the
// exact state a SIGKILL leaves behind) is adopted by a fresh server, the
// interrupted job resumes from its checkpointed prefix, and its final
// results are byte-identical to the uninterrupted run. Record IDs are
// chosen so lexical order disagrees with creation order (job-2 vs job-10),
// and the ID counter must continue above every adopted ID.
func TestJobRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	journal, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First life: run one async sweep to completion so the journal holds a
	// genuine done record, and capture the sync answer as the byte baseline.
	spec := query.Spec{Kind: "pf", WidthNM: 155,
		Sweep: &query.Sweep{WidthsNM: []float64{100, 150, 200}}}
	srvA, err := New(Config{Params: testParams(), Jobs: journal})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	jobA := submitAsync(t, tsA.URL, spec)
	jobA = pollJob(t, tsA.URL, jobA.ID)
	if jobA.State != JobDone || len(jobA.QueryResults) != 3 {
		t.Fatalf("first-life job = %+v", jobA)
	}
	syncCode, syncResp, _ := postV2(t, tsA.URL, spec)
	if syncCode != http.StatusOK {
		t.Fatalf("sync status %d", syncCode)
	}
	tsA.Close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge the crash: reuse the done record's spec to journal job-10 as
	// "running" with a one-result checkpoint (what a kill mid-sweep leaves)
	// and job-2 as finished history whose lexical order is wrong.
	recs, err := journal.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].State != JobDone {
		t.Fatalf("journal after first life = %+v", recs)
	}
	base := recs[0]
	fullResults := base.Results

	done2 := base
	done2.ID = "job-2"
	if err := journal.Put(done2); err != nil {
		t.Fatal(err)
	}
	var prefix []query.Result
	if err := json.Unmarshal(base.Results, &prefix); err != nil {
		t.Fatal(err)
	}
	prefixJSON, err := json.Marshal(prefix[:1])
	if err != nil {
		t.Fatal(err)
	}
	crashed := base
	crashed.ID = "job-10"
	crashed.State = JobRunning
	crashed.Results = prefixJSON
	crashed.Done = 1
	crashed.Finished = time.Time{}
	if err := journal.Put(crashed); err != nil {
		t.Fatal(err)
	}

	// Second life: adoption must serve the history and resume the crash.
	_, tsB := newTestServer(t, Config{Jobs: journal})
	var history JobJSON
	if code := getJSON(t, tsB.URL+"/v1/jobs/job-2", &history); code != http.StatusOK {
		t.Fatalf("adopted history status %d", code)
	}
	if history.State != JobDone || len(history.QueryResults) != 3 {
		t.Fatalf("adopted history = %+v", history)
	}

	resumed := pollJob(t, tsB.URL, "job-10")
	if resumed.State != JobDone {
		t.Fatalf("resumed job failed: %s", resumed.Error)
	}
	if resumed.Done != 3 || resumed.Total != 3 || len(resumed.QueryResults) != 3 {
		t.Fatalf("resumed progress = %d/%d, %d results",
			resumed.Done, resumed.Total, len(resumed.QueryResults))
	}
	// Byte identity across the restart: the resumed job's results marshal
	// exactly as the uninterrupted first-life run journaled them...
	resumedJSON, err := json.Marshal(resumed.QueryResults)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumedJSON) != string(fullResults) {
		t.Fatalf("resumed results differ from pre-crash run:\n%s\n%s", resumedJSON, fullResults)
	}
	// ...and match the second life's own sync evaluation bit for bit.
	for i := range syncResp.Results {
		wantPF, err := json.Marshal(resumed.QueryResults[i].PF)
		if err != nil {
			t.Fatal(err)
		}
		if got := compact(t, syncResp.Results[i].PF); got != string(wantPF) {
			t.Fatalf("resumed/sync mismatch at %d:\n%s\n%s", i, wantPF, got)
		}
	}

	// The ID counter continued above the highest adopted ID.
	next := submitAsync(t, tsB.URL, query.Spec{Kind: "pf", WidthNM: 120})
	if next.ID != "job-11" {
		t.Fatalf("post-adoption ID = %q, want job-11", next.ID)
	}
	pollJob(t, tsB.URL, next.ID)
}

// TestJobsFullRetryAfter pins the admission-rejection contract: a full job
// queue answers 503 with a Retry-After hint and a retryable error
// envelope. A delay failpoint holds the first job open so the bound is hit
// deterministically instead of racing the sweep.
func TestJobsFullRetryAfter(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.SiteJobRun, "delay(1500ms)"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{MaxJobs: 1, ConcurrentJobs: 1})

	first := submitAsync(t, ts.URL, query.Spec{Kind: "pf", WidthNM: 110})
	if first.State != JobQueued && first.State != JobRunning {
		t.Fatalf("first job state = %q", first.State)
	}
	code, body, hdr := postRaw(t, ts.URL+"/v2/query?async=1",
		query.Spec{Kind: "pf", WidthNM: 111}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("second submit status %d: %s", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q", ra)
	}
	var envelope ErrorJSON
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if envelope.Error.Code != "unavailable" || !envelope.Error.Retryable {
		t.Fatalf("envelope = %+v", envelope)
	}
	if !strings.Contains(envelope.Error.Message, "retry") {
		t.Fatalf("message = %q", envelope.Error.Message)
	}
}

// TestSyncSweepShedding pins graceful degradation under load: with one
// in-flight slot held by a stalled sweep, further cold sweeps shed with a
// retryable 503, ETag revalidations still answer 304, and the shed counter
// surfaces in /v1/stats.
func TestSyncSweepShedding(t *testing.T) {
	t.Cleanup(fault.Reset)
	_, ts := newTestServer(t, Config{MaxInFlightSweeps: 1})

	// Warm the cache (and learn the ETag) before arming the stall: cached
	// evaluations never reach Session.Evaluate, so probes stay fast.
	warm := query.Spec{Kind: "pf", WidthNM: 120}
	code, _, hdr := postRaw(t, ts.URL+"/v2/query", warm, nil)
	if code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("warm response carried no ETag")
	}

	// times=1: only the stalled goroutine's evaluation sleeps; the probes
	// below either shed at the admission gate or run at full speed.
	if err := fault.Enable(fault.SiteQueryEvaluate, "delay(2500ms)@times=1"); err != nil {
		t.Fatal(err)
	}
	stalled := make(chan int, 1)
	go func() {
		c, _, _ := postRaw(t, ts.URL+"/v2/query", query.Spec{Kind: "pf", WidthNM: 130}, nil)
		stalled <- c
	}()

	// The delay's fired counter flips exactly when the goroutine is asleep
	// inside Evaluate — holding the only in-flight slot. Stats requests
	// never touch that slot, so polling them is safe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats StatsJSON
		if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
			t.Fatalf("stats status %d", code)
		}
		var fired uint64
		for _, fs := range stats.Faults {
			if fs.Site == fault.SiteQueryEvaluate {
				fired = fs.Fired
			}
		}
		if fired >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled sweep never reached its evaluation")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// With the slot held, a cold sync sweep must shed: retryable 503 with a
	// Retry-After hint.
	c, shedBody, h := postRaw(t, ts.URL+"/v2/query", warm, nil)
	if c != http.StatusServiceUnavailable {
		t.Fatalf("probe while saturated: status %d: %s", c, shedBody)
	}
	if ra := h.Get("Retry-After"); ra != "1" {
		t.Fatalf("shed Retry-After = %q", ra)
	}
	var envelope ErrorJSON
	if err := json.Unmarshal(shedBody, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != "unavailable" || !envelope.Error.Retryable {
		t.Fatalf("shed envelope = %+v", envelope)
	}

	// Degradation contract: revalidation answers before the in-flight
	// bound, so a 304 goes out even while cold sweeps are being shed.
	code, _, _ = postRaw(t, ts.URL+"/v2/query", warm, map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified {
		t.Fatalf("revalidation while shedding: status %d", code)
	}

	if c := <-stalled; c != http.StatusOK {
		t.Fatalf("stalled sweep finished with %d", c)
	}
	var stats StatsJSON
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.ShedRequests == 0 {
		t.Fatal("shed_requests = 0 after shedding")
	}
}

// TestRequestTimeoutSheds pins the deadline contract: a request exceeding
// Config.RequestTimeout is cut off and answered with a retryable 503, not
// a 500 — the work is fine, the deadline was just too tight.
func TestRequestTimeoutSheds(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.SiteQueryEvaluate, "delay(10s)"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{RequestTimeout: 100 * time.Millisecond})

	start := time.Now()
	code, body, _ := postRaw(t, ts.URL+"/v2/query", query.Spec{Kind: "pf", WidthNM: 140}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", code, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: took %s", elapsed)
	}
	var envelope ErrorJSON
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if !envelope.Error.Retryable {
		t.Fatalf("envelope = %+v", envelope)
	}
}

// TestChaosJobsReachTerminalStates is the in-process chaos harness: with
// journal writes failing probabilistically, evaluations randomly delayed
// and one injected job failure, every submitted job still reaches a
// terminal state, failures surface as envelope errors (never a wedged job
// or a crashed server), and disarming the faults restores clean runs. The
// job.result panic action is deliberately NOT armed here — it kills the
// whole process by design and belongs to the shell-level chaos harness.
func TestChaosJobsReachTerminalStates(t *testing.T) {
	t.Cleanup(fault.Reset)
	store, err := sweepstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	journal, err := jobstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.EnableSpecs(
		"journal.put=error(chaos: journal write)@p=0.4,seed=3;" +
			"store.save=error(chaos: store write)@p=0.5,seed=9;" +
			"query.evaluate=delay(1ms)@p=0.5,seed=5;" +
			"job.run=error(chaos: injected job failure)@nth=3"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{MaxJobs: 16, ConcurrentJobs: 2, Store: store, Jobs: journal})

	widths := []float64{100, 110, 120, 130}
	ids := make([]string, 0, len(widths))
	for _, w := range widths {
		job := submitAsync(t, ts.URL, query.Spec{Kind: "pf", WidthNM: w,
			Sweep: &query.Sweep{WidthsNM: []float64{w, w + 5}}})
		ids = append(ids, job.ID)
	}
	var failed int
	for _, id := range ids {
		job := pollJob(t, ts.URL, id)
		switch job.State {
		case JobDone:
			if len(job.QueryResults) != 2 {
				t.Errorf("%s done with %d results", id, len(job.QueryResults))
			}
		case JobFailed:
			failed++
			if !strings.Contains(job.Error, "injected") {
				t.Errorf("%s failed with non-injected error %q", id, job.Error)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("failed jobs = %d, want exactly 1 (nth=3 fires once)", failed)
	}

	// The server is still fully alive under fire: sync queries answer and
	// stats report the chaos (armed sites with traffic, journal errors).
	code, _, _ := postV2(t, ts.URL, query.Spec{Kind: "pf", WidthNM: 150})
	if code != http.StatusOK {
		t.Fatalf("sync query under chaos: status %d", code)
	}
	var stats StatsJSON
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if len(stats.Faults) != 4 {
		t.Fatalf("faults = %+v", stats.Faults)
	}
	var journalCalls uint64
	for _, fs := range stats.Faults {
		if fs.Site == fault.SiteJournalPut {
			journalCalls = fs.Calls
		}
	}
	if journalCalls == 0 {
		t.Fatal("journal.put site saw no traffic")
	}
	if stats.Journal == nil || stats.Journal.PutErrors == 0 || stats.Journal.EngineErrors == 0 {
		t.Fatalf("journal stats = %+v, want surfaced put errors", stats.Journal)
	}

	// Disarm and recover: the next job runs clean.
	fault.Reset()
	job := submitAsync(t, ts.URL, query.Spec{Kind: "pf", WidthNM: 160})
	if job = pollJob(t, ts.URL, job.ID); job.State != JobDone {
		t.Fatalf("post-chaos job failed: %s", job.Error)
	}
	var clean StatsJSON
	getJSON(t, ts.URL+"/v1/stats", &clean)
	if len(clean.Faults) != 0 {
		t.Fatalf("faults after reset = %+v", clean.Faults)
	}
}

// TestEvictionCleansJournal pins journal hygiene: evicting finished jobs
// from the bounded history also deletes their journal records, so a
// long-lived server's journal directory stays bounded by MaxJobs and never
// accumulates temp files.
func TestEvictionCleansJournal(t *testing.T) {
	dir := t.TempDir()
	journal, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{MaxJobs: 2, ConcurrentJobs: 2, Jobs: journal})

	var lastID, firstID string
	for i := 0; i < 5; i++ {
		job := submitAsync(t, ts.URL, query.Spec{Kind: "pf", WidthNM: 100 + float64(i)})
		if job = pollJob(t, ts.URL, job.ID); job.State != JobDone {
			t.Fatalf("job %d failed: %s", i, job.Error)
		}
		if i == 0 {
			firstID = job.ID
		}
		lastID = job.ID
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/"+firstID, nil); code != http.StatusNotFound {
		t.Fatalf("evicted job status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+lastID, nil); code != http.StatusOK {
		t.Fatalf("retained job status %d", code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recordFiles int
	for _, de := range entries {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".partial"):
			t.Errorf("leftover temp file %s", name)
		case strings.HasSuffix(name, ".job"):
			recordFiles++
		default:
			t.Errorf("unexpected file %s", name)
		}
	}
	if recordFiles > 2 {
		t.Fatalf("journal holds %d records, retention bound is 2", recordFiles)
	}
}
