package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/cnfet/yieldlab/internal/buildinfo"
	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/jobstore"
	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/sweepstore"
)

// metricsRegistry aggregates per-route request counters, fixed-bucket
// latency histograms and per-stage (sweep/Monte Carlo span) histograms for
// the Prometheus-text /metrics endpoint — the load-tracking surface the
// heavy-traffic north star asks for. It is deliberately dependency-free:
// the exposition format is a few lines of text, not worth a client library.
type metricsRegistry struct {
	mu sync.Mutex
	// requests counts completed requests by route and status code.
	requests map[routeCode]uint64
	// latency holds one request-duration histogram per route.
	latency map[string]*obs.Histogram
	// stages holds one duration histogram per evaluation stage (span name:
	// query.evaluate, sweep.cold, sweep.cache_hit, mc.pilot, mc.run).
	stages map[string]*obs.Histogram
}

type routeCode struct {
	route string
	code  int
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		requests: make(map[routeCode]uint64),
		latency:  make(map[string]*obs.Histogram),
		stages:   make(map[string]*obs.Histogram),
	}
}

// histogramLocked returns m[key], creating it on first use. Caller holds
// m.mu (the maps mutate only here; Observe itself is lock-free).
func histogramLocked(m map[string]*obs.Histogram, key string) *obs.Histogram {
	h := m[key]
	if h == nil {
		h = obs.NewHistogram(obs.DefaultLatencyBuckets()...)
		m[key] = h
	}
	return h
}

// observe records one completed request.
func (m *metricsRegistry) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	m.requests[routeCode{route, code}]++
	h := histogramLocked(m.latency, route)
	m.mu.Unlock()
	h.Observe(seconds)
}

// observeStage records one evaluation stage duration.
func (m *metricsRegistry) observeStage(stage string, seconds float64) {
	m.mu.Lock()
	h := histogramLocked(m.stages, stage)
	m.mu.Unlock()
	h.Observe(seconds)
}

// promSnapshot carries the point-in-time gauges sampled at scrape.
type promSnapshot struct {
	uptimeSeconds float64
	cache         renewal.CacheStats
	deduped       uint64
	shed          uint64
	jobs          map[string]int
	build         buildinfo.Info
	// store and journal are nil when the server runs without persistence.
	store       *sweepstore.Stats
	journal     *jobstore.Stats
	journalErrs uint64
	// faults is nil while the fault registry is disarmed (the normal case).
	faults []fault.SiteStats
}

// formatLE renders a bucket bound the way Prometheus clients do: shortest
// round-trip float, so "0.005" not "5e-03".
func formatLE(bound float64) string {
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

// writeHistogram renders one labeled series of a histogram family:
// cumulative le buckets (an explicit +Inf equal to _count), then _sum and
// _count.
func writeHistogram(b *strings.Builder, name, labelKey, labelVal string, snap obs.HistogramSnapshot) {
	for i, bound := range snap.Bounds {
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", name, labelKey, labelVal, formatLE(bound), snap.Cumulative[i])
	}
	fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, labelKey, labelVal, snap.Cumulative[len(snap.Cumulative)-1])
	fmt.Fprintf(b, "%s_sum{%s=%q} %g\n", name, labelKey, labelVal, snap.Sum)
	fmt.Fprintf(b, "%s_count{%s=%q} %d\n", name, labelKey, labelVal, snap.Count)
}

// sortedKeys returns the map's keys in ascending order, so scrapes are
// deterministic.
func sortedKeys(m map[string]*obs.Histogram) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// write renders the registry in Prometheus text exposition format, with
// keys sorted so scrapes are deterministic.
func (m *metricsRegistry) write(w http.ResponseWriter, snap promSnapshot) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	m.mu.Lock()
	reqs := make([]routeCode, 0, len(m.requests))
	for rc := range m.requests {
		reqs = append(reqs, rc)
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].route != reqs[j].route {
			return reqs[i].route < reqs[j].route
		}
		return reqs[i].code < reqs[j].code
	})
	counts := make(map[routeCode]uint64, len(m.requests))
	for rc, n := range m.requests {
		counts[rc] = n
	}
	routes := sortedKeys(m.latency)
	latency := make(map[string]obs.HistogramSnapshot, len(routes))
	for _, r := range routes {
		latency[r] = m.latency[r].Snapshot()
	}
	stageNames := sortedKeys(m.stages)
	stages := make(map[string]obs.HistogramSnapshot, len(stageNames))
	for _, st := range stageNames {
		stages[st] = m.stages[st].Snapshot()
	}
	m.mu.Unlock()

	var b strings.Builder
	b.WriteString("# HELP yieldserver_http_requests_total Requests served, by route and status code.\n")
	b.WriteString("# TYPE yieldserver_http_requests_total counter\n")
	for _, rc := range reqs {
		fmt.Fprintf(&b, "yieldserver_http_requests_total{route=%q,code=\"%d\"} %d\n",
			rc.route, rc.code, counts[rc])
	}
	b.WriteString("# HELP yieldserver_http_request_duration_seconds Request latency, by route.\n")
	b.WriteString("# TYPE yieldserver_http_request_duration_seconds histogram\n")
	for _, r := range routes {
		writeHistogram(&b, "yieldserver_http_request_duration_seconds", "route", r, latency[r])
	}
	b.WriteString("# HELP yieldserver_stage_duration_seconds Evaluation stage wall time, by span name.\n")
	b.WriteString("# TYPE yieldserver_stage_duration_seconds histogram\n")
	for _, st := range stageNames {
		writeHistogram(&b, "yieldserver_stage_duration_seconds", "stage", st, stages[st])
	}

	b.WriteString("# HELP yieldserver_sweep_cache_hits_total Sweep cache hits.\n")
	b.WriteString("# TYPE yieldserver_sweep_cache_hits_total counter\n")
	fmt.Fprintf(&b, "yieldserver_sweep_cache_hits_total %d\n", snap.cache.Hits)
	b.WriteString("# HELP yieldserver_sweep_cache_misses_total Sweep cache misses.\n")
	b.WriteString("# TYPE yieldserver_sweep_cache_misses_total counter\n")
	fmt.Fprintf(&b, "yieldserver_sweep_cache_misses_total %d\n", snap.cache.Misses)
	b.WriteString("# HELP yieldserver_sweep_cache_evictions_total Models evicted from the sweep cache.\n")
	b.WriteString("# TYPE yieldserver_sweep_cache_evictions_total counter\n")
	fmt.Fprintf(&b, "yieldserver_sweep_cache_evictions_total %d\n", snap.cache.Evictions)
	b.WriteString("# HELP yieldserver_sweep_cache_entries Models currently cached.\n")
	b.WriteString("# TYPE yieldserver_sweep_cache_entries gauge\n")
	fmt.Fprintf(&b, "yieldserver_sweep_cache_entries %d\n", snap.cache.Entries)
	b.WriteString("# HELP yieldserver_sweeps_total Renewal arrival sweeps computed.\n")
	b.WriteString("# TYPE yieldserver_sweeps_total counter\n")
	fmt.Fprintf(&b, "yieldserver_sweeps_total %d\n", snap.cache.Sweeps)
	b.WriteString("# HELP yieldserver_deduped_requests_total Computations served by another caller's in-flight evaluation.\n")
	b.WriteString("# TYPE yieldserver_deduped_requests_total counter\n")
	fmt.Fprintf(&b, "yieldserver_deduped_requests_total %d\n", snap.deduped)
	b.WriteString("# HELP yieldserver_shed_requests_total Synchronous sweeps refused at the in-flight bound with a retryable 503.\n")
	b.WriteString("# TYPE yieldserver_shed_requests_total counter\n")
	fmt.Fprintf(&b, "yieldserver_shed_requests_total %d\n", snap.shed)

	if snap.store != nil {
		b.WriteString("# HELP yieldserver_store_rejects_total Sweep-store files refused for integrity or format reasons.\n")
		b.WriteString("# TYPE yieldserver_store_rejects_total counter\n")
		fmt.Fprintf(&b, "yieldserver_store_rejects_total %d\n", snap.store.Rejects)
		b.WriteString("# HELP yieldserver_store_quarantined_total Corrupt sweep-store files renamed aside to .bad.\n")
		b.WriteString("# TYPE yieldserver_store_quarantined_total counter\n")
		fmt.Fprintf(&b, "yieldserver_store_quarantined_total %d\n", snap.store.Quarantined)
		b.WriteString("# HELP yieldserver_store_retries_total Sweep-store save attempts repeated after transient failures.\n")
		b.WriteString("# TYPE yieldserver_store_retries_total counter\n")
		fmt.Fprintf(&b, "yieldserver_store_retries_total %d\n", snap.store.Retries)
	}
	if snap.journal != nil {
		b.WriteString("# HELP yieldserver_job_journal_puts_total Job records journaled.\n")
		b.WriteString("# TYPE yieldserver_job_journal_puts_total counter\n")
		fmt.Fprintf(&b, "yieldserver_job_journal_puts_total %d\n", snap.journal.Puts)
		b.WriteString("# HELP yieldserver_job_journal_quarantined_total Corrupt job records renamed aside to .bad.\n")
		b.WriteString("# TYPE yieldserver_job_journal_quarantined_total counter\n")
		fmt.Fprintf(&b, "yieldserver_job_journal_quarantined_total %d\n", snap.journal.Quarantined)
		b.WriteString("# HELP yieldserver_job_journal_errors_total Journal failures seen by the job engine (durability degraded, jobs unaffected).\n")
		b.WriteString("# TYPE yieldserver_job_journal_errors_total counter\n")
		fmt.Fprintf(&b, "yieldserver_job_journal_errors_total %d\n", snap.journalErrs)
	}
	if len(snap.faults) > 0 {
		b.WriteString("# HELP yieldserver_fault_injections_total Armed fault-injection sites: calls seen and faults fired.\n")
		b.WriteString("# TYPE yieldserver_fault_injections_total counter\n")
		for _, fs := range snap.faults {
			fmt.Fprintf(&b, "yieldserver_fault_injections_total{site=%q,outcome=\"fired\"} %d\n", fs.Site, fs.Fired)
			fmt.Fprintf(&b, "yieldserver_fault_injections_total{site=%q,outcome=\"passed\"} %d\n", fs.Site, fs.Calls-fs.Fired)
		}
	}

	b.WriteString("# HELP yieldserver_jobs Jobs by state.\n")
	b.WriteString("# TYPE yieldserver_jobs gauge\n")
	states := make([]string, 0, len(snap.jobs))
	for st := range snap.jobs {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(&b, "yieldserver_jobs{state=%q} %d\n", st, snap.jobs[st])
	}

	b.WriteString("# HELP yieldserver_build_info Build metadata; the value is always 1.\n")
	b.WriteString("# TYPE yieldserver_build_info gauge\n")
	fmt.Fprintf(&b, "yieldserver_build_info{version=%q,revision=%q,go_version=%q} 1\n",
		snap.build.Version, snap.build.Revision, snap.build.GoVersion)

	b.WriteString("# HELP yieldserver_uptime_seconds Seconds since the server started.\n")
	b.WriteString("# TYPE yieldserver_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "yieldserver_uptime_seconds %g\n", snap.uptimeSeconds)

	_, _ = io.WriteString(w, b.String()) //yield:allow(errenvelope) /metrics speaks the Prometheus text exposition format, not the JSON envelope
}
