package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/cnfet/yieldlab/internal/renewal"
)

// metricsRegistry aggregates per-route request counters and latency sums
// for the Prometheus-text /metrics endpoint — the load-tracking surface the
// heavy-traffic north star asks for. It is deliberately dependency-free:
// the exposition format is a few lines of text, not worth a client library.
type metricsRegistry struct {
	mu sync.Mutex
	// requests counts completed requests by route and status code.
	requests map[routeCode]uint64
	// latency accumulates per-route request durations.
	latency map[string]*latencyAgg
}

type routeCode struct {
	route string
	code  int
}

type latencyAgg struct {
	count   uint64
	seconds float64
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		requests: make(map[routeCode]uint64),
		latency:  make(map[string]*latencyAgg),
	}
}

// observe records one completed request.
func (m *metricsRegistry) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	agg := m.latency[route]
	if agg == nil {
		agg = &latencyAgg{}
		m.latency[route] = agg
	}
	agg.count++
	agg.seconds += seconds
}

// promSnapshot carries the point-in-time gauges sampled at scrape.
type promSnapshot struct {
	uptimeSeconds float64
	cache         renewal.CacheStats
	deduped       uint64
	jobs          map[string]int
}

// write renders the registry in Prometheus text exposition format, with
// keys sorted so scrapes are deterministic.
func (m *metricsRegistry) write(w http.ResponseWriter, snap promSnapshot) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	m.mu.Lock()
	reqs := make([]routeCode, 0, len(m.requests))
	for rc := range m.requests {
		reqs = append(reqs, rc)
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].route != reqs[j].route {
			return reqs[i].route < reqs[j].route
		}
		return reqs[i].code < reqs[j].code
	})
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	var b strings.Builder
	b.WriteString("# HELP yieldserver_http_requests_total Requests served, by route and status code.\n")
	b.WriteString("# TYPE yieldserver_http_requests_total counter\n")
	for _, rc := range reqs {
		fmt.Fprintf(&b, "yieldserver_http_requests_total{route=%q,code=\"%d\"} %d\n",
			rc.route, rc.code, m.requests[rc])
	}
	b.WriteString("# HELP yieldserver_http_request_duration_seconds Cumulative request latency, by route.\n")
	b.WriteString("# TYPE yieldserver_http_request_duration_seconds summary\n")
	for _, r := range routes {
		agg := m.latency[r]
		fmt.Fprintf(&b, "yieldserver_http_request_duration_seconds_sum{route=%q} %g\n", r, agg.seconds)
		fmt.Fprintf(&b, "yieldserver_http_request_duration_seconds_count{route=%q} %d\n", r, agg.count)
	}
	m.mu.Unlock()

	b.WriteString("# HELP yieldserver_sweep_cache_hits_total Sweep cache hits.\n")
	b.WriteString("# TYPE yieldserver_sweep_cache_hits_total counter\n")
	fmt.Fprintf(&b, "yieldserver_sweep_cache_hits_total %d\n", snap.cache.Hits)
	b.WriteString("# HELP yieldserver_sweep_cache_misses_total Sweep cache misses.\n")
	b.WriteString("# TYPE yieldserver_sweep_cache_misses_total counter\n")
	fmt.Fprintf(&b, "yieldserver_sweep_cache_misses_total %d\n", snap.cache.Misses)
	b.WriteString("# HELP yieldserver_sweep_cache_evictions_total Models evicted from the sweep cache.\n")
	b.WriteString("# TYPE yieldserver_sweep_cache_evictions_total counter\n")
	fmt.Fprintf(&b, "yieldserver_sweep_cache_evictions_total %d\n", snap.cache.Evictions)
	b.WriteString("# HELP yieldserver_sweep_cache_entries Models currently cached.\n")
	b.WriteString("# TYPE yieldserver_sweep_cache_entries gauge\n")
	fmt.Fprintf(&b, "yieldserver_sweep_cache_entries %d\n", snap.cache.Entries)
	b.WriteString("# HELP yieldserver_sweeps_total Renewal arrival sweeps computed.\n")
	b.WriteString("# TYPE yieldserver_sweeps_total counter\n")
	fmt.Fprintf(&b, "yieldserver_sweeps_total %d\n", snap.cache.Sweeps)
	b.WriteString("# HELP yieldserver_deduped_requests_total Computations served by another caller's in-flight evaluation.\n")
	b.WriteString("# TYPE yieldserver_deduped_requests_total counter\n")
	fmt.Fprintf(&b, "yieldserver_deduped_requests_total %d\n", snap.deduped)

	b.WriteString("# HELP yieldserver_jobs Jobs by state.\n")
	b.WriteString("# TYPE yieldserver_jobs gauge\n")
	states := make([]string, 0, len(snap.jobs))
	for st := range snap.jobs {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(&b, "yieldserver_jobs{state=%q} %d\n", st, snap.jobs[st])
	}

	b.WriteString("# HELP yieldserver_uptime_seconds Seconds since the server started.\n")
	b.WriteString("# TYPE yieldserver_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "yieldserver_uptime_seconds %g\n", snap.uptimeSeconds)

	_, _ = io.WriteString(w, b.String()) //yield:allow(errenvelope) /metrics speaks the Prometheus text exposition format, not the JSON envelope
}

// withMetrics records every request's route, status and latency.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := "unmatched"
		if _, pattern := s.mux.Handler(r); pattern != "" {
			// Strip the method from patterns like "GET /v1/pf".
			if i := strings.IndexByte(pattern, ' '); i >= 0 {
				route = pattern[i+1:]
			} else {
				route = pattern
			}
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.observe(route, code, time.Since(start).Seconds())
	})
}

// statusWriter captures the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}
