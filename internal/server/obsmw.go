package server

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/obs"
)

// withObs is the request observability middleware: every request runs under
// a fresh obs.Tracer (so evaluation spans, per-route histograms, stage
// histograms and the slowlog all see the same tree), gets a correlation id
// echoed in X-Request-ID, and leaves one structured log line behind.
// ?debug=cost additionally enables cost reporting on the tracer, which is
// what makes query results carry their CostBreakdown — opt-in, so default
// response bodies stay byte-identical and ETag-sound.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := "unmatched"
		if _, pattern := s.mux.Handler(r); pattern != "" {
			// Strip the method from patterns like "GET /v1/pf".
			if i := strings.IndexByte(pattern, ' '); i >= 0 {
				route = pattern[i+1:]
			} else {
				route = pattern
			}
		}
		reqID := s.nextRequestID()
		tracer := obs.New()
		if r.URL.Query().Get("debug") == "cost" {
			tracer.EnableCost()
		}
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			// The per-request deadline rides the request context, so every
			// evaluation below it stops at the bound; writeEvalError turns
			// the expiry into a retryable 503.
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		ctx = obs.WithTracer(ctx, tracer)

		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		// The http.request failpoint sits where the edge meets the handler:
		// an error action rejects the request with a retryable 503 (still
		// traced, counted and logged), a delay action stalls it, and a
		// panic action propagates into net/http's connection handler — the
		// chaos harness's misbehaving-middleware stand-in.
		if err := fault.InjectContext(ctx, fault.SiteHTTPRequest); err != nil {
			writeUnavailable(sw, err)
		} else {
			next.ServeHTTP(sw, r.WithContext(ctx))
		}
		elapsed := time.Since(start)
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.observe(route, code, elapsed.Seconds())

		// One flattened stage list feeds both the stage histograms and the
		// slowlog, so the two surfaces can never disagree about a request.
		var stages []obs.StageDur
		fingerprint := ""
		for _, root := range tracer.Roots() {
			stages = append(stages, obs.Stages(root)...)
			if fingerprint == "" {
				if v, ok := root.AttrValue("fingerprint"); ok {
					if fp, ok := v.(string); ok {
						fingerprint = fp
					}
				}
			}
		}
		for _, st := range stages {
			s.metrics.observeStage(st.Name, st.MS/1e3)
		}
		s.slowlog.Observe(elapsed, obs.SlowEntry{
			Time:        time.Now(),
			Route:       route,
			RequestID:   reqID,
			Fingerprint: fingerprint,
			Status:      code,
			Stages:      stages,
		})
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", code),
			slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
			slog.String("fingerprint", fingerprint),
		)
	})
}

// nextRequestID returns a correlation id unique within the process: a
// start-time prefix (distinguishing restarts in interleaved logs) plus a
// sequence number.
func (s *Server) nextRequestID() string {
	return s.ridPrefix + "-" + itoa6(s.reqSeq.Add(1))
}

// itoa6 formats n zero-padded to at least six digits without fmt overhead.
func itoa6(n uint64) string {
	buf := [20]byte{}
	i := len(buf)
	for n > 0 || i > len(buf)-6 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// statusWriter captures the response status for the observability
// middleware. It forwards Flush so streaming handlers keep working behind
// the wrapper, and exposes Unwrap for http.ResponseController to find the
// rest of the underlying writer's optional interfaces.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Flush implements http.Flusher when the underlying writer does; embedding
// alone would hide it, since interface satisfaction sees only the embedded
// http.ResponseWriter methods.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
