package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/cnfet/yieldlab/internal/obs"
)

// Golden rendering for one histogram series: this pins the Prometheus text
// exposition details that scrapers depend on — cumulative le buckets, an
// explicit +Inf equal to _count, shortest-round-trip bound formatting, and
// %q label escaping.
func TestWriteHistogramGolden(t *testing.T) {
	h := obs.NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	writeHistogram(&b, "x_seconds", "route", `/v1/"quoted"\path`, h.Snapshot())
	want := `x_seconds_bucket{route="/v1/\"quoted\"\\path",le="0.001"} 1
x_seconds_bucket{route="/v1/\"quoted\"\\path",le="0.01"} 3
x_seconds_bucket{route="/v1/\"quoted\"\\path",le="0.1"} 4
x_seconds_bucket{route="/v1/\"quoted\"\\path",le="+Inf"} 5
x_seconds_sum{route="/v1/\"quoted\"\\path"} 5.0605
x_seconds_count{route="/v1/\"quoted\"\\path"} 5
`
	if b.String() != want {
		t.Errorf("rendering drifted:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// Bucket bounds must render the way Prometheus client libraries print them:
// shortest round-trip decimal, never exponent notation for typical latency
// bounds.
func TestFormatLE(t *testing.T) {
	cases := map[float64]string{
		0.0001: "0.0001",
		0.005:  "0.005",
		0.25:   "0.25",
		1:      "1",
		30:     "30",
	}
	for in, want := range cases {
		if got := formatLE(in); got != want {
			t.Errorf("formatLE(%v) = %q, want %q", in, got, want)
		}
	}
}

// Hammer the registry from many goroutines while scraping concurrently; run
// under -race this guards the lock-free histogram fast path and the lazily
// created per-key series. Counts must balance exactly once writers quiesce.
func TestMetricsRegistryConcurrent(t *testing.T) {
	m := newMetricsRegistry()
	const (
		workers = 8
		perG    = 500
	)
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			m.mu.Lock()
			for _, h := range m.latency {
				h.Snapshot()
			}
			m.mu.Unlock()
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			route := fmt.Sprintf("/v1/r%d", g%4)
			for i := 0; i < perG; i++ {
				m.observe(route, 200, 0.001*float64(i%7))
				m.observeStage("mc.run", 0.0001)
			}
		}(g)
	}
	wg.Wait()
	close(stopScrape)
	<-scrapeDone

	var total uint64
	m.mu.Lock()
	for _, n := range m.requests {
		total += n
	}
	var bucketTotal uint64
	for _, h := range m.latency {
		snap := h.Snapshot()
		bucketTotal += snap.Count
		if snap.Cumulative[len(snap.Cumulative)-1] != snap.Count {
			t.Errorf("+Inf bucket %d != count %d", snap.Cumulative[len(snap.Cumulative)-1], snap.Count)
		}
		for i := 1; i < len(snap.Cumulative); i++ {
			if snap.Cumulative[i] < snap.Cumulative[i-1] {
				t.Errorf("buckets not monotone: %v", snap.Cumulative)
			}
		}
	}
	stageSnap := m.stages["mc.run"].Snapshot()
	m.mu.Unlock()
	if want := uint64(workers * perG); total != want || bucketTotal != want {
		t.Errorf("requests %d, histogram count %d, want %d", total, bucketTotal, want)
	}
	if stageSnap.Count != uint64(workers*perG) {
		t.Errorf("stage count %d, want %d", stageSnap.Count, workers*perG)
	}
}

// /metrics must expose real histogram families (buckets, +Inf, sum, count)
// for request latency and evaluation stages, plus the build_info gauge.
func TestMetricsHistogramFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/v1/pf?width=155", nil); code != http.StatusOK {
		t.Fatalf("pf status %d", code)
	}
	_, body, _ := getBody(t, ts.URL+"/metrics", nil)
	text := string(body)
	for _, want := range []string{
		"# TYPE yieldserver_http_request_duration_seconds histogram",
		`yieldserver_http_request_duration_seconds_bucket{route="/v1/pf",le="+Inf"} 1`,
		`yieldserver_http_request_duration_seconds_bucket{route="/v1/pf",le="0.0001"}`,
		`yieldserver_http_request_duration_seconds_count{route="/v1/pf"} 1`,
		"# TYPE yieldserver_stage_duration_seconds histogram",
		`yieldserver_stage_duration_seconds_bucket{stage="query.evaluate",le="+Inf"} 1`,
		`yieldserver_stage_duration_seconds_count{stage="query.evaluate"} 1`,
		"# TYPE yieldserver_build_info gauge",
		`yieldserver_build_info{version=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}
