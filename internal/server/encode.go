package server

import (
	"io"

	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/query"
	"github.com/cnfet/yieldlab/internal/report"
)

// The JSON encodings of experiment artifacts moved to internal/query so the
// library facade, the CLI and the server share one schema; these aliases
// keep the server's historical names working for existing consumers.

// TableJSON mirrors report.Table.
type TableJSON = query.TableJSON

// ComparisonJSON mirrors report.Comparison plus the derived verdict.
type ComparisonJSON = query.ComparisonJSON

// ResultJSON is one experiment's output.
type ResultJSON = query.ResultJSON

// EncodeTable converts a report table (nil in, nil out).
func EncodeTable(t *report.Table) *TableJSON { return query.EncodeTable(t) }

// EncodeComparisons converts a comparison set (nil in, nil out).
func EncodeComparisons(s *report.ComparisonSet) []ComparisonJSON { return query.EncodeComparisons(s) }

// EncodeResult converts one experiment result.
func EncodeResult(res *experiments.Result) ResultJSON { return query.EncodeResult(res) }

// EncodeResults converts a result list, preserving order.
func EncodeResults(results []*experiments.Result) []ResultJSON { return query.EncodeResults(results) }

// WriteResults renders results as an indented JSON array — the payload
// behind both `cnfetyield -json` and the job-result API.
func WriteResults(w io.Writer, results []*experiments.Result) error {
	return query.WriteResults(w, results)
}
