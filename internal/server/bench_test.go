package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/cnfet/yieldlab/internal/experiments"
)

// BenchmarkServerPF measures one warm /v1/pf query end to end — mux routing,
// parameter validation, the cached PGF evaluation, and JSON encoding. This
// is the steady-state unit cost of the service's hottest endpoint and part
// of the CI bench gate.
func BenchmarkServerPF(b *testing.B) {
	p := experiments.DefaultParams()
	p.GridStepNM = 0.1
	p.MaxWidthNM = 200
	srv, err := New(Config{Params: p})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/pf?width=155&corner=worst"
	// Warm the sweep outside the timed region.
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		var out PFJSON
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if out.PF <= 0 {
			b.Fatal("no pF")
		}
	}
}
