// Package server wraps the query Session — the one evaluation path shared
// with the yieldlab facade and the cnfetyield CLI — in a long-lived
// HTTP/JSON service: the paper's "what is pF(W) / Wmin / row yield under
// this growth scenario?" questions as cheap, repeatable endpoints instead
// of one-shot CLI runs.
//
// Endpoints (all JSON):
//
//	GET  /healthz                 liveness
//	GET  /metrics                 Prometheus-text service metrics
//	GET  /v1/corners              the Fig. 2.1 processing corners
//	GET  /v1/pf                   device failure probability pF(W)
//	POST /v1/pf/batch             many (width, corner) points in one call
//	GET  /v1/wmin                 chip-level minimum width (Eq. 2.5)
//	GET  /v1/rowyield             row failure probability per scenario
//	POST /v2/query                declarative QuerySpec: single or sweep,
//	                              sync or job-backed (?async=1)
//	POST /v1/experiments          submit an experiment job → job id
//	GET  /v1/jobs/{id}            job status and (partial) results
//	GET  /v1/stats                cache hit rates, sweeps, jobs in flight
//
// Every /v1 evaluation endpoint is a thin translation onto a QuerySpec
// (internal/query) evaluated by the shared Session, so /v1 answers are
// byte-identical to their /v2/query counterparts and all endpoints share
// one validation/evaluation/encoding path. Deterministic GETs carry an
// ETag derived from the spec's canonical fingerprint and honor
// If-None-Match with 304. Errors use one envelope:
// {"error": {"code", "message"}} — including 404/405 on unknown paths.
//
// Request cost is dominated by cold renewal sweeps; three layers keep them
// rare: renewal.SweepCache shares swept tables across corners and requests,
// identical concurrent computations are deduplicated singleflight-style on
// top of it, and an optional sweepstore directory persists the tables so a
// restarted server (or a parallel process) warms instantly.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/cnfet/yieldlab/internal/buildinfo"
	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/jobstore"
	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/query"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rowyield"
	"github.com/cnfet/yieldlab/internal/sweepstore"
)

// Defaults for Config zero values.
const (
	DefaultCacheEntries   = 64
	DefaultMaxJobs        = 64
	DefaultConcurrentJobs = 2
	DefaultBatchLimit     = 4096
	DefaultRowRounds      = query.DefaultRowRounds
	// DefaultMaxRowRounds covers the adaptive estimators' default round cap:
	// a rare-event request that names no explicit budget resolves to
	// query.DefaultAdaptiveRounds, and the limit must not reject the
	// service's own default.
	DefaultMaxRowRounds = query.DefaultAdaptiveRounds
	// DefaultMaxInFlightSweeps bounds synchronous /v2/query sweeps computing
	// at once before the server sheds load with a retryable 503.
	DefaultMaxInFlightSweeps = 32
	// Transient sweep-store write failures are retried with jittered
	// exponential backoff: storeRetryAttempts total tries, storeRetryBase
	// before the first retry.
	storeRetryAttempts = 3
	storeRetryBase     = 2 * time.Millisecond
)

// Config configures a Server.
type Config struct {
	// Params is the experiment configuration jobs run under and the source
	// of the device grid (step, max width). Zero value = DefaultParams.
	Params experiments.Params
	// Store, when non-nil, persists swept renewal tables: warmed from at
	// startup, written back after new sweeps and on Close. The server arms
	// the store's transient-write retry loop.
	Store *sweepstore.Store
	// Jobs, when non-nil, journals async jobs so a restarted server
	// re-adopts them: terminal jobs return as served history, open jobs are
	// resumed from their last checkpointed result prefix.
	Jobs *jobstore.Store
	// CacheEntries bounds the sweep cache (0 = DefaultCacheEntries).
	CacheEntries int
	// MaxJobs bounds the retained job history (0 = DefaultMaxJobs).
	MaxJobs int
	// ConcurrentJobs bounds jobs computing at once (0 = DefaultConcurrentJobs).
	ConcurrentJobs int
	// BatchLimit caps points per /v1/pf/batch request and concrete specs per
	// /v2/query sweep (0 = DefaultBatchLimit).
	BatchLimit int
	// MaxRowRounds caps Monte Carlo rounds a rowyield request may ask for
	// (0 = DefaultMaxRowRounds).
	MaxRowRounds int
	// RequestTimeout bounds each request's handling time: the request
	// context gets this deadline, and an evaluation that exceeds it answers
	// with a retryable 503 (0 = no deadline).
	RequestTimeout time.Duration
	// MaxInFlightSweeps bounds synchronous /v2/query sweeps computing at
	// once; excess requests are shed with a retryable 503 and Retry-After
	// while ETag revalidations still answer 304
	// (0 = DefaultMaxInFlightSweeps, negative = unbounded).
	MaxInFlightSweeps int
	// Logger receives one structured line per request (nil = discard, which
	// keeps tests and embedded uses quiet).
	Logger *slog.Logger
	// SlowLogEntries bounds the /debug/slowlog ring
	// (0 = obs.DefaultSlowLogEntries).
	SlowLogEntries int
	// SlowLogThreshold is the slowlog recording cutoff
	// (0 = obs.DefaultSlowLogThreshold; negative records every request).
	SlowLogThreshold time.Duration
}

// Server is the HTTP yield service. Create with New, serve Handler, and
// Close on shutdown to drain jobs and persist the sweep store.
type Server struct {
	cfg     Config
	params  experiments.Params
	session *query.Session
	runner  *experiments.Runner
	cache   *renewal.SweepCache
	flight  flightGroup
	jobs    *jobEngine
	mux     *http.ServeMux
	metrics *metricsRegistry
	slowlog *obs.SlowLog
	logger  *slog.Logger
	start   time.Time
	// ridPrefix and reqSeq generate X-Request-ID correlation ids: a
	// start-time prefix distinguishing restarts plus a process sequence.
	ridPrefix string
	reqSeq    atomic.Uint64
	// paramsTag fingerprints the server's parameter set; ETags combine it
	// with each spec's canonical fingerprint so two servers with different
	// grids or seeds can never validate each other's cached responses.
	paramsTag string
	// inflight bounds synchronous sweep evaluations (nil = unbounded);
	// shed counts requests refused at that bound.
	inflight chan struct{}
	shed     atomic.Uint64
}

// New builds a server, warming the sweep cache from cfg.Store when present.
func New(cfg Config) (*Server, error) {
	if (cfg.Params == experiments.Params{}) {
		cfg.Params = experiments.DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.ConcurrentJobs == 0 {
		cfg.ConcurrentJobs = DefaultConcurrentJobs
	}
	if cfg.BatchLimit == 0 {
		cfg.BatchLimit = DefaultBatchLimit
	}
	if cfg.MaxRowRounds == 0 {
		cfg.MaxRowRounds = DefaultMaxRowRounds
	}
	if cfg.MaxInFlightSweeps == 0 {
		cfg.MaxInFlightSweeps = DefaultMaxInFlightSweeps
	}
	if cfg.Store != nil {
		// A long-lived server rides out transient store-write failures
		// instead of dropping the snapshot on the first error.
		cfg.Store.SetRetry(storeRetryAttempts, storeRetryBase)
	}
	session, err := query.NewSession(query.Options{
		Params:       cfg.Params,
		Store:        cfg.Store,
		Workers:      cfg.Params.Workers,
		MaxRowRounds: cfg.MaxRowRounds,
		MaxSweep:     cfg.BatchLimit,
	})
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:       cfg,
		params:    cfg.Params,
		session:   session,
		runner:    session.Runner(),
		cache:     session.Cache(),
		metrics:   newMetricsRegistry(),
		slowlog:   obs.NewSlowLog(cfg.SlowLogEntries, cfg.SlowLogThreshold),
		logger:    logger,
		start:     time.Now(),
		paramsTag: paramsTag(cfg.Params),
	}
	s.ridPrefix = fmt.Sprintf("%08x", uint32(s.start.UnixNano()))
	s.cache.SetMaxEntries(cfg.CacheEntries)
	if cfg.MaxInFlightSweeps > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlightSweeps)
	}
	s.jobs = newJobEngine(cfg.MaxJobs, cfg.ConcurrentJobs, s.session.Checkpoint, cfg.Jobs)
	if resumed, err := s.jobs.adopt(session, s.runner, cfg.Params.Workers); err != nil {
		session.Close()
		return nil, fmt.Errorf("adopting job journal: %w", err)
	} else if resumed > 0 {
		logger.Info("resumed journaled jobs", slog.Int("jobs", resumed))
	}
	s.routes()
	return s, nil
}

// paramsTag hashes the parameter set into a short response-identity prefix.
func paramsTag(p experiments.Params) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", p)))
	return hex.EncodeToString(sum[:6])
}

// Session exposes the server's shared query session.
func (s *Server) Session() *query.Session { return s.session }

// Handler returns the service's HTTP handler: the route mux wrapped in the
// JSON 404/405 fallback and the observability middleware (per-request
// tracing, metrics, slowlog, structured log).
func (s *Server) Handler() http.Handler {
	return s.withObs(s.withJSONFallback())
}

// Close drains running jobs and persists the sweep cache.
func (s *Server) Close() error {
	s.jobs.drain()
	return s.session.Close()
}

// Shutdown is Close with a drain deadline: it waits up to d for running
// jobs, then persists the sweep cache regardless. Jobs still running at
// the deadline are abandoned in this process but stay journaled, so the
// next start re-adopts and resumes them — exactly the crash-recovery
// path, entered deliberately. d <= 0 waits indefinitely, like Close.
func (s *Server) Shutdown(d time.Duration) error {
	if d <= 0 {
		return s.Close()
	}
	if !s.jobs.drainTimeout(d) {
		s.logger.Warn("shutdown drain deadline exceeded; open jobs will resume on next start",
			slog.Duration("deadline", d))
	}
	return s.session.Close()
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/corners", s.handleCorners)
	s.mux.HandleFunc("GET /v1/pf", s.handlePF)
	s.mux.HandleFunc("POST /v1/pf/batch", s.handlePFBatch)
	s.mux.HandleFunc("GET /v1/wmin", s.handleWmin)
	s.mux.HandleFunc("GET /v1/rowyield", s.handleRowYield)
	s.mux.HandleFunc("POST /v2/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
}

// --- corners ---------------------------------------------------------------

// CornerJSON is the wire form of a processing corner.
type CornerJSON struct {
	Name  string  `json:"name"`
	Label string  `json:"label"`
	PM    float64 `json:"pm"`
	PRS   float64 `json:"prs"`
	// PF is the per-CNT failure probability pf = pm + (1-pm)·pRs (Eq. 2.1).
	PF float64 `json:"pf"`
}

// cornerNames maps the API names onto the Fig. 2.1 corners, worst first.
var cornerNames = query.CornerNames()

func corners() []CornerJSON {
	paper := device.PaperCorners()
	out := make([]CornerJSON, len(paper))
	for i, c := range paper {
		out[i] = CornerJSON{
			Name:  cornerNames[i],
			Label: c.Name,
			PM:    c.Params.PMetallic,
			PRS:   c.Params.PRemoveSemi,
			PF:    c.Params.PerCNTFailure(),
		}
	}
	return out
}

// cornerSpec fills the spec's corner fields from query-string values: a
// named corner, or explicit pm/prs overrides.
func cornerSpec(spec *query.Spec, name, pmStr, prsStr string) error {
	if pmStr == "" && prsStr == "" {
		spec.Corner = name
		return nil
	}
	if name != "" {
		return errors.New("give either corner or pm/prs, not both")
	}
	pm, err := parseFloat("pm", pmStr)
	if err != nil {
		return err
	}
	prs, err := parseFloat("prs", prsStr)
	if err != nil {
		return err
	}
	spec.PM, spec.PRS = &pm, &prs
	return nil
}

// deviceModel builds (or fetches) the shared failure model for a corner on
// the server's grid. Concurrent first calls collapse onto one build.
func (s *Server) deviceModel(p device.FailureParams) (*device.FailureModel, error) {
	key := fmt.Sprintf("model|%x|%x", math.Float64bits(p.PMetallic), math.Float64bits(p.PRemoveSemi))
	v, err := s.flight.do(key, func() (any, error) {
		return device.NewCalibratedModelWith(s.cache, p,
			renewal.WithStep(s.params.GridStepNM), renewal.WithMaxWidth(s.params.MaxWidthNM))
	})
	if err != nil {
		return nil, err
	}
	return v.(*device.FailureModel), nil
}

// evaluate runs one concrete spec through the session, deduplicating
// identical concurrent evaluations singleflight-style on the spec's
// canonical fingerprint.
func (s *Server) evaluate(r *http.Request, spec query.Spec) (query.Result, error) {
	_, fp, err := spec.Canonical()
	if err != nil {
		return query.Result{}, err
	}
	v, err := s.flight.do(fp, func() (any, error) {
		return s.session.Evaluate(r.Context(), spec)
	})
	if err != nil {
		return query.Result{}, err
	}
	return v.(query.Result), nil
}

// --- caching headers -------------------------------------------------------

// etagFor derives the response ETag of a canonical spec fingerprint.
func (s *Server) etagFor(fp string) string {
	return `"` + s.paramsTag + "-" + fp + `"`
}

// notModified reports whether the request's If-None-Match matches the ETag,
// in which case a 304 has been written.
func notModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	match := r.Header.Get("If-None-Match")
	if match == "" {
		return false
	}
	for _, candidate := range strings.Split(match, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag || candidate == "*" {
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return true
		}
	}
	return false
}

// setCacheHeaders marks a deterministic response as cacheable. Every
// computation behind these endpoints is a pure function of (params, spec) —
// Monte Carlo estimates included, since their seeds are fixed — so
// revalidation by ETag is sound.
func setCacheHeaders(w http.ResponseWriter, etag string) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=86400")
}

// --- handlers --------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	info := buildinfo.Get()
	writeJSON(w, http.StatusOK, map[string]string{
		"status":     "ok",
		"version":    buildinfo.Version(),
		"go_version": info.GoVersion,
	})
}

func (s *Server) handleCorners(w http.ResponseWriter, r *http.Request) {
	etag := s.etagFor("corners")
	if notModified(w, r, etag) {
		return
	}
	setCacheHeaders(w, etag)
	writeJSON(w, http.StatusOK, map[string]any{"corners": corners()})
}

// PFJSON is one device failure probability evaluation — the /v1 wire name
// of the shared query result payload.
type PFJSON = query.PFResult

func (s *Server) handlePF(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec := query.Spec{Kind: query.KindPF}
	if err := cornerSpec(&spec, q.Get("corner"), q.Get("pm"), q.Get("prs")); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	width, err := s.parseWidth(q.Get("width"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec.WidthNM = width
	spec.Node = q.Get("node")
	_, fp, err := spec.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	etag := s.etagFor(fp)
	if notModified(w, r, etag) {
		return
	}
	res, err := s.evaluate(r, spec)
	if err != nil {
		writeEvalError(w, err)
		return
	}
	defer s.session.Checkpoint()
	setCacheHeaders(w, etag)
	writeJSON(w, http.StatusOK, res.PF)
}

// BatchPointJSON is one requested (corner, width) evaluation.
type BatchPointJSON struct {
	Corner  string   `json:"corner,omitempty"`
	PM      *float64 `json:"pm,omitempty"`
	PRS     *float64 `json:"prs,omitempty"`
	WidthNM float64  `json:"width_nm"`
}

func (s *Server) handlePFBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Points []BatchPointJSON `json:"points"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Points) > s.cfg.BatchLimit {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d points exceeds limit %d", len(req.Points), s.cfg.BatchLimit))
		return
	}
	// Group the points per corner so each distinct model serves all its
	// widths in one batched sweep, then scatter results back in input order.
	type group struct {
		params device.FailureParams
		name   string
		idxs   []int
		widths []float64
	}
	groups := make(map[string]*group)
	out := make([]PFJSON, len(req.Points))
	for i, pt := range req.Points {
		spec := query.Spec{Kind: query.KindPF, Corner: pt.Corner, PM: pt.PM, PRS: pt.PRS}
		if pt.Corner != "" && (pt.PM != nil || pt.PRS != nil) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("point %d: give either corner or pm/prs, not both", i))
			return
		}
		params, cornerName, err := spec.FailureParams()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("point %d: %w", i, err))
			return
		}
		width, err := s.parseWidth(strconv.FormatFloat(pt.WidthNM, 'g', -1, 64))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("point %d: %w", i, err))
			return
		}
		g, ok := groups[cornerName]
		if !ok {
			g = &group{params: params, name: cornerName}
			groups[cornerName] = g
		}
		g.idxs = append(g.idxs, i)
		g.widths = append(g.widths, width)
	}
	for _, g := range groups {
		m, err := s.deviceModel(g.params)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		pfs, err := m.FailureProbs(g.widths)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		for k, idx := range g.idxs {
			out[idx] = PFJSON{Corner: g.name, WidthNM: g.widths[k], PFCNT: m.PerCNTFailure(), PF: pfs[k]}
		}
	}
	defer s.session.Checkpoint()
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

// WminJSON is one chip-level sizing solution — the /v1 wire name of the
// shared query result payload.
type WminJSON = query.WminResult

func (s *Server) handleWmin(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec := query.Spec{Kind: query.KindWmin}
	if err := cornerSpec(&spec, q.Get("corner"), q.Get("pm"), q.Get("prs")); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Only explicitly given parameters enter the spec: the session resolves
	// the defaults, so an unqualified /v1 request canonicalizes to the same
	// fingerprint (and ETag) as its zero-valued /v2 spec.
	var err error
	if v := q.Get("relax"); v != "" {
		if spec.RelaxFactor, err = parseFloat("relax", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if v := q.Get("m"); v != "" {
		if spec.M, err = parseFloat("m", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if v := q.Get("yield"); v != "" {
		if spec.DesiredYield, err = parseFloat("yield", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	spec.Node = q.Get("node")
	_, fp, err := spec.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	etag := s.etagFor(fp)
	if notModified(w, r, etag) {
		return
	}
	res, err := s.evaluate(r, spec)
	if err != nil {
		writeEvalError(w, err)
		return
	}
	defer s.session.Checkpoint()
	setCacheHeaders(w, etag)
	writeJSON(w, http.StatusOK, res.Wmin)
}

// RowYieldJSON is one row-correlation scenario evaluation — the /v1 wire
// name of the shared query result payload.
type RowYieldJSON = query.RowYieldResult

var rowScenarios = map[string]rowyield.Scenario{
	"uncorrelated": rowyield.UncorrelatedGrowth,
	"unaligned":    rowyield.DirectionalUnaligned,
	"aligned":      rowyield.DirectionalAligned,
}

func (s *Server) handleRowYield(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec := query.Spec{Kind: query.KindRowYield}
	if err := cornerSpec(&spec, q.Get("corner"), q.Get("pm"), q.Get("prs")); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec.Scenario = q.Get("scenario")
	if _, ok := rowScenarios[spec.Scenario]; !ok {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown scenario %q (have uncorrelated, unaligned, aligned)", spec.Scenario))
		return
	}
	width, err := s.parseWidth(q.Get("width"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec.WidthNM = width
	if v := q.Get("rounds"); v != "" {
		spec.Rounds, err = strconv.Atoi(v)
		if err != nil || spec.Rounds < 2 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("rounds %q must be an integer ≥ 2", v))
			return
		}
		if spec.Rounds > s.cfg.MaxRowRounds {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("rounds %d exceeds limit %d", spec.Rounds, s.cfg.MaxRowRounds))
			return
		}
	}
	spec.MCMethod = q.Get("mc_method")
	if v := q.Get("rel_err"); v != "" {
		if spec.RelErrTarget, err = parseFloat("rel_err", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	krows := 0.0
	if v := q.Get("krows"); v != "" {
		if krows, err = parseFloat("krows", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	spec.Node = q.Get("node")

	// The ETag covers the full request (krows included); the evaluation —
	// and its singleflight key — leaves krows out on purpose: it only
	// scales the final closed form, so requests differing in krows alone
	// still share one computation and the scaling is applied per caller.
	spec.KRows = krows
	_, fullFP, err := spec.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	etag := s.etagFor(fullFP)
	if notModified(w, r, etag) {
		return
	}
	spec.KRows = 0
	res, err := s.evaluate(r, spec)
	if err != nil {
		writeEvalError(w, err)
		return
	}
	out := *res.RowYield
	if krows > 0 {
		out.KRows = krows
		if out.ChipYield, err = rowyield.CorrelatedYield(krows, out.PRF); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	defer s.session.Checkpoint()
	setCacheHeaders(w, etag)
	writeJSON(w, http.StatusOK, out)
}

// --- /v2/query -------------------------------------------------------------

// QueryResponseJSON is the /v2/query sync response: the canonical sweep
// fingerprint and one result per concrete spec, in expansion order.
type QueryResponseJSON struct {
	Fingerprint string         `json:"fingerprint"`
	Count       int            `json:"count"`
	Results     []query.Result `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var spec query.Spec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	canon, fp, err := spec.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if n := canon.ExpandCount(); n > s.cfg.BatchLimit {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep of %d specs exceeds limit %d", n, s.cfg.BatchLimit))
		return
	}

	if isAsync(r) {
		job, err := s.jobs.submitQuery(r.Context(), s.session, canon, fp)
		if err != nil {
			writeUnavailable(w, err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job)
		return
	}

	// Revalidation is answered before the in-flight bound: a 304 costs
	// nothing, so clients holding a previous response keep getting answers
	// even while cold work is being shed.
	etag := s.etagFor(fp)
	if notModified(w, r, etag) {
		return
	}
	release, ok := s.acquireSweep()
	if !ok {
		writeUnavailable(w, fmt.Errorf("sweep capacity reached (%d in flight), retry later", cap(s.inflight)))
		return
	}
	defer release()
	results, err := s.session.EvaluateAll(r.Context(), canon)
	if err != nil {
		writeEvalError(w, err)
		return
	}
	defer s.session.Checkpoint()
	w.Header().Set("ETag", etag)
	writeJSON(w, http.StatusOK, QueryResponseJSON{Fingerprint: fp, Count: len(results), Results: results})
}

// acquireSweep reserves a synchronous-sweep slot, reporting false (and
// counting a shed) when the server is saturated.
func (s *Server) acquireSweep() (release func(), ok bool) {
	if s.inflight == nil {
		return func() {}, true
	}
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, true
	default:
		s.shed.Add(1)
		return nil, false
	}
}

// isAsync reports whether the request asked for job-backed execution.
func isAsync(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("async")) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// --- experiment jobs -------------------------------------------------------

// ExperimentRequestJSON submits a job.
type ExperimentRequestJSON struct {
	// Experiments lists experiment names; ["all"] expands to the paper set.
	Experiments []string `json:"experiments"`
	// Optional parameter overrides (zero = server default).
	Seed      uint64 `json:"seed,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	Instances int    `json:"instances,omitempty"`
	Workers   int    `json:"workers,omitempty"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequestJSON
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no experiments requested"))
		return
	}
	var names []string
	for _, n := range req.Experiments {
		if n == "all" {
			names = append(names, experiments.Names()...)
			continue
		}
		if !experiments.Known(n) {
			msg := fmt.Sprintf("unknown experiment %q", n)
			if hint, ok := experiments.Suggest(n); ok {
				msg += fmt.Sprintf(" (did you mean %q?)", hint)
			}
			writeError(w, http.StatusBadRequest, errors.New(msg))
			return
		}
		names = append(names, n)
	}

	runner := s.runner
	params := s.params
	if req.Seed != 0 || req.Rounds != 0 || req.Instances != 0 {
		if req.Seed != 0 {
			params.Seed = req.Seed
		}
		if req.Rounds != 0 {
			params.MCRounds = req.Rounds
		}
		if req.Instances != 0 {
			params.NetlistInstances = req.Instances
		}
		if err := params.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Override runners share the server's sweep cache, so even custom
		// jobs reuse (and contribute) swept tables.
		runner = experiments.NewWithCache(params, s.cache)
	}
	workers := params.Workers
	if req.Workers != 0 {
		workers = req.Workers
	}

	job, err := s.jobs.submit(r.Context(), runner, names, workers)
	if err != nil {
		writeUnavailable(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// --- stats and metrics -----------------------------------------------------

// StatsJSON is the /v1/stats payload.
type StatsJSON struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	SweepCache    struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
		Entries   int    `json:"entries"`
		Sweeps    uint64 `json:"sweeps"`
	} `json:"sweep_cache"`
	DedupedRequests uint64 `json:"deduped_requests"`
	// ShedRequests counts synchronous sweeps refused at the in-flight bound
	// with a retryable 503.
	ShedRequests uint64            `json:"shed_requests"`
	Jobs         map[string]int    `json:"jobs"`
	Store        *StoreStatsJSON   `json:"store,omitempty"`
	Journal      *JournalStatsJSON `json:"job_journal,omitempty"`
	// Faults lists armed fault-injection sites and their firing counts;
	// absent in normal operation (the registry is disarmed).
	Faults []fault.SiteStats `json:"faults,omitempty"`
}

// StoreStatsJSON reports sweep-store traffic.
type StoreStatsJSON struct {
	Dir     string `json:"dir"`
	Saves   uint64 `json:"saves"`
	Loads   uint64 `json:"loads"`
	Rejects uint64 `json:"rejects"`
	// Quarantined counts corrupt snapshot files renamed aside to .bad;
	// Retries counts save attempts repeated after transient failures.
	Quarantined uint64 `json:"quarantined"`
	Retries     uint64 `json:"retries"`
	// LastPersistError is the most recent cache-persistence failure, empty
	// once a later persist succeeds.
	LastPersistError string `json:"last_persist_error,omitempty"`
}

// JournalStatsJSON reports job-journal traffic and health.
type JournalStatsJSON struct {
	Dir         string `json:"dir"`
	Puts        uint64 `json:"puts"`
	Loads       uint64 `json:"loads"`
	Quarantined uint64 `json:"quarantined"`
	PutErrors   uint64 `json:"put_errors"`
	// EngineErrors counts journal failures seen by the job engine (a
	// superset view: failed puts, deletes and undecodable records);
	// LastError is the most recent one.
	EngineErrors uint64 `json:"engine_errors"`
	LastError    string `json:"last_error,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var out StatsJSON
	out.UptimeSeconds = time.Since(s.start).Seconds()
	cs := s.cache.Stats()
	out.SweepCache.Hits = cs.Hits
	out.SweepCache.Misses = cs.Misses
	out.SweepCache.Evictions = cs.Evictions
	out.SweepCache.Entries = cs.Entries
	out.SweepCache.Sweeps = cs.Sweeps
	out.DedupedRequests = s.flight.sharedCount()
	out.ShedRequests = s.shed.Load()
	out.Jobs = s.jobs.counts()
	if store := s.session.Store(); store != nil {
		st := store.Stats()
		out.Store = &StoreStatsJSON{
			Dir: store.Dir(), Saves: st.Saves, Loads: st.Loads, Rejects: st.Rejects,
			Quarantined: st.Quarantined, Retries: st.Retries,
			LastPersistError: s.session.LastPersistError(),
		}
	}
	if s.cfg.Jobs != nil {
		jst := s.cfg.Jobs.Stats()
		errs, last := s.jobs.journalStats()
		out.Journal = &JournalStatsJSON{
			Dir: s.cfg.Jobs.Dir(), Puts: jst.Puts, Loads: jst.Loads,
			Quarantined: jst.Quarantined, PutErrors: jst.PutErrors,
			EngineErrors: errs, LastError: last,
		}
	}
	out.Faults = fault.Stats()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	snap := promSnapshot{
		uptimeSeconds: time.Since(s.start).Seconds(),
		cache:         cs,
		deduped:       s.flight.sharedCount(),
		shed:          s.shed.Load(),
		jobs:          s.jobs.counts(),
		build:         buildinfo.Get(),
		faults:        fault.Stats(),
	}
	if store := s.session.Store(); store != nil {
		st := store.Stats()
		snap.store = &st
	}
	if s.cfg.Jobs != nil {
		jst := s.cfg.Jobs.Stats()
		snap.journal = &jst
		snap.journalErrs, _ = s.jobs.journalStats()
	}
	s.metrics.write(w, snap)
}

// SlowLogJSON is the /debug/slowlog payload.
type SlowLogJSON struct {
	// ThresholdMS is the recording cutoff (0 = every request is recorded).
	ThresholdMS float64 `json:"threshold_ms"`
	// Capacity is the ring size; the newest Capacity slow requests are kept.
	Capacity int `json:"capacity"`
	// Observed and Recorded count requests seen and requests that cleared
	// the threshold over the server's lifetime.
	Observed uint64 `json:"observed"`
	Recorded uint64 `json:"recorded"`
	// Entries lists the retained slow requests, newest first.
	Entries []obs.SlowEntry `json:"entries"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	observed, recorded := s.slowlog.Counts()
	entries := s.slowlog.Entries()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, SlowLogJSON{
		ThresholdMS: float64(s.slowlog.Threshold()) / float64(time.Millisecond),
		Capacity:    s.slowlog.Capacity(),
		Observed:    observed,
		Recorded:    recorded,
		Entries:     entries,
	})
}

// --- middleware ------------------------------------------------------------

// withJSONFallback answers requests no route matches with the JSON error
// envelope instead of the mux's plain-text defaults: 405 (with the Allow
// header preserved) when the path exists under another method, 404
// otherwise.
func (s *Server) withJSONFallback() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := s.mux.Handler(r); pattern != "" {
			s.mux.ServeHTTP(w, r)
			return
		}
		// Replay against a recorder to learn whether the mux default is a
		// 404 or a 405, without letting its plain-text body escape.
		rec := &headerRecorder{header: make(http.Header)}
		s.mux.ServeHTTP(rec, r)
		switch rec.status {
		case http.StatusMethodNotAllowed:
			if allow := rec.header.Get("Allow"); allow != "" {
				w.Header().Set("Allow", allow)
			}
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Errorf("method %s not allowed for %s", r.Method, r.URL.Path))
		default:
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown path %s", r.URL.Path))
		}
	})
}

// headerRecorder captures a handler's status and headers, discarding the body.
type headerRecorder struct {
	header http.Header
	status int
}

func (rec *headerRecorder) Header() http.Header { return rec.header }
func (rec *headerRecorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
}
func (rec *headerRecorder) Write(b []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	return len(b), nil
}

// --- helpers ---------------------------------------------------------------

func (s *Server) parseWidth(v string) (float64, error) {
	if v == "" {
		return 0, errors.New("missing width parameter (nm)")
	}
	width, err := parseFloat("width", v)
	if err != nil {
		return 0, err
	}
	if !(width > 0) || width > s.params.MaxWidthNM {
		return 0, fmt.Errorf("width %g nm out of (0, %g]", width, s.params.MaxWidthNM)
	}
	return width, nil
}

func parseFloat(name, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("parameter %s=%q is not a finite number", name, v)
	}
	return f, nil
}

// decodeBody strictly decodes a bounded JSON body.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorJSON is the error envelope of every endpoint:
// {"error": {"code": "...", "message": "..."}}.
type ErrorJSON struct {
	Error ErrorBodyJSON `json:"error"`
}

// ErrorBodyJSON carries one error. Retryable marks conditions that clear
// on their own (queue full, load shed, deadline exceeded): the client
// should retry after the Retry-After hint, with backoff.
type ErrorBodyJSON struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable,omitempty"`
}

// errorCode maps an HTTP status onto the envelope's stable machine code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorJSON{Error: ErrorBodyJSON{Code: errorCode(status), Message: err.Error()}})
}

// writeUnavailable answers an overload rejection — queue full, sweep
// capacity reached, deadline exceeded — with a retryable 503 and a
// Retry-After hint: the condition clears as soon as in-flight work
// finishes, so the client should come back, not give up.
func writeUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, ErrorJSON{Error: ErrorBodyJSON{
		Code: errorCode(http.StatusServiceUnavailable), Message: err.Error(), Retryable: true,
	}})
}

// writeEvalError classifies a session evaluation failure: caller mistakes
// (invalid or out-of-bounds specs) are 400s, a request-deadline expiry is
// a retryable 503, everything else — sweep or model failures the client
// did nothing to cause — is a 500.
func writeEvalError(w http.ResponseWriter, err error) {
	switch {
	case query.IsRequestError(err):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeUnavailable(w, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}
