// Package server wraps the experiment Runner and the renewal sweep engine
// in a long-lived HTTP/JSON service — the paper's "what is pF(W) / Wmin /
// row yield under this growth scenario?" queries as cheap, repeatable
// endpoints instead of one-shot CLI runs.
//
// Endpoints (all JSON):
//
//	GET  /healthz                 liveness
//	GET  /v1/corners              the Fig. 2.1 processing corners
//	GET  /v1/pf                   device failure probability pF(W)
//	POST /v1/pf/batch             many (width, corner) points in one call
//	GET  /v1/wmin                 chip-level minimum width (Eq. 2.5)
//	GET  /v1/rowyield             row failure probability per scenario
//	POST /v1/experiments          submit an experiment job → job id
//	GET  /v1/jobs/{id}            job status and results
//	GET  /v1/stats                cache hit rates, sweeps, jobs in flight
//
// Request cost is dominated by cold renewal sweeps; three layers keep them
// rare: renewal.SweepCache shares swept tables across corners and requests,
// identical concurrent computations are deduplicated singleflight-style on
// top of it, and an optional sweepstore directory persists the tables so a
// restarted server (or a parallel process) warms instantly.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rowyield"
	"github.com/cnfet/yieldlab/internal/sweepstore"
	"github.com/cnfet/yieldlab/internal/widthdist"
	"github.com/cnfet/yieldlab/internal/yield"
)

// Defaults for Config zero values.
const (
	DefaultCacheEntries   = 64
	DefaultMaxJobs        = 64
	DefaultConcurrentJobs = 2
	DefaultBatchLimit     = 4096
	DefaultRowRounds      = 2_000
	DefaultMaxRowRounds   = 50_000
)

// Config configures a Server.
type Config struct {
	// Params is the experiment configuration jobs run under and the source
	// of the device grid (step, max width). Zero value = DefaultParams.
	Params experiments.Params
	// Store, when non-nil, persists swept renewal tables: warmed from at
	// startup, written back after new sweeps and on Close.
	Store *sweepstore.Store
	// CacheEntries bounds the sweep cache (0 = DefaultCacheEntries).
	CacheEntries int
	// MaxJobs bounds the retained job history (0 = DefaultMaxJobs).
	MaxJobs int
	// ConcurrentJobs bounds jobs computing at once (0 = DefaultConcurrentJobs).
	ConcurrentJobs int
	// BatchLimit caps points per /v1/pf/batch request (0 = DefaultBatchLimit).
	BatchLimit int
	// MaxRowRounds caps Monte Carlo rounds a /v1/rowyield request may ask
	// for (0 = DefaultMaxRowRounds).
	MaxRowRounds int
}

// Server is the HTTP yield service. Create with New, serve Handler, and
// Close on shutdown to drain jobs and persist the sweep store.
type Server struct {
	cfg    Config
	params experiments.Params
	runner *experiments.Runner
	cache  *renewal.SweepCache
	flight flightGroup
	jobs   *jobEngine
	mux    *http.ServeMux
	start  time.Time

	persistMu       sync.Mutex
	persistedSweeps uint64
	persistErr      string // last persistence failure, surfaced in /v1/stats
}

// New builds a server, warming the sweep cache from cfg.Store when present.
func New(cfg Config) (*Server, error) {
	if (cfg.Params == experiments.Params{}) {
		cfg.Params = experiments.DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.ConcurrentJobs == 0 {
		cfg.ConcurrentJobs = DefaultConcurrentJobs
	}
	if cfg.BatchLimit == 0 {
		cfg.BatchLimit = DefaultBatchLimit
	}
	if cfg.MaxRowRounds == 0 {
		cfg.MaxRowRounds = DefaultMaxRowRounds
	}
	s := &Server{
		cfg:    cfg,
		params: cfg.Params,
		runner: experiments.New(cfg.Params),
		start:  time.Now(),
	}
	s.cache = s.runner.SweepCache()
	s.cache.SetMaxEntries(cfg.CacheEntries)
	if cfg.Store != nil {
		if _, err := sweepstore.WarmCache(cfg.Store, s.cache); err != nil {
			return nil, fmt.Errorf("server: warming sweep cache: %w", err)
		}
		s.persistedSweeps = 0 // restored tables involved no sweeps
	}
	s.jobs = newJobEngine(cfg.MaxJobs, cfg.ConcurrentJobs, s.maybePersist)
	s.routes()
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains running jobs and persists the sweep cache.
func (s *Server) Close() error {
	s.jobs.drain()
	if s.cfg.Store == nil {
		return nil
	}
	_, err := sweepstore.PersistCache(s.cfg.Store, s.cache)
	return err
}

// maybePersist writes the sweep cache back to the store when new sweeps
// have been computed since the last persist. Runs synchronously but off the
// common path: callers invoke it after a response is already determined.
func (s *Server) maybePersist() {
	if s.cfg.Store == nil {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	sweeps := s.cache.Stats().Sweeps
	if sweeps == s.persistedSweeps {
		return
	}
	// A failure (disk full, permissions) must not fail the request that
	// triggered it, but it must not vanish either: the last error is
	// reported by /v1/stats until a later persist succeeds.
	if _, err := sweepstore.PersistCache(s.cfg.Store, s.cache); err != nil {
		s.persistErr = err.Error()
		return
	}
	s.persistErr = ""
	s.persistedSweeps = sweeps
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/corners", s.handleCorners)
	s.mux.HandleFunc("GET /v1/pf", s.handlePF)
	s.mux.HandleFunc("POST /v1/pf/batch", s.handlePFBatch)
	s.mux.HandleFunc("GET /v1/wmin", s.handleWmin)
	s.mux.HandleFunc("GET /v1/rowyield", s.handleRowYield)
	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
}

// --- corners ---------------------------------------------------------------

// CornerJSON is the wire form of a processing corner.
type CornerJSON struct {
	Name  string  `json:"name"`
	Label string  `json:"label"`
	PM    float64 `json:"pm"`
	PRS   float64 `json:"prs"`
	// PF is the per-CNT failure probability pf = pm + (1-pm)·pRs (Eq. 2.1).
	PF float64 `json:"pf"`
}

// cornerNames maps the API names onto the Fig. 2.1 corners, worst first.
var cornerNames = []string{"worst", "mid", "best"}

func corners() []CornerJSON {
	paper := device.PaperCorners()
	out := make([]CornerJSON, len(paper))
	for i, c := range paper {
		out[i] = CornerJSON{
			Name:  cornerNames[i],
			Label: c.Name,
			PM:    c.Params.PMetallic,
			PRS:   c.Params.PRemoveSemi,
			PF:    c.Params.PerCNTFailure(),
		}
	}
	return out
}

// cornerParams resolves a corner name (or explicit pm/prs overrides) to
// failure parameters.
func cornerParams(name, pmStr, prsStr string) (device.FailureParams, string, error) {
	if pmStr != "" || prsStr != "" {
		if name != "" {
			return device.FailureParams{}, "", errors.New("give either corner or pm/prs, not both")
		}
		pm, err := parseFloat("pm", pmStr)
		if err != nil {
			return device.FailureParams{}, "", err
		}
		prs, err := parseFloat("prs", prsStr)
		if err != nil {
			return device.FailureParams{}, "", err
		}
		p := device.FailureParams{PMetallic: pm, PRemoveSemi: prs, PRemoveMetallic: 1}
		if err := p.Validate(); err != nil {
			return device.FailureParams{}, "", err
		}
		return p, fmt.Sprintf("pm=%g,prs=%g", pm, prs), nil
	}
	if name == "" {
		name = "worst"
	}
	for i, c := range device.PaperCorners() {
		if name == cornerNames[i] || name == c.Name {
			return c.Params, cornerNames[i], nil
		}
	}
	return device.FailureParams{}, "", fmt.Errorf("unknown corner %q (have %s, or give pm= and prs=)",
		name, strings.Join(cornerNames, ", "))
}

// deviceModel builds (or fetches) the shared failure model for a corner on
// the server's grid. Concurrent first calls collapse onto one build.
func (s *Server) deviceModel(p device.FailureParams) (*device.FailureModel, error) {
	key := fmt.Sprintf("model|%x|%x", math.Float64bits(p.PMetallic), math.Float64bits(p.PRemoveSemi))
	v, err := s.flight.do(key, func() (any, error) {
		return device.NewCalibratedModelWith(s.cache, p,
			renewal.WithStep(s.params.GridStepNM), renewal.WithMaxWidth(s.params.MaxWidthNM))
	})
	if err != nil {
		return nil, err
	}
	return v.(*device.FailureModel), nil
}

// --- handlers --------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleCorners(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"corners": corners()})
}

// PFJSON is one device failure probability evaluation.
type PFJSON struct {
	Corner  string  `json:"corner"`
	WidthNM float64 `json:"width_nm"`
	// PFCNT is the per-CNT failure probability pf (Eq. 2.1).
	PFCNT float64 `json:"pf_cnt"`
	// PF is the device failure probability pF(W) (Eq. 2.2).
	PF float64 `json:"pf"`
}

func (s *Server) handlePF(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	params, cornerName, err := cornerParams(q.Get("corner"), q.Get("pm"), q.Get("prs"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	width, err := s.parseWidth(q.Get("width"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.deviceModel(params)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	pf, err := m.FailureProb(width)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer s.maybePersist()
	writeJSON(w, http.StatusOK, PFJSON{Corner: cornerName, WidthNM: width, PFCNT: m.PerCNTFailure(), PF: pf})
}

// BatchPointJSON is one requested (corner, width) evaluation.
type BatchPointJSON struct {
	Corner  string   `json:"corner,omitempty"`
	PM      *float64 `json:"pm,omitempty"`
	PRS     *float64 `json:"prs,omitempty"`
	WidthNM float64  `json:"width_nm"`
}

func (s *Server) handlePFBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Points []BatchPointJSON `json:"points"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Points) > s.cfg.BatchLimit {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d points exceeds limit %d", len(req.Points), s.cfg.BatchLimit))
		return
	}
	// Group the points per corner so each distinct model serves all its
	// widths in one batched sweep, then scatter results back in input order.
	type group struct {
		params device.FailureParams
		name   string
		idxs   []int
		widths []float64
	}
	groups := make(map[string]*group)
	out := make([]PFJSON, len(req.Points))
	for i, pt := range req.Points {
		pmStr, prsStr := "", ""
		if pt.PM != nil {
			pmStr = strconv.FormatFloat(*pt.PM, 'g', -1, 64)
		}
		if pt.PRS != nil {
			prsStr = strconv.FormatFloat(*pt.PRS, 'g', -1, 64)
		}
		params, cornerName, err := cornerParams(pt.Corner, pmStr, prsStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("point %d: %w", i, err))
			return
		}
		width, err := s.parseWidth(strconv.FormatFloat(pt.WidthNM, 'g', -1, 64))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("point %d: %w", i, err))
			return
		}
		g, ok := groups[cornerName]
		if !ok {
			g = &group{params: params, name: cornerName}
			groups[cornerName] = g
		}
		g.idxs = append(g.idxs, i)
		g.widths = append(g.widths, width)
	}
	for _, g := range groups {
		m, err := s.deviceModel(g.params)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		pfs, err := m.FailureProbs(g.widths)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		for k, idx := range g.idxs {
			out[idx] = PFJSON{Corner: g.name, WidthNM: g.widths[k], PFCNT: m.PerCNTFailure(), PF: pfs[k]}
		}
	}
	defer s.maybePersist()
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

// WminJSON is one chip-level sizing solution.
type WminJSON struct {
	Corner       string  `json:"corner"`
	M            float64 `json:"m"`
	DesiredYield float64 `json:"desired_yield"`
	RelaxFactor  float64 `json:"relax_factor"`
	WminNM       float64 `json:"wmin_nm"`
	DevicePF     float64 `json:"device_pf"`
	MminShare    float64 `json:"mmin_share"`
}

func (s *Server) handleWmin(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	params, cornerName, err := cornerParams(q.Get("corner"), q.Get("pm"), q.Get("prs"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	relax := 1.0
	if v := q.Get("relax"); v != "" {
		if relax, err = parseFloat("relax", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	m := s.params.M
	if v := q.Get("m"); v != "" {
		if m, err = parseFloat("m", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	desired := s.params.DesiredYield
	if v := q.Get("yield"); v != "" {
		if desired, err = parseFloat("yield", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	key := fmt.Sprintf("wmin|%s|%x|%x|%x", cornerName,
		math.Float64bits(relax), math.Float64bits(m), math.Float64bits(desired))
	v, err := s.flight.do(key, func() (any, error) {
		model, err := s.deviceModel(params)
		if err != nil {
			return nil, err
		}
		res, err := yield.SimplifiedWmin(&yield.Problem{
			Model:        model,
			Widths:       widthdist.OpenRISC45(),
			M:            m,
			DesiredYield: desired,
			RelaxFactor:  relax,
		})
		if err != nil {
			return nil, err
		}
		return WminJSON{
			Corner: cornerName, M: m, DesiredYield: desired, RelaxFactor: relax,
			WminNM: res.Wmin, DevicePF: res.DevicePF, MminShare: res.MminShare,
		}, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer s.maybePersist()
	writeJSON(w, http.StatusOK, v)
}

// RowYieldJSON is one row-correlation scenario evaluation.
type RowYieldJSON struct {
	Corner   string  `json:"corner"`
	Scenario string  `json:"scenario"`
	WidthNM  float64 `json:"width_nm"`
	// MRmin is Eq. 3.2: devices sharing one CNT span.
	MRmin float64 `json:"mrmin"`
	// DevicePF is the analytic pF(W) feeding the closed forms.
	DevicePF float64 `json:"device_pf"`
	// PRF is the row failure probability (analytic for the uncorrelated and
	// aligned scenarios, Monte Carlo for unaligned).
	PRF float64 `json:"prf"`
	// StdErr and Rounds describe the Monte Carlo estimate (unaligned only).
	StdErr float64 `json:"stderr,omitempty"`
	Rounds int     `json:"rounds,omitempty"`
	// KRows and ChipYield report Eq. 3.1 when krows was requested.
	KRows     float64 `json:"krows,omitempty"`
	ChipYield float64 `json:"chip_yield,omitempty"`
}

var rowScenarios = map[string]rowyield.Scenario{
	"uncorrelated": rowyield.UncorrelatedGrowth,
	"unaligned":    rowyield.DirectionalUnaligned,
	"aligned":      rowyield.DirectionalAligned,
}

func (s *Server) handleRowYield(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	params, cornerName, err := cornerParams(q.Get("corner"), q.Get("pm"), q.Get("prs"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scenarioName := q.Get("scenario")
	scenario, ok := rowScenarios[scenarioName]
	if !ok {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown scenario %q (have uncorrelated, unaligned, aligned)", scenarioName))
		return
	}
	width, err := s.parseWidth(q.Get("width"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rounds := DefaultRowRounds
	if v := q.Get("rounds"); v != "" {
		rounds, err = strconv.Atoi(v)
		if err != nil || rounds < 2 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("rounds %q must be an integer ≥ 2", v))
			return
		}
		if rounds > s.cfg.MaxRowRounds {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("rounds %d exceeds limit %d", rounds, s.cfg.MaxRowRounds))
			return
		}
	}
	krows := 0.0
	if v := q.Get("krows"); v != "" {
		if krows, err = parseFloat("krows", v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}

	// krows stays out of the flight key on purpose: it only scales the final
	// closed form, so requests differing in krows alone still share one
	// computation and the scaling is applied per caller below.
	key := fmt.Sprintf("rowyield|%s|%s|%x|%d", cornerName, scenarioName, math.Float64bits(width), rounds)
	v, err := s.flight.do(key, func() (any, error) {
		model, err := s.deviceModel(params)
		if err != nil {
			return nil, err
		}
		devicePF, err := model.FailureProb(width)
		if err != nil {
			return nil, err
		}
		mrmin, err := rowyield.MRmin(s.params.LCNTUM*1000, s.params.PminPerUM)
		if err != nil {
			return nil, err
		}
		out := RowYieldJSON{
			Corner: cornerName, Scenario: scenarioName, WidthNM: width,
			MRmin: mrmin, DevicePF: devicePF,
		}
		switch scenario {
		case rowyield.UncorrelatedGrowth:
			out.PRF, err = rowyield.IndependentRowFailure(devicePF, mrmin)
			if err != nil {
				return nil, err
			}
		case rowyield.DirectionalAligned:
			// Every CNFET in the row sees the same CNTs: pRF = pF exactly.
			out.PRF = devicePF
		case rowyield.DirectionalUnaligned:
			rm, err := s.runner.RowModelAt(width, params)
			if err != nil {
				return nil, err
			}
			est, err := rm.EstimateRowFailureParallel(s.params.Seed, scenario, rounds, s.params.Workers)
			if err != nil {
				return nil, err
			}
			out.PRF, out.StdErr, out.Rounds = est.Mean, est.StdErr, est.Rounds
		}
		return out, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := v.(RowYieldJSON)
	if krows > 0 {
		out.KRows = krows
		if out.ChipYield, err = rowyield.CorrelatedYield(krows, out.PRF); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	defer s.maybePersist()
	writeJSON(w, http.StatusOK, out)
}

// ExperimentRequestJSON submits a job.
type ExperimentRequestJSON struct {
	// Experiments lists experiment names; ["all"] expands to the paper set.
	Experiments []string `json:"experiments"`
	// Optional parameter overrides (zero = server default).
	Seed      uint64 `json:"seed,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	Instances int    `json:"instances,omitempty"`
	Workers   int    `json:"workers,omitempty"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequestJSON
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no experiments requested"))
		return
	}
	var names []string
	for _, n := range req.Experiments {
		if n == "all" {
			names = append(names, experiments.Names()...)
			continue
		}
		if !experiments.Known(n) {
			msg := fmt.Sprintf("unknown experiment %q", n)
			if hint, ok := experiments.Suggest(n); ok {
				msg += fmt.Sprintf(" (did you mean %q?)", hint)
			}
			writeError(w, http.StatusBadRequest, errors.New(msg))
			return
		}
		names = append(names, n)
	}

	runner := s.runner
	params := s.params
	if req.Seed != 0 || req.Rounds != 0 || req.Instances != 0 {
		if req.Seed != 0 {
			params.Seed = req.Seed
		}
		if req.Rounds != 0 {
			params.MCRounds = req.Rounds
		}
		if req.Instances != 0 {
			params.NetlistInstances = req.Instances
		}
		if err := params.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Override runners share the server's sweep cache, so even custom
		// jobs reuse (and contribute) swept tables.
		runner = experiments.NewWithCache(params, s.cache)
	}
	workers := params.Workers
	if req.Workers != 0 {
		workers = req.Workers
	}

	job, err := s.jobs.submit(runner, names, workers)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// StatsJSON is the /v1/stats payload.
type StatsJSON struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	SweepCache    struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
		Entries   int    `json:"entries"`
		Sweeps    uint64 `json:"sweeps"`
	} `json:"sweep_cache"`
	DedupedRequests uint64          `json:"deduped_requests"`
	Jobs            map[string]int  `json:"jobs"`
	Store           *StoreStatsJSON `json:"store,omitempty"`
}

// StoreStatsJSON reports sweep-store traffic.
type StoreStatsJSON struct {
	Dir     string `json:"dir"`
	Saves   uint64 `json:"saves"`
	Loads   uint64 `json:"loads"`
	Rejects uint64 `json:"rejects"`
	// LastPersistError is the most recent cache-persistence failure, empty
	// once a later persist succeeds.
	LastPersistError string `json:"last_persist_error,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var out StatsJSON
	out.UptimeSeconds = time.Since(s.start).Seconds()
	cs := s.cache.Stats()
	out.SweepCache.Hits = cs.Hits
	out.SweepCache.Misses = cs.Misses
	out.SweepCache.Evictions = cs.Evictions
	out.SweepCache.Entries = cs.Entries
	out.SweepCache.Sweeps = cs.Sweeps
	out.DedupedRequests = s.flight.sharedCount()
	out.Jobs = s.jobs.counts()
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		s.persistMu.Lock()
		lastErr := s.persistErr
		s.persistMu.Unlock()
		out.Store = &StoreStatsJSON{
			Dir: s.cfg.Store.Dir(), Saves: st.Saves, Loads: st.Loads, Rejects: st.Rejects,
			LastPersistError: lastErr,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// --- helpers ---------------------------------------------------------------

func (s *Server) parseWidth(v string) (float64, error) {
	if v == "" {
		return 0, errors.New("missing width parameter (nm)")
	}
	width, err := parseFloat("width", v)
	if err != nil {
		return 0, err
	}
	if !(width > 0) || width > s.params.MaxWidthNM {
		return 0, fmt.Errorf("width %g nm out of (0, %g]", width, s.params.MaxWidthNM)
	}
	return width, nil
}

func parseFloat(name, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("parameter %s=%q is not a finite number", name, v)
	}
	return f, nil
}

// decodeBody strictly decodes a bounded JSON body.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
