package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/cnfet/yieldlab/internal/query"
)

// rawQueryResponse decodes /v2/query responses keeping payloads raw, so
// byte-level equivalence with /v1 responses can be asserted.
type rawQueryResponse struct {
	Fingerprint string `json:"fingerprint"`
	Count       int    `json:"count"`
	Results     []struct {
		Spec        json.RawMessage `json:"spec"`
		Fingerprint string          `json:"fingerprint"`
		PF          json.RawMessage `json:"pf"`
		Wmin        json.RawMessage `json:"wmin"`
		RowYield    json.RawMessage `json:"rowyield"`
		Noise       json.RawMessage `json:"noise"`
	} `json:"results"`
}

func f64(v float64) *float64 { return &v }

// compact normalizes JSON bytes for comparison.
func compact(t *testing.T, data []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatalf("compacting %q: %v", data, err)
	}
	return buf.String()
}

// getBody fetches a URL and returns status, body and headers.
func getBody(t *testing.T, url string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func postV2(t *testing.T, ts string, spec any) (int, rawQueryResponse, []byte) {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts+"/v2/query", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out rawQueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decoding /v2/query response: %v\nbody: %s", err, body)
		}
	}
	return resp.StatusCode, out, body
}

// Satellite acceptance: /v1 answers must be byte-identical to their
// /v2/query translations — one validation/evaluation/encoding path.
func TestV1V2Equivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name    string
		v1      string
		spec    query.Spec
		payload func(r rawQueryResponse) json.RawMessage
	}{
		{
			"pf", "/v1/pf?width=155&corner=worst",
			query.Spec{Kind: "pf", WidthNM: 155, Corner: "worst"},
			func(r rawQueryResponse) json.RawMessage { return r.Results[0].PF },
		},
		{
			"pf explicit params", "/v1/pf?width=120&pm=0.25&prs=0.125",
			query.Spec{Kind: "pf", WidthNM: 120, PM: f64(0.25), PRS: f64(0.125)},
			func(r rawQueryResponse) json.RawMessage { return r.Results[0].PF },
		},
		{
			"wmin", "/v1/wmin?corner=worst&relax=1",
			query.Spec{Kind: "wmin", Corner: "worst", RelaxFactor: 1,
				M: testParams().M, DesiredYield: testParams().DesiredYield},
			func(r rawQueryResponse) json.RawMessage { return r.Results[0].Wmin },
		},
		{
			"rowyield aligned", "/v1/rowyield?scenario=aligned&width=155&krows=1000",
			query.Spec{Kind: "rowyield", Scenario: "aligned", WidthNM: 155, KRows: 1000,
				Rounds: DefaultRowRounds},
			func(r rawQueryResponse) json.RawMessage { return r.Results[0].RowYield },
		},
		{
			"rowyield unaligned", "/v1/rowyield?scenario=unaligned&width=155&rounds=100",
			query.Spec{Kind: "rowyield", Scenario: "unaligned", WidthNM: 155, Rounds: 100},
			func(r rawQueryResponse) json.RawMessage { return r.Results[0].RowYield },
		},
	}
	for _, tc := range cases {
		code, v1body, _ := getBody(t, ts.URL+tc.v1, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: /v1 status %d\n%s", tc.name, code, v1body)
		}
		code, v2, _ := postV2(t, ts.URL, tc.spec)
		if code != http.StatusOK {
			t.Fatalf("%s: /v2 status %d", tc.name, code)
		}
		if v2.Count != 1 || len(v2.Results) != 1 {
			t.Fatalf("%s: /v2 count = %d", tc.name, v2.Count)
		}
		got := compact(t, tc.payload(v2))
		want := compact(t, v1body)
		if got != want {
			t.Errorf("%s: payloads differ\n/v1: %s\n/v2: %s", tc.name, want, got)
		}
	}
}

// The ISSUE acceptance criterion: one QuerySpec sweeping ≥ 2 corners × ≥ 2
// tech nodes × ≥ 2 yield targets evaluates identically through
// Session.EvaluateAll and POST /v2/query, with repeat queries answered
// from cache (no new sweeps in /v1/stats) and 304 on If-None-Match.
func TestDesignSpaceSweepAcceptance(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	spec := query.Spec{
		Kind: "wmin",
		Sweep: &query.Sweep{
			Corners: []string{"worst", "mid"},
			Nodes:   []string{"45nm", "22nm"},
			Yields:  []float64{0.90, 0.99},
		},
	}

	// Through the server.
	code, v2, body := postV2(t, ts.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("/v2 status %d: %s", code, body)
	}
	if v2.Count != 8 || len(v2.Results) != 8 {
		t.Fatalf("count = %d, want 8 (2 corners × 2 nodes × 2 yields)", v2.Count)
	}

	// Through a separate Session over the same parameters: identical
	// results, element by element.
	session, err := query.NewSession(query.Options{Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := session.EvaluateAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 8 {
		t.Fatalf("session results = %d", len(direct))
	}
	for i := range direct {
		wantJSON, err := json.Marshal(direct[i].Wmin)
		if err != nil {
			t.Fatal(err)
		}
		if got := compact(t, v2.Results[i].Wmin); got != string(wantJSON) {
			t.Errorf("result %d differs\nsession: %s\nserver:  %s", i, wantJSON, got)
		}
		if direct[i].Fingerprint != v2.Results[i].Fingerprint {
			t.Errorf("result %d fingerprint %s != %s", i, direct[i].Fingerprint, v2.Results[i].Fingerprint)
		}
	}

	// Repeat the sweep: the server must answer from its caches without a
	// single new renewal sweep.
	var stats StatsJSON
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	sweepsBefore := stats.SweepCache.Sweeps
	if sweepsBefore == 0 {
		t.Fatal("cold sweep computed nothing")
	}
	code, again, _ := postV2(t, ts.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	for i := range v2.Results {
		if compact(t, again.Results[i].Wmin) != compact(t, v2.Results[i].Wmin) {
			t.Fatalf("repeat result %d changed", i)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.SweepCache.Sweeps != sweepsBefore {
		t.Fatalf("repeat query swept: %d → %d", sweepsBefore, stats.SweepCache.Sweeps)
	}

	// And a deterministic GET revalidates with 304 via If-None-Match.
	code, body, hdr := getBody(t, ts.URL+"/v1/wmin?corner=worst&yield=0.99&node=22nm", nil)
	if code != http.StatusOK {
		t.Fatalf("wmin status %d: %s", code, body)
	}
	etag := hdr.Get("ETag")
	if etag == "" || hdr.Get("Cache-Control") == "" {
		t.Fatalf("missing caching headers: %v", hdr)
	}
	code, body, hdr = getBody(t, ts.URL+"/v1/wmin?corner=worst&yield=0.99&node=22nm",
		map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304 (body %s)", code, body)
	}
	if len(bytes.TrimSpace(body)) != 0 {
		t.Fatalf("304 carried a body: %s", body)
	}
	if hdr.Get("ETag") != etag {
		t.Fatalf("304 ETag %q != %q", hdr.Get("ETag"), etag)
	}
	_ = srv
}

func TestV2QuerySweepLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchLimit: 4})
	spec := query.Spec{Kind: "pf", WidthNM: 155, Sweep: &query.Sweep{
		Corners:  []string{"worst", "mid", "best"},
		WidthsNM: []float64{100, 150},
	}}
	code, _, body := postV2(t, ts.URL, spec)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "exceeds limit 4") {
		t.Fatalf("status %d body %s", code, body)
	}
}

func TestV2QueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, payload := range map[string]string{
		"unknown kind":  `{"kind": "pff", "width_nm": 100}`,
		"unknown field": `{"kind": "pf", "width_nm": 100, "widthnm": 1}`,
		"missing width": `{"kind": "pf"}`,
		"bad axis":      `{"kind": "pf", "width_nm": 100, "sweep": {"corners": ["oops"]}}`,
	} {
		resp, err := http.Post(ts.URL+"/v2/query", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var envelope ErrorJSON
		err = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || err != nil {
			t.Errorf("%s: status %d, decode err %v", name, resp.StatusCode, err)
			continue
		}
		if envelope.Error.Code != "bad_request" || envelope.Error.Message == "" {
			t.Errorf("%s: envelope = %+v", name, envelope)
		}
	}
}

func TestV2QueryAsyncJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data, err := json.Marshal(query.Spec{Kind: "pf", WidthNM: 155,
		Sweep: &query.Sweep{WidthsNM: []float64{100, 150, 200}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v2/query?async=1", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var job JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if job.Kind != JobKindQuery || job.Query == nil || job.Total != 3 || job.Fingerprint == "" {
		t.Fatalf("job = %+v", job)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Fatalf("Location = %q", loc)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if job.State == JobDone || job.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != JobDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	if job.Done != 3 || len(job.QueryResults) != 3 {
		t.Fatalf("done = %d, results = %d", job.Done, len(job.QueryResults))
	}
	// Checkpointed results arrive in expansion order.
	for i, want := range []float64{100, 150, 200} {
		if got := job.QueryResults[i].PF.WidthNM; got != want {
			t.Fatalf("result %d width = %g, want %g", i, got, want)
		}
	}
	// And the async answer matches the sync one bit for bit.
	code, sync, _ := postV2(t, ts.URL, *job.Query)
	if code != http.StatusOK {
		t.Fatalf("sync status %d", code)
	}
	for i := range sync.Results {
		wantJSON, err := json.Marshal(job.QueryResults[i].PF)
		if err != nil {
			t.Fatal(err)
		}
		if got := compact(t, sync.Results[i].PF); got != string(wantJSON) {
			t.Fatalf("async/sync mismatch at %d:\n%s\n%s", i, wantJSON, got)
		}
	}
}

// Unknown paths and wrong methods must answer with the JSON error
// envelope, not the mux's plain-text defaults.
func TestErrorEnvelopeOnUnknownRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body, hdr := getBody(t, ts.URL+"/v1/nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var envelope ErrorJSON
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("decoding 404 body %q: %v", body, err)
	}
	if envelope.Error.Code != "not_found" || !strings.Contains(envelope.Error.Message, "/v1/nope") {
		t.Fatalf("envelope = %+v", envelope)
	}

	// Wrong method on an existing path: 405 with Allow preserved.
	resp, err := http.Post(ts.URL+"/v1/pf", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("Allow = %q", allow)
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("decoding 405 body %q: %v", body, err)
	}
	if envelope.Error.Code != "method_not_allowed" {
		t.Fatalf("envelope = %+v", envelope)
	}

	// Unknown /v2 path too.
	code, body, _ = getBody(t, ts.URL+"/v2/nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("status %d", code)
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != "not_found" {
		t.Fatalf("v2 envelope = %+v (%v)", envelope, err)
	}
}

func TestPFETagRevalidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, hdr := getBody(t, ts.URL+"/v1/pf?width=155", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}
	// Equivalent spellings share the canonical fingerprint, hence the ETag.
	_, _, hdr2 := getBody(t, ts.URL+"/v1/pf?width=155&corner=worst", nil)
	if hdr2.Get("ETag") != etag {
		t.Fatalf("equivalent requests got different ETags: %q vs %q", etag, hdr2.Get("ETag"))
	}
	code, notBody, _ := getBody(t, ts.URL+"/v1/pf?width=155", map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified || len(bytes.TrimSpace(notBody)) != 0 {
		t.Fatalf("revalidation: status %d body %q", code, notBody)
	}
	// A stale/foreign ETag re-serves the full body.
	code, full, _ := getBody(t, ts.URL+"/v1/pf?width=155", map[string]string{"If-None-Match": `"nope"`})
	if code != http.StatusOK || compact(t, full) != compact(t, body) {
		t.Fatalf("stale etag: status %d", code)
	}
	// Corners endpoint is cacheable too.
	code, _, hdr = getBody(t, ts.URL+"/v1/corners", nil)
	if code != http.StatusOK || hdr.Get("ETag") == "" {
		t.Fatalf("corners: status %d etag %q", code, hdr.Get("ETag"))
	}
}

// /v1/pf honors node= exactly like its /v2 translation (and its siblings).
func TestPFNodeParameter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, v1body, _ := getBody(t, ts.URL+"/v1/pf?width=155&node=22nm", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, v1body)
	}
	var out PFJSON
	if err := json.Unmarshal(v1body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Node != "22nm" || out.WidthNM == 155 {
		t.Fatalf("node scaling ignored: %+v", out)
	}
	code, v2, _ := postV2(t, ts.URL, query.Spec{Kind: "pf", WidthNM: 155, Node: "22nm"})
	if code != http.StatusOK {
		t.Fatalf("/v2 status %d", code)
	}
	if compact(t, v2.Results[0].PF) != compact(t, v1body) {
		t.Fatalf("node payloads differ:\n/v1: %s\n/v2: %s", v1body, v2.Results[0].PF)
	}
}

// An unqualified /v1 request and its zero-valued /v2 spec are the same
// computation, so they must share one fingerprint-derived ETag.
func TestV1V2ETagUnification(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	_, _, hdr := getBody(t, ts.URL+"/v1/wmin", nil)
	_, fp, err := (query.Spec{Kind: "wmin"}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := hdr.Get("ETag"), srv.etagFor(fp); got != want {
		t.Fatalf("/v1/wmin ETag %q != zero-spec /v2 identity %q", got, want)
	}
	_, _, hdr = getBody(t, ts.URL+"/v1/rowyield?scenario=aligned&width=155", nil)
	_, fp, err = (query.Spec{Kind: "rowyield", Scenario: "aligned", WidthNM: 155}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := hdr.Get("ETag"), srv.etagFor(fp); got != want {
		t.Fatalf("/v1/rowyield ETag %q != zero-spec /v2 identity %q", got, want)
	}
}

// Caller mistakes stay 400; internal evaluation failures are 500.
func TestEvalErrorClassification(t *testing.T) {
	rec := httptest.NewRecorder()
	writeEvalError(rec, errors.New("sweep exploded"))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("internal error → %d, want 500", rec.Code)
	}
	var envelope ErrorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error.Code != "internal" {
		t.Fatalf("envelope = %+v (%v)", envelope, err)
	}
	// A request-side failure surfaced through the session keeps its 400:
	// width beyond the grid inside a /v2 sweep.
	_, ts := newTestServer(t, Config{})
	code, _, body := postV2(t, ts.URL, query.Spec{Kind: "pf", WidthNM: 155,
		Sweep: &query.Sweep{WidthsNM: []float64{100, 1e6}}})
	if code != http.StatusBadRequest {
		t.Fatalf("out-of-grid sweep: status %d body %s", code, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/v1/pf?width=155", nil); code != http.StatusOK {
		t.Fatalf("warm query failed: %d", code)
	}
	getBody(t, ts.URL+"/v1/nope", nil) // one unmatched request

	code, body, hdr := getBody(t, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`yieldserver_http_requests_total{route="/v1/pf",code="200"} 1`,
		`yieldserver_http_requests_total{route="unmatched",code="404"} 1`,
		`yieldserver_http_request_duration_seconds_count{route="/v1/pf"} 1`,
		"yieldserver_sweep_cache_misses_total 1",
		"yieldserver_sweeps_total 1",
		`yieldserver_jobs{state="running"} 0`,
		"yieldserver_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}

	// A second scrape counts the first /metrics request as well.
	_, body, _ = getBody(t, ts.URL+"/metrics", nil)
	if !strings.Contains(string(body), `yieldserver_http_requests_total{route="/metrics",code="200"} 1`) {
		t.Errorf("metrics did not count itself:\n%s", body)
	}
}
