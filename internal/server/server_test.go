package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cnfet/yieldlab/internal/experiments"
	"github.com/cnfet/yieldlab/internal/sweepstore"
)

// testParams keeps sweeps and Monte Carlo cheap for the endpoint suite.
func testParams() experiments.Params {
	p := experiments.DefaultParams()
	p.GridStepNM = 0.1
	p.MaxWidthNM = 200
	p.MCRounds = 500
	p.CorrelationRounds = 20
	p.NetlistInstances = 500
	p.Workers = 2
	return p
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if (cfg.Params == experiments.Params{}) {
		cfg.Params = testParams()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, ts
}

// getJSON fetches a URL and decodes the response, returning the status.
func getJSON(t *testing.T, url string, dst any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil {
		if err := json.Unmarshal(body, dst); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, payload, dst any) int {
	t.Helper()
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil {
		if err := json.Unmarshal(body, dst); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("status = %q", out["status"])
	}
}

func TestCorners(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out struct {
		Corners []CornerJSON `json:"corners"`
	}
	if code := getJSON(t, ts.URL+"/v1/corners", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Corners) != 3 || out.Corners[0].Name != "worst" {
		t.Fatalf("corners = %+v", out.Corners)
	}
	if pf := out.Corners[0].PF; pf < 0.53 || pf > 0.54 {
		t.Fatalf("worst-corner pf = %g, want ≈ 0.531", pf)
	}
}

func TestPFAnchor(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out PFJSON
	if code := getJSON(t, ts.URL+"/v1/pf?width=155&corner=worst", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// The Fig. 2.1 anchor: pF(155 nm) = 3.0e-9 within the paper's 2× band.
	if out.PF < 1.5e-9 || out.PF > 6e-9 {
		t.Fatalf("pF(155) = %g, want ≈ 3e-9", out.PF)
	}
	if out.Corner != "worst" || out.WidthNM != 155 {
		t.Fatalf("echo = %+v", out)
	}
}

func TestPFValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{
		"",                                      // missing width
		"width=-5",                              // negative
		"width=nan",                             // not a number
		"width=1e9",                             // beyond grid
		"width=100&corner=oops",                 // unknown corner
		"width=100&corner=worst&pm=0.3&prs=0.1", // both corner and pm/prs
		"width=100&pm=2&prs=0",                  // pm out of [0,1]
	} {
		var out ErrorJSON
		if code := getJSON(t, ts.URL+"/v1/pf?"+q, &out); code != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, code)
		} else if out.Error.Message == "" || out.Error.Code != "bad_request" {
			t.Errorf("query %q: bad error envelope %+v", q, out)
		}
	}
}

func TestPFExplicitParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var custom, worst PFJSON
	if code := getJSON(t, ts.URL+"/v1/pf?width=155&pm=0.33&prs=0.30", &custom); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/pf?width=155&corner=worst", &worst); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if custom.PF != worst.PF {
		t.Fatalf("explicit pm/prs of the worst corner gave pF %g, corner name gave %g", custom.PF, worst.PF)
	}
}

func TestPFBatch(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := map[string]any{"points": []map[string]any{
		{"width_nm": 155.0, "corner": "worst"},
		{"width_nm": 103.0, "corner": "worst"},
		{"width_nm": 155.0, "corner": "best"},
		{"width_nm": 155.0}, // default corner = worst
	}}
	var out struct {
		Results []PFJSON `json:"results"`
	}
	if code := postJSON(t, ts.URL+"/v1/pf/batch", req, &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Results) != 4 {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.Results[0].PF == 0 || out.Results[0].PF != out.Results[3].PF {
		t.Fatalf("order not preserved: %+v", out.Results)
	}
	if !(out.Results[1].PF > out.Results[0].PF) {
		t.Fatalf("pF(103) %g should exceed pF(155) %g", out.Results[1].PF, out.Results[0].PF)
	}
	if !(out.Results[2].PF < out.Results[0].PF) {
		t.Fatalf("best corner %g should beat worst %g", out.Results[2].PF, out.Results[0].PF)
	}
	// All three corners share one pitch law: exactly one model sweep ran.
	if st := srv.cache.Stats(); st.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1 (corners share the count model)", st.Entries)
	}

	// Validation: empty, over limit, unknown field, bad point.
	if code := postJSON(t, ts.URL+"/v1/pf/batch", map[string]any{"points": []any{}}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/pf/batch", map[string]any{"nope": 1}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}
	bad := map[string]any{"points": []map[string]any{{"width_nm": -3.0}}}
	if code := postJSON(t, ts.URL+"/v1/pf/batch", bad, nil); code != http.StatusBadRequest {
		t.Errorf("bad width: status %d", code)
	}
}

func TestBatchLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchLimit: 2})
	req := map[string]any{"points": []map[string]any{
		{"width_nm": 10.0}, {"width_nm": 11.0}, {"width_nm": 12.0},
	}}
	var out ErrorJSON
	if code := postJSON(t, ts.URL+"/v1/pf/batch", req, &out); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if !strings.Contains(out.Error.Message, "limit") {
		t.Fatalf("error = %q", out.Error.Message)
	}
}

func TestWmin(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var base, relaxed WminJSON
	if code := getJSON(t, ts.URL+"/v1/wmin?corner=worst&relax=1", &base); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// Paper: Wmin ≈ 155 nm uncorrelated.
	if base.WminNM < 140 || base.WminNM > 170 {
		t.Fatalf("Wmin = %g, want ≈ 155", base.WminNM)
	}
	if code := getJSON(t, ts.URL+"/v1/wmin?corner=worst&relax=360", &relaxed); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !(relaxed.WminNM < base.WminNM) {
		t.Fatalf("relaxed Wmin %g should beat base %g", relaxed.WminNM, base.WminNM)
	}
	if code := getJSON(t, ts.URL+"/v1/wmin?yield=1.5", nil); code != http.StatusBadRequest {
		t.Fatalf("bad yield: status %d", code)
	}
}

func TestRowYield(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var unc, al RowYieldJSON
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=uncorrelated&width=155&krows=1000", &unc); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=aligned&width=155", &al); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// Aligned: pRF = pF exactly; uncorrelated ≈ MRmin×pF ≫ pF.
	if al.PRF != al.DevicePF {
		t.Fatalf("aligned pRF %g != pF %g", al.PRF, al.DevicePF)
	}
	if !(unc.PRF > 100*al.PRF) {
		t.Fatalf("uncorrelated pRF %g should dwarf aligned %g", unc.PRF, al.PRF)
	}
	if unc.MRmin < 350 || unc.MRmin > 370 {
		t.Fatalf("MRmin = %g, want ≈ 360", unc.MRmin)
	}
	if unc.ChipYield <= 0 || unc.ChipYield >= 1 {
		t.Fatalf("chip yield = %g", unc.ChipYield)
	}
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=sideways&width=155", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown scenario: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=unaligned&width=155&rounds=999999999", nil); code != http.StatusBadRequest {
		t.Fatalf("rounds over cap: status %d", code)
	}
}

func TestRowYieldUnaligned(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the placed design")
	}
	_, ts := newTestServer(t, Config{})
	var out RowYieldJSON
	code := getJSON(t, ts.URL+"/v1/rowyield?scenario=unaligned&width=120&rounds=50", &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Rounds != 50 || out.StdErr == 0 {
		t.Fatalf("estimate = %+v, want Monte Carlo metadata", out)
	}
	// Partial track sharing sits between independent and fully shared.
	if !(out.PRF >= out.DevicePF) {
		t.Fatalf("unaligned pRF %g below aligned bound %g", out.PRF, out.DevicePF)
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var job JobJSON
	req := ExperimentRequestJSON{Experiments: []string{"ext-pitch", "fig2.2a"}}
	if code := postJSON(t, ts.URL+"/v1/experiments", req, &job); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if job.ID == "" || (job.State != JobQueued && job.State != JobRunning) {
		t.Fatalf("job = %+v", job)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if job.State == JobDone || job.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != JobDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	if len(job.Results) != 2 || job.Results[0].Name != "ext-pitch" || job.Results[1].Name != "fig2.2a" {
		t.Fatalf("results = %d entries", len(job.Results))
	}
	if job.Results[0].Table == nil || len(job.Results[0].Table.Rows) == 0 {
		t.Fatal("missing table in job result")
	}
	if job.StartedAt == nil || job.FinishedAt == nil {
		t.Fatal("missing timestamps")
	}

	// Unknown job id.
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
}

func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out ErrorJSON
	req := ExperimentRequestJSON{Experiments: []string{"tabel1"}}
	if code := postJSON(t, ts.URL+"/v1/experiments", req, &out); code != http.StatusBadRequest {
		t.Fatalf("typo: status %d", code)
	}
	if !strings.Contains(out.Error.Message, `did you mean "table1"`) {
		t.Fatalf("error = %q, want did-you-mean hint", out.Error.Message)
	}
	if code := postJSON(t, ts.URL+"/v1/experiments", ExperimentRequestJSON{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty: status %d", code)
	}
	bad := ExperimentRequestJSON{Experiments: []string{"fig2.2a"}, Rounds: 1}
	if code := postJSON(t, ts.URL+"/v1/experiments", bad, &out); code != http.StatusBadRequest {
		t.Fatalf("bad override: status %d", code)
	}
}

// Open (queued/running) jobs are bounded: beyond MaxJobs the submit is
// refused with 503 instead of growing the queue without limit.
func TestJobAdmissionBound(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 1})
	var first JobJSON
	if code := postJSON(t, ts.URL+"/v1/experiments",
		ExperimentRequestJSON{Experiments: []string{"table1"}}, &first); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	var out ErrorJSON
	code := postJSON(t, ts.URL+"/v1/experiments",
		ExperimentRequestJSON{Experiments: []string{"fig2.2a"}}, &out)
	var poll JobJSON
	getJSON(t, ts.URL+"/v1/jobs/"+first.ID, &poll)
	if poll.State == JobDone || poll.State == JobFailed {
		t.Skipf("first job finished before the second submit; bound not observable")
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("second submit: status %d, want 503", code)
	}
	if !strings.Contains(out.Error.Message, "full") {
		t.Fatalf("error = %q", out.Error.Message)
	}
}

// krows only scales the shared closed form: two queries differing in krows
// alone must report their own krows/chip_yield.
func TestRowYieldKRowsPerCaller(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var a, b RowYieldJSON
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=aligned&width=155&krows=1000", &a); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=aligned&width=155&krows=2000", &b); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if a.KRows != 1000 || b.KRows != 2000 {
		t.Fatalf("krows echo: %g, %g", a.KRows, b.KRows)
	}
	if a.PRF != b.PRF {
		t.Fatalf("pRF should be shared: %g vs %g", a.PRF, b.PRF)
	}
	if !(b.ChipYield < a.ChipYield) {
		t.Fatalf("more rows must mean lower yield: %g vs %g", b.ChipYield, a.ChipYield)
	}
}

func TestStats(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/v1/pf?width=155", nil); code != http.StatusOK {
		t.Fatalf("warm query failed: %d", code)
	}
	var out StatsJSON
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.SweepCache.Entries != 1 || out.SweepCache.Sweeps == 0 {
		t.Fatalf("sweep cache stats = %+v", out.SweepCache)
	}
	if out.Jobs[JobQueued] != 0 || out.Jobs[JobRunning] != 0 {
		t.Fatalf("jobs = %+v", out.Jobs)
	}
	_ = srv
}

// The acceptance criterion: a cold server start over a warm sweep store
// answers a pF query without re-running any renewal sweep.
func TestWarmStartAnswersWithoutSweeping(t *testing.T) {
	dir := t.TempDir()
	store, err := sweepstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First server: cold, computes the sweep, persists on query.
	srv1, ts1 := newTestServer(t, Config{Store: store})
	var first PFJSON
	if code := getJSON(t, ts1.URL+"/v1/pf?width=155&corner=worst", &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st := srv1.cache.Stats(); st.Sweeps == 0 {
		t.Fatal("cold server should have swept")
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second server: fresh process state, same store.
	store2, err := sweepstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServer(t, Config{Store: store2})
	var again PFJSON
	if code := getJSON(t, ts2.URL+"/v1/pf?width=155&corner=worst", &again); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if again.PF != first.PF {
		t.Fatalf("warm pF %g != cold pF %g", again.PF, first.PF)
	}
	var stats StatsJSON
	if code := getJSON(t, ts2.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if stats.SweepCache.Sweeps != 0 {
		t.Fatalf("warm server ran %d sweeps, want 0", stats.SweepCache.Sweeps)
	}
	if srv2.cache.Stats().Sweeps != 0 {
		t.Fatal("cache-level sweep count should also be 0")
	}
	if stats.Store == nil || stats.Store.Loads == 0 {
		t.Fatalf("store stats = %+v, want loads > 0", stats.Store)
	}
}

// Hammer identical and overlapping requests from many goroutines: the
// sweep must run exactly once per distinct model (singleflight on top of
// the shared cache), and everything stays race-clean.
func TestConcurrentRequestDedup(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	const goroutines = 24
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			corner := cornerNames[g%3]
			var out PFJSON
			resp, err := http.Get(fmt.Sprintf("%s/v1/pf?width=155&corner=%s", ts.URL, corner))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || out.PF <= 0 {
				errs <- fmt.Errorf("corner %s: status %d pf %g", corner, resp.StatusCode, out.PF)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All corners share one pitch law and grid: one model, one sweep, no
	// matter how many concurrent cold requests raced.
	st := srv.cache.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if st.Sweeps != 1 {
		t.Fatalf("sweeps = %d, want 1 (deduplicated)", st.Sweeps)
	}
}

func TestRowYieldRareEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the placed design")
	}
	_, ts := newTestServer(t, Config{})
	var out RowYieldJSON
	code := getJSON(t, ts.URL+"/v1/rowyield?scenario=unaligned&width=120&mc_method=tilted&rel_err=0.2", &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.MCMethod != "tilted" || out.TiltTheta == 0 {
		t.Fatalf("estimator echo missing: %+v", out)
	}
	if !(out.RelErr > 0) || out.RelErr > 0.2 {
		t.Fatalf("achieved rel err %g missed the 0.2 target: %+v", out.RelErr, out)
	}
	if out.Rounds <= 0 || !(out.PRF > 0) {
		t.Fatalf("estimate = %+v", out)
	}
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=unaligned&width=120&mc_method=sideways", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown method: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=unaligned&width=120&rel_err=2", nil); code != http.StatusBadRequest {
		t.Fatalf("rel err out of range: status %d", code)
	}
	// Estimator knobs on a scenario that never runs Monte Carlo are inert
	// for the result but must not fail the request (canonicalization
	// drops them; the cached aligned entry is shared).
	var aligned RowYieldJSON
	if code := getJSON(t, ts.URL+"/v1/rowyield?scenario=aligned&width=155&mc_method=tilted", &aligned); code != http.StatusOK {
		t.Fatalf("aligned with estimator knobs: status %d", code)
	}
	if aligned.MCMethod != "" || aligned.Rounds != 0 {
		t.Fatalf("aligned result leaked estimator metadata: %+v", aligned)
	}
}
