package server

import (
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent identical computations
// singleflight-style: the first caller for a key runs the function, later
// callers arriving before it finishes wait and share the result. Results
// are not cached — once the flight lands, the next caller recomputes (the
// durable caching lives in renewal.SweepCache and the sweep store; this
// layer only absorbs request stampedes).
type flightGroup struct {
	mu     sync.Mutex
	calls  map[string]*flightCall
	shared atomic.Uint64 // calls served by someone else's flight
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do runs fn under the key, or waits for an identical in-flight call.
func (g *flightGroup) do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.shared.Add(1)
		<-c.done
		return c.val, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// sharedCount returns how many calls were deduplicated onto another flight.
func (g *flightGroup) sharedCount() uint64 { return g.shared.Load() }
