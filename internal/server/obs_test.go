package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/query"
)

// Regression for the statusWriter Flusher mask: embedding http.ResponseWriter
// hides the underlying Flush, which silently broke streaming handlers behind
// the metrics middleware. The wrapper must stay flushable both via a direct
// type assertion and via http.ResponseController.
func TestStatusWriterKeepsFlusher(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	f, ok := any(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}

	rec = httptest.NewRecorder()
	sw = &statusWriter{ResponseWriter: rec}
	if err := http.NewResponseController(sw).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush: %v", err)
	}
	if !rec.Flushed {
		t.Fatal("ResponseController flush did not reach the underlying writer")
	}
}

// The whole middleware chain must keep handlers flushable end to end.
func TestHandlerChainFlushable(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	flushed := make(chan bool, 1)
	probe := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := w.(http.Flusher)
		flushed <- ok
	})
	rec := httptest.NewRecorder()
	srv.withObs(probe).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !<-flushed {
		t.Fatal("handler behind withObs lost http.Flusher")
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, _, hdr1 := getBody(t, ts.URL+"/healthz", nil)
	_, _, hdr2 := getBody(t, ts.URL+"/healthz", nil)
	id1, id2 := hdr1.Get("X-Request-ID"), hdr2.Get("X-Request-ID")
	if id1 == "" || id2 == "" {
		t.Fatalf("missing X-Request-ID: %q %q", id1, id2)
	}
	if id1 == id2 {
		t.Fatalf("request ids collide: %q", id1)
	}
}

func TestHealthzReportsBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("status = %q", out["status"])
	}
	if out["go_version"] == "" {
		t.Fatalf("healthz missing go_version: %v", out)
	}
	if out["version"] == "" {
		t.Fatalf("healthz missing version: %v", out)
	}
}

func TestSlowlogEndpoint(t *testing.T) {
	// Negative threshold = record every request, so the test is deterministic.
	_, ts := newTestServer(t, Config{SlowLogThreshold: -1, SlowLogEntries: 8})
	if code := getJSON(t, ts.URL+"/v1/pf?width=155", nil); code != http.StatusOK {
		t.Fatalf("pf status %d", code)
	}
	var out SlowLogJSON
	if code := getJSON(t, ts.URL+"/debug/slowlog", &out); code != http.StatusOK {
		t.Fatalf("slowlog status %d", code)
	}
	if out.Capacity != 8 || out.ThresholdMS != 0 {
		t.Fatalf("slowlog config echo: %+v", out)
	}
	if out.Observed < 1 || out.Recorded < 1 || len(out.Entries) < 1 {
		t.Fatalf("slowlog did not record: %+v", out)
	}
	var pf *obs.SlowEntry
	for i := range out.Entries {
		if out.Entries[i].Route == "/v1/pf" {
			pf = &out.Entries[i]
			break
		}
	}
	if pf == nil {
		t.Fatalf("no /v1/pf entry in %+v", out.Entries)
	}
	if pf.RequestID == "" || pf.Status != http.StatusOK || pf.DurationMS < 0 {
		t.Fatalf("pf entry = %+v", pf)
	}
	names := make(map[string]bool)
	for _, st := range pf.Stages {
		names[st.Name] = true
	}
	if !names["query.evaluate"] || !(names["sweep.cold"] || names["sweep.cache_hit"]) {
		t.Fatalf("pf entry stages = %+v", pf.Stages)
	}
	// The ring forgets the oldest entries rather than growing.
	for i := 0; i < 20; i++ {
		getJSON(t, ts.URL+"/healthz", nil)
	}
	getJSON(t, ts.URL+"/debug/slowlog", &out)
	if len(out.Entries) > 8 {
		t.Fatalf("ring exceeded capacity: %d entries", len(out.Entries))
	}
}

// ?debug=cost is the opt-in: without it /v2/query bodies carry no timings
// (so ETags stay stable); with it a cold rowyield evaluation reports its
// stage breakdown, and a repeat reports the sweep as a cache hit.
func TestV2QueryDebugCost(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := query.Spec{Kind: "rowyield", Scenario: "unaligned", WidthNM: 155, Rounds: 2000}

	postCost := func() (query.Result, []byte) {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v2/query?debug=cost", "application/json",
			strings.NewReader(string(data)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Results []query.Result `json:"results"`
		}
		raw := json.NewDecoder(resp.Body)
		if err := raw.Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || len(out.Results) != 1 {
			t.Fatalf("status %d results %d", resp.StatusCode, len(out.Results))
		}
		return out.Results[0], data
	}

	cold, _ := postCost()
	if cold.Cost == nil {
		t.Fatal("debug=cost returned no breakdown")
	}
	if cold.Cost.SweepCacheHit {
		t.Fatalf("cold request reported cache hit: %+v", cold.Cost)
	}
	if cold.Cost.MCRounds == 0 || cold.Cost.MCMS <= 0 {
		t.Fatalf("MC stage missing: %+v", cold.Cost)
	}

	code, _, body := postV2(t, ts.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("plain status %d", code)
	}
	if strings.Contains(string(body), `"cost"`) {
		t.Fatalf("undebugged body leaks cost: %s", body)
	}

	warm, _ := postCost()
	if warm.Cost == nil || !warm.Cost.SweepCacheHit {
		t.Fatalf("repeat request not a sweep cache hit: %+v", warm.Cost)
	}
	// Tracing and cache state never change the numbers.
	if warm.RowYield.PRF != cold.RowYield.PRF {
		t.Fatalf("repeat changed pRF: %g != %g", warm.RowYield.PRF, cold.RowYield.PRF)
	}
}
