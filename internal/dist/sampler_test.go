package dist

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/stat"
)

// samplerTestLaws covers the truncation shapes the table must handle: the
// calibrated-pitch style [0, ∞) law, a deep lower truncation, a two-sided
// window and an unbounded-below law.
func samplerTestLaws(t *testing.T) []TruncNormal {
	t.Helper()
	pitchLike, err := TruncNormalWithMean(4, 1.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := NewTruncNormal(-3, 1, 0, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	window, err := NewTruncNormal(10, 3, 8, 14)
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := NewTruncNormal(2, 0.7, math.Inf(-1), 3)
	if err != nil {
		t.Fatal(err)
	}
	return []TruncNormal{pitchLike, deep, window, unbounded}
}

// The tabulated quantile must stay within one grid cell of the exact
// quantile: for any u under the tabulated mass, both lie in the same cell
// of the construction grid, so |table - exact| ≤ Span/cells by
// construction. This is the documented sup-norm bound.
func TestTruncNormalTableSupNormBound(t *testing.T) {
	for _, law := range samplerTestLaws(t) {
		tab, err := NewTruncNormalTable(law, 0)
		if err != nil {
			t.Fatal(err)
		}
		bound := tab.Span()/float64(tab.Cells()) + 1e-12
		sup := 0.0
		for i := 1; i < 20_000; i++ {
			u := float64(i) / 20_000
			d := math.Abs(tab.Quantile(u) - law.Quantile(u))
			if d > sup {
				sup = d
			}
		}
		if sup > bound {
			t.Errorf("law %+v: sup-norm %g exceeds cell bound %g", law, sup, bound)
		}
	}
}

func TestTruncNormalTableQuantileMonotoneAndEdges(t *testing.T) {
	law := samplerTestLaws(t)[0]
	tab, err := NewTruncNormalTable(law, 512)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for i := 0; i <= 5000; i++ {
		u := float64(i) / 5000
		x := tab.Quantile(u)
		if x < prev {
			t.Fatalf("quantile not monotone at u=%g: %g < %g", u, x, prev)
		}
		prev = x
	}
	if got := tab.Quantile(0); got != law.Lower {
		t.Errorf("Quantile(0) = %g, want lower bound %g", got, law.Lower)
	}
	if !math.IsNaN(tab.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}
	// Beyond the tabulated mass the exact tail takes over, so values above
	// the table cap remain reachable.
	if got := tab.Quantile(1 - 1e-15); !(got >= tab.Span()) && got < law.Quantile(1-1e-15)-1e-9 {
		t.Errorf("tail fallback broken: %g", got)
	}
}

// Sampling through the table must reproduce the law's moments.
func TestTruncNormalTableSampleMoments(t *testing.T) {
	for _, law := range samplerTestLaws(t) {
		tab, err := NewTruncNormalTable(law, 0)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(11)
		var w stat.Welford
		for i := 0; i < 200_000; i++ {
			w.Add(tab.Sample(r))
		}
		if d := math.Abs(w.Mean() - law.Mean()); d > 5*law.StdDev()/math.Sqrt(200_000)+1e-3 {
			t.Errorf("law %+v: sampled mean %g vs %g", law, w.Mean(), law.Mean())
		}
		if d := math.Abs(w.StdDev() - law.StdDev()); d > 0.02*law.StdDev()+1e-3 {
			t.Errorf("law %+v: sampled sd %g vs %g", law, w.StdDev(), law.StdDev())
		}
	}
}

// The table grid must adapt to the law's scale: a tight-sigma law (cell
// width of a support-spanning grid would dwarf sigma) has to keep accurate
// moments through the table. Regression for the grid spanning the raw
// support instead of the quantile-bounded mass region.
func TestTruncNormalTableTightSigma(t *testing.T) {
	law, err := TruncNormalWithMean(4, 4e-4, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTruncNormalTable(law, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cell := tab.Span() / float64(tab.Cells()); cell > law.StdDev()/50 {
		t.Fatalf("cell width %g not adapted to sigma %g", cell, law.StdDev())
	}
	r := rng.New(19)
	var w stat.Welford
	for i := 0; i < 200_000; i++ {
		w.Add(tab.Sample(r))
	}
	if rel := math.Abs(w.StdDev()-law.StdDev()) / law.StdDev(); rel > 0.02 {
		t.Fatalf("tight-sigma sampled sd %g vs exact %g (%.1f%% off)", w.StdDev(), law.StdDev(), rel*100)
	}
	if rel := math.Abs(w.Mean()-law.Mean()) / law.StdDev(); rel > 0.02 {
		t.Fatalf("tight-sigma sampled mean %g vs exact %g", w.Mean(), law.Mean())
	}
}

func TestTruncNormalTableForShares(t *testing.T) {
	law, err := TruncNormalWithMean(7, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := TruncNormalTableFor(law)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TruncNormalTableFor(law)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same law should share one table")
	}
	other, err := TruncNormalWithMean(7, 2.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := TruncNormalTableFor(other)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct laws must not share a table")
	}
}

func TestNewTruncNormalTableRejectsZeroValue(t *testing.T) {
	if _, err := NewTruncNormalTable(TruncNormal{}, 0); err == nil {
		t.Error("zero-value TruncNormal should be rejected")
	}
}

// FastSamplerFor must dispatch to stream-compatible samplers: the closures
// consume the generator exactly like the interface Sample they replace.
func TestFastSamplerForDispatch(t *testing.T) {
	t.Run("exponential", func(t *testing.T) {
		law := Exponential{Rate: 0.25}
		s, err := FastSamplerFor(law)
		if err != nil {
			t.Fatal(err)
		}
		a, b := rng.New(5), rng.New(5)
		for i := 0; i < 1000; i++ {
			if got, want := s(a), law.Sample(b); got != want {
				t.Fatalf("draw %d: %g != %g", i, got, want)
			}
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		s, err := FastSamplerFor(Deterministic{V: 4})
		if err != nil {
			t.Fatal(err)
		}
		if s(rng.New(1)) != 4 {
			t.Fatal("deterministic sampler")
		}
	})
	t.Run("truncnormal", func(t *testing.T) {
		law := samplerTestLaws(t)[0]
		s, err := FastSamplerFor(law)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := TruncNormalTableFor(law)
		if err != nil {
			t.Fatal(err)
		}
		a, b := rng.New(9), rng.New(9)
		for i := 0; i < 1000; i++ {
			if got, want := s(a), tab.Sample(b); got != want {
				t.Fatalf("draw %d: %g != %g", i, got, want)
			}
		}
		// And the table stays within its sup-norm bound of the exact draw.
		bound := tab.Span()/float64(tab.Cells()) + 1e-12
		c, d := rng.New(13), rng.New(13)
		for i := 0; i < 1000; i++ {
			if diff := math.Abs(s(c) - law.Sample(d)); diff > bound {
				t.Fatalf("draw %d: table deviates %g > %g", i, diff, bound)
			}
		}
	})
	t.Run("pointer-truncnormal", func(t *testing.T) {
		law := samplerTestLaws(t)[0]
		s, err := FastSamplerFor(&law)
		if err != nil {
			t.Fatal(err)
		}
		if s == nil {
			t.Fatal("nil sampler")
		}
	})
	t.Run("fallback", func(t *testing.T) {
		law := fallbackLaw{}
		s, err := FastSamplerFor(law)
		if err != nil {
			t.Fatal(err)
		}
		if s(rng.New(1)) != 42 {
			t.Fatal("fallback must use the law's own Sample")
		}
	})
	t.Run("nil", func(t *testing.T) {
		if _, err := FastSamplerFor(nil); err == nil {
			t.Error("nil law should error")
		}
	})
}

type fallbackLaw struct{}

func (fallbackLaw) Mean() float64               { return 42 }
func (fallbackLaw) StdDev() float64             { return 1 }
func (fallbackLaw) CDF(x float64) float64       { return 0 }
func (fallbackLaw) Quantile(p float64) float64  { return 42 }
func (fallbackLaw) Sample(r *rand.Rand) float64 { return 42 }

// BenchmarkTruncNormalSample compares the exact inverse-CDF draw against the
// tabulated sampler on the calibrated-pitch-class law. Registered in
// BENCH_BASELINE.json; the benchgate ratio pins table ≥ 4× exact
// machine-independently.
func BenchmarkTruncNormalSample(b *testing.B) {
	law, err := TruncNormalWithMean(4, 1.2, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		r := rng.New(2)
		var x float64
		for i := 0; i < b.N; i++ {
			x = law.Sample(r)
		}
		_ = x
	})
	b.Run("table", func(b *testing.B) {
		tab, err := NewTruncNormalTable(law, 0)
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(2)
		var x float64
		for i := 0; i < b.N; i++ {
			x = tab.Sample(r)
		}
		_ = x
	})
}
