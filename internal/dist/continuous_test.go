package dist

import (
	"math"
	"testing"

	"github.com/cnfet/yieldlab/internal/numeric"
	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/stat"
)

func TestExponentialBasics(t *testing.T) {
	e := Exponential{Rate: 0.25}
	if e.Mean() != 4 || e.StdDev() != 4 {
		t.Fatal("moments")
	}
	if e.CDF(-1) != 0 || !almost(e.CDF(4), 1-math.Exp(-1), 1e-15) {
		t.Fatal("CDF")
	}
	if !almost(e.Quantile(e.CDF(7)), 7, 1e-12) {
		t.Fatal("quantile roundtrip")
	}
	// Closed-form integrated survival vs Simpson quadrature.
	for _, x := range []float64{0.5, 3, 20} {
		want := numeric.Simpson(func(u float64) float64 { return 1 - e.CDF(u) }, 0, x, 2000)
		if got := e.IntegratedSurvival(x); !almost(got, want, 1e-9) {
			t.Errorf("I(%v) = %v want %v", x, got, want)
		}
	}
	r := rng.New(3)
	var w stat.Welford
	for i := 0; i < 100_000; i++ {
		w.Add(e.Sample(r))
	}
	if !almost(w.Mean(), 4, 0.06) {
		t.Errorf("sample mean %v", w.Mean())
	}
}

func TestDeterministicBasics(t *testing.T) {
	d := Deterministic{V: 4}
	if d.Mean() != 4 || d.StdDev() != 0 {
		t.Fatal("moments")
	}
	if d.CDF(3.999) != 0 || d.CDF(4) != 1 {
		t.Fatal("CDF step")
	}
	if d.Quantile(0.3) != 4 || d.Sample(rng.New(1)) != 4 {
		t.Fatal("quantile/sample")
	}
	// Uniform equilibrium first arrival: I(x) = min(x, V).
	if d.IntegratedSurvival(-1) != 0 || d.IntegratedSurvival(2) != 2 || d.IntegratedSurvival(9) != 4 {
		t.Fatal("integrated survival")
	}
}

func TestNewTruncNormalValidation(t *testing.T) {
	if _, err := NewTruncNormal(0, -1, 0, 1); err == nil {
		t.Error("negative sigma")
	}
	if _, err := NewTruncNormal(0, 1, 2, 2); err == nil {
		t.Error("empty interval")
	}
	if _, err := NewTruncNormal(0, 1, 50, 60); err == nil {
		t.Error("interval with no parent mass")
	}
	if _, err := TruncNormalWithMean(4, 0, 0); err == nil {
		t.Error("zero sd")
	}
	if _, err := TruncNormalWithMean(1, 3, 2); err == nil {
		t.Error("mean below lower bound")
	}
}

// Post-truncation moments must match direct quadrature over the truncated
// density, across mild and severe truncation.
func TestTruncNormalMomentsMatchQuadrature(t *testing.T) {
	cases := []struct {
		mu, sigma, lower, upper float64
	}{
		{1.5, 0.3, 0.6, math.Inf(1)}, // diameter law: mild truncation
		{-13, 9.2, 0, math.Inf(1)},   // pitch-like: severe truncation
		{2, 1, 0, 4},                 // two-sided
	}
	for _, tc := range cases {
		tn, err := NewTruncNormal(tc.mu, tc.sigma, tc.lower, tc.upper)
		if err != nil {
			t.Fatal(err)
		}
		hi := tc.upper
		if math.IsInf(hi, 1) {
			hi = tc.mu + 14*tc.sigma
		}
		z := numeric.NormalCDF((hi-tc.mu)/tc.sigma) - numeric.NormalCDF((tc.lower-tc.mu)/tc.sigma)
		density := func(x float64) float64 {
			return numeric.NormalPDF((x-tc.mu)/tc.sigma) / (tc.sigma * z)
		}
		const cells = 4000
		mass, mean, m2 := 0.0, 0.0, 0.0
		mass = numeric.Simpson(density, tc.lower, hi, cells)
		mean = numeric.Simpson(func(x float64) float64 { return x * density(x) }, tc.lower, hi, cells)
		m2 = numeric.Simpson(func(x float64) float64 { return x * x * density(x) }, tc.lower, hi, cells)
		if !almost(mass, 1, 1e-9) {
			t.Fatalf("quadrature mass %v", mass)
		}
		sd := math.Sqrt(m2 - mean*mean)
		if !almost(tn.Mean(), mean, 1e-6*(math.Abs(mean)+1)) {
			t.Errorf("%+v: mean %v vs quadrature %v", tc, tn.Mean(), mean)
		}
		if !almost(tn.StdDev(), sd, 1e-6*(sd+1)) {
			t.Errorf("%+v: sd %v vs quadrature %v", tc, tn.StdDev(), sd)
		}
	}
}

func TestTruncNormalCDFQuantileRoundtrip(t *testing.T) {
	tn, err := NewTruncNormal(-13, 9.2, 0, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if tn.CDF(-0.1) != 0 || tn.CDF(0) != 0 {
		t.Error("CDF below support")
	}
	for _, p := range []float64{1e-9, 0.01, 0.3, 0.7, 0.99, 1 - 1e-9} {
		x := tn.Quantile(p)
		if got := tn.CDF(x); !almost(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if tn.Quantile(0) != 0 || !math.IsInf(tn.Quantile(1), 1) {
		t.Error("quantile edges")
	}
	two, _ := NewTruncNormal(2, 1, 0, 4)
	if two.Quantile(1) != 4 || two.CDF(5) != 1 {
		t.Error("two-sided edges")
	}
}

// The calibrated parameterization: post-truncation mean hits the target and
// the frozen pitch law reproduces the documented σS/μS ≈ 0.88 ratio.
func TestTruncNormalWithMeanHitsTarget(t *testing.T) {
	for _, tc := range []struct{ mean, sd, lower float64 }{
		{4, 9.2, 0}, {4, 3, 1}, {4, 2.5, 1}, {1.5, 5, 1}, {10, 0.5, 0},
	} {
		tn, err := TruncNormalWithMean(tc.mean, tc.sd, tc.lower)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(tn.Mean(), tc.mean, 1e-8*tc.mean) {
			t.Errorf("%+v: mean %v", tc, tn.Mean())
		}
		if tn.Sigma != tc.sd || tn.Lower != tc.lower {
			t.Errorf("%+v: parent params drifted: %+v", tc, tn)
		}
	}
	pitch, err := TruncNormalWithMean(4, 2.3*4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := pitch.StdDev() / pitch.Mean(); ratio < 0.83 || ratio > 0.93 {
		t.Errorf("calibrated pitch σS/μS = %v, documented ≈ 0.88", ratio)
	}
}

func TestTruncNormalIntegratedSurvivalMatchesQuadrature(t *testing.T) {
	for _, tn := range []struct{ mean, sd, lower float64 }{
		{4, 9.2, 0}, {4, 3, 1},
	} {
		d, err := TruncNormalWithMean(tn.mean, tn.sd, tn.lower)
		if err != nil {
			t.Fatal(err)
		}
		surv := func(x float64) float64 {
			if x < 0 {
				return 1
			}
			return 1 - d.CDF(x)
		}
		for _, x := range []float64{0.3, d.Lower, 2, 8, 40, 120} {
			want := numeric.Simpson(surv, 0, x, 4000)
			if got := d.IntegratedSurvival(x); !almost(got, want, 1e-7*(x+1)) {
				t.Errorf("mean=%v sd=%v: I(%v) = %v want %v", tn.mean, tn.sd, x, got, want)
			}
		}
		// I(∞)/μ = 1: the equilibrium distribution normalizes.
		far := d.Mean() + 14*d.StdDev()
		if got := d.IntegratedSurvival(far) / d.Mean(); !almost(got, 1, 1e-9) {
			t.Errorf("I(∞)/μ = %v", got)
		}
	}
}

// Deep truncation (α ≫ 1) is where a CDF-side antiderivative cancels to
// I(x) = x; the survival-side closed form must keep matching quadrature and
// saturate at the post-truncation mean.
func TestTruncNormalIntegratedSurvivalDeepTruncation(t *testing.T) {
	tn, err := NewTruncNormal(0, 1, 9, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	surv := func(x float64) float64 {
		if x < 0 {
			return 1
		}
		return 1 - tn.CDF(x)
	}
	for _, x := range []float64{9.02, 9.2, 10, 15} {
		want := numeric.Simpson(surv, 0, x, 8000)
		got := tn.IntegratedSurvival(x)
		if !almost(got, want, 1e-6*want) {
			t.Errorf("I(%v) = %v want %v", x, got, want)
		}
		if x > 9.5 && got >= x-0.5 {
			t.Errorf("I(%v) = %v did not saturate (cancellation regression)", x, got)
		}
	}
	if got := tn.IntegratedSurvival(30); !almost(got, tn.Mean(), 1e-9*tn.Mean()) {
		t.Errorf("I(∞) = %v want mean %v", got, tn.Mean())
	}
	// The asymptotic branch of the helper agrees with the direct form at
	// the switchover.
	lo, hi := normalSurvivalIntegral(19.999999), normalSurvivalIntegral(20.000001)
	if math.Abs(lo-hi)/lo > 1e-4 {
		t.Errorf("survival-integral branch mismatch at u=20: %v vs %v", lo, hi)
	}
}

func TestTruncNormalSampleMatchesMoments(t *testing.T) {
	tn, err := TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	var w stat.Welford
	lo := math.Inf(1)
	for i := 0; i < 200_000; i++ {
		x := tn.Sample(r)
		if x < lo {
			lo = x
		}
		w.Add(x)
	}
	if lo < 0 {
		t.Fatalf("sample below truncation bound: %v", lo)
	}
	if !almost(w.Mean(), tn.Mean(), 0.05) {
		t.Errorf("sample mean %v vs %v", w.Mean(), tn.Mean())
	}
	if !almost(w.StdDev(), tn.StdDev(), 0.05) {
		t.Errorf("sample sd %v vs %v", w.StdDev(), tn.StdDev())
	}
}
