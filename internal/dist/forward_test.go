package dist

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cnfet/yieldlab/internal/rng"
)

func TestNewForwardRecurrenceValidation(t *testing.T) {
	if _, err := NewForwardRecurrence(nil); err == nil {
		t.Error("nil spacing")
	}
	if _, err := NewForwardRecurrence(Exponential{Rate: -1}); err == nil {
		t.Error("non-positive mean")
	}
}

// The exponential law is memoryless: its stationary forward recurrence is
// the law itself, so the sampler's CDF must reproduce the exponential CDF.
func TestForwardRecurrenceExponentialMemoryless(t *testing.T) {
	e := Exponential{Rate: 0.25}
	fr, err := NewForwardRecurrence(e)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance bounds the linear-interpolation error of the 4096-cell table.
	for _, x := range []float64{0.5, 2, 4, 10, 30} {
		if got, want := fr.CDF(x), e.CDF(x); !almost(got, want, 2e-5) {
			t.Errorf("G(%v) = %v want %v", x, got, want)
		}
	}
}

// Deterministic pitch V: the stationary first gap is uniform on [0, V].
func TestForwardRecurrenceDeterministicUniform(t *testing.T) {
	fr, err := NewForwardRecurrence(Deterministic{V: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.4, 1, 2.2, 3.9} {
		if got := fr.CDF(x); !almost(got, x/4, 1e-6) {
			t.Errorf("G(%v) = %v want %v", x, got, x/4)
		}
	}
	r := rng.New(21)
	for i := 0; i < 1000; i++ {
		x := fr.Sample(r)
		if x < 0 || x > 4 {
			t.Fatalf("sample %v outside [0, 4]", x)
		}
	}
}

// Sampling must match the stationary density (1-F(x))/μ: compare the
// empirical CDF with the exact closed-form equilibrium CDF I(x)/μ for the
// calibrated pitch-style law.
func TestForwardRecurrenceSamplingMatchesStationaryCDF(t *testing.T) {
	tn, err := TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NewForwardRecurrence(tn)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(33)
	const trials = 300_000
	samples := make([]float64, trials)
	mean := 0.0
	for i := range samples {
		samples[i] = fr.Sample(r)
		mean += samples[i]
	}
	mean /= trials
	// E[forward recurrence] = μ(1+cv²)/2 for the stationary law.
	cv := tn.StdDev() / tn.Mean()
	wantMean := tn.Mean() * (1 + cv*cv) / 2
	if math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Errorf("sample mean %v want %v", mean, wantMean)
	}
	for _, x := range []float64{0.5, 1, 2, 4, 8, 16, 30} {
		hits := 0
		for _, s := range samples {
			if s <= x {
				hits++
			}
		}
		got := float64(hits) / trials
		want := tn.IntegratedSurvival(x) / tn.Mean()
		se := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 5*se+1e-4 {
			t.Errorf("G(%v): empirical %v vs exact %v (se %v)", x, got, want, se)
		}
	}
}

// quadratureOnly hides the SurvivalIntegrator fast path so the Simpson
// fallback table is exercised and must agree with the exact one.
type quadratureOnly struct{ tn TruncNormal }

func (q quadratureOnly) Mean() float64               { return q.tn.Mean() }
func (q quadratureOnly) StdDev() float64             { return q.tn.StdDev() }
func (q quadratureOnly) CDF(x float64) float64       { return q.tn.CDF(x) }
func (q quadratureOnly) Quantile(p float64) float64  { return q.tn.Quantile(p) }
func (q quadratureOnly) Sample(r *rand.Rand) float64 { return q.tn.Sample(r) }

func TestForwardRecurrenceQuadratureFallbackMatchesExact(t *testing.T) {
	tn, err := TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var spacing Continuous = quadratureOnly{tn}
	if _, ok := spacing.(SurvivalIntegrator); ok {
		t.Fatal("wrapper must not expose the fast path")
	}
	exact, err := NewForwardRecurrence(tn)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := NewForwardRecurrence(spacing)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 2, 4, 10, 25} {
		if a, b := exact.CDF(x), fallback.CDF(x); !almost(a, b, 1e-6) {
			t.Errorf("G(%v): exact %v vs quadrature %v", x, a, b)
		}
	}
}
