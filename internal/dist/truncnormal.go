package dist

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/numeric"
)

// TruncNormal is a normal distribution restricted to [Lower, Upper]. The
// calibrated inter-CNT pitch law of the paper is a truncated normal on
// [0, ∞); see device.CalibratedPitch.
//
// The struct stores the parent (pre-truncation) parameters plus moments
// precomputed at construction, so all methods are cheap and the value can be
// copied and shared freely.
type TruncNormal struct {
	// Mu and Sigma are the parent normal's location and scale.
	Mu, Sigma float64
	// Lower and Upper are the truncation bounds (Upper may be +Inf).
	Lower, Upper float64

	alpha, beta float64 // standardized bounds
	z           float64 // parent mass in [Lower, Upper]
	sfAlpha     float64 // parent survival at alpha
	sfBeta      float64 // parent survival at beta
	mean, sd    float64 // post-truncation moments
}

// NewTruncNormal builds a normal(mu, sigma) truncated to [lower, upper].
// Upper may be +Inf. The truncation interval must carry non-negligible
// parent mass.
func NewTruncNormal(mu, sigma, lower, upper float64) (TruncNormal, error) {
	if !(sigma > 0) || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return TruncNormal{}, fmt.Errorf("dist: truncated normal sigma %g must be positive and finite", sigma)
	}
	if !(lower < upper) || math.IsNaN(lower) {
		return TruncNormal{}, fmt.Errorf("dist: truncation bounds [%g, %g] invalid", lower, upper)
	}
	t := TruncNormal{Mu: mu, Sigma: sigma, Lower: lower, Upper: upper}
	t.alpha = (lower - mu) / sigma
	t.beta = math.Inf(1)
	if !math.IsInf(upper, 1) {
		t.beta = (upper - mu) / sigma
	}
	t.sfAlpha = numeric.NormalSF(t.alpha)
	t.sfBeta = numeric.NormalSF(t.beta)
	t.z = t.sfAlpha - t.sfBeta
	if !(t.z > 1e-300) {
		return TruncNormal{}, fmt.Errorf("dist: truncation interval [%g, %g] carries no parent mass", lower, upper)
	}
	phiAlpha := numeric.NormalPDF(t.alpha)
	phiBeta := numeric.NormalPDF(t.beta)
	if math.IsInf(t.beta, 1) {
		phiBeta = 0
	}
	ratio := (phiAlpha - phiBeta) / t.z
	t.mean = mu + sigma*ratio
	aTerm := t.alpha * phiAlpha
	if math.IsInf(t.alpha, -1) {
		aTerm = 0
	}
	bTerm := t.beta * phiBeta
	if math.IsInf(t.beta, 1) {
		bTerm = 0
	}
	variance := sigma * sigma * (1 + (aTerm-bTerm)/t.z - ratio*ratio)
	t.sd = math.Sqrt(math.Max(variance, 0))
	return t, nil
}

// TruncNormalWithMean builds the calibrated pitch-style law: a normal with
// parent standard deviation sd truncated to [lower, ∞), with the parent
// location solved so the post-truncation mean equals mean. This is the
// parameterization the paper's 4 nm-pitch law is frozen in (post-truncation
// mean 4 nm, parent sigma given by the calibrated σ/μ ratio).
func TruncNormalWithMean(mean, sd, lower float64) (TruncNormal, error) {
	if !(sd > 0) || math.IsNaN(sd) || math.IsInf(sd, 0) {
		return TruncNormal{}, fmt.Errorf("dist: parent sigma %g must be positive and finite", sd)
	}
	if !(mean > lower) || math.IsNaN(mean) || math.IsNaN(lower) {
		return TruncNormal{}, fmt.Errorf("dist: target mean %g must exceed lower bound %g", mean, lower)
	}
	// The post-truncation mean m + sd·h((lower-m)/sd) is strictly increasing
	// in the parent location m and exceeds the target at m = mean, so walk
	// the lower bracket out geometrically and bisect.
	f := func(m float64) float64 {
		return m + sd*normalHazard((lower-m)/sd) - mean
	}
	hi := mean
	lo := mean - sd
	step := sd
	for i := 0; f(lo) >= 0; i++ {
		if i > 80 {
			return TruncNormal{}, fmt.Errorf("dist: cannot bracket parent location for mean %g, sd %g, lower %g", mean, sd, lower)
		}
		step *= 2
		lo -= step
	}
	mu, err := numeric.Bisect(f, lo, hi, 1e-10*sd, 400)
	if err != nil {
		return TruncNormal{}, fmt.Errorf("dist: solving parent location: %w", err)
	}
	return NewTruncNormal(mu, sd, lower, math.Inf(1))
}

// normalHazard returns φ(x)/(1-Φ(x)), the standard normal hazard rate,
// stable for arbitrarily large x (where the direct ratio is 0/0).
func normalHazard(x float64) float64 {
	if x > 30 {
		// Asymptotic Mills ratio: h(x) = x + 1/x - 2/x³ + O(x⁻⁵).
		return x + 1/x - 2/(x*x*x)
	}
	return numeric.NormalPDF(x) / numeric.NormalSF(x)
}

// Mean returns the post-truncation expectation.
func (t TruncNormal) Mean() float64 { return t.mean }

// StdDev returns the post-truncation standard deviation.
func (t TruncNormal) StdDev() float64 { return t.sd }

// CDF returns the truncated cumulative distribution at x.
func (t TruncNormal) CDF(x float64) float64 {
	if x <= t.Lower {
		return 0
	}
	if x >= t.Upper {
		return 1
	}
	xi := (x - t.Mu) / t.Sigma
	// (Φ(ξ)-Φ(α))/Z computed as survival differences: accurate when the
	// truncation point sits deep in the parent's upper tail.
	c := (t.sfAlpha - numeric.NormalSF(xi)) / t.z
	return numeric.Clamp(c, 0, 1)
}

// Quantile returns the truncated quantile at p in [0, 1].
func (t TruncNormal) Quantile(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return t.Lower
	case p >= 1:
		return t.Upper
	}
	// Target parent survival: (1-p)·SF(α) + p·SF(β), inverted through
	// whichever tail keeps full precision.
	sf := (1-p)*t.sfAlpha + p*t.sfBeta
	var xi float64
	if sf <= 0.5 {
		xi = -numeric.NormalQuantile(sf)
	} else {
		xi = numeric.NormalQuantile(1 - sf)
	}
	x := t.Mu + t.Sigma*xi
	return numeric.Clamp(x, t.Lower, t.Upper)
}

// Sample draws one truncated-normal variate by inverse transform, which
// stays exact however deep the truncation cuts into the parent.
func (t TruncNormal) Sample(r *rand.Rand) float64 {
	return t.Quantile(r.Float64())
}

// IntegratedSurvival returns ∫₀ˣ(1-F(t)) dt in closed form. The truncated
// survival is S(t) = (SF(ξ(t)) - SF(β))/Z, so the integral is expressed
// entirely through the parent's integrated survival ∫ᵤ^∞ SF — small numbers
// divided by the small truncation mass Z — which stays fully accurate
// however deep the truncation cuts into the parent's upper tail (where the
// CDF-side antiderivative cancels catastrophically).
func (t TruncNormal) IntegratedSurvival(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Below the lower bound the survival is 1.
	lo := math.Max(t.Lower, 0)
	if x <= lo {
		return x
	}
	// Beyond the upper bound the survival is 0.
	hi := math.Min(x, t.Upper)
	xiLo := (lo - t.Mu) / t.Sigma
	xiHi := (hi - t.Mu) / t.Sigma
	sfInt := t.Sigma * (normalSurvivalIntegral(xiLo) - normalSurvivalIntegral(xiHi))
	acc := lo + (sfInt-(hi-lo)*t.sfBeta)/t.z
	return numeric.Clamp(acc, 0, x)
}

// normalSurvivalIntegral returns ∫ᵤ^∞ (1-Φ(v)) dv = φ(u) - u·(1-Φ(u)),
// switching to the asymptotic tail expansion where the direct form loses
// all precision to cancellation.
func normalSurvivalIntegral(u float64) float64 {
	if u > 20 {
		// φ(u)·(u⁻² - 3u⁻⁴ + 15u⁻⁶): relative error below 1e-6 at u = 20.
		u2 := u * u
		return numeric.NormalPDF(u) * (1 - 3/u2 + 15/(u2*u2)) / u2
	}
	return numeric.NormalPDF(u) - u*numeric.NormalSF(u)
}
