package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/cnfet/yieldlab/internal/numeric"
)

// ForwardRecurrence samples the stationary forward-recurrence (equilibrium
// first-gap) distribution of a renewal process with the given spacing law:
// the distance from an arbitrary observation point to the next arrival,
// with density (1-F(x))/μ. The row-correlation Monte Carlo uses it to start
// track realizations in equilibrium, which is what makes the sampled count
// statistics match the analytic renewal model exactly.
//
// Sampling inverts a precomputed monotone table of the equilibrium CDF
// G(x) = I(x)/μ with per-cell linear interpolation; the table is exact when
// the spacing law implements SurvivalIntegrator and Simpson-integrated
// otherwise. The sampler is immutable after construction and safe for
// concurrent use.
type ForwardRecurrence struct {
	table *numeric.LinearInterp // equilibrium CDF over the support grid
	maxX  float64               // support cap
	maxG  float64               // CDF at the cap (≤ 1; truncated tail)
}

// forwardRecurrenceCells is the resolution of the inversion table. At 1/4096
// of the support per cell the interpolation error of the smooth equilibrium
// CDF is far below Monte Carlo resolution.
const forwardRecurrenceCells = 4096

// frCache shares the immutable 4096-cell samplers between models built on
// the same spacing law, keyed by the law's fingerprint. Parameter sweeps
// construct thousands of RowModel instances over a handful of laws; without
// the cache each one re-integrates its own table. The entry count is capped
// so a sweep over the law parameters themselves (every variant a distinct
// fingerprint) cannot pin unbounded memory for the process lifetime — past
// the cap, extra laws simply get private GC-able tables.
var (
	frCacheMu sync.Mutex
	frCache   = make(map[string]*ForwardRecurrence)
)

const frCacheMax = 64

// ForwardRecurrenceFor returns the stationary first-gap sampler for
// spacing, sharing one table per distinct law when the law carries a
// Fingerprint (all the built-in laws do). Laws without a fingerprint get a
// fresh table, exactly as NewForwardRecurrence.
func ForwardRecurrenceFor(spacing Continuous) (*ForwardRecurrence, error) {
	if spacing == nil {
		return nil, errors.New("dist: nil spacing distribution")
	}
	key, ok := Fingerprint(spacing)
	if !ok {
		return NewForwardRecurrence(spacing)
	}
	frCacheMu.Lock()
	fr, hit := frCache[key]
	frCacheMu.Unlock()
	if hit {
		return fr, nil
	}
	fr, err := NewForwardRecurrence(spacing)
	if err != nil {
		return nil, err
	}
	frCacheMu.Lock()
	defer frCacheMu.Unlock()
	if prior, raced := frCache[key]; raced {
		return prior, nil
	}
	if len(frCache) < frCacheMax {
		frCache[key] = fr
	}
	return fr, nil
}

// NewForwardRecurrence builds the stationary first-gap sampler for spacing.
func NewForwardRecurrence(spacing Continuous) (*ForwardRecurrence, error) {
	if spacing == nil {
		return nil, errors.New("dist: nil spacing distribution")
	}
	mean := spacing.Mean()
	if !(mean > 0) || math.IsInf(mean, 0) || math.IsNaN(mean) {
		return nil, fmt.Errorf("dist: spacing mean %g must be positive and finite", mean)
	}
	sd := spacing.StdDev()
	if sd < 0 || math.IsInf(sd, 0) || math.IsNaN(sd) {
		return nil, fmt.Errorf("dist: spacing standard deviation %g must be finite and non-negative", sd)
	}
	// Support cap: the forward-recurrence law inherits the spacing support,
	// so truncate where the spacing tail mass is negligible.
	hi := mean + 12*sd
	if q := spacing.Quantile(1 - 1e-13); !math.IsNaN(q) && !math.IsInf(q, 1) && q > hi {
		hi = q
	}
	if !(hi > 0) || math.IsInf(hi, 1) {
		return nil, fmt.Errorf("dist: spacing support cap %g invalid", hi)
	}
	si, exact := spacing.(SurvivalIntegrator)
	surv := func(x float64) float64 {
		if x < 0 {
			return 1
		}
		return 1 - spacing.CDF(x)
	}
	n := forwardRecurrenceCells
	xs := make([]float64, n+1)
	cdf := make([]float64, n+1)
	h := hi / float64(n)
	acc := 0.0
	for i := 0; i <= n; i++ {
		x := float64(i) * h
		xs[i] = x
		if exact {
			cdf[i] = si.IntegratedSurvival(x) / mean
		} else {
			if i > 0 {
				acc += numeric.Simpson(surv, x-h, x, 8) / mean
			}
			cdf[i] = acc
		}
		// Monotone clamp against floating-point drift.
		if i > 0 && cdf[i] < cdf[i-1] {
			cdf[i] = cdf[i-1]
		}
		if cdf[i] > 1 {
			cdf[i] = 1
		}
	}
	if !(cdf[n] >= 0.5) {
		return nil, fmt.Errorf("dist: equilibrium CDF reaches only %g at support cap %g (inconsistent spacing law)", cdf[n], hi)
	}
	table, err := numeric.NewLinearInterp(xs, cdf)
	if err != nil {
		return nil, fmt.Errorf("dist: equilibrium CDF table: %w", err)
	}
	return &ForwardRecurrence{table: table, maxX: hi, maxG: cdf[n]}, nil
}

// CDF returns the equilibrium first-gap CDF G(x) = (1/μ)∫₀ˣ(1-F), linearly
// interpolated on the construction grid.
func (fr *ForwardRecurrence) CDF(x float64) float64 {
	return fr.table.At(x)
}

// Sample draws one stationary first gap. The truncated tail beyond the
// support cap (≈1e-13 of the mass) is clamped to the cap.
func (fr *ForwardRecurrence) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	if u >= fr.maxG {
		return fr.maxX
	}
	return fr.table.InverseAt(u)
}
