package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Sampler is a devirtualized sampling function: the Monte Carlo hot loops
// resolve one of these per distribution up front (see FastSamplerFor)
// instead of paying an interface dispatch — and, for TruncNormal, a full
// inverse-CDF evaluation — on every draw.
type Sampler func(r *rand.Rand) float64

// truncNormalTableCells is the default inversion-table resolution, matching
// the 4096-cell grid the ForwardRecurrence sampler has proven out: the
// sup-norm quantile error is bounded by one grid cell, far below the pitch
// scale the Monte Carlo resolves.
const truncNormalTableCells = 4096

// TruncNormalTable is a tabulated inverse-CDF sampler for a TruncNormal.
//
// Construction evaluates the exact CDF on a uniform grid of cells spanning
// the quantile-bounded mass region [Q(1e-13), Q(1-1e-13)] — not the raw
// support, so the resolution adapts to the law's scale: a tight-sigma law
// gets the same ~4096 cells across its actual mass that a wide one does.
// Sampling inverts the piecewise-linear interpolant; a guide array indexed
// by ⌊u·cells⌋ starts each inversion in (almost always) the right cell, so
// a draw costs one table lookup, a short monotone walk and one linear
// interpolation — no special functions.
//
// Accuracy: for any u inside the tabulated mass, the exact quantile and
// the tabulated quantile lie in the same grid cell, so the error is
// bounded by the cell width (Span/cells ≈ the law's quantile range over
// 4096); draws in either tail beyond the tabulated mass (≈1e-13 of the
// distribution each side) fall back to the exact Quantile. The table is
// immutable after construction and safe for concurrent use.
type TruncNormalTable struct {
	law   TruncNormal
	lo    float64   // grid origin
	h     float64   // cell width
	cdf   []float64 // cdf[i] = CDF(lo + i·h), i = 0..cells
	guide []int32   // guide[k] = first cell whose upper CDF can cover u ≥ k/cells
	maxU  float64   // tabulated mass: cdf[cells]
}

// tnTableCache shares the immutable tables between models built on the same
// law, keyed by fingerprint and capped like the ForwardRecurrence cache:
// past the cap, extra laws get private GC-able tables.
var (
	tnTableMu    sync.Mutex
	tnTableCache = make(map[string]*TruncNormalTable)
)

const tnTableCacheMax = 64

// TruncNormalTableFor returns the default-resolution tabulated sampler for
// t, sharing one table per distinct law.
func TruncNormalTableFor(t TruncNormal) (*TruncNormalTable, error) {
	key, ok := Fingerprint(t)
	if !ok {
		return NewTruncNormalTable(t, 0)
	}
	tnTableMu.Lock()
	tab, hit := tnTableCache[key]
	tnTableMu.Unlock()
	if hit {
		return tab, nil
	}
	tab, err := NewTruncNormalTable(t, 0)
	if err != nil {
		return nil, err
	}
	tnTableMu.Lock()
	defer tnTableMu.Unlock()
	if prior, raced := tnTableCache[key]; raced {
		return prior, nil
	}
	if len(tnTableCache) < tnTableCacheMax {
		tnTableCache[key] = tab
	}
	return tab, nil
}

// NewTruncNormalTable builds a tabulated sampler for t with the given cell
// count (0 = the default 4096).
func NewTruncNormalTable(t TruncNormal, cells int) (*TruncNormalTable, error) {
	if cells <= 0 {
		cells = truncNormalTableCells
	}
	if !(t.Sigma > 0) {
		return nil, errors.New("dist: truncated normal table needs a constructed TruncNormal")
	}
	lo := t.Quantile(1e-13)
	hi := t.Quantile(1 - 1e-13)
	if !(hi > lo) || math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("dist: truncated normal table mass region [%g, %g] invalid", lo, hi)
	}
	h := (hi - lo) / float64(cells)
	cdf := make([]float64, cells+1)
	cdf[0] = t.CDF(lo)
	for i := 1; i <= cells; i++ {
		c := t.CDF(lo + float64(i)*h)
		// Monotone clamp against floating-point drift.
		if c < cdf[i-1] {
			c = cdf[i-1]
		}
		cdf[i] = c
	}
	guide := make([]int32, cells)
	j := 0
	for k := range guide {
		u := float64(k) / float64(cells)
		for j < cells-1 && cdf[j+1] < u {
			j++
		}
		guide[k] = int32(j)
	}
	return &TruncNormalTable{law: t, lo: lo, h: h, cdf: cdf, guide: guide, maxU: cdf[cells]}, nil
}

// Quantile inverts the tabulated CDF at u in [0, 1]; the ≈1e-13 tails
// beyond the tabulated mass on either side use the exact quantile.
//
//yield:noalloc
func (tb *TruncNormalTable) Quantile(u float64) float64 {
	if !(u > tb.cdf[0]) || u >= tb.maxU {
		return tb.law.Quantile(u) // tail (or NaN) delegation stays exact
	}
	cells := len(tb.guide)
	k := int(u * float64(cells))
	if k >= cells {
		k = cells - 1
	}
	j := int(tb.guide[k])
	for tb.cdf[j+1] < u {
		j++
	}
	c0, c1 := tb.cdf[j], tb.cdf[j+1]
	if c1 == c0 {
		return tb.lo + float64(j)*tb.h
	}
	return tb.lo + (float64(j)+(u-c0)/(c1-c0))*tb.h
}

// Sample draws one variate by tabulated inverse transform, consuming exactly
// one uniform per draw like the exact sampler it replaces.
//
//yield:noalloc
func (tb *TruncNormalTable) Sample(r *rand.Rand) float64 {
	return tb.Quantile(r.Float64())
}

// Span returns the width of the tabulated support: the sup-norm quantile
// error bound is Span()/Cells().
func (tb *TruncNormalTable) Span() float64 { return tb.h * float64(len(tb.guide)) }

// Cells returns the table resolution.
func (tb *TruncNormalTable) Cells() int { return len(tb.guide) }

// FastSamplerFor resolves the fastest available sampler for law once, so hot
// loops avoid per-draw interface dispatch:
//
//   - TruncNormal draws from the shared tabulated inverse CDF
//     (TruncNormalTableFor) instead of the exact per-draw Quantile;
//   - Exponential and Deterministic get direct closures;
//   - anything else falls back to the law's own Sample method, still bound
//     once.
//
// Every returned sampler consumes the generator identically to the law's
// Sample, so swapping one in changes at most the low-order digits of the
// drawn values (and, for TruncNormal, by no more than the table's sup-norm
// bound), never the stream alignment.
func FastSamplerFor(law Continuous) (Sampler, error) {
	switch l := law.(type) {
	case TruncNormal:
		if tab, err := TruncNormalTableFor(l); err == nil {
			return tab.Sample, nil
		}
		// Degenerate laws a table cannot resolve keep the exact sampler —
		// exactly the pre-table behavior.
		return l.Sample, nil
	case *TruncNormal:
		if tab, err := TruncNormalTableFor(*l); err == nil {
			return tab.Sample, nil
		}
		return l.Sample, nil
	case Exponential:
		rate := l.Rate
		return func(r *rand.Rand) float64 { return r.ExpFloat64() / rate }, nil
	case Deterministic:
		v := l.V
		return func(r *rand.Rand) float64 { return v }, nil
	case nil:
		return nil, errors.New("dist: nil distribution")
	default:
		return law.Sample, nil
	}
}
