// Package dist provides the probability distributions the yield models are
// built from: continuous spacing laws for the inter-CNT pitch process and
// discrete count distributions (PMFs) for the number of CNTs in a CNFET
// channel.
//
// Continuous laws implement the Continuous interface; the renewal count
// engine (package renewal) consumes them through CDF evaluations, while the
// Monte Carlo scenario samplers draw from them with Sample. Laws that know a
// closed form for the integrated survival function ∫₀ˣ(1-F) additionally
// implement SurvivalIntegrator, which gives the renewal engine and the
// stationary ForwardRecurrence sampler an exact fast path for the
// equilibrium first-arrival distribution (1-F(x))/μ.
//
// All types are immutable after construction and safe for concurrent use;
// randomness always comes from an explicit *rand.Rand (see package rng).
//
//yield:compute
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Continuous is a one-dimensional continuous probability distribution on
// (a subset of) the real line. The pitch laws used in this repository are
// supported on [0, ∞).
type Continuous interface {
	// Mean returns the expectation.
	Mean() float64
	// StdDev returns the standard deviation.
	StdDev() float64
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) ≥ p, for p in [0, 1].
	Quantile(p float64) float64
	// Sample draws one variate using the given generator.
	Sample(r *rand.Rand) float64
}

// SurvivalIntegrator is implemented by distributions with a closed form for
// the integrated survival function
//
//	I(x) = ∫₀ˣ (1 - F(t)) dt .
//
// I(x)/μ is the CDF of the stationary forward-recurrence (equilibrium
// first-arrival) distribution, so an exact I avoids per-cell quadrature in
// the renewal engine and the ForwardRecurrence sampler.
type SurvivalIntegrator interface {
	// IntegratedSurvival returns ∫₀ˣ (1-F(t)) dt for x ≥ 0 (0 for x < 0).
	IntegratedSurvival(x float64) float64
}

// Exponential is the memoryless spacing law with the given rate (mean 1/Rate).
// A renewal process with exponential pitch is a Poisson process, which the
// tests use as an analytic cross-check for the count engine.
type Exponential struct {
	// Rate is the inverse mean (λ), must be positive.
	Rate float64
}

// Mean returns 1/λ.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// StdDev returns 1/λ.
func (e Exponential) StdDev() float64 { return 1 / e.Rate }

// CDF returns 1 - e^{-λx} for x ≥ 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Quantile returns -ln(1-p)/λ.
func (e Exponential) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Rate
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Rate }

// IntegratedSurvival returns (1 - e^{-λx})/λ.
func (e Exponential) IntegratedSurvival(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate*x) / e.Rate
}

// Deterministic is the degenerate law concentrated at V: the idealized
// perfectly regular pitch used as an ablation baseline.
type Deterministic struct {
	// V is the single support point, must be positive for pitch laws.
	V float64
}

// Mean returns V.
func (d Deterministic) Mean() float64 { return d.V }

// StdDev returns 0.
func (d Deterministic) StdDev() float64 { return 0 }

// CDF is the unit step at V.
func (d Deterministic) CDF(x float64) float64 {
	if x >= d.V {
		return 1
	}
	return 0
}

// Quantile returns V for every p in (0, 1].
func (d Deterministic) Quantile(p float64) float64 { return d.V }

// Sample returns V.
func (d Deterministic) Sample(r *rand.Rand) float64 { return d.V }

// IntegratedSurvival returns min(x, V): the equilibrium first arrival of a
// deterministic pitch is uniform on [0, V].
func (d Deterministic) IntegratedSurvival(x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= d.V:
		return d.V
	}
	return x
}

// validateProb reports an error when p is not a probability.
func validateProb(name string, p float64) error {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("dist: %s = %g out of [0,1]", name, p)
	}
	return nil
}
