package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// This file holds the table-codec hooks used by the persistent sweep store
// (internal/sweepstore): a binary PMF codec and the inverse of Fingerprint,
// so a law can be reconstructed from the identity string its cached tables
// are keyed under.

// ParseFingerprint reconstructs a distribution from the identity string
// returned by Fingerprint. It inverts every Fingerprinter in this package;
// parameters round-trip bit-exactly because fingerprints encode raw float64
// bits. Reconstructed laws go through the same constructors as fresh ones,
// so invalid parameters (from a corrupted or hand-edited string) are
// rejected rather than producing a broken law.
func ParseFingerprint(s string) (Continuous, error) {
	parts := strings.Split(s, ":")
	fail := func() (Continuous, error) {
		return nil, fmt.Errorf("dist: malformed fingerprint %q", s)
	}
	vals := make([]float64, len(parts)-1)
	for i, p := range parts[1:] {
		var bits uint64
		if _, err := fmt.Sscanf(p, "%016x", &bits); err != nil || len(p) != 16 {
			return fail()
		}
		vals[i] = math.Float64frombits(bits)
	}
	switch parts[0] {
	case "exp":
		if len(vals) != 1 {
			return fail()
		}
		e := Exponential{Rate: vals[0]}
		if !(e.Rate > 0) || math.IsInf(e.Rate, 0) || math.IsNaN(e.Rate) {
			return nil, fmt.Errorf("dist: fingerprint %q: rate %g invalid", s, e.Rate)
		}
		return e, nil
	case "det":
		if len(vals) != 1 {
			return fail()
		}
		d := Deterministic{V: vals[0]}
		if !(d.V > 0) || math.IsInf(d.V, 0) || math.IsNaN(d.V) {
			return nil, fmt.Errorf("dist: fingerprint %q: value %g invalid", s, d.V)
		}
		return d, nil
	case "tnorm":
		if len(vals) != 4 {
			return fail()
		}
		t, err := NewTruncNormal(vals[0], vals[1], vals[2], vals[3])
		if err != nil {
			return nil, fmt.Errorf("dist: fingerprint %q: %w", s, err)
		}
		return t, nil
	default:
		return nil, fmt.Errorf("dist: unknown fingerprint kind %q", s)
	}
}

// AppendBinary appends the PMF in a length-prefixed little-endian layout
// (uvarint mass count, then raw float64 bits per mass). The exact bit
// patterns are preserved, so decode is bit-identical to the source.
func (p PMF) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.P)))
	for _, v := range p.P {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodePMF reads one PMF written by AppendBinary from the front of data,
// returning the remaining bytes. The decoded masses pass the same validation
// as NewPMF, so corrupted payloads are rejected rather than admitted.
func DecodePMF(data []byte) (PMF, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return PMF{}, nil, fmt.Errorf("dist: PMF length prefix truncated")
	}
	data = data[used:]
	// Cap before allocating: a corrupted prefix must not drive an
	// arbitrarily large allocation.
	const maxSupport = 1 << 24
	if n == 0 || n > maxSupport {
		return PMF{}, nil, fmt.Errorf("dist: PMF support %d out of range", n)
	}
	if uint64(len(data)) < 8*n {
		return PMF{}, nil, fmt.Errorf("dist: PMF payload truncated: need %d bytes, have %d", 8*n, len(data))
	}
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	pmf, err := NewPMF(masses)
	if err != nil {
		return PMF{}, nil, err
	}
	return pmf, data[8*n:], nil
}
