package dist

import (
	"math"
	"testing"
)

// ParseFingerprint must invert Fingerprint bit-exactly for every law kind.
func TestParseFingerprintRoundTrip(t *testing.T) {
	tn, err := TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	laws := []Continuous{
		Exponential{Rate: 0.25},
		Deterministic{V: 4},
		tn,
	}
	for _, law := range laws {
		fp, ok := Fingerprint(law)
		if !ok {
			t.Fatalf("%T has no fingerprint", law)
		}
		back, err := ParseFingerprint(fp)
		if err != nil {
			t.Fatalf("%q: %v", fp, err)
		}
		fp2, ok := Fingerprint(back)
		if !ok || fp2 != fp {
			t.Fatalf("round trip changed fingerprint: %q -> %q", fp, fp2)
		}
		// Moments agree exactly: the same constructors ran on the same bits.
		if math.Float64bits(back.Mean()) != math.Float64bits(law.Mean()) ||
			math.Float64bits(back.StdDev()) != math.Float64bits(law.StdDev()) {
			t.Fatalf("%q: moments differ after round trip", fp)
		}
	}
}

func TestParseFingerprintRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"exp",
		"exp:",
		"exp:zzzz",
		"exp:0000000000000000",   // rate 0
		"exp:7ff0000000000000",   // rate +Inf
		"det:fff0000000000000",   // -Inf
		"tnorm:0:1:2",            // wrong arity
		"gauss:4010000000000000", // unknown kind
		"exp:40100000000000000",  // 17 hex digits
		"tnorm:4010000000000000:0000000000000000:0000000000000000:7ff0000000000000", // sigma 0
	}
	for _, s := range bad {
		if _, err := ParseFingerprint(s); err == nil {
			t.Errorf("ParseFingerprint(%q) accepted", s)
		}
	}
}

// The PMF codec round-trips bit-exactly and rejects truncation and invalid
// masses.
func TestPMFCodec(t *testing.T) {
	src, err := PoissonPMF(7.3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	buf := src.AppendBinary(nil)
	got, rest, err := DecodePMF(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if got.Len() != src.Len() {
		t.Fatalf("support %d vs %d", got.Len(), src.Len())
	}
	for k := 0; k < src.Len(); k++ {
		if math.Float64bits(got.Prob(k)) != math.Float64bits(src.Prob(k)) {
			t.Fatalf("mass at %d differs", k)
		}
	}
	// Two PMFs concatenated decode in sequence.
	buf2 := src.AppendBinary(src.AppendBinary(nil))
	_, rest, err = DecodePMF(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if _, rest, err = DecodePMF(rest); err != nil || len(rest) != 0 {
		t.Fatalf("second PMF: err %v, %d bytes left", err, len(rest))
	}
	// Truncations are rejected.
	for _, n := range []int{0, 1, len(buf) - 1} {
		if _, _, err := DecodePMF(buf[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// A corrupted mass (negative) is rejected by NewPMF validation.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] |= 0x80 // flip the sign bit of the last mass
	if _, _, err := DecodePMF(bad); err == nil {
		t.Error("negative mass accepted")
	}
}
