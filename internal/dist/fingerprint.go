package dist

import (
	"fmt"
	"math"
)

// Fingerprinter is implemented by distributions whose parameters fully
// determine their behavior, yielding a stable identity string. Fingerprints
// key the cross-model caches: the renewal sweep cache shares one swept count
// table between models built on the same law, and ForwardRecurrenceFor
// shares stationary-sampler tables the same way.
//
// Two fingerprints are equal iff the distributions are numerically
// identical (parameters compared by exact float64 bits), so a cache hit can
// never change a result.
type Fingerprinter interface {
	// Fingerprint returns the law's identity string. It must be stable
	// across processes and collision-free across different parameters.
	Fingerprint() string
}

// Fingerprint returns the law's identity string and whether the law
// provides one. Laws without a fingerprint cannot be cached across models.
func Fingerprint(d Continuous) (string, bool) {
	f, ok := d.(Fingerprinter)
	if !ok {
		return "", false
	}
	return f.Fingerprint(), true
}

// hexBits renders a float64 through its exact bit pattern, so fingerprints
// distinguish values a decimal format would conflate (and normalize nothing:
// -0 and +0 differ, as do NaN payloads — construction validation rejects
// those anyway).
func hexBits(v float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(v))
}

// Fingerprint implements Fingerprinter.
func (e Exponential) Fingerprint() string {
	return "exp:" + hexBits(e.Rate)
}

// Fingerprint implements Fingerprinter.
func (d Deterministic) Fingerprint() string {
	return "det:" + hexBits(d.V)
}

// Fingerprint implements Fingerprinter. The parent parameters and bounds
// fully determine a truncated normal; the precomputed moments derive from
// them.
func (t TruncNormal) Fingerprint() string {
	return "tnorm:" + hexBits(t.Mu) + ":" + hexBits(t.Sigma) + ":" + hexBits(t.Lower) + ":" + hexBits(t.Upper)
}
