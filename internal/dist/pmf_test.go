package dist

import (
	"math"
	"testing"

	"github.com/cnfet/yieldlab/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewPMFValidation(t *testing.T) {
	if _, err := NewPMF(nil); err == nil {
		t.Error("empty slice")
	}
	if _, err := NewPMF([]float64{0.5, -0.1}); err == nil {
		t.Error("negative mass")
	}
	if _, err := NewPMF([]float64{math.NaN()}); err == nil {
		t.Error("NaN mass")
	}
	if _, err := NewPMF([]float64{0, 0}); err == nil {
		t.Error("no mass")
	}
	if _, err := NewPMF([]float64{0.8, 0.8}); err == nil {
		t.Error("mass above 1")
	}
	p, err := NewPMF([]float64{0.25, 0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 || !almost(p.TotalMass(), 1, 1e-15) {
		t.Fatalf("len %d mass %v", p.Len(), p.TotalMass())
	}
}

func TestPointPMF(t *testing.T) {
	if _, err := PointPMF(-1); err == nil {
		t.Error("negative count")
	}
	p, err := PointPMF(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 || p.Prob(4) != 1 || p.Prob(3) != 0 || p.Mean() != 4 || p.Variance() != 0 {
		t.Fatalf("point mass: %+v", p)
	}
}

func TestPoissonPMFMassAndMoments(t *testing.T) {
	for _, lambda := range []float64{0.3, 2, 15, 80} {
		p, err := PoissonPMF(lambda, 1e-14)
		if err != nil {
			t.Fatal(err)
		}
		if m := p.TotalMass(); !almost(m, 1, 1e-12) {
			t.Errorf("lambda=%v: mass %v", lambda, m)
		}
		if !almost(p.Mean(), lambda, 1e-9*lambda+1e-11) {
			t.Errorf("lambda=%v: mean %v", lambda, p.Mean())
		}
		if !almost(p.Variance(), lambda, 1e-8*lambda+1e-10) {
			t.Errorf("lambda=%v: variance %v", lambda, p.Variance())
		}
		// Closed-form PGF: exp(λ(z-1)).
		for _, z := range []float64{0.1, 0.531, 0.95} {
			want := math.Exp(lambda * (z - 1))
			if got := p.PGF(z); math.Abs(got-want)/want > 1e-10 {
				t.Errorf("lambda=%v PGF(%v) = %v want %v", lambda, z, got, want)
			}
		}
	}
	if _, err := PoissonPMF(-1, 1e-12); err == nil {
		t.Error("negative mean")
	}
	if _, err := PoissonPMF(3, 0); err == nil {
		t.Error("zero tolerance")
	}
	zero, err := PoissonPMF(0, 1e-12)
	if err != nil || zero.Prob(0) != 1 {
		t.Fatalf("Poisson(0): %v %v", zero, err)
	}
}

func TestBinomialPMFMassAndMoments(t *testing.T) {
	for _, tc := range []struct {
		n int
		q float64
	}{{0, 0.4}, {1, 0.2}, {12, 0.531}, {200, 0.033}} {
		p, err := BinomialPMF(tc.n, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if p.Len() != tc.n+1 {
			t.Fatalf("n=%d: support %d", tc.n, p.Len())
		}
		if m := p.TotalMass(); !almost(m, 1, 1e-12) {
			t.Errorf("n=%d q=%v: mass %v", tc.n, tc.q, m)
		}
		wantMean := float64(tc.n) * tc.q
		if !almost(p.Mean(), wantMean, 1e-10*(wantMean+1)) {
			t.Errorf("n=%d q=%v: mean %v want %v", tc.n, tc.q, p.Mean(), wantMean)
		}
		wantVar := wantMean * (1 - tc.q)
		if !almost(p.Variance(), wantVar, 1e-9*(wantVar+1)) {
			t.Errorf("n=%d q=%v: variance %v want %v", tc.n, tc.q, p.Variance(), wantVar)
		}
	}
	// Degenerate edges.
	p0, _ := BinomialPMF(7, 0)
	p1, _ := BinomialPMF(7, 1)
	if p0.Prob(0) != 1 || p1.Prob(7) != 1 {
		t.Fatal("degenerate binomials")
	}
	if _, err := BinomialPMF(-1, 0.5); err == nil {
		t.Error("negative trials")
	}
	if _, err := BinomialPMF(3, 1.5); err == nil {
		t.Error("bad probability")
	}
}

func TestPMFProbCDFOutOfRange(t *testing.T) {
	p, _ := NewPMF([]float64{0.25, 0.5, 0.25})
	if p.Prob(-1) != 0 || p.Prob(3) != 0 {
		t.Error("out-of-support prob")
	}
	if p.CDF(-1) != 0 {
		t.Error("CDF below support")
	}
	if !almost(p.CDF(1), 0.75, 1e-15) || !almost(p.CDF(99), 1, 1e-15) {
		t.Error("CDF values")
	}
}

func TestPMFNormalized(t *testing.T) {
	p, _ := NewPMF([]float64{0.2, 0.3}) // truncated: mass 0.5
	n, err := p.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(n.TotalMass(), 1, 1e-15) || !almost(n.Prob(1), 0.6, 1e-15) {
		t.Fatalf("normalized: %+v", n)
	}
	// Receiver untouched.
	if !almost(p.TotalMass(), 0.5, 1e-15) {
		t.Fatal("receiver mutated")
	}
	if _, err := (PMF{}).Normalized(); err == nil {
		t.Error("empty PMF")
	}
}

func TestPMFSampleMatchesMasses(t *testing.T) {
	p, _ := NewPMF([]float64{0.1, 0.0, 0.6, 0.3})
	r := rng.New(11)
	const trials = 200_000
	counts := make([]int, p.Len())
	for i := 0; i < trials; i++ {
		counts[p.Sample(r)]++
	}
	for k := 0; k < p.Len(); k++ {
		got := float64(counts[k]) / trials
		if !almost(got, p.Prob(k), 0.005) {
			t.Errorf("P(%d): empirical %v vs %v", k, got, p.Prob(k))
		}
	}
	// Truncated tail mass lands on the last count.
	trunc, _ := NewPMF([]float64{0.5, 0.4}) // 0.1 missing
	hits := 0
	for i := 0; i < trials; i++ {
		if trunc.Sample(r) == 1 {
			hits++
		}
	}
	if got := float64(hits) / trials; !almost(got, 0.5, 0.005) {
		t.Errorf("tail assignment: %v want 0.5", got)
	}
}

func TestPMFPGFEdges(t *testing.T) {
	p, _ := NewPMF([]float64{0.25, 0.5, 0.25})
	if got := p.PGF(1); !almost(got, 1, 1e-15) {
		t.Errorf("PGF(1) = %v", got)
	}
	if got := p.PGF(0); got != 0.25 {
		t.Errorf("PGF(0) = %v", got)
	}
}
