package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// PMF is a probability mass function over the non-negative integers
// 0, 1, …, Len()-1. P[k] is the probability of k. The total mass may fall
// short of 1 by a truncation tolerance (the renewal engine trims numerically
// dead tails); moments treat the stored masses as-is.
//
// The zero value is an empty (invalid) PMF. Copies share the underlying
// slice, which callers must treat as read-only.
type PMF struct {
	// P holds the probability masses, starting at count 0.
	P []float64
}

// NewPMF validates masses (finite, non-negative, total in (0, 1+ε]) and
// wraps them without copying.
func NewPMF(p []float64) (PMF, error) {
	if len(p) == 0 {
		return PMF{}, errors.New("dist: empty PMF")
	}
	total := 0.0
	for k, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return PMF{}, fmt.Errorf("dist: PMF mass %g at count %d invalid", v, k)
		}
		total += v
	}
	if !(total > 0) {
		return PMF{}, errors.New("dist: PMF carries no mass")
	}
	if total > 1+1e-9 {
		return PMF{}, fmt.Errorf("dist: PMF total mass %g exceeds 1", total)
	}
	return PMF{P: p}, nil
}

// PointPMF returns the degenerate distribution concentrated at k.
func PointPMF(k int) (PMF, error) {
	if k < 0 {
		return PMF{}, fmt.Errorf("dist: point mass at negative count %d", k)
	}
	p := make([]float64, k+1)
	p[k] = 1
	return PMF{P: p}, nil
}

// PoissonPMF returns the Poisson(lambda) distribution truncated once the
// upper-tail mass drops below tol. A renewal process with Exponential pitch
// produces exactly these counts, which the renewal tests exploit.
func PoissonPMF(lambda, tol float64) (PMF, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return PMF{}, fmt.Errorf("dist: Poisson mean %g invalid", lambda)
	}
	if !(tol > 0) || tol >= 1 {
		return PMF{}, fmt.Errorf("dist: tail tolerance %g out of (0,1)", tol)
	}
	if lambda == 0 {
		return PointPMF(0)
	}
	logLambda := math.Log(lambda)
	var p []float64
	for k := 0; ; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		mass := math.Exp(-lambda + float64(k)*logLambda - lg)
		p = append(p, mass)
		// Beyond the mode the terms decay geometrically with ratio λ/(k+1),
		// so the remaining tail is below mass/(1-λ/(k+1)) ≤ 2·mass once
		// k+1 ≥ 2λ; stop when that bound clears tol.
		if float64(k+1) >= 2*lambda && 2*mass < tol {
			break
		}
		if k > 1<<20 {
			return PMF{}, fmt.Errorf("dist: Poisson(%g) support did not close under tol %g", lambda, tol)
		}
	}
	return PMF{P: p}, nil
}

// BinomialPMF returns the Binomial(n, q) distribution on 0..n.
func BinomialPMF(n int, q float64) (PMF, error) {
	if n < 0 {
		return PMF{}, fmt.Errorf("dist: binomial trials %d negative", n)
	}
	if err := validateProb("binomial success probability", q); err != nil {
		return PMF{}, err
	}
	p := make([]float64, n+1)
	switch {
	case q == 0:
		p[0] = 1
	case q == 1:
		p[n] = 1
	default:
		logQ, logNotQ := math.Log(q), math.Log1p(-q)
		lgN, _ := math.Lgamma(float64(n + 1))
		for k := 0; k <= n; k++ {
			lgK, _ := math.Lgamma(float64(k + 1))
			lgNK, _ := math.Lgamma(float64(n - k + 1))
			p[k] = math.Exp(lgN - lgK - lgNK + float64(k)*logQ + float64(n-k)*logNotQ)
		}
	}
	return PMF{P: p}, nil
}

// Len returns the support size (largest represented count plus one).
func (p PMF) Len() int { return len(p.P) }

// Prob returns P(X = k), zero outside the represented support.
func (p PMF) Prob(k int) float64 {
	if k < 0 || k >= len(p.P) {
		return 0
	}
	return p.P[k]
}

// TotalMass returns the sum of all stored masses.
func (p PMF) TotalMass() float64 {
	total := 0.0
	for _, v := range p.P {
		total += v
	}
	return total
}

// Mean returns Σ k·P[k].
func (p PMF) Mean() float64 {
	m := 0.0
	for k, v := range p.P {
		m += float64(k) * v
	}
	return m
}

// Variance returns Σ k²·P[k] - Mean².
func (p PMF) Variance() float64 {
	var m, m2 float64
	for k, v := range p.P {
		f := float64(k)
		m += f * v
		m2 += f * f * v
	}
	return math.Max(m2-m*m, 0)
}

// StdDev returns the standard deviation.
func (p PMF) StdDev() float64 { return math.Sqrt(p.Variance()) }

// CDF returns P(X ≤ k).
func (p PMF) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= len(p.P) {
		k = len(p.P) - 1
	}
	total := 0.0
	for _, v := range p.P[:k+1] {
		total += v
	}
	return total
}

// PGF evaluates the probability generating function Σ P[k]·zᵏ by Horner's
// rule. At z = pf this is exactly the device failure probability of Eq. 2.2.
func (p PMF) PGF(z float64) float64 {
	acc := 0.0
	for k := len(p.P) - 1; k >= 0; k-- {
		acc = acc*z + p.P[k]
	}
	return acc
}

// Normalized returns a copy scaled to total mass exactly 1 (undoing tail
// truncation). The receiver is unchanged.
func (p PMF) Normalized() (PMF, error) {
	total := p.TotalMass()
	if !(total > 0) {
		return PMF{}, errors.New("dist: cannot normalize massless PMF")
	}
	out := make([]float64, len(p.P))
	for k, v := range p.P {
		out[k] = v / total
	}
	return PMF{P: out}, nil
}

// Sample draws one count by inverse transform. Residual truncated tail mass
// is assigned to the largest represented count.
func (p PMF) Sample(r *rand.Rand) int {
	u := r.Float64()
	acc := 0.0
	for k, v := range p.P {
		acc += v
		if u < acc {
			return k
		}
	}
	return len(p.P) - 1
}
