package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestFingerprintDistinguishesLawsAndParams(t *testing.T) {
	tnA, err := NewTruncNormal(0, 9.2, 0, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	tnB, err := NewTruncNormal(0.5, 9.2, 0, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	laws := []Continuous{
		Exponential{Rate: 0.25},
		Exponential{Rate: 0.5},
		Deterministic{V: 4},
		Deterministic{V: 0.25}, // must not collide with Exponential{0.25}
		tnA,
		tnB,
	}
	seen := map[string]int{}
	for i, law := range laws {
		fp, ok := Fingerprint(law)
		if !ok {
			t.Fatalf("law %d (%T) has no fingerprint", i, law)
		}
		if fp == "" {
			t.Fatalf("law %d (%T): empty fingerprint", i, law)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("laws %d and %d share fingerprint %q", prev, i, fp)
		}
		seen[fp] = i
	}
}

func TestFingerprintStable(t *testing.T) {
	fa, _ := Fingerprint(Exponential{Rate: 0.25})
	fb, _ := Fingerprint(Exponential{Rate: 0.25})
	if fa != fb {
		t.Fatalf("equal laws, different fingerprints: %q vs %q", fa, fb)
	}
	tn1, err := TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tn2, err := TruncNormalWithMean(4, 9.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := Fingerprint(tn1)
	f2, _ := Fingerprint(tn2)
	if f1 != f2 {
		t.Fatalf("deterministic construction should fingerprint identically: %q vs %q", f1, f2)
	}
}

func TestFingerprintAbsent(t *testing.T) {
	if _, ok := Fingerprint(hiddenLaw{Exponential{Rate: 1}}); ok {
		t.Fatal("wrapper without Fingerprint should report absence")
	}
}

// hiddenLaw forwards Continuous but deliberately not Fingerprinter.
type hiddenLaw struct{ inner Exponential }

func (h hiddenLaw) Mean() float64               { return h.inner.Mean() }
func (h hiddenLaw) StdDev() float64             { return h.inner.StdDev() }
func (h hiddenLaw) CDF(x float64) float64       { return h.inner.CDF(x) }
func (h hiddenLaw) Quantile(p float64) float64  { return h.inner.Quantile(p) }
func (h hiddenLaw) Sample(r *rand.Rand) float64 { return h.inner.Sample(r) }

func TestForwardRecurrenceForSharesTables(t *testing.T) {
	a, err := ForwardRecurrenceFor(Exponential{Rate: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForwardRecurrenceFor(Exponential{Rate: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same law should share one sampler table")
	}
	c, err := ForwardRecurrenceFor(Exponential{Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different laws must not share a table")
	}
	// Cached and fresh tables agree.
	fresh, err := NewForwardRecurrence(Exponential{Rate: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 2, 8, 30} {
		if got, want := a.CDF(x), fresh.CDF(x); got != want {
			t.Errorf("CDF(%g): cached %g fresh %g", x, got, want)
		}
	}
	// Unfingerprinted laws still work (fresh table per call).
	u1, err := ForwardRecurrenceFor(hiddenLaw{Exponential{Rate: 0.125}})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ForwardRecurrenceFor(hiddenLaw{Exponential{Rate: 0.125}})
	if err != nil {
		t.Fatal(err)
	}
	if u1 == u2 {
		t.Error("unfingerprinted laws must not share tables")
	}
	if _, err := ForwardRecurrenceFor(nil); err == nil {
		t.Error("nil law should error")
	}
}
