package dist

import (
	"fmt"
	"math"
)

// Tilt returns the exponential tilting of t by theta together with the
// log-moment-generating function log M(θ) = log E[e^{θX}].
//
// Tilting a truncated normal multiplies its density by e^{θx}/M(θ), which
// completes the square back into a truncated normal with the same parent
// scale and the same truncation bounds, only the parent location shifted:
//
//	f_θ(x) ∝ exp(-(x-μ)²/2σ² + θx) ∝ exp(-(x-(μ+θσ²))²/2σ²)  on [L, U]
//
// so the tilted law is TruncNormal(μ+θσ², σ, L, U) — a first-class law that
// flows through the fingerprint-keyed table caches (TruncNormalTableFor,
// ForwardRecurrenceFor) like any other. The normalizer is
//
//	M(θ) = e^{θμ + θ²σ²/2} · Z(μ+θσ²)/Z(μ)
//
// with Z(m) the parent mass of [L, U] under location m; the importance
// sampler's per-draw likelihood ratio is f(x)/f_θ(x) = M(θ)·e^{-θx}, so
// per-round log-weights are k·log M(θ) - θ·Σxᵢ over the k tilted draws.
//
// Tilt fails when the tilted location pushes the truncation interval out of
// the parent's representable mass (extreme θ).
func (t TruncNormal) Tilt(theta float64) (TruncNormal, float64, error) {
	if math.IsNaN(theta) || math.IsInf(theta, 0) {
		return TruncNormal{}, 0, fmt.Errorf("dist: tilt parameter %g must be finite", theta)
	}
	if !(t.Sigma > 0) {
		return TruncNormal{}, 0, fmt.Errorf("dist: tilting needs a constructed TruncNormal")
	}
	if theta == 0 {
		return t, 0, nil
	}
	tilted, err := NewTruncNormal(t.Mu+theta*t.Sigma*t.Sigma, t.Sigma, t.Lower, t.Upper)
	if err != nil {
		return TruncNormal{}, 0, fmt.Errorf("dist: tilting by %g: %w", theta, err)
	}
	logM := theta*t.Mu + 0.5*theta*theta*t.Sigma*t.Sigma +
		math.Log(tilted.z) - math.Log(t.z)
	return tilted, logM, nil
}
