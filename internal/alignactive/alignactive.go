// Package alignactive implements the paper's proposed design step
// (Section 3.2): enforcing the aligned-active layout restriction on a
// standard-cell library.
//
// The transform follows the paper's heuristic:
//
//  1. Estimate Wmin (Eqs. 2.5/3.1) — supplied by the caller via Options.
//  2. Find the critical active regions: every CNFET with width < Wmin, and
//     upsize them to Wmin.
//  3. Place the n-type (same for p-type) critical active regions of all
//     cells so their lateral positions match a globally defined grid (one
//     band), or two grid positions (the two-band variant of Section 3.3
//     that trades 2× of the correlation benefit for zero area cost).
//  4. Modify the intra-cell geometry as necessary: stacked critical devices
//     that collapse onto the same band in the same poly column must
//     relocate to freshly added columns, widening the cell — the area
//     penalty of Table 2 and the +9 % AOI222_X1 example of Fig. 3.2.
//
// Pins are never moved (the paper: "we retained the location of the I/O
// pins as much as possible"), so inter-cell routing impact stays bounded.
//
//yield:compute
package alignactive

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/cnfet/yieldlab/internal/celllib"
)

// Options configures the transform.
type Options struct {
	// WminNM is the sizing threshold: devices below it are critical, get
	// upsized to it, and their active regions are aligned.
	WminNM float64
	// Bands is the number of aligned lateral grid positions (1 = the full-
	// benefit restriction; 2 = the zero-area variant at half the
	// correlation benefit).
	Bands int
	// BandGapNM separates the bands vertically (defaults to 40 nm).
	BandGapNM float64
}

// Validate checks the options.
func (o Options) Validate() error {
	if !(o.WminNM > 0) {
		return fmt.Errorf("alignactive: Wmin %g must be positive", o.WminNM)
	}
	if o.Bands < 1 || o.Bands > 2 {
		return fmt.Errorf("alignactive: bands must be 1 or 2, got %d", o.Bands)
	}
	if o.BandGapNM < 0 {
		return fmt.Errorf("alignactive: band gap %g must be ≥ 0", o.BandGapNM)
	}
	return nil
}

// bandOffset returns the lateral position of band b.
func (o Options) bandOffset(b int) float64 {
	gap := o.BandGapNM
	if gap == 0 {
		gap = 40
	}
	return float64(b) * (o.WminNM + gap)
}

// CellChange records what the transform did to one cell.
type CellChange struct {
	Name string
	// WidthBeforeNM and WidthAfterNM are the cell widths around the
	// transform.
	WidthBeforeNM, WidthAfterNM float64
	// Penalty is the fractional width increase (the paper's area penalty).
	Penalty float64
	// UpsizedDevices counts transistors widened to Wmin.
	UpsizedDevices int
	// AlignedDevices counts transistors moved onto a band.
	AlignedDevices int
	// RelocatedColumns counts freshly added poly columns.
	RelocatedColumns int
}

// Changed reports whether the cell was modified at all.
func (ch CellChange) Changed() bool {
	return ch.UpsizedDevices > 0 || ch.AlignedDevices > 0 || ch.RelocatedColumns > 0
}

// AlignCell applies the restriction to a single cell, returning the
// transformed copy and the change record. The input cell is not modified.
func AlignCell(c *celllib.Cell, opt Options) (celllib.Cell, CellChange, error) {
	if c == nil {
		return celllib.Cell{}, CellChange{}, errors.New("alignactive: nil cell")
	}
	if err := opt.Validate(); err != nil {
		return celllib.Cell{}, CellChange{}, err
	}
	out := *c
	out.Transistors = append([]celllib.Transistor(nil), c.Transistors...)
	out.Pins = append([]celllib.Pin(nil), c.Pins...)
	change := CellChange{Name: c.Name, WidthBeforeNM: c.WidthNM, WidthAfterNM: c.WidthNM}

	// Pass 1: upsizing (Section 2.2) and identification of critical devices.
	critical := make([]int, 0, len(out.Transistors))
	for i := range out.Transistors {
		t := &out.Transistors[i]
		if t.WidthNM < opt.WminNM {
			critical = append(critical, i)
			if t.WidthNM != opt.WminNM {
				t.WidthNM = opt.WminNM
				change.UpsizedDevices++
			}
		}
	}
	if len(critical) == 0 {
		return out, change, nil
	}

	// Pass 2: band assignment per (type, column). Distinct original offsets
	// within a column occupy bands in order; offsets beyond the band budget
	// overflow and must relocate.
	type slotKey struct {
		typ celllib.DeviceType
		col int
		off float64
	}
	slots := make(map[slotKey][]int)
	for _, i := range critical {
		t := out.Transistors[i]
		k := slotKey{t.Type, t.Column, t.YOffsetNM}
		slots[k] = append(slots[k], i)
	}
	// Distinct offsets per (type, column), in ascending offset order so the
	// base region lands on band 0 deterministically.
	type colKey struct {
		typ celllib.DeviceType
		col int
	}
	colOffsets := make(map[colKey][]float64)
	for k := range slots {
		ck := colKey{k.typ, k.col}
		colOffsets[ck] = append(colOffsets[ck], k.off)
	}
	for _, offs := range colOffsets {
		sort.Float64s(offs)
	}
	// Fixed obstacles: non-critical devices never move, so a band whose
	// lateral range overlaps one in the same column is unusable there.
	isCritical := make(map[int]bool, len(critical))
	for _, i := range critical {
		isCritical[i] = true
	}
	fixedRanges := make(map[colKey][][2]float64)
	for i := range out.Transistors {
		if isCritical[i] {
			continue
		}
		t := out.Transistors[i]
		ck := colKey{t.Type, t.Column}
		fixedRanges[ck] = append(fixedRanges[ck], [2]float64{t.YOffsetNM, t.YOffsetNM + t.WidthNM})
	}
	bandFree := func(ck colKey, b int) bool {
		lo := opt.bandOffset(b)
		hi := lo + opt.WminNM
		for _, r := range fixedRanges[ck] {
			if lo < r[1] && r[0] < hi {
				return false
			}
		}
		return true
	}
	// Overflow units: (column, offset) pairs shared across device types so
	// an n/p pair relocates into one shared fresh column.
	type overflowKey struct {
		col int
		off float64
	}
	overflow := make(map[overflowKey]bool)
	for ck, offs := range colOffsets {
		used := make([]bool, opt.Bands)
		for _, off := range offs {
			k := slotKey{ck.typ, ck.col, off}
			assigned := -1
			for b := 0; b < opt.Bands; b++ {
				if !used[b] && bandFree(ck, b) {
					assigned = b
					break
				}
			}
			if assigned < 0 {
				overflow[overflowKey{ck.col, off}] = true
				continue
			}
			used[assigned] = true
			band := opt.bandOffset(assigned)
			for _, i := range slots[k] {
				out.Transistors[i].YOffsetNM = band
				change.AlignedDevices++
			}
		}
	}

	// Pass 3: relocate overflow slots into fresh columns at the cell edge.
	if len(overflow) > 0 {
		usedCols := int(math.Round(out.WidthNM/out.PolyPitchNM)) - 1
		keys := make([]overflowKey, 0, len(overflow))
		for k := range overflow {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].col != keys[b].col {
				return keys[a].col < keys[b].col
			}
			return keys[a].off < keys[b].off
		})
		for n, k := range keys {
			newCol := usedCols + n
			for _, typ := range []celllib.DeviceType{celllib.NFET, celllib.PFET} {
				sk := slotKey{typ, k.col, k.off}
				for _, i := range slots[sk] {
					out.Transistors[i].Column = newCol
					out.Transistors[i].YOffsetNM = opt.bandOffset(0)
					change.AlignedDevices++
				}
			}
		}
		change.RelocatedColumns = len(keys)
		out.WidthNM += float64(len(keys)) * out.PolyPitchNM
	}
	change.WidthAfterNM = out.WidthNM
	change.Penalty = out.WidthNM/c.WidthNM - 1

	if err := verifyNoStacking(&out); err != nil {
		return celllib.Cell{}, CellChange{}, fmt.Errorf("alignactive: cell %s: %w", c.Name, err)
	}
	if err := out.Validate(); err != nil {
		return celllib.Cell{}, CellChange{}, fmt.Errorf("alignactive: transformed cell invalid: %w", err)
	}
	return out, change, nil
}

// verifyNoStacking asserts that no two same-type devices in one column
// overlap laterally after the transform — the geometric invariant the
// relocation pass must guarantee.
func verifyNoStacking(c *celllib.Cell) error {
	type colKey struct {
		typ celllib.DeviceType
		col int
	}
	byCol := make(map[colKey][]int)
	for i, t := range c.Transistors {
		k := colKey{t.Type, t.Column}
		byCol[k] = append(byCol[k], i)
	}
	for k, idxs := range byCol {
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				ta, tb := c.Transistors[idxs[a]], c.Transistors[idxs[b]]
				if ta.YOffsetNM < tb.YOffsetNM+tb.WidthNM && tb.YOffsetNM < ta.YOffsetNM+ta.WidthNM {
					return fmt.Errorf("devices %s and %s overlap in column %d",
						ta.Name, tb.Name, k.col)
				}
			}
		}
	}
	return nil
}

// LibraryReport aggregates a whole-library transform (Table 2).
type LibraryReport struct {
	// Library is the transformed library.
	Library *celllib.Library
	// Changes has one entry per cell, in library order.
	Changes []CellChange
	// CellsWithPenalty counts cells whose width grew.
	CellsWithPenalty int
	// MinPenalty and MaxPenalty summarize the penalized cells (zero when
	// none pay).
	MinPenalty, MaxPenalty float64
	// MeanPenalty averages over penalized cells only.
	MeanPenalty float64
}

// PenaltyShare returns the fraction of cells paying area.
func (r *LibraryReport) PenaltyShare() float64 {
	if len(r.Changes) == 0 {
		return 0
	}
	return float64(r.CellsWithPenalty) / float64(len(r.Changes))
}

// AlignLibrary applies the restriction to every cell.
func AlignLibrary(lib *celllib.Library, opt Options) (*LibraryReport, error) {
	if lib == nil {
		return nil, errors.New("alignactive: nil library")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	rep := &LibraryReport{
		Library: &celllib.Library{Name: lib.Name + "-aligned", NodeNM: lib.NodeNM},
	}
	var sum float64
	for i := range lib.Cells {
		aligned, change, err := AlignCell(&lib.Cells[i], opt)
		if err != nil {
			return nil, err
		}
		rep.Library.Cells = append(rep.Library.Cells, aligned)
		rep.Changes = append(rep.Changes, change)
		if change.Penalty > 1e-12 {
			rep.CellsWithPenalty++
			sum += change.Penalty
			if rep.MinPenalty == 0 || change.Penalty < rep.MinPenalty {
				rep.MinPenalty = change.Penalty
			}
			if change.Penalty > rep.MaxPenalty {
				rep.MaxPenalty = change.Penalty
			}
		}
	}
	if rep.CellsWithPenalty > 0 {
		rep.MeanPenalty = sum / float64(rep.CellsWithPenalty)
	}
	if err := rep.Library.Validate(); err != nil {
		return nil, fmt.Errorf("alignactive: aligned library invalid: %w", err)
	}
	return rep, nil
}
