package alignactive

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/celllib"
)

func nangate(t *testing.T) *celllib.Library {
	t.Helper()
	lib, err := celllib.NangateLike45()
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestOptionsValidate(t *testing.T) {
	if (Options{WminNM: 109, Bands: 1}).Validate() != nil {
		t.Fatal("valid options rejected")
	}
	for _, o := range []Options{
		{WminNM: 0, Bands: 1},
		{WminNM: 109, Bands: 0},
		{WminNM: 109, Bands: 3},
		{WminNM: 109, Bands: 1, BandGapNM: -1},
	} {
		if o.Validate() == nil {
			t.Errorf("options %+v should be invalid", o)
		}
	}
}

// The Fig. 3.2 regression: AOI222_X1 widens by ≈ 9 % under one-band
// alignment.
func TestAOI222X1WidensNinePercent(t *testing.T) {
	lib := nangate(t)
	cell, err := lib.Cell("AOI222_X1")
	if err != nil {
		t.Fatal(err)
	}
	aligned, change, err := AlignCell(cell, Options{WminNM: 109, Bands: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(change.Penalty-0.0909) > 0.01 {
		t.Fatalf("AOI222_X1 penalty %.4f, want ≈ 0.091", change.Penalty)
	}
	if change.RelocatedColumns != 1 {
		t.Fatalf("relocated columns: %d", change.RelocatedColumns)
	}
	if aligned.WidthNM <= cell.WidthNM {
		t.Fatal("cell should widen")
	}
	// All critical n-devices end up on the single band.
	for _, tr := range aligned.Transistors {
		if tr.WidthNM < 109 {
			t.Fatalf("device %s not upsized: %v", tr.Name, tr.WidthNM)
		}
	}
	// Pins retained.
	if len(aligned.Pins) != len(cell.Pins) {
		t.Fatal("pins must be retained")
	}
	for i := range aligned.Pins {
		if aligned.Pins[i] != cell.Pins[i] {
			t.Fatal("pin moved")
		}
	}
}

// The Table 2 (45 nm column) regression: exactly 4 of 134 cells pay area,
// between 4 % and ~14 %.
func TestNangateLibraryTable2Column(t *testing.T) {
	lib := nangate(t)
	rep, err := AlignLibrary(lib, Options{WminNM: 109, Bands: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsWithPenalty != 4 {
		t.Fatalf("impacted cells: %d, want 4", rep.CellsWithPenalty)
	}
	if rep.MinPenalty < 0.035 || rep.MinPenalty > 0.05 {
		t.Fatalf("min penalty %.3f, want ≈ 0.04", rep.MinPenalty)
	}
	if rep.MaxPenalty < 0.12 || rep.MaxPenalty > 0.16 {
		t.Fatalf("max penalty %.3f, want ≈ 0.14", rep.MaxPenalty)
	}
	if got := rep.PenaltyShare(); math.Abs(got-4.0/134) > 1e-9 {
		t.Fatalf("penalty share: %v", got)
	}
	if err := rep.Library.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Library.Cells) != 134 {
		t.Fatalf("aligned library size: %d", len(rep.Library.Cells))
	}
}

// The two-band variant must eliminate all area penalty (Table 2).
func TestTwoBandsZeroPenalty(t *testing.T) {
	for _, build := range []func() (*celllib.Library, error){
		celllib.NangateLike45, celllib.Commercial65,
	} {
		lib, err := build()
		if err != nil {
			t.Fatal(err)
		}
		wmin := 109.0
		if lib.NodeNM == 65 {
			wmin = 112
		}
		rep, err := AlignLibrary(lib, Options{WminNM: wmin, Bands: 2})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CellsWithPenalty != 0 {
			t.Fatalf("%s: two bands should cost nothing, %d cells pay", lib.Name, rep.CellsWithPenalty)
		}
		if rep.MaxPenalty != 0 {
			t.Fatalf("%s: max penalty %v", lib.Name, rep.MaxPenalty)
		}
	}
}

// The Table 2 (65 nm column) regression: about 20 % of cells pay, in the
// 10 %–70 % band (our geometric model tops out near 50 %, see
// EXPERIMENTS.md).
func TestCommercial65Table2Column(t *testing.T) {
	lib, err := celllib.Commercial65()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AlignLibrary(lib, Options{WminNM: 112, Bands: 1})
	if err != nil {
		t.Fatal(err)
	}
	share := rep.PenaltyShare()
	if share < 0.15 || share > 0.24 {
		t.Fatalf("penalized share %.3f, want ≈ 0.20", share)
	}
	if rep.MinPenalty < 0.09 || rep.MinPenalty > 0.13 {
		t.Fatalf("min penalty %.3f, want ≈ 0.10", rep.MinPenalty)
	}
	if rep.MaxPenalty < 0.35 || rep.MaxPenalty > 0.72 {
		t.Fatalf("max penalty %.3f, want within the published 0.10–0.70 band", rep.MaxPenalty)
	}
}

// Alignment is idempotent: running the transform on an already aligned
// library changes nothing further.
func TestAlignmentIdempotent(t *testing.T) {
	lib := nangate(t)
	opt := Options{WminNM: 109, Bands: 1}
	rep1, err := AlignLibrary(lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := AlignLibrary(rep1.Library, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CellsWithPenalty != 0 {
		t.Fatalf("second pass should be free, %d cells pay", rep2.CellsWithPenalty)
	}
	for i := range rep2.Changes {
		if rep2.Changes[i].WidthAfterNM != rep1.Changes[i].WidthAfterNM {
			t.Fatalf("cell %s width changed on second pass", rep2.Changes[i].Name)
		}
	}
}

// After one-band alignment, every critical active sits at the band offset —
// the inter-cell correlation invariant the whole paper rests on.
func TestAllCriticalDevicesOnBand(t *testing.T) {
	lib := nangate(t)
	opt := Options{WminNM: 109, Bands: 1}
	rep, err := AlignLibrary(lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Library.Cells {
		c := &rep.Library.Cells[i]
		for _, tr := range c.Transistors {
			if tr.WidthNM < opt.WminNM {
				t.Fatalf("%s/%s below Wmin after alignment", c.Name, tr.Name)
			}
			if tr.WidthNM == opt.WminNM && tr.YOffsetNM != 0 {
				t.Fatalf("%s/%s critical device off band: %v", c.Name, tr.Name, tr.YOffsetNM)
			}
		}
	}
}

func TestAlignCellErrors(t *testing.T) {
	if _, _, err := AlignCell(nil, Options{WminNM: 1, Bands: 1}); err == nil {
		t.Error("nil cell")
	}
	lib := nangate(t)
	c, _ := lib.Cell("INV_X1")
	if _, _, err := AlignCell(c, Options{WminNM: -1, Bands: 1}); err == nil {
		t.Error("bad options")
	}
	if _, err := AlignLibrary(nil, Options{WminNM: 1, Bands: 1}); err == nil {
		t.Error("nil library")
	}
}

func TestUntouchedCellsUnchanged(t *testing.T) {
	lib := nangate(t)
	fill, _ := lib.Cell("FILLCELL_X4")
	aligned, change, err := AlignCell(fill, Options{WminNM: 109, Bands: 1})
	if err != nil {
		t.Fatal(err)
	}
	if change.Changed() {
		t.Fatalf("fill cell should be untouched: %+v", change)
	}
	if aligned.WidthNM != fill.WidthNM {
		t.Fatal("fill cell width changed")
	}
}

// Property: the transform never shrinks a cell and never produces stacking
// violations, for any Wmin.
func TestQuickAlignInvariants(t *testing.T) {
	lib := nangate(t)
	f := func(rawWmin uint16, twoBands bool) bool {
		wmin := 61 + float64(rawWmin%200)
		bands := 1
		if twoBands {
			bands = 2
		}
		opt := Options{WminNM: wmin, Bands: bands}
		for i := range lib.Cells {
			aligned, change, err := AlignCell(&lib.Cells[i], opt)
			if err != nil {
				return false
			}
			if aligned.WidthNM < lib.Cells[i].WidthNM-1e-9 {
				return false
			}
			if change.Penalty < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
