package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Error("single edge should error")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("flat edges should error")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("decreasing edges should error")
	}
	h, err := NewHistogram([]float64{0, 1, 2})
	if err != nil || len(h.Counts) != 2 {
		t.Fatalf("valid histogram: %v %v", h, err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 10, 20, 30})
	for _, x := range []float64{0, 5, 9.999} {
		h.Add(x)
	}
	h.Add(10) // left-closed second bin
	h.Add(30) // right edge goes to last bin
	h.Add(-1) // under
	h.Add(31) // over
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("counts: %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over: %v %v", h.Under, h.Over)
	}
	if h.Total() != 5 {
		t.Fatalf("total: %v", h.Total())
	}
}

func TestHistogramShares(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 1, 2})
	sh := h.Shares()
	if sh[0] != 0 || sh[1] != 0 {
		t.Fatal("empty histogram shares should be zero")
	}
	h.AddWeighted(0.5, 3)
	h.AddWeighted(1.5, 1)
	sh = h.Shares()
	if math.Abs(sh[0]-0.75) > 1e-12 || math.Abs(sh[1]-0.25) > 1e-12 {
		t.Fatalf("shares: %v", sh)
	}
}

func TestShareBelow(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 10, 20})
	h.AddWeighted(5, 10)
	h.AddWeighted(15, 10)
	if s := h.ShareBelow(10); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("ShareBelow(10): %v", s)
	}
	if s := h.ShareBelow(15); math.Abs(s-0.75) > 1e-12 {
		t.Fatalf("ShareBelow(15) with partial bin: %v", s)
	}
	if s := h.ShareBelow(-5); s != 0 {
		t.Fatalf("ShareBelow below range: %v", s)
	}
	if s := h.ShareBelow(100); s != 1 {
		t.Fatalf("ShareBelow above range: %v", s)
	}
	empty, _ := NewHistogram([]float64{0, 1})
	if s := empty.ShareBelow(0.5); s != 0 {
		t.Fatalf("empty ShareBelow: %v", s)
	}
}

func TestBinCentersAndMean(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 2, 4})
	c := h.BinCenters()
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("centers: %v", c)
	}
	if !math.IsNaN(h.MeanValue()) {
		t.Fatal("empty mean should be NaN")
	}
	h.AddWeighted(1, 1)
	h.AddWeighted(3, 3)
	if m := h.MeanValue(); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("mean value: %v", m)
	}
}

// Property: total in-range weight equals the number of in-range samples, and
// shares always sum to 1 for non-empty histograms.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, err := NewHistogram(UniformEdges(0, 1, 1+r.Intn(10)))
		if err != nil {
			return false
		}
		n := 1 + r.Intn(500)
		inRange := 0
		for i := 0; i < n; i++ {
			x := r.Float64()*1.5 - 0.25
			h.Add(x)
			if x >= 0 && x <= 1 {
				inRange++
			}
		}
		if math.Abs(h.Total()-float64(inRange)) > 1e-9 {
			return false
		}
		if inRange == 0 {
			return true
		}
		var sum float64
		for _, s := range h.Shares() {
			if s < 0 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ShareBelow is monotone non-decreasing in x.
func TestQuickShareBelowMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, _ := NewHistogram(UniformEdges(0, 100, 8))
		for i := 0; i < 200; i++ {
			h.Add(r.Float64() * 100)
		}
		prev := -1.0
		for x := -10.0; x <= 110; x += 3.7 {
			s := h.ShareBelow(x)
			if s+1e-12 < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
