// Package stat provides the descriptive statistics used by the growth
// simulators, the Monte Carlo engine and the experiment reports: moments,
// quantiles, correlation, online (Welford) accumulation, histograms and
// binomial confidence intervals.
//
//yield:compute
package stat

import (
	"errors"
	"math"
	"sort"

	"github.com/cnfet/yieldlab/internal/numeric"
)

// ErrEmpty is returned when a statistic is requested for an empty sample.
var ErrEmpty = errors.New("stat: empty sample")

// Mean returns the arithmetic mean of xs (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return numeric.SumSlice(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var k numeric.Kahan
	for _, x := range xs {
		d := x - m
		k.Add(d * d)
	}
	return k.Sum() / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Corr returns the Pearson correlation coefficient between xs and ys.
// It returns NaN when either sample is constant or the lengths differ.
func Corr(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy numeric.Kahan
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy.Add(dx * dy)
		sxx.Add(dx * dx)
		syy.Add(dy * dy)
	}
	den := math.Sqrt(sxx.Sum() * syy.Sum())
	if den == 0 {
		return math.NaN()
	}
	return sxy.Sum() / den
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[n-1]
	}
	h := p * float64(n-1)
	i := int(math.Floor(h))
	if i >= n-1 {
		return s[n-1]
	}
	frac := h - float64(i)
	return s[i] + frac*(s[i+1]-s[i])
}

// MinMax returns the extrema of xs (NaNs for an empty slice).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Welford accumulates count, mean and variance online in a single pass.
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running unbiased variance (NaN for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the running mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Merge combines another accumulator into w (parallel reduction).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// WilsonInterval returns the Wilson score interval for a binomial proportion
// with k successes out of n trials at z standard deviations (z=1.96 for 95%).
func WilsonInterval(k, n int64, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	z2 := z * z
	den := 1 + z2/float64(n)
	center := (p + z2/(2*float64(n))) / den
	half := z * math.Sqrt(p*(1-p)/float64(n)+z2/(4*float64(n)*float64(n))) / den
	lo = numeric.Clamp(center-half, 0, 1)
	hi = numeric.Clamp(center+half, 0, 1)
	return lo, hi
}
