package stat

import (
	"errors"
	"fmt"
	"math"

	"github.com/cnfet/yieldlab/internal/numeric"
)

// Histogram is a weighted histogram over contiguous bins defined by strictly
// increasing edges. Bin i covers [Edges[i], Edges[i+1]); the last bin is
// closed on the right. Values outside the range are counted in Under/Over.
type Histogram struct {
	Edges  []float64
	Counts []float64
	Under  float64
	Over   float64
}

// NewHistogram builds an empty histogram with the given edges (≥ 2, strictly
// increasing).
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, errors.New("stat: histogram needs at least 2 edges")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("stat: histogram edges not increasing at %d", i)
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Histogram{Edges: e, Counts: make([]float64, len(edges)-1)}, nil
}

// UniformEdges returns n+1 evenly spaced edges covering [lo, hi].
func UniformEdges(lo, hi float64, n int) []float64 {
	return numeric.Linspace(lo, hi, n+1)
}

// Add records value x with weight 1.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted records value x with weight w.
func (h *Histogram) AddWeighted(x, w float64) {
	n := len(h.Counts)
	if x < h.Edges[0] {
		h.Under += w
		return
	}
	if x > h.Edges[n] {
		h.Over += w
		return
	}
	if x == h.Edges[n] {
		h.Counts[n-1] += w
		return
	}
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if h.Edges[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	h.Counts[lo] += w
}

// Total returns the in-range weight.
func (h *Histogram) Total() float64 { return numeric.SumSlice(h.Counts) }

// Shares returns per-bin fractions of the in-range weight; all zeros when
// the histogram is empty.
func (h *Histogram) Shares() []float64 {
	out := make([]float64, len(h.Counts))
	tot := h.Total()
	if tot == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = c / tot
	}
	return out
}

// ShareBelow returns the fraction of in-range weight in bins entirely below x.
// Bins partially covered contribute proportionally (linear within bin).
func (h *Histogram) ShareBelow(x float64) float64 {
	tot := h.Total()
	if tot == 0 {
		return 0
	}
	var acc numeric.Kahan
	for i, c := range h.Counts {
		lo, hi := h.Edges[i], h.Edges[i+1]
		switch {
		case x >= hi:
			acc.Add(c)
		case x <= lo:
			// nothing
		default:
			acc.Add(c * (x - lo) / (hi - lo))
		}
	}
	return acc.Sum() / tot
}

// BinCenters returns the midpoints of all bins.
func (h *Histogram) BinCenters() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = 0.5 * (h.Edges[i] + h.Edges[i+1])
	}
	return out
}

// MeanValue returns the weight-averaged bin-center value, a midpoint
// approximation of the sample mean.
func (h *Histogram) MeanValue() float64 {
	tot := h.Total()
	if tot == 0 {
		return math.NaN()
	}
	var acc numeric.Kahan
	for i, c := range h.Counts {
		acc.Add(c * 0.5 * (h.Edges[i] + h.Edges[i+1]))
	}
	return acc.Sum() / tot
}
