package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("Mean: %v", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7, 1e-12) {
		t.Fatalf("Variance: %v", v)
	}
	if s := StdDev(xs); !almost(s, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev: %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("degenerate inputs should be NaN")
	}
}

func TestCorr(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Corr(xs, ys); !almost(c, 1, 1e-12) {
		t.Fatalf("perfect corr: %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Corr(xs, neg); !almost(c, -1, 1e-12) {
		t.Fatalf("perfect anticorr: %v", c)
	}
	if !math.IsNaN(Corr(xs, []float64{1, 1, 1, 1, 1})) {
		t.Fatal("constant series should give NaN")
	}
	if !math.IsNaN(Corr(xs, ys[:3])) {
		t.Fatal("length mismatch should give NaN")
	}
}

func TestCorrIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 200_000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = r.NormFloat64(), r.NormFloat64()
	}
	if c := Corr(xs, ys); math.Abs(c) > 0.01 {
		t.Fatalf("independent corr too large: %v", c)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0: %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1: %v", q)
	}
	if q := Quantile(xs, 0.5); !almost(q, 2.5, 1e-12) {
		t.Fatalf("median: %v", q)
	}
	if q := Quantile(xs, 1.0/3); !almost(q, 2, 1e-12) {
		t.Fatalf("q33: %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax: %v %v", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Fatal("empty MinMax should be NaN")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 5
		w.Add(xs[i])
	}
	if !almost(w.Mean(), Mean(xs), 1e-10) {
		t.Fatalf("Welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almost(w.Variance(), Variance(xs), 1e-8) {
		t.Fatalf("Welford var %v vs %v", w.Variance(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Fatalf("N: %d", w.N())
	}
	if se := w.StdErr(); !almost(se, w.StdDev()/math.Sqrt(1000), 1e-12) {
		t.Fatalf("StdErr: %v", se)
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	var whole, a, b Welford
	for i, x := range xs {
		whole.Add(x)
		if i < 200 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() || !almost(a.Mean(), whole.Mean(), 1e-12) || !almost(a.Variance(), whole.Variance(), 1e-10) {
		t.Fatalf("merge mismatch: %v/%v vs %v/%v", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() {
		t.Fatal("merge into empty should copy")
	}
	before := a
	a.Merge(Welford{})
	if a != before {
		t.Fatal("merging empty should be a no-op")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("n=0: %v %v", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100, 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Fatalf("should contain p: %v %v", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide: %v", hi-lo)
	}
	lo, hi = WilsonInterval(0, 1000, 1.96)
	if lo != 0 || hi < 1e-4 || hi > 0.01 {
		t.Fatalf("zero successes: %v %v", lo, hi)
	}
	lo, hi = WilsonInterval(1000, 1000, 1.96)
	if hi != 1 || lo > 1 || lo < 0.99 {
		t.Fatalf("all successes: %v %v", lo, hi)
	}
}

// Property: merging a random split equals whole-sample accumulation.
func TestQuickWelfordMergeSplit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		cut := 1 + r.Intn(n-1)
		var whole, a, b Welford
		for i := 0; i < n; i++ {
			x := r.NormFloat64()
			whole.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), 1e-9) &&
			almost(a.Variance(), whole.Variance(), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Wilson interval always contains the point estimate k/n.
func TestQuickWilsonContainsEstimate(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int64(nRaw%1000) + 1
		k := int64(kRaw) % (n + 1)
		lo, hi := WilsonInterval(k, n, 1.96)
		p := float64(k) / float64(n)
		return lo <= p+1e-12 && p <= hi+1e-12 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
