// Package numeric supplies the small set of numerical routines the yield
// models need and that the Go standard library does not provide: bracketing
// root finders, Simpson quadrature, monotone linear interpolation, stable
// log-space accumulation and the normal distribution special functions.
//
// The implementations favour robustness over raw speed; every routine is
// deterministic and allocation-light so it can sit inside Monte Carlo inner
// loops and testing/quick properties.
//
//yield:compute
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned by root finders when f(lo) and f(hi) do not
// straddle zero.
var ErrNoBracket = errors.New("numeric: root is not bracketed")

// ErrMaxIter is returned when an iterative routine fails to converge within
// its iteration budget.
var ErrMaxIter = errors.New("numeric: maximum iterations exceeded")

// Bisect finds x in [lo, hi] with f(x) = 0 for a continuous f whose sign
// differs at the endpoints. It converges unconditionally and is the fallback
// used throughout the repository for monotone inversions (width from failure
// probability, truncated-normal location from target mean, ...).
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}
	for i := 0; i < maxIter; i++ {
		mid := 0.5 * (lo + hi)
		if hi-lo <= tol || mid == lo || mid == hi {
			return mid, nil
		}
		fmid := f(mid)
		if fmid == 0 {
			return mid, nil
		}
		if math.Signbit(fmid) == math.Signbit(flo) {
			lo, flo = mid, fmid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), ErrMaxIter
}

// Brent finds a root of f in [lo, hi] using Brent's method (inverse quadratic
// interpolation with bisection safeguards). It needs the same sign change as
// Bisect but typically converges in far fewer function evaluations, which
// matters when f is itself an expensive renewal-model evaluation.
func Brent(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	a, b := lo, hi
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < maxIter; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.Nextafter(math.Abs(b), math.Inf(1))*0x1p-52 + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if math.Signbit(fb) == math.Signbit(fc) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, ErrMaxIter
}

// Simpson integrates f over [a, b] with n panels (n is rounded up to even).
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 != 0 {
		n++
	}
	h := (b - a) / float64(n)
	var odd, even Kahan
	for i := 1; i < n; i += 2 {
		odd.Add(f(a + float64(i)*h))
	}
	for i := 2; i < n; i += 2 {
		even.Add(f(a + float64(i)*h))
	}
	return h / 3 * (f(a) + f(b) + 4*odd.Sum() + 2*even.Sum())
}

// Kahan is a compensated accumulator. The zero value is ready to use.
type Kahan struct {
	sum float64
	c   float64
}

// Add accumulates x with Kahan–Babuška compensation.
func (k *Kahan) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *Kahan) Sum() float64 { return k.sum + k.c }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var k Kahan
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// LogSumExp returns log(Σ exp(xi)) without overflow. It returns -Inf for an
// empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var k Kahan
	for _, x := range xs {
		k.Add(math.Exp(x - m))
	}
	return m + math.Log(k.Sum())
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced points from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// Logspace returns n logarithmically spaced points from a to b inclusive;
// a and b must be positive.
func Logspace(a, b float64, n int) []float64 {
	pts := Linspace(math.Log(a), math.Log(b), n)
	for i, p := range pts {
		pts[i] = math.Exp(p)
	}
	if n > 0 {
		pts[0], pts[n-1] = a, b
	}
	return pts
}
