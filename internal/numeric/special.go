package numeric

import "math"

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormalCDF returns the standard normal cumulative distribution at x,
// computed through erfc for accuracy in both tails.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalSF returns the standard normal survival function 1 - Φ(x) with full
// relative accuracy in the upper tail.
func NormalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) using Acklam's rational approximation
// followed by one Halley refinement step, accurate to ~1e-15 over (0,1).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley step: drives the approximation to near machine precision.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(0.5*x*x)
	x -= u / (1 + 0.5*x*u)
	return x
}

// NormalCDFIntegral returns ∫_{-∞}^{u} Φ(v) dv = u·Φ(u) + φ(u), the
// antiderivative of the standard normal CDF (up to the constant fixed by the
// u → -∞ limit being 0).
func NormalCDFIntegral(u float64) float64 {
	if math.IsInf(u, -1) {
		return 0
	}
	return u*NormalCDF(u) + NormalPDF(u)
}

// Log1mExp returns log(1 - exp(x)) for x < 0 using the numerically stable
// split recommended by Mächler.
func Log1mExp(x float64) float64 {
	if x >= 0 {
		return math.NaN()
	}
	if x > -math.Ln2 {
		return math.Log(-math.Expm1(x))
	}
	return math.Log1p(-math.Exp(x))
}

// LinearInterp is a piecewise-linear interpolant over strictly increasing
// abscissae. Evaluations outside the range clamp to the end values.
type LinearInterp struct {
	xs, ys []float64
}

// NewLinearInterp builds an interpolant; xs must be strictly increasing and
// the same length as ys (≥ 1 point).
func NewLinearInterp(xs, ys []float64) (*LinearInterp, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errMismatch(len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if !(xs[i] > xs[i-1]) {
			return nil, errNotIncreasing(i, xs[i-1], xs[i])
		}
	}
	cx := make([]float64, len(xs))
	cy := make([]float64, len(ys))
	copy(cx, xs)
	copy(cy, ys)
	return &LinearInterp{xs: cx, ys: cy}, nil
}

// At evaluates the interpolant at x.
func (li *LinearInterp) At(x float64) float64 {
	n := len(li.xs)
	if x <= li.xs[0] {
		return li.ys[0]
	}
	if x >= li.xs[n-1] {
		return li.ys[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if li.xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - li.xs[lo]) / (li.xs[hi] - li.xs[lo])
	return li.ys[lo] + t*(li.ys[hi]-li.ys[lo])
}

// InverseAt solves li(x) = y for x assuming ys is monotone (either
// direction); it returns the clamped endpoint when y is out of range.
func (li *LinearInterp) InverseAt(y float64) float64 {
	n := len(li.xs)
	asc := li.ys[n-1] >= li.ys[0]
	lo, hi := 0, n-1
	yLo, yHi := li.ys[0], li.ys[n-1]
	if asc {
		if y <= yLo {
			return li.xs[0]
		}
		if y >= yHi {
			return li.xs[n-1]
		}
	} else {
		if y >= yLo {
			return li.xs[0]
		}
		if y <= yHi {
			return li.xs[n-1]
		}
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if (li.ys[mid] <= y) == asc {
			lo = mid
		} else {
			hi = mid
		}
	}
	y0, y1 := li.ys[lo], li.ys[hi]
	if y1 == y0 {
		return li.xs[lo]
	}
	t := (y - y0) / (y1 - y0)
	return li.xs[lo] + t*(li.xs[hi]-li.xs[lo])
}

type interpError string

func (e interpError) Error() string { return string(e) }

func errMismatch(nx, ny int) error {
	return interpError("numeric: interp needs equal, non-empty xs/ys (got " +
		itoa(nx) + ", " + itoa(ny) + ")")
}

func errNotIncreasing(i int, a, b float64) error {
	return interpError("numeric: interp xs not strictly increasing at index " + itoa(i))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
