package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBisectFindsRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Fatalf("Bisect: got %v want sqrt(2)", x)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 1, 1e-12, 100); err != nil || x != 0 {
		t.Fatalf("lo endpoint root: got %v, %v", x, err)
	}
	if x, err := Bisect(f, -1, 0, 1e-12, 100); err != nil || x != 0 {
		t.Fatalf("hi endpoint root: got %v, %v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-12, 100); err == nil {
		t.Fatal("expected ErrNoBracket")
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	funcs := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
	}{
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3},
		{"cos", math.Cos, 1, 2},
		{"steep", func(x float64) float64 { return math.Pow(x, 9) - 0.5 }, 0, 1},
	}
	for _, tc := range funcs {
		xb, err := Bisect(tc.f, tc.lo, tc.hi, 1e-13, 300)
		if err != nil {
			t.Fatalf("%s bisect: %v", tc.name, err)
		}
		xr, err := Brent(tc.f, tc.lo, tc.hi, 1e-13, 200)
		if err != nil {
			t.Fatalf("%s brent: %v", tc.name, err)
		}
		if math.Abs(xb-xr) > 1e-9 {
			t.Errorf("%s: bisect %v vs brent %v", tc.name, xb, xr)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-12, 100); err == nil {
		t.Fatal("expected ErrNoBracket")
	}
}

func TestSimpsonPolynomialExact(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return 3*x*x*x - 2*x + 1 }
	got := Simpson(f, -1, 2, 2)
	want := 3.0/4*(16-1) - (4 - 1) + 3 // ∫ = 3x⁴/4 - x² + x
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Simpson cubic: got %v want %v", got, want)
	}
}

func TestSimpsonSin(t *testing.T) {
	got := Simpson(math.Sin, 0, math.Pi, 200)
	if math.Abs(got-2) > 1e-8 {
		t.Fatalf("Simpson sin: got %v want 2", got)
	}
}

func TestSimpsonOddPanelsRoundedUp(t *testing.T) {
	a := Simpson(math.Sin, 0, math.Pi, 201)
	b := Simpson(math.Sin, 0, math.Pi, 202)
	if a != b {
		t.Fatalf("odd n should round up: %v vs %v", a, b)
	}
}

func TestKahanCompensates(t *testing.T) {
	var k Kahan
	k.Add(1)
	for i := 0; i < 1_000_000; i++ {
		k.Add(1e-16)
	}
	got := k.Sum()
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-13 {
		t.Fatalf("Kahan: got %.17g want %.17g", got, want)
	}
}

func TestLogSumExp(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(xs); math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExp: got %v want log 6", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("empty LogSumExp should be -Inf")
	}
	big := []float64{1000, 1000}
	if got := LogSumExp(big); math.Abs(got-(1000+math.Ln2)) > 1e-9 {
		t.Fatalf("LogSumExp overflow guard: got %v", got)
	}
	if got := LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Fatalf("all -Inf should stay -Inf, got %v", got)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{2.5, 0.9937903346742238},
		{-6, 9.865876450376946e-10},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12*math.Max(1, math.Abs(c.want)) &&
			math.Abs(got-c.want)/c.want > 1e-10 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalSFComplement(t *testing.T) {
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 5} {
		if got := NormalSF(x) + NormalCDF(x); math.Abs(got-1) > 1e-14 {
			t.Errorf("SF+CDF at %v = %v", x, got)
		}
	}
	// Deep tail keeps relative accuracy.
	if got := NormalSF(10); got <= 0 || got > 1e-20 {
		t.Errorf("NormalSF(10) = %v, want ~7.6e-24", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-6, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-9} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-10*math.Max(p, 1e-3) && math.Abs(got-p) > 1e-13 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("edge quantiles should be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-range quantiles should be NaN")
	}
	if NormalQuantile(0.5) != 0 {
		t.Errorf("median should be exactly refined to ~0, got %v", NormalQuantile(0.5))
	}
}

func TestLog1mExp(t *testing.T) {
	for _, x := range []float64{-1e-10, -0.1, -1, -10, -50} {
		want := math.Log1p(-math.Exp(x))
		if x > -1e-8 {
			want = math.Log(-math.Expm1(x))
		}
		if got := Log1mExp(x); math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Errorf("Log1mExp(%v) = %v want %v", x, got, want)
		}
	}
	if !math.IsNaN(Log1mExp(0.5)) {
		t.Error("Log1mExp of positive should be NaN")
	}
}

func TestLinearInterp(t *testing.T) {
	li, err := NewLinearInterp([]float64{0, 1, 3}, []float64{0, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {2, 4}, {3, 6}, {5, 6},
	}
	for _, c := range cases {
		if got := li.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestLinearInterpInverse(t *testing.T) {
	li, _ := NewLinearInterp([]float64{0, 1, 2}, []float64{10, 5, 1})
	for _, y := range []float64{10, 7.5, 5, 3, 1} {
		x := li.InverseAt(y)
		if got := li.At(x); math.Abs(got-y) > 1e-9 {
			t.Errorf("InverseAt(%v): At(%v) = %v", y, x, got)
		}
	}
	if x := li.InverseAt(100); x != 0 {
		t.Errorf("clamp above: got %v", x)
	}
	if x := li.InverseAt(-100); x != 2 {
		t.Errorf("clamp below: got %v", x)
	}
}

func TestLinearInterpErrors(t *testing.T) {
	if _, err := NewLinearInterp(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := NewLinearInterp([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing xs should error")
	}
	if _, err := NewLinearInterp([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestLinspaceLogspace(t *testing.T) {
	ls := Linspace(0, 1, 5)
	if len(ls) != 5 || ls[0] != 0 || ls[4] != 1 || math.Abs(ls[2]-0.5) > 1e-15 {
		t.Fatalf("Linspace: %v", ls)
	}
	if got := Linspace(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1: %v", got)
	}
	if got := Linspace(0, 1, 0); got != nil {
		t.Fatalf("Linspace n=0: %v", got)
	}
	lg := Logspace(1, 100, 3)
	if lg[0] != 1 || lg[2] != 100 || math.Abs(lg[1]-10) > 1e-12 {
		t.Fatalf("Logspace: %v", lg)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

// Property: for random monotone piecewise-linear data, At(InverseAt(y)) == y
// within tolerance for y inside the range.
func TestQuickInterpRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x, y := r.Float64(), r.Float64()
		for i := 0; i < n; i++ {
			xs[i], ys[i] = x, y
			x += 0.01 + r.Float64()
			y += 0.01 + r.Float64()
		}
		li, err := NewLinearInterp(xs, ys)
		if err != nil {
			return false
		}
		for k := 0; k < 10; k++ {
			target := ys[0] + r.Float64()*(ys[n-1]-ys[0])
			if math.Abs(li.At(li.InverseAt(target))-target) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: LogSumExp(xs) >= max(xs) and <= max(xs)+log(n).
func TestQuickLogSumExpBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 700))
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := xs[0]
		for _, v := range xs {
			if v > m {
				m = v
			}
		}
		l := LogSumExp(xs)
		return l >= m-1e-9 && l <= m+math.Log(float64(len(xs)))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumSlice(t *testing.T) {
	if got := SumSlice([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("SumSlice: %v", got)
	}
	if got := SumSlice(nil); got != 0 {
		t.Fatalf("SumSlice(nil): %v", got)
	}
}
