// Package buildinfo reports what binary is running: the module version,
// the VCS revision it was built from, and whether the working tree was
// dirty — all read from the build metadata the Go toolchain already embeds
// (runtime/debug.ReadBuildInfo), so nothing depends on ldflags being set.
// It backs yieldlab.Version(), /healthz, the /metrics build_info gauge and
// cnfetyield -version.
package buildinfo

import (
	"runtime/debug"
	"strings"
	"sync"
)

// Info describes the running binary.
type Info struct {
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, when stamped.
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
	// BuildTime is the VCS commit time (RFC 3339), when stamped.
	BuildTime string `json:"build_time,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the binary's build info, read once and cached.
func Get() Info {
	once.Do(func() {
		cached = Info{Version: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cached.GoVersion = bi.GoVersion
		if bi.Main.Version != "" {
			cached.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.modified":
				cached.Dirty = s.Value == "true"
			case "vcs.time":
				cached.BuildTime = s.Value
			}
		}
	})
	return cached
}

// Version returns a one-line human version string: the module version,
// refined with the short revision and a -dirty marker when the VCS stamp
// is present. Toolchains that stamp a VCS pseudo-version already encode
// the revision (and "+dirty") in Version itself; those markers are not
// appended twice.
func Version() string {
	info := Get()
	v := info.Version
	if rev := info.Revision; rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if !strings.Contains(v, rev) {
			v += "+" + rev
		}
	}
	if info.Dirty && !strings.Contains(v, "dirty") {
		v += "-dirty"
	}
	return v
}
