package buildinfo

import (
	"strings"
	"testing"
)

func TestGetIsStableAndPopulated(t *testing.T) {
	a, b := Get(), b2()
	if a != b {
		t.Fatalf("Get not cached: %+v vs %+v", a, b)
	}
	if a.Version == "" {
		t.Fatal("empty version")
	}
	// Test binaries always embed the toolchain version.
	if a.GoVersion == "" {
		t.Fatal("empty go version")
	}
}

func b2() Info { return Get() }

func TestVersionString(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("empty version string")
	}
	info := Get()
	if !strings.HasPrefix(v, info.Version) {
		t.Fatalf("version %q does not start with module version %q", v, info.Version)
	}
	if info.Revision != "" && !strings.Contains(v, "+") {
		t.Fatalf("version %q lacks revision suffix despite VCS stamp", v)
	}
}
