// Package noisemargin models the failure mode the paper explicitly sets
// aside from count-limited yield (Section 2.1): metallic CNTs that survive
// the removal step short source to drain and degrade static noise margins
// [Zhang 09b]. The paper quotes the consequence — "for practical VLSI
// circuit applications, pRm of greater than 99.99% is required" — and this
// package reproduces that requirement from first principles:
//
//   - each of a device's N CNTs is independently a surviving metallic tube
//     (probability pm·(1-pRm)), a conducting semiconducting tube
//     (probability (1-pm)·(1-pRs)), or removed;
//   - a gate's noise margin is violated when the metallic shunt current is
//     too large relative to the semiconducting drive: M ≥ 1 and M > ρ·S
//     for a tolerable current-ratio threshold ρ;
//   - chip-level noise-limited yield is (1-pViolation)^gates, and the
//     required removal efficiency solves that for the yield target.
//
// The threshold ρ is the device/circuit-level knob ([Zhang 09b] derives it
// from VTC shifts; restoring logic stages relax it [Zolotov 02]). The
// default is calibrated so the published "pRm ≥ 99.99%" requirement is
// reproduced at the paper's 45 nm operating point; see the regression test.
//
//yield:compute
package noisemargin

import (
	"errors"
	"fmt"
	"math"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/numeric"
)

// DefaultRatioThreshold is the tolerable metallic-to-semiconducting
// current ratio ρ (see the package comment).
const DefaultRatioThreshold = 0.15

// Params configures the noise-margin model.
type Params struct {
	// PMetallic is pm.
	PMetallic float64
	// PRemoveMetallic is pRm.
	PRemoveMetallic float64
	// PRemoveSemi is pRs.
	PRemoveSemi float64
	// RatioThreshold is ρ: a gate fails noise margin when the surviving
	// metallic count M satisfies M ≥ 1 and M > ρ·S with S conducting
	// semiconducting tubes. Zero means any surviving m-CNT is fatal.
	RatioThreshold float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"PMetallic", p.PMetallic},
		{"PRemoveMetallic", p.PRemoveMetallic},
		{"PRemoveSemi", p.PRemoveSemi},
	} {
		if v.val < 0 || v.val > 1 || math.IsNaN(v.val) {
			return fmt.Errorf("noisemargin: %s = %g out of [0,1]", v.name, v.val)
		}
	}
	if p.RatioThreshold < 0 || math.IsNaN(p.RatioThreshold) {
		return fmt.Errorf("noisemargin: ratio threshold %g must be ≥ 0", p.RatioThreshold)
	}
	return nil
}

// ViolationProb returns the exact probability that a device whose CNT count
// follows countPMF violates its noise margin, by trinomial expansion over
// (surviving metallic, conducting semiconducting, removed).
func ViolationProb(countPMF dist.PMF, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if countPMF.Len() == 0 {
		return 0, errors.New("noisemargin: empty count distribution")
	}
	qm := p.PMetallic * (1 - p.PRemoveMetallic)
	qs := (1 - p.PMetallic) * (1 - p.PRemoveSemi)
	var acc numeric.Kahan
	for n := 0; n < countPMF.Len(); n++ {
		pn := countPMF.Prob(n)
		if pn == 0 || n == 0 {
			continue
		}
		acc.Add(pn * violationGivenN(n, qm, qs, p.RatioThreshold))
	}
	return numeric.Clamp(acc.Sum(), 0, 1), nil
}

// violationGivenN sums the trinomial probabilities of (M, S) pairs with
// M ≥ 1, S ≥ 1 (the device conducts — an all-failed channel is a count
// failure, not a noise hazard) and M > ρ·S.
func violationGivenN(n int, qm, qs, rho float64) float64 {
	if qm == 0 {
		return 0
	}
	qr := 1 - qm - qs // removed / non-conducting
	if qr < 0 {
		qr = 0
	}
	// logTri(m, s) = log multinomial(n; m, s, n-m-s) · qm^m qs^s qr^(n-m-s)
	logQm, logQs, logQr := math.Log(qm), math.Log(qs), math.Log(qr)
	var total numeric.Kahan
	lgN, _ := math.Lgamma(float64(n + 1))
	for m := 1; m <= n; m++ {
		for s := 1; s <= n-m; s++ {
			if float64(m) <= rho*float64(s) {
				continue
			}
			r := n - m - s
			lgM, _ := math.Lgamma(float64(m + 1))
			lgS, _ := math.Lgamma(float64(s + 1))
			lgR, _ := math.Lgamma(float64(r + 1))
			logP := lgN - lgM - lgS - lgR + float64(m)*logQm + float64(s)*logQs
			if r > 0 {
				if qr == 0 {
					continue
				}
				logP += float64(r) * logQr
			}
			total.Add(math.Exp(logP))
		}
	}
	return total.Sum()
}

// ChipNoiseYield returns the chip-level noise-limited yield (1-p)^gates.
func ChipNoiseYield(pViolation, gates float64) (float64, error) {
	if pViolation < 0 || pViolation > 1 || math.IsNaN(pViolation) {
		return 0, fmt.Errorf("noisemargin: violation probability %g out of [0,1]", pViolation)
	}
	if !(gates >= 0) {
		return 0, fmt.Errorf("noisemargin: gate count %g must be ≥ 0", gates)
	}
	if pViolation == 1 {
		if gates == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return math.Exp(gates * math.Log1p(-pViolation)), nil
}

// RequiredPRm returns the smallest metallic-removal efficiency pRm whose
// chip-level noise-limited yield meets the target — the quantity behind the
// paper's "pRm > 99.99% is required" statement.
func RequiredPRm(countPMF dist.PMF, p Params, gates, desiredYield float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !(desiredYield > 0) || desiredYield >= 1 {
		return 0, fmt.Errorf("noisemargin: desired yield %g out of (0,1)", desiredYield)
	}
	if !(gates > 0) {
		return 0, fmt.Errorf("noisemargin: gate count %g must be positive", gates)
	}
	yieldAt := func(pRm float64) (float64, error) {
		q := p
		q.PRemoveMetallic = pRm
		v, err := ViolationProb(countPMF, q)
		if err != nil {
			return 0, err
		}
		return ChipNoiseYield(v, gates)
	}
	hi, err := yieldAt(1)
	if err != nil {
		return 0, err
	}
	if hi < desiredYield {
		return 0, fmt.Errorf("noisemargin: target yield %g unreachable even at pRm = 1", desiredYield)
	}
	lo, err := yieldAt(0)
	if err != nil {
		return 0, err
	}
	if lo >= desiredYield {
		return 0, nil // even no removal meets the target
	}
	// Bisection on log10(1-pRm) resolves the interesting 1-1e-k region.
	f := func(x float64) float64 {
		pRm := 1 - math.Pow(10, x)
		y, err := yieldAt(pRm)
		if err != nil {
			return math.NaN()
		}
		return y - desiredYield
	}
	x, err := numeric.Bisect(f, -16, 0, 1e-4, 200)
	if err != nil {
		return 0, fmt.Errorf("noisemargin: solving required pRm: %w", err)
	}
	return 1 - math.Pow(10, x), nil
}
