package noisemargin

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rng"
)

func paperParams() Params {
	return Params{
		PMetallic:       0.33,
		PRemoveMetallic: 0.9999,
		PRemoveSemi:     0.30,
		RatioThreshold:  DefaultRatioThreshold,
	}
}

func countAt(t *testing.T, w float64) dist.PMF {
	t.Helper()
	pitch, err := device.CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	m, err := renewal.New(pitch, renewal.WithStep(0.1), renewal.WithMaxWidth(180))
	if err != nil {
		t.Fatal(err)
	}
	pmf, err := m.CountPMF(w)
	if err != nil {
		t.Fatal(err)
	}
	return pmf
}

func TestParamsValidate(t *testing.T) {
	if err := paperParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{PMetallic: -0.1},
		{PMetallic: 0.3, PRemoveMetallic: 1.5},
		{PMetallic: 0.3, PRemoveSemi: math.NaN()},
		{PMetallic: 0.3, RatioThreshold: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestViolationProbAgainstMC(t *testing.T) {
	// Inflated hazard so plain Monte Carlo can verify the trinomial sum.
	p := Params{PMetallic: 0.33, PRemoveMetallic: 0.6, PRemoveSemi: 0.3, RatioThreshold: 0.25}
	pmf := countAt(t, 40)
	want, err := ViolationProb(pmf, p)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	const trials = 200_000
	hits := 0
	for i := 0; i < trials; i++ {
		n := pmf.Sample(r)
		m, s := 0, 0
		for j := 0; j < n; j++ {
			u := r.Float64()
			switch {
			case u < 0.33:
				if r.Float64() >= 0.6 { // metallic survives
					m++
				}
			default:
				if r.Float64() >= 0.3 { // semiconducting survives
					s++
				}
			}
		}
		if m >= 1 && s >= 1 && float64(m) > 0.25*float64(s) {
			hits++
		}
	}
	got := float64(hits) / trials
	se := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 5*se+1e-4 {
		t.Fatalf("MC %v vs analytic %v (se %v)", got, want, se)
	}
}

func TestPerfectRemovalNoViolations(t *testing.T) {
	p := paperParams()
	p.PRemoveMetallic = 1
	v, err := ViolationProb(countAt(t, 100), p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("pRm=1 should eliminate noise hazard, got %v", v)
	}
	// No metallic tubes at all: same.
	p = paperParams()
	p.PMetallic = 0
	v, err = ViolationProb(countAt(t, 100), p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("pm=0 should eliminate noise hazard, got %v", v)
	}
}

func TestViolationMonotoneInPRm(t *testing.T) {
	pmf := countAt(t, 100)
	prev := 1.0
	for _, pRm := range []float64{0.9, 0.99, 0.999, 0.9999} {
		p := paperParams()
		p.PRemoveMetallic = pRm
		v, err := ViolationProb(pmf, p)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("violation prob should fall with pRm: %v at %v", v, pRm)
		}
		prev = v
	}
}

func TestChipNoiseYield(t *testing.T) {
	y, err := ChipNoiseYield(1e-9, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-math.Exp(-0.1)) > 1e-9 {
		t.Fatalf("yield: %v", y)
	}
	if y, _ := ChipNoiseYield(0, 1e8); y != 1 {
		t.Fatal("no hazard")
	}
	if y, _ := ChipNoiseYield(1, 10); y != 0 {
		t.Fatal("certain hazard")
	}
	if _, err := ChipNoiseYield(-0.1, 1); err == nil {
		t.Error("negative prob")
	}
	if _, err := ChipNoiseYield(0.1, -1); err == nil {
		t.Error("negative gates")
	}
}

// The paper's quoted requirement (from [Zhang 09b]): practical VLSI needs
// pRm beyond 99.99%. At the 45 nm operating point (W≈155 nm devices,
// 1e8 of them, 90% yield) the model must land in that regime.
func TestRequiredPRmReproducesPaperClaim(t *testing.T) {
	pmf := countAt(t, 155)
	p := paperParams()
	req, err := RequiredPRm(pmf, p, 1e8, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if req < 0.999 || req > 0.9999999 {
		t.Fatalf("required pRm = %.8f, want in the ≈99.99%% regime", req)
	}
	// And the solution actually meets the target.
	p.PRemoveMetallic = req * 1.0000001
	v, err := ViolationProb(pmf, p)
	if err != nil {
		t.Fatal(err)
	}
	y, err := ChipNoiseYield(v, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	if y < 0.899 {
		t.Fatalf("solution yield %v below target", y)
	}
}

func TestRequiredPRmEdges(t *testing.T) {
	pmf := countAt(t, 155)
	p := paperParams()
	// Tiny chip: no removal needed at a loose threshold.
	p.RatioThreshold = 10
	req, err := RequiredPRm(pmf, p, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if req != 0 {
		t.Fatalf("loose threshold should need no removal, got %v", req)
	}
	if _, err := RequiredPRm(pmf, p, 0, 0.9); err == nil {
		t.Error("zero gates")
	}
	if _, err := RequiredPRm(pmf, p, 10, 1); err == nil {
		t.Error("yield 1")
	}
	bad := p
	bad.PMetallic = 2
	if _, err := RequiredPRm(pmf, bad, 10, 0.9); err == nil {
		t.Error("invalid params")
	}
}

// Property: violation probability increases with pm and decreases with the
// ratio threshold.
func TestQuickViolationMonotonicity(t *testing.T) {
	pmf := countAt(t, 80)
	f := func(raw uint16) bool {
		pm := 0.05 + float64(raw%40)/100
		base := Params{PMetallic: pm, PRemoveMetallic: 0.99, PRemoveSemi: 0.3, RatioThreshold: 0.2}
		v1, e1 := ViolationProb(pmf, base)
		more := base
		more.PMetallic = pm + 0.1
		v2, e2 := ViolationProb(pmf, more)
		loose := base
		loose.RatioThreshold = 0.6
		v3, e3 := ViolationProb(pmf, loose)
		return e1 == nil && e2 == nil && e3 == nil &&
			v2 >= v1-1e-15 && v3 <= v1+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
