package plot

import (
	"math"
	"strings"
	"testing"
)

func TestLineChartRender(t *testing.T) {
	c := &LineChart{
		Title:  "test",
		Series: []Series{{Name: "a", Xs: []float64{0, 1, 2}, Ys: []float64{1, 2, 3}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "test") || !strings.Contains(out, "*") {
		t.Fatalf("chart missing content:\n%s", out)
	}
	if !strings.Contains(out, "a") {
		t.Fatal("legend missing")
	}
}

func TestLineChartLogY(t *testing.T) {
	c := &LineChart{
		LogY: true,
		Series: []Series{{
			Name: "pf",
			Xs:   []float64{1, 2, 3, 4},
			Ys:   []float64{1e-2, 1e-5, 0, 1e-9}, // zero dropped
		}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "e-0") {
		t.Fatalf("log labels missing:\n%s", out)
	}
}

func TestLineChartErrors(t *testing.T) {
	if _, err := (&LineChart{}).Render(); err == nil {
		t.Error("no series")
	}
	bad := &LineChart{Series: []Series{{Name: "x", Xs: []float64{1}, Ys: []float64{1, 2}}}}
	if _, err := bad.Render(); err == nil {
		t.Error("length mismatch")
	}
	empty := &LineChart{Series: []Series{{Name: "x", Xs: []float64{1}, Ys: []float64{math.NaN()}}}}
	if _, err := empty.Render(); err == nil {
		t.Error("no finite points")
	}
}

func TestLineChartFlatSeries(t *testing.T) {
	c := &LineChart{Series: []Series{{Name: "flat", Xs: []float64{1, 2}, Ys: []float64{5, 5}}}}
	if _, err := c.Render(); err != nil {
		t.Fatalf("flat series should render: %v", err)
	}
}

func TestBarChart(t *testing.T) {
	b := &BarChart{
		Title:  "penalty",
		Labels: []string{"45nm", "32nm"},
		Groups: []Series{{Name: "base", Ys: []float64{10, 20}}},
	}
	out, err := b.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "45nm") || !strings.Contains(out, "█") {
		t.Fatalf("bars missing:\n%s", out)
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := (&BarChart{}).Render(); err == nil {
		t.Error("empty chart")
	}
	b := &BarChart{Labels: []string{"a"}, Groups: []Series{{Name: "g", Ys: []float64{1, 2}}}}
	if _, err := b.Render(); err == nil {
		t.Error("group length mismatch")
	}
	b = &BarChart{Labels: []string{"a"}, Groups: []Series{{Name: "g", Ys: []float64{-1}}}}
	if _, err := b.Render(); err == nil {
		t.Error("negative bar")
	}
	b = &BarChart{Labels: []string{"a"}, Groups: []Series{{Name: "g", Ys: []float64{0}}}}
	if _, err := b.Render(); err != nil {
		t.Errorf("all-zero bars should render: %v", err)
	}
}

func TestSVG(t *testing.T) {
	s := NewSVG(100, 50)
	s.Rect(1, 2, 3, 4, "red", "black", 1)
	s.Line(0, 0, 10, 10, "blue", 0.5)
	s.DashedRect(5, 5, 10, 10, "goldenrod", 2)
	s.Text(1, 1, 10, "a<b&c")
	out := s.String()
	for _, want := range []string{
		`<svg xmlns`, `width="100"`, `<rect`, `<line`, `stroke-dasharray`,
		`a&lt;b&amp;c`, `</svg>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	empty := NewSVG(10, 10)
	empty.Rect(0, 0, 1, 1, "", "", 0)
	if !strings.Contains(empty.String(), `fill="none"`) {
		t.Error("empty fill should render as none")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", `say "hi"`}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
	if err := WriteCSV(nil, []string{"a"}, nil); err == nil {
		t.Error("nil writer")
	}
	if err := WriteCSV(&b, nil, nil); err == nil {
		t.Error("empty header")
	}
	if err := WriteCSV(&b, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("ragged row")
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := SeriesCSV(&b, []Series{
		{Name: "y1", Xs: []float64{1, 2}, Ys: []float64{3, 4}},
		{Name: "y2", Xs: []float64{1, 2}, Ys: []float64{5, 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "x,y1,y2" || lines[1] != "1,3,5" || lines[2] != "2,4,6" {
		t.Fatalf("csv:\n%s", b.String())
	}
	if err := SeriesCSV(&b, nil); err == nil {
		t.Error("no series")
	}
	if err := SeriesCSV(&b, []Series{
		{Name: "y1", Xs: []float64{1}, Ys: []float64{1}},
		{Name: "y2", Xs: []float64{1, 2}, Ys: []float64{1, 2}},
	}); err == nil {
		t.Error("misaligned series")
	}
}
