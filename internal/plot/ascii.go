// Package plot renders experiment results without external dependencies:
// ASCII line/bar charts for terminal output (including the log-scale pF
// curves of Fig. 2.1), a minimal SVG writer for the layout artwork of
// Figs. 3.1/3.2, and CSV emission for downstream tooling.
//
//yield:compute
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// LineChart renders one or more series on a character grid.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots the y axis in log10 space (zero/negative points are
	// dropped).
	LogY   bool
	Width  int
	Height int
	Series []Series
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c *LineChart) Render() (string, error) {
	if len(c.Series) == 0 {
		return "", errors.New("plot: no series")
	}
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 24
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	type pt struct{ x, y float64 }
	pts := make([][]pt, len(c.Series))
	for si, s := range c.Series {
		if len(s.Xs) != len(s.Ys) {
			return "", fmt.Errorf("plot: series %q length mismatch", s.Name)
		}
		for i := range s.Xs {
			y := s.Ys[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(y) || math.IsInf(y, 0) || math.IsNaN(s.Xs[i]) {
				continue
			}
			pts[si] = append(pts[si], pt{s.Xs[i], y})
			xMin, xMax = math.Min(xMin, s.Xs[i]), math.Max(xMax, s.Xs[i])
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
	}
	if xMin > xMax || yMin > yMax {
		return "", errors.New("plot: no finite points")
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si := range pts {
		m := markers[si%len(markers)]
		for _, p := range pts[si] {
			col := int(math.Round((p.x - xMin) / (xMax - xMin) * float64(w-1)))
			row := h - 1 - int(math.Round((p.y-yMin)/(yMax-yMin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop, yBot := yMax, yMin
	format := func(v float64) string {
		if c.LogY {
			return fmt.Sprintf("%8.1e", math.Pow(10, v))
		}
		return fmt.Sprintf("%8.3g", v)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", 8)
		switch i {
		case 0:
			label = format(yTop)
		case h - 1:
			label = format(yBot)
		case h / 2:
			label = format((yTop + yBot) / 2)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-12.4g%s%12.4g\n", strings.Repeat(" ", 8), xMin,
		strings.Repeat(" ", maxInt(w-24, 1)), xMax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", 8), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s   %c %s\n", strings.Repeat(" ", 8), markers[si%len(markers)], s.Name)
	}
	return b.String(), nil
}

// BarChart renders grouped bars (e.g. penalty vs technology node).
type BarChart struct {
	Title  string
	YLabel string
	// Labels name the groups along x.
	Labels []string
	// Groups holds one named value series per group member.
	Groups []Series // only Name and Ys (len == len(Labels)) are used
	Width  int
}

// Render draws the chart as horizontal bars per label/group.
func (b *BarChart) Render() (string, error) {
	if len(b.Labels) == 0 || len(b.Groups) == 0 {
		return "", errors.New("plot: empty bar chart")
	}
	max := 0.0
	for _, g := range b.Groups {
		if len(g.Ys) != len(b.Labels) {
			return "", fmt.Errorf("plot: group %q has %d values for %d labels", g.Name, len(g.Ys), len(b.Labels))
		}
		for _, v := range g.Ys {
			if math.IsNaN(v) || v < 0 {
				return "", fmt.Errorf("plot: bar value %v invalid", v)
			}
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	w := b.Width
	if w <= 0 {
		w = 50
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "%s\n", b.Title)
	}
	for li, label := range b.Labels {
		for gi, g := range b.Groups {
			n := int(math.Round(g.Ys[li] / max * float64(w)))
			head := ""
			if gi == 0 {
				head = label
			}
			fmt.Fprintf(&sb, "%-8s %-28s |%s %.4g\n", head, g.Name,
				strings.Repeat("█", n), g.Ys[li])
		}
	}
	if b.YLabel != "" {
		fmt.Fprintf(&sb, "(%s)\n", b.YLabel)
	}
	return sb.String(), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
