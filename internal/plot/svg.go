package plot

import (
	"fmt"
	"strings"
)

// SVG is a minimal scene builder sufficient for the paper's layout artwork:
// Fig. 3.1's growth/layout panels and Fig. 3.2's before/after cell views.
type SVG struct {
	W, H  float64
	elems []string
}

// NewSVG creates a canvas of the given size (user units).
func NewSVG(w, h float64) *SVG { return &SVG{W: w, H: h} }

// Rect adds a rectangle; stroke or fill may be empty for none.
func (s *SVG) Rect(x, y, w, h float64, fill, stroke string, strokeWidth float64) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s" stroke-width="%.2f"/>`,
		x, y, w, h, orNone(fill), orNone(stroke), strokeWidth))
}

// Line adds a line segment.
func (s *SVG) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`,
		x1, y1, x2, y2, orNone(stroke), width))
}

// DashedRect adds an outline-only rectangle with a dash pattern (used for
// the paper's highlighted critical active regions).
func (s *SVG) DashedRect(x, y, w, h float64, stroke string, strokeWidth float64) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="%s" stroke-width="%.2f" stroke-dasharray="6,4"/>`,
		x, y, w, h, orNone(stroke), strokeWidth))
}

// Text adds a label.
func (s *SVG) Text(x, y float64, size float64, content string) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<text x="%.2f" y="%.2f" font-size="%.1f" font-family="sans-serif">%s</text>`,
		x, y, size, escape(content)))
}

// String renders the document.
func (s *SVG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		s.W, s.H, s.W, s.H)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	for _, e := range s.elems {
		b.WriteString(e + "\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func orNone(v string) string {
	if v == "" {
		return "none"
	}
	return v
}

func escape(v string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(v)
}
