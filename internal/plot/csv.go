package plot

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits a rectangular table: header row plus one row per record.
// Cells containing separators or quotes are quoted per RFC 4180.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	if w == nil {
		return errors.New("plot: nil writer")
	}
	if len(header) == 0 {
		return errors.New("plot: empty CSV header")
	}
	write := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := write(header); err != nil {
		return err
	}
	for i, r := range rows {
		if len(r) != len(header) {
			return fmt.Errorf("plot: CSV row %d has %d cells, header has %d", i, len(r), len(header))
		}
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

// SeriesCSV renders aligned series as CSV columns x, name1, name2, ...
// All series must share the same Xs.
func SeriesCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	n := len(series[0].Xs)
	header := []string{"x"}
	for _, s := range series {
		if len(s.Xs) != n || len(s.Ys) != n {
			return fmt.Errorf("plot: series %q not aligned", s.Name)
		}
		header = append(header, s.Name)
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := []string{formatFloat(series[0].Xs[i])}
		for _, s := range series {
			row = append(row, formatFloat(s.Ys[i]))
		}
		rows[i] = row
	}
	return WriteCSV(w, header, rows)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}

func csvEscape(c string) string {
	if strings.ContainsAny(c, ",\"\n") {
		return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
	}
	return c
}
