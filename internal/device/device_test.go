package device

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testModel(t *testing.T, params FailureParams, maxW float64) *FailureModel {
	t.Helper()
	m, err := NewCalibratedModel(params, renewal.WithStep(0.1), renewal.WithMaxWidth(maxW))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPerCNTFailureEq21(t *testing.T) {
	p := FailureParams{PMetallic: 0.33, PRemoveSemi: 0.30, PRemoveMetallic: 1}
	if got := p.PerCNTFailure(); !almost(got, 0.33+0.67*0.30, 1e-15) {
		t.Fatalf("pf = %v", got)
	}
	clean := FailureParams{PRemoveMetallic: 1}
	if clean.PerCNTFailure() != 0 {
		t.Fatal("perfect process should have pf = 0")
	}
}

func TestValidate(t *testing.T) {
	bad := []FailureParams{
		{PMetallic: -0.1},
		{PMetallic: 1.1},
		{PRemoveSemi: 2},
		{PRemoveMetallic: math.NaN()},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("expected error for %+v", p)
		}
	}
	if err := WorstCorner().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperCorners(t *testing.T) {
	cs := PaperCorners()
	if len(cs) != 3 {
		t.Fatalf("corners: %d", len(cs))
	}
	// Worst first: pf strictly decreasing.
	for i := 1; i < len(cs); i++ {
		if cs[i].Params.PerCNTFailure() >= cs[i-1].Params.PerCNTFailure() {
			t.Fatal("corners not ordered worst-first")
		}
	}
	if cs[2].Params.PerCNTFailure() != 0 {
		t.Fatal("clean corner should have pf = 0")
	}
}

func TestNewFailureModelValidation(t *testing.T) {
	if _, err := NewFailureModel(nil, WorstCorner()); err == nil {
		t.Error("nil count model")
	}
	if _, err := NewCalibratedModel(FailureParams{PMetallic: 2}); err == nil {
		t.Error("invalid params")
	}
}

// The calibration regression: the worst corner must pass through the
// published Fig. 2.1 anchor pF(155 nm) ≈ 3.0e-9 within a factor 1.5, and
// the chip-level construction below must reproduce Wmin ≈ 155 nm.
func TestCalibrationAnchor(t *testing.T) {
	m, err := NewCalibratedModel(WorstCorner(), renewal.WithStep(0.05), renewal.WithMaxWidth(200))
	if err != nil {
		t.Fatal(err)
	}
	p155, err := m.FailureProb(155)
	if err != nil {
		t.Fatal(err)
	}
	if p155 < 3.0e-9/1.5 || p155 > 3.0e-9*1.5 {
		t.Fatalf("pF(155) = %.3e, want ≈ 3.0e-9 (calibration drifted)", p155)
	}
	wmin, err := m.WidthForFailureProb(0.1 / 33e6)
	if err != nil {
		t.Fatal(err)
	}
	if wmin < 150 || wmin > 160 {
		t.Fatalf("Wmin = %.1f, want ≈ 155 (paper case study)", wmin)
	}
}

func TestFailureProbMonotoneInWidth(t *testing.T) {
	m := testModel(t, WorstCorner(), 160)
	prev := 1.1
	for _, w := range []float64{20, 40, 80, 120, 155} {
		p, err := m.FailureProb(w)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Fatalf("pF not decreasing at W=%v: %v >= %v", w, p, prev)
		}
		prev = p
	}
}

func TestFailureProbsBatch(t *testing.T) {
	m := testModel(t, WorstCorner(), 160)
	ws := []float64{30, 60, 120}
	batch, err := m.FailureProbs(ws)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		single, err := m.FailureProb(w)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(batch[i], single, 1e-15) {
			t.Fatalf("batch/single mismatch at %v: %v vs %v", w, batch[i], single)
		}
	}
}

func TestCleanCornerOnlyEmptyChannelFails(t *testing.T) {
	m := testModel(t, PaperCorners()[2].Params, 160)
	pmf, err := m.CountModel().CountPMF(40)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.FailureProb(40)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p, pmf.Prob(0), 1e-15) {
		t.Fatalf("pf=0 should reduce to P(N=0): %v vs %v", p, pmf.Prob(0))
	}
}

func TestWidthForFailureProbInverts(t *testing.T) {
	m := testModel(t, WorstCorner(), 200)
	for _, target := range []float64{1e-3, 1e-6, 3.03e-9} {
		w, err := m.WidthForFailureProb(target)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.FailureProb(w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(math.Log(p)-math.Log(target)) > 0.05 {
			t.Fatalf("target %v: W=%v gives pF=%v", target, w, p)
		}
	}
}

func TestWidthForFailureProbErrors(t *testing.T) {
	m := testModel(t, WorstCorner(), 100)
	if _, err := m.WidthForFailureProb(0); err == nil {
		t.Error("target 0")
	}
	if _, err := m.WidthForFailureProb(1); err == nil {
		t.Error("target 1")
	}
	if _, err := m.WidthForFailureProb(1e-30); err == nil {
		t.Error("unreachable target within 100nm should error")
	}
}

// Monte Carlo cross-check of Eq. 2.2 at a small width where failures are
// common: simulate pitch draws and per-CNT coin flips directly.
func TestFailureProbMatchesDirectMC(t *testing.T) {
	params := WorstCorner()
	m := testModel(t, params, 60)
	const w = 14.0
	want, err := m.FailureProb(w)
	if err != nil {
		t.Fatal(err)
	}
	pitch, err := CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	pf := params.PerCNTFailure()
	r := rng.New(31)
	const trials = 120_000
	fails := 0
	for i := 0; i < trials; i++ {
		// Equilibrium window start via burn-in.
		x := 0.0
		for j := 0; j < 60; j++ {
			x += pitch.Sample(r)
		}
		origin := x + r.Float64()*16
		for x < origin {
			x += pitch.Sample(r)
		}
		ok := false
		for x < origin+w {
			if r.Float64() >= pf {
				ok = true
			}
			x += pitch.Sample(r)
		}
		if !ok {
			fails++
		}
	}
	got := float64(fails) / trials
	se := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 5*se+0.002 {
		t.Fatalf("MC pF(%v) = %v, analytic %v (se %v)", w, got, want, se)
	}
}

func TestSurvivingMetallicPMF(t *testing.T) {
	// pRm = 0.9: 10% of metallic CNTs survive.
	params := FailureParams{PMetallic: 0.33, PRemoveSemi: 0.3, PRemoveMetallic: 0.9}
	m := testModel(t, params, 80)
	pmf, err := m.SurvivingMetallicPMF(40)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pmf.TotalMass(), 1, 1e-9) {
		t.Fatalf("mass: %v", pmf.TotalMass())
	}
	count, err := m.CountModel().CountPMF(40)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := count.Mean() * 0.33 * 0.1
	if !almost(pmf.Mean(), wantMean, 1e-6*wantMean+1e-9) {
		t.Fatalf("mean surviving m-CNTs %v want %v", pmf.Mean(), wantMean)
	}
	// Perfect removal leaves none.
	perfect := testModel(t, WorstCorner(), 80)
	pmf2, err := perfect.SurvivingMetallicPMF(40)
	if err != nil {
		t.Fatal(err)
	}
	if pmf2.Prob(0) != 1 {
		t.Fatalf("pRm=1 should leave zero m-CNTs, got %v", pmf2.P[:3])
	}
}

// Property: pF decreases when pf decreases (better processing helps), for
// any width.
func TestQuickFailureProbMonotoneInPf(t *testing.T) {
	pitch, err := CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	count, err := renewal.New(pitch, renewal.WithStep(0.1), renewal.WithMaxWidth(120))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seedRaw uint16) bool {
		r := rng.New(uint64(seedRaw))
		w := 10 + r.Float64()*100
		pm1 := r.Float64() * 0.5
		pm2 := pm1 + r.Float64()*(0.5-pm1)*0.9
		m1, err1 := NewFailureModel(count, FailureParams{PMetallic: pm1, PRemoveSemi: 0.2, PRemoveMetallic: 1})
		m2, err2 := NewFailureModel(count, FailureParams{PMetallic: pm2, PRemoveSemi: 0.2, PRemoveMetallic: 1})
		if err1 != nil || err2 != nil {
			return false
		}
		p1, e1 := m1.FailureProb(w)
		p2, e2 := m2.FailureProb(w)
		if e1 != nil || e2 != nil {
			return false
		}
		return p1 <= p2+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCurrentModelValidation(t *testing.T) {
	c := DefaultCurrentModel()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.DiameterSigma = -1
	if err := c.Validate(); err == nil {
		t.Error("negative sigma")
	}
	c = DefaultCurrentModel()
	c.DiameterMin = 2
	if err := c.Validate(); err == nil {
		t.Error("min above mean")
	}
	c = DefaultCurrentModel()
	c.GonPerNM = 0
	if err := c.Validate(); err == nil {
		t.Error("zero slope")
	}
}

// The statistical-averaging law: CV of device current falls as 1/√N.
func TestAveragingLaw(t *testing.T) {
	c := DefaultCurrentModel()
	r := rng.New(5)
	cv1, err := c.AveragingLawCV(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 16, 64} {
		pmf, err := dist.PointPMF(n)
		if err != nil {
			t.Fatal(err)
		}
		_, cv, err := c.IonStats(r, pmf, 30_000)
		if err != nil {
			t.Fatal(err)
		}
		want := cv1 / math.Sqrt(float64(n))
		if math.Abs(cv-want)/want > 0.12 {
			t.Errorf("N=%d: cv %v want %v (1/√N law)", n, cv, want)
		}
	}
	if _, err := c.AveragingLawCV(0); err == nil {
		t.Error("n=0 should error")
	}
}

func TestIonStatsErrors(t *testing.T) {
	c := DefaultCurrentModel()
	pmf, _ := dist.PointPMF(4)
	if _, _, err := c.IonStats(rng.New(1), pmf, 1); err == nil {
		t.Error("too few trials")
	}
	c.GonPerNM = -1
	if _, _, err := c.IonStats(rng.New(1), pmf, 100); err == nil {
		t.Error("invalid model")
	}
}

func TestSampleDeviceCurrentZeroCNTs(t *testing.T) {
	c := DefaultCurrentModel()
	ion, err := c.SampleDeviceCurrent(rng.New(2), 0)
	if err != nil || ion != 0 {
		t.Fatalf("zero CNTs: %v, %v", ion, err)
	}
}
