package device

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/stat"
)

// CurrentModel is a first-order CNFET drive-current model used to
// demonstrate the statistical-averaging property the paper builds on
// ([Raychowdhury 09, Zhang 09a/b]): the on-current of a CNFET is the sum of
// per-CNT currents, so σ(Ion)/μ(Ion) falls as 1/√N with the CNT count N.
//
// Per-CNT current varies with CNT diameter: Ion,CNT ≈ Gon·(d - d0) for
// d above the conduction threshold d0, a standard linearization of the
// diameter dependence of CNFET drive current.
type CurrentModel struct {
	// DiameterMu and DiameterSigma describe the grown CNT diameter
	// distribution in nm (typical CVD growth: 1.5 ± 0.3 nm).
	DiameterMu    float64
	DiameterSigma float64
	// DiameterMin truncates unphysical diameters.
	DiameterMin float64
	// GonPerNM is the on-conductance slope in µA per nm of diameter above
	// threshold.
	GonPerNM float64
	// DiameterThreshold is d0, the diameter below which a (semiconducting)
	// CNT contributes negligible current.
	DiameterThreshold float64
}

// DefaultCurrentModel returns parameters representative of 45 nm-class
// CNFETs (per-CNT on-current of a few µA at d = 1.5 nm).
func DefaultCurrentModel() CurrentModel {
	return CurrentModel{
		DiameterMu:        1.5,
		DiameterSigma:     0.3,
		DiameterMin:       0.6,
		GonPerNM:          8.0,
		DiameterThreshold: 0.7,
	}
}

// Validate checks parameter sanity.
func (c CurrentModel) Validate() error {
	if !(c.DiameterMu > 0) || !(c.DiameterSigma > 0) {
		return fmt.Errorf("device: diameter distribution (%g, %g) invalid", c.DiameterMu, c.DiameterSigma)
	}
	if c.DiameterMin < 0 || c.DiameterMin >= c.DiameterMu {
		return fmt.Errorf("device: diameter minimum %g invalid for mean %g", c.DiameterMin, c.DiameterMu)
	}
	if !(c.GonPerNM > 0) {
		return fmt.Errorf("device: conductance slope %g must be positive", c.GonPerNM)
	}
	return nil
}

// diameterDist builds the truncated diameter law.
func (c CurrentModel) diameterDist() (dist.TruncNormal, error) {
	return dist.NewTruncNormal(c.DiameterMu, c.DiameterSigma, c.DiameterMin, math.Inf(1))
}

// SampleCNTCurrent draws the on-current contribution of a single
// semiconducting CNT in µA.
func (c CurrentModel) SampleCNTCurrent(r *rand.Rand) (float64, error) {
	d, err := c.diameterDist()
	if err != nil {
		return 0, err
	}
	dia := d.Sample(r)
	i := c.GonPerNM * (dia - c.DiameterThreshold)
	if i < 0 {
		i = 0
	}
	return i, nil
}

// SampleDeviceCurrent draws the total on-current of a device with n
// conducting CNTs.
func (c CurrentModel) SampleDeviceCurrent(r *rand.Rand, n int) (float64, error) {
	var total float64
	for i := 0; i < n; i++ {
		cur, err := c.SampleCNTCurrent(r)
		if err != nil {
			return 0, err
		}
		total += cur
	}
	return total, nil
}

// IonStats estimates the mean and coefficient of variation of the device
// on-current when the conducting-CNT count follows countPMF, using trials
// Monte Carlo samples. It returns (mean µA, cv).
func (c CurrentModel) IonStats(r *rand.Rand, countPMF dist.PMF, trials int) (mean, cv float64, err error) {
	if trials <= 1 {
		return 0, 0, fmt.Errorf("device: need at least 2 trials, got %d", trials)
	}
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	var w stat.Welford
	for i := 0; i < trials; i++ {
		n := countPMF.Sample(r)
		ion, err := c.SampleDeviceCurrent(r, n)
		if err != nil {
			return 0, 0, err
		}
		w.Add(ion)
	}
	m := w.Mean()
	if m == 0 {
		return 0, math.Inf(1), nil
	}
	return m, w.StdDev() / m, nil
}

// AveragingLawCV returns the predicted σ(Ion)/μ(Ion) for a device with a
// fixed count n, from the closed-form per-CNT current moments:
// cv(n) = cv(1)/√n. This is the 1/√N statistical-averaging law.
func (c CurrentModel) AveragingLawCV(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("device: count must be positive, got %d", n)
	}
	cv1, err := c.perCNTCV()
	if err != nil {
		return 0, err
	}
	return cv1 / math.Sqrt(float64(n)), nil
}

// perCNTCV computes the per-CNT current CV by quadrature over the diameter
// law (clipping at the conduction threshold).
func (c CurrentModel) perCNTCV() (float64, error) {
	d, err := c.diameterDist()
	if err != nil {
		return 0, err
	}
	// Moments of max(0, Gon·(D-d0)) by dense quantile sampling: exact
	// enough and independent of the RNG.
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / n
		v := c.GonPerNM * (d.Quantile(p) - c.DiameterThreshold)
		if v < 0 {
			v = 0
		}
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if mean <= 0 {
		return 0, fmt.Errorf("device: per-CNT current mean non-positive")
	}
	return math.Sqrt(math.Max(variance, 0)) / mean, nil
}
