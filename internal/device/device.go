// Package device implements the CNFET device-level failure model of the
// paper's Section 2.1:
//
//   - Eq. 2.1: per-CNT failure probability pf = pm + ps·pRs — a CNT is
//     useless if it is metallic (and hence etched by the m-CNT removal step)
//     or if it is a semiconducting CNT removed inadvertently.
//   - Eq. 2.2: device failure probability pF(W) = Σ_k Prob{N(W)=k}·pf^k —
//     the CNFET fails iff every CNT in its channel is useless.
//
// The CNT count distribution Prob{N(W)} comes from the renewal pitch model
// (package renewal) with the calibrated pitch law returned by
// CalibratedPitch. The package also provides the inverse solver W(pF) used
// by the Wmin optimization, and a drive-current model exhibiting the
// 1/√N statistical-averaging law the paper cites as background.
//
//yield:compute
package device

import (
	"errors"
	"fmt"
	"math"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/numeric"
	"github.com/cnfet/yieldlab/internal/renewal"
)

// Pitch model constants (see DESIGN.md §5).
const (
	// MeanPitchNM is the mean inter-CNT pitch; the paper fixes it at the
	// optimized value of 4 nm [Deng 07].
	MeanPitchNM = 4.0

	// PitchSigmaRatio is the parent-normal σ/μ of the truncated-normal pitch
	// law. The paper inherits the pitch variability ratio from [Zhang 09a]
	// without printing it; this value is calibrated once so the worst-corner
	// curve of Fig. 2.1 passes through the published anchor
	// pF(155 nm) = 3.0e-9 (the 90%-yield requirement for 33e6 minimum-size
	// CNFETs). The post-truncation ratio σS/μS evaluates to ≈ 0.88.
	PitchSigmaRatio = 2.3

	// PitchMinNM is the lower truncation bound of the pitch law. Zero
	// permits arbitrarily close (bundled) CNTs, which directional growth
	// does produce.
	PitchMinNM = 0.0
)

// CalibratedPitch returns the frozen inter-CNT pitch distribution:
// a truncated normal on [PitchMinNM, ∞) with post-truncation mean
// MeanPitchNM and parent sigma PitchSigmaRatio·MeanPitchNM.
func CalibratedPitch() (dist.TruncNormal, error) {
	return dist.TruncNormalWithMean(MeanPitchNM, PitchSigmaRatio*MeanPitchNM, PitchMinNM)
}

// FailureParams carries the processing probabilities of Section 2.1.
type FailureParams struct {
	// PMetallic is pm, the probability that a grown CNT is metallic.
	PMetallic float64
	// PRemoveSemi is pRs, the conditional probability that the m-CNT
	// removal step also removes a semiconducting CNT.
	PRemoveSemi float64
	// PRemoveMetallic is pRm, the conditional probability that a metallic
	// CNT is removed. The paper assumes pRm ≈ 1 for count-failure analysis;
	// values below 1 leave surviving m-CNTs, reported by
	// SurvivingMetallicPMF (a noise-margin concern, not a count failure).
	PRemoveMetallic float64
}

// Validate checks all probabilities lie in [0, 1].
func (p FailureParams) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"PMetallic", p.PMetallic},
		{"PRemoveSemi", p.PRemoveSemi},
		{"PRemoveMetallic", p.PRemoveMetallic},
	} {
		if v.val < 0 || v.val > 1 || math.IsNaN(v.val) {
			return fmt.Errorf("device: %s = %g out of [0,1]", v.name, v.val)
		}
	}
	return nil
}

// PerCNTFailure returns pf = pm + ps·pRs (Eq. 2.1): the probability that a
// single CNT contributes nothing to conduction. Metallic CNTs never count as
// useful channels regardless of whether the removal step catches them, so
// pRm does not appear here.
func (p FailureParams) PerCNTFailure() float64 {
	return p.PMetallic + (1-p.PMetallic)*p.PRemoveSemi
}

// Corner is a named processing condition, matching the three curves of
// Fig. 2.1.
type Corner struct {
	Name   string
	Params FailureParams
}

// PaperCorners returns the three processing corners plotted in Fig. 2.1,
// worst first. All assume perfect metallic removal (pRm = 1).
func PaperCorners() []Corner {
	return []Corner{
		{Name: "pm=33%, pRs=30%", Params: FailureParams{PMetallic: 0.33, PRemoveSemi: 0.30, PRemoveMetallic: 1}},
		{Name: "pm=33%, pRs=0%", Params: FailureParams{PMetallic: 0.33, PRemoveSemi: 0, PRemoveMetallic: 1}},
		{Name: "pm=0%, pRs=0%", Params: FailureParams{PMetallic: 0, PRemoveSemi: 0, PRemoveMetallic: 1}},
	}
}

// WorstCorner returns the pm=33%, pRs=30% corner used for every headline
// number in the paper (pf = 0.531).
func WorstCorner() FailureParams {
	return PaperCorners()[0].Params
}

// FailureModel evaluates pF(W) for one processing condition over one CNT
// count model. It is safe for concurrent use (the underlying renewal model
// caches internally under a lock).
type FailureModel struct {
	count  *renewal.Model
	params FailureParams
	pf     float64
}

// NewFailureModel combines a count model and processing parameters.
func NewFailureModel(count *renewal.Model, params FailureParams) (*FailureModel, error) {
	if count == nil {
		return nil, errors.New("device: nil count model")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &FailureModel{count: count, params: params, pf: params.PerCNTFailure()}, nil
}

// NewCalibratedModel builds a FailureModel over the calibrated pitch law.
// Extra renewal options (grid step, max width) are passed through.
func NewCalibratedModel(params FailureParams, opts ...renewal.Option) (*FailureModel, error) {
	return NewCalibratedModelWith(nil, params, opts...)
}

// NewCalibratedModelWith is NewCalibratedModel drawing the count model from
// a shared sweep cache, so models that differ only in the processing corner
// (same pitch law, same grid) reuse one swept table. A nil cache builds a
// private model.
func NewCalibratedModelWith(sweeps *renewal.SweepCache, params FailureParams, opts ...renewal.Option) (*FailureModel, error) {
	pitch, err := CalibratedPitch()
	if err != nil {
		return nil, fmt.Errorf("device: calibrated pitch: %w", err)
	}
	count, err := sweeps.Model(pitch, opts...)
	if err != nil {
		return nil, fmt.Errorf("device: count model: %w", err)
	}
	return NewFailureModel(count, params)
}

// Params returns the processing parameters.
func (m *FailureModel) Params() FailureParams { return m.params }

// PerCNTFailure returns pf for this model.
func (m *FailureModel) PerCNTFailure() float64 { return m.pf }

// CountModel exposes the underlying renewal model.
func (m *FailureModel) CountModel() *renewal.Model { return m.count }

// FailureProb returns pF(w) per Eq. 2.2.
func (m *FailureModel) FailureProb(w float64) (float64, error) {
	pmf, err := m.count.CountPMF(w)
	if err != nil {
		return 0, err
	}
	return pmf.PGF(m.pf), nil
}

// FailureProbs evaluates pF over many widths in one batched sweep.
func (m *FailureModel) FailureProbs(ws []float64) ([]float64, error) {
	pmfs, err := m.count.CountPMFs(ws)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ws))
	for i, pmf := range pmfs {
		out[i] = pmf.PGF(m.pf)
	}
	return out, nil
}

// WidthForFailureProb returns the smallest width whose failure probability
// does not exceed target — the horizontal-line construction on Fig. 2.1 that
// turns a failure budget into Wmin. It errors when the target is
// unreachable within the model's width range.
func (m *FailureModel) WidthForFailureProb(target float64) (float64, error) {
	if !(target > 0) || target >= 1 || math.IsNaN(target) {
		return 0, fmt.Errorf("device: target failure probability %g out of (0,1)", target)
	}
	lo := m.count.Step() * 2
	hi := m.count.MaxWidth()
	f := func(w float64) float64 {
		p, err := m.FailureProb(w)
		if err != nil || p <= 0 {
			// Below the resolvable probability floor: count as "passed".
			return -1
		}
		return math.Log(p) - math.Log(target)
	}
	if f(hi) > 0 {
		return 0, fmt.Errorf("device: target pF=%g not reachable below W=%g nm", target, hi)
	}
	if f(lo) <= 0 {
		return lo, nil
	}
	w, err := numeric.Bisect(f, lo, hi, 1e-3, 200)
	if err != nil {
		return 0, fmt.Errorf("device: inverting pF: %w", err)
	}
	return w, nil
}

// SurvivingMetallicPMF returns the distribution of the number of metallic
// CNTs that survive removal in a device of width w: each of the N(w) CNTs is
// independently a surviving m-CNT with probability pm·(1-pRm). These devices
// conduct but degrade noise margins — the failure mode the paper cites
// [Zhang 09b] and explicitly excludes from count-limited yield; exposing the
// distribution keeps that exclusion visible instead of silent.
func (m *FailureModel) SurvivingMetallicPMF(w float64) (dist.PMF, error) {
	pmf, err := m.count.CountPMF(w)
	if err != nil {
		return dist.PMF{}, err
	}
	q := m.params.PMetallic * (1 - m.params.PRemoveMetallic)
	if q == 0 {
		// Perfect removal (or no metallic CNTs at all) leaves none,
		// independent of the count distribution.
		return dist.PointPMF(0)
	}
	// P(M = j) = Σ_n P(N=n)·Binom(j; n, q): mixture of binomials.
	out := make([]float64, pmf.Len())
	for n := 0; n < pmf.Len(); n++ {
		pn := pmf.Prob(n)
		if pn == 0 {
			continue
		}
		bin, err := dist.BinomialPMF(n, q)
		if err != nil {
			return dist.PMF{}, err
		}
		for j := 0; j < bin.Len(); j++ {
			out[j] += pn * bin.Prob(j)
		}
	}
	return dist.NewPMF(out)
}
