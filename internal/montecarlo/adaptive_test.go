package montecarlo

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/cnfet/yieldlab/internal/rng"
)

// expRound is a cheap positive-mean round function with genuine variance.
func expRound(r *rand.Rand, _ struct{}) (float64, error) {
	return math.Exp(r.NormFloat64()), nil
}

func TestAdaptiveStopsAtTarget(t *testing.T) {
	opt := AdaptiveOptions{
		RelErrTarget: 0.02,
		MaxRounds:    1 << 20,
		MinRounds:    256,
	}
	est, err := RunStateAdaptive(nil, expRound, opt)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean <= 0 {
		t.Fatalf("mean %g not positive", est.Mean)
	}
	if rel := est.StdErr / est.Mean; rel > opt.RelErrTarget {
		t.Fatalf("stopped at relative error %g above target %g", rel, opt.RelErrTarget)
	}
	if est.Rounds >= opt.MaxRounds {
		t.Fatalf("spent the whole cap (%d rounds); the target should stop earlier", est.Rounds)
	}
	// The block schedule is MinRounds, 2·MinRounds, ...: totals are
	// MinRounds·(2^k - 1) until the cap interferes.
	if est.Rounds%opt.MinRounds != 0 {
		t.Fatalf("rounds %d not a multiple of the first block %d", est.Rounds, opt.MinRounds)
	}
}

func TestAdaptiveSpendsCapWithoutTarget(t *testing.T) {
	opt := AdaptiveOptions{MaxRounds: 3000, MinRounds: 1024}
	est, err := RunStateAdaptive(nil, expRound, opt)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rounds != opt.MaxRounds {
		t.Fatalf("no target: want exactly MaxRounds=%d rounds, got %d", opt.MaxRounds, est.Rounds)
	}
}

func TestAdaptiveBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) Estimate {
		est, err := RunStateAdaptive(nil, expRound, AdaptiveOptions{
			Options:      Options{Workers: workers},
			RelErrTarget: 0.05,
			MaxRounds:    1 << 18,
			MinRounds:    512,
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	ref := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); got != ref {
			t.Fatalf("workers=%d: estimate %+v differs from single-worker %+v", workers, got, ref)
		}
	}
}

func TestAdaptiveMatchesManualBlockMerge(t *testing.T) {
	// The adaptive result must be exactly the block-order merge of the
	// per-block RunState runs with the derived block seeds: the adaptive
	// schedule is part of the result's identity.
	opt := AdaptiveOptions{MaxRounds: 1536, MinRounds: 512}
	est, err := RunStateAdaptive(nil, expRound, opt)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	var n int
	for blockIdx, rounds := range []int{512, 1024} {
		e, err := RunState(rounds, nil, expRound, Options{Seed: blockSeed(rng.DefaultSeed, blockIdx)})
		if err != nil {
			t.Fatal(err)
		}
		want += e.Mean * float64(e.Rounds)
		n += e.Rounds
	}
	if est.Rounds != n {
		t.Fatalf("rounds: got %d want %d", est.Rounds, n)
	}
	if diff := math.Abs(est.Mean - want/float64(n)); diff > 1e-12*math.Abs(est.Mean) {
		t.Fatalf("adaptive mean %g does not merge the manual blocks (%g)", est.Mean, want/float64(n))
	}
}

func TestAdaptiveValidation(t *testing.T) {
	if _, err := RunStateAdaptive(nil, expRound, AdaptiveOptions{MaxRounds: 1}); err == nil {
		t.Fatal("MaxRounds 1 accepted")
	}
	if _, err := RunStateAdaptive(nil, expRound, AdaptiveOptions{MaxRounds: 100, RelErrTarget: -1}); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := RunStateAdaptive[struct{}](nil, nil, AdaptiveOptions{MaxRounds: 100}); err == nil {
		t.Fatal("nil round function accepted")
	}
	boom := errors.New("boom")
	_, err := RunStateAdaptive(nil, func(*rand.Rand, struct{}) (float64, error) {
		return 0, boom
	}, AdaptiveOptions{MaxRounds: 100})
	if !errors.Is(err, boom) {
		t.Fatalf("round error not propagated, got %v", err)
	}
}
