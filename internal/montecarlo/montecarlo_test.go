package montecarlo

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestRunEstimatesMean(t *testing.T) {
	est, err := Run(200_000, func(r *rand.Rand) (float64, error) {
		return r.Float64(), nil
	}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-0.5) > 5*est.StdErr {
		t.Fatalf("mean %v ± %v, want 0.5", est.Mean, est.StdErr)
	}
	if est.Rounds != 200_000 {
		t.Fatalf("rounds: %d", est.Rounds)
	}
	// StdErr of U(0,1) mean: (1/√12)/√n ≈ 6.45e-4.
	if est.StdErr < 5e-4 || est.StdErr > 8e-4 {
		t.Fatalf("stderr: %v", est.StdErr)
	}
}

func TestRunReproducibleAcrossWorkerCounts(t *testing.T) {
	f := func(r *rand.Rand) (float64, error) { return r.NormFloat64(), nil }
	a, err := Run(10_000, f, Options{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(10_000, f, Options{Seed: 42, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Mean-b.Mean) > 1e-12 {
		t.Fatalf("worker count changed the estimate: %v vs %v", a.Mean, b.Mean)
	}
}

func TestRunSeedChangesStream(t *testing.T) {
	f := func(r *rand.Rand) (float64, error) { return r.Float64(), nil }
	a, _ := Run(1000, f, Options{Seed: 1})
	b, _ := Run(1000, f, Options{Seed: 2})
	if a.Mean == b.Mean {
		t.Fatal("different seeds should give different estimates")
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	_, err := Run(1000, func(r *rand.Rand) (float64, error) {
		n++
		if n > 100 {
			return 0, boom
		}
		return 1, nil
	}, Options{Seed: 1, Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(10, nil, Options{}); err == nil {
		t.Error("nil function")
	}
	if _, err := Run(1, func(r *rand.Rand) (float64, error) { return 0, nil }, Options{}); err == nil {
		t.Error("too few rounds")
	}
}

func TestRunSmallRoundsLargeBatch(t *testing.T) {
	est, err := Run(5, func(r *rand.Rand) (float64, error) { return 2, nil }, Options{Seed: 9, BatchSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rounds != 5 || est.Mean != 2 {
		t.Fatalf("est: %+v", est)
	}
}
