package montecarlo

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestRunEstimatesMean(t *testing.T) {
	est, err := Run(200_000, func(r *rand.Rand) (float64, error) {
		return r.Float64(), nil
	}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-0.5) > 5*est.StdErr {
		t.Fatalf("mean %v ± %v, want 0.5", est.Mean, est.StdErr)
	}
	if est.Rounds != 200_000 {
		t.Fatalf("rounds: %d", est.Rounds)
	}
	// StdErr of U(0,1) mean: (1/√12)/√n ≈ 6.45e-4.
	if est.StdErr < 5e-4 || est.StdErr > 8e-4 {
		t.Fatalf("stderr: %v", est.StdErr)
	}
}

func TestRunReproducibleAcrossWorkerCounts(t *testing.T) {
	f := func(r *rand.Rand) (float64, error) { return r.NormFloat64(), nil }
	a, err := Run(10_000, f, Options{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(10_000, f, Options{Seed: 42, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Mean-b.Mean) > 1e-12 {
		t.Fatalf("worker count changed the estimate: %v vs %v", a.Mean, b.Mean)
	}
}

func TestRunSeedChangesStream(t *testing.T) {
	f := func(r *rand.Rand) (float64, error) { return r.Float64(), nil }
	a, _ := Run(1000, f, Options{Seed: 1})
	b, _ := Run(1000, f, Options{Seed: 2})
	if a.Mean == b.Mean {
		t.Fatal("different seeds should give different estimates")
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	_, err := Run(1000, func(r *rand.Rand) (float64, error) {
		n++
		if n > 100 {
			return 0, boom
		}
		return 1, nil
	}, Options{Seed: 1, Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(10, nil, Options{}); err == nil {
		t.Error("nil function")
	}
	if _, err := Run(1, func(r *rand.Rand) (float64, error) { return 0, nil }, Options{}); err == nil {
		t.Error("too few rounds")
	}
}

// RunState must create exactly one state per worker goroutine and reuse it
// across that worker's batches.
func TestRunStatePerWorkerScratch(t *testing.T) {
	type scratch struct{ rounds int }
	var created atomic.Int64
	newState := func() *scratch {
		created.Add(1)
		return &scratch{}
	}
	const rounds, workers = 10_000, 4
	est, err := RunState(rounds, newState, func(r *rand.Rand, s *scratch) (float64, error) {
		s.rounds++
		return r.Float64(), nil
	}, Options{Seed: 3, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rounds != rounds {
		t.Fatalf("rounds: %d", est.Rounds)
	}
	if n := created.Load(); n < 1 || n > workers {
		t.Fatalf("states created: %d, want 1..%d", n, workers)
	}
}

// The per-worker state must not change the estimate: stateful and stateless
// runs over the same seed are bit-identical, at any worker count.
func TestRunStateBitIdenticalAcrossWorkerCounts(t *testing.T) {
	f := func(r *rand.Rand, buf []float64) (float64, error) {
		for i := range buf {
			buf[i] = r.NormFloat64()
		}
		return (buf[0] + buf[1] + buf[2]) / 3, nil
	}
	newState := func() []float64 { return make([]float64, 3) }
	base, err := RunState(9_999, newState, f, Options{Seed: 77, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		got, err := RunState(9_999, newState, f, Options{Seed: 77, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Mean != base.Mean || got.StdErr != base.StdErr {
			t.Fatalf("workers=%d changed the estimate: %v vs %v", workers, got, base)
		}
	}
}

// A nil factory means the zero value of S is the state.
func TestRunStateNilFactory(t *testing.T) {
	est, err := RunState(100, nil, func(r *rand.Rand, _ struct{}) (float64, error) {
		return 1, nil
	}, Options{Seed: 1})
	if err != nil || est.Mean != 1 {
		t.Fatalf("est %v err %v", est, err)
	}
}

func TestRunStatePropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := RunState(100_000, nil, func(r *rand.Rand, _ struct{}) (float64, error) {
		if calls.Add(1) > 50 {
			return 0, boom
		}
		return 1, nil
	}, Options{Seed: 1, Workers: 8})
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
	// After the error no worker should run the whole budget: the atomic
	// failed flag stops batch claims.
	if n := calls.Load(); n >= 100_000 {
		t.Fatalf("error did not stop the run: %d rounds", n)
	}
	if _, err := RunState[struct{}](100, nil, nil, Options{}); err == nil {
		t.Error("nil round function")
	}
}

func TestRunSmallRoundsLargeBatch(t *testing.T) {
	est, err := Run(5, func(r *rand.Rand) (float64, error) { return 2, nil }, Options{Seed: 9, BatchSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rounds != 5 || est.Mean != 2 {
		t.Fatalf("est: %+v", est)
	}
}
