// Package montecarlo is the parallel experiment engine: it fans a
// deterministic simulation function out over worker goroutines, each with
// an independently derived random stream, and merges the per-worker moment
// accumulators. Results are reproducible from a single root seed and do not
// depend on the worker count (each round's stream is derived from the round
// index, not the worker). RunStateAdaptive adds relative-error-targeted
// stopping on top of the same contract: the budget grows in doubling
// blocks with per-block derived seeds, so even an adaptively stopped
// estimate is a pure function of (seed, options, round function).
//
//yield:compute
package montecarlo

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/stat"
)

// Estimate is a Monte Carlo mean with its standard error.
type Estimate struct {
	Mean   float64
	StdErr float64
	Rounds int
}

// RoundFunc computes one simulation round using the provided stream. The
// returned value is averaged across rounds.
type RoundFunc func(r *rand.Rand) (float64, error)

// Options configures a run.
type Options struct {
	// Seed is the root seed (rng.DefaultSeed if zero).
	Seed uint64
	// Workers caps parallelism (NumCPU if ≤ 0).
	Workers int
	// BatchSize groups rounds per stream derivation; larger batches
	// amortize stream setup, smaller ones improve balance. Default 64.
	BatchSize int
	// Counters, when non-nil, receives engine progress (rounds, batches,
	// scratch growth when the state implements obs.ScratchCounter). Workers
	// accumulate plain local counters and flush once at worker exit, so the
	// hot round loop sees no atomic traffic and counting cannot perturb the
	// estimate: results are bit-identical with or without Counters.
	Counters *obs.MCCounters
}

// Run executes rounds of f in parallel and merges the estimates.
//
// Reproducibility: round batch b always uses the stream derived from
// (seed, b), so the estimate is a pure function of (seed, rounds, f)
// regardless of scheduling or worker count.
func Run(rounds int, f RoundFunc, opt Options) (Estimate, error) {
	if f == nil {
		return Estimate{}, errors.New("montecarlo: nil round function")
	}
	return RunState(rounds, nil, func(r *rand.Rand, _ struct{}) (float64, error) {
		return f(r)
	}, opt)
}

// RunState is Run for round functions that need scratch: every worker
// goroutine calls newState once and passes its state to each of its rounds,
// so a round can reuse buffers across realizations without locking or
// per-round allocation. newState may be nil when S's zero value is ready to
// use.
//
// The state must be pure scratch: batches migrate between workers from run
// to run, so any state influence on the returned values would break the
// reproducibility guarantee. As with Run, per-batch accumulators merge in
// batch order, keeping the estimate bit-identical across worker counts.
func RunState[S any](rounds int, newState func() S, f func(r *rand.Rand, state S) (float64, error), opt Options) (Estimate, error) {
	if f == nil {
		return Estimate{}, errors.New("montecarlo: nil round function")
	}
	if rounds < 2 {
		return Estimate{}, fmt.Errorf("montecarlo: need ≥ 2 rounds, got %d", rounds)
	}
	merged, err := runMerged(rounds, newState, f, opt)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Mean: merged.Mean(), StdErr: merged.StdErr(), Rounds: int(merged.N())}, nil
}

// runMerged is the engine behind RunState: it returns the batch-order-merged
// accumulator itself, so callers composing multiple runs (the adaptive
// runner) can keep merging exactly instead of reconstructing moments from an
// Estimate. Accepts rounds ≥ 1 — single-round tails of an adaptive schedule
// are meaningful once merged into a larger accumulator.
func runMerged[S any](rounds int, newState func() S, f func(r *rand.Rand, state S) (float64, error), opt Options) (stat.Welford, error) {
	seed := opt.Seed
	if seed == 0 {
		seed = rng.DefaultSeed
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	batch := opt.BatchSize
	if batch <= 0 {
		batch = 64
	}
	nBatches := (rounds + batch - 1) / batch

	if workers > nBatches {
		workers = nBatches
	}
	// The batch queue is a single atomic counter: claiming work is one
	// uncontended fetch-add instead of a mutex round-trip, which stops the
	// queue from serializing short batches at high worker counts. The
	// failed flag keeps first-error semantics: after any error, no new
	// batch starts and the earliest-recorded error is returned.
	var (
		wg      sync.WaitGroup
		nextIdx atomic.Int64
		failed  atomic.Bool
		errMu   sync.Mutex
		firstEr error
	)
	// Per-batch accumulators, merged in batch order after the pool drains:
	// floating-point merges are not associative, so merging in completion
	// order would leak scheduling noise (±1 ulp) into the estimate and
	// break the bit-identical reproducibility the response caches and
	// ETags rely on.
	accs := make([]stat.Welford, nBatches)
	work := func() {
		defer wg.Done()
		var state S
		if newState != nil {
			state = newState()
		}
		// Counter flush happens once per worker lifetime: the loop below
		// counts into plain locals so the per-round cost of observability
		// is a register increment, not an atomic RMW.
		var localRounds, localBatches uint64
		if opt.Counters != nil {
			defer func() {
				opt.Counters.Rounds.Add(localRounds)
				opt.Counters.Batches.Add(localBatches)
				if sc, ok := any(state).(obs.ScratchCounter); ok {
					opt.Counters.ScratchAllocs.Add(sc.ScratchAllocs())
				}
			}()
		}
		for {
			if failed.Load() {
				return
			}
			b := int(nextIdx.Add(1) - 1)
			if b >= nBatches {
				return
			}
			r := rng.Derive(seed, uint64(b))
			lo := b * batch
			hi := lo + batch
			if hi > rounds {
				hi = rounds
			}
			localBatches++
			var local stat.Welford
			for i := lo; i < hi; i++ {
				v, err := f(r, state)
				if err != nil {
					errMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				local.Add(v)
				localRounds++
			}
			accs[b] = local
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if failed.Load() {
		errMu.Lock()
		defer errMu.Unlock()
		return stat.Welford{}, firstEr
	}
	var merged stat.Welford
	for b := range accs {
		merged.Merge(accs[b])
	}
	return merged, nil
}
