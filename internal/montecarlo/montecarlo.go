// Package montecarlo is the parallel experiment engine: it fans a
// deterministic simulation function out over worker goroutines, each with
// an independently derived random stream, and merges the per-worker moment
// accumulators. Results are reproducible from a single root seed and do not
// depend on the worker count (each round's stream is derived from the round
// index, not the worker).
package montecarlo

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/stat"
)

// Estimate is a Monte Carlo mean with its standard error.
type Estimate struct {
	Mean   float64
	StdErr float64
	Rounds int
}

// RoundFunc computes one simulation round using the provided stream. The
// returned value is averaged across rounds.
type RoundFunc func(r *rand.Rand) (float64, error)

// Options configures a run.
type Options struct {
	// Seed is the root seed (rng.DefaultSeed if zero).
	Seed uint64
	// Workers caps parallelism (NumCPU if ≤ 0).
	Workers int
	// BatchSize groups rounds per stream derivation; larger batches
	// amortize stream setup, smaller ones improve balance. Default 64.
	BatchSize int
}

// Run executes rounds of f in parallel and merges the estimates.
//
// Reproducibility: round batch b always uses the stream derived from
// (seed, b), so the estimate is a pure function of (seed, rounds, f)
// regardless of scheduling or worker count.
func Run(rounds int, f RoundFunc, opt Options) (Estimate, error) {
	if f == nil {
		return Estimate{}, errors.New("montecarlo: nil round function")
	}
	if rounds < 2 {
		return Estimate{}, fmt.Errorf("montecarlo: need ≥ 2 rounds, got %d", rounds)
	}
	seed := opt.Seed
	if seed == 0 {
		seed = rng.DefaultSeed
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	batch := opt.BatchSize
	if batch <= 0 {
		batch = 64
	}
	nBatches := (rounds + batch - 1) / batch

	if workers > nBatches {
		workers = nBatches
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
		nextIdx int
	)
	// Per-batch accumulators, merged in batch order after the pool drains:
	// floating-point merges are not associative, so merging in completion
	// order would leak scheduling noise (±1 ulp) into the estimate and
	// break the bit-identical reproducibility the response caches and
	// ETags rely on.
	accs := make([]stat.Welford, nBatches)
	work := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if firstEr != nil || nextIdx >= nBatches {
				mu.Unlock()
				break
			}
			b := nextIdx
			nextIdx++
			mu.Unlock()

			r := rng.Derive(seed, uint64(b))
			lo := b * batch
			hi := lo + batch
			if hi > rounds {
				hi = rounds
			}
			var local stat.Welford
			for i := lo; i < hi; i++ {
				v, err := f(r)
				if err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				local.Add(v)
			}
			accs[b] = local
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if firstEr != nil {
		return Estimate{}, firstEr
	}
	var merged stat.Welford
	for b := range accs {
		merged.Merge(accs[b])
	}
	return Estimate{Mean: merged.Mean(), StdErr: merged.StdErr(), Rounds: int(merged.N())}, nil
}
