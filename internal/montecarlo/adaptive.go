package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/stat"
)

// AdaptiveOptions configures a relative-error-targeted run.
type AdaptiveOptions struct {
	Options
	// RelErrTarget stops the run once StdErr ≤ RelErrTarget·Mean (with a
	// positive running mean). Zero disables early stopping: the run spends
	// the whole MaxRounds budget.
	RelErrTarget float64
	// MaxRounds is the hard round cap (required, ≥ 2).
	MaxRounds int
	// MinRounds is the first block size (default 4096), after which blocks
	// double; clamped to MaxRounds.
	MinRounds int
}

// defaultMinAdaptiveRounds is the first adaptive block: large enough that
// the initial relative-error reading is meaningful for the heavy-tailed
// weighted estimators, small enough that easy targets stop quickly.
const defaultMinAdaptiveRounds = 4096

// RunStateAdaptive runs f in deterministic doubling blocks until the merged
// estimate's relative standard error reaches the target or the round cap is
// spent.
//
// Each block is one RunState-style parallel run with its own derived block
// seed, bit-identical across worker counts; block accumulators merge in
// block order, and the stopping decision after each block depends only on
// the merged estimate — never on scheduling — so the adaptive result is as
// reproducible as a fixed-round run: a pure function of (seed, options, f).
// The block schedule (MinRounds, then ×2 per block, capped at the remaining
// budget) is part of that identity; the same target reached on machines
// with different worker counts stops at the same total round count with the
// same bits.
func RunStateAdaptive[S any](newState func() S, f func(r *rand.Rand, state S) (float64, error), opt AdaptiveOptions) (Estimate, error) {
	if f == nil {
		return Estimate{}, errors.New("montecarlo: nil round function")
	}
	if opt.MaxRounds < 2 {
		return Estimate{}, fmt.Errorf("montecarlo: adaptive run needs MaxRounds ≥ 2, got %d", opt.MaxRounds)
	}
	if opt.RelErrTarget < 0 || math.IsNaN(opt.RelErrTarget) {
		return Estimate{}, fmt.Errorf("montecarlo: relative-error target %g must be ≥ 0", opt.RelErrTarget)
	}
	seed := opt.Seed
	if seed == 0 {
		seed = rng.DefaultSeed
	}
	block := opt.MinRounds
	if block <= 0 {
		block = defaultMinAdaptiveRounds
	}
	if block < 2 {
		block = 2
	}
	if block > opt.MaxRounds {
		block = opt.MaxRounds
	}
	var merged stat.Welford
	total := 0
	for blockIdx := 0; total < opt.MaxRounds; blockIdx++ {
		if rem := opt.MaxRounds - total; block > rem {
			block = rem
		}
		blockOpt := opt.Options
		blockOpt.Seed = blockSeed(seed, blockIdx)
		w, err := runMerged(block, newState, f, blockOpt)
		if err != nil {
			return Estimate{}, err
		}
		merged.Merge(w)
		total += block
		if opt.RelErrTarget > 0 {
			if m := merged.Mean(); m > 0 && merged.StdErr() <= opt.RelErrTarget*m {
				break
			}
		}
		block *= 2
	}
	return Estimate{Mean: merged.Mean(), StdErr: merged.StdErr(), Rounds: int(merged.N())}, nil
}

// blockSeed derives the root seed of adaptive block `block`. The double
// SplitMix64 mixing keeps block streams decorrelated from each other and
// from the per-batch streams rng.Derive spawns inside each block (which mix
// through a different multiplier path), so growing the schedule never
// replays rounds.
func blockSeed(seed uint64, block int) uint64 {
	return rng.SplitMix64(seed ^ 0xB10C_5EED ^ rng.SplitMix64(uint64(block)*0xD1B54A32D192ED03+0x2545F4914F6CDD1D))
}
