package sweepstore

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/renewal"
)

// buildModel sweeps a small calibrated-pitch model to the given width.
func buildModel(t *testing.T, cache *renewal.SweepCache, law dist.Continuous, maxW float64) *renewal.Model {
	t.Helper()
	m, err := cache.Model(law, renewal.WithStep(0.1), renewal.WithMaxWidth(maxW))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CountPMF(maxW); err != nil {
		t.Fatal(err)
	}
	return m
}

func pitchLaw(t *testing.T) dist.Continuous {
	t.Helper()
	p, err := device.CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Round trip: persist swept tables, load them into a fresh cache, and
// require the restored count PMFs — and hence pF for all three paper
// corners — to be bit-exact.
func TestRoundTripBitExact(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	laws := []dist.Continuous{
		pitchLaw(t),
		dist.Exponential{Rate: 0.25},
		dist.Deterministic{V: 4},
	}
	cache := renewal.NewSweepCache()
	for _, law := range laws {
		buildModel(t, cache, law, 80)
	}
	n, err := PersistCache(store, cache)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(laws) {
		t.Fatalf("persisted %d records, want %d", n, len(laws))
	}

	warm := renewal.NewSweepCache()
	restored, err := WarmCache(store, warm)
	if err != nil {
		t.Fatal(err)
	}
	if restored != len(laws) {
		t.Fatalf("restored %d records, want %d", restored, len(laws))
	}
	widths := []float64{10, 35.5, 80}
	for _, law := range laws {
		orig := buildModel(t, cache, law, 80)
		re, err := warm.Model(law, renewal.WithStep(0.1), renewal.WithMaxWidth(80))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range widths {
			a, err := orig.CountPMF(w)
			if err != nil {
				t.Fatal(err)
			}
			b, err := re.CountPMF(w)
			if err != nil {
				t.Fatal(err)
			}
			if a.Len() != b.Len() {
				t.Fatalf("law %v w=%g: support %d vs %d", law, w, a.Len(), b.Len())
			}
			for k := 0; k < a.Len(); k++ {
				if math.Float64bits(a.Prob(k)) != math.Float64bits(b.Prob(k)) {
					t.Fatalf("law %v w=%g count %d: %x vs %x bits", law, w,
						k, math.Float64bits(a.Prob(k)), math.Float64bits(b.Prob(k)))
				}
			}
			// The three paper corners differ only in pf; PGF over bit-equal
			// masses is bit-equal, assert anyway at the corner level.
			for _, c := range device.PaperCorners() {
				pf := c.Params.PerCNTFailure()
				if math.Float64bits(a.PGF(pf)) != math.Float64bits(b.PGF(pf)) {
					t.Fatalf("law %v w=%g corner %s: pF differs after round trip", law, w, c.Name)
				}
			}
		}
	}
	// Restored tables must answer without sweeping.
	if st := warm.Stats(); st.Sweeps != 0 {
		t.Fatalf("warm cache ran %d sweeps, want 0", st.Sweeps)
	}
}

// Every single-byte corruption, truncation, or extension of a record file
// must be rejected at load time, never half-decoded into the cache.
func TestCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := renewal.NewSweepCache()
	buildModel(t, cache, dist.Exponential{Rate: 0.25}, 40)
	if _, err := PersistCache(store, cache); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"+fileExt))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 store file, got %v (err %v)", files, err)
	}
	orig, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(files[0], data, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := fresh.LoadAll()
		if err != nil {
			t.Fatalf("%s: LoadAll should skip, not fail: %v", name, err)
		}
		if len(recs) != 0 {
			t.Fatalf("%s: corrupt record was accepted", name)
		}
		if st := fresh.Stats(); st.Rejects != 1 {
			t.Fatalf("%s: rejects = %d, want 1", name, st.Rejects)
		}
	}

	// Flip one byte in several positions: magic, header, payload, CRC.
	for _, pos := range []int{0, 7, 12, len(orig) / 2, len(orig) - 2} {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0x40
		check("bit flip", mut)
	}
	// Truncations at several depths.
	for _, n := range []int{0, 4, 11, len(orig) / 3, len(orig) - 1} {
		check("truncation", orig[:n])
	}
	// Trailing garbage.
	check("trailing bytes", append(append([]byte(nil), orig...), 0xAA))

	// The pristine bytes still load.
	if err := os.WriteFile(files[0], orig, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fresh.LoadAll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("pristine file failed to load: %v (%d records)", err, len(recs))
	}
}

// Save keeps the widest horizon: a narrower snapshot must not clobber a
// wider record already on disk, and re-saving identical state is a no-op.
func TestSaveKeepsWidestHorizon(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := renewal.NewSweepCache()
	law := dist.Exponential{Rate: 0.25}
	m := buildModel(t, cache, law, 40) // sweeps to 40 of max 40
	wide := m.Snapshot()
	fp, _ := dist.Fingerprint(law)
	if err := store.Save(fp, wide); err != nil {
		t.Fatal(err)
	}
	narrow := *wide
	narrow.SweptTo = wide.SweptTo / 2
	narrow.PMFs = wide.PMFs[:narrow.SweptTo]
	if err := store.Save(fp, &narrow); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(fp, wide); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Saves != 1 {
		t.Fatalf("saves = %d, want 1 (narrow and identical re-saves skipped)", st.Saves)
	}
	recs, err := store.LoadAll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("LoadAll: %v (%d records)", err, len(recs))
	}
	if recs[0].Snapshot.SweptTo != wide.SweptTo {
		t.Fatalf("stored horizon %d, want %d", recs[0].Snapshot.SweptTo, wide.SweptTo)
	}
}

// Distinct grids of one law must coexist as distinct records.
func TestDistinctGridsCoexist(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := renewal.NewSweepCache()
	law := dist.Exponential{Rate: 0.25}
	for _, maxW := range []float64{40, 80} {
		m, err := cache.Model(law, renewal.WithStep(0.1), renewal.WithMaxWidth(maxW))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.CountPMF(maxW); err != nil {
			t.Fatal(err)
		}
	}
	n, err := PersistCache(store, cache)
	if err != nil || n != 2 {
		t.Fatalf("persisted %d (err %v), want 2", n, err)
	}
	recs, err := store.LoadAll()
	if err != nil || len(recs) != 2 {
		t.Fatalf("LoadAll: %v (%d records)", err, len(recs))
	}
}

// A snapshot must refuse to restore into a model with a different grid.
func TestRestoreRejectsGridMismatch(t *testing.T) {
	cache := renewal.NewSweepCache()
	m := buildModel(t, cache, dist.Exponential{Rate: 0.25}, 40)
	snap := m.Snapshot()
	other, err := renewal.New(dist.Exponential{Rate: 0.25}, renewal.WithStep(0.05), renewal.WithMaxWidth(40))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore across grids must fail")
	}
}

// Corrupt files are quarantined to .bad on load: renamed aside (so they are
// never re-rejected on later restarts) and counted in Stats().Quarantined.
func TestCorruptFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := renewal.NewSweepCache()
	buildModel(t, cache, dist.Exponential{Rate: 0.25}, 40)
	if _, err := PersistCache(store, cache); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"+fileExt))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 store file, got %v (err %v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // break the CRC
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fresh.LoadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("LoadAll = %d recs, %v", len(recs), err)
	}
	if st := fresh.Stats(); st.Rejects != 1 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 reject, 1 quarantined", st)
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in place: %v", err)
	}
	if _, err := os.Stat(files[0] + badExt); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// A second start sees a clean directory: no repeat reject.
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recs, err := again.LoadAll(); err != nil || len(recs) != 0 {
		t.Fatalf("second LoadAll = %d recs, %v", len(recs), err)
	}
	if st := again.Stats(); st.Rejects != 0 || st.Quarantined != 0 {
		t.Fatalf("second-start stats = %+v, want all zero", st)
	}
}

// An injected transient read failure skips the record without quarantining
// the (intact) file.
func TestInjectedLoadFaultDoesNotQuarantine(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := renewal.NewSweepCache()
	buildModel(t, cache, dist.Exponential{Rate: 0.25}, 40)
	if _, err := PersistCache(store, cache); err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable(fault.SiteStoreLoad, "error(io)@nth=1"); err != nil {
		t.Fatal(err)
	}
	recs, err := store.LoadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("LoadAll under fault = %d recs, %v", len(recs), err)
	}
	if st := store.Stats(); st.Quarantined != 0 || st.Rejects != 1 {
		t.Fatalf("stats = %+v: transient failure must reject without quarantine", st)
	}
	recs, err = store.LoadAll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("LoadAll after fault = %d recs, %v", len(recs), err)
	}
}

// With SetRetry armed, a transient save failure is retried and succeeds;
// without it, the first failure surfaces.
func TestSaveRetriesTransientFailures(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := renewal.NewSweepCache()
	law := dist.Exponential{Rate: 0.25}
	m := buildModel(t, cache, law, 40)
	fp, _ := dist.Fingerprint(law)

	// Unarmed: one try, the injected error surfaces.
	if err := fault.Enable(fault.SiteStoreSave, "error(disk)@nth=1"); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(fp, m.Snapshot()); err == nil {
		t.Fatal("unretried transient failure did not surface")
	}

	// Armed: the first two attempts fail, the third lands.
	if err := fault.Enable(fault.SiteStoreSave, "error(disk)@times=2"); err != nil {
		t.Fatal(err)
	}
	store.SetRetry(3, time.Millisecond)
	if err := store.Save(fp, m.Snapshot()); err != nil {
		t.Fatalf("retried save failed: %v", err)
	}
	if st := store.Stats(); st.Saves != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 1 save after 2 retries", st)
	}

	// A permanent failure still surfaces after the attempts are spent.
	if err := fault.Enable(fault.SiteStoreSave, "error(dead disk)"); err != nil {
		t.Fatal(err)
	}
	narrow := m.Snapshot()
	if err := store.Save(fp+"x", narrow); err == nil {
		t.Fatal("permanent failure did not surface")
	}
}
