// Package sweepstore persists swept renewal count tables on disk, so a
// restarted yield server — or a parallel process pointed at the same
// directory — warms its sweep cache instantly instead of recomputing the
// arrival convolutions (hundreds of milliseconds per law+grid at the
// paper's default resolution).
//
// Each record pairs a spacing law's dist.Fingerprint with a renewal.Snapshot
// (grid configuration + the per-width count PMFs swept so far). Records are
// stored one per file under a content-derived name, in a versioned binary
// format with a CRC-32 integrity trailer; corrupt, truncated or
// foreign-version files are rejected at load time and never reach the cache.
// Fingerprints encode parameters by exact float64 bits, so a decoded record
// rebuilds the identical law and the restored tables are bit-exact — a warm
// start can never change a result.
package sweepstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/fault"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rng"
)

// magic identifies a sweep-table file; the trailing byte is the format
// version. Decoders reject any other version outright rather than guessing.
var magic = [8]byte{'C', 'N', 'F', 'S', 'W', 'P', 0, 1}

const (
	// fileExt names store files; LoadAll only considers this extension.
	fileExt = ".sweep"
	// badExt suffixes quarantined files; ".sweep.bad" no longer matches
	// fileExt, so a quarantined record is never re-read.
	badExt = ".bad"
	// maxFileSize bounds how much LoadAll will read per record, so a
	// corrupted or adversarial directory cannot drive unbounded allocation.
	maxFileSize = 1 << 30
)

// Store is a directory of persisted sweep tables. All methods are safe for
// concurrent use; cross-process coordination relies on atomic rename, so two
// processes sharing one directory see whole files or nothing.
type Store struct {
	dir string

	saveMu      sync.Mutex // serializes in-process writers per store
	saves       atomic.Uint64
	loads       atomic.Uint64
	rejects     atomic.Uint64
	quarantined atomic.Uint64
	retries     atomic.Uint64

	// retryAttempts/retryBase configure Save's transient-failure retry
	// loop (see SetRetry); jitterState seeds its deterministic jitter.
	retryAttempts int
	retryBase     time.Duration
	jitterState   atomic.Uint64
}

// Stats reports a store's lifetime traffic (for /v1/stats).
type Stats struct {
	// Saves counts records written, Loads records decoded successfully,
	// Rejects files refused for integrity or format reasons, Quarantined
	// corrupt files renamed aside to .bad, Retries save attempts repeated
	// after a transient write failure.
	Saves, Loads, Rejects, Quarantined, Retries uint64
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("sweepstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the store's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Saves:       s.saves.Load(),
		Loads:       s.loads.Load(),
		Rejects:     s.rejects.Load(),
		Quarantined: s.quarantined.Load(),
		Retries:     s.retries.Load(),
	}
}

// SetRetry arms Save's transient-failure retry loop: up to attempts total
// tries per record, sleeping base<<try plus a small deterministic jitter
// between tries (no lock held while sleeping). Zero attempts (the default)
// means a single try — keeps unit tests and one-shot CLI runs snappy; the
// long-lived server opts in.
func (s *Store) SetRetry(attempts int, base time.Duration) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	s.retryAttempts = attempts
	s.retryBase = base
}

// Record is one persisted sweep table: the law identity plus the swept
// snapshot.
type Record struct {
	Fingerprint string
	Snapshot    *renewal.Snapshot
}

// fileName derives the record's file name from its full cache identity
// (renewal.Snapshot.Key: fingerprint + grid), so distinct grids of one law
// coexist. FNV-64a over the key keeps names short and filesystem-safe
// regardless of what the fingerprint contains.
func fileName(fp string, snap *renewal.Snapshot) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, snap.Key(fp))
	return fmt.Sprintf("%016x%s", h.Sum64(), fileExt)
}

// Save writes one record, atomically replacing any previous version of the
// same law+grid. A record already on disk with an equal or wider sweep
// horizon is left alone, so concurrent writers can only widen what is
// stored. With SetRetry armed, transient write failures are retried with
// exponential backoff plus deterministic jitter; the lock is dropped while
// sleeping, so retries never stall other savers.
func (s *Store) Save(fingerprint string, snap *renewal.Snapshot) error {
	if fingerprint == "" {
		return errors.New("sweepstore: empty fingerprint")
	}
	if snap == nil || snap.SweptTo != len(snap.PMFs) {
		return errors.New("sweepstore: malformed snapshot")
	}
	if snap.SweptTo == 0 {
		return nil // nothing swept, nothing worth storing
	}
	s.saveMu.Lock()
	attempts, base := s.retryAttempts, s.retryBase
	s.saveMu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			s.retries.Add(1)
			time.Sleep(backoff(base, try, s.jitterState.Add(1)))
		}
		if err = s.saveOnce(fingerprint, snap); err == nil {
			return nil
		}
	}
	return err
}

// backoff is base<<(try-1) plus a jitter in [0, base/2], derived from a
// SplitMix64 step of the store's advancing jitter stream — deterministic
// per process history, no global randomness.
func backoff(base time.Duration, try int, jitterStep uint64) time.Duration {
	d := base << (try - 1)
	return d + time.Duration(rng.SplitMix64(jitterStep)%uint64(base/2+1))
}

// saveOnce performs one locked read-compare-write attempt.
func (s *Store) saveOnce(fingerprint string, snap *renewal.Snapshot) error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	// Serializing the whole read-compare-write against concurrent savers is
	// this lock's entire purpose: the widen-only guarantee needs the read
	// and the rename to be one atomic step, so the file I/O stays inside
	// the critical section by design.
	return s.saveLocked(fingerprint, snap) //yield:allow(atomicsafe) saveMu exists to serialize whole-file persists; the read-compare-rename must be atomic under it
}

// saveLocked performs the read-compare-write cycle; saveMu must be held.
func (s *Store) saveLocked(fingerprint string, snap *renewal.Snapshot) error {
	path := filepath.Join(s.dir, fileName(fingerprint, snap))
	if old, err := s.loadFile(path); err == nil && old.Snapshot.SweptTo >= snap.SweptTo {
		return nil
	}
	if err := fault.Inject(fault.SiteStoreSave); err != nil {
		return fmt.Errorf("sweepstore: %w", err)
	}
	data := encode(fingerprint, snap)
	tmp, err := os.CreateTemp(s.dir, "tmp-*"+fileExt+".partial")
	if err != nil {
		return fmt.Errorf("sweepstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepstore: %w", err)
	}
	s.saves.Add(1)
	return nil
}

// LoadAll decodes every intact record in the store. Files that fail the
// integrity checks are quarantined — renamed to .bad and counted in
// Stats().Quarantined as well as Rejects — so one corrupted record costs
// that law a single cold sweep instead of a silent reject on every restart
// forever; the renamed file stays on disk for post-mortem. Transient read
// failures (and injected store.load faults) skip the file without
// quarantining it. Only directory-level I/O failures return an error.
func (s *Store) LoadAll() ([]Record, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("sweepstore: %w", err)
	}
	var out []Record
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), fileExt) || strings.HasSuffix(de.Name(), ".partial") {
			continue
		}
		path := filepath.Join(s.dir, de.Name())
		rec, err := s.loadFile(path)
		if err != nil {
			s.rejects.Add(1)
			if isIntegrityError(err) {
				s.quarantine(path)
			}
			continue
		}
		s.loads.Add(1)
		out = append(out, rec)
	}
	return out, nil
}

// integrityError marks a decode/format failure, as opposed to a transient
// read failure: only integrity failures quarantine the file.
type integrityError struct{ err error }

func (e integrityError) Error() string { return e.err.Error() }
func (e integrityError) Unwrap() error { return e.err }

func isIntegrityError(err error) bool {
	var ie integrityError
	return errors.As(err, &ie)
}

// quarantine renames a corrupt record aside so it is never re-read.
func (s *Store) quarantine(path string) {
	if os.Rename(path, path+badExt) == nil {
		s.quarantined.Add(1)
	}
}

// loadFile reads and verifies one record file.
func (s *Store) loadFile(path string) (Record, error) {
	if err := fault.Inject(fault.SiteStoreLoad); err != nil {
		return Record{}, fmt.Errorf("sweepstore: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return Record{}, err
	}
	if fi.Size() > maxFileSize {
		return Record{}, integrityError{fmt.Errorf("sweepstore: %s exceeds size bound", path)}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	rec, err := decode(data)
	if err != nil {
		return Record{}, integrityError{fmt.Errorf("sweepstore: %s: %w", path, err)}
	}
	return rec, nil
}

// encode renders a record in the versioned binary layout:
//
//	magic+version (8) | body | crc32(body) (4, little-endian)
//
// body:
//
//	uvarint len(fingerprint) | fingerprint bytes
//	step, maxWidth, tailEps as raw float64 bits (8 each, little-endian)
//	ordinary (1) | convMode (1)
//	uvarint sweptTo
//	sweptTo × PMF (uvarint support length + raw float64 bits per mass)
func encode(fingerprint string, snap *renewal.Snapshot) []byte {
	body := make([]byte, 0, 64+9*len(snap.PMFs))
	body = binary.AppendUvarint(body, uint64(len(fingerprint)))
	body = append(body, fingerprint...)
	for _, v := range []float64{snap.Step, snap.MaxWidth, snap.TailEps} {
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(v))
	}
	ord := byte(0)
	if snap.Ordinary {
		ord = 1
	}
	body = append(body, ord, byte(snap.ConvMode))
	body = binary.AppendUvarint(body, uint64(snap.SweptTo))
	for _, pmf := range snap.PMFs {
		body = pmf.AppendBinary(body)
	}
	out := make([]byte, 0, len(magic)+len(body)+4)
	out = append(out, magic[:]...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return out
}

// decode parses and verifies one encoded record.
func decode(data []byte) (Record, error) {
	if len(data) < len(magic)+4 {
		return Record{}, errors.New("truncated record")
	}
	if [8]byte(data[:8]) != magic {
		return Record{}, errors.New("bad magic or unsupported version")
	}
	body := data[8 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return Record{}, errors.New("checksum mismatch")
	}
	fpLen, used := binary.Uvarint(body)
	if used <= 0 || fpLen > uint64(len(body)-used) {
		return Record{}, errors.New("fingerprint length corrupt")
	}
	body = body[used:]
	fp := string(body[:fpLen])
	body = body[fpLen:]
	if len(body) < 3*8+2 {
		return Record{}, errors.New("header truncated")
	}
	snap := &renewal.Snapshot{}
	snap.Step = math.Float64frombits(binary.LittleEndian.Uint64(body[0:]))
	snap.MaxWidth = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
	snap.TailEps = math.Float64frombits(binary.LittleEndian.Uint64(body[16:]))
	snap.Ordinary = body[24] == 1
	snap.ConvMode = renewal.ConvMode(body[25])
	body = body[26:]
	sweptTo, used := binary.Uvarint(body)
	if used <= 0 {
		return Record{}, errors.New("sweep horizon corrupt")
	}
	body = body[used:]
	if !(snap.Step > 0) || !(snap.MaxWidth > snap.Step) {
		return Record{}, fmt.Errorf("grid (%g, %g) invalid", snap.Step, snap.MaxWidth)
	}
	if maxIdx := uint64(math.Round(snap.MaxWidth / snap.Step)); sweptTo == 0 || sweptTo > maxIdx {
		return Record{}, fmt.Errorf("sweep horizon %d out of range", sweptTo)
	}
	snap.SweptTo = int(sweptTo)
	snap.PMFs = make([]dist.PMF, snap.SweptTo)
	var err error
	for i := range snap.PMFs {
		snap.PMFs[i], body, err = dist.DecodePMF(body)
		if err != nil {
			return Record{}, fmt.Errorf("PMF %d: %w", i+1, err)
		}
	}
	if len(body) != 0 {
		return Record{}, fmt.Errorf("%d trailing bytes after last PMF", len(body))
	}
	if _, err := dist.ParseFingerprint(fp); err != nil {
		return Record{}, err
	}
	return Record{Fingerprint: fp, Snapshot: snap}, nil
}

// WarmCache loads every intact record into the sweep cache: the law is
// rebuilt from its fingerprint, registered under the exact same cache key a
// live query would use, and the swept tables are restored into it. Returns
// how many records were restored. Records whose law or tables fail
// validation are skipped, not fatal.
func WarmCache(s *Store, cache *renewal.SweepCache) (int, error) {
	recs, err := s.LoadAll()
	if err != nil {
		return 0, err
	}
	restored := 0
	for _, rec := range recs {
		law, err := dist.ParseFingerprint(rec.Fingerprint)
		if err != nil {
			s.rejects.Add(1)
			continue
		}
		m, err := cache.Model(law, rec.Snapshot.Options()...)
		if err != nil {
			s.rejects.Add(1)
			continue
		}
		if err := m.Restore(rec.Snapshot); err != nil {
			s.rejects.Add(1)
			continue
		}
		restored++
	}
	return restored, nil
}

// PersistCache saves a snapshot of every fingerprinted model in the cache,
// returning how many records were written (models with nothing swept are
// skipped, as are records no wider than what is already stored). Call it at
// shutdown, or opportunistically after cache misses, to keep the on-disk
// tables at least as warm as the process.
func PersistCache(s *Store, cache *renewal.SweepCache) (int, error) {
	var firstErr error
	written := 0
	cache.ForEach(func(fp string, m *renewal.Model) {
		snap := m.Snapshot()
		if snap.SweptTo == 0 {
			return
		}
		before := s.saves.Load()
		if err := s.Save(fp, snap); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		if s.saves.Load() > before {
			written++
		}
	})
	return written, firstErr
}
