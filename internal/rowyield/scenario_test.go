package rowyield

import (
	"math"
	"testing"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/renewal"
	"github.com/cnfet/yieldlab/internal/rng"
)

// testRowModel builds a small, fast row model: short LCNT and narrow
// devices so Monte Carlo means are large enough to verify tightly.
func testRowModel(t *testing.T, widthNM float64, offsets OffsetDist) RowModel {
	t.Helper()
	pitch, err := device.CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	return RowModel{
		Pitch:         pitch,
		PerCNTFailure: 0.531,
		WidthNM:       widthNM,
		LCNTNM:        20_000, // 20 µm rows: 36 FETs → fast rounds
		DensityPerUM:  1.8,
		Offsets:       offsets,
	}
}

func analyticPF(t *testing.T, widthNM float64) float64 {
	t.Helper()
	m, err := device.NewCalibratedModel(device.WorstCorner(),
		renewal.WithStep(0.05), renewal.WithMaxWidth(80))
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.FailureProb(widthNM)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRowModelValidate(t *testing.T) {
	good := testRowModel(t, 30, Aligned())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Pitch = nil
	if bad.Validate() == nil {
		t.Error("nil pitch")
	}
	bad = good
	bad.PerCNTFailure = 2
	if bad.Validate() == nil {
		t.Error("pf out of range")
	}
	bad = good
	bad.WidthNM = 0
	if bad.Validate() == nil {
		t.Error("zero width")
	}
	bad = good
	bad.Offsets = OffsetDist{}
	if bad.Validate() == nil {
		t.Error("empty offsets")
	}
}

func TestFETsPerRow(t *testing.T) {
	m := testRowModel(t, 30, Aligned())
	n, err := m.FETsPerRow()
	if err != nil {
		t.Fatal(err)
	}
	if n != 36 {
		t.Fatalf("FETs per row: %d want 36", n)
	}
}

// Aligned scenario must reproduce the analytic device failure probability:
// a fully correlated row fails exactly as often as one device (pRF = pF).
func TestAlignedMatchesDevicePF(t *testing.T) {
	const w = 30.0
	m := testRowModel(t, w, Aligned())
	r := rng.New(101)
	est, err := m.EstimateRowFailure(r, DirectionalAligned, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	want := analyticPF(t, w)
	if math.Abs(est.Mean-want) > 5*est.StdErr+0.02*want {
		t.Fatalf("aligned pRF %v ± %v vs analytic pF %v", est.Mean, est.StdErr, want)
	}
}

// Uncorrelated scenario must match 1-(1-pF)^m.
func TestUncorrelatedMatchesClosedForm(t *testing.T) {
	const w = 30.0
	m := testRowModel(t, w, Aligned())
	r := rng.New(103)
	est, err := m.EstimateRowFailure(r, UncorrelatedGrowth, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	pF := analyticPF(t, w)
	want, err := IndependentRowFailure(pF, 36)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-want) > 5*est.StdErr+0.03*want {
		t.Fatalf("uncorrelated pRF %v ± %v vs closed form %v", est.Mean, est.StdErr, want)
	}
}

// The Table 1 ordering: uncorrelated ≫ unaligned ≫ aligned, with the
// aligned benefit equal to the full MRmin factor.
func TestScenarioOrdering(t *testing.T) {
	const w = 30.0
	offsets, err := NewOffsetDist(
		[]float64{0, 60, 120, 180, 240, 300},
		[]float64{0.3, 0.2, 0.15, 0.15, 0.1, 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := testRowModel(t, w, offsets)
	r := rng.New(rng.DefaultSeed)
	rows, err := m.Table1(r, analyticPF(t, w), 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	unc, unal, al := rows[0].PRF.Mean, rows[1].PRF.Mean, rows[2].PRF.Mean
	if !(unc > unal && unal > al) {
		t.Fatalf("ordering violated: %v > %v > %v expected", unc, unal, al)
	}
	// Aligned benefit ≈ MRmin = 36 here (exactly, in the closed forms).
	if ratio := unc / al; ratio < 20 || ratio > 50 {
		t.Fatalf("aligned benefit %v, want ≈ 36", ratio)
	}
	// Unaligned benefit ≈ MRmin / distinct offsets = 36/6 = 6 for
	// non-overlapping offsets (offsets spaced ≥ 2W apart here).
	if ratio := unc / unal; ratio < 3.5 || ratio > 10 {
		t.Fatalf("unaligned benefit %v, want ≈ 6", ratio)
	}
	// Closed-form columns.
	if math.IsNaN(rows[0].Analytic) || math.IsNaN(rows[2].Analytic) {
		t.Fatal("closed forms missing")
	}
	if !math.IsNaN(rows[1].Analytic) {
		t.Fatal("unaligned should have no closed form")
	}
}

// First-order group model: with G well-separated equiprobable offsets all
// occupied, pRF(unaligned) ≈ G·pF.
func TestUnalignedGroupApproximation(t *testing.T) {
	const w = 25.0
	offsets, err := NewOffsetDist(
		[]float64{0, 100, 200}, // 3 groups, spaced 4×W: no overlap
		[]float64{1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := testRowModel(t, w, offsets)
	r := rng.New(7)
	est, err := m.EstimateRowFailure(r, DirectionalUnaligned, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * analyticPF(t, w)
	if math.Abs(est.Mean-want)/want > 0.2 {
		t.Fatalf("group approximation: %v vs %v", est.Mean, want)
	}
}

func TestEstimateErrors(t *testing.T) {
	m := testRowModel(t, 30, Aligned())
	r := rng.New(1)
	if _, err := m.EstimateRowFailure(r, DirectionalAligned, 1); err == nil {
		t.Error("too few rounds")
	}
	if _, err := m.EstimateRowFailure(r, Scenario(99), 10); err == nil {
		t.Error("unknown scenario")
	}
	bad := m
	bad.WidthNM = -1
	if _, err := bad.EstimateRowFailure(r, DirectionalAligned, 10); err == nil {
		t.Error("invalid model")
	}
	if _, err := m.Table1(r, 2.0, 10); err == nil {
		t.Error("devicePF out of range")
	}
}

func TestScenarioString(t *testing.T) {
	for _, s := range []Scenario{UncorrelatedGrowth, DirectionalUnaligned, DirectionalAligned} {
		if s.String() == "" {
			t.Fatal("empty scenario name")
		}
	}
	if Scenario(42).String() == "" {
		t.Fatal("unknown scenario should still print")
	}
}

// The first-order analytic estimate must track the Monte Carlo within ~25%
// in the Table 1 regime.
func TestUnalignedFirstOrderMatchesMC(t *testing.T) {
	const w = 30.0
	offsets, err := NewOffsetDist(
		[]float64{0, 20, 40, 60, 80, 100},
		[]float64{1, 1, 1, 1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := testRowModel(t, w, offsets)
	r := rng.New(41)
	est, err := m.EstimateRowFailure(r, DirectionalUnaligned, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	pF := analyticPF(t, w)
	approx, err := offsets.UnalignedFirstOrder(pF, 0.531, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx-est.Mean)/est.Mean > 0.30 {
		t.Fatalf("first order %v vs MC %v", approx, est.Mean)
	}
}

func TestUnalignedFirstOrderErrors(t *testing.T) {
	od, _ := NewOffsetDist([]float64{0, 20}, []float64{1, 1})
	if _, err := od.UnalignedFirstOrder(2, 0.5, 4); err == nil {
		t.Error("bad devicePF")
	}
	if _, err := od.UnalignedFirstOrder(0.1, -1, 4); err == nil {
		t.Error("bad pf")
	}
	if _, err := od.UnalignedFirstOrder(0.1, 0.5, 0); err == nil {
		t.Error("bad pitch")
	}
	empty := OffsetDist{Offsets: []float64{1}, Probs: []float64{0}}
	if _, err := empty.UnalignedFirstOrder(0.1, 0.5, 4); err == nil {
		t.Error("no occupied offsets")
	}
	// Single offset reduces to the aligned case.
	one, _ := NewOffsetDist([]float64{0}, []float64{1})
	v, err := one.UnalignedFirstOrder(1e-8, 0.531, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1e-8 {
		t.Fatalf("single offset should equal pF: %v", v)
	}
}

func TestEstimateRelErr(t *testing.T) {
	e := Estimate{Mean: 2, StdErr: 0.5}
	if e.RelErr() != 0.25 {
		t.Fatal("rel err")
	}
	if !math.IsInf(Estimate{}.RelErr(), 1) {
		t.Fatal("zero mean rel err")
	}
}
