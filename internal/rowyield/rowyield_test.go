package rowyield

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMRminPaperValue(t *testing.T) {
	// 200 µm × 1.8 FETs/µm = 360 ≈ the paper's 350× headline.
	v, err := MRmin(200_000, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 360, 1e-9) {
		t.Fatalf("MRmin = %v, want 360", v)
	}
	if _, err := MRmin(0, 1.8); err == nil {
		t.Error("zero LCNT")
	}
	if _, err := MRmin(200_000, 0); err == nil {
		t.Error("zero density")
	}
}

func TestCorrelatedYield(t *testing.T) {
	y, err := CorrelatedYield(91667, 1.09e-6)
	if err != nil {
		t.Fatal(err)
	}
	if y < 0.89 || y > 0.91 {
		t.Fatalf("paper-scale correlated yield: %v", y)
	}
	if y, _ := CorrelatedYield(0, 0.5); y != 1 {
		t.Fatal("zero rows")
	}
	if y, _ := CorrelatedYield(10, 1); y != 0 {
		t.Fatal("certain row failure")
	}
	if _, err := CorrelatedYield(-1, 0.5); err == nil {
		t.Error("negative rows")
	}
	if _, err := CorrelatedYield(1, 2); err == nil {
		t.Error("pRF > 1")
	}
}

func TestIndependentRowFailure(t *testing.T) {
	p, err := IndependentRowFailure(1.47e-8, 360)
	if err != nil {
		t.Fatal(err)
	}
	// ≈ 360 × 1.47e-8 = 5.3e-6: the Table 1 uncorrelated value.
	if p < 5.2e-6 || p > 5.4e-6 {
		t.Fatalf("uncorrelated pRF: %v, want ≈ 5.3e-6", p)
	}
	if p, _ := IndependentRowFailure(0, 100); p != 0 {
		t.Fatal("no failures")
	}
	if p, _ := IndependentRowFailure(1, 5); p != 1 {
		t.Fatal("certain failure")
	}
	if _, err := IndependentRowFailure(-0.1, 5); err == nil {
		t.Error("negative pF")
	}
	if _, err := IndependentRowFailure(0.1, -5); err == nil {
		t.Error("negative m")
	}
}

func TestIntervalBasics(t *testing.T) {
	if (Interval{2, 5}).Len() != 4 {
		t.Fatal("len")
	}
	if !(Interval{3, 2}).Empty() || (Interval{3, 2}).Len() != 0 {
		t.Fatal("empty")
	}
}

// Brute force: enumerate all 2^n track-failure patterns.
func bruteRowFailure(intervals []Interval, nTracks int, pf float64) float64 {
	total := 0.0
	for mask := 0; mask < 1<<nTracks; mask++ {
		p := 1.0
		for t := 0; t < nTracks; t++ {
			if mask&(1<<t) != 0 {
				p *= pf
			} else {
				p *= 1 - pf
			}
		}
		failed := false
		for _, iv := range intervals {
			all := true
			for t := iv.Lo; t <= iv.Hi; t++ {
				if mask&(1<<t) == 0 {
					all = false
					break
				}
			}
			if all {
				failed = true
				break
			}
		}
		if failed {
			total += p
		}
	}
	return total
}

func TestExactRowFailureSingleInterval(t *testing.T) {
	// One interval covering all tracks: P = pf^n.
	pf := 0.531
	for _, n := range []int{1, 3, 8} {
		got, err := ExactRowFailure([]Interval{{0, n - 1}}, n, pf)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(pf, float64(n))
		if !almost(got, want, 1e-12) {
			t.Fatalf("n=%d: %v want %v", n, got, want)
		}
	}
}

func TestExactRowFailureDisjoint(t *testing.T) {
	// Two disjoint intervals: 1-(1-pf^2)².
	pf := 0.4
	got, err := ExactRowFailure([]Interval{{0, 1}, {3, 4}}, 5, pf)
	if err != nil {
		t.Fatal(err)
	}
	q := pf * pf
	want := 1 - (1-q)*(1-q)
	if !almost(got, want, 1e-12) {
		t.Fatalf("disjoint: %v want %v", got, want)
	}
}

func TestExactRowFailureIdentical(t *testing.T) {
	// Duplicated intervals must not double count.
	pf := 0.3
	got, err := ExactRowFailure([]Interval{{1, 3}, {1, 3}, {1, 3}}, 6, pf)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(pf, 3)
	if !almost(got, want, 1e-12) {
		t.Fatalf("identical: %v want %v", got, want)
	}
}

func TestExactRowFailureEdgeCases(t *testing.T) {
	if p, err := ExactRowFailure(nil, 10, 0.5); err != nil || p != 0 {
		t.Fatalf("no intervals: %v %v", p, err)
	}
	if p, err := ExactRowFailure([]Interval{{2, 1}}, 10, 0.5); err != nil || p != 1 {
		t.Fatalf("empty interval: %v %v", p, err)
	}
	if _, err := ExactRowFailure([]Interval{{0, 10}}, 5, 0.5); err == nil {
		t.Error("interval beyond range")
	}
	if _, err := ExactRowFailure([]Interval{{-1, 2}}, 5, 0.5); err == nil {
		t.Error("negative lo")
	}
	if _, err := ExactRowFailure([]Interval{{0, 1}}, 5, 1.5); err == nil {
		t.Error("pf out of range")
	}
	if p, err := ExactRowFailure([]Interval{{0, 2}}, 5, 0); err != nil || p != 0 {
		t.Fatalf("pf=0: %v %v", p, err)
	}
	if p, err := ExactRowFailure([]Interval{{0, 2}}, 5, 1); err != nil || p != 1 {
		t.Fatalf("pf=1: %v %v", p, err)
	}
}

// Property: the DP matches brute-force enumeration on random overlapping
// interval families.
func TestQuickExactRowFailureVsBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed))
		nTracks := 2 + r.Intn(13) // ≤ 14 tracks: 16k patterns
		nIv := 1 + r.Intn(6)
		ivs := make([]Interval, nIv)
		for i := range ivs {
			lo := r.Intn(nTracks)
			hi := lo + r.Intn(nTracks-lo)
			ivs[i] = Interval{lo, hi}
		}
		pf := 0.05 + 0.9*r.Float64()
		got, err := ExactRowFailure(ivs, nTracks, pf)
		if err != nil {
			return false
		}
		want := bruteRowFailure(ivs, nTracks, pf)
		return almost(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetDist(t *testing.T) {
	if _, err := NewOffsetDist(nil, nil); err == nil {
		t.Error("empty")
	}
	if _, err := NewOffsetDist([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch")
	}
	if _, err := NewOffsetDist([]float64{-1}, []float64{1}); err == nil {
		t.Error("negative offset")
	}
	if _, err := NewOffsetDist([]float64{1}, []float64{0}); err == nil {
		t.Error("zero mass")
	}
	o, err := NewOffsetDist([]float64{0, 100, 200}, []float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(o.Probs[0], 0.5, 1e-15) {
		t.Fatal("normalization")
	}
	if o.Span() != 200 {
		t.Fatal("span")
	}
	if o.DistinctCount() != 3 {
		t.Fatal("distinct")
	}
	a := Aligned()
	if a.Span() != 0 || a.DistinctCount() != 1 {
		t.Fatal("aligned dist")
	}
	r := rng.New(3)
	counts := map[float64]int{}
	for i := 0; i < 60_000; i++ {
		counts[o.Sample(r)]++
	}
	if f := float64(counts[0]) / 60000; !almost(f, 0.5, 0.01) {
		t.Fatalf("sample freq: %v", f)
	}
}
