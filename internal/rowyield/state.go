package rowyield

import (
	"fmt"
	"math"
)

// This file holds the reusable per-goroutine scratch of the Monte Carlo
// round functions. A steady-state round — track realization, interval
// extraction, dedup, exact DP — touches only memory owned by its RoundState,
// so it performs zero heap allocations and needs no locking: the parallel
// estimators give every worker goroutine its own state via
// montecarlo.RunState.

// intervalSet is a small open-addressing hash set of Intervals. It replaces
// the per-round map[Interval]bool of the directional rounds: probing a flat
// array beats map overhead at the ~dozen distinct intervals a round sees,
// and generation-stamped slots make reset O(1) instead of O(capacity).
type intervalSet struct {
	keys []Interval
	gens []uint32
	gen  uint32
	n    int // live entries in the current generation
	// grows counts table doublings over the set's lifetime — scratch-growth
	// events surfaced through RoundState.ScratchAllocs.
	grows uint64
}

// initCap rounds up to a power of two ≥ 4·want/3 so the load factor stays
// below 3/4 without growth for the expected population.
func (s *intervalSet) init(want int) {
	capacity := 16
	for capacity*3 < want*4 {
		capacity *= 2
	}
	s.keys = make([]Interval, capacity)
	s.gens = make([]uint32, capacity)
	s.gen = 1
	s.n = 0
}

// reset empties the set without touching the slots.
func (s *intervalSet) reset() {
	s.gen++
	s.n = 0
	if s.gen == 0 { // uint32 wrap: stale stamps could alias, clear for real
		for i := range s.gens {
			s.gens[i] = 0
		}
		s.gen = 1
	}
}

// hash mixes the interval endpoints SplitMix64-style; the low bits index the
// table.
func (s *intervalSet) hash(iv Interval) uint64 {
	z := uint64(uint32(iv.Lo))<<32 | uint64(uint32(iv.Hi))
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// add inserts iv and reports whether it was absent. The set grows (the only
// allocating path, which stops once the capacity covers the model's interval
// population) when a generation fills 3/4 of the slots.
func (s *intervalSet) add(iv Interval) bool {
	if len(s.keys) == 0 {
		s.init(16)
	}
	mask := uint64(len(s.keys) - 1)
	i := s.hash(iv) & mask
	for s.gens[i] == s.gen {
		if s.keys[i] == iv {
			return false
		}
		i = (i + 1) & mask
	}
	s.keys[i] = iv
	s.gens[i] = s.gen
	s.n++
	if s.n*4 >= len(s.keys)*3 {
		s.grow()
	}
	return true
}

// grow doubles the table, rehashing the live generation.
func (s *intervalSet) grow() {
	s.grows++ // init leaves the lifetime counter alone
	oldKeys, oldGens, oldGen := s.keys, s.gens, s.gen
	s.init(len(oldKeys) * 2)
	for i, g := range oldGens {
		if g != oldGen {
			continue
		}
		iv := oldKeys[i]
		mask := uint64(len(s.keys) - 1)
		j := s.hash(iv) & mask
		for s.gens[j] == s.gen {
			j = (j + 1) & mask
		}
		s.keys[j] = iv
		s.gens[j] = s.gen
		s.n++
	}
}

// RoundState is the reusable scratch of one Monte Carlo round. States are
// not safe for concurrent use; give each goroutine its own (the parallel
// estimators do, through the montecarlo engine's per-worker factory).
type RoundState struct {
	tracks    []float64
	intervals []Interval
	seen      intervalSet
	// Exact-DP scratch (see exactRowFailureInto).
	minLenEnd []int32
	ring      []float64
	// scratchAllocs counts scratch-growth events (capacity-miss fallbacks,
	// track-buffer growth) over the state's lifetime; see ScratchAllocs.
	scratchAllocs uint64
}

// ScratchAllocs returns the state's cumulative scratch-growth events:
// capacity-miss reallocations in the DP scratch, track-buffer growth past
// NewRoundState's pre-sizing, and interval-set doublings. It implements
// obs.ScratchCounter, so the montecarlo engine folds the count into a
// span's counters at worker exit; a non-zero steady-state value flags a
// pre-sizing regression worth investigating.
func (st *RoundState) ScratchAllocs() uint64 {
	return st.scratchAllocs + st.seen.grows
}

// NewRoundState returns scratch pre-sized for the model's expected track and
// interval populations, so steady-state rounds allocate nothing. Call after
// Prepare (estimator entry points do both).
func (m *RowModel) NewRoundState() *RoundState {
	st := &RoundState{}
	// Expected tracks over the widest realized span, with 4× headroom for
	// pitch-law fluctuation; the append paths grow past it if a realization
	// ever needs more. clampCount bounds degenerate width/pitch ratios, and
	// an invalid model (nil pitch) just gets the default sizing — Round's
	// Prepare will reject it with a proper error before the scratch is used.
	span := m.WidthNM + m.Offsets.Span()
	expect := 64
	if m.Pitch != nil {
		if mean := m.Pitch.Mean(); mean > 0 {
			expect = clampCount(span/mean)*4 + 64
		}
	}
	st.tracks = make([]float64, 0, expect)
	nIvs := m.Offsets.DistinctCount() + 1
	st.intervals = make([]Interval, 0, nIvs)
	st.seen.init(nIvs)
	st.minLenEnd = make([]int32, 0, expect)
	ringCap := 1
	for ringCap < expect {
		ringCap <<= 1
	}
	st.ring = make([]float64, 0, ringCap)
	return st
}

// exactRowFailureInto is the engine behind ExactRowFailure, over
// caller-owned scratch. The run-length Markov chain is evaluated in a
// sliding ring buffer: advancing one track is a base-index decrement plus a
// saturation fold (run lengths cap at maxLen) instead of an O(maxLen) copy,
// and the uniform pf-scaling of surviving runs is carried in a scalar
// `scale` factored out of the buffer. The per-track cost is O(1) plus the
// width of the run range an ending interval kills, so a realization costs
// O(nTracks + total killed range) instead of O(nTracks × maxLen).
//
//yield:noalloc
func exactRowFailureInto(st *RoundState, intervals []Interval, nTracks int, pf float64) (float64, error) {
	if err := validateRowFailureArgs(nTracks, pf); err != nil {
		return 0, err
	}
	// minLenEnd[t] = length of the shortest interval ending exactly at t
	// (0 = none). The shortest is binding: a failure run of that length
	// kills the row.
	if cap(st.minLenEnd) < nTracks {
		st.scratchAllocs++
		st.minLenEnd = make([]int32, nTracks) //yield:allow(noalloc) capacity-miss fallback; NewRoundState pre-sizes this so steady-state rounds never take it
	}
	minLenEnd := st.minLenEnd[:nTracks]
	for i := range minLenEnd {
		minLenEnd[i] = 0
	}
	maxLen := 0
	for _, iv := range intervals {
		if iv.Empty() {
			// A CNFET with no tracks fails with certainty.
			return 1, nil
		}
		if iv.Lo < 0 || iv.Hi >= nTracks {
			return 0, fmt.Errorf("rowyield: interval [%d,%d] outside track range [0,%d)", iv.Lo, iv.Hi, nTracks) //yield:allow(noalloc) cold error path guarding caller bugs, never taken in steady state
		}
		l := iv.Len()
		if l > maxLen {
			maxLen = l
		}
		if cur := minLenEnd[iv.Hi]; cur == 0 || int32(l) < cur {
			minLenEnd[iv.Hi] = int32(l)
		}
	}
	if len(intervals) == 0 {
		return 0, nil
	}
	switch pf {
	case 0:
		return 0, nil // no track ever fails; every interval is non-empty
	case 1:
		return 1, nil // every track fails, completing any interval
	}
	// ring[(base+r)&mask]·scale = P(current consecutive-failure run length
	// = r, no interval fully failed so far); runs saturate at maxLen (any
	// binding threshold is ≤ maxLen, so saturation never hides a
	// violation). Slots outside the window [base, base+maxLen] are stale
	// and never read: the window slides by one slot per track, the freshly
	// entered slot is overwritten with the new zero-run mass, and the slot
	// that falls out is first folded into the saturation cap.
	ringCap := 1
	for ringCap < maxLen+1 {
		ringCap <<= 1
	}
	if cap(st.ring) < ringCap {
		st.scratchAllocs++
		st.ring = make([]float64, ringCap) //yield:allow(noalloc) capacity-miss fallback; NewRoundState pre-sizes this so steady-state rounds never take it
	}
	ring := st.ring[:ringCap]
	for i := range ring {
		ring[i] = 0
	}
	mask := ringCap - 1
	base := 0
	ring[0] = 1
	scale, invScale := 1.0, 1.0
	invPf := 1 / pf
	q := 1 - pf
	alive := 1.0
	for t := 0; t < nTracks; t++ {
		// Transition: every run extends by one (×pf, carried by scale),
		// the saturation cap absorbs the run falling off the window, and
		// the new zero-run slot collects (1-pf)·(surviving mass).
		top := ring[(base+maxLen)&mask]
		base = (base - 1) & mask
		ring[(base+maxLen)&mask] += top
		scale *= pf
		invScale *= invPf
		if scale < 1e-150 {
			// Renormalize before invScale can overflow on long rows.
			for r := 0; r <= maxLen; r++ {
				ring[(base+r)&mask] *= scale
			}
			scale, invScale = 1, 1
		}
		ring[base] = q * alive * invScale
		if need := int(minLenEnd[t]); need > 0 {
			// Any run ≥ need that ends at t completes an interval: that
			// probability mass dies.
			for r := need; r <= maxLen; r++ {
				j := (base + r) & mask
				alive -= scale * ring[j]
				ring[j] = 0
			}
		}
	}
	st.ring = ring[:0]
	// Numerical guard.
	if alive < 0 {
		alive = 0
	}
	if alive > 1 {
		alive = 1
	}
	return 1 - alive, nil
}

func validateRowFailureArgs(nTracks int, pf float64) error {
	if pf < 0 || pf > 1 || math.IsNaN(pf) {
		return fmt.Errorf("rowyield: pf %g out of [0,1]", pf)
	}
	if nTracks < 0 {
		return fmt.Errorf("rowyield: nTracks %d negative", nTracks)
	}
	return nil
}
