package rowyield

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/dist"
)

// TiltedRowModel is the importance-sampling counterpart of a prepared
// RowModel: it draws the renewal gaps of a directional round from the
// exponentially tilted pitch law (dist.TruncNormal.Tilt) and returns each
// round's exact conditional failure probability multiplied by the
// realization's unbiased likelihood-ratio weight.
//
// Only the pitch draws are tilted. The first gap keeps the base model's
// stationary forward-recurrence law at weight one — the weight of a round is
// then exp(k·log M(θ) − θ·D) where k is the number of tilted draws and D
// their sum, and both are recovered from the realization itself: k is the
// track count and D the total displacement from the first track to the final
// overshoot, so the zero-allocation round structure of the base engine
// carries over unchanged. Unbiasedness is the standard sequentially-stopped
// importance-sampling argument: the number of draws is a stopping time of
// the drawn prefix (the loop stops when the running sum passes the span), so
// E_θ[p(T)·W(T)] = E[p(T)] for every realization functional p.
//
// A TiltedRowModel is immutable after construction and safe for concurrent
// use; rounds need a per-goroutine RoundState from the base model's
// NewRoundState.
type TiltedRowModel struct {
	base        *RowModel
	theta       float64
	logM        float64
	samplePitch dist.Sampler
}

// Tilted builds the importance sampler for tilt parameter theta. The model's
// pitch law must be a dist.TruncNormal (the calibrated pitch family); theta
// zero returns a weight-one sampler identical to the plain rounds. The
// tilted law is a plain TruncNormal, so its tabulated inverse-CDF sampler is
// shared through the same fingerprint-keyed cache as every other law.
func (m *RowModel) Tilted(theta float64) (*TiltedRowModel, error) {
	if err := m.Prepare(); err != nil {
		return nil, err
	}
	var tn dist.TruncNormal
	switch p := m.Pitch.(type) {
	case dist.TruncNormal:
		tn = p
	case *dist.TruncNormal:
		tn = *p
	default:
		return nil, fmt.Errorf("rowyield: tilting requires a truncated-normal pitch law, have %T", m.Pitch)
	}
	tilted, logM, err := tn.Tilt(theta)
	if err != nil {
		return nil, err
	}
	sampler, err := dist.FastSamplerFor(tilted)
	if err != nil {
		return nil, err
	}
	return &TiltedRowModel{base: m, theta: theta, logM: logM, samplePitch: sampler}, nil
}

// Base returns the untilted model the sampler was built from.
func (t *TiltedRowModel) Base() *RowModel { return t.base }

// Theta returns the tilt parameter.
func (t *TiltedRowModel) Theta() float64 { return t.theta }

// NewRoundState returns scratch for the tilted rounds (tilted realizations
// have no more tracks than the base law's sizing expects for theta ≥ 0, and
// the buffers grow on demand for theta < 0).
func (t *TiltedRowModel) NewRoundState() *RoundState { return t.base.NewRoundState() }

// sampleTracks realizes the track process over [0, span) with tilted pitch
// draws, returning the buffer and the total tilted displacement D = Σ tilted
// draws (the distance from the first track to the final overshoot). The
// number of tilted draws equals the returned track count.
//
//yield:noalloc
func (t *TiltedRowModel) sampleTracks(r *rand.Rand, span float64, tracks []float64) ([]float64, float64) {
	y0 := t.base.sampleFirst(r)
	y := y0
	for y < span {
		tracks = append(tracks, y) //yield:allow(noalloc) appends into NewRoundState's pre-sized track buffer; capacity stops growing once it covers the realized span
		y += t.samplePitch(r)
	}
	return tracks, y - y0
}

// Round runs one importance-sampled realization of scenario s and returns
// p·W: the realization's exact conditional failure probability times its
// likelihood-ratio weight. Averaging Round over tilted realizations is an
// unbiased estimator of the same pRF the plain rounds estimate, with the
// variance concentrated where the tilt steers mass into the failure region.
// Only the directional scenarios are supported — the uncorrelated scenario
// has the closed form IndependentRowFailure and needs no sampling at all.
//
//yield:noalloc
func (t *TiltedRowModel) Round(r *rand.Rand, s Scenario, st *RoundState) (float64, error) {
	pw, _, err := t.Moments(r, s, st)
	return pw, err
}

// Moments runs one tilted realization and returns the pair (p·W, p²·W):
// one-sample unbiased estimators of the base law's first and second moments
// E[p] and E[p²] of the conditional failure probability. The second moment
// is what prices an untilted run's variance — Var_plain/round = E[p²]−E[p]²
// — and in the deep tail it is exactly the quantity a plain run cannot
// measure about itself: the heavy p-tail that dominates E[p²] is the part
// plain sampling essentially never visits, so plain Welford error bars
// collapse spuriously. Estimating E[p²] under the tilted law instead keeps
// the auto-selection and the variance-ratio gates honest.
//
//yield:noalloc
func (t *TiltedRowModel) Moments(r *rand.Rand, s Scenario, st *RoundState) (pw, p2w float64, err error) {
	m := t.base
	var span float64
	switch s {
	case DirectionalAligned:
		span = m.WidthNM
	case DirectionalUnaligned:
		span = m.WidthNM + m.offSpan
	default:
		return 0, 0, fmt.Errorf("rowyield: tilted rounds support directional scenarios, not %v", s) //yield:allow(noalloc) cold error path for an unsupported scenario, never taken in steady state
	}
	var disp float64
	st.tracks, disp = t.sampleTracks(r, span, st.tracks[:0])
	logW := float64(len(st.tracks))*t.logM - t.theta*disp
	var p float64
	if s == DirectionalAligned {
		p, err = m.alignedFromTracks(st)
	} else {
		p, err = m.unalignedFromTracks(r, st)
	}
	if err != nil {
		return 0, 0, err
	}
	if p == 0 {
		return 0, 0, nil // avoid 0·exp(overflow) = NaN for extreme negative tilts
	}
	pw = p * math.Exp(logW)
	return pw, p * pw, nil
}
