package rowyield

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/montecarlo"
	"github.com/cnfet/yieldlab/internal/stat"
)

// Scenario selects one of Table 1's growth/layout combinations.
type Scenario int

// The three columns of Table 1.
const (
	// UncorrelatedGrowth: non-directional growth, no CNT sharing anywhere.
	UncorrelatedGrowth Scenario = iota
	// DirectionalUnaligned: directional growth, stock cell library (active
	// regions at library-dependent lateral offsets).
	DirectionalUnaligned
	// DirectionalAligned: directional growth plus the aligned-active layout
	// restriction — the paper's proposal.
	DirectionalAligned
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case UncorrelatedGrowth:
		return "uncorrelated growth"
	case DirectionalUnaligned:
		return "directional growth, non-aligned"
	case DirectionalAligned:
		return "directional growth, aligned-active"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// RowModel describes one row of minimum-width CNFETs for the Table 1
// Monte Carlo. Build the stationary sampler once with Prepare (or let the
// estimators do it lazily).
type RowModel struct {
	// Pitch is the inter-track spacing law (calibrated truncated normal).
	Pitch dist.Continuous
	// PerCNTFailure is pf from Eq. 2.1.
	PerCNTFailure float64
	// WidthNM is the (common) width of the minimum-size CNFETs.
	WidthNM float64
	// LCNTNM is the CNT length (200 µm).
	LCNTNM float64
	// DensityPerUM is Pmin-CNFET, the min-width CNFET density along the row
	// (1.8 FETs/µm in the paper's placed OpenRISC design).
	DensityPerUM float64
	// Offsets is the lateral offset distribution of the (unmodified) cell
	// library, used by the DirectionalUnaligned scenario.
	Offsets OffsetDist

	// fr is the cached stationary forward-recurrence sampler for Pitch.
	fr *dist.ForwardRecurrence
}

// Prepare builds the stationary first-gap sampler. Estimators call it
// automatically; calling it up front moves the one-time cost out of timed
// sections and surfaces configuration errors early.
func (m *RowModel) Prepare() error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.fr != nil {
		return nil
	}
	// The cached constructor shares one table per distinct pitch law, so
	// parameter sweeps building thousands of RowModels pay for one
	// integration.
	fr, err := dist.ForwardRecurrenceFor(m.Pitch)
	if err != nil {
		return fmt.Errorf("rowyield: stationary sampler: %w", err)
	}
	m.fr = fr
	return nil
}

// Validate checks the model.
func (m RowModel) Validate() error {
	if m.Pitch == nil {
		return errors.New("rowyield: nil pitch distribution")
	}
	if m.PerCNTFailure < 0 || m.PerCNTFailure > 1 || math.IsNaN(m.PerCNTFailure) {
		return fmt.Errorf("rowyield: pf %g out of [0,1]", m.PerCNTFailure)
	}
	if !(m.WidthNM > 0) {
		return fmt.Errorf("rowyield: width %g must be positive", m.WidthNM)
	}
	if _, err := MRmin(m.LCNTNM, m.DensityPerUM); err != nil {
		return err
	}
	if len(m.Offsets.Offsets) == 0 {
		return errors.New("rowyield: empty offset distribution")
	}
	return nil
}

// FETsPerRow returns MRmin rounded to the nearest whole device.
func (m RowModel) FETsPerRow() (int, error) {
	v, err := MRmin(m.LCNTNM, m.DensityPerUM)
	if err != nil {
		return 0, err
	}
	n := int(math.Round(v))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// Estimate is a Monte Carlo estimate with its standard error.
type Estimate struct {
	Mean   float64
	StdErr float64
	Rounds int
}

// RelErr returns StdErr/Mean (infinite for a zero mean).
func (e Estimate) RelErr() float64 {
	if e.Mean == 0 {
		return math.Inf(1)
	}
	return e.StdErr / e.Mean
}

// EstimateRowFailure estimates pRF for the scenario using `rounds` Monte
// Carlo realizations of the track process (and offsets, for the unaligned
// scenario). Each round contributes an exact conditional probability, not a
// Bernoulli outcome, which is what makes 1e-8-scale probabilities reachable
// without rare-event tricks.
func (m *RowModel) EstimateRowFailure(r *rand.Rand, s Scenario, rounds int) (Estimate, error) {
	if err := m.Prepare(); err != nil {
		return Estimate{}, err
	}
	if rounds < 2 {
		return Estimate{}, fmt.Errorf("rowyield: need ≥ 2 rounds, got %d", rounds)
	}
	nFETs, err := m.FETsPerRow()
	if err != nil {
		return Estimate{}, err
	}
	var w stat.Welford
	for i := 0; i < rounds; i++ {
		p, err := m.round(r, s, nFETs)
		if err != nil {
			return Estimate{}, err
		}
		w.Add(p)
	}
	return Estimate{Mean: w.Mean(), StdErr: w.StdErr(), Rounds: rounds}, nil
}

// EstimateRowFailureParallel runs the same estimator across worker
// goroutines via the montecarlo engine; the result is reproducible from the
// seed regardless of worker count.
func (m *RowModel) EstimateRowFailureParallel(seed uint64, s Scenario, rounds, workers int) (Estimate, error) {
	if err := m.Prepare(); err != nil {
		return Estimate{}, err
	}
	nFETs, err := m.FETsPerRow()
	if err != nil {
		return Estimate{}, err
	}
	est, err := montecarlo.Run(rounds, func(r *rand.Rand) (float64, error) {
		return m.round(r, s, nFETs)
	}, montecarlo.Options{Seed: seed, Workers: workers})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Mean: est.Mean, StdErr: est.StdErr, Rounds: est.Rounds}, nil
}

// round dispatches one Monte Carlo realization.
func (m *RowModel) round(r *rand.Rand, s Scenario, nFETs int) (float64, error) {
	switch s {
	case UncorrelatedGrowth:
		return m.roundUncorrelated(r, nFETs)
	case DirectionalUnaligned:
		return m.roundDirectional(r, nFETs, false)
	case DirectionalAligned:
		return m.roundDirectional(r, nFETs, true)
	default:
		return 0, fmt.Errorf("rowyield: unknown scenario %d", int(s))
	}
}

// roundUncorrelated: every CNFET sees its own independent track window.
// Row survives iff every CNFET survives:
// P(fail | counts) = 1 - Π_i (1 - pf^{N_i}).
func (m *RowModel) roundUncorrelated(r *rand.Rand, nFETs int) (float64, error) {
	logSurv := 0.0
	for i := 0; i < nFETs; i++ {
		n := m.countInWindow(r, m.WidthNM)
		pFail := math.Pow(m.PerCNTFailure, float64(n)) // pf^0 = 1: empty window always fails
		if pFail >= 1 {
			return 1, nil
		}
		logSurv += math.Log1p(-pFail)
	}
	return -math.Expm1(logSurv), nil
}

// roundDirectional: one shared track realization; each CNFET covers the
// tracks inside [offset, offset+W). Exact interval DP on the realization.
func (m *RowModel) roundDirectional(r *rand.Rand, nFETs int, aligned bool) (float64, error) {
	span := m.WidthNM
	if !aligned {
		span += m.Offsets.Span()
	}
	tracks := m.sampleTracks(r, span)
	intervals := make([]Interval, 0, nFETs)
	seen := make(map[Interval]bool, 16)
	for i := 0; i < nFETs; i++ {
		off := 0.0
		if !aligned {
			off = m.Offsets.Sample(r)
		}
		iv := windowInterval(tracks, off, off+m.WidthNM)
		if iv.Empty() {
			return 1, nil // a CNFET with zero tracks fails with certainty
		}
		if !seen[iv] {
			seen[iv] = true
			intervals = append(intervals, iv)
		}
	}
	return ExactRowFailure(intervals, len(tracks), m.PerCNTFailure)
}

// sampleTracks realizes stationary renewal track positions over [0, span):
// the first gap follows the exact forward-recurrence law, later gaps the
// pitch law.
func (m *RowModel) sampleTracks(r *rand.Rand, span float64) []float64 {
	y := m.fr.Sample(r)
	var tracks []float64
	for y < span {
		tracks = append(tracks, y)
		y += m.Pitch.Sample(r)
	}
	return tracks
}

// countInWindow samples the CNT count of one independent window of width w.
func (m *RowModel) countInWindow(r *rand.Rand, w float64) int {
	n := 0
	y := m.fr.Sample(r)
	for y < w {
		n++
		y += m.Pitch.Sample(r)
	}
	return n
}

// windowInterval returns the inclusive index range of sorted track
// positions falling inside [lo, hi).
func windowInterval(tracks []float64, lo, hi float64) Interval {
	start := sort.SearchFloat64s(tracks, lo)
	end := sort.SearchFloat64s(tracks, hi) - 1
	return Interval{Lo: start, Hi: end}
}

// Table1Row is one scenario line of the Table 1 reproduction.
type Table1Row struct {
	Scenario Scenario
	PRF      Estimate
	// Analytic carries the closed-form value where one exists
	// (uncorrelated: 1-(1-pF)^MRmin; aligned: pF), NaN otherwise.
	Analytic float64
}

// Table1Parallel runs all three scenarios on worker goroutines.
func (m *RowModel) Table1Parallel(seed uint64, devicePF float64, rounds, workers int) ([]Table1Row, error) {
	if devicePF < 0 || devicePF > 1 || math.IsNaN(devicePF) {
		return nil, fmt.Errorf("rowyield: devicePF %g out of [0,1]", devicePF)
	}
	mr, err := MRmin(m.LCNTNM, m.DensityPerUM)
	if err != nil {
		return nil, err
	}
	out := make([]Table1Row, 0, 3)
	for si, s := range []Scenario{UncorrelatedGrowth, DirectionalUnaligned, DirectionalAligned} {
		est, err := m.EstimateRowFailureParallel(seed+uint64(si)*0x9E37, s, rounds, workers)
		if err != nil {
			return nil, err
		}
		analytic := math.NaN()
		switch s {
		case UncorrelatedGrowth:
			analytic, err = IndependentRowFailure(devicePF, mr)
			if err != nil {
				return nil, err
			}
		case DirectionalAligned:
			analytic = devicePF
		}
		out = append(out, Table1Row{Scenario: s, PRF: est, Analytic: analytic})
	}
	return out, nil
}

// Table1 runs all three scenarios. devicePF is the analytic device failure
// probability at WidthNM (from the device model), used for the closed-form
// columns.
func (m *RowModel) Table1(r *rand.Rand, devicePF float64, rounds int) ([]Table1Row, error) {
	if devicePF < 0 || devicePF > 1 || math.IsNaN(devicePF) {
		return nil, fmt.Errorf("rowyield: devicePF %g out of [0,1]", devicePF)
	}
	mr, err := MRmin(m.LCNTNM, m.DensityPerUM)
	if err != nil {
		return nil, err
	}
	out := make([]Table1Row, 0, 3)
	for _, s := range []Scenario{UncorrelatedGrowth, DirectionalUnaligned, DirectionalAligned} {
		est, err := m.EstimateRowFailure(r, s, rounds)
		if err != nil {
			return nil, err
		}
		analytic := math.NaN()
		switch s {
		case UncorrelatedGrowth:
			analytic, err = IndependentRowFailure(devicePF, mr)
			if err != nil {
				return nil, err
			}
		case DirectionalAligned:
			analytic = devicePF
		}
		out = append(out, Table1Row{Scenario: s, PRF: est, Analytic: analytic})
	}
	return out, nil
}
