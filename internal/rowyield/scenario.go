package rowyield

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/montecarlo"
	"github.com/cnfet/yieldlab/internal/stat"
)

// Scenario selects one of Table 1's growth/layout combinations.
type Scenario int

// The three columns of Table 1.
const (
	// UncorrelatedGrowth: non-directional growth, no CNT sharing anywhere.
	UncorrelatedGrowth Scenario = iota
	// DirectionalUnaligned: directional growth, stock cell library (active
	// regions at library-dependent lateral offsets).
	DirectionalUnaligned
	// DirectionalAligned: directional growth plus the aligned-active layout
	// restriction — the paper's proposal.
	DirectionalAligned
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case UncorrelatedGrowth:
		return "uncorrelated growth"
	case DirectionalUnaligned:
		return "directional growth, non-aligned"
	case DirectionalAligned:
		return "directional growth, aligned-active"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// RowModel describes one row of minimum-width CNFETs for the Table 1
// Monte Carlo. Build the stationary sampler once with Prepare (or let the
// estimators do it lazily).
type RowModel struct {
	// Pitch is the inter-track spacing law (calibrated truncated normal).
	Pitch dist.Continuous
	// PerCNTFailure is pf from Eq. 2.1.
	PerCNTFailure float64
	// WidthNM is the (common) width of the minimum-size CNFETs.
	WidthNM float64
	// LCNTNM is the CNT length (200 µm).
	LCNTNM float64
	// DensityPerUM is Pmin-CNFET, the min-width CNFET density along the row
	// (1.8 FETs/µm in the paper's placed OpenRISC design).
	DensityPerUM float64
	// Offsets is the lateral offset distribution of the (unmodified) cell
	// library, used by the DirectionalUnaligned scenario.
	Offsets OffsetDist

	// fr is the cached stationary forward-recurrence sampler for Pitch; it
	// doubles as the "prepared" marker.
	fr *dist.ForwardRecurrence
	// sampleFirst and samplePitch are the devirtualized samplers resolved
	// once by Prepare: the first-gap law and the (tabulated, for TruncNormal)
	// pitch law. Rounds call these funcs directly instead of dispatching
	// through the Continuous interface per draw.
	sampleFirst dist.Sampler
	samplePitch dist.Sampler
	// nFETs and offSpan cache FETsPerRow and Offsets.Span for the rounds;
	// lastOcc is the last offset index carrying probability mass (the final
	// bin of the sequential-binomial occupancy chain).
	nFETs   int
	offSpan float64
	lastOcc int
	// pfPow[n] = PerCNTFailure^n, math.Pow-filled so lookups are
	// bit-identical to the per-round math.Pow they replace.
	pfPow []float64
}

// pfPowHeadroom scales the expected per-window track count into the pf^n
// table length; counts beyond it (astronomically rare pitch fluctuations)
// fall back to math.Pow.
const pfPowHeadroom = 4

// Prepare resolves everything the Monte Carlo rounds need: the stationary
// first-gap sampler, devirtualized (tabulated) pitch and offset samplers,
// and the precomputed pf-power table. Estimators call it automatically;
// calling it up front moves the one-time cost out of timed sections and
// surfaces configuration errors early. A prepared model is immutable and
// safe to share across goroutines (each goroutine needs its own RoundState).
func (m *RowModel) Prepare() error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.fr != nil {
		return nil
	}
	// The cached constructors share one table per distinct pitch law, so
	// parameter sweeps building thousands of RowModels pay for one
	// integration.
	fr, err := dist.ForwardRecurrenceFor(m.Pitch)
	if err != nil {
		return fmt.Errorf("rowyield: stationary sampler: %w", err)
	}
	m.sampleFirst = fr.Sample
	m.samplePitch, err = dist.FastSamplerFor(m.Pitch)
	if err != nil {
		return fmt.Errorf("rowyield: pitch sampler: %w", err)
	}
	if m.Offsets.alias == nil {
		// Literal offset distribution: normalize it so the rounds get the
		// O(1) alias sampler (and invalid literals fail here, not mid-run).
		od, err := NewOffsetDist(m.Offsets.Offsets, m.Offsets.Probs)
		if err != nil {
			return err
		}
		m.Offsets = od
	}
	m.nFETs, err = m.FETsPerRow()
	if err != nil {
		return err
	}
	m.offSpan = m.Offsets.Span()
	m.lastOcc = 0
	for i, p := range m.Offsets.Probs {
		if p > 0 {
			m.lastOcc = i
		}
	}
	n := pfPowTableLen(m.WidthNM, m.Pitch.Mean())
	m.pfPow = make([]float64, n)
	for i := range m.pfPow {
		m.pfPow[i] = math.Pow(m.PerCNTFailure, float64(i))
	}
	m.fr = fr
	return nil
}

// pfPowTableLen sizes the pf^n table to the expected window count with
// pfPowHeadroom× margin, bounded to keep degenerate parameters (e.g. a
// near-zero pitch mean, which would overflow the int conversion) from
// requesting huge tables.
func pfPowTableLen(widthNM, meanPitch float64) int {
	n := 64
	if meanPitch > 0 {
		n = clampCount(widthNM/meanPitch)*pfPowHeadroom + 64
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	return n
}

// clampCount converts an expected-count ratio to int, clamping non-finite
// and huge values into [0, 1<<16] so the float→int conversion can neither
// overflow nor go negative.
func clampCount(ratio float64) int {
	if !(ratio > 0) {
		return 0
	}
	if !(ratio < 1<<16) {
		return 1 << 16
	}
	return int(ratio)
}

// Validate checks the model.
func (m RowModel) Validate() error {
	if m.Pitch == nil {
		return errors.New("rowyield: nil pitch distribution")
	}
	if m.PerCNTFailure < 0 || m.PerCNTFailure > 1 || math.IsNaN(m.PerCNTFailure) {
		return fmt.Errorf("rowyield: pf %g out of [0,1]", m.PerCNTFailure)
	}
	if !(m.WidthNM > 0) {
		return fmt.Errorf("rowyield: width %g must be positive", m.WidthNM)
	}
	if _, err := MRmin(m.LCNTNM, m.DensityPerUM); err != nil {
		return err
	}
	if len(m.Offsets.Offsets) == 0 {
		return errors.New("rowyield: empty offset distribution")
	}
	return nil
}

// FETsPerRow returns MRmin rounded to the nearest whole device.
func (m RowModel) FETsPerRow() (int, error) {
	v, err := MRmin(m.LCNTNM, m.DensityPerUM)
	if err != nil {
		return 0, err
	}
	n := int(math.Round(v))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// Estimate is a Monte Carlo estimate with its standard error.
type Estimate struct {
	Mean   float64
	StdErr float64
	Rounds int
}

// RelErr returns StdErr/Mean (infinite for a zero mean).
func (e Estimate) RelErr() float64 {
	if e.Mean == 0 {
		return math.Inf(1)
	}
	return e.StdErr / e.Mean
}

// EstimateRowFailure estimates pRF for the scenario using `rounds` Monte
// Carlo realizations of the track process (and offsets, for the unaligned
// scenario). Each round contributes an exact conditional probability, not a
// Bernoulli outcome, which is what makes 1e-8-scale probabilities reachable
// without rare-event tricks.
func (m *RowModel) EstimateRowFailure(r *rand.Rand, s Scenario, rounds int) (Estimate, error) {
	if err := m.Prepare(); err != nil {
		return Estimate{}, err
	}
	if rounds < 2 {
		return Estimate{}, fmt.Errorf("rowyield: need ≥ 2 rounds, got %d", rounds)
	}
	st := m.NewRoundState()
	var w stat.Welford
	for i := 0; i < rounds; i++ {
		p, err := m.Round(r, s, st)
		if err != nil {
			return Estimate{}, err
		}
		w.Add(p)
	}
	return Estimate{Mean: w.Mean(), StdErr: w.StdErr(), Rounds: rounds}, nil
}

// EstimateRowFailureParallel runs the same estimator across worker
// goroutines via the montecarlo engine, each worker reusing its own
// RoundState; the result is bit-identical across worker counts for a fixed
// (seed, rounds).
func (m *RowModel) EstimateRowFailureParallel(seed uint64, s Scenario, rounds, workers int) (Estimate, error) {
	return m.EstimateRowFailureWith(s, rounds, montecarlo.Options{Seed: seed, Workers: workers})
}

// EstimateRowFailureWith is EstimateRowFailureParallel with the full engine
// options exposed — in particular obs counters (Options.Counters), which
// observability callers attach per evaluation span. The estimate is a pure
// function of (Seed, BatchSize, rounds, scenario): Counters and Workers
// never change the numbers.
func (m *RowModel) EstimateRowFailureWith(s Scenario, rounds int, opt montecarlo.Options) (Estimate, error) {
	if err := m.Prepare(); err != nil {
		return Estimate{}, err
	}
	est, err := montecarlo.RunState(rounds, m.NewRoundState,
		func(r *rand.Rand, st *RoundState) (float64, error) {
			return m.Round(r, s, st)
		}, opt)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Mean: est.Mean, StdErr: est.StdErr, Rounds: est.Rounds}, nil
}

// Round runs one Monte Carlo realization of scenario s using st as scratch.
// A steady-state round allocates nothing; st must not be shared between
// goroutines. The model must be prepared before concurrent use (the
// estimator entry points do this).
//
//yield:noalloc
func (m *RowModel) Round(r *rand.Rand, s Scenario, st *RoundState) (float64, error) {
	if m.fr == nil {
		if err := m.Prepare(); err != nil {
			return 0, err
		}
	}
	switch s {
	case UncorrelatedGrowth:
		return m.roundUncorrelated(r), nil
	case DirectionalUnaligned:
		return m.roundDirectional(r, st, false)
	case DirectionalAligned:
		return m.roundDirectional(r, st, true)
	default:
		return 0, fmt.Errorf("rowyield: unknown scenario %d", int(s)) //yield:allow(noalloc) cold error path for an invalid scenario, never taken in steady state
	}
}

// roundUncorrelated: every CNFET sees its own independent track window.
// Row survives iff every CNFET survives:
// P(fail | counts) = 1 - Π_i (1 - pf^{N_i}).
//
//yield:noalloc
func (m *RowModel) roundUncorrelated(r *rand.Rand) float64 {
	logSurv := 0.0
	for i := 0; i < m.nFETs; i++ {
		n := m.countInWindow(r, m.WidthNM)
		var pFail float64 // pf^0 = 1: empty window always fails
		if n < len(m.pfPow) {
			pFail = m.pfPow[n]
		} else {
			pFail = math.Pow(m.PerCNTFailure, float64(n))
		}
		if pFail >= 1 {
			return 1
		}
		logSurv += math.Log1p(-pFail)
	}
	return -math.Expm1(logSurv)
}

// roundDirectional: one shared track realization; each CNFET covers the
// tracks inside [offset, offset+W). Exact interval DP on the realization,
// entirely over st's reusable buffers.
//
// The aligned layout puts every CNFET on the same window, so the row reduces
// to a single interval with no offset sampling at all. The unaligned layout
// needs only the *set* of offsets drawn by the row's CNFETs, so instead of
// nFETs categorical draws it samples the per-offset FET counts exactly via
// the sequential-binomial factorization of the multinomial — a handful of
// uniforms — and evaluates one interval per occupied offset.
//
//yield:noalloc
func (m *RowModel) roundDirectional(r *rand.Rand, st *RoundState, aligned bool) (float64, error) {
	// The capacity compare is the whole cost of growth accounting on the
	// steady-state path: sampleTracksInto only reallocates while the buffer
	// has not yet covered the realized span.
	c0 := cap(st.tracks)
	if aligned {
		st.tracks = m.sampleTracksInto(r, m.WidthNM, st.tracks[:0])
		if cap(st.tracks) != c0 {
			st.scratchAllocs++
		}
		return m.alignedFromTracks(st)
	}
	st.tracks = m.sampleTracksInto(r, m.WidthNM+m.offSpan, st.tracks[:0])
	if cap(st.tracks) != c0 {
		st.scratchAllocs++
	}
	return m.unalignedFromTracks(r, st)
}

// alignedFromTracks finishes an aligned round on the realization already in
// st.tracks: the single shared window's exact conditional failure
// probability. Split out of roundDirectional so the importance-sampled
// rounds (TiltedRowModel) share the evaluation half verbatim and can only
// differ in how the realization was drawn.
//
//yield:noalloc
func (m *RowModel) alignedFromTracks(st *RoundState) (float64, error) {
	iv := windowInterval(st.tracks, 0, m.WidthNM)
	if iv.Empty() {
		return 1, nil // a CNFET with zero tracks fails with certainty
	}
	st.intervals = append(st.intervals[:0], iv) //yield:allow(noalloc) appends into NewRoundState's pre-sized scratch; grows only until the model's interval population is covered
	return exactRowFailureInto(st, st.intervals, len(st.tracks), m.PerCNTFailure)
}

// unalignedFromTracks finishes an unaligned round on the realization already
// in st.tracks: sample per-offset CNFET counts, dedup the occupied windows,
// run the exact interval DP. Shared by the plain and importance-sampled
// rounds; r only feeds the offset draws.
//
//yield:noalloc
func (m *RowModel) unalignedFromTracks(r *rand.Rand, st *RoundState) (float64, error) {
	st.intervals = st.intervals[:0]
	st.seen.reset()
	n := m.nFETs
	rest := 1.0
	for i, p := range m.Offsets.Probs {
		if n == 0 {
			break
		}
		if p <= 0 {
			continue
		}
		var ni int
		if i == m.lastOcc || rest <= p {
			ni = n // the last occupied offset takes every remaining CNFET
			n = 0
		} else {
			ni = binomialSample(r, n, p/rest)
			n -= ni
			rest -= p
		}
		if ni == 0 {
			continue
		}
		off := m.Offsets.Offsets[i]
		iv := windowInterval(st.tracks, off, off+m.WidthNM)
		if iv.Empty() {
			return 1, nil // a CNFET with zero tracks fails with certainty
		}
		if st.seen.add(iv) {
			st.intervals = append(st.intervals, iv) //yield:allow(noalloc) appends into NewRoundState's pre-sized scratch; grows only until the model's interval population is covered
		}
	}
	return exactRowFailureInto(st, st.intervals, len(st.tracks), m.PerCNTFailure)
}

// binomialSample draws Bin(n, p) exactly by CDF inversion from a single
// uniform; when the zero term underflows (enormous n·p) it falls back to
// counting n Bernoulli draws, which is exact at any size.
//
//yield:noalloc
func binomialSample(r *rand.Rand, n int, p float64) int {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	pmf := math.Exp(float64(n) * math.Log1p(-p))
	if pmf < 1e-300 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	u := r.Float64()
	cdf := pmf
	ratio := p / (1 - p)
	k := 0
	for u > cdf && k < n {
		k++
		pmf *= ratio * float64(n-k+1) / float64(k)
		cdf += pmf
	}
	return k
}

// sampleTracksInto realizes stationary renewal track positions over
// [0, span) into the provided buffer: the first gap follows the exact
// forward-recurrence law, later gaps the pitch law.
//
//yield:noalloc
func (m *RowModel) sampleTracksInto(r *rand.Rand, span float64, tracks []float64) []float64 {
	y := m.sampleFirst(r)
	for y < span {
		tracks = append(tracks, y) //yield:allow(noalloc) appends into NewRoundState's pre-sized track buffer; capacity stops growing once it covers the realized span
		y += m.samplePitch(r)
	}
	return tracks
}

// countInWindow samples the CNT count of one independent window of width w.
//
//yield:noalloc
func (m *RowModel) countInWindow(r *rand.Rand, w float64) int {
	n := 0
	y := m.sampleFirst(r)
	for y < w {
		n++
		y += m.samplePitch(r)
	}
	return n
}

// windowInterval returns the inclusive index range of sorted track
// positions falling inside [lo, hi). The search is a hand-inlined
// sort.SearchFloat64s: no closure, nothing to spill into the heap.
func windowInterval(tracks []float64, lo, hi float64) Interval {
	return Interval{Lo: searchTracks(tracks, lo), Hi: searchTracks(tracks, hi) - 1}
}

// searchTracks returns the smallest index with tracks[i] >= x.
func searchTracks(tracks []float64, x float64) int {
	lo, hi := 0, len(tracks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tracks[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Table1Row is one scenario line of the Table 1 reproduction.
type Table1Row struct {
	Scenario Scenario
	PRF      Estimate
	// Analytic carries the closed-form value where one exists
	// (uncorrelated: 1-(1-pF)^MRmin; aligned: pF), NaN otherwise.
	Analytic float64
}

// Table1Parallel runs all three scenarios on worker goroutines.
func (m *RowModel) Table1Parallel(seed uint64, devicePF float64, rounds, workers int) ([]Table1Row, error) {
	if devicePF < 0 || devicePF > 1 || math.IsNaN(devicePF) {
		return nil, fmt.Errorf("rowyield: devicePF %g out of [0,1]", devicePF)
	}
	mr, err := MRmin(m.LCNTNM, m.DensityPerUM)
	if err != nil {
		return nil, err
	}
	out := make([]Table1Row, 0, 3)
	for si, s := range []Scenario{UncorrelatedGrowth, DirectionalUnaligned, DirectionalAligned} {
		est, err := m.EstimateRowFailureParallel(seed+uint64(si)*0x9E37, s, rounds, workers)
		if err != nil {
			return nil, err
		}
		analytic := math.NaN()
		switch s {
		case UncorrelatedGrowth:
			analytic, err = IndependentRowFailure(devicePF, mr)
			if err != nil {
				return nil, err
			}
		case DirectionalAligned:
			analytic = devicePF
		}
		out = append(out, Table1Row{Scenario: s, PRF: est, Analytic: analytic})
	}
	return out, nil
}

// Table1 runs all three scenarios. devicePF is the analytic device failure
// probability at WidthNM (from the device model), used for the closed-form
// columns.
func (m *RowModel) Table1(r *rand.Rand, devicePF float64, rounds int) ([]Table1Row, error) {
	if devicePF < 0 || devicePF > 1 || math.IsNaN(devicePF) {
		return nil, fmt.Errorf("rowyield: devicePF %g out of [0,1]", devicePF)
	}
	mr, err := MRmin(m.LCNTNM, m.DensityPerUM)
	if err != nil {
		return nil, err
	}
	out := make([]Table1Row, 0, 3)
	for _, s := range []Scenario{UncorrelatedGrowth, DirectionalUnaligned, DirectionalAligned} {
		est, err := m.EstimateRowFailure(r, s, rounds)
		if err != nil {
			return nil, err
		}
		analytic := math.NaN()
		switch s {
		case UncorrelatedGrowth:
			analytic, err = IndependentRowFailure(devicePF, mr)
			if err != nil {
				return nil, err
			}
		case DirectionalAligned:
			analytic = devicePF
		}
		out = append(out, Table1Row{Scenario: s, PRF: est, Analytic: analytic})
	}
	return out, nil
}
