// Package rowyield implements the paper's core contribution (Section 3):
// chip yield when CNFETs in a placement row share carbon nanotubes.
//
// Under directional growth, CNTs run for LCNT ≈ 200 µm along a row, so the
// minimum-width CNFETs of a row stop being independent. With the row
// partitioned into LCNT-long stretches ("rows" in the paper's Eq. 3.1):
//
//	Yield = Π_i (1 - pRF_i) ≈ 1 - KR·pRF            (Eq. 3.1)
//	MRmin = LCNT · Pmin-CNFET                        (Eq. 3.2)
//
// where pRF is the failure probability of a row and MRmin the number of
// minimum-width CNFETs per row (≈ 360 at 45 nm: 200 µm × 1.8 FETs/µm).
//
// Three growth/layout scenarios (Table 1) are modeled:
//
//   - Uncorrelated growth: every CNFET sees independent CNTs,
//     pRF = 1-(1-pF)^MRmin — the Section 2 baseline.
//   - Directional growth, non-aligned actives: CNFETs share tracks
//     partially, depending on the lateral offsets of their active regions
//     across the cell library. Computed by Monte Carlo over track
//     realizations with an exact inner evaluation (the paper: "requires
//     numerical methods").
//   - Directional growth, aligned actives: every CNFET in the row sees the
//     same CNTs, so pRF = pF — the best case, and the source of the
//     MRmin ≈ 350× failure-budget relaxation.
//
// The exact inner evaluation is a run-length dynamic program: given the
// realized track positions, each CNFET covers a contiguous interval of
// tracks, each track fails independently with probability pf, and the row
// fails iff some interval is fully failed. P(no interval fully failed) is
// computed exactly in O(tracks × max interval length).
//
//yield:compute
package rowyield

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// MRmin returns Eq. 3.2: the average number of minimum-width CNFETs per
// correlated row, LCNT (nm) × density (FETs per µm).
func MRmin(lcntNM, densityPerUM float64) (float64, error) {
	if !(lcntNM > 0) {
		return 0, fmt.Errorf("rowyield: LCNT %g must be positive", lcntNM)
	}
	if !(densityPerUM > 0) {
		return 0, fmt.Errorf("rowyield: density %g must be positive", densityPerUM)
	}
	return lcntNM / 1000 * densityPerUM, nil
}

// CorrelatedYield returns Eq. 3.1: (1-pRF)^KR for KR independent rows.
func CorrelatedYield(kRows, pRF float64) (float64, error) {
	if !(kRows >= 0) {
		return 0, fmt.Errorf("rowyield: KR %g must be ≥ 0", kRows)
	}
	if pRF < 0 || pRF > 1 || math.IsNaN(pRF) {
		return 0, fmt.Errorf("rowyield: pRF %g out of [0,1]", pRF)
	}
	if pRF == 1 {
		if kRows == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return math.Exp(kRows * math.Log1p(-pRF)), nil
}

// IndependentRowFailure returns the uncorrelated-growth row failure
// probability 1-(1-pF)^m for m independent CNFETs.
func IndependentRowFailure(pF, m float64) (float64, error) {
	if pF < 0 || pF > 1 || math.IsNaN(pF) {
		return 0, fmt.Errorf("rowyield: pF %g out of [0,1]", pF)
	}
	if !(m >= 0) {
		return 0, fmt.Errorf("rowyield: m %g must be ≥ 0", m)
	}
	if pF == 1 && m > 0 {
		return 1, nil
	}
	return -math.Expm1(m * math.Log1p(-pF)), nil
}

// Interval is an inclusive range [Lo, Hi] of track indices covered by one
// CNFET's active region. An empty interval (Hi < Lo) denotes a CNFET whose
// window holds no tracks at all — it fails with certainty.
type Interval struct {
	Lo, Hi int
}

// Empty reports whether the interval contains no tracks.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

// Len returns the number of tracks covered.
func (iv Interval) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// ExactRowFailure returns the exact probability that at least one interval
// is fully failed, when each of nTracks tracks fails independently with
// probability pf. This is the conditional row-failure probability given a
// track realization; Monte Carlo over realizations then averages it.
//
// The computation is a run-length dynamic program over the reusable
// RoundState scratch (see state.go); this wrapper pays for a fresh state per
// call, the Monte Carlo rounds amortize one across all their realizations.
func ExactRowFailure(intervals []Interval, nTracks int, pf float64) (float64, error) {
	var st RoundState
	return exactRowFailureInto(&st, intervals, nTracks, pf)
}

// OffsetDist is a discrete distribution of lateral active-region offsets
// (nm) across the standard-cell library: the non-aligned layout's source of
// partial correlation. Offsets are measured from the row's track origin.
//
// Distributions built by NewOffsetDist (or Aligned) carry a Walker alias
// table, so Sample costs O(1) — one uniform, one table row — instead of a
// linear CDF scan; literal values sample through the scan fallback. The
// row Monte Carlo itself does not draw offsets one at a time: it samples
// per-offset CNFET counts from normalized Probs (see roundDirectional), so
// RowModel.Prepare normalizes literal distributions up front.
type OffsetDist struct {
	Offsets []float64
	Probs   []float64

	// Walker alias table: a draw u·n splits into column i = ⌊u·n⌋ and a
	// fractional coin; the coin picks the column's own offset below
	// aliasProb[i] and the alias column's offset above it.
	aliasProb []float64
	alias     []int32
}

// buildAlias constructs the Walker alias table for the (normalized) Probs
// by the standard two-worklist method: overfull columns donate their excess
// to underfull ones until every column holds exactly mean mass.
func (o *OffsetDist) buildAlias() {
	n := len(o.Probs)
	o.aliasProb = make([]float64, n)
	o.alias = make([]int32, n)
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range o.Probs {
		scaled[i] = p * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		o.aliasProb[s] = scaled[s]
		o.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers hold (up to rounding) exactly unit mass: they keep their own
	// offset with certainty.
	for _, i := range large {
		o.aliasProb[i] = 1
		o.alias[i] = i
	}
	for _, i := range small {
		o.aliasProb[i] = 1
		o.alias[i] = i
	}
}

// NewOffsetDist validates and normalizes an offset distribution.
func NewOffsetDist(offsets, probs []float64) (OffsetDist, error) {
	if len(offsets) == 0 || len(offsets) != len(probs) {
		return OffsetDist{}, errors.New("rowyield: offsets and probs must be non-empty and equal length")
	}
	var total float64
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return OffsetDist{}, fmt.Errorf("rowyield: offset prob %d = %g invalid", i, p)
		}
		if offsets[i] < 0 || math.IsNaN(offsets[i]) {
			return OffsetDist{}, fmt.Errorf("rowyield: offset %d = %g invalid", i, offsets[i])
		}
		total += p
	}
	if !(total > 0) {
		return OffsetDist{}, errors.New("rowyield: zero total offset probability")
	}
	os := make([]float64, len(offsets))
	ps := make([]float64, len(probs))
	copy(os, offsets)
	for i, p := range probs {
		ps[i] = p / total
	}
	od := OffsetDist{Offsets: os, Probs: ps}
	od.buildAlias()
	return od, nil
}

// Aligned returns the degenerate distribution of the aligned-active layout:
// every critical active region sits at the same lateral position.
func Aligned() OffsetDist {
	od := OffsetDist{Offsets: []float64{0}, Probs: []float64{1}}
	od.buildAlias()
	return od
}

// Sample draws one offset: O(1) through the alias table when the
// distribution was built by NewOffsetDist, a linear CDF scan for literal
// values. Both consume exactly one uniform.
func (o OffsetDist) Sample(r *rand.Rand) float64 {
	if o.alias != nil {
		u := r.Float64() * float64(len(o.alias))
		i := int(u)
		if i >= len(o.alias) { // u == len is unreachable (Float64 < 1), guard anyway
			i = len(o.alias) - 1
		}
		if u-float64(i) < o.aliasProb[i] {
			return o.Offsets[i]
		}
		return o.Offsets[o.alias[i]]
	}
	u := r.Float64()
	var acc float64
	for i, p := range o.Probs {
		acc += p
		if u < acc {
			return o.Offsets[i]
		}
	}
	return o.Offsets[len(o.Offsets)-1]
}

// Span returns the maximum offset.
func (o OffsetDist) Span() float64 {
	max := 0.0
	for _, v := range o.Offsets {
		if v > max {
			max = v
		}
	}
	return max
}

// DistinctCount returns the number of offsets carrying probability mass:
// the group count G behind the first-order estimate pRF ≈ G·pF for
// non-overlapping offsets.
func (o OffsetDist) DistinctCount() int {
	n := 0
	for _, p := range o.Probs {
		if p > 0 {
			n++
		}
	}
	return n
}

// UnalignedFirstOrder returns the closed-form first-order estimate of the
// non-aligned row failure probability:
//
//	pRF ≈ pF · G_eff,   G_eff = 1 + Σ_i (1 - pf^{gap_i/μ})
//
// where the sum runs over consecutive occupied offsets. The intuition: a
// window shifted by a gap g from an already-failed window needs ≈ g/μ
// additional tracks to fail, so it contributes an almost-independent
// failure mode with weight 1 - pf^{g/μ} — nearly full weight even for gaps
// of a few pitches, which is why an unmodified library recovers only
// MRmin/G_eff of the correlation benefit (the 26.5× of Table 1). The exact
// value comes from the Monte Carlo; this estimate is the design intuition
// and a cross-check, accurate to ~20% in the Table 1 regime.
//
// devicePF is the analytic single-device failure probability, pf the
// per-CNT failure probability, meanPitch the mean inter-CNT pitch (nm).
func (o OffsetDist) UnalignedFirstOrder(devicePF, pf, meanPitch float64) (float64, error) {
	if devicePF < 0 || devicePF > 1 || math.IsNaN(devicePF) {
		return 0, fmt.Errorf("rowyield: devicePF %g out of [0,1]", devicePF)
	}
	if pf < 0 || pf > 1 || math.IsNaN(pf) {
		return 0, fmt.Errorf("rowyield: pf %g out of [0,1]", pf)
	}
	if !(meanPitch > 0) {
		return 0, fmt.Errorf("rowyield: mean pitch %g must be positive", meanPitch)
	}
	// Occupied offsets in ascending order.
	var occ []float64
	for i, p := range o.Probs {
		if p > 0 {
			occ = append(occ, o.Offsets[i])
		}
	}
	if len(occ) == 0 {
		return 0, errors.New("rowyield: no occupied offsets")
	}
	sortAscending(occ)
	gEff := 1.0
	for i := 1; i < len(occ); i++ {
		gap := occ[i] - occ[i-1]
		gEff += 1 - math.Pow(pf, gap/meanPitch)
	}
	return math.Min(devicePF*gEff, 1), nil
}

func sortAscending(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
