package rowyield

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/montecarlo"
	"github.com/cnfet/yieldlab/internal/obs"
	"github.com/cnfet/yieldlab/internal/rng"
)

// benchModel is the Table 1-class row model the MC benchmarks run on: the
// calibrated pitch law, worst-corner pf, the paper's 200 µm rows (360 FETs)
// and a 14-position offset spread comparable to the measured 45 nm library.
func benchModel(b *testing.B) *RowModel {
	b.Helper()
	pitch, err := device.CalibratedPitch()
	if err != nil {
		b.Fatal(err)
	}
	offs := make([]float64, 14)
	probs := make([]float64, 14)
	for i := range offs {
		offs[i], probs[i] = float64(i)*20, 1
	}
	od, err := NewOffsetDist(offs, probs)
	if err != nil {
		b.Fatal(err)
	}
	m := &RowModel{
		Pitch:         pitch,
		PerCNTFailure: 0.531,
		WidthNM:       142.7,
		LCNTNM:        200_000,
		DensityPerUM:  1.8,
		Offsets:       od,
	}
	if err := m.Prepare(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkRowYieldMC measures one steady-state Monte Carlo round per
// scenario at the default Table 1 grid — the inner-loop cost behind
// /v1/rowyield, /v2/query row sweeps and `cnfetyield table1`. Registered in
// BENCH_BASELINE.json and gated in CI.
func BenchmarkRowYieldMC(b *testing.B) {
	m := benchModel(b)
	for _, tc := range []struct {
		name string
		s    Scenario
	}{
		{"uncorrelated", UncorrelatedGrowth},
		{"aligned", DirectionalAligned},
		{"unaligned", DirectionalUnaligned},
	} {
		b.Run(tc.name, func(b *testing.B) {
			st := m.NewRoundState()
			r := rng.New(3)
			if _, err := m.Round(r, tc.s, st); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Round(r, tc.s, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRowYieldMCParallel measures the full parallel estimator over a
// fixed round budget: engine coordination (atomic batch queue, per-worker
// state) plus the rounds themselves.
func BenchmarkRowYieldMCParallel(b *testing.B) {
	m := benchModel(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.EstimateRowFailureParallel(7, DirectionalUnaligned, 512, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowYieldObsOverhead prices the observability layer on the hot
// path: "off" is the bare estimator, "on" runs it exactly as an instrumented
// evaluation does — inside a span, with the engine flushing its round/batch
// counters into span-held atomics at worker exit. The on/off ratio is gated
// at 1.05x in BENCH_BASELINE.json: tracing must stay effectively free.
func BenchmarkRowYieldObsOverhead(b *testing.B) {
	const rounds = 4096
	run := func(b *testing.B, instrument bool) {
		m := benchModel(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opt := montecarlo.Options{Seed: 7, Workers: 1}
			var sp *obs.Span
			if instrument {
				_, sp = obs.Start(obs.WithTracer(b.Context(), obs.New()), "mc.run")
				opt.Counters = sp.MC()
			}
			if _, err := m.EstimateRowFailureWith(DirectionalUnaligned, rounds, opt); err != nil {
				b.Fatal(err)
			}
			sp.End()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
