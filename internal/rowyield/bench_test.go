package rowyield

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/rng"
)

// benchModel is the Table 1-class row model the MC benchmarks run on: the
// calibrated pitch law, worst-corner pf, the paper's 200 µm rows (360 FETs)
// and a 14-position offset spread comparable to the measured 45 nm library.
func benchModel(b *testing.B) *RowModel {
	b.Helper()
	pitch, err := device.CalibratedPitch()
	if err != nil {
		b.Fatal(err)
	}
	offs := make([]float64, 14)
	probs := make([]float64, 14)
	for i := range offs {
		offs[i], probs[i] = float64(i)*20, 1
	}
	od, err := NewOffsetDist(offs, probs)
	if err != nil {
		b.Fatal(err)
	}
	m := &RowModel{
		Pitch:         pitch,
		PerCNTFailure: 0.531,
		WidthNM:       142.7,
		LCNTNM:        200_000,
		DensityPerUM:  1.8,
		Offsets:       od,
	}
	if err := m.Prepare(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkRowYieldMC measures one steady-state Monte Carlo round per
// scenario at the default Table 1 grid — the inner-loop cost behind
// /v1/rowyield, /v2/query row sweeps and `cnfetyield table1`. Registered in
// BENCH_BASELINE.json and gated in CI.
func BenchmarkRowYieldMC(b *testing.B) {
	m := benchModel(b)
	for _, tc := range []struct {
		name string
		s    Scenario
	}{
		{"uncorrelated", UncorrelatedGrowth},
		{"aligned", DirectionalAligned},
		{"unaligned", DirectionalUnaligned},
	} {
		b.Run(tc.name, func(b *testing.B) {
			st := m.NewRoundState()
			r := rng.New(3)
			if _, err := m.Round(r, tc.s, st); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Round(r, tc.s, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRowYieldMCParallel measures the full parallel estimator over a
// fixed round budget: engine coordination (atomic batch queue, per-worker
// state) plus the rounds themselves.
func BenchmarkRowYieldMCParallel(b *testing.B) {
	m := benchModel(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.EstimateRowFailureParallel(7, DirectionalUnaligned, 512, 0); err != nil {
			b.Fatal(err)
		}
	}
}
