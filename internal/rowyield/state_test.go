package rowyield

import (
	"math"
	"sync"
	"testing"

	"github.com/cnfet/yieldlab/internal/dist"
	"github.com/cnfet/yieldlab/internal/rng"
)

// A steady-state Monte Carlo round must not touch the heap: the tracks,
// intervals, dedup set and DP buffers all live in the reusable RoundState.
func TestRoundZeroSteadyStateAllocs(t *testing.T) {
	offsets, err := NewOffsetDist(
		[]float64{0, 20, 40, 60, 80, 100, 120, 140},
		[]float64{1, 1, 1, 1, 1, 1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := testRowModel(t, 30, offsets)
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		s    Scenario
	}{
		{"uncorrelated", UncorrelatedGrowth},
		{"aligned", DirectionalAligned},
		{"unaligned", DirectionalUnaligned},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := m.NewRoundState()
			r := rng.New(17)
			// Warm the buffers past any growth transient.
			for i := 0; i < 200; i++ {
				if _, err := m.Round(r, tc.s, st); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := m.Round(r, tc.s, st); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state round allocates %.1f objects, want 0", allocs)
			}
		})
	}
}

// The parallel estimator must stay bit-identical across worker counts for a
// fixed (seed, rounds) — the property the server's ETag revalidation relies
// on — with every worker running on its own scratch.
func TestEstimateParallelBitIdenticalAcrossWorkers(t *testing.T) {
	offsets, err := NewOffsetDist([]float64{0, 60, 120}, []float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := testRowModel(t, 30, offsets)
	for _, s := range []Scenario{UncorrelatedGrowth, DirectionalUnaligned, DirectionalAligned} {
		base, err := m.EstimateRowFailureParallel(41, s, 4_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5, 16} {
			got, err := m.EstimateRowFailureParallel(41, s, 4_000, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Mean != base.Mean || got.StdErr != base.StdErr {
				t.Fatalf("%v: workers=%d changed the estimate: %v vs %v", s, workers, got, base)
			}
		}
	}
}

// Race coverage for the per-worker scratch: many goroutines estimate on one
// shared prepared model concurrently (run under -race in CI).
func TestSharedModelConcurrentEstimatesRace(t *testing.T) {
	offsets, err := NewOffsetDist([]float64{0, 40, 80}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := testRowModel(t, 25, offsets)
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = m.EstimateRowFailureParallel(uint64(g+1), DirectionalUnaligned, 400, 4)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// binomialSample must reproduce binomial moments and stay exact at the
// degenerate edges.
func TestBinomialSample(t *testing.T) {
	r := rng.New(23)
	const n, p, draws = 37, 0.3, 200_000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		k := binomialSample(r, n, p)
		if k < 0 || k > n {
			t.Fatalf("out-of-range draw %d", k)
		}
		sum += float64(k)
		sumSq += float64(k) * float64(k)
	}
	mean := sum / draws
	wantMean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if math.Abs(mean-wantMean) > 5*sd/math.Sqrt(draws) {
		t.Errorf("mean %g, want %g", mean, wantMean)
	}
	variance := sumSq/draws - mean*mean
	if math.Abs(variance-sd*sd) > 0.05*sd*sd {
		t.Errorf("variance %g, want %g", variance, sd*sd)
	}
	if binomialSample(r, 10, 0) != 0 || binomialSample(r, 0, 0.5) != 0 {
		t.Error("zero cases")
	}
	if binomialSample(r, 10, 1) != 10 {
		t.Error("certain case")
	}
	// The underflow fallback (Bernoulli counting) keeps the mean.
	var fsum float64
	const fn, fp = 5_000, 0.5 // (1-p)^n underflows: exercises the fallback
	for i := 0; i < 2_000; i++ {
		fsum += float64(binomialSample(r, fn, fp))
	}
	if got, want := fsum/2_000, float64(fn)*fp; math.Abs(got-want) > 10 {
		t.Errorf("fallback mean %g, want %g", got, want)
	}
}

// The occupancy chain must visit offsets with the multinomial marginal:
// offset i appears in a round with probability 1-(1-p_i)^nFETs. Checked
// against the per-FET categorical sampling it replaced.
func TestUnalignedOccupancyMatchesPerFETSampling(t *testing.T) {
	offsets, err := NewOffsetDist([]float64{0, 50, 100, 150}, []float64{8, 4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := testRowModel(t, 20, offsets)
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	const rounds = 60_000
	r := rng.New(31)
	got := make([]float64, len(offsets.Offsets))
	n := m.nFETs
	for round := 0; round < rounds; round++ {
		rem := n
		rest := 1.0
		for i, p := range offsets.Probs {
			if rem == 0 {
				break
			}
			if p <= 0 {
				continue
			}
			var ni int
			if i == m.lastOcc || rest <= p {
				ni, rem = rem, 0
			} else {
				ni = binomialSample(r, rem, p/rest)
				rem -= ni
				rest -= p
			}
			if ni > 0 {
				got[i]++
			}
		}
	}
	for i, p := range offsets.Probs {
		want := -math.Expm1(float64(n) * math.Log1p(-p))
		if f := got[i] / rounds; math.Abs(f-want) > 0.01 {
			t.Errorf("offset %d occupancy %v, want %v", i, f, want)
		}
	}
}

// The alias table must reproduce the offset probabilities exactly in
// expectation, including skewed distributions.
func TestOffsetAliasDistribution(t *testing.T) {
	o, err := NewOffsetDist(
		[]float64{0, 10, 20, 30, 40},
		[]float64{0.5, 0.25, 0.15, 0.08, 0.02},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const draws = 400_000
	counts := map[float64]int{}
	for i := 0; i < draws; i++ {
		counts[o.Sample(r)]++
	}
	for i, off := range o.Offsets {
		want := o.Probs[i]
		f := float64(counts[off]) / draws
		tol := 5*math.Sqrt(want*(1-want)/draws) + 1e-4
		if math.Abs(f-want) > tol {
			t.Errorf("offset %g: freq %v, want %v ± %v", off, f, want, tol)
		}
	}
	// Literal distributions (no alias table) keep the scan fallback.
	lit := OffsetDist{Offsets: []float64{1, 2}, Probs: []float64{0.5, 0.5}}
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		seen[lit.Sample(r)] = true
	}
	if !seen[1] || !seen[2] {
		t.Error("scan fallback broken")
	}
}

// Prepare must normalize literal offset distributions (so rounds always get
// the alias path) and reject invalid ones.
func TestPrepareNormalizesLiteralOffsets(t *testing.T) {
	m := testRowModel(t, 30, OffsetDist{Offsets: []float64{0, 50}, Probs: []float64{3, 1}})
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	if m.Offsets.alias == nil {
		t.Fatal("Prepare should build the alias table")
	}
	if !almost(m.Offsets.Probs[0], 0.75, 1e-12) {
		t.Fatalf("Prepare should normalize probs, got %v", m.Offsets.Probs)
	}
	bad := testRowModel(t, 30, OffsetDist{Offsets: []float64{1}, Probs: []float64{0}})
	if err := bad.Prepare(); err == nil {
		t.Error("zero-mass literal offsets should fail Prepare")
	}
}

// The interval dedup set must behave like the map it replaced, across
// resets and growth.
func TestIntervalSet(t *testing.T) {
	var s intervalSet
	ref := map[Interval]bool{}
	r := rng.New(5)
	for round := 0; round < 50; round++ {
		s.reset()
		for k := range ref {
			delete(ref, k)
		}
		for i := 0; i < 300; i++ {
			iv := Interval{Lo: r.Intn(40), Hi: r.Intn(40)}
			got := s.add(iv)
			want := !ref[iv]
			ref[iv] = true
			if got != want {
				t.Fatalf("round %d: add(%v) = %v, want %v", round, iv, got, want)
			}
		}
	}
}

// Generation-stamp wraparound must clear the table rather than resurrect
// stale entries.
func TestIntervalSetGenerationWrap(t *testing.T) {
	var s intervalSet
	s.init(4)
	iv := Interval{1, 2}
	if !s.add(iv) {
		t.Fatal("fresh add")
	}
	s.gen = ^uint32(0) // next reset wraps
	s.reset()
	if !s.add(iv) {
		t.Fatal("entry resurrected across generation wrap")
	}
}

// Degenerate width/pitch ratios must clamp, not overflow the int
// conversions sizing the pf-power table and the round scratch (a tiny
// positive pitch mean is accepted by the query layer, so this is reachable
// from the server).
func TestPrepareClampsDegeneratePitchRatio(t *testing.T) {
	if got := pfPowTableLen(155, 5e-17); got != 1<<16 {
		t.Fatalf("pfPowTableLen = %d, want clamp to %d", got, 1<<16)
	}
	if got := pfPowTableLen(math.Inf(1), 1); got != 1<<16 {
		t.Fatalf("pfPowTableLen(inf) = %d", got)
	}
	if got := clampCount(math.NaN()); got != 0 {
		t.Fatalf("clampCount(NaN) = %d", got)
	}
	m := testRowModel(t, 155, Aligned())
	m.Pitch = dist.Exponential{Rate: 1e17} // mean 1e-17 nm
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	st := m.NewRoundState()
	if st == nil || cap(st.tracks) > (1<<18)+64 {
		t.Fatalf("round state scratch not clamped: cap %d", cap(st.tracks))
	}
}

// NewRoundState on an unvalidated model must not panic: Round surfaces the
// validation error once the state is used.
func TestNewRoundStateNilPitch(t *testing.T) {
	m := &RowModel{WidthNM: 30, Offsets: Aligned()}
	st := m.NewRoundState()
	if st == nil {
		t.Fatal("nil state")
	}
	if _, err := m.Round(rng.New(1), DirectionalAligned, st); err == nil {
		t.Fatal("Round on a nil-pitch model should error")
	}
}

// The ring DP must renormalize rather than overflow on very long rows.
func TestExactRowFailureLongRowTinyPf(t *testing.T) {
	const nTracks = 3000
	got, err := ExactRowFailure([]Interval{{0, 1}}, nTracks, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// One length-2 interval at the row start: P = pf².
	if want := 1e-6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("long row: %v, want %v", got, want)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatal("overflow in the scaled DP")
	}
}
