// Package tech defines the technology nodes used by the paper's scaling
// analysis (Figs. 2.2b and 3.3): 45, 32, 22 and 16 nm. The scaling rule is
// the one stated in Section 2.2 — CNFET width distributions scale linearly
// with the node, while the inter-CNT pitch stays constant at 4 nm — which is
// exactly why the upsizing penalty explodes at scaled nodes.
//
//yield:compute
package tech

import "fmt"

// Node describes one technology node.
type Node struct {
	// Name is the marketing name, e.g. "45nm".
	Name string
	// DrawnNM is the nominal feature size in nm.
	DrawnNM float64
	// CellHeightNM is the standard-cell height (12-track cells at the
	// 45 nm reference, scaled linearly).
	CellHeightNM float64
	// PolyPitchNM is the contacted gate (poly) pitch.
	PolyPitchNM float64
}

// Reference is the 45 nm node the paper evaluates on (Nangate Open Cell
// Library geometry).
var Reference = Node{Name: "45nm", DrawnNM: 45, CellHeightNM: 1400, PolyPitchNM: 190}

// PaperNodes returns the four nodes of the scaling analysis in Fig. 2.2b,
// largest first.
func PaperNodes() []Node {
	return []Node{
		Reference,
		scaled(32),
		scaled(22),
		scaled(16),
	}
}

func scaled(drawn float64) Node {
	s := drawn / Reference.DrawnNM
	return Node{
		Name:         fmt.Sprintf("%.0fnm", drawn),
		DrawnNM:      drawn,
		CellHeightNM: Reference.CellHeightNM * s,
		PolyPitchNM:  Reference.PolyPitchNM * s,
	}
}

// ByName returns the node with the given name from PaperNodes.
func ByName(name string) (Node, error) {
	for _, n := range PaperNodes() {
		if n.Name == name {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("tech: unknown node %q", name)
}

// Scale returns the linear shrink factor relative to the 45 nm reference
// node (1.0 at 45 nm, 16/45 ≈ 0.356 at 16 nm).
func (n Node) Scale() float64 { return n.DrawnNM / Reference.DrawnNM }

// ScaleWidth maps a 45 nm-reference transistor width to this node under the
// paper's linear-width scaling rule.
func (n Node) ScaleWidth(w45 float64) float64 { return w45 * n.Scale() }

// Validate checks the node is physically sensible.
func (n Node) Validate() error {
	if !(n.DrawnNM > 0) || !(n.CellHeightNM > 0) || !(n.PolyPitchNM > 0) {
		return fmt.Errorf("tech: node %q has non-positive geometry", n.Name)
	}
	return nil
}
