package tech

import (
	"math"
	"testing"
)

func TestPaperNodes(t *testing.T) {
	nodes := PaperNodes()
	if len(nodes) != 4 {
		t.Fatalf("nodes: %d", len(nodes))
	}
	want := []float64{45, 32, 22, 16}
	for i, n := range nodes {
		if n.DrawnNM != want[i] {
			t.Errorf("node %d drawn %v want %v", i, n.DrawnNM, want[i])
		}
		if err := n.Validate(); err != nil {
			t.Errorf("node %s: %v", n.Name, err)
		}
	}
}

func TestScaleFactors(t *testing.T) {
	if Reference.Scale() != 1 {
		t.Fatal("reference scale should be 1")
	}
	n16, err := ByName("16nm")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n16.Scale()-16.0/45) > 1e-15 {
		t.Fatalf("16nm scale: %v", n16.Scale())
	}
	if math.Abs(n16.ScaleWidth(90)-32) > 1e-12 {
		t.Fatalf("scaled width: %v", n16.ScaleWidth(90))
	}
	// Geometry scales with the node.
	if math.Abs(n16.CellHeightNM-Reference.CellHeightNM*16/45) > 1e-9 {
		t.Fatalf("cell height: %v", n16.CellHeightNM)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("7nm"); err == nil {
		t.Fatal("unknown node should error")
	}
}

func TestValidate(t *testing.T) {
	bad := Node{Name: "bad", DrawnNM: 0, CellHeightNM: 1, PolyPitchNM: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero drawn should error")
	}
}
