package cntgrowth

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/stat"
)

// Grower is the common interface of the two growth processes.
type Grower interface {
	Grow(r *rand.Rand, region Rect) (*Array, error)
}

// Compile-time checks.
var (
	_ Grower = Directional{}
	_ Grower = Uncorrelated{}
)

// PairStats quantifies how strongly two CNFET active regions share CNT
// statistics under a growth process — the experiment behind Fig. 3.1 and
// the premise of the whole co-optimization: directional growth plus aligned
// actives makes the pair perfectly correlated.
type PairStats struct {
	// CountCorr is the Pearson correlation of the pre-removal CNT counts
	// of the two regions across growth realizations.
	CountCorr float64
	// UsableCorr is the correlation of usable (surviving semiconducting)
	// CNT counts; it folds in CNT-type correlation.
	UsableCorr float64
	// SharedFrac is the mean fraction of region-1 CNTs also crossing
	// region 2 (1.0 when the regions see identical tubes).
	SharedFrac float64
	// MeanCount is the mean pre-removal count of region 1.
	MeanCount float64
	// Realizations is the number of Monte Carlo growth rounds.
	Realizations int
}

// MeasurePairCorrelation grows `rounds` independent arrays over a region
// containing both rectangles, applies the removal step, and correlates the
// two devices' CNT statistics.
func MeasurePairCorrelation(r *rand.Rand, g Grower, rm Removal, fet1, fet2 Rect, rounds int) (PairStats, error) {
	if g == nil {
		return PairStats{}, errors.New("cntgrowth: nil grower")
	}
	if rounds < 2 {
		return PairStats{}, fmt.Errorf("cntgrowth: need ≥ 2 rounds, got %d", rounds)
	}
	if err := fet1.Validate(); err != nil {
		return PairStats{}, err
	}
	if err := fet2.Validate(); err != nil {
		return PairStats{}, err
	}
	region := boundingRect(fet1, fet2)
	// Pad so equilibrium edges do not clip the devices.
	pad := 20.0
	region = Rect{X0: region.X0 - pad, Y0: region.Y0 - pad, X1: region.X1 + pad, Y1: region.Y1 + pad}

	c1 := make([]float64, rounds)
	c2 := make([]float64, rounds)
	u1 := make([]float64, rounds)
	u2 := make([]float64, rounds)
	var shared stat.Welford
	for i := 0; i < rounds; i++ {
		a, err := g.Grow(r, region)
		if err != nil {
			return PairStats{}, err
		}
		if err := rm.Apply(r, a); err != nil {
			return PairStats{}, err
		}
		x1 := a.Crossing(fet1)
		x2 := a.Crossing(fet2)
		c1[i], c2[i] = float64(len(x1)), float64(len(x2))
		u1[i], u2[i] = float64(a.CountUsable(fet1)), float64(a.CountUsable(fet2))
		if len(x1) > 0 {
			in2 := make(map[int]bool, len(x2))
			for _, idx := range x2 {
				in2[idx] = true
			}
			n := 0
			for _, idx := range x1 {
				if in2[idx] {
					n++
				}
			}
			shared.Add(float64(n) / float64(len(x1)))
		}
	}
	return PairStats{
		CountCorr:    stat.Corr(c1, c2),
		UsableCorr:   stat.Corr(u1, u2),
		SharedFrac:   shared.Mean(),
		MeanCount:    stat.Mean(c1),
		Realizations: rounds,
	}, nil
}

func boundingRect(a, b Rect) Rect {
	out := a
	if b.X0 < out.X0 {
		out.X0 = b.X0
	}
	if b.Y0 < out.Y0 {
		out.Y0 = b.Y0
	}
	if b.X1 > out.X1 {
		out.X1 = b.X1
	}
	if b.Y1 > out.Y1 {
		out.Y1 = b.Y1
	}
	return out
}
