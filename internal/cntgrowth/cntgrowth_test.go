package cntgrowth

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/device"
	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/stat"
)

func calibratedDirectional(t *testing.T) Directional {
	t.Helper()
	pitch, err := device.CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	return Directional{Pitch: pitch, PMetallic: 0.33, LengthNM: 200_000}
}

func TestRectValidate(t *testing.T) {
	if err := (Rect{0, 0, 1, 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Rect{{0, 0, 0, 1}, {0, 0, 1, 0}, {1, 0, 0, 1}} {
		if err := r.Validate(); err == nil {
			t.Errorf("rect %+v should be invalid", r)
		}
	}
}

func TestDirectionalValidate(t *testing.T) {
	g := calibratedDirectional(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g
	bad.Pitch = nil
	if bad.Validate() == nil {
		t.Error("nil pitch")
	}
	bad = g
	bad.PMetallic = 1.5
	if bad.Validate() == nil {
		t.Error("bad pm")
	}
	bad = g
	bad.LengthNM = 0
	if bad.Validate() == nil {
		t.Error("zero length")
	}
	bad = g
	bad.LengthJitterFrac = 1
	if bad.Validate() == nil {
		t.Error("jitter ≥ 1")
	}
}

func TestDirectionalDensityMatchesPitch(t *testing.T) {
	g := calibratedDirectional(t)
	r := rng.New(42)
	region := Rect{0, 0, 1000, 4000} // 4 µm of lateral extent
	var dens stat.Welford
	for i := 0; i < 50; i++ {
		a, err := g.Grow(r, region)
		if err != nil {
			t.Fatal(err)
		}
		dens.Add(a.DensityPerUM())
	}
	// Mean pitch 4 nm → 250 tracks/µm.
	if math.Abs(dens.Mean()-250) > 12 {
		t.Fatalf("track density %v tracks/µm, want ≈ 250", dens.Mean())
	}
}

func TestDirectionalMetallicFraction(t *testing.T) {
	g := calibratedDirectional(t)
	r := rng.New(7)
	a, err := g.Grow(r, Rect{0, 0, 500, 20000})
	if err != nil {
		t.Fatal(err)
	}
	m := 0
	for _, c := range a.CNTs {
		if c.Type == Metallic {
			m++
		}
	}
	frac := float64(m) / float64(len(a.CNTs))
	if math.Abs(frac-0.33) > 0.02 {
		t.Fatalf("metallic fraction %v want 0.33", frac)
	}
}

func TestDirectionalCountMatchesRenewalModel(t *testing.T) {
	// The physical simulator and the analytic count model must agree on
	// E[N(W)] = W/μ.
	g := calibratedDirectional(t)
	r := rng.New(3)
	const w = 103.0
	fet := Rect{X0: 450, Y0: 1000, X1: 500, Y1: 1000 + w}
	var counts stat.Welford
	for i := 0; i < 400; i++ {
		a, err := g.Grow(r, Rect{0, 0, 1000, 2200})
		if err != nil {
			t.Fatal(err)
		}
		counts.Add(float64(a.CountAll(fet)))
	}
	want := w / 4
	if math.Abs(counts.Mean()-want) > 4*counts.StdErr()+0.5 {
		t.Fatalf("mean count %v want %v (±%v)", counts.Mean(), want, counts.StdErr())
	}
}

func TestSegmentBoundariesBreakChannels(t *testing.T) {
	// With very short tubes, a channel wider than a tube can never be
	// crossed: LCNT < channel length means zero crossings.
	pitch, err := device.CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	g := Directional{Pitch: pitch, PMetallic: 0, LengthNM: 30}
	r := rng.New(9)
	a, err := g.Grow(r, Rect{0, 0, 400, 400})
	if err != nil {
		t.Fatal(err)
	}
	fet := Rect{X0: 100, Y0: 100, X1: 180, Y1: 200} // 80 nm channel > 30 nm tubes
	if n := a.CountAll(fet); n != 0 {
		t.Fatalf("tubes shorter than the channel cannot cross it, got %d", n)
	}
}

func TestUncorrelatedValidate(t *testing.T) {
	g := Uncorrelated{DensityPerUM2: 50, PMetallic: 0.33, LengthNM: 2000, AngleSpreadRad: 0.2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g
	bad.DensityPerUM2 = 0
	if bad.Validate() == nil {
		t.Error("zero density")
	}
	bad = g
	bad.AngleSpreadRad = 2
	if bad.Validate() == nil {
		t.Error("angle > π/2")
	}
	bad = g
	bad.LengthSpreadFrac = 1
	if bad.Validate() == nil {
		t.Error("spread ≥ 1")
	}
}

func TestUncorrelatedDensity(t *testing.T) {
	g := Uncorrelated{DensityPerUM2: 80, PMetallic: 0.3, LengthNM: 1500, AngleSpreadRad: 0.1}
	r := rng.New(11)
	region := Rect{0, 0, 4000, 4000}
	var perUM2 stat.Welford
	for i := 0; i < 30; i++ {
		a, err := g.Grow(r, region)
		if err != nil {
			t.Fatal(err)
		}
		// Count centers inside the core region to undo inflation.
		n := 0
		for _, c := range a.CNTs {
			cx, cy := (c.X0+c.X1)/2, (c.Y0+c.Y1)/2
			if cx >= 0 && cx <= 4000 && cy >= 0 && cy <= 4000 {
				n++
			}
		}
		perUM2.Add(float64(n) / 16)
	}
	if math.Abs(perUM2.Mean()-80) > 5 {
		t.Fatalf("stick density %v per µm², want 80", perUM2.Mean())
	}
}

func TestCrossingGeometrySticks(t *testing.T) {
	a := &Array{Region: Rect{0, 0, 100, 100}}
	a.CNTs = []CNT{
		// Horizontal tube through the middle: crosses.
		{X0: 0, Y0: 50, X1: 100, Y1: 50, Track: -1},
		// Steep tube: enters left edge inside, exits right edge outside.
		{X0: 40, Y0: 40, X1: 60, Y1: 200, Track: -1},
		// Tube that does not span the x range.
		{X0: 45, Y0: 50, X1: 55, Y1: 50, Track: -1},
		// Reversed endpoints still cross.
		{X0: 100, Y0: 60, X1: 0, Y1: 60, Track: -1},
	}
	fet := Rect{X0: 40, Y0: 30, X1: 60, Y1: 70}
	got := a.Crossing(fet)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("crossing: %v", got)
	}
}

func TestRemoval(t *testing.T) {
	g := calibratedDirectional(t)
	r := rng.New(21)
	a, err := g.Grow(r, Rect{0, 0, 500, 8000})
	if err != nil {
		t.Fatal(err)
	}
	rm := Removal{PRemoveMetallic: 1, PRemoveSemi: 0.3}
	if err := rm.Apply(r, a); err != nil {
		t.Fatal(err)
	}
	mSurvive, sTotal, sRemoved := 0, 0, 0
	for _, c := range a.CNTs {
		switch c.Type {
		case Metallic:
			if !c.Removed {
				mSurvive++
			}
		case Semiconducting:
			sTotal++
			if c.Removed {
				sRemoved++
			}
		}
	}
	if mSurvive != 0 {
		t.Fatalf("pRm=1 but %d metallic tubes survive", mSurvive)
	}
	frac := float64(sRemoved) / float64(sTotal)
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("collateral removal fraction %v want 0.3", frac)
	}
	if err := (Removal{PRemoveMetallic: 2}).Apply(r, a); err == nil {
		t.Fatal("invalid removal should error")
	}
	if err := rm.Apply(r, nil); err == nil {
		t.Fatal("nil array should error")
	}
}

// The Fig. 3.1 quantitative premise, all three panels:
// (a) uncorrelated growth → no correlation;
// (b) directional growth, misaligned actives → partial correlation;
// (c) directional growth, aligned actives → near-perfect correlation.
func TestFig31CorrelationOrdering(t *testing.T) {
	r := rng.New(rng.DefaultSeed)
	rm := Removal{PRemoveMetallic: 1, PRemoveSemi: 0.3}
	const w = 60.0
	aligned1 := Rect{X0: 0, Y0: 200, X1: 50, Y1: 200 + w}
	aligned2 := Rect{X0: 700, Y0: 200, X1: 750, Y1: 200 + w}
	misaligned2 := Rect{X0: 700, Y0: 200 + w*0.6, X1: 750, Y1: 200 + 1.6*w}

	dir := calibratedDirectional(t)
	unc := Uncorrelated{DensityPerUM2: 2500, PMetallic: 0.33, LengthNM: 1200, AngleSpreadRad: 0.15}

	const rounds = 700
	sa, err := MeasurePairCorrelation(r, unc, rm, aligned1, aligned2, rounds)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := MeasurePairCorrelation(r, dir, rm, aligned1, misaligned2, rounds)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := MeasurePairCorrelation(r, dir, rm, aligned1, aligned2, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sa.CountCorr) > 0.12 {
		t.Errorf("uncorrelated growth: corr %v, want ≈ 0", sa.CountCorr)
	}
	if sb.CountCorr < 0.15 || sb.CountCorr > 0.75 {
		t.Errorf("misaligned directional: corr %v, want partial", sb.CountCorr)
	}
	if sc.CountCorr < 0.98 {
		t.Errorf("aligned directional: corr %v, want ≈ 1", sc.CountCorr)
	}
	// 750 nm separation over 200 µm tubes: ≈ 0.4% of tracks break between
	// the two devices, so the shared fraction is just below 1.
	if sc.SharedFrac < 0.99 {
		t.Errorf("aligned shared fraction %v, want ≈ 0.996", sc.SharedFrac)
	}
	if sc.UsableCorr < 0.98 {
		t.Errorf("aligned usable corr %v, want ≈ 1 (type correlation)", sc.UsableCorr)
	}
	if !(sa.CountCorr < sb.CountCorr && sb.CountCorr < sc.CountCorr) {
		t.Errorf("ordering violated: %v < %v < %v expected", sa.CountCorr, sb.CountCorr, sc.CountCorr)
	}
}

func TestMeasurePairCorrelationErrors(t *testing.T) {
	r := rng.New(1)
	g := calibratedDirectional(t)
	fet := Rect{0, 0, 10, 10}
	if _, err := MeasurePairCorrelation(r, nil, Removal{}, fet, fet, 10); err == nil {
		t.Error("nil grower")
	}
	if _, err := MeasurePairCorrelation(r, g, Removal{}, fet, fet, 1); err == nil {
		t.Error("too few rounds")
	}
	if _, err := MeasurePairCorrelation(r, g, Removal{}, Rect{}, fet, 10); err == nil {
		t.Error("invalid rect")
	}
}

// Property: beyond LCNT separation, even aligned FETs decorrelate (segment
// boundaries between them).
func TestDecorrelationBeyondLCNT(t *testing.T) {
	pitch, err := device.CalibratedPitch()
	if err != nil {
		t.Fatal(err)
	}
	g := Directional{Pitch: pitch, PMetallic: 0.33, LengthNM: 2000} // short tubes for test speed
	r := rng.New(5)
	f1 := Rect{X0: 0, Y0: 100, X1: 40, Y1: 180}
	f2 := Rect{X0: 6000, Y0: 100, X1: 6040, Y1: 180} // 3×LCNT away
	s, err := MeasurePairCorrelation(r, g, Removal{PRemoveMetallic: 1}, f1, f2, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Counts still correlate via shared tracks (density correlation), but
	// no tubes are shared.
	if s.SharedFrac != 0 {
		t.Fatalf("FETs beyond LCNT share tubes: %v", s.SharedFrac)
	}
}

// Property: growing over random regions never yields tubes that fail their
// own crossing test against the full region when tracks span it.
func TestQuickDirectionalTubesSpanRegion(t *testing.T) {
	g := calibratedDirectional(t)
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		region := Rect{0, 0, 200 + float64(seed%300), 150}
		a, err := g.Grow(r, region)
		if err != nil {
			return false
		}
		for _, c := range a.CNTs {
			if c.X0 > region.X0 || c.X1 < region.X1 {
				// Tube does not span the region: only legal if it abuts a
				// segment boundary inside.
				if c.X1-c.X0 > g.LengthNM+1e-9 {
					return false
				}
			}
			if c.Y0 != c.Y1 {
				return false // directional tubes are horizontal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
